//! Criterion microbenchmarks of the functional kernels underlying every
//! experiment: the object packing scheme (Fig. 5), layout bitmaps
//! (Fig. 4), and each serializer's encode/decode path on the JSBS
//! media-content object and a microbenchmark tree.
//!
//! These measure *this implementation's* real throughput (not the
//! simulated hardware) — they are the regression guard for the codecs
//! the simulators replay.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use sdformat::pack::{Packed, Packer, Unpacker};
use sdheap::{Addr, Heap};
use serializers::{JavaSd, Kryo, NullSink, Serializer, Skyway};
use workloads::{media_content, MicroBench, Scale};

fn bench_packing(c: &mut Criterion) {
    let values: Vec<u64> = (0..4096u64).map(|i| i.wrapping_mul(2654435761) % 100_000).collect();
    let mut g = c.benchmark_group("packing");
    g.throughput(Throughput::Elements(values.len() as u64));
    g.bench_function("pack_4k_relative_addresses", |b| {
        b.iter(|| Packed::from_values(values.iter().copied()))
    });
    let packed = Packed::from_values(values.iter().copied());
    g.bench_function("unpack_4k_relative_addresses", |b| {
        b.iter(|| {
            let mut u = Unpacker::new(&packed);
            let mut n = 0u64;
            while let Some(v) = u.next_value() {
                n = n.wrapping_add(v);
            }
            n
        })
    });
    let bitmaps: Vec<Vec<bool>> = (0..512)
        .map(|i| (0..48).map(|w| (w + i) % 7 == 0).collect())
        .collect();
    g.bench_function("pack_512_layout_bitmaps", |b| {
        b.iter(|| {
            let mut p = Packer::new();
            for bm in &bitmaps {
                p.push_bits(bm);
            }
            p.finish()
        })
    });
    g.finish();
}

fn roundtrip(ser: &dyn Serializer, heap: &mut Heap, reg: &sdheap::KlassRegistry, root: Addr) {
    heap.gc_clear_serialization_metadata(reg);
    let bytes = ser.serialize(heap, reg, root, &mut NullSink).expect("ok");
    let mut dst = Heap::with_base(Addr(0x40_0000_0000), heap.capacity_bytes());
    ser.deserialize(&bytes, reg, &mut dst, &mut NullSink).expect("ok");
}

fn make(name: &str) -> Box<dyn Serializer> {
    match name {
        "java" => Box::new(JavaSd::new()),
        "kryo" => Box::new(Kryo::new()),
        "skyway" => Box::new(Skyway::new()),
        _ => Box::new(cereal::CerealSerializer::new()),
    }
}

fn bench_serializers_media(c: &mut Criterion) {
    let mut g = c.benchmark_group("jsbs_media_content_roundtrip");
    for name in ["java", "kryo", "skyway", "cereal"] {
        g.bench_function(name, |b| {
            b.iter_batched(
                media_content,
                |(mut heap, reg, root)| {
                    roundtrip(make(name).as_ref(), &mut heap, &reg, root);
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_serializers_tree(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree_narrow_tiny_roundtrip");
    g.sample_size(20);
    for name in ["java", "kryo", "skyway", "cereal"] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || MicroBench::TreeNarrow.build(Scale::Tiny),
                |(mut heap, reg, root)| {
                    roundtrip(make(name).as_ref(), &mut heap, &reg, root);
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_graph_traversal(c: &mut Criterion) {
    let (heap, reg, root) = MicroBench::GraphSparse.build(Scale::Tiny);
    let mut g = c.benchmark_group("heap");
    g.bench_function("bfs_reachable_graph_sparse", |b| {
        b.iter(|| sdheap::reachable(&heap, &reg, root, sdheap::Reachable::BreadthFirst).len())
    });
    g.bench_function("graph_stats_graph_sparse", |b| {
        b.iter(|| sdheap::GraphStats::measure(&heap, &reg, root))
    });
    g.finish();
}

criterion_group!(
    name = kernels;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_packing, bench_serializers_media, bench_serializers_tree, bench_graph_traversal
);
criterion_main!(kernels);
