//! Runs the complete evaluation — every figure and table — in one pass,
//! reusing each suite's measurements.
//!
//! The eighteen experiment units (six microbenchmarks, six JSBS measured
//! serializer runs, six Spark applications) are independent: each builds
//! its own heap and seeds its own PRNG, so they fan out across worker
//! threads (`--jobs N`, default: available parallelism) without changing
//! any measurement. Rendering happens only after every unit completes,
//! in the fixed figure order, so the report is byte-identical for any
//! job count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use cereal_bench::micro_suite::MicroResult;
use cereal_bench::runners::SdMeasure;
use cereal_bench::spark_suite::SparkResult;
use cereal_bench::{jsbs_suite, micro_suite, render, spark_suite};
use workloads::{MicroBench, SparkApp};

/// Number of independent experiment units: 6 micro + 6 JSBS measured
/// runs + 6 Spark apps.
const UNITS: usize = 6 + jsbs_suite::MEASURED_UNITS + 6;

fn jobs_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    let mut jobs = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(UNITS);
    let mut i = 1;
    while i < args.len() {
        if args[i] == "--jobs" && i + 1 < args.len() {
            jobs = args[i + 1].parse().unwrap_or(jobs);
            i += 2;
        } else if let Some(v) = args[i].strip_prefix("--jobs=") {
            jobs = v.parse().unwrap_or(jobs);
            i += 1;
        } else {
            eprintln!("ignoring unknown argument {:?}", args[i]);
            i += 1;
        }
    }
    jobs.clamp(1, UNITS)
}

fn main() {
    let micro_scale = micro_suite::scale_from_env();
    let spark_scale = spark_suite::scale_from_env();
    let jobs = jobs_from_args();
    eprintln!(
        "running {UNITS} experiment units on {jobs} worker thread(s) \
         (micro {micro_scale:?}, spark {spark_scale:?})..."
    );

    let benches = MicroBench::all();
    let apps = SparkApp::all();
    let micro_slots: Vec<Mutex<Option<MicroResult>>> =
        (0..benches.len()).map(|_| Mutex::new(None)).collect();
    let jsbs_slots: Vec<Mutex<Option<SdMeasure>>> =
        (0..jsbs_suite::MEASURED_UNITS).map(|_| Mutex::new(None)).collect();
    let spark_slots: Vec<Mutex<Option<SparkResult>>> =
        (0..apps.len()).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let unit = next.fetch_add(1, Ordering::Relaxed);
                match unit {
                    0..=5 => {
                        let bench = benches[unit];
                        eprintln!("  micro: {}...", bench.name());
                        *micro_slots[unit].lock().unwrap() =
                            Some(micro_suite::run_one(bench, micro_scale));
                    }
                    6..=11 => {
                        let m = unit - 6;
                        eprintln!("  JSBS measured run {m}...");
                        *jsbs_slots[m].lock().unwrap() = Some(jsbs_suite::run_measured(m));
                    }
                    12..=17 => {
                        let app = apps[unit - 12];
                        eprintln!("  Spark: {}...", app.name());
                        *spark_slots[unit - 12].lock().unwrap() =
                            Some(spark_suite::run_one(app, spark_scale));
                    }
                    _ => break,
                }
            });
        }
    });

    let micro: Vec<MicroResult> = micro_slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("micro unit ran"))
        .collect();
    let jsbs_measures: Vec<SdMeasure> = jsbs_slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("JSBS unit ran"))
        .collect();
    let jsbs = jsbs_suite::assemble(&jsbs_measures);
    let spark: Vec<SparkResult> = spark_slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("Spark unit ran"))
        .collect();

    println!("{}", render::table1());
    println!("{}", render::fig2(&spark));
    println!("{}", render::fig3(&micro));
    println!("{}", render::fig10(&micro));
    println!("{}", render::fig11(&micro));
    println!("{}", render::table4(&micro));
    println!("{}", render::fig12(&jsbs));
    println!("{}", render::fig13(&spark));
    println!("{}", render::fig14(&spark));
    println!("{}", render::fig15(&spark));
    println!("{}", render::fig16(&spark));
    println!("{}", render::fig17(&spark));
    println!("{}", render::table5());
}
