//! Runs the complete evaluation — every figure and table — in one pass,
//! reusing each suite's measurements.
use cereal_bench::{jsbs_suite, micro_suite, render, spark_suite};

fn main() {
    let micro_scale = micro_suite::scale_from_env();
    let spark_scale = spark_suite::scale_from_env();
    eprintln!("running microbenchmark suite at {micro_scale:?}...");
    let micro = micro_suite::run(micro_scale);
    eprintln!("running JSBS suite...");
    let jsbs = jsbs_suite::run();
    eprintln!("running Spark application suite at {spark_scale:?}...");
    let spark = spark_suite::run(spark_scale);

    println!("{}", render::table1());
    println!("{}", render::fig2(&spark));
    println!("{}", render::fig3(&micro));
    println!("{}", render::fig10(&micro));
    println!("{}", render::fig11(&micro));
    println!("{}", render::table4(&micro));
    println!("{}", render::fig12(&jsbs));
    println!("{}", render::fig13(&spark));
    println!("{}", render::fig14(&spark));
    println!("{}", render::fig15(&spark));
    println!("{}", render::fig16(&spark));
    println!("{}", render::fig17(&spark));
    println!("{}", render::table5());
}
