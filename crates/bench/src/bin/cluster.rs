//! The cluster-scheduler experiment (`cargo run --release --bin cluster`).
//!
//! Sweeps the event-driven multi-tenant cluster across four healthy
//! axes — executor count, tenant-arrival skew, DU contexts per node,
//! and straggler rate (the last with speculation off and on) — plus
//! five fault axes: executor-crash rate, heartbeat period (at a fixed
//! crash rate), blacklist threshold (at a fixed task-failure rate),
//! DU-device-failure rate, and admission watermark under overload.
//! Writes `BENCH_CLUSTER.json`. Every number is simulated time or a
//! deterministic counter: the file is byte-identical for any `--jobs`
//! value (CI diffs a 1-job run against a 4-job run).
//!
//! Several self-checks ride along and exit non-zero on failure:
//!
//! * **speculation** — at every straggler rate, the speculation-on run
//!   must complete the same jobs with the same fold digests at a
//!   makespan no worse than speculation-off; at rate 0 it must launch
//!   zero copies;
//! * **fault accounting** — every fault cell must account for every
//!   arrival (completed + shed + failed), pair every crash with exactly
//!   one detection and one restart, and the crash-0 cell (with
//!   detection knobs deliberately tweaked) must be byte-identical to a
//!   run with no fault domain at all;
//! * **telemetry reconciliation** — one healthy cell and one fault-storm
//!   cell re-run under a [`Recorder`] and every `cluster.*` counter the
//!   scheduler booked at its event site is checked against the report's
//!   independently accumulated fields (the fabric ledger cross-checks
//!   the fabric counters), gauges against the tracked maxima, histogram
//!   count/sum against the latency and waste totals, and the traced
//!   outcome against the untraced one.
//!
//! Flags: `--smoke` (small config), `--jobs N` (worker threads),
//! `--out PATH` (default `BENCH_CLUSTER.json`).

use cereal_bench::table::{ns, Table};
use cluster::{run_cluster, run_cluster_sunk, CellResult, ClusterConfig, ClusterOutcome};
use telemetry::critpath::{self, Analysis, Timeline};
use telemetry::{JsonWriter, Recon, Recorder};

fn run_cell(cfg: &ClusterConfig) -> CellResult {
    let outcome = run_cluster(cfg).unwrap_or_else(|e| {
        eprintln!(
            "cluster cell failed ({} executors, {} tenants): {e}",
            cfg.executors, cfg.tenants
        );
        std::process::exit(1);
    });
    CellResult { cfg: *cfg, outcome }
}

/// Runs one fault-sweep cell and asserts the terminal-accounting
/// invariants every faulted run must satisfy: no arrival may vanish,
/// every crash is detected exactly once, every death brings a restart.
fn run_fault_cell(cfg: &ClusterConfig) -> CellResult {
    let cell = run_cell(cfg);
    let o = &cell.outcome;
    assert_eq!(
        o.jobs_completed + o.jobs_shed + o.jobs_failed,
        o.arrivals,
        "fault cell lost a job: {} completed + {} shed + {} failed != {} arrivals",
        o.jobs_completed,
        o.jobs_shed,
        o.jobs_failed,
        o.arrivals
    );
    assert_eq!(
        o.heartbeat_deaths + o.fetch_fail_deaths,
        o.exec_crashes,
        "every crash must be declared dead exactly once"
    );
    assert_eq!(o.restarts, o.exec_crashes, "every declared death must restart");
    cell
}

/// Re-runs `cfg` under a recorder and reconciles every booked counter,
/// gauge and histogram against the report's own accumulators. Returns
/// the checklist plus the recorder so the causal critical-path analysis
/// reuses the same trace.
fn reconcile(cfg: &ClusterConfig, untraced: &ClusterOutcome) -> (Recon, Recorder) {
    let mut rec = Recorder::new();
    let traced = run_cluster_sunk(cfg, &mut rec).unwrap_or_else(|e| {
        eprintln!("traced cluster run failed: {e}");
        std::process::exit(1);
    });
    let m = &rec.metrics;
    let mut r = Recon::new(1e-9);
    r.cond(traced == *untraced, "traced outcome == untraced outcome");
    r.exact("arrivals", m.counter("cluster.arrivals"), traced.arrivals);
    r.exact("jobs_completed", m.counter("cluster.jobs_completed"), traced.jobs_completed);
    r.exact("tasks_launched", m.counter("cluster.tasks_launched"), traced.tasks_launched);
    r.exact("tasks_completed", m.counter("cluster.tasks_completed"), traced.tasks_completed);
    r.exact("stragglers", m.counter("cluster.stragglers"), traced.stragglers);
    r.exact("spec_launches", m.counter("cluster.spec_launches"), traced.spec_launches);
    r.exact("spec_wins", m.counter("cluster.spec_wins"), traced.spec_wins);
    r.exact("du_waits", m.counter("cluster.du_waits"), traced.du_waits);
    // The outcome's fabric numbers come from the fabric's own ledgers,
    // the counters from event-site booking — a genuine cross-check.
    r.exact("fabric_messages", m.counter("cluster.fabric_messages"), traced.fabric_messages);
    r.exact("fabric_bytes", m.counter("cluster.fabric_bytes"), traced.fabric_bytes);
    // The fault ledger: every counter the fault domain books at its
    // event site (all zero, and checked to be zero, on healthy cells).
    r.exact("jobs_shed", m.counter("cluster.jobs_shed"), traced.jobs_shed);
    r.exact("jobs_failed", m.counter("cluster.jobs_failed"), traced.jobs_failed);
    r.exact("exec_crashes", m.counter("cluster.exec_crashes"), traced.exec_crashes);
    r.exact("node_crashes", m.counter("cluster.node_crashes"), traced.node_crashes);
    r.exact("heartbeat_deaths", m.counter("cluster.heartbeat_deaths"), traced.heartbeat_deaths);
    r.exact("fetch_fail_deaths", m.counter("cluster.fetch_fail_deaths"), traced.fetch_fail_deaths);
    r.exact("crash_task_kills", m.counter("cluster.crash_task_kills"), traced.crash_task_kills);
    r.exact("task_failures", m.counter("cluster.task_failures"), traced.task_failures);
    r.exact("task_retries", m.counter("cluster.task_retries"), traced.task_retries);
    r.exact("crash_requeues", m.counter("cluster.crash_requeues"), traced.crash_requeues);
    r.exact("recomputes", m.counter("cluster.recomputes"), traced.recomputes);
    r.exact("blacklists", m.counter("cluster.blacklists"), traced.blacklists);
    r.exact("blacklist_rejoins", m.counter("cluster.blacklist_rejoins"), traced.blacklist_rejoins);
    r.exact("restarts", m.counter("cluster.restarts"), traced.restarts);
    r.exact(
        "du_device_failures",
        m.counter("cluster.du_device_failures"),
        traced.du_device_failures,
    );
    r.exact("degraded_tasks", m.counter("cluster.degraded_tasks"), traced.degraded_tasks);
    match m.histogram("cluster.wasted_ns") {
        Some(h) => r.close("wasted_ns sum", h.sum, traced.wasted_ns),
        None => r.cond(traced.wasted_ns == 0.0, "wasted_ns histogram missing"),
    }
    match m.histogram("cluster.recompute_service_ns") {
        Some(h) => r.close("recompute_service_ns sum", h.sum, traced.recompute_busy_ns),
        None => {
            r.cond(traced.recompute_busy_ns == 0.0, "recompute_service_ns histogram missing");
        }
    }
    let per_tenant: u64 = (0..cfg.tenants.min(8))
        .map(|t| m.counter(["cluster.tenant0.jobs", "cluster.tenant1.jobs",
            "cluster.tenant2.jobs", "cluster.tenant3.jobs", "cluster.tenant4.jobs",
            "cluster.tenant5.jobs", "cluster.tenant6.jobs", "cluster.tenant7.jobs"][t]))
        .sum();
    r.exact("per-tenant job counters", per_tenant, traced.jobs_completed);
    match m.histogram("cluster.job_latency_ns") {
        Some(h) => {
            r.exact("job_latency_ns count", h.count, traced.jobs_completed);
            r.close("job_latency_ns sum", h.sum, traced.job_latency_sum_ns);
            r.close("job_latency_ns max", h.max, traced.job_latency_max_ns);
        }
        None => r.cond(false, "job_latency_ns histogram missing"),
    }
    match m.histogram("cluster.du_wait_ns") {
        Some(h) => {
            r.exact("du_wait_ns count", h.count, traced.du_waits);
            r.close("du_wait_ns sum", h.sum, traced.du_wait_ns);
        }
        None => r.cond(traced.du_waits == 0, "du_wait_ns histogram missing"),
    }
    match m.histogram("cluster.task_service_ns") {
        Some(h) => r.exact("task_service_ns count", h.count, traced.tasks_launched),
        None => r.cond(false, "task_service_ns histogram missing"),
    }
    match m.gauge_value("cluster.queue_depth") {
        Some(g) => r.close("queue_depth max", g.max, traced.max_queue_depth as f64),
        None => r.cond(false, "queue_depth gauge missing"),
    }
    match m.gauge_value("cluster.running_tasks") {
        Some(g) => r.close("running_tasks max", g.max, traced.max_running as f64),
        None => r.cond(false, "running_tasks gauge missing"),
    }
    let lanes = rec
        .process_names
        .keys()
        .filter(|&&pid| pid >= telemetry::ids::CLUSTER_PID_BASE)
        .count() as u64;
    r.exact("per-executor trace lanes", lanes, traced.executors_used);
    (r, rec)
}

/// Runs the causal critical-path analysis on a traced cell. The blame
/// conservation law (categories sum to job latency, critical path
/// bounded by the makespan) is enforced inside [`critpath::analyze`];
/// a violation is a telemetry-layer bug and exits non-zero.
fn blame_cell(label: &str, rec: &Recorder, outcome: &ClusterOutcome) -> Analysis {
    let a = critpath::analyze(rec, outcome.makespan_ns).unwrap_or_else(|e| {
        eprintln!("cluster: {label} critical-path analysis FAILED: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "cluster: {label} blame over {} jobs: dominant {}, critical path {}",
        a.jobs.len(),
        a.dominant_category(),
        ns(a.critical_path_ns)
    );
    a
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let jobs = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .clamp(1, 8)
        });
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_CLUSTER.json".to_string());

    // The base cell: a ≥512-executor multi-tenant cluster even in smoke
    // mode (the whole point of the lazy fabric).
    let mut base = ClusterConfig::smoke();
    base.executors = 512;
    base.executors_per_node = 8;
    base.du_contexts_per_node = 2;
    base.jobs = jobs;
    if !smoke {
        base.tenants = 8;
        base.job_arrivals = 96;
        base.template_mappers = 6;
        base.template_records = 384;
        base.template_keys = 64;
    }

    let executor_axis: &[usize] = if smoke { &[64, 512] } else { &[128, 512, 1024] };
    let theta_axis: &[f64] = if smoke { &[0.0, 1.1] } else { &[0.0, 0.8, 1.3] };
    let du_axis: &[usize] = if smoke { &[1, 4] } else { &[1, 2, 8] };
    let straggler_axis: &[f64] = if smoke { &[0.0, 0.1] } else { &[0.0, 0.05, 0.15] };

    eprintln!(
        "cluster: base {} executors / {} nodes, {} tenants, {} arrivals, {jobs} jobs",
        base.executors,
        base.nodes(),
        base.tenants,
        base.job_arrivals
    );

    // ---- Executor-scale sweep ------------------------------------------
    let mut scale_cells = Vec::new();
    for &e in executor_axis {
        let mut cfg = base;
        cfg.executors = e;
        scale_cells.push(run_cell(&cfg));
    }

    // ---- Tenant-skew sweep ---------------------------------------------
    let mut skew_cells = Vec::new();
    for &theta in theta_axis {
        let mut cfg = base;
        cfg.tenant_theta = theta;
        skew_cells.push(run_cell(&cfg));
    }

    // ---- DU-context sweep ----------------------------------------------
    // Fewer executors per node at high load keeps Cereal decode waves
    // colliding on the per-node contexts.
    let mut du_cells = Vec::new();
    for &du in du_axis {
        let mut cfg = base;
        cfg.executors = 128;
        cfg.target_load = 1.2;
        cfg.du_contexts_per_node = du;
        du_cells.push(run_cell(&cfg));
    }

    // ---- Straggler × speculation sweep ---------------------------------
    let mut straggler_cells = Vec::new();
    for &rate in straggler_axis {
        for spec in [false, true] {
            let mut cfg = base;
            cfg.straggler_rate = rate;
            cfg.speculation = spec;
            straggler_cells.push(run_cell(&cfg));
        }
    }
    // Speculation self-checks: same answers, no worse makespan, and no
    // copies without stragglers.
    for pair in straggler_cells.chunks(2) {
        let (off, on) = (&pair[0], &pair[1]);
        assert_eq!(
            on.outcome.fold_checksum, off.outcome.fold_checksum,
            "speculation changed an answer at rate {}",
            on.cfg.straggler_rate
        );
        assert_eq!(on.outcome.jobs_completed, off.outcome.jobs_completed);
        assert!(
            on.outcome.makespan_ns <= off.outcome.makespan_ns,
            "speculation must not hurt the makespan at rate {}: on {} vs off {}",
            on.cfg.straggler_rate,
            on.outcome.makespan_ns,
            off.outcome.makespan_ns
        );
        if on.cfg.straggler_rate == 0.0 {
            assert_eq!(on.outcome.spec_launches, 0, "no stragglers, no copies");
            assert_eq!(on.outcome, off.outcome, "rate-0 speculation is a no-op");
        }
    }
    let clean_makespan = straggler_cells[0].outcome.makespan_ns;

    // ---- Fault sweeps ----------------------------------------------------
    // All fault cells run with stragglers + speculation on: recovery has
    // to coexist with the speculative copies, not assume a quiet cluster.
    let crash_axis: &[f64] = if smoke { &[0.0, 0.05] } else { &[0.0, 0.05, 0.15] };
    let heartbeat_axis: &[f64] =
        if smoke { &[10_000.0, 200_000.0] } else { &[10_000.0, 50_000.0, 200_000.0] };
    let blacklist_axis: &[u32] = if smoke { &[0, 2] } else { &[0, 2, 6] };
    let du_fail_axis: &[f64] = if smoke { &[0.0, 0.25] } else { &[0.0, 0.05, 0.25] };
    let shed_axis: &[usize] = if smoke { &[0, 4] } else { &[0, 8] };

    let mut fault_base = base;
    fault_base.straggler_rate = *straggler_axis.last().expect("axis non-empty");
    fault_base.speculation = true;

    // Crash-rate sweep, with the detection knobs deliberately off their
    // defaults so the crash-0 cell proves they are inert at rate 0.
    let mut crash_cells = Vec::new();
    for &rate in crash_axis {
        let mut cfg = fault_base;
        cfg.fault.exec_crash_rate = rate;
        cfg.fault.heartbeat_period_ns = 50_000.0;
        cfg.fault.blacklist_threshold = 2;
        crash_cells.push(run_fault_cell(&cfg));
    }
    let fault_free = run_cell(&fault_base);
    assert_eq!(
        crash_cells[0].outcome, fault_free.outcome,
        "a zero-rate fault config must be a byte-identical no-op"
    );

    // Heartbeat-period sweep at a fixed crash rate: slower detection
    // leaves doomed attempts undetected longer, inflating waste.
    let mut heartbeat_cells = Vec::new();
    for &period in heartbeat_axis {
        let mut cfg = fault_base;
        cfg.fault.exec_crash_rate = 0.05;
        cfg.fault.heartbeat_period_ns = period;
        heartbeat_cells.push(run_fault_cell(&cfg));
    }

    // Blacklist-threshold sweep at a fixed clean-task-failure rate
    // (threshold 0 disables blacklisting — the baseline).
    let mut blacklist_cells = Vec::new();
    for &threshold in blacklist_axis {
        let mut cfg = fault_base;
        cfg.fault.task_fail_rate = 0.08;
        cfg.fault.blacklist_threshold = threshold;
        blacklist_cells.push(run_fault_cell(&cfg));
    }

    // DU-device-failure sweep: failed nodes degrade to the software
    // fallback backend; no job may be lost, only slowed.
    let mut du_fail_cells = Vec::new();
    for &rate in du_fail_axis {
        let mut cfg = fault_base;
        cfg.fault.du_fail_rate = rate;
        let cell = run_fault_cell(&cfg);
        assert_eq!(
            cell.outcome.jobs_completed, cell.outcome.arrivals,
            "DU degradation alone must never lose a job"
        );
        du_fail_cells.push(cell);
    }
    assert_eq!(
        du_fail_cells[0].outcome.fold_checksum,
        du_fail_cells.last().expect("cells").outcome.fold_checksum,
        "degraded decodes must reproduce the healthy fold digest"
    );

    // Admission-control sweep under 4x overload on a small cluster —
    // the full fleet drains too fast for the backlog to ever reach the
    // watermark (watermark 0 = off).
    let mut shed_cells = Vec::new();
    for &depth in shed_axis {
        let mut cfg = fault_base;
        cfg.executors = 64;
        cfg.target_load = 4.0;
        cfg.fault.shed_queue_depth = depth;
        shed_cells.push(run_fault_cell(&cfg));
    }

    let mut t = Table::new(&[
        "sweep", "exec", "theta", "du/node", "rate", "spec", "makespan", "mean lat",
        "du waits", "spec wins", "x clean",
    ]);
    let mut table_row = |label: &str, c: &CellResult, baseline_ns: f64| {
        t.row(vec![
            label.to_string(),
            c.cfg.executors.to_string(),
            format!("{}", c.cfg.tenant_theta),
            c.cfg.du_contexts_per_node.to_string(),
            format!("{}", c.cfg.straggler_rate),
            if c.cfg.speculation { "on" } else { "off" }.to_string(),
            ns(c.outcome.makespan_ns),
            ns(c.outcome.mean_latency_ns()),
            c.outcome.du_waits.to_string(),
            c.outcome.spec_wins.to_string(),
            if baseline_ns > 0.0 {
                format!("{:.2}", c.outcome.makespan_ns / baseline_ns)
            } else {
                "-".to_string()
            },
        ]);
    };
    for c in &scale_cells {
        table_row("scale", c, 0.0);
    }
    for c in &skew_cells {
        table_row("skew", c, 0.0);
    }
    for c in &du_cells {
        table_row("du", c, 0.0);
    }
    for c in &straggler_cells {
        table_row("straggler", c, clean_makespan);
    }
    eprintln!("{}", t.render());

    // ---- Fault table -----------------------------------------------------
    // Makespan inflation ("x base") is against each sweep's own first
    // cell: crash 0, the fastest heartbeat, threshold 0, DU-fail 0,
    // watermark off.
    let mut ft = Table::new(&[
        "sweep", "crash", "hb ns", "blk", "du fail", "shed", "makespan", "goodput",
        "recompute", "shed rate", "failed", "x base",
    ]);
    let mut fault_row = |label: &str, c: &CellResult, baseline_ns: f64| {
        let o = &c.outcome;
        ft.row(vec![
            label.to_string(),
            format!("{}", c.cfg.fault.exec_crash_rate),
            format!("{}", c.cfg.fault.heartbeat_period_ns),
            c.cfg.fault.blacklist_threshold.to_string(),
            format!("{}", c.cfg.fault.du_fail_rate),
            c.cfg.fault.shed_queue_depth.to_string(),
            ns(o.makespan_ns),
            format!("{:.4}", o.goodput()),
            format!("{:.4}", o.recompute_share()),
            format!("{:.4}", o.shed_rate()),
            o.jobs_failed.to_string(),
            format!("{:.2}", o.makespan_ns / baseline_ns),
        ]);
    };
    for c in &crash_cells {
        fault_row("crash", c, crash_cells[0].outcome.makespan_ns);
    }
    for c in &heartbeat_cells {
        fault_row("heartbeat", c, heartbeat_cells[0].outcome.makespan_ns);
    }
    for c in &blacklist_cells {
        fault_row("blacklist", c, blacklist_cells[0].outcome.makespan_ns);
    }
    for c in &du_fail_cells {
        fault_row("du-fail", c, du_fail_cells[0].outcome.makespan_ns);
    }
    for c in &shed_cells {
        fault_row("admission", c, shed_cells[0].outcome.makespan_ns);
    }
    eprintln!("{}", ft.render());

    // ---- Telemetry reconciliation --------------------------------------
    // The most eventful cell: stragglers, speculation, DU contention.
    let mut recon_cfg = base;
    recon_cfg.executors = 128;
    recon_cfg.target_load = 1.2;
    recon_cfg.straggler_rate = *straggler_axis.last().expect("axis non-empty");
    recon_cfg.speculation = true;
    let recon_cell = run_cell(&recon_cfg);
    let (recon, recon_rec) = reconcile(&recon_cfg, &recon_cell.outcome);
    recon.eprint_failures("cluster");
    eprintln!(
        "cluster: telemetry reconciliation {}/{} checks passed",
        recon.passed(),
        recon.total()
    );

    // And the most faulted cell: a crash + task-failure + DU-failure
    // storm with blacklisting, so every fault counter is non-trivially
    // exercised against the trace.
    let mut fault_recon_cfg = recon_cfg;
    fault_recon_cfg.fault.exec_crash_rate = 0.05;
    fault_recon_cfg.fault.task_fail_rate = 0.08;
    fault_recon_cfg.fault.du_fail_rate = 0.1;
    fault_recon_cfg.fault.blacklist_threshold = 2;
    let fault_recon_cell = run_fault_cell(&fault_recon_cfg);
    let (fault_recon, fault_rec) = reconcile(&fault_recon_cfg, &fault_recon_cell.outcome);
    fault_recon.eprint_failures("cluster");
    eprintln!(
        "cluster: fault-storm reconciliation {}/{} checks passed",
        fault_recon.passed(),
        fault_recon.total()
    );

    // ---- Causal critical-path blame ------------------------------------
    // Where did every nanosecond of job latency go? The healthy cell's
    // latency should be queue/compute/serde-dominated; the fault storm
    // shifts blame into recovery, blacklist drain and speculation waste.
    let blame = blame_cell("healthy", &recon_rec, &recon_cell.outcome);
    let fault_blame = blame_cell("fault-storm", &fault_rec, &fault_recon_cell.outcome);
    let timeline = Timeline::from_recorder(&recon_rec);

    let mut w = JsonWriter::new();
    w.begin_obj();
    w.field_str("generated_by", "cereal-bench --bin cluster");
    w.field_bool("smoke", smoke);
    w.field_u64("base_executors", base.executors as u64);
    w.field_u64("base_tenants", base.tenants as u64);
    w.field_u64("base_arrivals", base.job_arrivals as u64);
    w.key("scale_sweep");
    w.begin_arr();
    for c in &scale_cells {
        c.render(&mut w);
    }
    w.end_arr();
    w.key("skew_sweep");
    w.begin_arr();
    for c in &skew_cells {
        c.render(&mut w);
    }
    w.end_arr();
    w.key("du_sweep");
    w.begin_arr();
    for c in &du_cells {
        c.render(&mut w);
    }
    w.end_arr();
    w.key("straggler_sweep");
    w.begin_arr();
    for c in &straggler_cells {
        c.render(&mut w);
    }
    w.end_arr();
    w.key("crash_sweep");
    w.begin_arr();
    for c in &crash_cells {
        c.render(&mut w);
    }
    w.end_arr();
    w.key("heartbeat_sweep");
    w.begin_arr();
    for c in &heartbeat_cells {
        c.render(&mut w);
    }
    w.end_arr();
    w.key("blacklist_sweep");
    w.begin_arr();
    for c in &blacklist_cells {
        c.render(&mut w);
    }
    w.end_arr();
    w.key("du_failure_sweep");
    w.begin_arr();
    for c in &du_fail_cells {
        c.render(&mut w);
    }
    w.end_arr();
    w.key("admission_sweep");
    w.begin_arr();
    for c in &shed_cells {
        c.render(&mut w);
    }
    w.end_arr();
    w.key("reconciliation");
    w.begin_obj();
    w.field_u64("checks", recon.total());
    w.field_u64("failures", recon.failures());
    w.field_u64("fault_checks", fault_recon.total());
    w.field_u64("fault_failures", fault_recon.failures());
    w.end_obj();
    w.key("blame");
    blame.render(&mut w);
    w.key("fault_blame");
    fault_blame.render(&mut w);
    w.key("timeline");
    timeline.render(&mut w);
    w.end_obj();
    let mut json = w.finish();
    json.push('\n');
    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path}");

    if recon.failures() + fault_recon.failures() > 0 {
        eprintln!(
            "cluster: {} reconciliation checks failed",
            recon.failures() + fault_recon.failures()
        );
        std::process::exit(1);
    }
}
