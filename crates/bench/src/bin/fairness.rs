//! Extension experiment: multicore fairness.
//!
//! The paper compares Cereal against single-threaded serializer runs and
//! argues (§III, §V-D) that software can only add operation-level
//! parallelism by burning more cores — cores that big-data apps need for
//! user computation. This experiment quantifies it: Kryo on 1/2/4/8 host
//! cores vs the 8-unit accelerator, on the Tree-narrow microbenchmark.

use cereal_bench::runners::{repeat_root, run_cereal, run_software_parallel};
use cereal_bench::table::{ns, x, Table};
use cereal_bench::micro_suite::scale_from_env;
use serializers::Kryo;
use workloads::MicroBench;

fn main() {
    let scale = scale_from_env();
    let (mut heap, reg, root) = MicroBench::TreeNarrow.build(scale);
    let roots = repeat_root(root, 16);

    println!("Fairness — Kryo on N host cores vs the 8-unit Cereal accelerator");
    println!("(Tree-narrow, 16 concurrent S/D requests)\n");

    let mut t = Table::new(&["configuration", "ser", "de", "S/D energy (µJ)"]);
    let mut kryo1 = None;
    for cores in [1usize, 2, 4, 8] {
        let m = run_software_parallel(&Kryo::new(), &mut heap, &reg, &roots, cores);
        if cores == 1 {
            kryo1 = Some(m.clone());
        }
        t.row(vec![
            m.name.clone(),
            ns(m.ser_ns),
            ns(m.de_ns),
            format!("{:.1}", m.sd_energy_uj()),
        ]);
    }
    let cereal = run_cereal(cereal::CerealConfig::paper(), &mut heap, &reg, &roots);
    t.row(vec![
        "Cereal (8 SU / 8 DU)".into(),
        ns(cereal.ser_ns),
        ns(cereal.de_ns),
        format!("{:.1}", cereal.sd_energy_uj()),
    ]);
    println!("{}", t.render());

    let kryo1 = kryo1.expect("measured");
    let kryo8 = run_software_parallel(&Kryo::new(), &mut heap, &reg, &roots, 8);
    println!(
        "8-core Kryo scales serialization {} over 1 core; Cereal is still {} faster than\n\
         8-core Kryo at S/D while consuming {} less energy — and leaves all 8 cores free.",
        x(kryo1.ser_ns / kryo8.ser_ns),
        x(kryo8.sd_ns() / cereal.sd_ns()),
        x(kryo8.sd_energy_uj() / cereal.sd_energy_uj()),
    );
}
