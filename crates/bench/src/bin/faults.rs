//! The fault-injection experiment (`cargo run --release --bin faults`).
//!
//! Sweeps fault rates across shuffle backends (wire loss/corruption,
//! mapper deaths, accelerator faults, spill read errors — all injected
//! at once at the sweep rate) and across the block store (transient
//! read errors and spill-image corruption), then writes
//! `BENCH_FAULTS.json` with the recovery economics: goodput, retry
//! counts, re-executed maps, the share of the makespan spent
//! recovering, and the makespan inflation against the fault-free
//! baseline. Every number is simulated time or a deterministic counter,
//! and every fault draw comes from streams scoped by stable entity ids,
//! so the file is byte-identical for any `--jobs` value (CI diffs a
//! 1-job run against a 4-job run).
//!
//! The rate-0.0 sweep point doubles as a self-check: the harness
//! asserts it reproduces the fault-free baseline's numbers exactly.
//!
//! Flags: `--smoke` (small config), `--jobs N` (worker threads),
//! `--out PATH` (default `BENCH_FAULTS.json`).

use cereal_bench::table::{ns, Table};
use shuffle::{run_backend, Backend, FaultSpec, ShuffleConfig};
use sim::FaultConfig;
use store::{run_rdd, AccessPattern, MissPolicy, RddConfig};
use workloads::{AggConfig, KeySkew};

const FAULT_SEED: u64 = 0xFA17_5EED;

struct ShuffleRow {
    backend: &'static str,
    rate: f64,
    report: shuffle::BackendReport,
    baseline_makespan_ns: f64,
}

impl ShuffleRow {
    fn to_json(&self) -> String {
        let f = self.report.faults.expect("sweep rows carry fault counters");
        format!(
            "    {{\"backend\": \"{}\", \"rate\": {}, \"makespan_ns\": {:.3},\n\
             \x20     \"retries\": {}, \"lost_messages\": {}, \"wire_corruptions\": {},\n\
             \x20     \"checksum_errors\": {}, \"mapper_deaths\": {}, \"reexec_ns\": {:.3},\n\
             \x20     \"accel_faults\": {}, \"fallback_ns\": {:.3}, \"spill_retries\": {},\n\
             \x20     \"recovery_ns\": {:.3}, \"fabric_bytes\": {}, \"goodput\": {:.6},\n\
             \x20     \"recovery_share\": {:.6}, \"makespan_inflation\": {:.6},\n\
             \x20     \"fold_checksum\": \"{:016x}\"}}",
            self.backend,
            self.rate,
            self.report.net.makespan_ns,
            f.retries,
            f.lost_messages,
            f.wire_corruptions,
            f.checksum_errors,
            f.mapper_deaths,
            f.reexec_ns,
            f.accel_faults,
            f.fallback_ns,
            f.spill_retries,
            f.recovery_ns,
            f.fabric_bytes,
            f.goodput(self.report.wire_bytes),
            f.recovery_ns / self.report.net.makespan_ns,
            self.report.net.makespan_ns / self.baseline_makespan_ns,
            self.report.fold_checksum,
        )
    }
}

struct StoreRow {
    rate: f64,
    total_ns: f64,
    stats: store::StoreStats,
    baseline_total_ns: f64,
}

impl StoreRow {
    fn to_json(&self) -> String {
        let s = &self.stats;
        format!(
            "    {{\"rate\": {}, \"total_ns\": {:.3}, \"read_retries\": {}, \"retry_ns\": {:.3},\n\
             \x20     \"checksum_errors\": {}, \"recomputes\": {}, \"disk_fetches\": {},\n\
             \x20     \"total_inflation\": {:.6}}}",
            self.rate,
            self.total_ns,
            s.read_retries,
            s.retry_ns,
            s.checksum_errors,
            s.recomputes,
            s.disk_fetches,
            self.total_ns / self.baseline_total_ns,
        )
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let jobs = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .clamp(1, 8)
        });
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_FAULTS.json".to_string());

    let rates: &[f64] = if smoke { &[0.0, 0.05] } else { &[0.0, 0.01, 0.05, 0.15] };
    let backends = [Backend::Kryo, Backend::Cereal];

    // ---- Shuffle sweep -------------------------------------------------
    // Checksummed frames throughout (wire corruption must be
    // detectable); map-side spilling on so disk read errors fire too.
    let mut shuffle_cfg = if smoke { ShuffleConfig::smoke() } else { ShuffleConfig::full() };
    shuffle_cfg.jobs = jobs;
    shuffle_cfg.checksum = true;
    shuffle_cfg.spill_bytes = shuffle_cfg.flush_bytes;
    eprintln!(
        "faults: shuffle {} mappers x {} records -> {} reducers, rates {rates:?}, {jobs} jobs",
        shuffle_cfg.mappers, shuffle_cfg.records_per_mapper, shuffle_cfg.reducers
    );

    let mut shuffle_rows: Vec<ShuffleRow> = Vec::new();
    let mut baselines: Vec<String> = Vec::new();
    for backend in backends {
        let base_run = run_backend(&shuffle_cfg, backend).unwrap_or_else(|e| {
            eprintln!("fault-free {} run failed: {e}", backend.name());
            std::process::exit(1);
        });
        let base = base_run.report;
        baselines.push(format!(
            "    {{\"backend\": \"{}\", \"makespan_ns\": {:.3}, \"wire_bytes\": {},\n\
             \x20     \"fold_checksum\": \"{:016x}\"}}",
            base.name, base.net.makespan_ns, base.wire_bytes, base.fold_checksum
        ));
        for &rate in rates {
            let mut cfg = shuffle_cfg;
            cfg.faults = Some(FaultSpec::uniform(rate, FAULT_SEED));
            let run = run_backend(&cfg, backend).unwrap_or_else(|e| {
                eprintln!("{} at rate {rate} failed: {e}", backend.name());
                std::process::exit(1);
            });
            assert_eq!(
                run.report.fold_checksum, base.fold_checksum,
                "{} at rate {rate}: recovery must preserve the aggregate",
                backend.name()
            );
            if rate == 0.0 {
                // Self-check: zero-rate injection is the fault-free path.
                assert_eq!(run.report.wire_bytes, base.wire_bytes);
                assert_eq!(run.report.messages, base.messages);
                assert_eq!(run.report.net, base.net);
            }
            shuffle_rows.push(ShuffleRow {
                backend: backend.name(),
                rate,
                report: run.report,
                baseline_makespan_ns: base.net.makespan_ns,
            });
        }
    }

    let mut t = Table::new(&[
        "backend", "rate", "retries", "lost", "corrupt", "deaths", "accel", "spill",
        "goodput", "recovery", "makespan", "x base",
    ]);
    for r in &shuffle_rows {
        let f = r.report.faults.expect("sweep rows carry fault counters");
        t.row(vec![
            r.backend.to_string(),
            format!("{}", r.rate),
            f.retries.to_string(),
            f.lost_messages.to_string(),
            f.wire_corruptions.to_string(),
            f.mapper_deaths.to_string(),
            f.accel_faults.to_string(),
            f.spill_retries.to_string(),
            format!("{:.3}", f.goodput(r.report.wire_bytes)),
            ns(f.recovery_ns),
            ns(r.report.net.makespan_ns),
            format!("{:.2}", r.report.net.makespan_ns / r.baseline_makespan_ns),
        ]);
    }
    eprintln!("{}", t.render());

    // ---- Block-store sweep ---------------------------------------------
    // A tight budget forces spill-and-reload, so transient read errors
    // and corrupt spill images (recovered through lineage) both fire.
    let (partitions, records, passes) = if smoke { (6, 128, 3) } else { (12, 1024, 4) };
    let store_cfg = RddConfig {
        agg: AggConfig {
            mappers: partitions,
            records_per_mapper: records,
            distinct_keys: 64,
            seed: 0x5EED_B10C,
            skew: KeySkew::Uniform,
        },
        backend: store::Backend::Kryo,
        memory_fraction: 0.25,
        passes,
        policy: MissPolicy::Fetch,
        disk: sim::DiskConfig::ssd(),
        access: AccessPattern::Scan,
        jobs,
        checksum: true,
        fault: None,
    };
    let base = run_rdd(&store_cfg).unwrap_or_else(|e| {
        eprintln!("fault-free store run failed: {e}");
        std::process::exit(1);
    });
    assert!(base.fold_ok, "fault-free store run must fold correctly");

    let mut store_rows: Vec<StoreRow> = Vec::new();
    for &rate in rates {
        let mut cfg = store_cfg.clone();
        cfg.fault = Some(FaultConfig::uniform(rate, FAULT_SEED));
        let out = run_rdd(&cfg).unwrap_or_else(|e| {
            eprintln!("store at rate {rate} failed: {e}");
            std::process::exit(1);
        });
        assert!(out.fold_ok, "store at rate {rate}: recovery must preserve the fold");
        if rate == 0.0 {
            assert_eq!(out.total_ns, base.total_ns, "zero-rate store run is fault-free");
            assert_eq!(out.store, base.store);
        }
        store_rows.push(StoreRow {
            rate,
            total_ns: out.total_ns,
            stats: out.store,
            baseline_total_ns: base.total_ns,
        });
    }

    let mut t = Table::new(&["rate", "retries", "crc errs", "recomp", "fetches", "total", "x base"]);
    for r in &store_rows {
        t.row(vec![
            format!("{}", r.rate),
            r.stats.read_retries.to_string(),
            r.stats.checksum_errors.to_string(),
            r.stats.recomputes.to_string(),
            r.stats.disk_fetches.to_string(),
            ns(r.total_ns),
            format!("{:.2}", r.total_ns / r.baseline_total_ns),
        ]);
    }
    eprintln!("{}", t.render());

    let json = format!(
        "{{\n\
         \x20 \"generated_by\": \"cereal-bench --bin faults\",\n\
         \x20 \"smoke\": {smoke},\n\
         \x20 \"fault_seed\": {FAULT_SEED},\n\
         \x20 \"rates\": [{}],\n\
         \x20 \"shuffle_baseline\": [\n{}\n\x20 ],\n\
         \x20 \"shuffle_sweep\": [\n{}\n\x20 ],\n\
         \x20 \"store_baseline\": {{\"total_ns\": {:.3}, \"disk_fetches\": {}}},\n\
         \x20 \"store_sweep\": [\n{}\n\x20 ]\n\
         }}\n",
        rates.iter().map(f64::to_string).collect::<Vec<_>>().join(", "),
        baselines.join(",\n"),
        shuffle_rows.iter().map(ShuffleRow::to_json).collect::<Vec<_>>().join(",\n"),
        base.total_ns,
        base.store.disk_fetches,
        store_rows.iter().map(StoreRow::to_json).collect::<Vec<_>>().join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path}");
}
