//! The fault-injection experiment (`cargo run --release --bin faults`).
//!
//! Sweeps fault rates across shuffle backends (wire loss/corruption,
//! mapper deaths, accelerator faults, spill read errors — all injected
//! at once at the sweep rate) and across the block store (transient
//! read errors and spill-image corruption), then writes
//! `BENCH_FAULTS.json` with the recovery economics: goodput, retry
//! counts, re-executed maps, the share of the makespan spent
//! recovering, and the makespan inflation against the fault-free
//! baseline. Every number is simulated time or a deterministic counter,
//! and every fault draw comes from streams scoped by stable entity ids,
//! so the file is byte-identical for any `--jobs` value (CI diffs a
//! 1-job run against a 4-job run).
//!
//! The rate-0.0 sweep point doubles as a self-check: the harness
//! asserts it reproduces the fault-free baseline's numbers exactly.
//!
//! Flags: `--smoke` (small config), `--jobs N` (worker threads),
//! `--out PATH` (default `BENCH_FAULTS.json`).

use cereal_bench::table::{ns, Table};
use shuffle::{run_backend, Backend, FaultSpec, ShuffleConfig};
use sim::FaultConfig;
use store::{run_rdd, AccessPattern, MissPolicy, RddConfig};
use telemetry::{ratio, JsonWriter};
use workloads::{AggConfig, KeySkew};

const FAULT_SEED: u64 = 0xFA17_5EED;

/// Writes a fault rate with `Display` precision (0.05, not 0.050000).
fn rate_field(w: &mut JsonWriter, k: &str, rate: f64) {
    w.key(k);
    w.raw_val(&format!("{rate}"));
}

struct ShuffleRow {
    backend: &'static str,
    rate: f64,
    report: shuffle::BackendReport,
    baseline_makespan_ns: f64,
}

impl ShuffleRow {
    fn render(&self, w: &mut JsonWriter) {
        let f = self.report.faults.expect("sweep rows carry fault counters");
        w.begin_obj();
        w.field_str("backend", self.backend);
        rate_field(w, "rate", self.rate);
        w.field_f64("makespan_ns", self.report.net.makespan_ns, 3);
        w.field_u64("retries", f.retries);
        w.field_u64("lost_messages", f.lost_messages);
        w.field_u64("wire_corruptions", f.wire_corruptions);
        w.field_u64("checksum_errors", f.checksum_errors);
        w.field_u64("mapper_deaths", f.mapper_deaths);
        w.field_f64("reexec_ns", f.reexec_ns, 3);
        w.field_u64("accel_faults", f.accel_faults);
        w.field_f64("fallback_ns", f.fallback_ns, 3);
        w.field_u64("spill_retries", f.spill_retries);
        w.field_f64("recovery_ns", f.recovery_ns, 3);
        w.field_u64("fabric_bytes", f.fabric_bytes);
        w.field_f64("goodput", f.goodput(self.report.wire_bytes), 6);
        w.field_f64("recovery_share", ratio(f.recovery_ns, self.report.net.makespan_ns), 6);
        w.field_f64(
            "makespan_inflation",
            ratio(self.report.net.makespan_ns, self.baseline_makespan_ns),
            6,
        );
        w.field_str("fold_checksum", &format!("{:016x}", self.report.fold_checksum));
        w.end_obj();
    }
}

struct StoreRow {
    rate: f64,
    total_ns: f64,
    stats: store::StoreStats,
    baseline_total_ns: f64,
}

impl StoreRow {
    fn render(&self, w: &mut JsonWriter) {
        let s = &self.stats;
        w.begin_obj();
        rate_field(w, "rate", self.rate);
        w.field_f64("total_ns", self.total_ns, 3);
        w.field_u64("read_retries", s.read_retries);
        w.field_f64("retry_ns", s.retry_ns, 3);
        w.field_u64("checksum_errors", s.checksum_errors);
        w.field_u64("recomputes", s.recomputes);
        w.field_u64("disk_fetches", s.disk_fetches);
        w.field_f64("total_inflation", ratio(self.total_ns, self.baseline_total_ns), 6);
        w.end_obj();
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let jobs = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .clamp(1, 8)
        });
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_FAULTS.json".to_string());

    let rates: &[f64] = if smoke { &[0.0, 0.05] } else { &[0.0, 0.01, 0.05, 0.15] };
    let backends = [Backend::Kryo, Backend::Archive, Backend::Cereal];

    // ---- Shuffle sweep -------------------------------------------------
    // Checksummed frames throughout (wire corruption must be
    // detectable); map-side spilling on so disk read errors fire too.
    let mut shuffle_cfg = if smoke { ShuffleConfig::smoke() } else { ShuffleConfig::full() };
    shuffle_cfg.jobs = jobs;
    shuffle_cfg.checksum = true;
    shuffle_cfg.spill_bytes = shuffle_cfg.flush_bytes;
    eprintln!(
        "faults: shuffle {} mappers x {} records -> {} reducers, rates {rates:?}, {jobs} jobs",
        shuffle_cfg.mappers, shuffle_cfg.records_per_mapper, shuffle_cfg.reducers
    );

    let mut shuffle_rows: Vec<ShuffleRow> = Vec::new();
    let mut baselines: Vec<(&'static str, f64, u64, u64)> = Vec::new();
    for backend in backends {
        let base_run = run_backend(&shuffle_cfg, backend).unwrap_or_else(|e| {
            eprintln!("fault-free {} run failed: {e}", backend.name());
            std::process::exit(1);
        });
        let base = base_run.report;
        baselines.push((base.name, base.net.makespan_ns, base.wire_bytes, base.fold_checksum));
        for &rate in rates {
            let mut cfg = shuffle_cfg;
            cfg.faults = Some(FaultSpec::uniform(rate, FAULT_SEED));
            let run = run_backend(&cfg, backend).unwrap_or_else(|e| {
                eprintln!("{} at rate {rate} failed: {e}", backend.name());
                std::process::exit(1);
            });
            assert_eq!(
                run.report.fold_checksum, base.fold_checksum,
                "{} at rate {rate}: recovery must preserve the aggregate",
                backend.name()
            );
            if rate == 0.0 {
                // Self-check: zero-rate injection is the fault-free path.
                assert_eq!(run.report.wire_bytes, base.wire_bytes);
                assert_eq!(run.report.messages, base.messages);
                assert_eq!(run.report.net, base.net);
            }
            shuffle_rows.push(ShuffleRow {
                backend: backend.name(),
                rate,
                report: run.report,
                baseline_makespan_ns: base.net.makespan_ns,
            });
        }
    }

    let mut t = Table::new(&[
        "backend", "rate", "retries", "lost", "corrupt", "deaths", "accel", "spill",
        "goodput", "recovery", "makespan", "x base",
    ]);
    for r in &shuffle_rows {
        let f = r.report.faults.expect("sweep rows carry fault counters");
        t.row(vec![
            r.backend.to_string(),
            format!("{}", r.rate),
            f.retries.to_string(),
            f.lost_messages.to_string(),
            f.wire_corruptions.to_string(),
            f.mapper_deaths.to_string(),
            f.accel_faults.to_string(),
            f.spill_retries.to_string(),
            format!("{:.3}", f.goodput(r.report.wire_bytes)),
            ns(f.recovery_ns),
            ns(r.report.net.makespan_ns),
            format!("{:.2}", r.report.net.makespan_ns / r.baseline_makespan_ns),
        ]);
    }
    eprintln!("{}", t.render());

    // ---- Block-store sweep ---------------------------------------------
    // A tight budget forces spill-and-reload, so transient read errors
    // and corrupt spill images (recovered through lineage) both fire.
    let (partitions, records, passes) = if smoke { (6, 128, 3) } else { (12, 1024, 4) };
    let store_cfg = RddConfig {
        agg: AggConfig {
            mappers: partitions,
            records_per_mapper: records,
            distinct_keys: 64,
            seed: 0x5EED_B10C,
            skew: KeySkew::Uniform,
        },
        backend: store::Backend::Kryo,
        memory_fraction: 0.25,
        passes,
        policy: MissPolicy::Fetch,
        disk: sim::DiskConfig::ssd(),
        access: AccessPattern::Scan,
        jobs,
        checksum: true,
        fault: None,
    };
    let base = run_rdd(&store_cfg).unwrap_or_else(|e| {
        eprintln!("fault-free store run failed: {e}");
        std::process::exit(1);
    });
    assert!(base.fold_ok, "fault-free store run must fold correctly");

    let mut store_rows: Vec<StoreRow> = Vec::new();
    for &rate in rates {
        let mut cfg = store_cfg.clone();
        cfg.fault = Some(FaultConfig::uniform(rate, FAULT_SEED));
        let out = run_rdd(&cfg).unwrap_or_else(|e| {
            eprintln!("store at rate {rate} failed: {e}");
            std::process::exit(1);
        });
        assert!(out.fold_ok, "store at rate {rate}: recovery must preserve the fold");
        if rate == 0.0 {
            assert_eq!(out.total_ns, base.total_ns, "zero-rate store run is fault-free");
            assert_eq!(out.store, base.store);
        }
        store_rows.push(StoreRow {
            rate,
            total_ns: out.total_ns,
            stats: out.store,
            baseline_total_ns: base.total_ns,
        });
    }

    let mut t = Table::new(&["rate", "retries", "crc errs", "recomp", "fetches", "total", "x base"]);
    for r in &store_rows {
        t.row(vec![
            format!("{}", r.rate),
            r.stats.read_retries.to_string(),
            r.stats.checksum_errors.to_string(),
            r.stats.recomputes.to_string(),
            r.stats.disk_fetches.to_string(),
            ns(r.total_ns),
            format!("{:.2}", r.total_ns / r.baseline_total_ns),
        ]);
    }
    eprintln!("{}", t.render());

    let mut w = JsonWriter::new();
    w.begin_obj();
    w.field_str("generated_by", "cereal-bench --bin faults");
    w.field_bool("smoke", smoke);
    w.field_u64("fault_seed", FAULT_SEED);
    w.key("rates");
    w.begin_arr();
    for &rate in rates {
        w.raw_val(&format!("{rate}"));
    }
    w.end_arr();
    w.key("shuffle_baseline");
    w.begin_arr();
    for &(name, makespan_ns, wire_bytes, fold_checksum) in &baselines {
        w.begin_obj();
        w.field_str("backend", name);
        w.field_f64("makespan_ns", makespan_ns, 3);
        w.field_u64("wire_bytes", wire_bytes);
        w.field_str("fold_checksum", &format!("{fold_checksum:016x}"));
        w.end_obj();
    }
    w.end_arr();
    w.key("shuffle_sweep");
    w.begin_arr();
    for r in &shuffle_rows {
        r.render(&mut w);
    }
    w.end_arr();
    w.key("store_baseline");
    w.begin_obj();
    w.field_f64("total_ns", base.total_ns, 3);
    w.field_u64("disk_fetches", base.store.disk_fetches);
    w.end_obj();
    w.key("store_sweep");
    w.begin_arr();
    for r in &store_rows {
        r.render(&mut w);
    }
    w.end_arr();
    w.end_obj();
    let mut json = w.finish();
    json.push('\n');
    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path}");
}
