//! Regenerates Fig. 10: microbenchmark S/D speedups (incl. Vanilla).
fn main() {
    let scale = cereal_bench::micro_suite::scale_from_env();
    let results = cereal_bench::micro_suite::run(scale);
    println!("{}", cereal_bench::render::fig10(&results));
}
