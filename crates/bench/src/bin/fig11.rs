//! Regenerates Fig. 11: microbenchmark DRAM bandwidth utilization.
fn main() {
    let scale = cereal_bench::micro_suite::scale_from_env();
    let results = cereal_bench::micro_suite::run(scale);
    println!("{}", cereal_bench::render::fig11(&results));
}
