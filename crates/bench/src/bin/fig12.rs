//! Regenerates Fig. 12: the JSBS 88-library comparison.
fn main() {
    let r = cereal_bench::jsbs_suite::run();
    println!("{}", cereal_bench::render::fig12(&r));
}
