//! Regenerates Fig. 13: S/D speedups on the Spark applications.
fn main() {
    let scale = cereal_bench::spark_suite::scale_from_env();
    let results = cereal_bench::spark_suite::run(scale);
    println!("{}", cereal_bench::render::fig13(&results));
}
