//! Regenerates Fig. 14: end-to-end program speedups.
fn main() {
    let scale = cereal_bench::spark_suite::scale_from_env();
    let results = cereal_bench::spark_suite::run(scale);
    println!("{}", cereal_bench::render::fig14(&results));
}
