//! Regenerates Fig. 15: DRAM bandwidth utilization on Spark apps.
fn main() {
    let scale = cereal_bench::spark_suite::scale_from_env();
    let results = cereal_bench::spark_suite::run(scale);
    println!("{}", cereal_bench::render::fig15(&results));
}
