//! Regenerates Fig. 16: compression rate of the object packing scheme.
fn main() {
    let scale = cereal_bench::spark_suite::scale_from_env();
    let results = cereal_bench::spark_suite::run(scale);
    println!("{}", cereal_bench::render::fig16(&results));
}
