//! Regenerates Fig. 17: normalized S/D energy.
fn main() {
    let scale = cereal_bench::spark_suite::scale_from_env();
    let results = cereal_bench::spark_suite::run(scale);
    println!("{}", cereal_bench::render::fig17(&results));
}
