//! Regenerates Fig. 2: runtime breakdown of the Spark applications.
fn main() {
    let scale = cereal_bench::spark_suite::scale_from_env();
    let results = cereal_bench::spark_suite::run(scale);
    println!("{}", cereal_bench::render::fig2(&results));
}
