//! Performance trajectory harness (`cargo run --release --bin perf`).
//!
//! Times the functional hot paths over fixed seeds and writes
//! `BENCH_PERF.json` so future PRs can compare their wall-clock numbers
//! against a committed baseline:
//!
//! * **pack/unpack kernel** — the word-at-a-time `Packer`/`Unpacker`
//!   against the retained bit-by-bit reference
//!   (`sdformat::bitio::naive`), with byte-identical streams asserted
//!   before timing;
//! * **serializer round trips** — serialize + deserialize per software
//!   baseline on a fixed microbenchmark graph;
//! * **compiled plans** — interpretive field-walking vs compiled-plan
//!   execution per software backend, with byte-identical streams
//!   asserted before timing;
//! * **accelerator simulation** — wall-clock of one full cycle-model run
//!   (the simulated nanoseconds are recorded too, as a determinism
//!   anchor: optimizations must not move them);
//! * **archive crossover** — the zero-copy Archive backend's
//!   deserialization (validate in place + fold off the wire, simulated
//!   ns) against the Cereal DU and the fastest compiled software
//!   backend on dense, pointer-heavy, and text workload shapes;
//! * **experiment fan-out** — the eighteen `--bin all` units at one
//!   worker vs all available workers.
//!
//! Simulated times are deterministic; the wall-clock numbers in the JSON
//! are machine-dependent and only comparable against runs on the same
//! host. `--smoke` shrinks every iteration count for CI.

use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use cereal::CerealConfig;
use cereal_bench::{jsbs_suite, micro_suite, repeat_root, run_cereal, spark_suite};
use sdformat::bitio::naive::{NaiveBitReader, NaiveBitWriter};
use sdformat::pack::{EndMap, Packed};
use sdheap::builder::Init;
use sdheap::rng::Rng;
use sdheap::{Addr, FieldKind, GraphBuilder, Heap, KlassRegistry, ValueType};
use serializers::{
    fold_words_heap, Archive, ArchiveView, JavaSd, JsonLike, Kryo, NullSink, ProtoLike, Serializer,
    Skyway,
};
use workloads::{MicroBench, Scale, SparkApp, SparkScale};

/// Destination-heap base for reconstruction (clear of every source).
const DST_BASE: u64 = 0x40_0000_0000;

/// Milliseconds of the best (fastest) of `reps` runs of `f`, plus the
/// last result for correctness checks.
fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    assert!(reps > 0);
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        last = Some(r);
    }
    (best, last.expect("reps > 0"))
}

/// Fixed-seed mixed-width integer items — the relative addresses the
/// packer sees in practice, from 1-bit to full 64-bit values.
fn kernel_values(n: usize) -> Vec<u64> {
    let mut rng = Rng::new(0x5EED_CAFE);
    (0..n)
        .map(|_| {
            let width = rng.gen_range_u64(1, 65) as u32;
            rng.next_u64() >> (64 - width)
        })
        .collect()
}

/// The pre-optimization pack path: bit-by-bit writer, per-byte end-map
/// pushes. Semantically identical to `Packer::push_value`.
fn naive_pack(values: &[u64]) -> Packed {
    let mut w = NaiveBitWriter::new();
    let mut end_map = EndMap::new();
    for &v in values {
        let sig = (64 - v.leading_zeros()).max(1);
        let start = w.bit_len() / 8;
        w.push_bits(v, sig);
        w.push(true); // end bit
        w.pad_to_byte();
        let end = w.bit_len() / 8;
        for b in start..end {
            end_map.push(b == end - 1);
        }
    }
    Packed {
        bytes: w.into_bytes(),
        end_map,
        count: values.len(),
    }
}

/// The pre-optimization unpack path: per-bit end-map scan, bit-by-bit
/// decode through an intermediate bit vector.
fn naive_unpack(p: &Packed) -> Vec<u64> {
    let mut out = Vec::with_capacity(p.count);
    let mut byte_pos = 0usize;
    let limit = p.bytes.len().min(p.end_map.len());
    while byte_pos < limit {
        let start = byte_pos;
        let mut end = None;
        for i in start..limit {
            if p.end_map.get(i) {
                end = Some(i);
                break;
            }
        }
        let Some(end) = end else { break };
        byte_pos = end + 1;
        let mut bits = Vec::new();
        let mut r = NaiveBitReader::new(&p.bytes[start..=end]);
        while let Some(b) = r.next_bit() {
            bits.push(b);
        }
        let last = bits.iter().rposition(|&b| b).expect("end bit present");
        let mut v = 0u64;
        for &b in &bits[..last] {
            v = (v << 1) | u64::from(b);
        }
        out.push(v);
    }
    out
}

struct KernelPerf {
    values: usize,
    reps: usize,
    naive_pack_ms: f64,
    fast_pack_ms: f64,
    naive_unpack_ms: f64,
    fast_unpack_ms: f64,
}

impl KernelPerf {
    fn pack_speedup(&self) -> f64 {
        self.naive_pack_ms / self.fast_pack_ms
    }
    fn unpack_speedup(&self) -> f64 {
        self.naive_unpack_ms / self.fast_unpack_ms
    }
}

fn kernel_bench(n: usize, reps: usize) -> KernelPerf {
    let values = kernel_values(n);
    let (naive_pack_ms, naive_packed) = best_of(reps, || naive_pack(black_box(&values)));
    let (fast_pack_ms, fast_packed) = best_of(reps, || {
        Packed::from_values(black_box(&values).iter().copied())
    });
    assert_eq!(
        naive_packed.bytes, fast_packed.bytes,
        "fast packer must emit the reference byte stream"
    );
    assert_eq!(naive_packed.end_map, fast_packed.end_map, "end maps must match");

    let (naive_unpack_ms, naive_out) = best_of(reps, || naive_unpack(black_box(&fast_packed)));
    let (fast_unpack_ms, fast_out) = best_of(reps, || black_box(&fast_packed).to_values());
    assert_eq!(naive_out, values, "naive unpack round trip");
    assert_eq!(fast_out, values, "fast unpack round trip");

    KernelPerf {
        values: n,
        reps,
        naive_pack_ms,
        fast_pack_ms,
        naive_unpack_ms,
        fast_unpack_ms,
    }
}

/// The pre-optimization end-map scan: bit-at-a-time `get` probing,
/// semantically identical to `EndMap::next_set`.
fn naive_next_set(map: &EndMap, from: usize, limit: usize) -> Option<usize> {
    let limit = limit.min(map.len());
    (from..limit).find(|&i| map.get(i))
}

struct EndMapPerf {
    bench: &'static str,
    payload_bytes: usize,
    items: usize,
    reps: usize,
    naive_ms: f64,
    fast_ms: f64,
}

impl EndMapPerf {
    fn speedup(&self) -> f64 {
        self.naive_ms / self.fast_ms
    }
}

/// End-map item scan over a dense-graph accelerator stream — the regime
/// where one layout bitmap spans hundreds of payload bytes, so
/// `next_set` walks long runs of clear bits. Splits the whole bitmap
/// section into items with the word-at-a-time scan vs the bit-at-a-time
/// reference, with identical item boundaries asserted.
fn endmap_bench(scale: Scale, reps: usize) -> EndMapPerf {
    let bench = MicroBench::GraphDense;
    let (mut heap, reg, root) = bench.build(scale);
    let mut accel = cereal::Accelerator::new(CerealConfig::paper());
    accel.register_all(&reg).expect("register classes");
    let bytes = accel.serialize(&mut heap, &reg, root).expect("serialize").bytes;
    let stream = sdformat::stream::CerealStream::from_bytes(&bytes).expect("well-formed stream");
    let map = stream.bitmaps.end_map;

    let scan = |next: &dyn Fn(usize, usize) -> Option<usize>| {
        let mut pos = 0usize;
        let mut items = 0usize;
        while let Some(end) = next(pos, map.len()) {
            items += 1;
            pos = end + 1;
        }
        items
    };
    let (naive_ms, naive_items) =
        best_of(reps, || scan(&|f, l| naive_next_set(black_box(&map), f, l)));
    let (fast_ms, fast_items) = best_of(reps, || scan(&|f, l| black_box(&map).next_set(f, l)));
    assert_eq!(naive_items, fast_items, "scans must agree on item boundaries");
    assert_eq!(fast_items, map.item_count(), "scan must find every item");

    EndMapPerf {
        bench: bench.name(),
        payload_bytes: map.len(),
        items: fast_items,
        reps,
        naive_ms,
        fast_ms,
    }
}

struct SerPerf {
    name: String,
    iters: usize,
    ser_ms: f64,
    de_ms: f64,
    stream_bytes: usize,
}

/// Serialize + deserialize wall-clock per software baseline over a fixed
/// Tiny microbenchmark graph. Serialization reuses one output buffer
/// (`serialize_into`); deserialization reconstructs into a fresh heap
/// each iteration, as the benchmark suites do.
fn serializer_roundtrips(iters: usize) -> Vec<SerPerf> {
    let (mut heap, reg, root) = MicroBench::ListSmall.build(Scale::Tiny);
    let cap = heap.capacity_bytes();
    let sers: Vec<Box<dyn Serializer>> = vec![
        Box::new(JavaSd::new()),
        Box::new(Kryo::new()),
        Box::new(Skyway::new()),
        Box::new(JsonLike::new()),
        Box::new(ProtoLike::new()),
        Box::new(Archive::new()),
    ];
    sers.iter()
        .map(|ser| {
            let mut sink = NullSink;
            let mut out = Vec::new();
            // Warm-up establishes the reference stream length.
            ser.serialize_into(&mut heap, &reg, root, &mut sink, &mut out)
                .expect("serialize");
            let stream_bytes = out.len();

            let t0 = Instant::now();
            for _ in 0..iters {
                let n = ser
                    .serialize_into(&mut heap, &reg, root, &mut sink, &mut out)
                    .expect("serialize");
                assert_eq!(n, stream_bytes, "{}: stream length drifted", ser.name());
            }
            let ser_ms = t0.elapsed().as_secs_f64() * 1e3;

            let t0 = Instant::now();
            for _ in 0..iters {
                let mut dst = Heap::with_base(Addr(DST_BASE), cap);
                ser.deserialize(&out, &reg, &mut dst, &mut sink)
                    .expect("deserialize");
                black_box(&dst);
            }
            let de_ms = t0.elapsed().as_secs_f64() * 1e3;

            SerPerf {
                name: ser.name().to_string(),
                iters,
                ser_ms,
                de_ms,
                stream_bytes,
            }
        })
        .collect()
}

struct PlanPerf {
    name: String,
    iters: usize,
    interp_ser_ms: f64,
    compiled_ser_ms: f64,
    interp_de_ms: f64,
    compiled_de_ms: f64,
    stream_bytes: usize,
}

impl PlanPerf {
    fn ser_speedup(&self) -> f64 {
        self.interp_ser_ms / self.compiled_ser_ms
    }
    fn de_speedup(&self) -> f64 {
        self.interp_de_ms / self.compiled_de_ms
    }
}

/// A field-program stress graph: many mixed-width primitive fields (long
/// copy runs split once by a reference), heavy sharing through one leaf,
/// everything rooted in an `Object[]` — the shape where per-object
/// `fields()` walking costs the most.
fn plan_bench_graph() -> (Heap, KlassRegistry, Addr) {
    let mut b = GraphBuilder::new(1 << 18);
    let r = b.klass(
        "R",
        vec![
            FieldKind::Value(ValueType::Long),
            FieldKind::Value(ValueType::Int),
            FieldKind::Value(ValueType::Char),
            FieldKind::Value(ValueType::Byte),
            FieldKind::Value(ValueType::Boolean),
            FieldKind::Value(ValueType::Double),
            FieldKind::Ref,
            FieldKind::Value(ValueType::Long),
            FieldKind::Value(ValueType::Int),
            FieldKind::Value(ValueType::Double),
            FieldKind::Value(ValueType::Long),
            FieldKind::Value(ValueType::Int),
            FieldKind::Value(ValueType::Long),
        ],
    );
    let leaf_k = b.klass("Leaf", vec![FieldKind::Value(ValueType::Long)]);
    let arr = b.array_klass("Object[]", FieldKind::Ref);
    let leaf = b.object(leaf_k, &[Init::Val(7)]).unwrap();
    let mut rng = Rng::new(0xC0DE_F00D);
    let objects: Vec<Addr> = (0..512)
        .map(|_| {
            b.object(
                r,
                &[
                    Init::Val(rng.next_u64()),
                    Init::Val(rng.next_u64() & 0xffff_ffff),
                    Init::Val(rng.next_u64() & 0xffff),
                    Init::Val(rng.next_u64() & 0xff),
                    Init::Val(rng.next_u64() & 1),
                    Init::Val(f64::to_bits(rng.next_u64() as f64)),
                    Init::Ref(leaf),
                    Init::Val(rng.next_u64()),
                    Init::Val(rng.next_u64() & 0xffff_ffff),
                    Init::Val(f64::to_bits(0.5)),
                    Init::Val(rng.next_u64()),
                    Init::Val(rng.next_u64() & 0xffff_ffff),
                    Init::Val(rng.next_u64()),
                ],
            )
            .unwrap()
        })
        .collect();
    let root = b.ref_array(arr, &objects).unwrap();
    let (heap, reg) = b.finish();
    (heap, reg, root)
}

/// Interpretive vs compiled-plan execution per software backend, on the
/// plan stress graph. Streams are asserted byte-identical before any
/// timing; both modes then run `iters` serializations and
/// deserializations, best of `reps`.
fn compiled_plan_bench(iters: usize, reps: usize) -> Vec<PlanPerf> {
    let (mut heap, reg, root) = plan_bench_graph();
    let cap = heap.capacity_bytes();
    let modes: Vec<(Box<dyn Serializer>, Box<dyn Serializer>)> = vec![
        (
            Box::new(JavaSd::interpretive()),
            Box::new(JavaSd::with_compiled_plans(true)),
        ),
        (
            Box::new(Kryo::interpretive()),
            Box::new(Kryo::with_compiled_plans(true)),
        ),
        (
            Box::new(ProtoLike::interpretive()),
            Box::new(ProtoLike::with_compiled_plans(true)),
        ),
        (
            Box::new(JsonLike::interpretive()),
            Box::new(JsonLike::with_compiled_plans(true)),
        ),
    ];
    modes
        .iter()
        .map(|(interp, comp)| {
            let mut sink = NullSink;
            let mut iout = Vec::new();
            let mut cout = Vec::new();
            interp
                .serialize_into(&mut heap, &reg, root, &mut sink, &mut iout)
                .expect("serialize");
            comp.serialize_into(&mut heap, &reg, root, &mut sink, &mut cout)
                .expect("serialize");
            assert_eq!(
                iout,
                cout,
                "{}: compiled stream must be byte-identical",
                interp.name()
            );

            let mut time_ser = |ser: &dyn Serializer| {
                let mut out = Vec::new();
                best_of(reps, || {
                    for _ in 0..iters {
                        ser.serialize_into(&mut heap, &reg, root, &mut sink, &mut out)
                            .expect("serialize");
                    }
                    black_box(&out);
                })
                .0
            };
            let interp_ser_ms = time_ser(interp.as_ref());
            let compiled_ser_ms = time_ser(comp.as_ref());

            let mut time_de = |ser: &dyn Serializer| {
                best_of(reps, || {
                    for _ in 0..iters {
                        let mut dst = Heap::with_base(Addr(DST_BASE), cap);
                        ser.deserialize(&iout, &reg, &mut dst, &mut sink)
                            .expect("deserialize");
                        black_box(&dst);
                    }
                })
                .0
            };
            let interp_de_ms = time_de(interp.as_ref());
            let compiled_de_ms = time_de(comp.as_ref());

            PlanPerf {
                name: interp.name().to_string(),
                iters,
                interp_ser_ms,
                compiled_ser_ms,
                interp_de_ms,
                compiled_de_ms,
                stream_bytes: iout.len(),
            }
        })
        .collect()
}

struct CrossoverPerf {
    workload: &'static str,
    records: u32,
    stream_bytes: usize,
    archive_validate_ns: f64,
    archive_fold_ns: f64,
    cereal_du_ns: f64,
    sw_name: String,
    sw_de_ns: f64,
}

impl CrossoverPerf {
    /// Archive's full receive-side decode cost: validate once, then
    /// consume every data word off the wire.
    fn archive_de_ns(&self) -> f64 {
        self.archive_validate_ns + self.archive_fold_ns
    }
    fn speedup_vs_sw(&self) -> f64 {
        self.sw_de_ns / self.archive_de_ns()
    }
    fn speedup_vs_cereal(&self) -> f64 {
        self.cereal_du_ns / self.archive_de_ns()
    }
}

/// A payload-dominated graph: 64 `double[256]` arrays under one
/// `Object[]` root — almost all bytes are value words, the regime where
/// validation (per record + per reference) costs the least relative to
/// reconstruction (per word).
fn dense_arrays_graph() -> (Heap, KlassRegistry, Addr) {
    let mut b = GraphBuilder::new(1 << 21);
    let d = b.array_klass("double[]", FieldKind::Value(ValueType::Double));
    let o = b.array_klass("Object[]", FieldKind::Ref);
    let mut rng = Rng::new(0xA2C4_11E5);
    let arrays: Vec<Addr> = (0..64)
        .map(|_| {
            let vals: Vec<u64> =
                (0..256).map(|_| f64::to_bits(rng.next_u64() as f64 * 1e-3)).collect();
            b.value_array(d, &vals).unwrap()
        })
        .collect();
    let root = b.ref_array(o, &arrays).unwrap();
    let (heap, reg) = b.finish();
    (heap, reg, root)
}

/// The accelerator-vs-zero-copy crossover study (simulated ns, fully
/// deterministic). For each workload shape, Archive's deserialization
/// (validate the image once + a narrated fold over every data word on
/// the wire) is compared against the Cereal DU's reconstruction and the
/// fastest compiled software backend's reconstruction — both of which
/// leave subsequent heap reads unaccounted, exactly as the suites do,
/// so the comparison is conservative *against* Archive. The wire fold
/// is asserted bit-identical to the mirror heap walk before anything is
/// reported.
fn archive_crossover() -> Vec<CrossoverPerf> {
    let workloads: Vec<(&'static str, (Heap, KlassRegistry, Addr))> = vec![
        ("dense_arrays", dense_arrays_graph()),
        ("pointer_tree", MicroBench::TreeNarrow.build(Scale::Tiny)),
        ("text_media", workloads::jsbs::media_content()),
    ];
    workloads
        .into_iter()
        .map(|(name, (mut heap, reg, root))| {
            let mut sink = NullSink;
            heap.gc_clear_serialization_metadata(&reg);
            let bytes = Archive::new()
                .serialize(&mut heap, &reg, root, &mut sink)
                .expect("archive serialize");
            // Validate and fold on one core: the fold continues on the
            // caches validation warmed, exactly like a consumer that
            // checks a batch and immediately reduces it.
            let mut cpu = sim::Cpu::host();
            let view = ArchiveView::validate(&bytes, &reg, &mut cpu).expect("fresh archive");
            let archive_validate_ns = cpu.report().ns;
            let wire_fold = view.fold_words(&mut cpu);
            let archive_fold_ns = cpu.report().ns - archive_validate_ns;
            assert_eq!(
                wire_fold,
                fold_words_heap(&heap, &reg, root),
                "{name}: zero-copy fold diverged from the heap walk"
            );
            let records = view.object_count();
            drop(view);

            let sers: Vec<Box<dyn Serializer>> = vec![
                Box::new(JavaSd::new()),
                Box::new(Kryo::new()),
                Box::new(Skyway::new()),
                Box::new(ProtoLike::new()),
            ];
            let (sw_name, sw_de_ns) = sers
                .iter()
                .map(|ser| {
                    heap.gc_clear_serialization_metadata(&reg);
                    let sbytes =
                        ser.serialize(&mut heap, &reg, root, &mut sink).expect("serialize");
                    let mut cpu = sim::Cpu::host();
                    let mut dst = Heap::with_base(Addr(DST_BASE), heap.capacity_bytes());
                    ser.deserialize(&sbytes, &reg, &mut dst, &mut cpu).expect("deserialize");
                    (ser.name().to_string(), cpu.report().ns)
                })
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty backend list");

            let m = run_cereal(CerealConfig::paper(), &mut heap, &reg, &[root]);

            CrossoverPerf {
                workload: name,
                records,
                stream_bytes: bytes.len(),
                archive_validate_ns,
                archive_fold_ns,
                cereal_du_ns: m.de_ns,
                sw_name,
                sw_de_ns,
            }
        })
        .collect()
}

struct AccelPerf {
    bench: &'static str,
    wall_ms: f64,
    sim_ser_ns: f64,
    sim_de_ns: f64,
    stream_bytes: u64,
}

/// One full accelerator serialize + deserialize cycle-model run. The
/// simulated nanoseconds are part of the record: a perf PR that moves
/// them changed the model, not just the wall clock.
fn accel_sim() -> AccelPerf {
    let bench = MicroBench::TreeNarrow;
    let (mut heap, reg, root) = bench.build(Scale::Tiny);
    let roots = repeat_root(root, 8);
    let t0 = Instant::now();
    let m = run_cereal(CerealConfig::paper(), &mut heap, &reg, &roots);
    AccelPerf {
        bench: bench.name(),
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        sim_ser_ns: m.ser_ns,
        sim_de_ns: m.de_ns,
        stream_bytes: m.bytes,
    }
}

/// Number of `--bin all` experiment units (six micro + six JSBS measured
/// runs + six Spark apps).
const FANOUT_UNITS: usize = 6 + jsbs_suite::MEASURED_UNITS + 6;

/// Runs the eighteen `--bin all` experiment units at Tiny scale on
/// `jobs` worker threads; returns the wall-clock milliseconds.
fn run_units(jobs: usize) -> f64 {
    let benches = MicroBench::all();
    let apps = SparkApp::all();
    let next = AtomicUsize::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let unit = next.fetch_add(1, Ordering::Relaxed);
                match unit {
                    0..=5 => {
                        black_box(micro_suite::run_one(benches[unit], Scale::Tiny));
                    }
                    6..=11 => {
                        black_box(jsbs_suite::run_measured(unit - 6));
                    }
                    12..=17 => {
                        black_box(spark_suite::run_one(apps[unit - 12], SparkScale::Tiny));
                    }
                    _ => break,
                }
            });
        }
    });
    t0.elapsed().as_secs_f64() * 1e3
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Fixed workload sizes; --smoke shrinks them for CI.
    let (kernel_n, kernel_reps, ser_iters, fanout_reps) =
        if smoke { (1 << 12, 3, 8, 1) } else { (1 << 16, 5, 64, 2) };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let par_jobs = cores.clamp(1, FANOUT_UNITS);

    eprintln!("pack/unpack kernel ({kernel_n} values, best of {kernel_reps})...");
    let kernel = kernel_bench(kernel_n, kernel_reps);
    eprintln!(
        "  pack   naive {:.3} ms / fast {:.3} ms = {:.1}x",
        kernel.naive_pack_ms,
        kernel.fast_pack_ms,
        kernel.pack_speedup()
    );
    eprintln!(
        "  unpack naive {:.3} ms / fast {:.3} ms = {:.1}x",
        kernel.naive_unpack_ms,
        kernel.fast_unpack_ms,
        kernel.unpack_speedup()
    );

    let endmap_scale = if smoke { Scale::Tiny } else { Scale::Scaled };
    eprintln!("end-map item scan (Graph-dense, best of {kernel_reps})...");
    let endmap = endmap_bench(endmap_scale, kernel_reps);
    eprintln!(
        "  {} items over {} B: naive {:.3} ms / fast {:.3} ms = {:.1}x",
        endmap.items,
        endmap.payload_bytes,
        endmap.naive_ms,
        endmap.fast_ms,
        endmap.speedup()
    );

    eprintln!("serializer round trips ({ser_iters} iterations each)...");
    let sers = serializer_roundtrips(ser_iters);
    for s in &sers {
        eprintln!(
            "  {:<10} ser {:.3} ms, de {:.3} ms ({} B/stream)",
            s.name, s.ser_ms, s.de_ms, s.stream_bytes
        );
    }

    let (plan_iters, plan_reps) = if smoke { (4, 3) } else { (32, 5) };
    eprintln!("compiled plans ({plan_iters} iterations, best of {plan_reps}, interpretive vs compiled)...");
    let plans = compiled_plan_bench(plan_iters, plan_reps);
    for p in &plans {
        eprintln!(
            "  {:<10} ser {:.3} -> {:.3} ms ({:.2}x), de {:.3} -> {:.3} ms ({:.2}x), {} B/stream identical",
            p.name,
            p.interp_ser_ms,
            p.compiled_ser_ms,
            p.ser_speedup(),
            p.interp_de_ms,
            p.compiled_de_ms,
            p.de_speedup(),
            p.stream_bytes
        );
    }

    eprintln!("accelerator simulation run...");
    let accel = accel_sim();
    eprintln!(
        "  {} in {:.3} ms wall (simulated ser {:.1} ns, de {:.1} ns)",
        accel.bench, accel.wall_ms, accel.sim_ser_ns, accel.sim_de_ns
    );

    eprintln!("archive crossover (zero-copy validate+fold vs Cereal DU vs fastest software)...");
    let crossover = archive_crossover();
    for c in &crossover {
        eprintln!(
            "  {:<13} archive {:.1} ns (validate {:.1} + fold {:.1}) vs {} {:.1} ns ({:.2}x) \
             vs Cereal DU {:.1} ns ({:.2}x), {} records, {} B",
            c.workload,
            c.archive_de_ns(),
            c.archive_validate_ns,
            c.archive_fold_ns,
            c.sw_name,
            c.sw_de_ns,
            c.speedup_vs_sw(),
            c.cereal_du_ns,
            c.speedup_vs_cereal(),
            c.records,
            c.stream_bytes
        );
    }

    eprintln!(
        "experiment fan-out ({FANOUT_UNITS} units, 1 vs {par_jobs} worker(s), \
         best of {fanout_reps})..."
    );
    let (seq_ms, ()) = best_of(fanout_reps, || {
        run_units(1);
    });
    let (par_ms, ()) = best_of(fanout_reps, || {
        run_units(par_jobs);
    });
    eprintln!(
        "  sequential {seq_ms:.1} ms, {par_jobs} worker(s) {par_ms:.1} ms = {:.2}x",
        seq_ms / par_ms
    );

    let mut sers_json = String::new();
    for (i, s) in sers.iter().enumerate() {
        if i > 0 {
            sers_json.push_str(",\n");
        }
        sers_json.push_str(&format!(
            "    {{\"name\": \"{}\", \"iters\": {}, \"ser_ms\": {:.3}, \"de_ms\": {:.3}, \"stream_bytes\": {}}}",
            s.name, s.iters, s.ser_ms, s.de_ms, s.stream_bytes
        ));
    }
    let mut plans_json = String::new();
    for (i, p) in plans.iter().enumerate() {
        if i > 0 {
            plans_json.push_str(",\n");
        }
        plans_json.push_str(&format!(
            "    {{\"name\": \"{}\", \"iters\": {}, \
             \"interp_ser_ms\": {:.3}, \"compiled_ser_ms\": {:.3}, \"ser_speedup\": {:.2}, \
             \"interp_de_ms\": {:.3}, \"compiled_de_ms\": {:.3}, \"de_speedup\": {:.2}, \
             \"stream_bytes\": {}, \"streams_identical\": true}}",
            p.name,
            p.iters,
            p.interp_ser_ms,
            p.compiled_ser_ms,
            p.ser_speedup(),
            p.interp_de_ms,
            p.compiled_de_ms,
            p.de_speedup(),
            p.stream_bytes
        ));
    }
    let mut crossover_json = String::new();
    for (i, c) in crossover.iter().enumerate() {
        if i > 0 {
            crossover_json.push_str(",\n");
        }
        crossover_json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"records\": {}, \"stream_bytes\": {}, \
             \"archive_validate_ns\": {:.3}, \"archive_fold_ns\": {:.3}, \
             \"archive_de_ns\": {:.3}, \
             \"cereal_du_ns\": {:.3}, \"speedup_vs_cereal\": {:.3}, \
             \"sw_name\": \"{}\", \"sw_de_ns\": {:.3}, \"speedup_vs_sw\": {:.3}, \
             \"folds_identical\": true}}",
            c.workload,
            c.records,
            c.stream_bytes,
            c.archive_validate_ns,
            c.archive_fold_ns,
            c.archive_de_ns(),
            c.cereal_du_ns,
            c.speedup_vs_cereal(),
            c.sw_name,
            c.sw_de_ns,
            c.speedup_vs_sw(),
        ));
    }
    let json = format!(
        "{{\n\
         \x20 \"generated_by\": \"cereal-bench --bin perf\",\n\
         \x20 \"smoke\": {smoke},\n\
         \x20 \"available_parallelism\": {cores},\n\
         \x20 \"pack_kernel\": {{\n\
         \x20   \"values\": {kv}, \"reps\": {kr},\n\
         \x20   \"naive_pack_ms\": {np:.3}, \"fast_pack_ms\": {fp:.3}, \"pack_speedup\": {ps:.2},\n\
         \x20   \"naive_unpack_ms\": {nu:.3}, \"fast_unpack_ms\": {fu:.3}, \"unpack_speedup\": {us:.2},\n\
         \x20   \"streams_identical\": true\n\
         \x20 }},\n\
         \x20 \"endmap_scan\": {{\n\
         \x20   \"bench\": \"{eb}\", \"payload_bytes\": {epb}, \"items\": {ei}, \"reps\": {er},\n\
         \x20   \"naive_ms\": {en:.3}, \"fast_ms\": {ef:.3}, \"speedup\": {es:.2},\n\
         \x20   \"boundaries_identical\": true\n\
         \x20 }},\n\
         \x20 \"serializers\": [\n{sj}\n\x20 ],\n\
         \x20 \"compiled_plans\": [\n{plj}\n\x20 ],\n\
         \x20 \"accel_sim\": {{\n\
         \x20   \"bench\": \"{ab}\", \"wall_ms\": {aw:.3},\n\
         \x20   \"sim_ser_ns\": {asn:.3}, \"sim_de_ns\": {adn:.3}, \"stream_bytes\": {asb}\n\
         \x20 }},\n\
         \x20 \"archive_crossover\": [\n{cj}\n\x20 ],\n\
         \x20 \"fanout\": {{\n\
         \x20   \"units\": {fnu}, \"seq_jobs\": 1, \"par_jobs\": {pj},\n\
         \x20   \"seq_ms\": {sm:.1}, \"par_ms\": {pm:.1}, \"speedup\": {fs:.2}\n\
         \x20 }}\n\
         }}\n",
        kv = kernel.values,
        kr = kernel.reps,
        np = kernel.naive_pack_ms,
        fp = kernel.fast_pack_ms,
        ps = kernel.pack_speedup(),
        nu = kernel.naive_unpack_ms,
        fu = kernel.fast_unpack_ms,
        us = kernel.unpack_speedup(),
        eb = endmap.bench,
        epb = endmap.payload_bytes,
        ei = endmap.items,
        er = endmap.reps,
        en = endmap.naive_ms,
        ef = endmap.fast_ms,
        es = endmap.speedup(),
        sj = sers_json,
        plj = plans_json,
        cj = crossover_json,
        ab = accel.bench,
        aw = accel.wall_ms,
        asn = accel.sim_ser_ns,
        adn = accel.sim_de_ns,
        asb = accel.stream_bytes,
        fnu = FANOUT_UNITS,
        pj = par_jobs,
        sm = seq_ms,
        pm = par_ms,
        fs = seq_ms / par_ms,
    );
    std::fs::write("BENCH_PERF.json", &json).expect("write BENCH_PERF.json");
    println!("wrote BENCH_PERF.json");
    print!("{json}");
}
