//! The shuffle-service experiment (`cargo run --release --bin shuffle`).
//!
//! Runs the Spark-like aggregation workload through the multi-executor
//! shuffle service for every software serializer and the Cereal
//! accelerator, then once more under GC pressure, and writes
//! `BENCH_SHUFFLE.json`. Every number in the JSON is simulated time or a
//! deterministic counter — the file is byte-identical for any `--jobs`
//! value (CI diffs a 1-job run against a 4-job run).
//!
//! Flags: `--smoke` (small config), `--jobs N` (worker threads),
//! `--out PATH` (default `BENCH_SHUFFLE.json`).

use cereal_bench::table::{ns, Table};
use shuffle::{run_suite, Backend, ShuffleConfig, ShuffleReport};
use telemetry::json::nest;

fn summarize(title: &str, report: &ShuffleReport) {
    eprintln!("{title}");
    let mut t = Table::new(&[
        "backend",
        "msgs",
        "wire KB",
        "ser busy",
        "de busy",
        "net",
        "makespan",
        "Mrec/s",
        "blocks",
        "gc pause",
    ]);
    for b in &report.backends {
        t.row(vec![
            b.name.to_string(),
            b.messages.to_string(),
            format!("{}", b.wire_bytes >> 10),
            ns(b.ser_busy_ns),
            ns(b.de_busy_ns),
            ns(b.net.net_ns),
            ns(b.net.makespan_ns),
            format!("{:.2}", b.records_per_sec() / 1e6),
            b.net.backpressure_blocks.to_string(),
            b.gc.map_or("-".into(), |g| ns(g.pause_ns)),
        ]);
    }
    eprintln!("{}", t.render());
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let jobs = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .clamp(1, 8)
        });
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_SHUFFLE.json".to_string());

    let mut cfg = if smoke { ShuffleConfig::smoke() } else { ShuffleConfig::full() };
    cfg.jobs = jobs;
    eprintln!(
        "shuffle: {} mappers x {} records -> {} reducers over {}, {} jobs",
        cfg.mappers, cfg.records_per_mapper, cfg.reducers, cfg.link_name, cfg.jobs
    );

    // Main sweep: every backend, GC pressure off.
    let main = run_suite(&cfg, Backend::all()).unwrap_or_else(|e| {
        eprintln!("shuffle suite failed: {e}");
        std::process::exit(1);
    });
    summarize("all backends:", &main);

    // GC-pressure sweep: the fastest software baseline and the
    // accelerator, with collections between record waves.
    let mut gc_cfg = cfg;
    gc_cfg.gc_pressure = true;
    let gc = run_suite(&gc_cfg, &[Backend::Kryo, Backend::Cereal]).unwrap_or_else(|e| {
        eprintln!("shuffle gc suite failed: {e}");
        std::process::exit(1);
    });
    summarize("under GC pressure:", &gc);

    let json = format!(
        "{{\n\
         \x20 \"generated_by\": \"cereal-bench --bin shuffle\",\n\
         \x20 \"smoke\": {smoke},\n\
         \x20 \"main\": {},\n\
         \x20 \"gc_pressure\": {}\n\
         }}\n",
        nest(&main.to_json()),
        nest(&gc.to_json()),
    );
    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path}");
}
