//! Extension experiment: end-to-end distributed shuffle.
//!
//! The paper motivates Cereal with inter-node data transfers: the sender
//! serializes, the wire carries bytes, the receiver deserializes, and the
//! three stages pipeline per partition. This experiment runs that whole
//! path for Java S/D, Kryo and Cereal over 10/40/100 GbE and reports
//! where the bottleneck sits — the punchline being that Cereal moves the
//! bottleneck from S/D to the network itself.

use cereal::Accelerator;
use cereal_bench::table::{ns, Table};
use sdheap::{Addr, Heap};
use serializers::{JavaSd, Kryo, NullSink, Serializer};
use sim::{Cpu, Link, LinkConfig};
use workloads::{SparkApp, SparkScale};

/// Per-batch stage timings for one serializer.
struct StageTimes {
    name: String,
    /// Parallel servers per S/D stage: 1 host core for software, 8 units
    /// for the accelerator.
    ways: usize,
    ser: Vec<f64>,
    net_bytes: Vec<u64>,
    de: Vec<f64>,
}

fn software_stages(
    ser: &dyn Serializer,
    ds: &mut workloads::SparkDataset,
    batches: &[Addr],
) -> StageTimes {
    let mut out = StageTimes {
        name: ser.name().to_string(),
        ways: 1,
        ser: Vec::new(),
        net_bytes: Vec::new(),
        de: Vec::new(),
    };
    for &b in batches {
        let mut cpu = Cpu::host();
        let bytes = ser.serialize(&mut ds.heap, &ds.reg, b, &mut NullSink).expect("ok");
        ser.serialize(&mut ds.heap, &ds.reg, b, &mut cpu).expect("ok");
        out.ser.push(cpu.report().ns);
        out.net_bytes.push(bytes.len() as u64);
        let mut de_cpu = Cpu::host();
        let mut dst = Heap::with_base(Addr(0x40_0000_0000), ds.heap.capacity_bytes());
        ser.deserialize(&bytes, &ds.reg, &mut dst, &mut de_cpu).expect("ok");
        out.de.push(de_cpu.report().ns);
    }
    out
}

fn cereal_stages(ds: &mut workloads::SparkDataset, batches: &[Addr]) -> StageTimes {
    let mut out = StageTimes {
        name: "Cereal".into(),
        ways: 8,
        ser: Vec::new(),
        net_bytes: Vec::new(),
        de: Vec::new(),
    };
    let mut accel = Accelerator::paper();
    accel.register_all(&ds.reg).expect("register");
    ds.heap.gc_clear_serialization_metadata(&ds.reg);
    for &b in batches {
        let r = accel.serialize(&mut ds.heap, &ds.reg, b).expect("ok");
        out.ser.push(r.run.busy_ns());
        out.net_bytes.push(r.bytes.len() as u64);
        let mut dst = Heap::with_base(Addr(0x40_0000_0000), ds.heap.capacity_bytes());
        let de = accel.deserialize(&r.bytes, &mut dst).expect("ok");
        out.de.push(de.run.busy_ns());
    }
    out
}

/// Pipelines the three stages per batch: batch i can be on the wire while
/// batch i+1 serializes and batch i−1 deserializes. Returns (makespan,
/// bottleneck label).
fn pipeline(stages: &StageTimes, link_cfg: LinkConfig) -> (f64, &'static str) {
    let mut link = Link::new(link_cfg);
    let mut ser_free = vec![0.0f64; stages.ways];
    let mut de_free = vec![0.0f64; stages.ways];
    let (mut ser_busy, mut net_busy, mut de_busy) = (0.0, 0.0, 0.0);
    let mut makespan = 0.0f64;
    for i in 0..stages.ser.len() {
        // Sender: earliest-free unit/core takes the partition.
        let s = i % stages.ways;
        let ser_done = ser_free[s] + stages.ser[i];
        ser_free[s] = ser_done;
        ser_busy += stages.ser[i];
        let arrived = link.send(stages.net_bytes[i].max(1), ser_done);
        net_busy += stages.net_bytes[i] as f64 / link_cfg.bytes_per_ns;
        // Receiver: likewise.
        let d = i % stages.ways;
        let start = arrived.max(de_free[d]);
        de_free[d] = start + stages.de[i];
        de_busy += stages.de[i];
        makespan = makespan.max(de_free[d]);
    }
    // Busy time is divided across the stage's servers for the bottleneck
    // comparison.
    let ser_eff = ser_busy / stages.ways as f64;
    let de_eff = de_busy / stages.ways as f64;
    let label = if ser_eff >= net_busy && ser_eff >= de_eff {
        "serialization"
    } else if net_busy >= de_eff {
        "network"
    } else {
        "deserialization"
    };
    (makespan, label)
}

fn main() {
    let scale = match std::env::var("CEREAL_SCALE").as_deref() {
        Ok("tiny") => SparkScale::Tiny,
        _ => SparkScale::Scaled,
    };
    let app = SparkApp::Terasort;
    let mut ds = app.build(scale);
    let batches = ds.batches.clone();
    println!(
        "End-to-end shuffle — {} ({} partitions), sender S/D → link → receiver S/D\n",
        app.name(),
        batches.len()
    );

    let stage_sets = vec![
        software_stages(&JavaSd::new(), &mut ds, &batches),
        software_stages(&Kryo::new(), &mut ds, &batches),
        cereal_stages(&mut ds, &batches),
    ];

    let mut t = Table::new(&["serializer", "10GbE", "bottleneck", "40GbE", "bottleneck", "100GbE", "bottleneck"]);
    for s in &stage_sets {
        let (t10, b10) = pipeline(s, LinkConfig::ten_gbe());
        let (t40, b40) = pipeline(s, LinkConfig::forty_gbe());
        let (t100, b100) = pipeline(s, LinkConfig::hundred_gbe());
        t.row(vec![
            s.name.clone(),
            ns(t10),
            b10.into(),
            ns(t40),
            b40.into(),
            ns(t100),
            b100.into(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "the paper's motivation, end to end: with software serializers the shuffle is\n\
         S/D-bound even on 10 GbE; with Cereal the wire itself becomes the bottleneck,\n\
         so faster links keep paying off."
    );
}
