//! The block-store experiment (`cargo run --release --bin store`).
//!
//! Runs the iterative cached-RDD workload through the block manager:
//! every requested backend at several memory-budget fractions (scan
//! access, auto policy, SSD), a policy-crossover section (HDD vs NVMe ×
//! fetch/recompute/auto), and a Zipf-skewed re-read section — then
//! writes `BENCH_STORE.json`. Every number in the JSON is simulated
//! time or a deterministic counter — the file is byte-identical for any
//! `--jobs` value (CI diffs a 1-job run against a 4-job run).
//!
//! Flags: `--smoke` (small config), `--jobs N` (worker threads),
//! `--out PATH` (default `BENCH_STORE.json`).

use cereal_bench::table::{ns, Table};
use store::{run_suite, AccessPattern, Backend, MissPolicy, RddConfig, StoreReport};
use workloads::{AggConfig, KeySkew};

fn summarize(report: &StoreReport) {
    let mut t = Table::new(&[
        "backend",
        "frac",
        "policy",
        "disk",
        "access",
        "hits",
        "fetch",
        "recomp",
        "evict",
        "total",
    ]);
    for r in &report.runs {
        let o = &r.outcome;
        t.row(vec![
            r.backend.to_string(),
            format!("{:.2}", r.memory_fraction),
            r.policy.to_string(),
            r.disk.to_string(),
            r.access.clone(),
            o.store.hits.to_string(),
            o.store.disk_fetches.to_string(),
            o.store.recomputes.to_string(),
            o.store.evictions.to_string(),
            ns(o.total_ns),
        ]);
    }
    eprintln!("{}", t.render());
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let jobs = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .clamp(1, 8)
        });
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_STORE.json".to_string());

    let (partitions, records, passes) = if smoke { (6, 128, 3) } else { (12, 1024, 4) };
    let base = RddConfig {
        agg: AggConfig {
            mappers: partitions,
            records_per_mapper: records,
            distinct_keys: 64,
            seed: 0x5EED_B10C,
            skew: KeySkew::Uniform,
        },
        backend: Backend::Kryo,
        memory_fraction: 1.0,
        passes,
        policy: MissPolicy::Auto,
        disk: sim::DiskConfig::ssd(),
        access: AccessPattern::Scan,
        jobs,
        checksum: false,
        fault: None,
    };
    let backends = [Backend::Java, Backend::Kryo, Backend::Skyway, Backend::Archive, Backend::Cereal];
    let fractions = [0.25, 0.5, 1.0];
    eprintln!(
        "store: {partitions} partitions x {records} records, {passes} passes, {jobs} jobs"
    );

    let report = match run_suite(&base, &backends, &fractions) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("store suite failed: {e}");
            std::process::exit(1);
        }
    };
    summarize(&report);

    let json = report.to_json();
    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path}");
}
