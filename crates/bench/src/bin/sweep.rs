//! Extension ablations promised in DESIGN.md §4 (beyond the paper's own
//! Vanilla ablation): unit-count scaling, block-reconstructor scaling,
//! and the packing on/off size comparison.

use cereal::{Accelerator, CerealConfig};
use cereal_bench::table::{bytes as fmt_bytes, ns, pct, Table};
use sdheap::{Addr, Heap};
use workloads::{MicroBench, Scale};

fn main() {
    let scale = match std::env::var("CEREAL_SCALE").as_deref() {
        Ok("tiny") => Scale::Tiny,
        _ => Scale::Scaled,
    };
    unit_sweep(scale);
    reconstructor_sweep(scale);
    packing_sweep(scale);
    row_buffer_sweep(scale);
}

/// SU/DU count sweep: throughput scaling of operation-level parallelism.
fn unit_sweep(scale: Scale) {
    println!("Ablation A — unit-count sweep (Tree-narrow, 16 concurrent requests)\n");
    let (mut heap, reg, root) = MicroBench::TreeNarrow.build(scale);
    let mut t = Table::new(&["units", "ser makespan", "de makespan", "ser scaling", "de scaling"]);
    let mut base: Option<(f64, f64)> = None;
    for units in [1usize, 2, 4, 8, 16] {
        let cfg = CerealConfig {
            num_su: units,
            num_du: units,
            ..CerealConfig::paper()
        };
        let mut accel = Accelerator::new(cfg);
        accel.register_all(&reg).expect("register");
        heap.gc_clear_serialization_metadata(&reg);
        let mut stream = Vec::new();
        for _ in 0..16 {
            stream = accel.serialize(&mut heap, &reg, root).expect("serialize").bytes;
        }
        let ser_ns = accel.report().ser_makespan_ns;
        accel.reset_meters();
        for _ in 0..16 {
            let mut dst = Heap::with_base(Addr(0x40_0000_0000), heap.capacity_bytes());
            accel.deserialize(&stream, &mut dst).expect("deserialize");
        }
        let de_ns = accel.report().de_makespan_ns;
        let (bs, bd) = *base.get_or_insert((ser_ns, de_ns));
        t.row(vec![
            units.to_string(),
            ns(ser_ns),
            ns(de_ns),
            format!("{:.2}x", bs / ser_ns),
            format!("{:.2}x", bd / de_ns),
        ]);
    }
    println!("{}", t.render());
    println!(
        "serialization scales with units until the serial metadata chain is hidden;\n\
         deserialization saturates once the DUs reach DRAM bandwidth.\n"
    );
}

/// Block-reconstructor sweep inside one DU.
fn reconstructor_sweep(scale: Scale) {
    println!("Ablation B — block reconstructors per DU (List-large, 1 request)\n");
    let (mut heap, reg, root) = MicroBench::ListLarge.build(scale);
    let bytes = {
        let mut accel = Accelerator::paper();
        accel.register_all(&reg).expect("register");
        heap.gc_clear_serialization_metadata(&reg);
        accel.serialize(&mut heap, &reg, root).expect("serialize").bytes
    };
    let mut t = Table::new(&["reconstructors", "de time", "speedup vs 1"]);
    let mut base = None;
    for recon in [1usize, 2, 4, 8] {
        let cfg = CerealConfig {
            reconstructors_per_du: recon,
            ..CerealConfig::paper()
        };
        let mut accel = Accelerator::new(cfg);
        accel.register_all(&reg).expect("register");
        let mut dst = Heap::with_base(Addr(0x40_0000_0000), heap.capacity_bytes());
        let de = accel.deserialize(&bytes, &mut dst).expect("deserialize");
        let b = *base.get_or_insert(de.run.busy_ns());
        t.row(vec![
            recon.to_string(),
            ns(de.run.busy_ns()),
            format!("{:.2}x", b / de.run.busy_ns()),
        ]);
    }
    println!("{}", t.render());
    println!("the paper's choice of four reconstructors sits at the knee.\n");
}

/// Packing on/off: the §IV-A baseline format vs the §IV-B packed format.
fn packing_sweep(scale: Scale) {
    println!("Ablation C — object packing on/off (stream sizes)\n");
    let mut t = Table::new(&["bench", "packed", "unpacked baseline", "saving"]);
    for bench in MicroBench::all() {
        let (mut heap, reg, root) = bench.build(scale);
        let mut tables = cereal::ClassTables::new(4096);
        tables.register_all(&reg).expect("register");
        let out = cereal::functional::encode(&mut heap, &reg, &tables, 1, 0, false)
            .run(root)
            .expect("encode");
        let packed = out.stream.wire_bytes() as u64;
        let baseline = out.stream.baseline_wire_bytes() as u64;
        t.row(vec![
            bench.name().to_string(),
            fmt_bytes(packed),
            fmt_bytes(baseline),
            pct(1.0 - packed as f64 / baseline as f64),
        ]);
    }
    println!("{}", t.render());
    println!("packing matters most where references and bitmaps dominate (graphs).\n");
}

/// DRAM row-buffer sensitivity: the flat-latency Table I calibration vs
/// the open-row model (26 ns hits / 44 ns misses).
fn row_buffer_sweep(scale: Scale) {
    println!("Ablation D — DRAM row-buffer model (Tree-narrow, 8 requests)\n");
    let (mut heap, reg, root) = MicroBench::TreeNarrow.build(scale);
    let mut t = Table::new(&["DRAM model", "ser makespan", "de makespan"]);
    for (name, dram) in [
        ("flat 40 ns (Table I calibration)", sim::DramConfig::default()),
        ("open-row 26/44 ns", sim::DramConfig::with_row_buffer()),
    ] {
        let cfg = CerealConfig {
            dram,
            ..CerealConfig::paper()
        };
        let mut accel = Accelerator::new(cfg);
        accel.register_all(&reg).expect("register");
        heap.gc_clear_serialization_metadata(&reg);
        let mut stream = Vec::new();
        for _ in 0..8 {
            stream = accel.serialize(&mut heap, &reg, root).expect("serialize").bytes;
        }
        let ser_ns = accel.report().ser_makespan_ns;
        accel.reset_meters();
        for _ in 0..8 {
            let mut dst = Heap::with_base(Addr(0x40_0000_0000), heap.capacity_bytes());
            accel.deserialize(&stream, &mut dst).expect("deserialize");
        }
        let de_ns = accel.report().de_makespan_ns;
        t.row(vec![name.to_string(), ns(ser_ns), ns(de_ns)]);
    }
    println!("{}", t.render());
    println!(
        "with open rows, the SU's repeated metadata fetches and the DU's sequential\n\
         streams both become row hits — the flat calibration is mildly pessimistic."
    );
}
