//! Prints Table I: the architectural parameters in effect.
fn main() {
    println!("{}", cereal_bench::render::table1());
}
