//! Regenerates Table IV: serialized sizes across the microbenchmarks.
fn main() {
    let scale = cereal_bench::micro_suite::scale_from_env();
    let results = cereal_bench::micro_suite::run(scale);
    println!("{}", cereal_bench::render::table4(&results));
}
