//! Prints Table V: area/power breakdown of the accelerator.
fn main() {
    println!("{}", cereal_bench::render::table5());
}
