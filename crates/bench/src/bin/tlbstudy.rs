//! Extension experiment: TLB pressure (paper §V-E).
//!
//! The paper's prototype never misses its 128-entry, 1 GB-page TLB, but
//! §V-E argues that on larger memories "the cost of missing TLB can be
//! amortized" for the DU (sequential access) while SU misses "can
//! potentially become a performance bottleneck" (random access). We test
//! that claim by shrinking pages until the working set overflows the
//! TLB and measuring both units.

use cereal::{Accelerator, CerealConfig};
use cereal_bench::table::{ns, pct, Table};
use sdheap::{Addr, Heap};
use sim::TlbConfig;
use workloads::{MicroBench, Scale};

fn main() {
    let scale = match std::env::var("CEREAL_SCALE").as_deref() {
        Ok("tiny") => Scale::Tiny,
        _ => Scale::Scaled,
    };
    // Graph-sparse: random reference targets → random SU header fetches.
    let (mut heap, reg, root) = MicroBench::GraphSparse.build(scale);

    println!("TLB pressure — Graph-sparse, shrinking pages under an 8-entry TLB\n");
    let mut t = Table::new(&[
        "page size",
        "ser (pipelined)",
        "slowdown",
        "ser (no prefetch)",
        "slowdown",
        "de",
        "slowdown",
    ]);
    let mut base: Option<(f64, f64, f64)> = None;
    for page_bits in [30u32, 20, 14, 12] {
        let tlb = TlbConfig {
            entries: 8,
            page_bits,
            walk_ns: 200.0,
        };
        let run = |vanilla: bool, heap: &mut sdheap::Heap| {
            let cfg = CerealConfig {
                tlb,
                vanilla,
                reconstructors_per_du: if vanilla { 1 } else { 4 },
                ..CerealConfig::paper()
            };
            let mut accel = Accelerator::new(cfg);
            accel.register_all(&reg).expect("register");
            heap.gc_clear_serialization_metadata(&reg);
            let ser = accel.serialize(heap, &reg, root).expect("serialize");
            let mut dst = Heap::with_base(Addr(0x40_0000_0000), heap.capacity_bytes());
            let de = accel.deserialize(&ser.bytes, &mut dst).expect("deserialize");
            (ser.run.busy_ns(), de.run.busy_ns())
        };
        let (pipe_ser, de_ns) = run(false, &mut heap);
        let (van_ser, _) = run(true, &mut heap);
        let (b_pipe, b_van, b_de) = *base.get_or_insert((pipe_ser, van_ser, de_ns));
        t.row(vec![
            human_page(page_bits),
            ns(pipe_ser),
            pct(pipe_ser / b_pipe - 1.0),
            ns(van_ser),
            pct(van_ser / b_van - 1.0),
            ns(de_ns),
            pct(de_ns / b_de - 1.0),
        ]);
    }
    println!("{}", t.render());
    println!(
        "finding: the SU's header-prefetch lookahead hides page walks just as it\n\
         hides header latency, so even 4 KB pages barely hurt the pipelined design;\n\
         without prefetch (the Vanilla datapath) walks land on the critical path —\n\
         the §V-E concern applies to the unpipelined design, and the DU's sequential\n\
         streams amortize walks either way."
    );
}

fn human_page(bits: u32) -> String {
    match bits {
        30 => "1 GB".into(),
        24 => "16 MB".into(),
        20 => "1 MB".into(),
        16 => "64 KB".into(),
        _ => format!("2^{bits} B"),
    }
}
