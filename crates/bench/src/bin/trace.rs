//! The telemetry experiment (`cargo run --release --bin trace`).
//!
//! Runs the traced demonstration suite — a fault-injected shuffle on
//! the accelerator backend, a tight-budget cached-RDD workload, and an
//! accelerator round trip — through one [`telemetry::Recorder`], then:
//!
//! * writes the Chrome trace-event JSON (load it in Perfetto or
//!   `chrome://tracing`) to `target/trace.json` (or `--trace-out`);
//! * writes `BENCH_TRACE.json` (or `--out`): the metrics registry plus
//!   the counter-reconciliation table against the untraced reports;
//! * exits non-zero if any exported counter disagrees with its
//!   report-side twin.
//!
//! Both files are byte-identical for any `--jobs` value (CI diffs a
//! 1-job run against a 4-job run).
//!
//! Flags: `--jobs N` (worker threads), `--out PATH`,
//! `--trace-out PATH`.

use cereal_bench::trace_suite;
use telemetry::{chrome_trace, JsonWriter};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let jobs = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .clamp(1, 8)
        });
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_TRACE.json".to_string());
    let trace_path = args
        .iter()
        .position(|a| a == "--trace-out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "target/trace.json".to_string());

    eprintln!("trace: running traced shuffle + store + accelerator, {jobs} jobs");
    let run = trace_suite::run(jobs);
    let rec = &run.recorder;
    eprintln!(
        "trace: {} spans, {} instants, {} processes",
        rec.spans.len(),
        rec.instants.len(),
        rec.process_names.len()
    );

    let trace = chrome_trace(rec);
    if let Some(dir) = std::path::Path::new(&trace_path).parent() {
        std::fs::create_dir_all(dir).expect("create trace dir");
    }
    std::fs::write(&trace_path, &trace).expect("write chrome trace");
    println!("wrote {trace_path}");

    let recon = trace_suite::reconcile(&run);
    recon.eprint_failures("trace");
    eprintln!("trace: {}/{} counters reconcile", recon.passed(), recon.total());

    let mut w = JsonWriter::new();
    w.begin_obj();
    w.field_str("generated_by", "cereal-bench --bin trace");
    w.field_u64("spans", rec.spans.len() as u64);
    w.field_u64("instants", rec.instants.len() as u64);
    w.field_u64("processes", rec.process_names.len() as u64);
    w.field_bool("reconciled", recon.all_ok());
    w.key("reconciliation");
    recon.render(&mut w);
    w.key("metrics");
    w.raw_val(&rec.metrics.to_json());
    w.end_obj();
    let mut json = w.finish();
    json.push('\n');
    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path}");

    if !recon.all_ok() {
        eprintln!("trace: {} counters FAILED to reconcile", recon.failures());
        std::process::exit(1);
    }
}
