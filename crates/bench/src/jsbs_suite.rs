//! JSBS suite: the measurements behind Fig. 12.

use crate::runners::{repeat_root, run_cereal, run_software, SdMeasure};
use cereal::CerealConfig;
use workloads::jsbs::{catalog, media_content, LibClass};

/// S/D repetitions over the media-content object (the paper uses 1000;
/// the modeled libraries are scale-free so 64 measured reps suffice).
pub const REPS: usize = 64;

/// One library's outcome on the suite.
#[derive(Clone, Debug)]
pub struct JsbsEntry {
    /// Library name.
    pub name: String,
    /// Implementation class.
    pub class: LibClass,
    /// Total S/D time (ns) for [`REPS`] round trips.
    pub sd_ns: f64,
    /// Serialized size in bytes (one object).
    pub size: u64,
    /// Whether this entry was measured mechanistically.
    pub measured: bool,
}

/// Full suite outcome.
#[derive(Clone, Debug)]
pub struct JsbsResult {
    /// All 88 software libraries.
    pub libraries: Vec<JsbsEntry>,
    /// Cereal's measurement.
    pub cereal: SdMeasure,
}

/// Number of independently schedulable measured runs: the five software
/// serializers plus Cereal. Each builds its own deterministic
/// media-content heap, so the units can run on any worker in any order
/// without changing a measurement.
pub const MEASURED_UNITS: usize = 6;

/// Runs measured unit `unit` (see [`MEASURED_UNITS`]) on a private heap.
///
/// The builder is seed-fixed, object graphs get identical layouts and
/// identity hashes in every heap, and the software serializers do not
/// write to the source heap — so per-unit heaps measure exactly what the
/// old single-heap sequential pass measured.
pub fn run_measured(unit: usize) -> SdMeasure {
    let (mut heap, reg, root) = media_content();
    let roots = repeat_root(root, REPS);
    match unit {
        0 => run_software(&serializers::JavaSd::new(), &mut heap, &reg, &roots),
        1 => run_software(&serializers::Kryo::new(), &mut heap, &reg, &roots),
        2 => run_software(&serializers::Skyway::new(), &mut heap, &reg, &roots),
        3 => run_software(&serializers::JsonLike::new(), &mut heap, &reg, &roots),
        4 => run_software(&serializers::ProtoLike::new(), &mut heap, &reg, &roots),
        5 => run_cereal(CerealConfig::paper(), &mut heap, &reg, &roots),
        _ => panic!("JSBS has {MEASURED_UNITS} measured units, got {unit}"),
    }
}

/// Derives the full 88-library suite outcome from the six measured runs
/// (in [`run_measured`] unit order).
pub fn assemble(measures: &[SdMeasure]) -> JsbsResult {
    assert_eq!(measures.len(), MEASURED_UNITS, "one measure per unit");
    let (java, kryo, skyway, json, proto, cereal) = (
        &measures[0],
        &measures[1],
        &measures[2],
        &measures[3],
        &measures[4],
        measures[5].clone(),
    );

    let per_obj = |m: &SdMeasure| m.bytes / REPS as u64;
    let measured_entry = |lib: &workloads::LibraryProfile, m: &SdMeasure| JsbsEntry {
        name: lib.name.clone(),
        class: lib.class,
        sd_ns: m.sd_ns(),
        size: per_obj(m),
        measured: true,
    };
    let mut libraries = Vec::new();
    for lib in catalog() {
        let entry = match (lib.class, lib.name.as_str()) {
            (LibClass::Implemented, "java-built-in") => measured_entry(&lib, java),
            (LibClass::Implemented, "kryo") => measured_entry(&lib, kryo),
            (LibClass::Implemented, "skyway") => measured_entry(&lib, skyway),
            (LibClass::Implemented, "json-gson-like") => measured_entry(&lib, json),
            (LibClass::Implemented, _) => measured_entry(&lib, proto),
            _ => JsbsEntry {
                name: lib.name,
                class: lib.class,
                // Modeled: factors are relative to the measured Java run.
                sd_ns: java.ser_ns * lib.ser_rel + java.de_ns * lib.de_rel,
                size: (per_obj(java) as f64 * lib.size_rel) as u64,
                measured: false,
            },
        };
        libraries.push(entry);
    }
    JsbsResult { libraries, cereal }
}

/// Runs the suite sequentially (fan-out callers schedule
/// [`run_measured`] units themselves and [`assemble`] the result).
pub fn run() -> JsbsResult {
    let measures: Vec<SdMeasure> = (0..MEASURED_UNITS).map(run_measured).collect();
    assemble(&measures)
}

impl JsbsResult {
    /// Cereal's geometric-mean speedup over all 88 libraries (the paper's
    /// 43.4× headline).
    pub fn cereal_geomean_speedup(&self) -> f64 {
        crate::table::geomean(
            &self
                .libraries
                .iter()
                .map(|l| l.sd_ns / self.cereal.sd_ns())
                .collect::<Vec<_>>(),
        )
    }

    /// The fastest software library (paper: kryo-manual).
    pub fn fastest_software(&self) -> &JsbsEntry {
        self.libraries
            .iter()
            .min_by(|a, b| a.sd_ns.partial_cmp(&b.sd_ns).expect("no NaN"))
            .expect("non-empty")
    }

    /// Cereal size vs the library average (paper: 46 % smaller).
    pub fn cereal_size_vs_average(&self) -> f64 {
        let avg = self.libraries.iter().map(|l| l.size as f64).sum::<f64>()
            / self.libraries.len() as f64;
        (self.cereal.bytes as f64 / REPS as f64) / avg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_shapes_hold() {
        let r = run();
        assert_eq!(r.libraries.len(), 88);

        // Cereal beats every software library, including the fastest.
        let fastest = r.fastest_software();
        assert!(
            r.cereal.sd_ns() < fastest.sd_ns,
            "Cereal {} vs fastest software {} ({})",
            r.cereal.sd_ns(),
            fastest.sd_ns,
            fastest.name
        );
        // The fastest software library is a manual one (kryo-manual in
        // the paper).
        assert_eq!(fastest.class, LibClass::Manual, "{}", fastest.name);

        // Large geomean speedup (paper: 43.4×; same decade here).
        let g = r.cereal_geomean_speedup();
        assert!(g > 10.0, "geomean {g}");

        // Measured entries present and sane.
        assert_eq!(r.libraries.iter().filter(|l| l.measured).count(), 5);
        let java = r.libraries.iter().find(|l| l.name == "java-built-in").unwrap();
        let kryo = r.libraries.iter().find(|l| l.name == "kryo").unwrap();
        let json = r.libraries.iter().find(|l| l.name == "json-gson-like").unwrap();
        let proto = r.libraries.iter().find(|l| l.name == "proto-codegen-like").unwrap();
        assert!(kryo.sd_ns < java.sd_ns);
        // The measured classes sit where JSBS puts them: codegen faster
        // than Kryo, JSON text slower than Kryo.
        assert!(proto.sd_ns < kryo.sd_ns, "proto {} vs kryo {}", proto.sd_ns, kryo.sd_ns);
        assert!(json.sd_ns > kryo.sd_ns, "json {} vs kryo {}", json.sd_ns, kryo.sd_ns);
    }
}
