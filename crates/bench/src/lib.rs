//! `cereal-bench` — the experiment harness that regenerates every table
//! and figure in the Cereal paper's evaluation (§VI).
//!
//! One binary per figure/table (`cargo run -p cereal-bench --release
//! --bin fig10`), plus `--bin all`, which runs the whole evaluation and
//! emits an EXPERIMENTS.md-style report. Set `CEREAL_SCALE=tiny` for a
//! quick pass; the default `scaled` runs the DESIGN.md workload sizes.
//!
//! | Experiment | Module |
//! |---|---|
//! | Fig. 2 (runtime breakdown) | [`render::fig2`] over [`spark_suite`] |
//! | Fig. 3 (CPU S/D analysis) | [`render::fig3`] over [`micro_suite`] |
//! | Fig. 10 (microbench speedups) | [`render::fig10`] |
//! | Fig. 11 (microbench bandwidth) | [`render::fig11`] |
//! | Table IV (serialized sizes) | [`render::table4`] |
//! | Fig. 12 (JSBS, 88 libraries) | [`render::fig12`] over [`jsbs_suite`] |
//! | Fig. 13–17 (Spark) | [`render::fig13`] … [`render::fig17`] |
//! | Tables I & V | [`render::table1`], [`render::table5`] |

pub mod jsbs_suite;
pub mod micro_suite;
pub mod render;
pub mod runners;
pub mod spark_suite;
pub mod table;
pub mod trace_suite;

pub use runners::{repeat_root, run_cereal, run_software, SdMeasure};
