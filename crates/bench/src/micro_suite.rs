//! Microbenchmark suite: the measurements behind Fig. 3, Fig. 10,
//! Fig. 11 and Table IV.

use crate::runners::{repeat_root, run_cereal, run_software, SdMeasure};
use cereal::CerealConfig;
use workloads::{MicroBench, Scale};

/// Requests issued per benchmark (keeps all 8 units busy; the paper's
/// JSBS methodology repeats each S/D operation many times).
pub const REQUESTS: usize = 8;

/// All measurements for one microbenchmark.
#[derive(Clone, Debug)]
pub struct MicroResult {
    /// Which benchmark.
    pub bench: MicroBench,
    /// Java S/D baseline.
    pub java: SdMeasure,
    /// Kryo baseline.
    pub kryo: SdMeasure,
    /// Skyway baseline.
    pub skyway: SdMeasure,
    /// Full Cereal.
    pub cereal: SdMeasure,
    /// The Vanilla ablation.
    pub vanilla: SdMeasure,
}

/// Runs one microbenchmark at `scale`. Each benchmark is fully
/// self-contained (private heap, deterministic build), so callers may
/// fan benchmarks out across threads without changing any measurement.
pub fn run_one(bench: MicroBench, scale: Scale) -> MicroResult {
    let (mut heap, reg, root) = bench.build(scale);
    let roots = repeat_root(root, REQUESTS);
    MicroResult {
        bench,
        java: run_software(&serializers::JavaSd::new(), &mut heap, &reg, &roots),
        kryo: run_software(&serializers::Kryo::new(), &mut heap, &reg, &roots),
        skyway: run_software(&serializers::Skyway::new(), &mut heap, &reg, &roots),
        cereal: run_cereal(CerealConfig::paper(), &mut heap, &reg, &roots),
        vanilla: run_cereal(CerealConfig::vanilla(), &mut heap, &reg, &roots),
    }
}

/// Runs the full suite at `scale`, sequentially, in Table II order.
pub fn run(scale: Scale) -> Vec<MicroResult> {
    MicroBench::all()
        .iter()
        .map(|&bench| run_one(bench, scale))
        .collect()
}

/// The experiment scale from `CEREAL_SCALE` (`tiny` | `scaled`), default
/// scaled.
pub fn scale_from_env() -> Scale {
    match std::env::var("CEREAL_SCALE").as_deref() {
        Ok("tiny") => Scale::Tiny,
        Ok("paper") => Scale::Paper,
        _ => Scale::Scaled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_suite_preserves_paper_orderings() {
        let results = run(Scale::Tiny);
        assert_eq!(results.len(), 6);
        for r in &results {
            let name = r.bench.name();
            // Fig. 10 ordering: Cereal fastest, Java slowest.
            assert!(r.cereal.ser_ns < r.java.ser_ns, "{name} ser");
            assert!(r.cereal.de_ns < r.java.de_ns, "{name} de");
            assert!(r.kryo.ser_ns < r.java.ser_ns, "{name} kryo ser");
            // Vanilla between Java and Cereal on deserialization.
            assert!(r.vanilla.de_ns >= r.cereal.de_ns, "{name} vanilla");
        }
        // Table IV: Kryo smallest on trees/lists; Cereal wins on the
        // reference-heavy dense graph thanks to object packing.
        let dense = results
            .iter()
            .find(|r| r.bench == MicroBench::GraphDense)
            .unwrap();
        assert!(
            dense.cereal.bytes < dense.java.bytes,
            "packing must beat Java S/D on dense graphs: {} vs {}",
            dense.cereal.bytes,
            dense.java.bytes
        );
        // NOTE: the paper's Table IV reports Cereal at 2.4 MB on both
        // graphs — far below Kryo — which is unreachable with the paper's
        // own ≥1-byte-per-item packing at 16.7M references; we assert the
        // mechanism's real deliverable (beats Java; see EXPERIMENTS.md).
        let list = results
            .iter()
            .find(|r| r.bench == MicroBench::ListSmall)
            .unwrap();
        assert!(list.kryo.bytes < list.cereal.bytes, "Kryo smallest on lists");
    }
}
