//! Per-figure/table renderers: each produces the rows/series the paper
//! reports, side by side with the paper's own numbers where it states
//! them.

use crate::jsbs_suite::JsbsResult;
use crate::micro_suite::MicroResult;
use crate::spark_suite::SparkResult;
use crate::table::{bytes, geomean, ns, pct, x, Table};
use cereal::energy::{self, ModuleGroup};
use workloads::spark::phases::AppRun;

fn breakdown_row(name: &str, run: &AppRun) -> Vec<String> {
    let t = run.total_ns();
    vec![
        name.to_string(),
        pct(run.compute_ns / t),
        pct(run.gc_ns / t),
        pct(run.io_ns / t),
        pct(run.sd_ns / t),
        ns(t),
    ]
}

/// Fig. 2: runtime breakdown of the Spark applications under Java S/D
/// and Kryo.
pub fn fig2(results: &[SparkResult]) -> String {
    let mut out = String::from("Fig. 2 — Runtime breakdown (compute / GC / I/O / S/D)\n\n");
    for (label, pick) in [
        ("(a) Java S/D", 0usize),
        ("(b) Kryo", 1),
    ] {
        out.push_str(label);
        out.push('\n');
        let mut t = Table::new(&["app", "compute", "GC", "I/O", "S/D", "total"]);
        for r in results {
            let run = if pick == 0 { &r.java_run } else { &r.kryo_run };
            t.row(breakdown_row(r.app.name(), run));
        }
        out.push_str(&t.render());
        let avg = results
            .iter()
            .map(|r| {
                let run = if pick == 0 { &r.java_run } else { &r.kryo_run };
                run.sd_fraction()
            })
            .sum::<f64>()
            / results.len() as f64;
        out.push_str(&format!(
            "average S/D fraction: {}   (paper: {})\n\n",
            pct(avg),
            if pick == 0 { "39.5%" } else { "28.3%" }
        ));
    }
    out
}

/// Fig. 3: IPC, LLC miss rate, bandwidth and Kryo-vs-Java speedup on the
/// microbenchmarks (software serializers on the host CPU).
pub fn fig3(results: &[MicroResult]) -> String {
    let mut out = String::from("Fig. 3 — S/D process analysis on the host CPU\n\n");
    let mut t = Table::new(&[
        "bench",
        "Java IPC",
        "Kryo IPC",
        "Java LLC-miss",
        "Java BW",
        "Kryo BW",
        "Kryo ser speedup",
        "Kryo de speedup",
    ]);
    for r in results {
        t.row(vec![
            r.bench.name().to_string(),
            format!("{:.2}", r.java.ser_ipc),
            format!("{:.2}", r.kryo.ser_ipc),
            pct(r.java.ser_llc_miss_rate),
            pct(r.java.ser_bw_util),
            pct(r.kryo.ser_bw_util),
            x(r.java.ser_ns / r.kryo.ser_ns),
            x(r.java.de_ns / r.kryo.de_ns),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "paper: IPC ≈ 1.0 for both, high LLC miss rates, Java/Kryo use only\n\
         2.71%/4.12% of DRAM bandwidth; Kryo averages 2.30x (ser) and 52.3x (de).\n",
    );
    out
}

/// Fig. 10: S/D speedups over Java S/D on the microbenchmarks.
pub fn fig10(results: &[MicroResult]) -> String {
    let mut out =
        String::from("Fig. 10 — Speedup over Java S/D (log scale in the paper)\n\n");
    let mut t = Table::new(&[
        "bench",
        "Kryo ser",
        "Skyway ser",
        "Vanilla ser",
        "Cereal ser",
        "Kryo de",
        "Skyway de",
        "Vanilla de",
        "Cereal de",
    ]);
    for r in results {
        t.row(vec![
            r.bench.name().to_string(),
            x(r.java.ser_ns / r.kryo.ser_ns),
            x(r.java.ser_ns / r.skyway.ser_ns),
            x(r.java.ser_ns / r.vanilla.ser_ns),
            x(r.java.ser_ns / r.cereal.ser_ns),
            x(r.java.de_ns / r.kryo.de_ns),
            x(r.java.de_ns / r.skyway.de_ns),
            x(r.java.de_ns / r.vanilla.de_ns),
            x(r.java.de_ns / r.cereal.de_ns),
        ]);
    }
    out.push_str(&t.render());
    let g = |f: &dyn Fn(&MicroResult) -> f64| {
        geomean(&results.iter().map(f).collect::<Vec<_>>())
    };
    out.push_str(&format!(
        "geomean: Kryo {} ser / {} de; Cereal {} ser / {} de\n",
        x(g(&|r| r.java.ser_ns / r.kryo.ser_ns)),
        x(g(&|r| r.java.de_ns / r.kryo.de_ns)),
        x(g(&|r| r.java.ser_ns / r.cereal.ser_ns)),
        x(g(&|r| r.java.de_ns / r.cereal.de_ns)),
    ));
    out.push_str("paper: Kryo 2.30x ser / 52.3x de; Cereal 26.5x ser / 364.5x de.\n");
    out
}

/// Fig. 11: DRAM bandwidth utilization on the microbenchmarks.
pub fn fig11(results: &[MicroResult]) -> String {
    let mut out = String::from("Fig. 11 — DRAM bandwidth utilization\n\n");
    let mut t = Table::new(&[
        "bench",
        "Java ser",
        "Kryo ser",
        "Cereal ser",
        "Java de",
        "Kryo de",
        "Cereal de",
    ]);
    for r in results {
        t.row(vec![
            r.bench.name().to_string(),
            pct(r.java.ser_bw_util),
            pct(r.kryo.ser_bw_util),
            pct(r.cereal.ser_bw_util),
            pct(r.java.de_bw_util),
            pct(r.kryo.de_bw_util),
            pct(r.cereal.de_bw_util),
        ]);
    }
    out.push_str(&t.render());
    let avg = |f: &dyn Fn(&MicroResult) -> f64| {
        results.iter().map(f).sum::<f64>() / results.len() as f64
    };
    out.push_str(&format!(
        "averages: Java {} / Kryo {} / Cereal {} (ser); Java {} / Kryo {} / Cereal {} (de)\n",
        pct(avg(&|r| r.java.ser_bw_util)),
        pct(avg(&|r| r.kryo.ser_bw_util)),
        pct(avg(&|r| r.cereal.ser_bw_util)),
        pct(avg(&|r| r.java.de_bw_util)),
        pct(avg(&|r| r.kryo.de_bw_util)),
        pct(avg(&|r| r.cereal.de_bw_util)),
    ));
    out.push_str(
        "paper: ser 2.71% / 4.12% / 20.9% (up to 74.5%); de 3.48% / 4.50% / 31.1% (up to 83.3%).\n",
    );
    out
}

/// Table IV: serialized sizes across the microbenchmarks.
pub fn table4(results: &[MicroResult]) -> String {
    let mut out = String::from("Table IV — Serialized object sizes\n\n");
    let mut t = Table::new(&["bench", "Java S/D", "Kryo", "Skyway", "Cereal"]);
    for r in results {
        t.row(vec![
            r.bench.name().to_string(),
            bytes(r.java.bytes / crate::micro_suite::REQUESTS as u64),
            bytes(r.kryo.bytes / crate::micro_suite::REQUESTS as u64),
            bytes(r.skyway.bytes / crate::micro_suite::REQUESTS as u64),
            bytes(r.cereal.bytes / crate::micro_suite::REQUESTS as u64),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "paper (MB, at Table II scale): Tree-narrow 23.0/12.0/16.1, Tree-wide\n\
         148.6/48.0/80.0, List-small 8.0/2.5/16.0, List-large 59.4/10.0/47.8,\n\
         Graph-sparse 22.1/10.8/2.4, Graph-dense 115.5/51.1/2.4 — Kryo smallest on\n\
         value-heavy shapes, Cereal's packing wins on reference-heavy graphs.\n",
    );
    out
}

/// Fig. 12: the JSBS comparison.
pub fn fig12(r: &JsbsResult) -> String {
    let mut out = String::from("Fig. 12 — JSBS: Cereal vs 88 serializer libraries\n\n");
    let mut sorted: Vec<_> = r.libraries.iter().collect();
    sorted.sort_by(|a, b| a.sd_ns.partial_cmp(&b.sd_ns).expect("no NaN"));
    let mut t = Table::new(&["library", "class", "S/D time", "size", "Cereal speedup"]);
    for lib in sorted.iter().take(10) {
        t.row(vec![
            lib.name.clone(),
            format!("{:?}", lib.class),
            ns(lib.sd_ns),
            bytes(lib.size),
            x(lib.sd_ns / r.cereal.sd_ns()),
        ]);
    }
    out.push_str("fastest 10 of 88 software libraries:\n");
    out.push_str(&t.render());
    out.push_str("\nfull series (Cereal's speedup over each library, sorted):\n");
    for (i, lib) in sorted.iter().enumerate() {
        out.push_str(&format!(
            "{:>24} {:>8}{}",
            lib.name,
            x(lib.sd_ns / r.cereal.sd_ns()),
            if i % 3 == 2 { "\n" } else { "   " }
        ));
    }
    if sorted.len() % 3 != 0 {
        out.push('\n');
    }
    out.push_str(&format!(
        "\nCereal: {} for {} round trips, size {}\n",
        ns(r.cereal.sd_ns()),
        crate::jsbs_suite::REPS,
        bytes(r.cereal.bytes / crate::jsbs_suite::REPS as u64),
    ));
    out.push_str(&format!(
        "Cereal geomean speedup over all 88 libraries: {}   (paper: 43.4x)\n",
        x(r.cereal_geomean_speedup())
    ));
    let fastest = r.fastest_software();
    out.push_str(&format!(
        "vs fastest software ({}): {}   (paper: 15.1x over kryo-manual)\n",
        fastest.name,
        x(fastest.sd_ns / r.cereal.sd_ns())
    ));
    out.push_str(&format!(
        "Cereal size vs library average: {}   (paper: 46% smaller)\n",
        pct(r.cereal_size_vs_average())
    ));
    out
}

/// Fig. 13: S/D speedups on the Spark applications.
pub fn fig13(results: &[SparkResult]) -> String {
    let mut out = String::from("Fig. 13 — S/D speedups on Spark applications\n\n");
    let mut t = Table::new(&["app", "Kryo vs Java", "Cereal vs Java", "Cereal vs Kryo"]);
    for r in results {
        t.row(vec![
            r.app.name().to_string(),
            x(r.java.sd_ns() / r.kryo.sd_ns()),
            x(r.java.sd_ns() / r.cereal.sd_ns()),
            x(r.kryo.sd_ns() / r.cereal.sd_ns()),
        ]);
    }
    out.push_str(&t.render());
    let g = |f: &dyn Fn(&SparkResult) -> f64| {
        geomean(&results.iter().map(f).collect::<Vec<_>>())
    };
    out.push_str(&format!(
        "geomean: Kryo {} / Cereal {} over Java; Cereal {} over Kryo\n",
        x(g(&|r| r.java.sd_ns() / r.kryo.sd_ns())),
        x(g(&|r| r.java.sd_ns() / r.cereal.sd_ns())),
        x(g(&|r| r.kryo.sd_ns() / r.cereal.sd_ns())),
    ));
    out.push_str("paper: Kryo 1.67x; Cereal 7.97x over Java, 4.81x over Kryo.\n");
    out
}

/// Fig. 14: end-to-end program speedups.
pub fn fig14(results: &[SparkResult]) -> String {
    let mut out = String::from("Fig. 14 — Program speedups on Spark applications\n\n");
    let mut t = Table::new(&["app", "Cereal vs Java", "Cereal vs Kryo"]);
    for r in results {
        t.row(vec![
            r.app.name().to_string(),
            x(r.java_run.total_ns() / r.cereal_run.total_ns()),
            x(r.kryo_run.total_ns() / r.cereal_run.total_ns()),
        ]);
    }
    out.push_str(&t.render());
    let g = |f: &dyn Fn(&SparkResult) -> f64| {
        geomean(&results.iter().map(f).collect::<Vec<_>>())
    };
    out.push_str(&format!(
        "geomean: {} over Java, {} over Kryo\n",
        x(g(&|r| r.java_run.total_ns() / r.cereal_run.total_ns())),
        x(g(&|r| r.kryo_run.total_ns() / r.cereal_run.total_ns())),
    ));
    out.push_str("paper: 1.81x (up to 4.66x) over Java; 1.69x (up to 4.53x) over Kryo.\n");
    out
}

/// Fig. 15: bandwidth utilization on the Spark applications.
pub fn fig15(results: &[SparkResult]) -> String {
    let mut out = String::from("Fig. 15 — DRAM bandwidth utilization on Spark applications\n\n");
    let mut t = Table::new(&["app", "Java ser", "Kryo ser", "Cereal ser", "Java de", "Kryo de", "Cereal de"]);
    for r in results {
        t.row(vec![
            r.app.name().to_string(),
            pct(r.java.ser_bw_util),
            pct(r.kryo.ser_bw_util),
            pct(r.cereal.ser_bw_util),
            pct(r.java.de_bw_util),
            pct(r.kryo.de_bw_util),
            pct(r.cereal.de_bw_util),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "paper: Cereal uses substantially more bandwidth than software, and\n\
         deserialization significantly more than serialization.\n",
    );
    out
}

/// Fig. 16: compression rate of the object packing scheme.
pub fn fig16(results: &[SparkResult]) -> String {
    let mut out = String::from(
        "Fig. 16 — Compression rate of object packing (vs the unpacked §IV-A baseline format)\n\n",
    );
    let mut t = Table::new(&["app", "packing", "packing + header strip"]);
    let mut rates = Vec::new();
    for r in results {
        let (packed, baseline, stripped) = r.format_sizes;
        let rate = 1.0 - packed as f64 / baseline as f64;
        let rate_strip = 1.0 - stripped as f64 / baseline as f64;
        rates.push(rate);
        t.row(vec![r.app.name().to_string(), pct(rate), pct(rate_strip)]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "average packing compression: {}   (paper: 28.3% on average; most\n\
         effective on reference-heavy NWeight, little effect on SVM/Bayes/LR)\n",
        pct(rates.iter().sum::<f64>() / rates.len() as f64)
    ));
    out
}

/// Fig. 17: normalized S/D energy.
pub fn fig17(results: &[SparkResult]) -> String {
    let mut out = String::from("Fig. 17 — S/D energy (normalized to Java S/D)\n\n");
    let mut t = Table::new(&[
        "app",
        "Kryo ser",
        "Cereal ser",
        "Kryo de",
        "Cereal de",
    ]);
    for r in results {
        t.row(vec![
            r.app.name().to_string(),
            format!("{:.3}", r.kryo.ser_energy_uj / r.java.ser_energy_uj),
            format!("{:.5}", r.cereal.ser_energy_uj / r.java.ser_energy_uj),
            format!("{:.3}", r.kryo.de_energy_uj / r.java.de_energy_uj),
            format!("{:.5}", r.cereal.de_energy_uj / r.java.de_energy_uj),
        ]);
    }
    out.push_str(&t.render());
    let g = |f: &dyn Fn(&SparkResult) -> f64| {
        geomean(&results.iter().map(f).collect::<Vec<_>>())
    };
    out.push_str(&format!(
        "geomean savings vs Java: Cereal {} (ser) / {} (de); combined S/D {}\n",
        x(g(&|r| r.java.ser_energy_uj / r.cereal.ser_energy_uj)),
        x(g(&|r| r.java.de_energy_uj / r.cereal.de_energy_uj)),
        x(g(&|r| r.java.sd_energy_uj() / r.cereal.sd_energy_uj())),
    ));
    out.push_str(&format!(
        "geomean savings vs Kryo: combined S/D {}\n",
        x(g(&|r| r.kryo.sd_energy_uj() / r.cereal.sd_energy_uj())),
    ));
    out.push_str(
        "paper: 313.6x/165.4x vs Java (ser/de), 227.75x combined; 136.28x vs Kryo.\n",
    );
    out
}

/// Table I: architectural parameters (configuration echo).
pub fn table1() -> String {
    let cfg = cereal::CerealConfig::paper();
    let dram = cfg.dram;
    let mut out = String::from("Table I — Architectural parameters\n\n");
    let mut t = Table::new(&["parameter", "value"]);
    t.row(vec!["Host core".into(), "i7-7820X-class, 3.6 GHz, 4-wide, MLP 10".into()]);
    t.row(vec!["L1/L2/L3".into(), "32KB / 1MB / 11MB (64B lines, LRU)".into()]);
    t.row(vec![
        "DRAM".into(),
        format!(
            "DDR4-2400, {} channels, {:.1} GB/s, {:.0} ns zero-load",
            dram.channels,
            dram.peak_bytes_per_ns(),
            dram.zero_load_ns
        ),
    ]);
    t.row(vec![
        "Cereal units".into(),
        format!("{} SU, {} DU ({} reconstructors/DU)", cfg.num_su, cfg.num_du, cfg.reconstructors_per_du),
    ]);
    t.row(vec![
        "MAI".into(),
        format!("{} entries, {} B blocks", cfg.mai.entries, cfg.mai.block_bytes),
    ]);
    t.row(vec![
        "TLB".into(),
        format!("{} entries, 1 GB pages", cfg.tlb.entries),
    ]);
    t.row(vec!["Max classes".into(), format!("{}", cfg.max_classes)]);
    t.row(vec!["Accelerator clock".into(), format!("{} GHz (assumed; see DESIGN.md)", cfg.clock_ghz)]);
    out.push_str(&t.render());
    out
}

/// Table V: area and power breakdown.
pub fn table5() -> String {
    let mut out = String::from("Table V — Area/power breakdown (TSMC 40 nm, from the paper's synthesis)\n\n");
    let mut t = Table::new(&["module", "area (mm²)", "power (mW)", "count", "total area", "total power"]);
    for m in energy::table_v() {
        t.row(vec![
            m.name.to_string(),
            format!("{:.3}", m.area_mm2),
            format!("{:.1}", m.power_mw),
            format!("{}", m.count),
            format!("{:.3}", m.area_mm2 * f64::from(m.count)),
            format!("{:.1}", m.power_mw * f64::from(m.count)),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "total: {:.3} mm² / {:.1} mW  (paper: 3.857 mm² / 1231.6 mW; {:.1}x smaller than the host die)\n",
        energy::total_area_mm2(),
        energy::total_power_mw(),
        energy::HOST_DIE_MM2 / energy::total_area_mm2(),
    ));
    let _ = ModuleGroup::System;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_tables_render() {
        let t1 = table1();
        assert!(t1.contains("DDR4-2400"));
        assert!(t1.contains("8 SU, 8 DU"));
        let t5 = table5();
        assert!(t5.contains("Block reconstructor"));
        assert!(t5.contains("3.857"));
    }
}
