//! Shared measurement machinery for the experiment harness.
//!
//! Two paths, mirroring the paper's methodology:
//!
//! * [`run_software`] — a software serializer processes every request
//!   sequentially on one modeled host core ([`sim::Cpu`]);
//! * [`run_cereal`] — the accelerator executes the same requests with
//!   operation-level parallelism across its units; makespan, bandwidth
//!   and energy come from the shared accelerator meters.
//!
//! Both return the common [`SdMeasure`] consumed by the figure renderers.

use cereal::{Accelerator, CerealConfig};
use sdheap::{Addr, Heap, KlassRegistry};
use serializers::Serializer;
use sim::Cpu;

/// One serializer's measured behaviour on one workload.
#[derive(Clone, Debug)]
pub struct SdMeasure {
    /// Serializer display name.
    pub name: String,
    /// Total serialization time (ns) over all requests.
    pub ser_ns: f64,
    /// Total deserialization time (ns) over all requests.
    pub de_ns: f64,
    /// Total serialized bytes over all requests.
    pub bytes: u64,
    /// Serialization-phase IPC (CPU paths only; 0 for hardware).
    pub ser_ipc: f64,
    /// Deserialization-phase IPC.
    pub de_ipc: f64,
    /// Serialization-phase LLC miss rate (CPU paths only).
    pub ser_llc_miss_rate: f64,
    /// Serialization-phase DRAM bandwidth utilization.
    pub ser_bw_util: f64,
    /// Deserialization-phase DRAM bandwidth utilization.
    pub de_bw_util: f64,
    /// Serialization energy (µJ).
    pub ser_energy_uj: f64,
    /// Deserialization energy (µJ).
    pub de_energy_uj: f64,
}

impl SdMeasure {
    /// Combined S/D time.
    pub fn sd_ns(&self) -> f64 {
        self.ser_ns + self.de_ns
    }

    /// Combined S/D energy.
    pub fn sd_energy_uj(&self) -> f64 {
        self.ser_energy_uj + self.de_energy_uj
    }
}

/// Destination-heap base for reconstruction (clear of every source).
const DST_BASE: u64 = 0x40_0000_0000;

/// Runs a software serializer over all `roots` sequentially on the
/// modeled host core.
///
/// # Panics
/// Panics if any request fails (workloads register everything needed).
pub fn run_software(
    ser: &dyn Serializer,
    heap: &mut Heap,
    reg: &KlassRegistry,
    roots: &[Addr],
) -> SdMeasure {
    let mut ser_cpu = Cpu::host();
    let mut streams = Vec::with_capacity(roots.len());
    for &root in roots {
        streams.push(ser.serialize(heap, reg, root, &mut ser_cpu).expect("serialize"));
    }
    let ser_report = ser_cpu.report();

    let mut de_cpu = Cpu::host();
    let cap = heap.capacity_bytes();
    for bytes in &streams {
        let mut dst = Heap::with_base(Addr(DST_BASE), cap);
        ser.deserialize(bytes, reg, &mut dst, &mut de_cpu).expect("deserialize");
    }
    let de_report = de_cpu.report();

    SdMeasure {
        name: ser.name().to_string(),
        ser_ns: ser_report.ns,
        de_ns: de_report.ns,
        bytes: streams.iter().map(|s| s.len() as u64).sum(),
        ser_ipc: ser_report.ipc,
        de_ipc: de_report.ipc,
        ser_llc_miss_rate: ser_report.llc_miss_rate,
        ser_bw_util: ser_report.bandwidth_util,
        de_bw_util: de_report.bandwidth_util,
        ser_energy_uj: cereal::energy::cpu_energy_uj(ser_report.ns),
        de_energy_uj: cereal::energy::cpu_energy_uj(de_report.ns),
    }
}

/// Runs the accelerator over all `roots` as concurrent requests.
///
/// # Panics
/// Panics if any request fails.
pub fn run_cereal(
    cfg: CerealConfig,
    heap: &mut Heap,
    reg: &KlassRegistry,
    roots: &[Addr],
) -> SdMeasure {
    let mut accel = Accelerator::new(cfg);
    accel.register_all(reg).expect("register classes");
    // Play the GC's role: clear serialization counters left in header
    // extensions by any previous accelerator run over this heap, so this
    // accelerator's fresh counters cannot collide with stale marks.
    heap.gc_clear_serialization_metadata(reg);

    let mut streams = Vec::with_capacity(roots.len());
    for &root in roots {
        streams.push(accel.serialize(heap, reg, root).expect("serialize").bytes);
    }
    let ser_rep = accel.report();
    accel.reset_meters();

    let cap = heap.capacity_bytes();
    for bytes in &streams {
        let mut dst = Heap::with_base(Addr(DST_BASE), cap);
        accel.deserialize(bytes, &mut dst).expect("deserialize");
    }
    let de_rep = accel.report();

    let name = if cfg.vanilla { "Cereal Vanilla" } else { "Cereal" };
    SdMeasure {
        name: name.to_string(),
        ser_ns: ser_rep.ser_makespan_ns,
        de_ns: de_rep.de_makespan_ns,
        bytes: streams.iter().map(|s| s.len() as u64).sum(),
        ser_ipc: 0.0,
        de_ipc: 0.0,
        ser_llc_miss_rate: 0.0,
        ser_bw_util: ser_rep.bandwidth_util,
        de_bw_util: de_rep.bandwidth_util,
        ser_energy_uj: ser_rep.energy_uj,
        de_energy_uj: de_rep.energy_uj,
    }
}

/// Duplicates a single root `n` times — microbenchmarks issue repeated
/// requests over one graph, as JSBS does with its fixed object.
pub fn repeat_root(root: Addr, n: usize) -> Vec<Addr> {
    vec![root; n]
}

/// Runs a software serializer across `cores` host cores (the paper's
/// §V-D observation that software exploits operation-level parallelism
/// through multithreading). Requests are distributed round-robin; each
/// core has private caches, and all cores contend for the shared DDR4
/// channels. Reported times are the slowest core (the makespan).
///
/// # Panics
/// Panics if any request fails or `cores == 0`.
pub fn run_software_parallel(
    ser: &dyn Serializer,
    heap: &mut Heap,
    reg: &KlassRegistry,
    roots: &[Addr],
    cores: usize,
) -> SdMeasure {
    assert!(cores > 0, "need at least one core");
    let chunks: Vec<Vec<Addr>> = (0..cores)
        .map(|c| roots.iter().copied().skip(c).step_by(cores).collect())
        .collect();

    // Serialization phase: all cores share one DRAM.
    let mut dram = sim::Dram::default();
    let mut ser_ns = 0.0f64;
    let mut streams_per_core: Vec<Vec<Vec<u8>>> = Vec::with_capacity(cores);
    let mut ser_energy_core_ns = 0.0;
    for chunk in &chunks {
        let mut cpu = Cpu::with_dram(sim::CpuConfig::default(), dram);
        let mut streams = Vec::with_capacity(chunk.len());
        for &root in chunk {
            streams.push(ser.serialize(heap, reg, root, &mut cpu).expect("serialize"));
        }
        let r = cpu.report();
        ser_ns = ser_ns.max(r.ns);
        ser_energy_core_ns += r.ns;
        dram = cpu.into_dram();
        streams_per_core.push(streams);
    }
    let ser_bw_util = dram.utilization(ser_ns);
    let bytes: u64 = streams_per_core
        .iter()
        .flatten()
        .map(|s| s.len() as u64)
        .sum();

    // Deserialization phase.
    let mut dram = sim::Dram::default();
    let mut de_ns = 0.0f64;
    let mut de_energy_core_ns = 0.0;
    let cap = heap.capacity_bytes();
    for streams in &streams_per_core {
        let mut cpu = Cpu::with_dram(sim::CpuConfig::default(), dram);
        for bytes in streams {
            let mut dst = Heap::with_base(Addr(DST_BASE), cap);
            ser.deserialize(bytes, reg, &mut dst, &mut cpu).expect("deserialize");
        }
        let r = cpu.report();
        de_ns = de_ns.max(r.ns);
        de_energy_core_ns += r.ns;
        dram = cpu.into_dram();
    }
    let de_bw_util = dram.utilization(de_ns);

    SdMeasure {
        name: format!("{} x{}", ser.name(), cores),
        ser_ns,
        de_ns,
        bytes,
        ser_ipc: 0.0,
        de_ipc: 0.0,
        ser_llc_miss_rate: 0.0,
        ser_bw_util,
        de_bw_util,
        // Energy: each busy core burns its per-core share of the TDP.
        ser_energy_uj: cereal::energy::cpu_energy_uj(ser_energy_core_ns) / 8.0,
        de_energy_uj: cereal::energy::cpu_energy_uj(de_energy_core_ns) / 8.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdheap::builder::Init;
    use sdheap::{FieldKind, GraphBuilder, ValueType};
    use serializers::{JavaSd, Kryo};

    fn small_list() -> (Heap, KlassRegistry, Addr) {
        let mut b = GraphBuilder::new(1 << 20);
        let k = b.klass("L", vec![FieldKind::Value(ValueType::Long), FieldKind::Ref]);
        let mut head = b.object(k, &[Init::Val(0), Init::Null]).unwrap();
        for i in 1..200u64 {
            head = b.object(k, &[Init::Val(i), Init::Ref(head)]).unwrap();
        }
        let (heap, reg) = b.finish();
        (heap, reg, head)
    }

    #[test]
    fn software_and_cereal_agree_on_shape() {
        let (mut heap, reg, root) = small_list();
        let roots = repeat_root(root, 4);
        let java = run_software(&JavaSd::new(), &mut heap, &reg, &roots);
        let kryo = run_software(&Kryo::new(), &mut heap, &reg, &roots);
        let cer = run_cereal(CerealConfig::paper(), &mut heap, &reg, &roots);
        assert!(java.ser_ns > kryo.ser_ns);
        assert!(kryo.ser_ns > cer.ser_ns);
        assert!(cer.sd_energy_uj() < java.sd_energy_uj() / 10.0);
        assert!(java.bytes > kryo.bytes);
        assert!(cer.bytes > 0);
    }

    #[test]
    fn vanilla_reports_its_name() {
        let (mut heap, reg, root) = small_list();
        let m = run_cereal(CerealConfig::vanilla(), &mut heap, &reg, &[root]);
        assert_eq!(m.name, "Cereal Vanilla");
    }
}
