//! Spark application suite: the measurements behind Fig. 2 and
//! Figs. 13–17.

use crate::runners::{run_cereal, run_software, SdMeasure};
use cereal::CerealConfig;
use workloads::spark::phases::{self, AppRun};
use workloads::{SparkApp, SparkScale};

/// All measurements for one application.
#[derive(Clone, Debug)]
pub struct SparkResult {
    /// Which application.
    pub app: SparkApp,
    /// Java S/D measurements over all shuffle batches.
    pub java: SdMeasure,
    /// Kryo measurements.
    pub kryo: SdMeasure,
    /// Cereal measurements.
    pub cereal: SdMeasure,
    /// End-to-end run under Java S/D (phase model).
    pub java_run: AppRun,
    /// End-to-end run under Kryo.
    pub kryo_run: AppRun,
    /// End-to-end run under Cereal.
    pub cereal_run: AppRun,
    /// Packed vs baseline-format sizes (for Fig. 16): (packed, baseline,
    /// packed-with-header-strip).
    pub format_sizes: (u64, u64, u64),
}

/// Runs one application at `scale` on its own dataset — the unit of
/// fan-out scheduling (each app builds a private heap, so apps can run
/// on any worker in any order).
pub fn run_one(app: SparkApp, scale: SparkScale) -> SparkResult {
    let mut ds = app.build(scale);
    let roots = ds.batches.clone();
    let java = run_software(&serializers::JavaSd::new(), &mut ds.heap, &ds.reg, &roots);
    let kryo = run_software(&serializers::Kryo::new(), &mut ds.heap, &ds.reg, &roots);
    let cereal = run_cereal(CerealConfig::paper(), &mut ds.heap, &ds.reg, &roots);

    let java_run = phases::java_run(app, java.sd_ns(), java.bytes);
    let kryo_run = phases::swapped_run(&java_run, kryo.sd_ns(), kryo.bytes, java.bytes);
    let cereal_run = phases::swapped_run(&java_run, cereal.sd_ns(), cereal.bytes, java.bytes);

    let format_sizes = format_sizes(&mut ds, &roots);

    SparkResult {
        app,
        java,
        kryo,
        cereal,
        java_run,
        kryo_run,
        cereal_run,
        format_sizes,
    }
}

/// Runs the full application suite at `scale`.
pub fn run(scale: SparkScale) -> Vec<SparkResult> {
    SparkApp::all().iter().map(|&app| run_one(app, scale)).collect()
}

/// Computes (packed, unpacked-baseline, packed+header-strip) stream sizes
/// for Fig. 16's compression-rate comparison.
fn format_sizes(ds: &mut workloads::SparkDataset, roots: &[sdheap::Addr]) -> (u64, u64, u64) {
    let mut tables = cereal::ClassTables::new(4096);
    tables.register_all(&ds.reg).expect("register");
    // The accelerator runs above already stamped serialization counters
    // into the header extensions; clear them (the paper's GC reset) so
    // our fresh counters do not collide with stale visited marks.
    ds.heap.gc_clear_serialization_metadata(&ds.reg);
    let mut packed = 0u64;
    let mut baseline = 0u64;
    let mut stripped = 0u64;
    for (i, &root) in roots.iter().enumerate() {
        let out = cereal::functional::encode(
            &mut ds.heap,
            &ds.reg,
            &tables,
            (2 * i + 1) as u16,
            0,
            false,
        )
        .run(root)
        .expect("encode");
        packed += out.stream.wire_bytes() as u64;
        baseline += out.stream.baseline_wire_bytes() as u64;
        let strip = cereal::functional::encode(
            &mut ds.heap,
            &ds.reg,
            &tables,
            (2 * i + 2) as u16,
            0,
            true,
        )
        .run(root)
        .expect("encode strip");
        stripped += strip.stream.wire_bytes() as u64;
    }
    (packed, baseline, stripped)
}

/// The experiment scale from `CEREAL_SCALE` (`tiny` | anything else →
/// scaled).
pub fn scale_from_env() -> SparkScale {
    match std::env::var("CEREAL_SCALE").as_deref() {
        Ok("tiny") => SparkScale::Tiny,
        _ => SparkScale::Scaled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::geomean;

    #[test]
    fn tiny_suite_preserves_paper_shapes() {
        let results = run(SparkScale::Tiny);
        assert_eq!(results.len(), 6);

        // Fig. 13 shape: Cereal > Kryo > Java on S/D time, every app.
        for r in &results {
            assert!(r.kryo.sd_ns() < r.java.sd_ns(), "{}", r.app.name());
            assert!(r.cereal.sd_ns() < r.kryo.sd_ns(), "{}", r.app.name());
        }
        let cereal_vs_java =
            geomean(&results.iter().map(|r| r.java.sd_ns() / r.cereal.sd_ns()).collect::<Vec<_>>());
        assert!(cereal_vs_java > 3.0, "paper: 7.97x, got {cereal_vs_java}");

        // Fig. 14 shape: end-to-end speedup > 1 everywhere, biggest for
        // the S/D-dominated SVM.
        let mut best_app = None;
        let mut best = 0.0;
        for r in &results {
            let sp = r.java_run.total_ns() / r.cereal_run.total_ns();
            assert!(sp > 1.0, "{}: {sp}", r.app.name());
            if sp > best {
                best = sp;
                best_app = Some(r.app);
            }
        }
        assert_eq!(best_app, Some(SparkApp::Svm), "SVM gains most (paper: 4.66x)");

        // Fig. 17 shape: Cereal saves orders of magnitude of energy.
        for r in &results {
            assert!(
                r.java.sd_energy_uj() / r.cereal.sd_energy_uj() > 20.0,
                "{}",
                r.app.name()
            );
        }

        // Fig. 16 shape: packing always helps; most on ref-heavy NWeight.
        let rates: Vec<(SparkApp, f64)> = results
            .iter()
            .map(|r| {
                let (p, b, _) = r.format_sizes;
                (r.app, 1.0 - p as f64 / b as f64)
            })
            .collect();
        for &(app, rate) in &rates {
            assert!(rate > 0.0, "{}: {rate}", app.name());
        }
        let nweight = rates.iter().find(|(a, _)| *a == SparkApp::NWeight).unwrap().1;
        let svm = rates.iter().find(|(a, _)| *a == SparkApp::Svm).unwrap().1;
        assert!(
            nweight > svm,
            "packing helps ref-heavy NWeight ({nweight}) more than SVM ({svm})"
        );
    }
}
