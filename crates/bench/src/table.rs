//! Plain-text table rendering for the experiment reports.

/// A simple aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    /// Panics on column-count mismatch.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut width = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = width[i]))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(
            &width
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio as `12.3x`.
pub fn x(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}x")
    } else if v >= 10.0 {
        format!("{v:.1}x")
    } else {
        format!("{v:.2}x")
    }
}

/// Formats a fraction as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Formats nanoseconds human-readably.
pub fn ns(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}s", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}ms", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2}us", v / 1e3)
    } else {
        format!("{v:.0}ns")
    }
}

/// Formats bytes human-readably.
pub fn bytes(v: u64) -> String {
    if v >= 1 << 20 {
        format!("{:.2}MB", v as f64 / (1 << 20) as f64)
    } else if v >= 1 << 10 {
        format!("{:.1}KB", v as f64 / 1024.0)
    } else {
        format!("{v}B")
    }
}

/// Geometric mean of a non-empty slice.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["short".into(), "1".into()]);
        t.row(vec!["a-much-longer-name".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("a-much-longer-name"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(x(2.345), "2.35x");
        assert_eq!(x(43.4), "43.4x");
        assert_eq!(x(227.7), "228x");
        assert_eq!(pct(0.283), "28.3%");
        assert_eq!(ns(1.5e9), "1.50s");
        assert_eq!(ns(250.0), "250ns");
        assert_eq!(bytes(23 << 20), "23.00MB");
        assert_eq!(bytes(512), "512B");
    }

    #[test]
    fn geomean_is_geometric() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[10.0, 10.0, 10.0]) - 10.0).abs() < 1e-9);
    }
}
