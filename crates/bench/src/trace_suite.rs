//! The telemetry demonstration run behind `--bin trace`: one traced
//! shuffle backend (checksums, GC pressure, map-side spill and fault
//! injection all on, so every instrumented path emits), one traced
//! cached-RDD workload under a tight memory budget, and one accelerator
//! round trip on its device lanes — all recorded into a single
//! [`Recorder`] — plus the reconciliation check that the trace's
//! counters agree with the untraced reports' numbers.
//!
//! Everything here is deterministic: the recorder's merged stream, the
//! Chrome trace rendered from it, and the metrics JSON are byte-
//! identical for any worker-thread count (test- and CI-enforced).

use cereal::Accelerator;
use sdheap::{Addr, Heap};
use shuffle::{run_backend_sunk, BackendRun, FaultSpec, ShuffleConfig};
use store::{run_rdd_sunk, AccessPattern, MissPolicy, RddConfig, RddOutcome, DST_BASE};
use telemetry::ids::ACCEL_PID;
use telemetry::{Recon, Recorder};
use workloads::{MicroBench, Scale};

/// Seed for the injected faults (shared with the faults experiment so
/// the schedules are comparable).
pub const FAULT_SEED: u64 = 0xFA17_5EED;

/// Everything the traced demonstration produced.
pub struct TraceRun {
    /// The merged telemetry of all three sections.
    pub recorder: Recorder,
    /// The shuffle section's untraced-equivalent run.
    pub shuffle: BackendRun,
    /// The shuffle configuration that produced it.
    pub shuffle_cfg: ShuffleConfig,
    /// The cached-RDD section's untraced-equivalent outcome.
    pub rdd: RddOutcome,
}

/// The shuffle configuration the trace demonstrates: the smoke dataset
/// with checksummed frames, GC pressure, map-side spill and a 5% fault
/// sweep, on the accelerator backend (so accelerator counters, fallback
/// serialization and CPU op-class histograms all appear).
pub fn shuffle_cfg(jobs: usize) -> ShuffleConfig {
    let mut cfg = ShuffleConfig::smoke();
    cfg.jobs = jobs;
    cfg.checksum = true;
    cfg.gc_pressure = true;
    cfg.spill_bytes = cfg.flush_bytes;
    cfg.faults = Some(FaultSpec::uniform(0.05, FAULT_SEED));
    cfg
}

/// The cached-RDD configuration the trace demonstrates: a tight budget
/// (hits, disk fetches, evictions and spills all fire) with checksummed
/// blocks and transient-fault injection.
pub fn rdd_cfg(jobs: usize) -> RddConfig {
    RddConfig {
        agg: workloads::AggConfig {
            mappers: 6,
            records_per_mapper: 128,
            distinct_keys: 64,
            seed: 0x5EED_B10C,
            skew: workloads::KeySkew::Uniform,
        },
        // The zero-copy backend: re-read passes charge validate-only
        // decode while the spans/counters still reconcile exactly.
        backend: store::Backend::Archive,
        memory_fraction: 0.4,
        passes: 3,
        policy: MissPolicy::Auto,
        disk: sim::DiskConfig::ssd(),
        access: AccessPattern::Scan,
        jobs,
        checksum: true,
        fault: Some(sim::FaultConfig::uniform(0.05, FAULT_SEED)),
    }
}

/// Runs the three traced sections into one recorder.
///
/// # Panics
/// Panics when any section fails — the demonstration runs recovered
/// fault schedules, so a failure is a telemetry-layer bug.
pub fn run(jobs: usize) -> TraceRun {
    let mut rec = Recorder::new();

    let scfg = shuffle_cfg(jobs);
    let shuffle =
        run_backend_sunk(&scfg, shuffle::Backend::Cereal, &mut rec).expect("traced shuffle");

    let rcfg = rdd_cfg(jobs);
    let rdd = run_rdd_sunk(&rcfg, &mut rec).expect("traced cached-RDD run");

    // Accelerator round trip on the device's own lanes: one SU
    // serialization, one DU deserialization.
    let (mut heap, reg, root) = MicroBench::ListSmall.build(Scale::Tiny);
    let mut accel = Accelerator::paper();
    accel.register_all(&reg).expect("register classes");
    let mut stream = Vec::new();
    accel
        .serialize_into_traced(&mut heap, &reg, root, &mut stream, &mut rec, ACCEL_PID)
        .expect("accelerator serialize");
    let mut dst = Heap::with_base(Addr(DST_BASE), heap.capacity_bytes());
    accel
        .deserialize_traced(&stream, &mut dst, &mut rec, ACCEL_PID)
        .expect("accelerator deserialize");

    TraceRun { recorder: rec, shuffle, shuffle_cfg: scfg, rdd }
}

/// Cross-checks every exported counter that has a report-side twin.
/// Counters must match exactly; histogram sums (f64) to accumulation
/// tolerance. An all-green [`Recon`] is the acceptance criterion the
/// trace binary and the reconciliation test enforce.
pub fn reconcile(run: &TraceRun) -> Recon {
    let m = &run.recorder.metrics;
    let rep = &run.shuffle.report;
    let f = rep.faults.expect("trace shuffle runs with fault injection");
    let gc = rep.gc.expect("trace shuffle runs under GC pressure");
    let spill = rep.spill.expect("trace shuffle runs with map-side spill");
    let s = &run.rdd.store;

    let hsum = |name: &str| m.histogram(name).map_or(0.0, |h| h.sum);
    let mut r = Recon::new(1e-6);
    // Shuffle: booked at flush/decode/compose event sites, compared
    // against the report's independently summed totals.
    r.exact("shuffle.messages", m.counter("shuffle.messages"), rep.messages);
    r.exact("shuffle.wire_bytes", m.counter("shuffle.wire_bytes"), rep.wire_bytes);
    r.exact("shuffle.records", m.counter("shuffle.records"), rep.records);
    r.exact(
        "shuffle.backpressure_blocks",
        m.counter("shuffle.backpressure_blocks"),
        rep.net.backpressure_blocks,
    );
    r.exact("shuffle.gc_collections", m.counter("shuffle.gc_collections"), gc.collections);
    r.exact("shuffle.spills", m.counter("shuffle.spills"), spill.spills);
    r.exact("shuffle.spilled_bytes", m.counter("shuffle.spilled_bytes"), spill.spilled_bytes);
    r.exact("shuffle.spill_fetches", m.counter("shuffle.spill_fetches"), spill.fetches);
    r.exact("shuffle.retries", m.counter("shuffle.retries"), f.retries);
    r.exact("shuffle.lost_messages", m.counter("shuffle.lost_messages"), f.lost_messages);
    r.exact("shuffle.wire_corruptions", m.counter("shuffle.wire_corruptions"), f.wire_corruptions);
    r.exact("shuffle.checksum_errors", m.counter("shuffle.checksum_errors"), f.checksum_errors);
    r.exact("shuffle.mapper_deaths", m.counter("shuffle.mapper_deaths"), f.mapper_deaths);
    r.exact("shuffle.accel_faults", m.counter("shuffle.accel_faults"), f.accel_faults);
    r.exact("shuffle.spill_retries", m.counter("shuffle.spill_retries"), f.spill_retries);
    r.exact("shuffle.fabric_bytes", m.counter("shuffle.fabric_bytes"), f.fabric_bytes);
    r.close("shuffle.ser_busy_ns", hsum("shuffle.ser_busy_ns"), rep.ser_busy_ns);
    r.close("shuffle.de_busy_ns", hsum("shuffle.de_busy_ns"), rep.de_busy_ns);
    r.close("shuffle.gc_pause_ns", hsum("shuffle.gc_pause_ns"), gc.pause_ns);
    // Store: hit/miss counters booked per access, evictions and
    // spills as per-operation deltas.
    r.exact("store.hits", m.counter("store.hits"), s.hits);
    r.exact("store.disk_fetches", m.counter("store.disk_fetches"), s.disk_fetches);
    r.exact("store.recomputes", m.counter("store.recomputes"), s.recomputes);
    r.exact("store.evictions", m.counter("store.evictions"), s.evictions);
    r.exact("store.evicted_bytes", m.counter("store.evicted_bytes"), s.evicted_bytes);
    r.exact("store.spills", m.counter("store.spills"), s.spills);
    r.exact("store.spilled_bytes", m.counter("store.spilled_bytes"), s.spilled_bytes);
    r.exact("store.read_retries", m.counter("store.read_retries"), s.read_retries);
    r.exact("store.checksum_errors", m.counter("store.checksum_errors"), s.checksum_errors);
    r.exact("store.disk_read_bytes", m.counter("store.disk_read_bytes"), run.rdd.disk_read_bytes);
    r.exact(
        "store.disk_write_bytes",
        m.counter("store.disk_write_bytes"),
        run.rdd.disk_write_bytes,
    );
    r.exact("store.disk_seeks", m.counter("store.disk_seeks"), run.rdd.disk_seeks);
    // Accelerator requests: one per non-faulted shuffle batch on each
    // side (faulted batches degrade to the software fallback), plus the
    // demonstration round trip.
    let accel_batches = rep.messages - f.accel_faults;
    r.exact("accel.ser_requests", m.counter("accel.ser_requests"), accel_batches + 1);
    r.exact("accel.de_requests", m.counter("accel.de_requests"), accel_batches + 1);
    r
}
