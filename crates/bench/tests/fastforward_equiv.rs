//! Fast-forwarding the DRAM capacity-ledger walk is a pure wall-clock
//! optimization: simulated times must be bit-identical with it on or
//! off. Verified over all six Fig. 10 microbench configurations.

use cereal::CerealConfig;
use cereal_bench::{repeat_root, run_cereal};
use workloads::micro::{MicroBench, Scale};

#[test]
fn micro_configs_time_identically_with_and_without_fast_forward() {
    for mb in MicroBench::all() {
        let (mut heap, reg, root) = mb.build(Scale::Tiny);
        let roots = repeat_root(root, 8);
        let fast = run_cereal(CerealConfig::paper(), &mut heap, &reg, &roots);
        let tick = {
            let mut cfg = CerealConfig::paper();
            cfg.dram.fast_forward = false;
            run_cereal(cfg, &mut heap, &reg, &roots)
        };
        assert_eq!(
            fast.ser_ns.to_bits(),
            tick.ser_ns.to_bits(),
            "{}: ser {} vs {}",
            mb.name(),
            fast.ser_ns,
            tick.ser_ns
        );
        assert_eq!(
            fast.de_ns.to_bits(),
            tick.de_ns.to_bits(),
            "{}: de {} vs {}",
            mb.name(),
            fast.de_ns,
            tick.de_ns
        );
        assert_eq!(fast.bytes, tick.bytes, "{}", mb.name());
        assert_eq!(
            fast.ser_bw_util.to_bits(),
            tick.ser_bw_util.to_bits(),
            "{}",
            mb.name()
        );
    }
}
