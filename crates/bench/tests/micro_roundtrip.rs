//! Pack/stream round trips on the scaled-down micro workloads: the
//! accelerator's serialized bytes must parse back into a `CerealStream`
//! that re-encodes to identical wire bytes, and the packing kernel must
//! round-trip workload-derived integer sequences. Guards the wire format
//! across hot-path rewrites of the bit I/O and pack layers.

use cereal::{Accelerator, CerealConfig};
use sdformat::{CerealStream, Packed};
use sdheap::{Addr, Heap};
use workloads::{MicroBench, Scale};

/// Destination-heap base for reconstruction (clear of every source).
const DST_BASE: u64 = 0x40_0000_0000;

fn serialize_tiny(mb: MicroBench) -> (Vec<u8>, u64) {
    let (mut heap, reg, root) = mb.build(Scale::Tiny);
    let mut accel = Accelerator::new(CerealConfig::paper());
    accel.register_all(&reg).expect("register classes");
    heap.gc_clear_serialization_metadata(&reg);
    let bytes = accel
        .serialize(&mut heap, &reg, root)
        .expect("serialize")
        .bytes;
    // Reconstruction must still work on the same accelerator's tables.
    let mut dst = Heap::with_base(Addr(DST_BASE), heap.capacity_bytes());
    accel.deserialize(&bytes, &mut dst).expect("deserialize");
    (bytes, heap.capacity_bytes() as u64)
}

#[test]
fn micro_streams_roundtrip_on_the_wire() {
    for mb in MicroBench::all() {
        let (bytes, _) = serialize_tiny(mb);
        let stream = CerealStream::from_bytes(&bytes).expect("parse stream");
        let mut rebytes = Vec::new();
        stream.to_bytes_into(&mut rebytes);
        assert_eq!(bytes, rebytes, "{}: wire round trip", mb.name());
        assert_eq!(stream.to_bytes(), rebytes, "{}: to_bytes agrees", mb.name());
    }
}

#[test]
fn workload_values_pack_roundtrip() {
    for mb in MicroBench::all() {
        let (bytes, _) = serialize_tiny(mb);
        let stream = CerealStream::from_bytes(&bytes).expect("parse stream");
        // The value section of a real workload stream, re-packed through
        // the integer path, must survive a pack → unpack round trip.
        let vals = stream.value_words();
        let packed = Packed::from_values(vals.iter().copied());
        assert_eq!(packed.count, vals.len(), "{}", mb.name());
        assert_eq!(packed.to_values(), vals, "{}: value round trip", mb.name());
    }
}
