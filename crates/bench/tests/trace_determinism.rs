//! The telemetry layer's two acceptance properties, on the real
//! demonstration suite:
//!
//! 1. **thread-count determinism** — the merged trace (Chrome JSON and
//!    metrics JSON) is byte-identical for 1 and 4 worker threads;
//! 2. **counter reconciliation** — every exported counter with a
//!    report-side twin matches it (exactly for counters, to
//!    accumulation tolerance for histogram sums);
//!
//! plus the guarantee that tracing never perturbs the simulation: the
//! traced run's report equals the untraced run's.

use cereal_bench::trace_suite;
use telemetry::chrome_trace;

#[test]
fn trace_is_byte_identical_across_job_counts() {
    let one = trace_suite::run(1);
    let four = trace_suite::run(4);
    assert_eq!(
        chrome_trace(&one.recorder),
        chrome_trace(&four.recorder),
        "chrome trace differs between 1 and 4 jobs"
    );
    assert_eq!(
        one.recorder.metrics.to_json(),
        four.recorder.metrics.to_json(),
        "metrics registry differs between 1 and 4 jobs"
    );
}

#[test]
fn every_counter_reconciles_with_the_reports() {
    let run = trace_suite::run(2);
    let recon = trace_suite::reconcile(&run);
    assert!(recon.total() >= 30, "reconciliation table lost checks");
    let failed: Vec<String> = recon
        .checks
        .iter()
        .filter(|c| !c.ok)
        .map(|c| format!("{}: traced {} != reported {}", c.name, c.traced, c.reported))
        .collect();
    assert!(failed.is_empty(), "counters out of agreement:\n{}", failed.join("\n"));
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    let traced = trace_suite::run(2);
    let plain = shuffle::run_backend(&trace_suite::shuffle_cfg(2), shuffle::Backend::Cereal)
        .expect("untraced shuffle");
    let t = &traced.shuffle.report;
    let p = &plain.report;
    assert_eq!(t.messages, p.messages);
    assert_eq!(t.wire_bytes, p.wire_bytes);
    assert_eq!(t.records, p.records);
    assert_eq!(t.ser_busy_ns.to_bits(), p.ser_busy_ns.to_bits());
    assert_eq!(t.de_busy_ns.to_bits(), p.de_busy_ns.to_bits());
    assert_eq!(t.net, p.net);
    assert_eq!(t.fold_checksum, p.fold_checksum);

    let rdd = store::run_rdd(&trace_suite::rdd_cfg(2)).expect("untraced rdd");
    assert_eq!(traced.rdd.store, rdd.store);
    assert_eq!(traced.rdd.total_ns.to_bits(), rdd.total_ns.to_bits());
}
