//! The deterministic event queue driving the cluster's simulated clock.
//!
//! A classic discrete-event core: events carry an `f64` nanosecond
//! timestamp, the queue pops them in time order, and simultaneous
//! events break ties by insertion sequence — so the pop order is a pure
//! function of the push order, which the scheduler keeps deterministic.
//! Timestamps are always finite (they come from the link/disk/engine
//! models, never from arithmetic that can produce NaN), so the partial
//! float order is total here.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    t_ns: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.t_ns == other.t_ns && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .t_ns
            .partial_cmp(&self.t_ns)
            .expect("event times are finite")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-heap of timestamped events with FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Schedules `event` at `t_ns` on the simulated clock.
    ///
    /// # Panics
    /// Panics if `t_ns` is not finite.
    pub fn push(&mut self, t_ns: f64, event: E) {
        assert!(t_ns.is_finite(), "event time must be finite");
        self.heap.push(Entry { t_ns, seq: self.seq, event });
        self.seq += 1;
    }

    /// Pops the earliest event (insertion order among ties).
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|e| (e.t_ns, e.event))
    }

    /// Events still scheduled.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30.0, "c");
        q.push(10.0, "a");
        q.push(20.0, "b");
        assert_eq!(q.pop(), Some((10.0, "a")));
        assert_eq!(q.pop(), Some((20.0, "b")));
        assert_eq!(q.pop(), Some((30.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_pop_in_push_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(5.0, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5.0, i)));
        }
    }

    #[test]
    fn interleaved_pushes_keep_ordering() {
        let mut q = EventQueue::new();
        q.push(10.0, 0);
        assert_eq!(q.pop(), Some((10.0, 0)));
        q.push(8.0, 1);
        q.push(12.0, 2);
        assert_eq!(q.pop(), Some((8.0, 1)));
        q.push(11.0, 3);
        assert_eq!(q.pop(), Some((11.0, 3)));
        assert_eq!(q.pop(), Some((12.0, 2)));
        assert!(q.is_empty());
    }
}
