//! Tenant job templates and the open-arrival generator.
//!
//! Each tenant owns one job *template* — a dataset seed, a
//! serialization backend, and a job shape (shuffle or cached-RDD scan).
//! The arrival process is open: inter-arrival gaps are exponential
//! draws on the simulated clock (a Poisson process), and each arrival's
//! tenant comes from a Zipf-skewed [`SkewSampler`], so a hot tenant's
//! jobs pile onto the cluster the way hot keys pile onto a reducer.

use crate::ClusterConfig;
use sdheap::rng::Rng;
use store::Backend;
use workloads::{AggConfig, KeySkew, SkewSampler};

/// PRNG scope of the tenant-pick stream.
const TENANT_SCOPE: u64 = 0x7E4A_4700_0000;
/// PRNG scope of the inter-arrival stream.
const ARRIVAL_SCOPE: u64 = 0xA221_4A11_0000;

/// What a tenant's jobs do.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum JobKind {
    /// A two-stage shuffle: map wave, then reduce wave.
    Shuffle,
    /// A cached-RDD job: materialize the partitions, then re-read them
    /// for `passes` scan stages.
    Scan {
        /// Re-read passes after materialization.
        passes: usize,
    },
}

/// One tenant's job template.
#[derive(Clone, Copy, Debug)]
pub struct TenantTemplate {
    /// The tenant index.
    pub tenant: usize,
    /// Job shape.
    pub kind: JobKind,
    /// Serialization backend of every task (Cereal-backend deserialize
    /// tasks contend for the shared DU contexts).
    pub backend: Backend,
    /// The tenant's dataset.
    pub agg: AggConfig,
}

/// Backends cycled across tenants: Cereal appears often enough that DU
/// contexts stay contended, with software and zero-copy backends mixed
/// in so the cluster exercises every decode path.
const TENANT_BACKENDS: [Backend; 8] = [
    Backend::Cereal,
    Backend::Kryo,
    Backend::Archive,
    Backend::Cereal,
    Backend::ProtoLike,
    Backend::Cereal,
    Backend::Kryo,
    Backend::Archive,
];

/// The template of tenant `t` under `cfg`: even tenants shuffle, odd
/// tenants run cached scans; backends cycle through
/// [`TENANT_BACKENDS`]; every other tenant's keys are Zipf-skewed.
pub fn template(cfg: &ClusterConfig, t: usize) -> TenantTemplate {
    let kind = if t % 2 == 0 { JobKind::Shuffle } else { JobKind::Scan { passes: 2 } };
    let skew = if t % 2 == 0 { KeySkew::Zipf(0.9) } else { KeySkew::Uniform };
    TenantTemplate {
        tenant: t,
        kind,
        backend: TENANT_BACKENDS[t % TENANT_BACKENDS.len()],
        agg: AggConfig {
            mappers: cfg.template_mappers,
            records_per_mapper: cfg.template_records,
            distinct_keys: cfg.template_keys,
            seed: cfg.seed ^ (0x7E4A_0000 + t as u64),
            skew,
        },
    }
}

/// One job arrival.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Arrival {
    /// Arrival time on the simulated clock.
    pub t_ns: f64,
    /// The arriving job's tenant.
    pub tenant: usize,
}

/// The seeded open-arrival sequence: `cfg.job_arrivals` jobs with
/// exponential inter-arrival gaps of the given mean, tenants drawn from
/// a Zipf([`ClusterConfig::tenant_theta`]) sampler. Both streams are
/// scoped off the master seed, so the sequence is a pure function of
/// `(cfg, mean_interarrival_ns)`.
pub fn arrivals(cfg: &ClusterConfig, mean_interarrival_ns: f64) -> Vec<Arrival> {
    assert!(
        mean_interarrival_ns.is_finite() && mean_interarrival_ns >= 0.0,
        "mean inter-arrival must be finite and non-negative"
    );
    let mut skew = SkewSampler::new(
        cfg.tenants.max(1) as u64,
        cfg.tenant_theta,
        cfg.seed ^ TENANT_SCOPE,
    );
    let mut rng = Rng::new(cfg.seed ^ ARRIVAL_SCOPE);
    let mut t = 0.0f64;
    (0..cfg.job_arrivals)
        .map(|_| {
            // Inverse-CDF exponential: u ∈ [0,1) ⇒ -ln(1-u) ∈ [0,∞).
            let u = rng.gen_f64();
            t += -(1.0 - u).ln() * mean_interarrival_ns;
            Arrival { t_ns: t, tenant: skew.next() as usize }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_deterministic_and_monotonic() {
        let cfg = ClusterConfig::smoke();
        let a = arrivals(&cfg, 50_000.0);
        let b = arrivals(&cfg, 50_000.0);
        assert_eq!(a, b);
        assert_eq!(a.len(), cfg.job_arrivals);
        for w in a.windows(2) {
            assert!(w[0].t_ns <= w[1].t_ns, "arrival times must be non-decreasing");
        }
        for arr in &a {
            assert!(arr.tenant < cfg.tenants);
        }
    }

    #[test]
    fn tenant_skew_concentrates_arrivals() {
        let mut cfg = ClusterConfig::smoke();
        cfg.job_arrivals = 2000;
        cfg.tenant_theta = 1.4;
        let hot = arrivals(&cfg, 1000.0)
            .iter()
            .filter(|a| a.tenant == 0)
            .count();
        cfg.tenant_theta = 0.0;
        let flat = arrivals(&cfg, 1000.0)
            .iter()
            .filter(|a| a.tenant == 0)
            .count();
        assert!(
            hot > flat * 2,
            "theta 1.4 should concentrate on tenant 0: hot {hot} vs flat {flat}"
        );
    }

    #[test]
    fn templates_cover_both_kinds_and_the_accelerator() {
        let cfg = ClusterConfig::smoke();
        let ts: Vec<TenantTemplate> = (0..cfg.tenants).map(|t| template(&cfg, t)).collect();
        assert!(ts.iter().any(|t| t.kind == JobKind::Shuffle));
        assert!(ts.iter().any(|t| matches!(t.kind, JobKind::Scan { .. })));
        assert!(ts.iter().any(|t| t.backend == Backend::Cereal));
        // Distinct dataset seeds per tenant.
        let mut seeds: Vec<u64> = ts.iter().map(|t| t.agg.seed).collect();
        seeds.dedup();
        assert_eq!(seeds.len(), cfg.tenants);
    }
}
