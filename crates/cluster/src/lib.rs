//! `cluster` — a deterministic event-driven cluster scheduler.
//!
//! The sibling crates simulate one job at a time on a hand-rolled
//! per-run timeline: nothing ever *contends*. This crate replaces that
//! timeline with a discrete-event scheduler over 100s–1000s of
//! executors, so the serialization economics the paper measures finally
//! meet cluster reality — queueing, sharing, and stragglers:
//!
//! * **open arrivals** — a seeded Poisson-style job generator
//!   ([`job::arrivals`]) on the simulated clock; each arrival draws its
//!   tenant from a Zipf-skewed [`workloads::SkewSampler`], so a few hot
//!   tenants dominate the cluster the way hot keys dominate a shuffle;
//! * **real work, profiled once** — each tenant's job template is
//!   executed *for real* exactly once ([`profile`]): shuffle map tasks
//!   run [`shuffle::run_mapper`], reduce tasks run
//!   [`shuffle::run_reducer`], cached-RDD tasks run
//!   [`store::build_part`] — producing per-task service times, message
//!   bytes, and per-task folds. The scheduler then replays those
//!   profiles under contention; folds are re-merged from winning task
//!   attempts at job completion and checked against the profile digest,
//!   so scheduling can never silently change an answer;
//! * **a shared fabric** — every inter-executor transfer (reduce input
//!   fetches, cached-block reads) is charged on one
//!   [`sim::net::Fabric`] full mesh whose lazy pair links make
//!   1000-executor meshes affordable;
//! * **DU context sharing** — executors are grouped into nodes; each
//!   node owns `du_contexts_per_node` Cereal accelerator
//!   deserialization contexts. Cereal-backend reduce/scan tasks queue
//!   for a context, and the queueing delay is charged on the event
//!   clock — the paper's accelerator, finally shared;
//! * **speculative re-execution** — a seeded straggler model inflates
//!   some task services; once a stage is mostly done, running tasks
//!   lagging the completed-task median get a speculative copy
//!   (first-completion-wins, the loser killed and its executor and DU
//!   context reclaimed). Copies replay the same profile, so folds stay
//!   bit-identical — speculation moves time, never answers;
//! * **a cluster fault domain** — seeded executor crashes and whole-node
//!   failures ([`ClusterFaultConfig`], scoped [`sim::FaultInjector`]
//!   streams keyed by the stable executor entity ids), a heartbeat/lease
//!   failure detector on the event clock (miss-threshold → declared
//!   dead, in-flight attempts killed with DU reservations refunded,
//!   lost stage-0 outputs recomputed Spark-style), fetch failures that
//!   detect silent deaths ahead of the heartbeat timeout, per-executor
//!   failure accounting with blacklisting (drain + seeded-cooldown
//!   rejoin), DU device failures that degrade a node's Cereal decodes
//!   to a profiled software fallback, bounded job-level retries with
//!   exponential backoff, and admission control that sheds arrivals
//!   past a queue-depth watermark. Every recovery path re-merges the
//!   exact profile fold digest — jobs either complete bit-identically
//!   or are reported shed / exhausted-retries, never silently wrong;
//! * **telemetry twins** — [`run_cluster_sunk`] books every counter,
//!   gauge and span at the event site (fault lifecycle on the `T_FAIL`
//!   lanes); the `cluster` bench binary reconciles the exported
//!   counters against the report and exits non-zero on any mismatch.
//!
//! Determinism: profile building fans out over real threads
//! ([`ClusterConfig::jobs`] via [`store::par_map`]), but per-task
//! results are pure functions of the config; the event loop itself is
//! strictly sequential with FIFO tie-breaking ([`event::EventQueue`]).
//! Every reported number is therefore byte-identical for any job count
//! (test- and CI-enforced).

pub mod event;
pub mod job;
pub mod profile;
pub mod report;
pub mod sched;

pub use event::EventQueue;
pub use job::{arrivals, template, Arrival, JobKind, TenantTemplate};
pub use profile::{build_profiles, JobProfile, JobShape};
pub use report::CellResult;
pub use sched::{run_cluster, run_cluster_sunk, ClusterOutcome, TenantStats};

use sim::LinkConfig;
use store::Backend;

/// Errors the cluster scheduler can surface. Profile building runs real
/// executors, so their typed errors propagate; the scheduler itself
/// adds fold-integrity violations (which would mean scheduling changed
/// an answer — a bug, never expected).
#[derive(Debug)]
pub enum ClusterError {
    /// A profile-building shuffle executor failed.
    Shuffle(shuffle::ShuffleError),
    /// A tenant's profiled shuffle fold did not match the dataset's
    /// independently computed expected aggregate.
    ProfileFoldMismatch {
        /// The offending tenant.
        tenant: usize,
    },
    /// A completed job's re-merged fold digest did not match its
    /// tenant profile.
    JobFoldMismatch {
        /// The offending job (arrival index).
        job: usize,
        /// The job's tenant.
        tenant: usize,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Shuffle(e) => write!(f, "profile shuffle executor failed: {e}"),
            ClusterError::ProfileFoldMismatch { tenant } => {
                write!(f, "tenant {tenant}: profiled fold != expected aggregate")
            }
            ClusterError::JobFoldMismatch { job, tenant } => {
                write!(f, "job {job} (tenant {tenant}): re-merged fold != profile digest")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<shuffle::ShuffleError> for ClusterError {
    fn from(e: shuffle::ShuffleError) -> Self {
        ClusterError::Shuffle(e)
    }
}

/// The cluster fault domain: seeded executor crashes, whole-node
/// failures, spurious task failures, DU device failures, and the
/// recovery machinery that answers them (heartbeat detection,
/// blacklisting, retries with backoff, admission control).
///
/// All rates are per-dispatch probabilities drawn from scoped
/// [`sim::FaultInjector`] streams — executor streams keyed by the
/// executor's stable telemetry entity id (`CLUSTER_PID_BASE + e`), node
/// streams by the node index — so the fault schedule is a pure function
/// of `(seed, entity)` and byte-identical for any `--jobs` thread count.
#[derive(Clone, Copy, Debug)]
pub struct ClusterFaultConfig {
    /// Probability per dispatched attempt that the hosting executor
    /// crashes mid-service (silent — detected by heartbeat or by a
    /// later fetch failure).
    pub exec_crash_rate: f64,
    /// Probability per dispatched attempt that the hosting executor's
    /// whole node fails, crashing every executor on it.
    pub node_fail_rate: f64,
    /// Probability per dispatched attempt that the attempt fails
    /// cleanly (the executor survives and reports the failure).
    pub task_fail_rate: f64,
    /// Probability per DU-context acquisition that the node's DU device
    /// fails permanently, degrading the node's Cereal decodes to the
    /// profiled `fallback` software backend.
    pub du_fail_rate: f64,
    /// Heartbeat/lease period on the event clock (ns).
    pub heartbeat_period_ns: f64,
    /// Consecutive missed heartbeats before a crashed executor is
    /// declared dead.
    pub heartbeat_misses: u32,
    /// Time from a declared death until the replacement executor
    /// re-registers (ns).
    pub restart_ns: f64,
    /// Clean task failures on one executor before it is blacklisted
    /// (0 disables blacklisting).
    pub blacklist_threshold: u32,
    /// Base cooldown before a blacklisted executor rejoins (ns); the
    /// actual cooldown is jittered by the executor's fault stream.
    pub blacklist_cooldown_ns: f64,
    /// Task re-enqueues (of any cause) a job may consume before it is
    /// aborted as exhausted-retries.
    pub job_retry_budget: u32,
    /// Base backoff before retrying a cleanly failed task (ns); doubles
    /// per prior failure of that task (exponential backoff).
    pub retry_backoff_ns: f64,
    /// Admission-control watermark: arrivals finding this many pending
    /// attempts already queued are shed (0 disables shedding).
    pub shed_queue_depth: usize,
    /// Software backend a DU-failed node degrades its Cereal decodes to.
    pub fallback: Backend,
}

impl ClusterFaultConfig {
    /// No faults and no admission control: the scheduler behaves
    /// exactly as if the fault domain did not exist.
    pub fn none() -> Self {
        ClusterFaultConfig {
            exec_crash_rate: 0.0,
            node_fail_rate: 0.0,
            task_fail_rate: 0.0,
            du_fail_rate: 0.0,
            heartbeat_period_ns: 25_000.0,
            heartbeat_misses: 3,
            restart_ns: 150_000.0,
            blacklist_threshold: 3,
            blacklist_cooldown_ns: 200_000.0,
            job_retry_budget: 24,
            retry_backoff_ns: 5_000.0,
            shed_queue_depth: 0,
            fallback: Backend::Kryo,
        }
    }

    /// Whether any fault draw or admission gate can fire. When false
    /// the scheduler skips the fault machinery entirely, keeping the
    /// fault-free path a byte-identical no-op.
    pub fn enabled(&self) -> bool {
        self.exec_crash_rate > 0.0
            || self.node_fail_rate > 0.0
            || self.task_fail_rate > 0.0
            || self.du_fail_rate > 0.0
            || self.shed_queue_depth > 0
    }
}

/// Cluster experiment configuration.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Executors in the cluster (fabric endpoints, task slots).
    pub executors: usize,
    /// Executors per physical node (DU contexts are per node).
    pub executors_per_node: usize,
    /// Cereal DU deserialization contexts per node — the shared,
    /// contended accelerator resource.
    pub du_contexts_per_node: usize,
    /// Tenants (distinct job templates).
    pub tenants: usize,
    /// Zipf exponent of the tenant-arrival skew (0 = uniform).
    pub tenant_theta: f64,
    /// Jobs arriving over the run (open arrivals).
    pub job_arrivals: usize,
    /// Target executor utilization the arrival rate is calibrated to.
    pub target_load: f64,
    /// Map tasks (= reduce tasks = cached partitions) per job template.
    pub template_mappers: usize,
    /// Records per map task in the templates.
    pub template_records: usize,
    /// Distinct aggregation keys in the templates.
    pub template_keys: u64,
    /// Pair-link model of the shared fabric.
    pub link: LinkConfig,
    /// Probability a task draws a straggler (seeded per task).
    pub straggler_rate: f64,
    /// Service-time multiplier of a straggling task.
    pub straggler_factor: f64,
    /// Whether speculative re-execution is on.
    pub speculation: bool,
    /// Fraction of a stage that must complete before its laggards are
    /// eligible for speculation.
    pub spec_quantile: f64,
    /// A running task is a laggard when its elapsed time exceeds this
    /// multiple of the stage's completed-task median service.
    pub spec_multiplier: f64,
    /// The cluster fault domain (crash/failure rates, detection,
    /// blacklisting, retries, admission control).
    pub fault: ClusterFaultConfig,
    /// Master seed (arrivals, tenant skew, straggler draws, fault
    /// streams, datasets).
    pub seed: u64,
    /// Worker threads for profile building (does not affect results).
    pub jobs: usize,
    /// Simulated-clock bucket width for the traced gauge timeline
    /// (utilization, queue depth, blacklist, DU occupancy). `0`
    /// disables sampling; ignored entirely when tracing is off.
    pub timeline_bucket_ns: f64,
}

impl ClusterConfig {
    /// Small configuration for tests and `--smoke` runs.
    pub fn smoke() -> Self {
        ClusterConfig {
            executors: 64,
            executors_per_node: 8,
            du_contexts_per_node: 2,
            tenants: 4,
            tenant_theta: 1.1,
            job_arrivals: 24,
            target_load: 0.7,
            template_mappers: 4,
            template_records: 192,
            template_keys: 32,
            link: LinkConfig::ten_gbe(),
            straggler_rate: 0.0,
            straggler_factor: 8.0,
            speculation: false,
            spec_quantile: 0.5,
            spec_multiplier: 1.5,
            fault: ClusterFaultConfig::none(),
            seed: 0xC105_7E2_5EED,
            jobs: 1,
            timeline_bucket_ns: 50_000.0,
        }
    }

    /// Nodes in the cluster.
    pub fn nodes(&self) -> usize {
        self.executors.div_ceil(self.executors_per_node.max(1))
    }
}
