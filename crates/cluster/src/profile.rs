//! Job profiles: each tenant's template executed for real, once.
//!
//! The scheduler needs per-task service times, inter-task transfer
//! sizes, and per-task answers. Rather than inventing synthetic
//! numbers, every tenant's template runs through the *actual*
//! executors — [`shuffle::run_mapper`]/[`shuffle::run_reducer`] for
//! shuffle jobs, [`store::build_part`] for cached-RDD jobs — exactly
//! once, and the measurements become the profile that every job
//! instance of that tenant replays under contention. Task outputs
//! (per-reduce-task and per-partition folds) ride along, so a job's
//! answer can be re-assembled from whichever attempts win and checked
//! against the profile digest.
//!
//! Builds fan out over [`store::par_map`] (per-task results are pure
//! functions of the template), so `--jobs` changes wall-clock only.

use crate::job::{template, JobKind, TenantTemplate};
use crate::{ClusterConfig, ClusterError};
use shuffle::{fold_checksum, run_mapper, Message, ShuffleConfig};
use std::collections::BTreeMap;
use store::{build_part, par_map, Backend, MissPolicy, RddConfig};

/// Whether this tenant needs a software-fallback decode profile: only
/// when DU device failures can fire and the tenant actually decodes on
/// the DU (Cereal backend) with a *different* configured fallback.
fn profiles_fallback(cfg: &ClusterConfig, t: &TenantTemplate) -> bool {
    cfg.fault.du_fail_rate > 0.0
        && t.backend == Backend::Cereal
        && cfg.fault.fallback != t.backend
}

/// A per-key `(count, sum)` aggregate.
pub type Fold = BTreeMap<u64, (u64, f64)>;

/// One profiled map task.
#[derive(Clone, Debug)]
pub struct MapTask {
    /// Simulated service time (build + shuffle + serialize, the
    /// mapper's full clock).
    pub service_ns: f64,
    /// Fraction of the service spent serializing (engine busy time /
    /// full clock, capped at 1: the accelerator's units serialize in
    /// parallel, so their summed busy time can exceed the mapper's
    /// wall window) — the blame attribution splits the compute window
    /// with it.
    pub ser_frac: f64,
}

/// One profiled reduce task.
#[derive(Clone, Debug)]
pub struct ReduceTask {
    /// Inputs in deterministic `(mapper, seq)` order: which map task
    /// produced the batch, and its wire size.
    pub inputs: Vec<(usize, u64)>,
    /// Simulated decode service time (summed over inputs).
    pub service_ns: f64,
    /// Decode service under the configured software fallback backend —
    /// what a DU-failed node pays for this task (PR 4 degrade
    /// semantics: the fallback engine produces and decodes the batch,
    /// the fold is bit-identical). Equals `service_ns` when fallback
    /// profiling is off.
    pub fallback_ns: f64,
    /// The task's fold over its key range.
    pub fold: Fold,
}

/// One profiled cached partition.
#[derive(Clone, Debug)]
pub struct ScanPart {
    /// Serialized block size (what a remote scan fetches).
    pub bytes: u64,
    /// Materialization service (graph build + GC pressure +
    /// serialization — the lineage cost).
    pub materialize_ns: f64,
    /// Per-pass read service (deserialize, or validate-only for the
    /// zero-copy backend).
    pub read_ns: f64,
    /// Per-pass read service under the configured software fallback
    /// backend — what a DU-failed node pays. Equals `read_ns` when
    /// fallback profiling is off.
    pub fallback_read_ns: f64,
    /// Fraction of the materialize service spent serializing.
    pub ser_frac: f64,
    /// Fraction of the materialize service spent in GC pressure (the
    /// rest of the lineage cost; `ser_frac + gc_frac <= 1`).
    pub gc_frac: f64,
    /// The partition's fold.
    pub fold: Fold,
}

/// A tenant job's task graph.
#[derive(Clone, Debug)]
pub enum JobShape {
    /// Map wave then reduce wave.
    Shuffle {
        /// Profiled map tasks.
        maps: Vec<MapTask>,
        /// Profiled reduce tasks.
        reduces: Vec<ReduceTask>,
    },
    /// Materialize wave then `passes` scan waves.
    Scan {
        /// Profiled partitions.
        parts: Vec<ScanPart>,
        /// Scan stages after materialization.
        passes: usize,
    },
}

/// One tenant's complete job profile.
#[derive(Clone, Debug)]
pub struct JobProfile {
    /// The template this profile measures.
    pub template: TenantTemplate,
    /// The task graph with per-task measurements.
    pub shape: JobShape,
    /// FNV-1a digest of the job's merged fold — what every completed
    /// job instance must reproduce from its winning attempts.
    pub fold_checksum: u64,
    /// Tasks per job instance.
    pub tasks: u64,
    /// Summed nominal task service per job instance.
    pub total_service_ns: f64,
}

impl JobProfile {
    /// Stages per job instance.
    pub fn stages(&self) -> usize {
        match &self.shape {
            JobShape::Shuffle { .. } => 2,
            JobShape::Scan { passes, .. } => 1 + passes,
        }
    }

    /// Tasks in stage `s`.
    pub fn stage_tasks(&self, s: usize) -> usize {
        match &self.shape {
            JobShape::Shuffle { maps, reduces } => {
                if s == 0 {
                    maps.len()
                } else {
                    reduces.len()
                }
            }
            JobShape::Scan { parts, .. } => parts.len(),
        }
    }

    /// Nominal service of task `t` in stage `s`.
    pub fn service_ns(&self, s: usize, t: usize) -> f64 {
        match &self.shape {
            JobShape::Shuffle { maps, reduces } => {
                if s == 0 {
                    maps[t].service_ns
                } else {
                    reduces[t].service_ns
                }
            }
            JobShape::Scan { parts, .. } => {
                if s == 0 {
                    parts[t].materialize_ns
                } else {
                    parts[t].read_ns
                }
            }
        }
    }

    /// Nominal service of task `t` in stage `s` on a DU-failed node:
    /// decode stages pay the profiled software-fallback service,
    /// non-decode stages are unaffected.
    pub fn fallback_service_ns(&self, s: usize, t: usize) -> f64 {
        if !self.stage_decodes(s) {
            return self.service_ns(s, t);
        }
        match &self.shape {
            JobShape::Shuffle { reduces, .. } => reduces[t].fallback_ns,
            JobShape::Scan { parts, .. } => parts[t].fallback_read_ns,
        }
    }

    /// Whether stage `s` tasks decode serialized data (and so need a DU
    /// context under the Cereal backend).
    pub fn stage_decodes(&self, s: usize) -> bool {
        s > 0
    }

    /// Blame-category fractions `(ser, de, gc)` of task `t`'s service
    /// window in stage `s`, measured during profiling. Decode stages
    /// are pure deserialization; map/materialize stages split between
    /// serialization, GC pressure, and (the remainder) compute.
    pub fn components(&self, s: usize, t: usize) -> (f64, f64, f64) {
        match &self.shape {
            JobShape::Shuffle { maps, .. } => {
                if s == 0 {
                    (maps[t].ser_frac, 0.0, 0.0)
                } else {
                    (0.0, 1.0, 0.0)
                }
            }
            JobShape::Scan { parts, .. } => {
                if s == 0 {
                    (parts[t].ser_frac, 0.0, parts[t].gc_frac)
                } else {
                    (0.0, 1.0, 0.0)
                }
            }
        }
    }
}

/// The shuffle configuration a tenant template profiles under:
/// fault-free, spill-free, square (reducers = mappers), single-threaded
/// per task.
fn shuffle_cfg(t: &TenantTemplate) -> ShuffleConfig {
    ShuffleConfig {
        mappers: t.agg.mappers,
        reducers: t.agg.mappers,
        records_per_mapper: t.agg.records_per_mapper,
        distinct_keys: t.agg.distinct_keys,
        seed: t.agg.seed,
        skew: t.agg.skew,
        flush_bytes: 4 << 10,
        watermark_bytes: 1 << 30,
        spill_bytes: 0,
        link: sim::LinkConfig::ten_gbe(),
        link_name: "10GbE",
        gc_pressure: false,
        gc_waves: 1,
        jobs: 1,
        checksum: false,
        faults: None,
    }
}

fn profile_shuffle(cfg: &ClusterConfig, t: &TenantTemplate) -> Result<JobProfile, ClusterError> {
    let sc = shuffle_cfg(t);
    let outs = par_map(cfg.jobs, sc.mappers, |m| run_mapper(&sc, t.backend, m));
    let mut maps = Vec::with_capacity(sc.mappers);
    let mut all_msgs: Vec<Message> = Vec::new();
    for out in outs {
        let out = out?;
        let ser_frac =
            if out.clock_ns > 0.0 { (out.ser_busy_ns / out.clock_ns).min(1.0) } else { 0.0 };
        maps.push(MapTask { service_ns: out.clock_ns, ser_frac });
        all_msgs.extend(out.messages);
    }
    let reg = sc.agg().registry();
    let cap = sc.agg().heap_capacity();
    let reduces_res = par_map(cfg.jobs, sc.reducers, |r| {
        let mut msgs: Vec<&Message> = all_msgs.iter().filter(|m| m.dst == r).collect();
        msgs.sort_by_key(|m| (m.src, m.seq));
        let out = shuffle::run_reducer(t.backend, &reg, cap, &msgs, &[], false)?;
        Ok::<ReduceTask, ClusterError>(ReduceTask {
            inputs: msgs.iter().map(|m| (m.src, m.bytes.len() as u64)).collect(),
            service_ns: out.de_busy_ns,
            fallback_ns: out.de_busy_ns,
            fold: out.fold,
        })
    });
    let mut reduces = Vec::with_capacity(sc.reducers);
    for r in reduces_res {
        reduces.push(r?);
    }
    if profiles_fallback(cfg, t) {
        // A DU-failed node degrades end-to-end to the software fallback
        // format (PR 4 semantics): profile the fallback decode by
        // re-running the template under that backend and demand the
        // per-task folds stay bit-identical — degradation moves time,
        // never answers.
        let fb = cfg.fault.fallback;
        let fb_outs = par_map(cfg.jobs, sc.mappers, |m| run_mapper(&sc, fb, m));
        let mut fb_msgs: Vec<Message> = Vec::new();
        for out in fb_outs {
            fb_msgs.extend(out?.messages);
        }
        let fb_res = par_map(cfg.jobs, sc.reducers, |r| {
            let mut msgs: Vec<&Message> = fb_msgs.iter().filter(|m| m.dst == r).collect();
            msgs.sort_by_key(|m| (m.src, m.seq));
            let out = shuffle::run_reducer(fb, &reg, cap, &msgs, &[], false)?;
            Ok::<(f64, Fold), ClusterError>((out.de_busy_ns, out.fold))
        });
        for (r, fbr) in reduces.iter_mut().zip(fb_res) {
            let (fallback_ns, fold) = fbr?;
            if fold != r.fold {
                return Err(ClusterError::ProfileFoldMismatch { tenant: t.tenant });
            }
            r.fallback_ns = fallback_ns;
        }
    }
    // Reducers own disjoint key ranges (key % reducers), so merging in
    // reducer order reproduces the expected aggregate bit for bit.
    let mut merged: Fold = Fold::new();
    for r in &reduces {
        for (&k, &(c, s)) in &r.fold {
            let e = merged.entry(k).or_insert((0, 0.0));
            e.0 += c;
            e.1 += s;
        }
    }
    if merged != sc.agg().expected_fold() {
        return Err(ClusterError::ProfileFoldMismatch { tenant: t.tenant });
    }
    let digest = fold_checksum(&merged);
    let total: f64 = maps.iter().map(|m| m.service_ns).sum::<f64>()
        + reduces.iter().map(|r| r.service_ns).sum::<f64>();
    let tasks = (maps.len() + reduces.len()) as u64;
    Ok(JobProfile {
        template: *t,
        shape: JobShape::Shuffle { maps, reduces },
        fold_checksum: digest,
        tasks,
        total_service_ns: total,
    })
}

fn profile_scan(cfg: &ClusterConfig, t: &TenantTemplate, passes: usize) -> JobProfile {
    let rc = RddConfig {
        agg: t.agg,
        backend: t.backend,
        memory_fraction: 1.0,
        passes: 0,
        policy: MissPolicy::Fetch,
        disk: sim::DiskConfig::ssd(),
        access: store::AccessPattern::Scan,
        jobs: 1,
        checksum: false,
        fault: None,
    };
    let fb = profiles_fallback(cfg, t).then_some(cfg.fault.fallback);
    let parts: Vec<ScanPart> = par_map(cfg.jobs, t.agg.mappers, |m| {
        // `build_part` runs the real materialize + re-read cycle and
        // asserts the reconstructed fold matches the source data.
        let p = build_part(&rc, m);
        // A DU-failed node re-materializes and reads its blocks in the
        // software fallback format (PR 4 semantics): profile that read
        // cost too, and demand the fold stays bit-identical.
        let fallback_read_ns = match fb {
            Some(b) => {
                let fp = build_part(&RddConfig { backend: b, ..rc }, m);
                assert_eq!(
                    fp.fold, p.fold,
                    "fallback backend changed a partition fold"
                );
                fp.de_ns
            }
            None => p.de_ns,
        };
        // The lineage cost is exactly GC pressure + serialization
        // (`PartBuild::recompute_ns`), so the two fractions partition
        // the materialize window.
        let ser_frac =
            if p.recompute_ns > 0.0 { (p.ser_ns / p.recompute_ns).min(1.0) } else { 0.0 };
        ScanPart {
            bytes: p.bytes.len() as u64,
            materialize_ns: p.recompute_ns,
            read_ns: p.de_ns,
            fallback_read_ns,
            ser_frac,
            gc_frac: if p.recompute_ns > 0.0 { 1.0 - ser_frac } else { 0.0 },
            fold: p.fold,
        }
    });
    // Partitions share keys, so the merge order (partition order) is
    // part of the digest's definition — the scheduler re-merges winning
    // attempts in the same order.
    let mut merged: Fold = Fold::new();
    for p in &parts {
        for (&k, &(c, s)) in &p.fold {
            let e = merged.entry(k).or_insert((0, 0.0));
            e.0 += c;
            e.1 += s;
        }
    }
    let digest = fold_checksum(&merged);
    let total: f64 = parts
        .iter()
        .map(|p| p.materialize_ns + passes as f64 * p.read_ns)
        .sum();
    let tasks = (parts.len() * (1 + passes)) as u64;
    JobProfile {
        template: *t,
        shape: JobShape::Scan { parts, passes },
        fold_checksum: digest,
        tasks,
        total_service_ns: total,
    }
}

/// Builds every tenant's profile. Within a tenant, task builds fan out
/// over `cfg.jobs` worker threads; results are independent of the
/// thread count.
///
/// # Errors
/// Propagates executor errors and profile fold mismatches.
pub fn build_profiles(cfg: &ClusterConfig) -> Result<Vec<JobProfile>, ClusterError> {
    (0..cfg.tenants)
        .map(|i| {
            let t = template(cfg, i);
            match t.kind {
                JobKind::Shuffle => profile_shuffle(cfg, &t),
                JobKind::Scan { passes } => Ok(profile_scan(cfg, &t, passes)),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_deterministic_across_thread_counts() {
        let mut cfg = ClusterConfig::smoke();
        cfg.tenants = 2;
        cfg.jobs = 1;
        let a = build_profiles(&cfg).expect("profiles build");
        cfg.jobs = 4;
        let b = build_profiles(&cfg).expect("profiles build");
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.fold_checksum, y.fold_checksum);
            assert_eq!(x.tasks, y.tasks);
            assert_eq!(x.total_service_ns, y.total_service_ns);
        }
    }

    #[test]
    fn shuffle_profile_carries_inputs_and_positive_services() {
        let mut cfg = ClusterConfig::smoke();
        cfg.tenants = 1;
        let p = &build_profiles(&cfg).expect("profiles build")[0];
        let JobShape::Shuffle { maps, reduces } = &p.shape else {
            panic!("tenant 0 is a shuffle template");
        };
        assert_eq!(maps.len(), cfg.template_mappers);
        assert_eq!(reduces.len(), cfg.template_mappers);
        assert!(maps.iter().all(|m| m.service_ns > 0.0));
        for r in reduces {
            assert!(!r.inputs.is_empty(), "every reducer receives batches");
            assert!(r.inputs.iter().all(|&(src, b)| src < maps.len() && b > 0));
        }
    }
}
