//! Rendering one sweep cell of the cluster experiment.

use crate::sched::ClusterOutcome;
use crate::ClusterConfig;
use telemetry::{ratio, JsonWriter};

/// One sweep cell: the configuration axes that vary plus the outcome.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// The cell's full configuration.
    pub cfg: ClusterConfig,
    /// What the run produced.
    pub outcome: ClusterOutcome,
}

/// Writes a float with `Display` precision (1.1, not 1.100000).
fn disp_field(w: &mut JsonWriter, k: &str, v: f64) {
    w.key(k);
    w.raw_val(&format!("{v}"));
}

impl CellResult {
    /// Renders the cell as one JSON object.
    pub fn render(&self, w: &mut JsonWriter) {
        let o = &self.outcome;
        w.begin_obj();
        w.field_u64("executors", self.cfg.executors as u64);
        w.field_u64("tenants", self.cfg.tenants as u64);
        disp_field(w, "tenant_theta", self.cfg.tenant_theta);
        w.field_u64("du_contexts_per_node", self.cfg.du_contexts_per_node as u64);
        disp_field(w, "straggler_rate", self.cfg.straggler_rate);
        w.field_bool("speculation", self.cfg.speculation);
        disp_field(w, "exec_crash_rate", self.cfg.fault.exec_crash_rate);
        disp_field(w, "node_fail_rate", self.cfg.fault.node_fail_rate);
        disp_field(w, "task_fail_rate", self.cfg.fault.task_fail_rate);
        disp_field(w, "du_fail_rate", self.cfg.fault.du_fail_rate);
        disp_field(w, "heartbeat_period_ns", self.cfg.fault.heartbeat_period_ns);
        w.field_u64("blacklist_threshold", u64::from(self.cfg.fault.blacklist_threshold));
        w.field_u64("shed_queue_depth", self.cfg.fault.shed_queue_depth as u64);
        w.field_u64("arrivals", o.arrivals);
        w.field_u64("jobs_completed", o.jobs_completed);
        w.field_u64("jobs_shed", o.jobs_shed);
        w.field_u64("jobs_failed", o.jobs_failed);
        w.field_u64("tasks_launched", o.tasks_launched);
        w.field_u64("tasks_completed", o.tasks_completed);
        w.field_u64("stragglers", o.stragglers);
        w.field_u64("spec_launches", o.spec_launches);
        w.field_u64("spec_wins", o.spec_wins);
        w.field_u64("du_waits", o.du_waits);
        w.field_f64("du_wait_ns", o.du_wait_ns, 3);
        w.field_u64("fabric_messages", o.fabric_messages);
        w.field_u64("fabric_bytes", o.fabric_bytes);
        w.field_f64("makespan_ns", o.makespan_ns, 3);
        w.field_f64("mean_latency_ns", o.mean_latency_ns(), 3);
        w.field_f64("max_latency_ns", o.job_latency_max_ns, 3);
        w.field_u64("max_queue_depth", o.max_queue_depth);
        w.field_u64("max_running", o.max_running);
        w.field_u64("executors_used", o.executors_used);
        w.field_f64("utilization", o.utilization(self.cfg.executors), 6);
        w.field_u64("exec_crashes", o.exec_crashes);
        w.field_u64("node_crashes", o.node_crashes);
        w.field_u64("heartbeat_deaths", o.heartbeat_deaths);
        w.field_u64("fetch_fail_deaths", o.fetch_fail_deaths);
        w.field_u64("crash_task_kills", o.crash_task_kills);
        w.field_u64("task_failures", o.task_failures);
        w.field_u64("task_retries", o.task_retries);
        w.field_u64("crash_requeues", o.crash_requeues);
        w.field_u64("recomputes", o.recomputes);
        w.field_u64("blacklists", o.blacklists);
        w.field_u64("blacklist_rejoins", o.blacklist_rejoins);
        w.field_u64("restarts", o.restarts);
        w.field_u64("du_device_failures", o.du_device_failures);
        w.field_u64("degraded_tasks", o.degraded_tasks);
        w.field_f64("wasted_ns", o.wasted_ns, 3);
        w.field_f64("goodput", o.goodput(), 6);
        w.field_f64("recompute_share", o.recompute_share(), 6);
        w.field_f64("shed_rate", o.shed_rate(), 6);
        w.key("tenant_jobs");
        w.begin_arr();
        for t in &o.per_tenant {
            w.u64_val(t.jobs);
        }
        w.end_arr();
        w.key("tenant_mean_latency_ns");
        w.begin_arr();
        for t in &o.per_tenant {
            w.raw_val(&format!("{:.3}", ratio(t.latency_sum_ns, t.jobs as f64)));
        }
        w.end_arr();
        w.field_str("fold_checksum", &format!("{:016x}", o.fold_checksum));
        w.end_obj();
    }
}
