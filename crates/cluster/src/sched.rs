//! The event-driven scheduler: open arrivals, stage barriers, DU
//! sharing, straggler detection and speculative re-execution.
//!
//! One strictly sequential event loop over [`crate::EventQueue`]:
//! arrivals enqueue a job's first stage, task-finish events advance
//! stage barriers, and a dispatcher greedily places pending task
//! attempts onto free executors (lowest index first, FIFO queue) after
//! every event. Reduce/scan attempts fetch their inputs over the shared
//! [`Fabric`] and — under the Cereal backend — queue for one of the
//! node's DU contexts, with the wait charged on the event clock.
//!
//! Stragglers are seeded per-task draws that inflate the original
//! attempt's service. Once `spec_quantile` of a stage has completed,
//! any running original whose elapsed compute time exceeds
//! `spec_multiplier ×` the larger of the stage's completed-task median
//! and its own profiled nominal gets one speculative copy at nominal
//! service; the first attempt to finish wins, the other is
//! killed on the spot (executor freed, DU context refunded if nobody
//! queued behind it). Winner and loser replay the same profile, so the
//! job's re-merged fold is bit-identical to the profile digest —
//! checked at every job completion.

use crate::event::EventQueue;
use crate::profile::{build_profiles, Fold, JobProfile, JobShape};
use crate::{ClusterConfig, ClusterError};
use shuffle::fold_checksum;
use sim::net::Fabric;
use std::collections::{BTreeSet, VecDeque};
use store::Backend;
use telemetry::ids::{CLUSTER_PID_BASE, DRIVER_PID, T_DU, T_MAIN};
use telemetry::{EntityId, Instant, NoopSink, Sink, Span};

/// PRNG scope of the per-task straggler draws.
const STRAGGLER_SCOPE: u64 = 0x57A6_61E2_0000;

/// Per-tenant counter names (static, as the metrics registry requires).
/// Tenants beyond this table still run; only their per-tenant counters
/// are folded into the last slot.
const TENANT_JOB_COUNTERS: [&str; 8] = [
    "cluster.tenant0.jobs",
    "cluster.tenant1.jobs",
    "cluster.tenant2.jobs",
    "cluster.tenant3.jobs",
    "cluster.tenant4.jobs",
    "cluster.tenant5.jobs",
    "cluster.tenant6.jobs",
    "cluster.tenant7.jobs",
];

/// Per-tenant accumulators.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TenantStats {
    /// Jobs of this tenant that completed.
    pub jobs: u64,
    /// Summed sojourn time (completion − arrival) of those jobs.
    pub latency_sum_ns: f64,
}

/// Everything one cluster run produced. Every field is a deterministic
/// function of the configuration — byte-identical for any worker-thread
/// count.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterOutcome {
    /// Jobs that arrived (= `cfg.job_arrivals`).
    pub arrivals: u64,
    /// Jobs that ran to completion (always = arrivals; the run drains).
    pub jobs_completed: u64,
    /// Task attempts dispatched (originals + speculative copies).
    pub tasks_launched: u64,
    /// Tasks completed (one winning attempt each).
    pub tasks_completed: u64,
    /// Tasks whose straggler draw hit.
    pub stragglers: u64,
    /// Speculative copies dispatched.
    pub spec_launches: u64,
    /// Speculative copies that finished first.
    pub spec_wins: u64,
    /// DU context acquisitions that had to queue.
    pub du_waits: u64,
    /// Total DU queueing delay.
    pub du_wait_ns: f64,
    /// Messages crossing the fabric (input fetches).
    pub fabric_messages: u64,
    /// Bytes crossing the fabric.
    pub fabric_bytes: u64,
    /// Completion time of the last job.
    pub makespan_ns: f64,
    /// Summed job sojourn time.
    pub job_latency_sum_ns: f64,
    /// Largest job sojourn time.
    pub job_latency_max_ns: f64,
    /// Deepest the pending-attempt queue ever got.
    pub max_queue_depth: u64,
    /// Most attempts ever running at once.
    pub max_running: u64,
    /// Distinct executors that ran at least one attempt.
    pub executors_used: u64,
    /// Summed service of winning attempts (for utilization).
    pub busy_ns: f64,
    /// Per-tenant stats, indexed by tenant.
    pub per_tenant: Vec<TenantStats>,
    /// FNV-1a digest over every job's fold digest, in arrival order.
    pub fold_checksum: u64,
}

impl ClusterOutcome {
    /// Mean job sojourn time.
    pub fn mean_latency_ns(&self) -> f64 {
        if self.jobs_completed == 0 {
            0.0
        } else {
            self.job_latency_sum_ns / self.jobs_completed as f64
        }
    }

    /// Average executor utilization over the makespan.
    pub fn utilization(&self, executors: usize) -> f64 {
        if self.makespan_ns <= 0.0 {
            0.0
        } else {
            self.busy_ns / (self.makespan_ns * executors as f64)
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum Event {
    /// Job `job` arrives.
    Arrival(usize),
    /// Attempt `a` reaches its scheduled finish time.
    Finish(usize),
    /// Re-examine the original attempt `a` for speculation.
    SpecCheck(usize),
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum StageKind {
    Map,
    Reduce,
    Materialize,
    Scan,
}

impl StageKind {
    fn span_name(self) -> &'static str {
        match self {
            StageKind::Map => "task.map",
            StageKind::Reduce => "task.reduce",
            StageKind::Materialize => "task.materialize",
            StageKind::Scan => "task.scan",
        }
    }
}

#[derive(Clone, Debug)]
struct TaskState {
    /// Service of the original attempt (straggler-adjusted).
    service_ns: f64,
    /// Nominal service (what a speculative copy runs at).
    nominal_ns: f64,
    completed: bool,
    /// Executor holding this task's output (the winner's).
    winner_exec: usize,
    original: Option<usize>,
    spec: Option<usize>,
    /// Whether a deferred speculation re-check is already scheduled.
    spec_check: bool,
}

#[derive(Clone, Debug)]
struct StageState {
    kind: StageKind,
    tasks: Vec<TaskState>,
    done: usize,
    /// Winning services of completed tasks, for the laggard median.
    completed_services: Vec<f64>,
}

#[derive(Clone, Debug)]
struct JobState {
    tenant: usize,
    arrival_ns: f64,
    /// Index of the currently running stage.
    stage: usize,
    stages: Vec<StageState>,
    done: bool,
}

#[derive(Clone, Copy, Debug)]
struct AttemptInfo {
    job: usize,
    stage: usize,
    task: usize,
    speculative: bool,
    dispatched: bool,
    cancelled: bool,
    finished: bool,
    exec: usize,
    start_ns: f64,
    /// When compute began: dispatch + input fetches + DU wait. The
    /// laggard test measures elapsed *compute* time from here, so fetch
    /// and queueing delays (which the scheduler observed) never count
    /// against a task.
    work_start_ns: f64,
    finish_ns: f64,
    /// DU context this attempt holds: `(node, ctx)`.
    du: Option<(usize, usize)>,
}

struct Sched<'a, S: Sink> {
    cfg: &'a ClusterConfig,
    profiles: &'a [JobProfile],
    jobs: Vec<JobState>,
    attempts: Vec<AttemptInfo>,
    pending: VecDeque<usize>,
    pending_live: usize,
    free: BTreeSet<usize>,
    fabric: Fabric,
    /// Per-node DU context free times.
    du_free: Vec<Vec<f64>>,
    q: EventQueue<Event>,
    named: Vec<bool>,
    exec_used: Vec<bool>,
    running: u64,
    out: ClusterOutcome,
    /// Per-job fold digests, in arrival order.
    job_digests: Vec<u64>,
    sink: &'a mut S,
}

/// Mixes `(job, stage, task)` into a straggler-scope word.
fn task_scope(job: usize, stage: usize, task: usize) -> u64 {
    ((job as u64) << 24) ^ ((stage as u64) << 16) ^ task as u64
}

impl<S: Sink> Sched<'_, S> {
    fn profile(&self, j: usize) -> &JobProfile {
        &self.profiles[self.jobs[j].tenant]
    }

    fn exec_entity(&self, e: usize) -> EntityId {
        EntityId { pid: CLUSTER_PID_BASE + e as u32, tid: T_MAIN }
    }

    fn name_exec(&mut self, e: usize) {
        if S::ENABLED && !self.named[e] {
            self.named[e] = true;
            let pid = CLUSTER_PID_BASE + e as u32;
            self.sink.name_process(pid, &format!("exec {e}"));
            self.sink.name_thread(pid, T_MAIN, "task");
            self.sink.name_thread(pid, T_DU, "du wait");
        }
    }

    /// Creates stage `s` of job `j` and queues one original attempt per
    /// task, drawing each task's straggler fate from its scoped stream.
    fn enqueue_stage(&mut self, j: usize, s: usize) {
        let profile = &self.profiles[self.jobs[j].tenant];
        let n = profile.stage_tasks(s);
        let kind = match (&profile.shape, s) {
            (JobShape::Shuffle { .. }, 0) => StageKind::Map,
            (JobShape::Shuffle { .. }, _) => StageKind::Reduce,
            (JobShape::Scan { .. }, 0) => StageKind::Materialize,
            (JobShape::Scan { .. }, _) => StageKind::Scan,
        };
        let nominals: Vec<f64> = (0..n).map(|t| profile.service_ns(s, t)).collect();
        let mut tasks = Vec::with_capacity(n);
        for (t, &nominal) in nominals.iter().enumerate() {
            let mut service = nominal;
            if self.cfg.straggler_rate > 0.0 {
                let mut rng = sdheap::rng::Rng::new(
                    self.cfg.seed ^ STRAGGLER_SCOPE ^ task_scope(j, s, t),
                );
                if rng.gen_f64() < self.cfg.straggler_rate {
                    service = nominal * self.cfg.straggler_factor;
                    self.out.stragglers += 1;
                    self.sink.count("cluster.stragglers", 1);
                }
            }
            tasks.push(TaskState {
                service_ns: service,
                nominal_ns: nominal,
                completed: false,
                winner_exec: 0,
                original: None,
                spec: None,
                spec_check: false,
            });
        }
        self.jobs[j].stages.push(StageState {
            kind,
            tasks,
            done: 0,
            completed_services: Vec::new(),
        });
        for t in 0..n {
            let a = self.attempts.len();
            self.attempts.push(AttemptInfo {
                job: j,
                stage: s,
                task: t,
                speculative: false,
                dispatched: false,
                cancelled: false,
                finished: false,
                exec: 0,
                start_ns: 0.0,
                work_start_ns: 0.0,
                finish_ns: 0.0,
                du: None,
            });
            self.jobs[j].stages[s].tasks[t].original = Some(a);
            self.pending.push_back(a);
            self.pending_live += 1;
        }
    }

    /// Greedily places pending attempts on free executors.
    fn dispatch(&mut self, now: f64) {
        while !self.free.is_empty() {
            let a = loop {
                match self.pending.pop_front() {
                    Some(a) if self.attempts[a].cancelled => continue,
                    Some(a) => break Some(a),
                    None => break None,
                }
            };
            let Some(a) = a else { break };
            self.pending_live -= 1;
            let e = *self.free.iter().next().expect("checked non-empty");
            self.free.remove(&e);
            self.name_exec(e);
            self.exec_used[e] = true;
            let info = self.attempts[a];
            let (j, s, t) = (info.job, info.stage, info.task);
            let profile = &self.profiles[self.jobs[j].tenant];
            let backend = profile.template.backend;
            let task = &self.jobs[j].stages[s].tasks[t];
            let service = if info.speculative { task.nominal_ns } else { task.service_ns };

            // Input fetches over the shared fabric, all issued at
            // dispatch time; the ledgers serialize contending flows.
            let mut ready = now;
            match &profile.shape {
                JobShape::Shuffle { reduces, .. } if s == 1 => {
                    for &(src, bytes) in &reduces[t].inputs {
                        let from = self.jobs[j].stages[0].tasks[src].winner_exec;
                        let arr = self.fabric.send(from, e, bytes, now);
                        ready = ready.max(arr);
                        self.sink.count("cluster.fabric_messages", 1);
                        self.sink.count("cluster.fabric_bytes", bytes);
                    }
                }
                JobShape::Scan { parts, .. } if s > 0 => {
                    let from = self.jobs[j].stages[0].tasks[t].winner_exec;
                    if from != e {
                        let bytes = parts[t].bytes;
                        ready = ready.max(self.fabric.send(from, e, bytes, now));
                        self.sink.count("cluster.fabric_messages", 1);
                        self.sink.count("cluster.fabric_bytes", bytes);
                    }
                }
                _ => {}
            }

            // Decode stages on the Cereal backend queue for one of the
            // node's shared DU contexts.
            let mut du = None;
            let mut start = ready;
            if backend == Backend::Cereal && profile.stage_decodes(s) {
                let node = e / self.cfg.executors_per_node.max(1);
                let pool = &mut self.du_free[node];
                let ctx = (0..pool.len())
                    .min_by(|&x, &y| pool[x].partial_cmp(&pool[y]).expect("finite"))
                    .expect("every node has at least one DU context");
                start = ready.max(pool[ctx]);
                let wait = start - ready;
                if wait > 0.0 {
                    self.out.du_waits += 1;
                    self.out.du_wait_ns += wait;
                    self.sink.count("cluster.du_waits", 1);
                    self.sink.observe("cluster.du_wait_ns", wait);
                    if S::ENABLED {
                        self.sink.span(Span {
                            entity: EntityId { pid: CLUSTER_PID_BASE + e as u32, tid: T_DU },
                            name: "du.wait",
                            t0_ns: ready,
                            t1_ns: start,
                            attrs: vec![("node", (node as u64).into())],
                        });
                    }
                }
                pool[ctx] = start + service;
                du = Some((node, ctx));
            }

            let finish = start + service;
            let at = &mut self.attempts[a];
            at.dispatched = true;
            at.exec = e;
            at.start_ns = now;
            at.work_start_ns = start;
            at.finish_ns = finish;
            at.du = du;
            self.q.push(finish, Event::Finish(a));
            self.running += 1;
            self.out.max_running = self.out.max_running.max(self.running);
            self.out.tasks_launched += 1;
            self.sink.count("cluster.tasks_launched", 1);
            self.sink.observe("cluster.task_service_ns", service);
            if info.speculative {
                self.out.spec_launches += 1;
                self.sink.count("cluster.spec_launches", 1);
                if S::ENABLED {
                    self.sink.instant(Instant {
                        entity: self.exec_entity(e),
                        name: "spec.launch",
                        t_ns: now,
                        attrs: vec![("job", (j as u64).into()), ("task", (t as u64).into())],
                    });
                }
            }
        }
        self.sink.gauge("cluster.queue_depth", self.pending_live as f64);
        self.sink.gauge("cluster.running_tasks", self.running as f64);
        self.out.max_queue_depth = self.out.max_queue_depth.max(self.pending_live as u64);
    }

    /// Kills a losing attempt: frees its executor immediately and
    /// refunds its DU context if nothing queued behind it.
    fn cancel(&mut self, loser: usize, now: f64) {
        let info = self.attempts[loser];
        if info.cancelled || info.finished {
            return;
        }
        self.attempts[loser].cancelled = true;
        if info.dispatched {
            self.running -= 1;
            self.free.insert(info.exec);
            if let Some((node, ctx)) = info.du {
                // Only refund if no later acquisition already queued on
                // this context (its free time would have moved past ours).
                if self.du_free[node][ctx] == info.finish_ns {
                    self.du_free[node][ctx] = now;
                }
            }
            if S::ENABLED {
                self.sink.span(Span {
                    entity: self.exec_entity(info.exec),
                    name: "task.killed",
                    t0_ns: info.start_ns,
                    t1_ns: now,
                    attrs: vec![("job", (info.job as u64).into())],
                });
            }
        } else {
            // Still queued: the dispatcher will skip the cancelled
            // entry, so it stops being live now.
            self.pending_live -= 1;
        }
    }

    /// Once enough of a stage has completed, give each running laggard
    /// one speculative copy — or schedule a re-check for the moment it
    /// would become a laggard.
    fn maybe_speculate(&mut self, now: f64, j: usize, s: usize) {
        if !self.cfg.speculation {
            return;
        }
        let stage = &self.jobs[j].stages[s];
        let total = stage.tasks.len();
        if stage.done == total {
            return;
        }
        let quota = (self.cfg.spec_quantile * total as f64).ceil() as usize;
        if stage.done < quota.max(1) {
            return;
        }
        let mut sorted = stage.completed_services.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = sorted[sorted.len() / 2];
        let candidates: Vec<usize> = (0..total)
            .filter(|&t| {
                let task = &self.jobs[j].stages[s].tasks[t];
                !task.completed && task.spec.is_none()
            })
            .collect();
        for t in candidates {
            let Some(orig) = self.jobs[j].stages[s].tasks[t].original else { continue };
            let oi = self.attempts[orig];
            if !oi.dispatched || oi.cancelled || oi.finished {
                continue;
            }
            // A task is a laggard when its elapsed *compute* time (the
            // scheduler watched its fetches and DU wait end) exceeds
            // the multiplier over the stage median — or over its own
            // profiled nominal, so naturally long tasks (a hot skewed
            // reducer) are not re-run just for being long.
            let nominal = self.jobs[j].stages[s].tasks[t].nominal_ns;
            let threshold = self.cfg.spec_multiplier * median.max(nominal);
            if now - oi.work_start_ns > threshold {
                self.launch_spec(j, s, t);
            } else if !self.jobs[j].stages[s].tasks[t].spec_check {
                // Not lagging yet: re-check exactly when it would be.
                self.jobs[j].stages[s].tasks[t].spec_check = true;
                self.q.push(oi.work_start_ns + threshold, Event::SpecCheck(orig));
            }
        }
    }

    fn launch_spec(&mut self, j: usize, s: usize, t: usize) {
        let a = self.attempts.len();
        self.attempts.push(AttemptInfo {
            job: j,
            stage: s,
            task: t,
            speculative: true,
            dispatched: false,
            cancelled: false,
            finished: false,
            exec: 0,
            start_ns: 0.0,
            work_start_ns: 0.0,
            finish_ns: 0.0,
            du: None,
        });
        self.jobs[j].stages[s].tasks[t].spec = Some(a);
        self.pending.push_back(a);
        self.pending_live += 1;
    }

    /// A deferred laggard re-check: the original is a laggard *now* if
    /// it is still running — the stage quantile was already met when
    /// the check was scheduled.
    fn on_spec_check(&mut self, orig: usize) {
        if !self.cfg.speculation {
            return;
        }
        let oi = self.attempts[orig];
        if oi.cancelled || oi.finished {
            return;
        }
        let (j, s, t) = (oi.job, oi.stage, oi.task);
        if self.jobs[j].stages[s].tasks[t].completed
            || self.jobs[j].stages[s].tasks[t].spec.is_some()
        {
            return;
        }
        self.launch_spec(j, s, t);
    }

    fn on_finish(&mut self, now: f64, a: usize) -> Result<(), ClusterError> {
        let info = self.attempts[a];
        if info.cancelled {
            // Killed earlier; its executor was already reclaimed.
            return Ok(());
        }
        self.attempts[a].finished = true;
        self.running -= 1;
        self.free.insert(info.exec);
        let (j, s, t) = (info.job, info.stage, info.task);
        let service = if info.speculative {
            self.jobs[j].stages[s].tasks[t].nominal_ns
        } else {
            self.jobs[j].stages[s].tasks[t].service_ns
        };

        // First completion wins; the sibling attempt (if any) dies now.
        let other = {
            let task = &self.jobs[j].stages[s].tasks[t];
            debug_assert!(!task.completed, "second finisher should have been cancelled");
            if info.speculative { task.original } else { task.spec }
        };
        if let Some(o) = other {
            self.cancel(o, now);
        }
        {
            let task = &mut self.jobs[j].stages[s].tasks[t];
            task.completed = true;
            task.winner_exec = info.exec;
        }
        let stage = &mut self.jobs[j].stages[s];
        stage.done += 1;
        stage.completed_services.push(service);
        let stage_done = stage.done == stage.tasks.len();
        let kind = stage.kind;
        self.out.tasks_completed += 1;
        self.out.busy_ns += service;
        self.sink.count("cluster.tasks_completed", 1);
        if S::ENABLED {
            self.sink.span(Span {
                entity: self.exec_entity(info.exec),
                name: kind.span_name(),
                t0_ns: info.start_ns,
                t1_ns: now,
                attrs: vec![
                    ("job", (j as u64).into()),
                    ("task", (t as u64).into()),
                    ("tenant", (self.jobs[j].tenant as u64).into()),
                ],
            });
        }
        if info.speculative {
            self.out.spec_wins += 1;
            self.sink.count("cluster.spec_wins", 1);
            if S::ENABLED {
                self.sink.instant(Instant {
                    entity: self.exec_entity(info.exec),
                    name: "spec.win",
                    t_ns: now,
                    attrs: vec![("job", (j as u64).into()), ("task", (t as u64).into())],
                });
            }
        }

        if stage_done {
            let profile = self.profile(j);
            if s + 1 < profile.stages() {
                self.jobs[j].stage = s + 1;
                self.enqueue_stage(j, s + 1);
            } else {
                self.complete_job(now, j)?;
            }
        } else {
            self.maybe_speculate(now, j, s);
        }
        Ok(())
    }

    /// Re-merges the job's fold from its winning attempts' task outputs
    /// and checks it against the profile digest, then books completion.
    fn complete_job(&mut self, now: f64, j: usize) -> Result<(), ClusterError> {
        let tenant = self.jobs[j].tenant;
        let profile = &self.profiles[tenant];
        let mut merged: Fold = Fold::new();
        match &profile.shape {
            JobShape::Shuffle { reduces, .. } => {
                for r in reduces {
                    for (&k, &(c, sum)) in &r.fold {
                        let e = merged.entry(k).or_insert((0, 0.0));
                        e.0 += c;
                        e.1 += sum;
                    }
                }
            }
            JobShape::Scan { parts, .. } => {
                for p in parts {
                    for (&k, &(c, sum)) in &p.fold {
                        let e = merged.entry(k).or_insert((0, 0.0));
                        e.0 += c;
                        e.1 += sum;
                    }
                }
            }
        }
        let digest = fold_checksum(&merged);
        if digest != profile.fold_checksum {
            return Err(ClusterError::JobFoldMismatch { job: j, tenant });
        }
        self.job_digests[j] = digest;
        self.jobs[j].done = true;
        let latency = now - self.jobs[j].arrival_ns;
        self.out.jobs_completed += 1;
        self.out.makespan_ns = self.out.makespan_ns.max(now);
        self.out.job_latency_sum_ns += latency;
        self.out.job_latency_max_ns = self.out.job_latency_max_ns.max(latency);
        self.out.per_tenant[tenant].jobs += 1;
        self.out.per_tenant[tenant].latency_sum_ns += latency;
        self.sink.count("cluster.jobs_completed", 1);
        self.sink.observe("cluster.job_latency_ns", latency);
        self.sink
            .count(TENANT_JOB_COUNTERS[tenant.min(TENANT_JOB_COUNTERS.len() - 1)], 1);
        Ok(())
    }
}

/// Runs the cluster to completion (untraced).
///
/// # Errors
/// Propagates profile-building failures and fold-integrity violations.
pub fn run_cluster(cfg: &ClusterConfig) -> Result<ClusterOutcome, ClusterError> {
    run_cluster_sunk(cfg, &mut NoopSink)
}

/// [`run_cluster`] with a telemetry sink: arrival instants on the
/// driver lane, per-executor `task.*` spans, `du.wait` spans,
/// `spec.launch`/`spec.win` instants, queue-depth and running-task
/// gauges, and every `cluster.*` counter booked at its event site. The
/// returned outcome is identical to the untraced path for any sink.
///
/// # Errors
/// Same as [`run_cluster`].
pub fn run_cluster_sunk<S: Sink>(
    cfg: &ClusterConfig,
    sink: &mut S,
) -> Result<ClusterOutcome, ClusterError> {
    assert!(cfg.executors > 0, "cluster needs executors");
    assert!(cfg.tenants > 0, "cluster needs tenants");
    let profiles = build_profiles(cfg)?;

    // Calibrate the arrival rate to the target executor load: with
    // `mean_job_service` total work per job, an inter-arrival gap of
    // work / (load × executors) keeps the offered load constant across
    // cluster sizes.
    let mean_job_service: f64 =
        profiles.iter().map(|p| p.total_service_ns).sum::<f64>() / profiles.len() as f64;
    let mean_inter = mean_job_service / (cfg.target_load.max(1e-6) * cfg.executors as f64);
    let arrivals = crate::job::arrivals(cfg, mean_inter);

    if S::ENABLED {
        sink.name_process(DRIVER_PID, "cluster driver");
        sink.name_thread(DRIVER_PID, T_MAIN, "scheduler");
    }

    let mut sched = Sched {
        cfg,
        profiles: &profiles,
        jobs: Vec::with_capacity(arrivals.len()),
        attempts: Vec::new(),
        pending: VecDeque::new(),
        pending_live: 0,
        free: (0..cfg.executors).collect(),
        fabric: Fabric::full_mesh(cfg.executors, cfg.executors, cfg.link),
        du_free: vec![vec![0.0; cfg.du_contexts_per_node.max(1)]; cfg.nodes()],
        q: EventQueue::new(),
        named: vec![false; cfg.executors],
        exec_used: vec![false; cfg.executors],
        running: 0,
        out: ClusterOutcome {
            arrivals: 0,
            jobs_completed: 0,
            tasks_launched: 0,
            tasks_completed: 0,
            stragglers: 0,
            spec_launches: 0,
            spec_wins: 0,
            du_waits: 0,
            du_wait_ns: 0.0,
            fabric_messages: 0,
            fabric_bytes: 0,
            makespan_ns: 0.0,
            job_latency_sum_ns: 0.0,
            job_latency_max_ns: 0.0,
            max_queue_depth: 0,
            max_running: 0,
            executors_used: 0,
            busy_ns: 0.0,
            per_tenant: vec![TenantStats::default(); cfg.tenants],
            fold_checksum: 0,
        },
        job_digests: vec![0; arrivals.len()],
        sink,
    };

    for (jid, a) in arrivals.iter().enumerate() {
        sched.jobs.push(JobState {
            tenant: a.tenant,
            arrival_ns: a.t_ns,
            stage: 0,
            stages: Vec::new(),
            done: false,
        });
        sched.q.push(a.t_ns, Event::Arrival(jid));
    }

    while let Some((now, ev)) = sched.q.pop() {
        match ev {
            Event::Arrival(jid) => {
                sched.out.arrivals += 1;
                sched.sink.count("cluster.arrivals", 1);
                if S::ENABLED {
                    let tenant = sched.jobs[jid].tenant as u64;
                    sched.sink.instant(Instant {
                        entity: EntityId { pid: DRIVER_PID, tid: T_MAIN },
                        name: "job.arrival",
                        t_ns: now,
                        attrs: vec![("job", (jid as u64).into()), ("tenant", tenant.into())],
                    });
                }
                sched.enqueue_stage(jid, 0);
            }
            Event::Finish(a) => sched.on_finish(now, a)?,
            Event::SpecCheck(orig) => sched.on_spec_check(orig),
        }
        sched.dispatch(now);
    }

    assert!(sched.jobs.iter().all(|j| j.done), "the run must drain every job");
    assert_eq!(sched.pending_live, 0, "no attempts may be left queued");
    sched.out.executors_used = sched.exec_used.iter().filter(|&&u| u).count() as u64;
    sched.out.fabric_messages = sched.fabric.messages();
    sched.out.fabric_bytes = sched.fabric.total_bytes();
    // Digest of digests, in arrival order — stable across scheduling
    // differences (speculation, contention) by construction.
    let mut fold: Fold = Fold::new();
    for (i, &d) in sched.job_digests.iter().enumerate() {
        fold.insert(i as u64, (1, f64::from_bits(d)));
    }
    sched.out.fold_checksum = fold_checksum(&fold);
    Ok(sched.out)
}
