//! The event-driven scheduler: open arrivals, stage barriers, DU
//! sharing, straggler detection, speculative re-execution, and the
//! cluster fault domain (crashes, detection, blacklisting, degraded-DU
//! scheduling, retries, admission control).
//!
//! One strictly sequential event loop over [`crate::EventQueue`]:
//! arrivals enqueue a job's first stage, task-finish events advance
//! stage barriers, and a dispatcher greedily places pending task
//! attempts onto free executors (lowest index first, FIFO queue) after
//! every event. Reduce/scan attempts fetch their inputs over the shared
//! [`Fabric`] and — under the Cereal backend — queue for one of the
//! node's DU contexts, with the wait charged on the event clock.
//!
//! Stragglers are seeded per-task draws that inflate the original
//! attempt's service. Once `spec_quantile` of a stage has completed,
//! any running original whose elapsed compute time exceeds
//! `spec_multiplier ×` the larger of the stage's completed-task median
//! and its own profiled nominal gets one speculative copy at nominal
//! service; the first attempt to finish wins, the other is
//! killed on the spot (executor freed, DU context refunded if nobody
//! queued behind it). Winner and loser replay the same profile, so the
//! job's re-merged fold is bit-identical to the profile digest —
//! checked at every job completion.
//!
//! # The fault domain
//!
//! When [`crate::ClusterFaultConfig::enabled`], every dispatched
//! attempt draws from scoped [`sim::FaultInjector`] streams — the
//! executor's stream is keyed by its stable telemetry entity id
//! (`CLUSTER_PID_BASE + e`), the node's by the node index — so the
//! fault schedule is a pure function of `(seed, entity)`:
//!
//! * **executor crashes** land at an interior fraction of the running
//!   attempt's service. A crash is *silent*: the attempt is doomed but
//!   nothing reacts until the heartbeat detector (miss-threshold ×
//!   period on the event clock) declares the executor dead — or a
//!   later dispatch trips over the crashed executor's outputs and
//!   declares it dead early (fetch-failure detection). Declaration
//!   kills the doomed attempt (DU reservation refunded, task
//!   re-enqueued), marks every live job's stage-0 outputs held by that
//!   executor as lost (lineage recompute, Spark-style), and schedules a
//!   replacement executor after `restart_ns`;
//! * **node failures** crash every executor on the node at once;
//! * **clean task failures** leave the executor alive; the task retries
//!   after exponential backoff, and an executor accumulating
//!   `blacklist_threshold` failures is blacklisted — drained and
//!   rejoined after a seeded cooldown;
//! * **DU device failures** permanently degrade the node: its Cereal
//!   decode attempts skip the DU queue and replay the profiled
//!   software-fallback service instead (PR 4 degrade semantics);
//! * **bounded retries + admission control**: every re-enqueue consumes
//!   the job's retry budget (exhaustion aborts the job — reported, not
//!   silent), and arrivals past the `shed_queue_depth` watermark are
//!   shed instead of collapsing the queue.
//!
//! Every recovery path replays the same profile, so any job that
//! completes re-merges a fold bit-identical to the profile digest; jobs
//! that cannot are reported shed or failed — never a silent wrong
//! answer.

use crate::event::EventQueue;
use crate::profile::{build_profiles, Fold, JobProfile, JobShape};
use crate::{ClusterConfig, ClusterError};
use shuffle::fold_checksum;
use sim::net::Fabric;
use sim::FaultInjector;
use std::collections::{BTreeSet, VecDeque};
use store::Backend;
use telemetry::ids::{CLUSTER_PID_BASE, DRIVER_PID, T_DU, T_FAIL, T_MAIN};
use telemetry::rate::{per_sec, ratio};
use telemetry::{EntityId, FlowEvent, Instant, NoopSink, Sample, Sink, Span};

/// PRNG scope of the per-task straggler draws.
const STRAGGLER_SCOPE: u64 = 0x57A6_61E2_0000;
/// Scope mixed into the master seed for the cluster fault streams.
const CLUSTER_FAULT_SCOPE: u64 = 0xFA17_C105_7E20;
/// Scope of the per-node fault streams (executor streams use the
/// executor's telemetry entity id `CLUSTER_PID_BASE + e` directly).
const NODE_FAULT_SCOPE: u64 = 0x0DEF_A170_0000;

/// Per-tenant counter names (static, as the metrics registry requires).
/// Tenants beyond this table still run; only their per-tenant counters
/// are folded into the last slot.
const TENANT_JOB_COUNTERS: [&str; 8] = [
    "cluster.tenant0.jobs",
    "cluster.tenant1.jobs",
    "cluster.tenant2.jobs",
    "cluster.tenant3.jobs",
    "cluster.tenant4.jobs",
    "cluster.tenant5.jobs",
    "cluster.tenant6.jobs",
    "cluster.tenant7.jobs",
];

/// Per-tenant accumulators.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TenantStats {
    /// Jobs of this tenant that completed.
    pub jobs: u64,
    /// Summed sojourn time (completion − arrival) of those jobs.
    pub latency_sum_ns: f64,
}

/// Everything one cluster run produced. Every field is a deterministic
/// function of the configuration — byte-identical for any worker-thread
/// count.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterOutcome {
    /// Jobs that arrived (= `cfg.job_arrivals`).
    pub arrivals: u64,
    /// Jobs that ran to completion. With the fault domain off this is
    /// always `arrivals`; with it on,
    /// `jobs_completed + jobs_shed + jobs_failed == arrivals`.
    pub jobs_completed: u64,
    /// Task attempts dispatched (originals + speculative copies +
    /// retries + recomputes).
    pub tasks_launched: u64,
    /// Tasks completed (one winning attempt each; recompleted
    /// recomputes count again).
    pub tasks_completed: u64,
    /// Tasks whose straggler draw hit.
    pub stragglers: u64,
    /// Speculative copies dispatched.
    pub spec_launches: u64,
    /// Speculative copies that finished first.
    pub spec_wins: u64,
    /// DU context acquisitions that had to queue.
    pub du_waits: u64,
    /// Total DU queueing delay.
    pub du_wait_ns: f64,
    /// Messages crossing the fabric (input fetches).
    pub fabric_messages: u64,
    /// Bytes crossing the fabric.
    pub fabric_bytes: u64,
    /// Completion time of the last job to reach a terminal state.
    pub makespan_ns: f64,
    /// Summed job sojourn time (completed jobs).
    pub job_latency_sum_ns: f64,
    /// Largest job sojourn time.
    pub job_latency_max_ns: f64,
    /// Deepest the pending-attempt queue ever got.
    pub max_queue_depth: u64,
    /// Most attempts ever running at once.
    pub max_running: u64,
    /// Distinct executors that ran at least one attempt.
    pub executors_used: u64,
    /// Summed service of winning attempts (for utilization).
    pub busy_ns: f64,
    /// Executor crashes (individual, including those from node
    /// failures).
    pub exec_crashes: u64,
    /// Whole-node failures.
    pub node_crashes: u64,
    /// Crashed executors declared dead by the heartbeat detector.
    pub heartbeat_deaths: u64,
    /// Crashed executors declared dead early by a fetch failure.
    pub fetch_fail_deaths: u64,
    /// Running attempts killed because their executor was declared
    /// dead.
    pub crash_task_kills: u64,
    /// Clean (executor-survives) task failures.
    pub task_failures: u64,
    /// Task re-enqueues scheduled with backoff after a clean failure.
    pub task_retries: u64,
    /// Task re-enqueues after a crash killed the running attempt.
    pub crash_requeues: u64,
    /// Completed stage-0 outputs lost with their executor and
    /// re-enqueued (lineage recomputes).
    pub recomputes: u64,
    /// Executors blacklisted for repeated task failures.
    pub blacklists: u64,
    /// Blacklisted executors that rejoined after cooldown.
    pub blacklist_rejoins: u64,
    /// Dead executors replaced after `restart_ns`.
    pub restarts: u64,
    /// DU devices that failed (at most one per node; permanent).
    pub du_device_failures: u64,
    /// Cereal decode attempts that ran degraded on the software
    /// fallback because their node's DU device had failed.
    pub degraded_tasks: u64,
    /// Arrivals shed by admission control.
    pub jobs_shed: u64,
    /// Jobs aborted after exhausting their retry budget.
    pub jobs_failed: u64,
    /// Compute thrown away: killed, failed, and cancelled attempts'
    /// elapsed work (speculative losers included).
    pub wasted_ns: f64,
    /// Winning service of re-enqueued attempts (retries, crash
    /// requeues, recomputes) — the recompute pressure.
    pub recompute_busy_ns: f64,
    /// Per-tenant stats, indexed by tenant.
    pub per_tenant: Vec<TenantStats>,
    /// FNV-1a digest over every job's fold digest, in arrival order
    /// (shed/failed jobs contribute a zero digest).
    pub fold_checksum: u64,
}

impl ClusterOutcome {
    /// Mean job sojourn time (`0.0` when nothing completed).
    pub fn mean_latency_ns(&self) -> f64 {
        ratio(self.job_latency_sum_ns, self.jobs_completed as f64)
    }

    /// Average executor utilization over the makespan (`0.0` on an
    /// empty run or zero executors).
    pub fn utilization(&self, executors: usize) -> f64 {
        ratio(self.busy_ns, self.makespan_ns * executors as f64)
    }

    /// Fraction of all compute that landed in winning attempts.
    pub fn goodput(&self) -> f64 {
        ratio(self.busy_ns, self.busy_ns + self.wasted_ns)
    }

    /// Fraction of winning compute that was re-execution (retries,
    /// crash requeues, lineage recomputes).
    pub fn recompute_share(&self) -> f64 {
        ratio(self.recompute_busy_ns, self.busy_ns)
    }

    /// Fraction of arrivals shed by admission control.
    pub fn shed_rate(&self) -> f64 {
        ratio(self.jobs_shed as f64, self.arrivals as f64)
    }

    /// Completed jobs per second of simulated time.
    pub fn throughput_per_sec(&self) -> f64 {
        per_sec(self.jobs_completed, self.makespan_ns)
    }
}

#[derive(Clone, Copy, Debug)]
enum Event {
    /// Job `job` arrives.
    Arrival(usize),
    /// Attempt `a` reaches its scheduled finish time.
    Finish(usize),
    /// Re-examine the original attempt `a` for speculation.
    SpecCheck(usize),
    /// Executor `exec` crashes silently (stale if `gen` moved on).
    Crash { exec: usize, gen: u32 },
    /// Every executor on `node` crashes at once.
    NodeCrash { node: usize },
    /// Attempt `a` fails cleanly (its executor survives).
    TaskFail(usize),
    /// The heartbeat detector declares crashed executor `exec` dead.
    Dead { exec: usize, gen: u32 },
    /// Executor `exec` re-registers (restart or blacklist rejoin).
    Up { exec: usize, gen: u32 },
    /// Retry task `(job, stage, task)` after its backoff.
    Retry { job: usize, stage: usize, task: usize },
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum StageKind {
    Map,
    Reduce,
    Materialize,
    Scan,
}

impl StageKind {
    fn span_name(self) -> &'static str {
        match self {
            StageKind::Map => "task.map",
            StageKind::Reduce => "task.reduce",
            StageKind::Materialize => "task.materialize",
            StageKind::Scan => "task.scan",
        }
    }
}

/// An executor's health, driving what the dispatcher may use and what
/// the failure detector believes.
#[derive(Clone, Copy, Debug, PartialEq)]
enum ExecState {
    /// In service (free or running).
    Alive,
    /// Crashed at `at_ns` but not yet declared dead — its running
    /// attempt is doomed and its outputs are silently gone.
    Crashed { at_ns: f64 },
    /// Declared dead; a replacement registers after `restart_ns`.
    Dead,
    /// Pulled from service for repeated task failures; rejoins after a
    /// seeded cooldown.
    Blacklisted,
}

/// Per-executor health record. `gen` bumps on every state transition;
/// scheduled `Crash`/`Dead`/`Up` events carry the gen they were minted
/// under and are dropped as stale if it moved on.
#[derive(Clone, Copy, Debug)]
struct ExecHealth {
    state: ExecState,
    gen: u32,
    /// Clean task failures since the last rejoin (blacklist counter).
    fails: u32,
    /// The attempt currently running on this executor.
    running: Option<usize>,
}

/// Why an attempt exists — its stable causal origin. The critical-path
/// analysis reads this off the winning span to decide whether the
/// stage's pre-queue wait was ordinary queueing, speculation delay, or
/// recovery waste.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Origin {
    /// First attempt of a freshly enqueued stage.
    Fresh,
    /// Speculative copy of a laggard original.
    Spec,
    /// Re-enqueue after a clean task failure's backoff.
    Retry,
    /// Re-enqueue after its executor was declared dead mid-run.
    Crash,
    /// Re-enqueue of a completed output lost with its executor.
    Recompute,
}

impl Origin {
    fn label(self) -> &'static str {
        match self {
            Origin::Fresh => "fresh",
            Origin::Spec => "spec",
            Origin::Retry => "retry",
            Origin::Crash => "crash",
            Origin::Recompute => "recompute",
        }
    }

    /// Whether a winning attempt of this origin books as re-execution
    /// pressure.
    fn is_recompute(self) -> bool {
        matches!(self, Origin::Retry | Origin::Crash | Origin::Recompute)
    }
}

/// Why a task is being re-enqueued.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Requeue {
    /// Its executor was declared dead mid-run.
    Crash,
    /// It failed cleanly (retried after backoff).
    Fail,
    /// Its completed stage-0 output was lost with its executor.
    Recompute,
}

/// Why a crashed executor is being declared dead.
#[derive(Clone, Copy, Debug)]
enum DeathCause {
    Heartbeat,
    FetchFail,
}

/// The live fault machinery — only constructed when the fault domain
/// is enabled, so the fault-free path stays a byte-identical no-op.
struct Faults {
    /// Per-executor injector streams, keyed by `CLUSTER_PID_BASE + e`.
    exec: Vec<FaultInjector>,
    /// Per-node injector streams (node failures, DU device failures).
    node: Vec<FaultInjector>,
    /// A `NodeCrash` event is already scheduled for this node.
    node_crash_pending: Vec<bool>,
    /// The node's DU device has failed (permanent; decodes degrade).
    du_failed: Vec<bool>,
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum JobStatus {
    Live,
    Completed,
    /// Rejected by admission control on arrival.
    Shed,
    /// Aborted after exhausting its retry budget.
    Failed,
}

#[derive(Clone, Debug)]
struct TaskState {
    /// Service of the original attempt (straggler-adjusted).
    service_ns: f64,
    /// Nominal service (what a speculative copy runs at).
    nominal_ns: f64,
    completed: bool,
    /// Executor holding this task's output (the winner's).
    winner_exec: usize,
    original: Option<usize>,
    spec: Option<usize>,
    /// Whether a deferred speculation re-check is already scheduled.
    spec_check: bool,
    /// Clean failures of this task (exponential-backoff exponent).
    fails: u32,
    /// A backoff `Retry` event is already scheduled.
    retry_pending: bool,
    /// Causal source of the pending retry: the failing executor's fault
    /// lane and the failure time, threaded into the retried attempt's
    /// recovery flow edge.
    retry_src: Option<(EntityId, f64)>,
}

#[derive(Clone, Debug)]
struct StageState {
    kind: StageKind,
    tasks: Vec<TaskState>,
    done: usize,
    /// Winning services of completed tasks, for the laggard median.
    completed_services: Vec<f64>,
}

#[derive(Clone, Debug)]
struct JobState {
    tenant: usize,
    arrival_ns: f64,
    /// Index of the currently running stage.
    stage: usize,
    stages: Vec<StageState>,
    status: JobStatus,
    /// Re-enqueues consumed from the job's retry budget.
    retries_used: u32,
}

#[derive(Clone, Copy, Debug)]
struct AttemptInfo {
    job: usize,
    stage: usize,
    task: usize,
    /// Stable causal origin: fresh / speculative / retry / crash
    /// requeue / lineage recompute.
    origin: Origin,
    /// Causal edge into this attempt: the entity and time whose failure
    /// or laggardness spawned it, drawn as a flow arrow at dispatch.
    flow_from: Option<(EntityId, f64, &'static str)>,
    dispatched: bool,
    cancelled: bool,
    /// Its executor crashed mid-service; the kill lands when the crash
    /// is detected.
    doomed: bool,
    finished: bool,
    exec: usize,
    /// When the attempt entered the pending queue.
    pend_ns: f64,
    start_ns: f64,
    /// When the attempt's input fetches completed (= dispatch time for
    /// stage-0 attempts).
    fetch_done_ns: f64,
    /// When compute began: dispatch + input fetches + DU wait. The
    /// laggard test measures elapsed *compute* time from here, so fetch
    /// and queueing delays (which the scheduler observed) never count
    /// against a task.
    work_start_ns: f64,
    finish_ns: f64,
    /// DU context this attempt holds: `(node, ctx)`.
    du: Option<(usize, usize)>,
}

impl AttemptInfo {
    fn is_spec(&self) -> bool {
        matches!(self.origin, Origin::Spec)
    }
}

struct Sched<'a, S: Sink> {
    cfg: &'a ClusterConfig,
    profiles: &'a [JobProfile],
    jobs: Vec<JobState>,
    attempts: Vec<AttemptInfo>,
    pending: VecDeque<usize>,
    pending_live: usize,
    free: BTreeSet<usize>,
    fabric: Fabric,
    /// Per-node DU context free times.
    du_free: Vec<Vec<f64>>,
    q: EventQueue<Event>,
    named: Vec<bool>,
    exec_used: Vec<bool>,
    execs: Vec<ExecHealth>,
    faults: Option<Faults>,
    running: u64,
    out: ClusterOutcome,
    /// Per-job fold digests, in arrival order.
    job_digests: Vec<u64>,
    /// Monotonic flow-event id (the event loop is sequential on the
    /// simulated clock, so the numbering is deterministic).
    flow_seq: u64,
    sink: &'a mut S,
}

/// Mixes `(job, stage, task)` into a straggler-scope word.
fn task_scope(job: usize, stage: usize, task: usize) -> u64 {
    ((job as u64) << 24) ^ ((stage as u64) << 16) ^ task as u64
}

impl<S: Sink> Sched<'_, S> {
    fn profile(&self, j: usize) -> &JobProfile {
        &self.profiles[self.jobs[j].tenant]
    }

    fn exec_entity(&self, e: usize) -> EntityId {
        EntityId { pid: CLUSTER_PID_BASE + e as u32, tid: T_MAIN }
    }

    fn fail_entity(&self, e: usize) -> EntityId {
        EntityId { pid: CLUSTER_PID_BASE + e as u32, tid: T_FAIL }
    }

    fn node_of(&self, e: usize) -> usize {
        e / self.cfg.executors_per_node.max(1)
    }

    fn name_exec(&mut self, e: usize) {
        if S::ENABLED && !self.named[e] {
            self.named[e] = true;
            let pid = CLUSTER_PID_BASE + e as u32;
            self.sink.name_process(pid, &format!("exec {e}"));
            self.sink.name_thread(pid, T_MAIN, "task");
            self.sink.name_thread(pid, T_DU, "du wait");
            if self.faults.is_some() {
                self.sink.name_thread(pid, T_FAIL, "faults");
            }
        }
    }

    fn fail_instant(&mut self, e: usize, name: &'static str, t_ns: f64) {
        if S::ENABLED {
            let entity = self.fail_entity(e);
            self.sink.instant(Instant { entity, name, t_ns, attrs: vec![] });
        }
    }

    fn driver_fail_instant(&mut self, name: &'static str, t_ns: f64, job: usize) {
        if S::ENABLED {
            self.sink.instant(Instant {
                entity: EntityId { pid: DRIVER_PID, tid: T_FAIL },
                name,
                t_ns,
                attrs: vec![("job", (job as u64).into())],
            });
        }
    }

    /// Records a causal edge: work at `src` (time `t0`) caused work at
    /// `dst` (time `t1`).
    fn flow(&mut self, name: &'static str, src: EntityId, t0: f64, dst: EntityId, t1: f64) {
        if S::ENABLED {
            let id = self.flow_seq;
            self.flow_seq += 1;
            self.sink.flow(FlowEvent { id, name, src, t0_ns: t0, dst, t1_ns: t1 });
        }
    }

    /// Emits the fixed-grid gauge snapshot at bucket boundary `t`:
    /// executor utilization, live queue depth, blacklisted executors,
    /// and busy DU contexts — the post-run timeline is rebuilt from
    /// these samples.
    fn emit_timeline(&mut self, t: f64) {
        if !S::ENABLED {
            return;
        }
        let driver = EntityId { pid: DRIVER_PID, tid: T_MAIN };
        let util = self.running as f64 / self.cfg.executors as f64;
        let blacklisted = self
            .execs
            .iter()
            .filter(|h| matches!(h.state, ExecState::Blacklisted))
            .count() as f64;
        let du_busy = self
            .du_free
            .iter()
            .flatten()
            .filter(|&&free| free > t)
            .count() as f64;
        for (name, value) in [
            ("cluster.timeline.utilization", util),
            ("cluster.timeline.queue_depth", self.pending_live as f64),
            ("cluster.timeline.blacklisted", blacklisted),
            ("cluster.timeline.du_busy", du_busy),
        ] {
            self.sink.sample(Sample { entity: driver, name, t_ns: t, value });
        }
    }

    /// Queues one (fresh or re-enqueued) original attempt for a task,
    /// resetting its speculation slot so the new attempt can earn its
    /// own copy. `flow_from` is the causal edge into the attempt (the
    /// failure that spawned it), drawn at dispatch.
    fn push_attempt(
        &mut self,
        now: f64,
        j: usize,
        s: usize,
        t: usize,
        origin: Origin,
        flow_from: Option<(EntityId, f64, &'static str)>,
    ) {
        let a = self.attempts.len();
        self.attempts.push(AttemptInfo {
            job: j,
            stage: s,
            task: t,
            origin,
            flow_from,
            dispatched: false,
            cancelled: false,
            doomed: false,
            finished: false,
            exec: 0,
            pend_ns: now,
            start_ns: 0.0,
            fetch_done_ns: 0.0,
            work_start_ns: 0.0,
            finish_ns: 0.0,
            du: None,
        });
        let task = &mut self.jobs[j].stages[s].tasks[t];
        task.original = Some(a);
        task.spec = None;
        task.spec_check = false;
        self.pending.push_back(a);
        self.pending_live += 1;
    }

    /// Creates stage `s` of job `j` and queues one original attempt per
    /// task, drawing each task's straggler fate from its scoped stream.
    /// The driver's `stage.ready` instant is the stage's causal birth:
    /// the blame analysis anchors the stage window here, and — because
    /// the same `now` flows to the predecessor stage's winning span —
    /// the anchor matches that span's end *exactly*.
    fn enqueue_stage(&mut self, now: f64, j: usize, s: usize) {
        if S::ENABLED {
            self.sink.instant(Instant {
                entity: EntityId { pid: DRIVER_PID, tid: T_MAIN },
                name: "stage.ready",
                t_ns: now,
                attrs: vec![("job", (j as u64).into()), ("stage", (s as u64).into())],
            });
        }
        let profile = &self.profiles[self.jobs[j].tenant];
        let n = profile.stage_tasks(s);
        let kind = match (&profile.shape, s) {
            (JobShape::Shuffle { .. }, 0) => StageKind::Map,
            (JobShape::Shuffle { .. }, _) => StageKind::Reduce,
            (JobShape::Scan { .. }, 0) => StageKind::Materialize,
            (JobShape::Scan { .. }, _) => StageKind::Scan,
        };
        let nominals: Vec<f64> = (0..n).map(|t| profile.service_ns(s, t)).collect();
        let mut tasks = Vec::with_capacity(n);
        for (t, &nominal) in nominals.iter().enumerate() {
            let mut service = nominal;
            if self.cfg.straggler_rate > 0.0 {
                let mut rng = sdheap::rng::Rng::new(
                    self.cfg.seed ^ STRAGGLER_SCOPE ^ task_scope(j, s, t),
                );
                if rng.gen_f64() < self.cfg.straggler_rate {
                    service = nominal * self.cfg.straggler_factor;
                    self.out.stragglers += 1;
                    self.sink.count("cluster.stragglers", 1);
                }
            }
            tasks.push(TaskState {
                service_ns: service,
                nominal_ns: nominal,
                completed: false,
                winner_exec: 0,
                original: None,
                spec: None,
                spec_check: false,
                fails: 0,
                retry_pending: false,
                retry_src: None,
            });
        }
        self.jobs[j].stages.push(StageState {
            kind,
            tasks,
            done: 0,
            completed_services: Vec::new(),
        });
        for t in 0..n {
            self.push_attempt(now, j, s, t, Origin::Fresh, None);
        }
    }

    /// Whether attempt `a`'s inputs are fetchable right now. Stage-0
    /// attempts always are; later stages need every source stage-0 task
    /// completed with its winner's executor still holding the output.
    /// Tripping over a *crashed* (undetected) winner is the
    /// fetch-failure path: the executor is declared dead on the spot,
    /// which re-enqueues the lost outputs, and the attempt stays queued.
    fn inputs_ready(&mut self, now: f64, a: usize) -> bool {
        let info = self.attempts[a];
        let (j, s, t) = (info.job, info.stage, info.task);
        if s == 0 {
            return true;
        }
        let profile = &self.profiles[self.jobs[j].tenant];
        let mut srcs: Vec<usize> = Vec::new();
        match &profile.shape {
            JobShape::Shuffle { reduces, .. } if s == 1 => {
                srcs.extend(reduces[t].inputs.iter().map(|&(src, _)| src));
            }
            JobShape::Scan { .. } if s > 0 => srcs.push(t),
            _ => return true,
        }
        let mut ready = true;
        let mut crashed: Vec<usize> = Vec::new();
        for src in srcs {
            let st = &self.jobs[j].stages[0].tasks[src];
            if !st.completed {
                ready = false;
                continue;
            }
            let w = st.winner_exec;
            if matches!(self.execs[w].state, ExecState::Crashed { .. }) {
                ready = false;
                if !crashed.contains(&w) {
                    crashed.push(w);
                }
            }
        }
        for w in crashed {
            self.declare_dead(now, w, DeathCause::FetchFail);
        }
        ready
    }

    /// Greedily places pending attempts on free executors. Attempts
    /// whose inputs are not fetchable (lost outputs being recomputed)
    /// stay queued, in order, ahead of newer work.
    fn dispatch(&mut self, now: f64) {
        let mut blocked: Vec<usize> = Vec::new();
        while !self.free.is_empty() {
            let a = loop {
                match self.pending.pop_front() {
                    Some(a) if self.attempts[a].cancelled => continue,
                    Some(a) => break Some(a),
                    None => break None,
                }
            };
            let Some(a) = a else { break };
            if self.faults.is_some() && !self.inputs_ready(now, a) {
                blocked.push(a);
                continue;
            }
            self.pending_live -= 1;
            let e = *self.free.iter().next().expect("checked non-empty");
            self.free.remove(&e);
            self.name_exec(e);
            self.exec_used[e] = true;
            let info = self.attempts[a];
            let (j, s, t) = (info.job, info.stage, info.task);
            let profile = &self.profiles[self.jobs[j].tenant];
            let backend = profile.template.backend;
            let task = &self.jobs[j].stages[s].tasks[t];
            let (t_service, t_nominal) = (task.service_ns, task.nominal_ns);
            let mut service = if info.is_spec() { t_nominal } else { t_service };

            // The causal edge that spawned this attempt (recovery or
            // speculation), now that we know where it landed.
            if S::ENABLED {
                if let Some((src, t0, name)) = info.flow_from {
                    self.flow(name, src, t0, self.exec_entity(e), now);
                }
            }

            // Input fetches over the shared fabric, all issued at
            // dispatch time; the ledgers serialize contending flows.
            // Each fetch draws a flow arrow from the source output's
            // executor to this attempt's arrival.
            let mut ready = now;
            match &profile.shape {
                JobShape::Shuffle { reduces, .. } if s == 1 => {
                    for &(src, bytes) in &reduces[t].inputs {
                        let from = self.jobs[j].stages[0].tasks[src].winner_exec;
                        let arr = self.fabric.send(from, e, bytes, now);
                        ready = ready.max(arr);
                        self.sink.count("cluster.fabric_messages", 1);
                        self.sink.count("cluster.fabric_bytes", bytes);
                        if S::ENABLED {
                            self.flow("flow.fetch", self.exec_entity(from), now, self.exec_entity(e), arr);
                        }
                    }
                }
                JobShape::Scan { parts, .. } if s > 0 => {
                    let from = self.jobs[j].stages[0].tasks[t].winner_exec;
                    if from != e {
                        let bytes = parts[t].bytes;
                        let arr = self.fabric.send(from, e, bytes, now);
                        ready = ready.max(arr);
                        self.sink.count("cluster.fabric_messages", 1);
                        self.sink.count("cluster.fabric_bytes", bytes);
                        if S::ENABLED {
                            self.flow("flow.fetch", self.exec_entity(from), now, self.exec_entity(e), arr);
                        }
                    }
                }
                _ => {}
            }

            // Decode stages on the Cereal backend queue for one of the
            // node's shared DU contexts — unless the node's DU device
            // has failed, in which case the decode degrades to the
            // profiled software fallback on the host core (no queue).
            let mut du = None;
            let mut start = ready;
            if backend == Backend::Cereal && profile.stage_decodes(s) {
                let node = self.node_of(e);
                let mut degraded = false;
                let mut du_failed_now = false;
                if let Some(fx) = &mut self.faults {
                    if !fx.du_failed[node] && fx.node[node].accel_faults() {
                        fx.du_failed[node] = true;
                        du_failed_now = true;
                    }
                    degraded = fx.du_failed[node];
                }
                if du_failed_now {
                    self.out.du_device_failures += 1;
                    self.sink.count("cluster.du_device_failures", 1);
                    self.fail_instant(e, "du.fail", now);
                }
                if degraded {
                    // Replay the fallback profile; originals keep their
                    // straggler inflation.
                    let fb = profile.fallback_service_ns(s, t);
                    service = if info.is_spec() {
                        fb
                    } else {
                        fb * (t_service / t_nominal)
                    };
                    self.out.degraded_tasks += 1;
                    self.sink.count("cluster.degraded_tasks", 1);
                } else {
                    let pool = &self.du_free[node];
                    let ctx = (0..pool.len())
                        .min_by(|&x, &y| pool[x].partial_cmp(&pool[y]).expect("finite"))
                        .expect("every node has at least one DU context");
                    start = ready.max(pool[ctx]);
                    let wait = start - ready;
                    if wait > 0.0 {
                        self.out.du_waits += 1;
                        self.out.du_wait_ns += wait;
                        self.sink.count("cluster.du_waits", 1);
                        self.sink.observe("cluster.du_wait_ns", wait);
                        if S::ENABLED {
                            self.sink.span(Span {
                                entity: EntityId { pid: CLUSTER_PID_BASE + e as u32, tid: T_DU },
                                name: "du.wait",
                                t0_ns: ready,
                                t1_ns: start,
                                attrs: vec![("node", (node as u64).into())],
                            });
                            // DU-queue handoff: the wait lane releases
                            // the attempt back to the task lane.
                            self.flow(
                                "flow.du",
                                EntityId { pid: CLUSTER_PID_BASE + e as u32, tid: T_DU },
                                ready,
                                EntityId { pid: CLUSTER_PID_BASE + e as u32, tid: T_MAIN },
                                start,
                            );
                        }
                    }
                    self.du_free[node][ctx] = start + service;
                    du = Some((node, ctx));
                }
            }

            let finish = start + service;
            let at = &mut self.attempts[a];
            at.dispatched = true;
            at.exec = e;
            at.start_ns = now;
            at.fetch_done_ns = ready;
            at.work_start_ns = start;
            at.finish_ns = finish;
            at.du = du;
            self.execs[e].running = Some(a);
            self.q.push(finish, Event::Finish(a));
            self.running += 1;
            self.out.max_running = self.out.max_running.max(self.running);
            self.out.tasks_launched += 1;
            self.sink.count("cluster.tasks_launched", 1);
            self.sink.observe("cluster.task_service_ns", service);
            if info.is_spec() {
                self.out.spec_launches += 1;
                self.sink.count("cluster.spec_launches", 1);
                if S::ENABLED {
                    self.sink.instant(Instant {
                        entity: self.exec_entity(e),
                        name: "spec.launch",
                        t_ns: now,
                        attrs: vec![("job", (j as u64).into()), ("task", (t as u64).into())],
                    });
                }
            }

            // Fault draws for this placement, in fixed order: the
            // node's stream (whole-node failure), then the executor's
            // (crash, clean task failure). Fractions land the event at
            // an interior point of the service, so a drawn crash always
            // beats the drawing attempt's finish.
            let node = self.node_of(e);
            if let Some(fx) = &mut self.faults {
                if !fx.node_crash_pending[node] {
                    if let Some(frac) = fx.node[node].node_fails() {
                        fx.node_crash_pending[node] = true;
                        self.q.push(start + frac * service, Event::NodeCrash { node });
                    }
                }
                if let Some(frac) = fx.exec[e].exec_crashes() {
                    let gen = self.execs[e].gen;
                    self.q.push(start + frac * service, Event::Crash { exec: e, gen });
                }
                if let Some(frac) = fx.exec[e].task_fails() {
                    self.q.push(start + frac * service, Event::TaskFail(a));
                }
            }
        }
        for &a in blocked.iter().rev() {
            self.pending.push_front(a);
        }
        self.sink.gauge("cluster.queue_depth", self.pending_live as f64);
        self.sink.gauge("cluster.running_tasks", self.running as f64);
        self.out.max_queue_depth = self.out.max_queue_depth.max(self.pending_live as u64);
    }

    /// Kills a losing/obsolete attempt: frees its executor (if the
    /// executor is still alive), refunds its DU context if nothing
    /// queued behind it, and books the thrown-away work.
    fn cancel(&mut self, loser: usize, now: f64) {
        let info = self.attempts[loser];
        if info.cancelled || info.finished {
            return;
        }
        self.attempts[loser].cancelled = true;
        if info.dispatched {
            self.running -= 1;
            self.execs[info.exec].running = None;
            if matches!(self.execs[info.exec].state, ExecState::Alive) {
                self.free.insert(info.exec);
            }
            if let Some((node, ctx)) = info.du {
                // Only refund if no later acquisition already queued on
                // this context (its free time would have moved past ours).
                if self.du_free[node][ctx] == info.finish_ns {
                    self.du_free[node][ctx] = now;
                }
            }
            // Work stops at the kill — or at the crash, if the attempt
            // was doomed before being cancelled.
            let end = match self.execs[info.exec].state {
                ExecState::Crashed { at_ns } if info.doomed => at_ns.min(now),
                _ => now,
            };
            let wasted = (end - info.work_start_ns).max(0.0);
            self.out.wasted_ns += wasted;
            self.sink.observe("cluster.wasted_ns", wasted);
            if S::ENABLED {
                self.sink.span(Span {
                    entity: self.exec_entity(info.exec),
                    name: "task.killed",
                    t0_ns: info.start_ns,
                    t1_ns: now,
                    attrs: vec![("job", (info.job as u64).into())],
                });
            }
        } else {
            // Still queued: the dispatcher will skip the cancelled
            // entry, so it stops being live now.
            self.pending_live -= 1;
        }
    }

    /// Crashes one executor: its running attempt is doomed (killed at
    /// detection), its outputs silently gone, and the heartbeat
    /// detector will declare it dead `misses` periods after the crash's
    /// period boundary.
    fn crash_exec(&mut self, now: f64, e: usize) {
        if !matches!(self.execs[e].state, ExecState::Alive | ExecState::Blacklisted) {
            return;
        }
        self.execs[e].state = ExecState::Crashed { at_ns: now };
        self.execs[e].gen += 1;
        let gen = self.execs[e].gen;
        self.out.exec_crashes += 1;
        self.sink.count("cluster.exec_crashes", 1);
        self.fail_instant(e, "exec.crash", now);
        if let Some(a) = self.execs[e].running {
            self.attempts[a].doomed = true;
        } else {
            self.free.remove(&e);
        }
        let p = self.cfg.fault.heartbeat_period_ns.max(1.0);
        let misses = self.cfg.fault.heartbeat_misses.max(1) as f64;
        let detect = (now / p).floor() * p + misses * p;
        self.q.push(detect, Event::Dead { exec: e, gen });
    }

    /// A crashed executor is declared dead (by heartbeat timeout or a
    /// fetch failure): its doomed attempt is killed with the DU
    /// reservation refunded and the task re-enqueued, every live job's
    /// stage-0 outputs it held are re-enqueued for lineage recompute,
    /// and a replacement executor registers after `restart_ns`.
    fn declare_dead(&mut self, now: f64, e: usize, cause: DeathCause) {
        let ExecState::Crashed { at_ns } = self.execs[e].state else {
            return;
        };
        match cause {
            DeathCause::Heartbeat => {
                self.out.heartbeat_deaths += 1;
                self.sink.count("cluster.heartbeat_deaths", 1);
            }
            DeathCause::FetchFail => {
                self.out.fetch_fail_deaths += 1;
                self.sink.count("cluster.fetch_fail_deaths", 1);
            }
        }
        if S::ENABLED {
            let detector = match cause {
                DeathCause::Heartbeat => "heartbeat",
                DeathCause::FetchFail => "fetch_fail",
            };
            self.sink.span(Span {
                entity: self.fail_entity(e),
                name: "fail.undetected",
                t0_ns: at_ns,
                t1_ns: now,
                attrs: vec![("detector", detector.into())],
            });
        }
        // Kill the doomed attempt while the state still says Crashed,
        // so the thrown-away work is measured up to the crash instant,
        // not the (later) detection.
        if let Some(a) = self.execs[e].running {
            let info = self.attempts[a];
            debug_assert!(info.doomed, "a crashed executor's attempt must be doomed");
            self.out.crash_task_kills += 1;
            self.sink.count("cluster.crash_task_kills", 1);
            self.cancel(a, now);
            let src = self.fail_entity(e);
            self.requeue_task(now, info.job, info.stage, info.task, Requeue::Crash, Some(src));
        }
        self.execs[e].state = ExecState::Dead;
        self.execs[e].gen += 1;
        let gen = self.execs[e].gen;
        // Completed stage-0 outputs held by this executor are gone;
        // later stages fetch them, so re-enqueue their tasks (lineage
        // recompute). Only stage-0 outputs are ever fetched.
        for j in 0..self.jobs.len() {
            if self.jobs[j].status != JobStatus::Live || self.jobs[j].stages.is_empty() {
                continue;
            }
            for t in 0..self.jobs[j].stages[0].tasks.len() {
                let task = &self.jobs[j].stages[0].tasks[t];
                if task.completed && task.winner_exec == e {
                    self.jobs[j].stages[0].tasks[t].completed = false;
                    self.jobs[j].stages[0].done -= 1;
                    let src = self.fail_entity(e);
                    self.requeue_task(now, j, 0, t, Requeue::Recompute, Some(src));
                }
            }
        }
        self.q.push(now + self.cfg.fault.restart_ns, Event::Up { exec: e, gen });
    }

    /// A clean task failure: the executor survives and reports it. The
    /// task retries after exponential backoff; the executor's failure
    /// count may trip the blacklist.
    fn on_task_fail(&mut self, now: f64, a: usize) {
        let info = self.attempts[a];
        if info.cancelled || info.finished || info.doomed {
            return;
        }
        let (j, s, t) = (info.job, info.stage, info.task);
        let e = info.exec;
        self.out.task_failures += 1;
        self.sink.count("cluster.task_failures", 1);
        if S::ENABLED {
            self.sink.span(Span {
                entity: self.fail_entity(e),
                name: "task.fail",
                t0_ns: info.start_ns,
                t1_ns: now,
                attrs: vec![("job", (j as u64).into()), ("task", (t as u64).into())],
            });
        }
        self.cancel(a, now);
        self.jobs[j].stages[s].tasks[t].fails += 1;
        self.execs[e].fails += 1;
        let threshold = self.cfg.fault.blacklist_threshold;
        if threshold > 0
            && self.execs[e].fails >= threshold
            && matches!(self.execs[e].state, ExecState::Alive)
        {
            // Pull it from service; it rejoins after a seeded cooldown.
            self.execs[e].state = ExecState::Blacklisted;
            self.execs[e].gen += 1;
            let gen = self.execs[e].gen;
            self.free.remove(&e);
            self.out.blacklists += 1;
            self.sink.count("cluster.blacklists", 1);
            self.fail_instant(e, "exec.blacklist", now);
            let jitter = self
                .faults
                .as_mut()
                .map_or(0.0, |fx| fx.exec[e].jitter());
            let cooldown = self.cfg.fault.blacklist_cooldown_ns * (1.0 + jitter);
            self.q.push(now + cooldown, Event::Up { exec: e, gen });
        }
        let src = self.fail_entity(e);
        self.requeue_task(now, j, s, t, Requeue::Fail, Some(src));
    }

    /// An executor re-registers: a replacement after a declared death,
    /// or a blacklisted executor's cooldown expiring.
    fn on_up(&mut self, now: f64, e: usize, gen: u32) {
        if self.execs[e].gen != gen {
            return;
        }
        match self.execs[e].state {
            ExecState::Dead => {
                self.out.restarts += 1;
                self.sink.count("cluster.restarts", 1);
                self.fail_instant(e, "exec.up", now);
            }
            ExecState::Blacklisted => {
                self.out.blacklist_rejoins += 1;
                self.sink.count("cluster.blacklist_rejoins", 1);
                self.fail_instant(e, "exec.rejoin", now);
            }
            // Gen guards make other states unreachable here.
            ExecState::Alive | ExecState::Crashed { .. } => return,
        }
        self.execs[e].state = ExecState::Alive;
        self.execs[e].gen += 1;
        self.execs[e].fails = 0;
        self.free.insert(e);
    }

    /// Re-enqueues a task after a failure/crash/lost output — unless a
    /// sibling attempt is still racing, a retry is already scheduled,
    /// or the job's retry budget is exhausted (which aborts the job).
    /// `src` is the failing entity, threaded into the replacement
    /// attempt's recovery flow edge.
    fn requeue_task(
        &mut self,
        now: f64,
        j: usize,
        s: usize,
        t: usize,
        kind: Requeue,
        src: Option<EntityId>,
    ) {
        if self.jobs[j].status != JobStatus::Live {
            return;
        }
        {
            let task = &self.jobs[j].stages[s].tasks[t];
            if task.completed || task.retry_pending {
                return;
            }
            let live = |ao: Option<usize>| {
                ao.is_some_and(|a| {
                    let i = &self.attempts[a];
                    !i.cancelled && !i.doomed && !i.finished
                })
            };
            if live(task.original) || live(task.spec) {
                return;
            }
        }
        if self.jobs[j].retries_used >= self.cfg.fault.job_retry_budget {
            self.abort_job(now, j);
            return;
        }
        self.jobs[j].retries_used += 1;
        let edge = src.map(|en| (en, now, "flow.recovery"));
        match kind {
            Requeue::Fail => {
                self.out.task_retries += 1;
                self.sink.count("cluster.task_retries", 1);
                let task = &mut self.jobs[j].stages[s].tasks[t];
                let k = task.fails.saturating_sub(1).min(16);
                task.retry_pending = true;
                task.retry_src = src.map(|en| (en, now));
                let delay = self.cfg.fault.retry_backoff_ns * (1u64 << k) as f64;
                self.q.push(now + delay, Event::Retry { job: j, stage: s, task: t });
            }
            Requeue::Crash => {
                self.out.crash_requeues += 1;
                self.sink.count("cluster.crash_requeues", 1);
                self.push_attempt(now, j, s, t, Origin::Crash, edge);
            }
            Requeue::Recompute => {
                self.out.recomputes += 1;
                self.sink.count("cluster.recomputes", 1);
                self.push_attempt(now, j, s, t, Origin::Recompute, edge);
            }
        }
    }

    /// A task's backoff expired: re-enqueue it (if its job is still
    /// live and nothing completed it meanwhile).
    fn on_retry(&mut self, now: f64, j: usize, s: usize, t: usize) {
        let src = self.jobs[j].stages[s].tasks[t].retry_src.take();
        self.jobs[j].stages[s].tasks[t].retry_pending = false;
        if self.jobs[j].status != JobStatus::Live || self.jobs[j].stages[s].tasks[t].completed {
            return;
        }
        let edge = src.map(|(en, t0)| (en, t0, "flow.recovery"));
        self.push_attempt(now, j, s, t, Origin::Retry, edge);
    }

    /// Aborts a job that exhausted its retry budget: reported as
    /// failed — never a silent wrong answer — and every outstanding
    /// attempt is killed.
    fn abort_job(&mut self, now: f64, j: usize) {
        self.jobs[j].status = JobStatus::Failed;
        self.out.jobs_failed += 1;
        self.out.makespan_ns = self.out.makespan_ns.max(now);
        self.sink.count("cluster.jobs_failed", 1);
        self.driver_fail_instant("job.failed", now, j);
        for a in 0..self.attempts.len() {
            if self.attempts[a].job == j {
                self.cancel(a, now);
            }
        }
    }

    /// Once enough of a stage has completed, give each running laggard
    /// one speculative copy — or schedule a re-check for the moment it
    /// would become a laggard.
    fn maybe_speculate(&mut self, now: f64, j: usize, s: usize) {
        if !self.cfg.speculation {
            return;
        }
        let stage = &self.jobs[j].stages[s];
        let total = stage.tasks.len();
        if stage.done == total {
            return;
        }
        let quota = (self.cfg.spec_quantile * total as f64).ceil() as usize;
        if stage.done < quota.max(1) {
            return;
        }
        let mut sorted = stage.completed_services.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = sorted[sorted.len() / 2];
        let candidates: Vec<usize> = (0..total)
            .filter(|&t| {
                let task = &self.jobs[j].stages[s].tasks[t];
                !task.completed && task.spec.is_none()
            })
            .collect();
        for t in candidates {
            let Some(orig) = self.jobs[j].stages[s].tasks[t].original else { continue };
            let oi = self.attempts[orig];
            if !oi.dispatched || oi.cancelled || oi.doomed || oi.finished {
                continue;
            }
            // A task is a laggard when its elapsed *compute* time (the
            // scheduler watched its fetches and DU wait end) exceeds
            // the multiplier over the stage median — or over its own
            // profiled nominal, so naturally long tasks (a hot skewed
            // reducer) are not re-run just for being long.
            let nominal = self.jobs[j].stages[s].tasks[t].nominal_ns;
            let threshold = self.cfg.spec_multiplier * median.max(nominal);
            if now - oi.work_start_ns > threshold {
                self.launch_spec(now, j, s, t);
            } else if !self.jobs[j].stages[s].tasks[t].spec_check {
                // Not lagging yet: re-check exactly when it would be.
                self.jobs[j].stages[s].tasks[t].spec_check = true;
                self.q.push(oi.work_start_ns + threshold, Event::SpecCheck(orig));
            }
        }
    }

    fn launch_spec(&mut self, now: f64, j: usize, s: usize, t: usize) {
        // The causal edge: the laggard original's lane spawned this
        // copy.
        let flow_from = self.jobs[j].stages[s].tasks[t].original.and_then(|o| {
            let oi = self.attempts[o];
            oi.dispatched.then(|| (self.exec_entity(oi.exec), now, "flow.spec"))
        });
        let a = self.attempts.len();
        self.attempts.push(AttemptInfo {
            job: j,
            stage: s,
            task: t,
            origin: Origin::Spec,
            flow_from,
            dispatched: false,
            cancelled: false,
            doomed: false,
            finished: false,
            exec: 0,
            pend_ns: now,
            start_ns: 0.0,
            fetch_done_ns: 0.0,
            work_start_ns: 0.0,
            finish_ns: 0.0,
            du: None,
        });
        self.jobs[j].stages[s].tasks[t].spec = Some(a);
        self.pending.push_back(a);
        self.pending_live += 1;
    }

    /// A deferred laggard re-check: the original is a laggard *now* if
    /// it is still running — the stage quantile was already met when
    /// the check was scheduled.
    fn on_spec_check(&mut self, now: f64, orig: usize) {
        if !self.cfg.speculation {
            return;
        }
        let oi = self.attempts[orig];
        if oi.cancelled || oi.doomed || oi.finished {
            return;
        }
        let (j, s, t) = (oi.job, oi.stage, oi.task);
        if self.jobs[j].stages[s].tasks[t].completed
            || self.jobs[j].stages[s].tasks[t].spec.is_some()
            // A requeue replaced this attempt; the new one re-earns its
            // own speculation.
            || self.jobs[j].stages[s].tasks[t].original != Some(orig)
        {
            return;
        }
        self.launch_spec(now, j, s, t);
    }

    fn on_finish(&mut self, now: f64, a: usize) -> Result<(), ClusterError> {
        let info = self.attempts[a];
        if info.cancelled || info.doomed {
            // Killed earlier, or its executor crashed mid-service (the
            // kill lands at detection).
            return Ok(());
        }
        self.attempts[a].finished = true;
        self.running -= 1;
        self.execs[info.exec].running = None;
        self.free.insert(info.exec);
        let (j, s, t) = (info.job, info.stage, info.task);
        // The booked service is what this attempt actually ran for:
        // finish − compute start (covers degraded-DU fallback replay,
        // speculative nominals and straggler inflation alike).
        let service = info.finish_ns - info.work_start_ns;

        // First completion wins; the sibling attempt (if any) dies now.
        let other = {
            let task = &self.jobs[j].stages[s].tasks[t];
            debug_assert!(!task.completed, "second finisher should have been cancelled");
            if info.is_spec() { task.original } else { task.spec }
        };
        if let Some(o) = other {
            if o != a {
                if S::ENABLED {
                    let oi = self.attempts[o];
                    if oi.dispatched && !oi.cancelled && !oi.finished {
                        // The win kills the racing sibling — a causal
                        // edge from winner to loser.
                        self.flow(
                            "flow.spec_kill",
                            self.exec_entity(info.exec),
                            now,
                            self.exec_entity(oi.exec),
                            now,
                        );
                    }
                }
                self.cancel(o, now);
            }
        }
        {
            let task = &mut self.jobs[j].stages[s].tasks[t];
            task.completed = true;
            task.winner_exec = info.exec;
        }
        let stage = &mut self.jobs[j].stages[s];
        stage.done += 1;
        stage.completed_services.push(service);
        let stage_done = stage.done == stage.tasks.len();
        let kind = stage.kind;
        self.out.tasks_completed += 1;
        self.out.busy_ns += service;
        if info.origin.is_recompute() {
            self.out.recompute_busy_ns += service;
            self.sink.observe("cluster.recompute_service_ns", service);
        }
        self.sink.count("cluster.tasks_completed", 1);
        if S::ENABLED {
            // The winning span carries the attempt's full causal
            // identity: coordinates, origin, queueing milestones, and
            // the profiled component fractions of its service window —
            // everything the critical-path blame analysis needs.
            let (ser_frac, de_frac, gc_frac) = self.profile(j).components(s, t);
            self.sink.span(Span {
                entity: self.exec_entity(info.exec),
                name: kind.span_name(),
                t0_ns: info.start_ns,
                t1_ns: now,
                attrs: vec![
                    ("job", (j as u64).into()),
                    ("stage", (s as u64).into()),
                    ("task", (t as u64).into()),
                    ("tenant", (self.jobs[j].tenant as u64).into()),
                    ("origin", info.origin.label().into()),
                    ("pend", info.pend_ns.into()),
                    ("fetch_done", info.fetch_done_ns.into()),
                    ("work_start", info.work_start_ns.into()),
                    ("ser_frac", ser_frac.into()),
                    ("de_frac", de_frac.into()),
                    ("gc_frac", gc_frac.into()),
                ],
            });
        }
        if info.is_spec() {
            self.out.spec_wins += 1;
            self.sink.count("cluster.spec_wins", 1);
            if S::ENABLED {
                self.sink.instant(Instant {
                    entity: self.exec_entity(info.exec),
                    name: "spec.win",
                    t_ns: now,
                    attrs: vec![("job", (j as u64).into()), ("task", (t as u64).into())],
                });
            }
        }

        // A recompleted stage-0 recompute must not re-advance a job
        // already past that barrier.
        if self.jobs[j].stage != s {
            return Ok(());
        }
        if stage_done {
            let profile = self.profile(j);
            if s + 1 < profile.stages() {
                self.jobs[j].stage = s + 1;
                self.enqueue_stage(now, j, s + 1);
            } else {
                self.complete_job(now, j)?;
            }
        } else {
            self.maybe_speculate(now, j, s);
        }
        Ok(())
    }

    /// Re-merges the job's fold from its winning attempts' task outputs
    /// and checks it against the profile digest, then books completion.
    fn complete_job(&mut self, now: f64, j: usize) -> Result<(), ClusterError> {
        let tenant = self.jobs[j].tenant;
        let profile = &self.profiles[tenant];
        let mut merged: Fold = Fold::new();
        match &profile.shape {
            JobShape::Shuffle { reduces, .. } => {
                for r in reduces {
                    for (&k, &(c, sum)) in &r.fold {
                        let e = merged.entry(k).or_insert((0, 0.0));
                        e.0 += c;
                        e.1 += sum;
                    }
                }
            }
            JobShape::Scan { parts, .. } => {
                for p in parts {
                    for (&k, &(c, sum)) in &p.fold {
                        let e = merged.entry(k).or_insert((0, 0.0));
                        e.0 += c;
                        e.1 += sum;
                    }
                }
            }
        }
        let digest = fold_checksum(&merged);
        if digest != profile.fold_checksum {
            return Err(ClusterError::JobFoldMismatch { job: j, tenant });
        }
        self.job_digests[j] = digest;
        self.jobs[j].status = JobStatus::Completed;
        let latency = now - self.jobs[j].arrival_ns;
        self.out.jobs_completed += 1;
        self.out.makespan_ns = self.out.makespan_ns.max(now);
        self.out.job_latency_sum_ns += latency;
        self.out.job_latency_max_ns = self.out.job_latency_max_ns.max(latency);
        self.out.per_tenant[tenant].jobs += 1;
        self.out.per_tenant[tenant].latency_sum_ns += latency;
        self.sink.count("cluster.jobs_completed", 1);
        self.sink.observe("cluster.job_latency_ns", latency);
        self.sink
            .count(TENANT_JOB_COUNTERS[tenant.min(TENANT_JOB_COUNTERS.len() - 1)], 1);
        if S::ENABLED {
            // The job's causal terminus: the final stage's barrier span
            // ends at this exact `now`.
            self.sink.instant(Instant {
                entity: EntityId { pid: DRIVER_PID, tid: T_MAIN },
                name: "job.complete",
                t_ns: now,
                attrs: vec![("job", (j as u64).into()), ("tenant", (tenant as u64).into())],
            });
        }
        // Spurious in-flight recomputes of this job's stage-0 outputs
        // are obsolete now.
        if self.faults.is_some() {
            for a in 0..self.attempts.len() {
                if self.attempts[a].job == j {
                    self.cancel(a, now);
                }
            }
        }
        Ok(())
    }
}

/// Runs the cluster to completion (untraced).
///
/// # Errors
/// Propagates profile-building failures and fold-integrity violations.
pub fn run_cluster(cfg: &ClusterConfig) -> Result<ClusterOutcome, ClusterError> {
    run_cluster_sunk(cfg, &mut NoopSink)
}

/// [`run_cluster`] with a telemetry sink: `job.arrival`/`stage.ready`/
/// `job.complete` instants on the driver lane (the causal anchors the
/// blame analysis keys on), per-executor `task.*` spans carrying each
/// winning attempt's causal identity (job/stage/task/tenant
/// coordinates, origin, queueing milestones, profiled component
/// fractions), `du.wait` spans, `spec.launch`/`spec.win` instants,
/// causal flow edges (`flow.fetch` per input transfer, `flow.du` per
/// DU-queue handoff, `flow.recovery` from a failure to its replacement
/// attempt, `flow.spec` from a laggard to its copy, `flow.spec_kill`
/// from a winner to the sibling it kills), fixed-grid
/// `cluster.timeline.*` gauge samples every
/// [`ClusterConfig::timeline_bucket_ns`], the fault lifecycle on the
/// `T_FAIL` lanes (`exec.crash`/`fail.undetected`/`task.fail`/
/// `exec.blacklist`/`exec.up`/`du.fail`, driver `job.shed`/
/// `job.failed`), queue-depth and running-task gauges, and every
/// `cluster.*` counter booked at its event site. The returned outcome
/// is identical to the untraced path for any sink.
///
/// # Errors
/// Same as [`run_cluster`].
pub fn run_cluster_sunk<S: Sink>(
    cfg: &ClusterConfig,
    sink: &mut S,
) -> Result<ClusterOutcome, ClusterError> {
    assert!(cfg.executors > 0, "cluster needs executors");
    assert!(cfg.tenants > 0, "cluster needs tenants");
    let profiles = build_profiles(cfg)?;

    // Calibrate the arrival rate to the target executor load: with
    // `mean_job_service` total work per job, an inter-arrival gap of
    // work / (load × executors) keeps the offered load constant across
    // cluster sizes.
    let mean_job_service: f64 =
        profiles.iter().map(|p| p.total_service_ns).sum::<f64>() / profiles.len() as f64;
    let mean_inter = mean_job_service / (cfg.target_load.max(1e-6) * cfg.executors as f64);
    let arrivals = crate::job::arrivals(cfg, mean_inter);

    if S::ENABLED {
        sink.name_process(DRIVER_PID, "cluster driver");
        sink.name_thread(DRIVER_PID, T_MAIN, "scheduler");
        if cfg.fault.enabled() {
            sink.name_thread(DRIVER_PID, T_FAIL, "faults");
        }
    }

    // The fault machinery only exists when it can fire, so a zero-rate
    // run is byte-identical to one with no fault domain at all.
    let faults = cfg.fault.enabled().then(|| {
        let fc = sim::FaultConfig {
            seed: cfg.seed ^ CLUSTER_FAULT_SCOPE,
            exec_crash: cfg.fault.exec_crash_rate,
            node_failure: cfg.fault.node_fail_rate,
            task_failure: cfg.fault.task_fail_rate,
            accel_fault: cfg.fault.du_fail_rate,
            ..sim::FaultConfig::none()
        };
        Faults {
            exec: (0..cfg.executors)
                .map(|e| fc.scoped(u64::from(CLUSTER_PID_BASE + e as u32)))
                .collect(),
            node: (0..cfg.nodes())
                .map(|n| fc.scoped(NODE_FAULT_SCOPE ^ n as u64))
                .collect(),
            node_crash_pending: vec![false; cfg.nodes()],
            du_failed: vec![false; cfg.nodes()],
        }
    });

    let mut sched = Sched {
        cfg,
        profiles: &profiles,
        jobs: Vec::with_capacity(arrivals.len()),
        attempts: Vec::new(),
        pending: VecDeque::new(),
        pending_live: 0,
        free: (0..cfg.executors).collect(),
        fabric: Fabric::full_mesh(cfg.executors, cfg.executors, cfg.link),
        du_free: vec![vec![0.0; cfg.du_contexts_per_node.max(1)]; cfg.nodes()],
        q: EventQueue::new(),
        named: vec![false; cfg.executors],
        exec_used: vec![false; cfg.executors],
        execs: vec![
            ExecHealth { state: ExecState::Alive, gen: 0, fails: 0, running: None };
            cfg.executors
        ],
        faults,
        running: 0,
        out: ClusterOutcome {
            arrivals: 0,
            jobs_completed: 0,
            tasks_launched: 0,
            tasks_completed: 0,
            stragglers: 0,
            spec_launches: 0,
            spec_wins: 0,
            du_waits: 0,
            du_wait_ns: 0.0,
            fabric_messages: 0,
            fabric_bytes: 0,
            makespan_ns: 0.0,
            job_latency_sum_ns: 0.0,
            job_latency_max_ns: 0.0,
            max_queue_depth: 0,
            max_running: 0,
            executors_used: 0,
            busy_ns: 0.0,
            exec_crashes: 0,
            node_crashes: 0,
            heartbeat_deaths: 0,
            fetch_fail_deaths: 0,
            crash_task_kills: 0,
            task_failures: 0,
            task_retries: 0,
            crash_requeues: 0,
            recomputes: 0,
            blacklists: 0,
            blacklist_rejoins: 0,
            restarts: 0,
            du_device_failures: 0,
            degraded_tasks: 0,
            jobs_shed: 0,
            jobs_failed: 0,
            wasted_ns: 0.0,
            recompute_busy_ns: 0.0,
            per_tenant: vec![TenantStats::default(); cfg.tenants],
            fold_checksum: 0,
        },
        job_digests: vec![0; arrivals.len()],
        flow_seq: 0,
        sink,
    };

    for (jid, a) in arrivals.iter().enumerate() {
        sched.jobs.push(JobState {
            tenant: a.tenant,
            arrival_ns: a.t_ns,
            stage: 0,
            stages: Vec::new(),
            status: JobStatus::Live,
            retries_used: 0,
        });
        sched.q.push(a.t_ns, Event::Arrival(jid));
    }

    let bucket = cfg.timeline_bucket_ns;
    let mut next_sample = bucket;
    while let Some((now, ev)) = sched.q.pop() {
        if S::ENABLED && bucket > 0.0 {
            // Gauge snapshots land on the fixed bucket grid *before*
            // the event at `now` applies, so each sample reflects the
            // state that held across the bucket boundary — the gauges
            // are step functions of the event clock.
            while next_sample <= now {
                sched.emit_timeline(next_sample);
                next_sample += bucket;
            }
        }
        match ev {
            Event::Arrival(jid) => {
                sched.out.arrivals += 1;
                sched.sink.count("cluster.arrivals", 1);
                if S::ENABLED {
                    let tenant = sched.jobs[jid].tenant as u64;
                    sched.sink.instant(Instant {
                        entity: EntityId { pid: DRIVER_PID, tid: T_MAIN },
                        name: "job.arrival",
                        t_ns: now,
                        attrs: vec![("job", (jid as u64).into()), ("tenant", tenant.into())],
                    });
                }
                let watermark = cfg.fault.shed_queue_depth;
                if watermark > 0 && sched.pending_live >= watermark {
                    // Admission control: shedding beats collapsing.
                    sched.jobs[jid].status = JobStatus::Shed;
                    sched.out.jobs_shed += 1;
                    sched.out.makespan_ns = sched.out.makespan_ns.max(now);
                    sched.sink.count("cluster.jobs_shed", 1);
                    sched.driver_fail_instant("job.shed", now, jid);
                } else {
                    sched.enqueue_stage(now, jid, 0);
                }
            }
            Event::Finish(a) => sched.on_finish(now, a)?,
            Event::SpecCheck(orig) => sched.on_spec_check(now, orig),
            Event::Crash { exec, gen } => {
                if sched.execs[exec].gen == gen {
                    sched.crash_exec(now, exec);
                }
            }
            Event::NodeCrash { node } => {
                if let Some(fx) = &mut sched.faults {
                    fx.node_crash_pending[node] = false;
                }
                sched.out.node_crashes += 1;
                sched.sink.count("cluster.node_crashes", 1);
                if S::ENABLED {
                    sched.sink.instant(Instant {
                        entity: EntityId { pid: DRIVER_PID, tid: T_FAIL },
                        name: "node.crash",
                        t_ns: now,
                        attrs: vec![("node", (node as u64).into())],
                    });
                }
                let epn = cfg.executors_per_node.max(1);
                let hi = ((node + 1) * epn).min(cfg.executors);
                for e in node * epn..hi {
                    sched.crash_exec(now, e);
                }
            }
            Event::TaskFail(a) => sched.on_task_fail(now, a),
            Event::Dead { exec, gen } => {
                if sched.execs[exec].gen == gen {
                    sched.declare_dead(now, exec, DeathCause::Heartbeat);
                }
            }
            Event::Up { exec, gen } => sched.on_up(now, exec, gen),
            Event::Retry { job, stage, task } => sched.on_retry(now, job, stage, task),
        }
        sched.dispatch(now);
    }

    assert!(
        sched.jobs.iter().all(|j| j.status != JobStatus::Live),
        "the run must drain every job"
    );
    assert_eq!(
        sched.out.jobs_completed + sched.out.jobs_shed + sched.out.jobs_failed,
        sched.out.arrivals,
        "every arrival must reach exactly one terminal state"
    );
    assert_eq!(sched.pending_live, 0, "no attempts may be left queued");
    assert!(sched.q.is_empty(), "no leaked timers after the last event");
    sched.out.executors_used = sched.exec_used.iter().filter(|&&u| u).count() as u64;
    sched.out.fabric_messages = sched.fabric.messages();
    sched.out.fabric_bytes = sched.fabric.total_bytes();
    // Digest of digests, in arrival order — stable across scheduling
    // differences (speculation, contention, recovery) by construction;
    // shed/failed jobs contribute zero digests.
    let mut fold: Fold = Fold::new();
    for (i, &d) in sched.job_digests.iter().enumerate() {
        fold.insert(i as u64, (1, f64::from_bits(d)));
    }
    sched.out.fold_checksum = fold_checksum(&fold);
    Ok(sched.out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An outcome from a run that did nothing: no executors used, no
    /// completions, zero makespan. Every derived rate must be 0.0, not
    /// NaN/inf.
    fn empty_outcome() -> ClusterOutcome {
        ClusterOutcome {
            arrivals: 0,
            jobs_completed: 0,
            tasks_launched: 0,
            tasks_completed: 0,
            stragglers: 0,
            spec_launches: 0,
            spec_wins: 0,
            du_waits: 0,
            du_wait_ns: 0.0,
            fabric_messages: 0,
            fabric_bytes: 0,
            makespan_ns: 0.0,
            job_latency_sum_ns: 0.0,
            job_latency_max_ns: 0.0,
            max_queue_depth: 0,
            max_running: 0,
            executors_used: 0,
            busy_ns: 0.0,
            exec_crashes: 0,
            node_crashes: 0,
            heartbeat_deaths: 0,
            fetch_fail_deaths: 0,
            crash_task_kills: 0,
            task_failures: 0,
            task_retries: 0,
            crash_requeues: 0,
            recomputes: 0,
            blacklists: 0,
            blacklist_rejoins: 0,
            restarts: 0,
            du_device_failures: 0,
            degraded_tasks: 0,
            jobs_shed: 0,
            jobs_failed: 0,
            wasted_ns: 0.0,
            recompute_busy_ns: 0.0,
            per_tenant: Vec::new(),
            fold_checksum: 0,
        }
    }

    #[test]
    fn derived_rates_guard_zero_denominators() {
        let out = empty_outcome();
        assert_eq!(out.mean_latency_ns(), 0.0, "0 completions");
        assert_eq!(out.utilization(0), 0.0, "0 executors");
        assert_eq!(out.utilization(64), 0.0, "0 makespan");
        assert_eq!(out.goodput(), 0.0, "no work at all");
        assert_eq!(out.recompute_share(), 0.0);
        assert_eq!(out.shed_rate(), 0.0, "0 arrivals");
        assert_eq!(out.throughput_per_sec(), 0.0);

        let mut some = empty_outcome();
        some.jobs_completed = 4;
        some.job_latency_sum_ns = 8.0;
        some.busy_ns = 3.0;
        some.wasted_ns = 1.0;
        some.recompute_busy_ns = 1.5;
        some.makespan_ns = 2e9;
        some.arrivals = 8;
        some.jobs_shed = 2;
        assert_eq!(some.mean_latency_ns(), 2.0);
        assert_eq!(some.utilization(0), 0.0, "still guards 0 executors");
        assert!((some.utilization(1) - 3.0 / 2e9).abs() < 1e-18);
        assert_eq!(some.goodput(), 0.75);
        assert_eq!(some.recompute_share(), 0.5);
        assert_eq!(some.shed_rate(), 0.25);
        assert_eq!(some.throughput_per_sec(), 2.0);
    }
}
