//! The causal critical-path blame contract, on real scheduler runs:
//!
//! 1. **conservation** — across healthy, straggler/speculation, fault-
//!    storm and blacklist scenarios, [`telemetry::critpath::analyze`]
//!    succeeds and every job's nine blame categories sum exactly (to
//!    f64 tolerance) to its latency — the analyzer enforces this as a
//!    hard error, so success *is* the property;
//! 2. **boundedness** — the critical path (slowest job) never exceeds
//!    the run's makespan;
//! 3. **attribution** — scenario knobs move blame into the category
//!    built for them (speculation waste, recovery waste);
//! 4. **no perturbation** — the traced run that feeds the analysis
//!    reports the same outcome as the untraced run.

use cluster::{run_cluster, run_cluster_sunk, ClusterConfig, ClusterOutcome};
use telemetry::critpath::{self, Analysis, CATEGORIES};
use telemetry::Recorder;

/// Runs `cfg` traced and untraced, asserts the no-perturbation law, and
/// returns the analysis (the conservation law is enforced inside).
fn analyze_scenario(label: &str, cfg: &ClusterConfig) -> (Analysis, ClusterOutcome) {
    let untraced = run_cluster(cfg).expect("untraced run");
    let mut rec = Recorder::new();
    let traced = run_cluster_sunk(cfg, &mut rec).expect("traced run");
    assert_eq!(traced, untraced, "{label}: tracing perturbed the simulation");
    let a = critpath::analyze(&rec, traced.makespan_ns)
        .unwrap_or_else(|e| panic!("{label}: blame analysis failed: {e}"));
    assert_eq!(
        a.jobs.len() as u64,
        traced.jobs_completed,
        "{label}: every completed job gets a blame row"
    );
    assert!(
        a.critical_path_ns <= a.makespan_ns * (1.0 + 1e-9),
        "{label}: critical path {} exceeds makespan {}",
        a.critical_path_ns,
        a.makespan_ns
    );
    let per_tenant: u64 = a.tenants.iter().map(|t| t.jobs).sum();
    assert_eq!(per_tenant, traced.jobs_completed, "{label}: tenant rows partition the jobs");
    for t in &a.tenants {
        assert!(t.p50_ns <= t.p95_ns && t.p95_ns <= t.p99_ns, "{label}: percentiles ordered");
    }
    (a, traced)
}

fn total(a: &Analysis, cat: &str) -> f64 {
    let i = CATEGORIES.iter().position(|c| *c == cat).expect("known category");
    a.total_blame()[i]
}

#[test]
fn healthy_run_conserves_and_has_no_waste_blame() {
    let cfg = ClusterConfig::smoke();
    let (a, _) = analyze_scenario("healthy", &cfg);
    assert_eq!(total(&a, "recovery"), 0.0, "no faults, no recovery blame");
    assert_eq!(total(&a, "speculation"), 0.0, "no stragglers, no speculation blame");
    assert_eq!(total(&a, "blacklist"), 0.0, "no blacklisting, no drain blame");
    assert!(total(&a, "serde") > 0.0, "serialization always shows up");
}

#[test]
fn straggler_speculation_run_conserves() {
    let mut cfg = ClusterConfig::smoke();
    cfg.straggler_rate = 0.2;
    cfg.speculation = true;
    let (a, out) = analyze_scenario("straggler+spec", &cfg);
    assert!(out.spec_wins > 0, "the scenario actually speculates");
    // A winning copy's pend starts at its (late) launch: the wait shows
    // up as speculation blame whenever a copy won on the barrier.
    assert!(total(&a, "speculation") > 0.0, "speculative wins leave speculation blame");
}

#[test]
fn fault_storm_conserves_and_blames_recovery() {
    let mut cfg = ClusterConfig::smoke();
    cfg.straggler_rate = 0.1;
    cfg.speculation = true;
    cfg.fault.exec_crash_rate = 0.05;
    cfg.fault.task_fail_rate = 0.08;
    cfg.fault.du_fail_rate = 0.1;
    cfg.fault.blacklist_threshold = 2;
    cfg.fault.heartbeat_period_ns = 50_000.0;
    let (a, out) = analyze_scenario("fault-storm", &cfg);
    assert!(out.task_retries + out.crash_requeues + out.recomputes > 0);
    assert!(total(&a, "recovery") > 0.0, "re-run attempts leave recovery blame");
}

#[test]
fn slow_heartbeat_conserves() {
    let mut cfg = ClusterConfig::smoke();
    cfg.fault.exec_crash_rate = 0.05;
    cfg.fault.heartbeat_period_ns = 200_000.0;
    analyze_scenario("slow-heartbeat", &cfg);
}

#[test]
fn analysis_is_deterministic_across_thread_counts() {
    let mut cfg = ClusterConfig::smoke();
    cfg.straggler_rate = 0.1;
    cfg.speculation = true;
    cfg.jobs = 1;
    let mut rec1 = Recorder::new();
    let out1 = run_cluster_sunk(&cfg, &mut rec1).expect("run");
    cfg.jobs = 4;
    let mut rec4 = Recorder::new();
    let out4 = run_cluster_sunk(&cfg, &mut rec4).expect("run");
    let a1 = critpath::analyze(&rec1, out1.makespan_ns).expect("analysis");
    let a4 = critpath::analyze(&rec4, out4.makespan_ns).expect("analysis");
    assert_eq!(a1, a4, "blame analysis must not depend on --jobs");
}

#[test]
fn trace_carries_causal_flow_edges_and_timeline_samples() {
    let mut cfg = ClusterConfig::smoke();
    cfg.straggler_rate = 0.2;
    cfg.speculation = true;
    let mut rec = Recorder::new();
    run_cluster_sunk(&cfg, &mut rec).expect("traced run");
    assert!(rec.flows.iter().any(|f| f.name == "flow.fetch"), "shuffle fetch edges");
    assert!(rec.flows.iter().any(|f| f.name == "flow.du"), "DU handoff edges");
    assert!(rec.flows.iter().any(|f| f.name == "flow.spec"), "speculation edges");
    for f in &rec.flows {
        assert!(f.t1_ns >= f.t0_ns, "causal edges run forward in time");
    }
    // The gauge timeline lands on the fixed simulated-clock grid.
    let bucket = cfg.timeline_bucket_ns;
    assert!(bucket > 0.0, "smoke config samples the timeline");
    assert!(!rec.samples.is_empty(), "the timeline sampled");
    for s in &rec.samples {
        let k = s.t_ns / bucket;
        assert!(
            (k - k.round()).abs() < 1e-9,
            "sample at {} is off the {}-ns grid",
            s.t_ns,
            bucket
        );
        if s.name == "cluster.timeline.utilization" {
            assert!((0.0..=1.0).contains(&s.value), "utilization is a fraction");
        }
    }
    // The chrome export renders the edges as s/f pairs.
    let trace = telemetry::chrome_trace(&rec);
    assert!(trace.contains("\"ph\":\"s\"") && trace.contains("\"ph\":\"f\""));
    assert!(trace.contains("\"cat\":\"flow.fetch\""));
}
