//! The cluster's determinism contract: every reported number is a pure
//! function of the configuration — worker-thread count and telemetry
//! sinks must not change anything.

use cluster::{run_cluster, run_cluster_sunk, ClusterConfig};
use telemetry::Recorder;

#[test]
fn outcome_is_identical_for_any_thread_count() {
    let mut cfg = ClusterConfig::smoke();
    cfg.jobs = 1;
    let one = run_cluster(&cfg).expect("cluster runs");
    cfg.jobs = 4;
    let four = run_cluster(&cfg).expect("cluster runs");
    assert_eq!(one, four, "outcome must not depend on --jobs");
    assert_eq!(one.jobs_completed, one.arrivals, "the run drains");
    assert!(one.makespan_ns > 0.0);
}

#[test]
fn outcome_is_identical_under_speculation_for_any_thread_count() {
    let mut cfg = ClusterConfig::smoke();
    cfg.straggler_rate = 0.2;
    cfg.speculation = true;
    cfg.jobs = 1;
    let one = run_cluster(&cfg).expect("cluster runs");
    cfg.jobs = 4;
    let four = run_cluster(&cfg).expect("cluster runs");
    assert_eq!(one, four);
}

#[test]
fn tracing_does_not_change_the_outcome() {
    let cfg = ClusterConfig::smoke();
    let untraced = run_cluster(&cfg).expect("cluster runs");
    let mut rec = Recorder::new();
    let traced = run_cluster_sunk(&cfg, &mut rec).expect("cluster runs");
    assert_eq!(untraced, traced, "the sink must be observation-only");
    assert!(rec.events() > 0, "the recorder saw the run");
}

#[test]
fn trace_carries_per_executor_lanes_and_task_spans() {
    let cfg = ClusterConfig::smoke();
    let mut rec = Recorder::new();
    let out = run_cluster_sunk(&cfg, &mut rec).expect("cluster runs");
    // Executor lanes are named lazily, only for executors that ran.
    let lanes = rec
        .process_names
        .iter()
        .filter(|(&pid, _)| pid >= telemetry::ids::CLUSTER_PID_BASE)
        .count();
    assert_eq!(lanes as u64, out.executors_used);
    assert!(rec.spans.iter().any(|s| s.name == "task.map"));
    assert!(rec.spans.iter().any(|s| s.name == "task.reduce"));
    assert!(rec.spans.iter().any(|s| s.name == "task.materialize"));
    assert!(rec.spans.iter().any(|s| s.name == "task.scan"));
    assert!(rec.instants.iter().any(|i| i.name == "job.arrival"));
    let trace = telemetry::chrome_trace(&rec);
    assert!(trace.contains("\"exec 0\""), "executor lanes reach the trace");
}
