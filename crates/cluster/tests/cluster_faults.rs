//! Recovery invariance: the fault domain may move time, never answers.
//!
//! Every scenario here injects some mix of executor crashes, node
//! failures, clean task failures, DU device failures, retries and
//! admission control — and checks that (a) every arrival reaches
//! exactly one terminal state, (b) completed jobs re-merged their exact
//! profile fold digest (the scheduler errors out otherwise, so `Ok` is
//! the assertion), (c) the fault ledger is internally consistent, and
//! (d) a zero-rate fault config is a byte-identical no-op.

use cluster::sched::run_cluster_sunk;
use cluster::{
    build_profiles, run_cluster, ClusterConfig, ClusterFaultConfig, ClusterOutcome, JobShape,
};
use store::Backend;
use telemetry::ids::T_FAIL;
use telemetry::Recorder;

fn faulted_smoke() -> ClusterConfig {
    let mut cfg = ClusterConfig::smoke();
    cfg.straggler_rate = 0.05;
    cfg.speculation = true;
    cfg.fault.exec_crash_rate = 0.05;
    cfg
}

fn assert_terminal_accounting(out: &ClusterOutcome) {
    assert_eq!(
        out.jobs_completed + out.jobs_shed + out.jobs_failed,
        out.arrivals,
        "every arrival must complete, shed, or fail"
    );
    assert_eq!(
        out.heartbeat_deaths + out.fetch_fail_deaths,
        out.exec_crashes,
        "every crash is declared dead exactly once"
    );
    assert_eq!(
        out.restarts, out.exec_crashes,
        "every declared death brings a replacement"
    );
}

#[test]
fn zero_rate_fault_config_is_byte_identical_noop() {
    let mut base = ClusterConfig::smoke();
    base.straggler_rate = 0.05;
    base.speculation = true;
    let fault_free = run_cluster(&base).expect("fault-free run");

    // Same run with the fault domain configured but every rate at zero
    // (and different detection/retry knobs, which must all be inert).
    let mut zeroed = base;
    zeroed.fault = ClusterFaultConfig {
        heartbeat_period_ns: 7_000.0,
        heartbeat_misses: 9,
        restart_ns: 1.0,
        blacklist_threshold: 1,
        blacklist_cooldown_ns: 1.0,
        job_retry_budget: 0,
        retry_backoff_ns: 1.0,
        ..ClusterFaultConfig::none()
    };
    assert!(!zeroed.fault.enabled());
    let zero_rate = run_cluster(&zeroed).expect("zero-rate run");
    assert_eq!(fault_free, zero_rate, "zero-rate fault config must be a no-op");
    assert_eq!(fault_free.exec_crashes, 0);
    assert_eq!(fault_free.jobs_failed, 0);
    assert_eq!(fault_free.jobs_completed, fault_free.arrivals);
}

#[test]
fn executor_crashes_recover_with_exact_folds() {
    let cfg = faulted_smoke();
    let out = run_cluster(&cfg).expect("folds must re-merge exactly despite crashes");
    assert_terminal_accounting(&out);
    assert!(out.exec_crashes > 0, "crash rate 0.05 must fire in the smoke run");
    assert!(out.jobs_completed > 0, "most jobs must still complete");
    assert!(
        out.crash_requeues + out.recomputes > 0,
        "kills and lost outputs must be re-enqueued"
    );
    assert!(out.wasted_ns > 0.0, "killed attempts represent thrown-away work");
    assert!(out.goodput() > 0.0 && out.goodput() <= 1.0);
}

#[test]
fn node_failures_crash_whole_nodes_and_recover() {
    let mut cfg = ClusterConfig::smoke();
    cfg.fault.node_fail_rate = 0.03;
    let out = run_cluster(&cfg).expect("node failures must not corrupt folds");
    assert_terminal_accounting(&out);
    assert!(out.node_crashes > 0, "node-failure rate must fire");
    assert!(
        out.exec_crashes >= out.node_crashes,
        "a node failure crashes at least its dispatching executor"
    );
}

#[test]
fn task_failures_retry_blacklist_and_rejoin() {
    let mut cfg = ClusterConfig::smoke();
    cfg.fault.task_fail_rate = 0.25;
    cfg.fault.blacklist_threshold = 2;
    let out = run_cluster(&cfg).expect("clean failures must not corrupt folds");
    assert_terminal_accounting(&out);
    assert!(out.task_failures > 0);
    assert!(out.task_retries > 0, "failed tasks must retry with backoff");
    assert!(out.blacklists > 0, "threshold 2 at rate 0.25 must blacklist someone");
    assert_eq!(
        out.blacklist_rejoins, out.blacklists,
        "with no crashes, every blacklisted executor rejoins"
    );
    assert!(out.recompute_share() > 0.0, "retried work books as recompute");
}

#[test]
fn du_device_failure_degrades_to_software_fallback() {
    let mut cfg = ClusterConfig::smoke();
    cfg.fault.du_fail_rate = 0.25;
    let healthy = run_cluster(&ClusterConfig::smoke()).expect("healthy run");
    let out = run_cluster(&cfg).expect("degraded decodes must reproduce exact folds");
    assert_terminal_accounting(&out);
    assert!(out.du_device_failures > 0, "DU-failure rate must fire");
    assert!(out.degraded_tasks > 0, "failed nodes must run degraded decodes");
    assert_eq!(
        out.jobs_completed, out.arrivals,
        "degradation alone never loses a job"
    );
    assert_eq!(
        out.fold_checksum, healthy.fold_checksum,
        "degraded runs complete the same jobs with the same answers"
    );
    // The degrade semantics live in the profile: Cereal tenants carry a
    // distinct software-fallback decode profile (for scans, the paper's
    // validate-vs-deserialize gap makes it strictly slower), everyone
    // else is untouched by DU failure.
    let profiles = build_profiles(&cfg).expect("profiles with fallback");
    for p in &profiles {
        let cereal = p.template.backend == Backend::Cereal;
        match &p.shape {
            JobShape::Scan { parts, .. } => {
                for part in parts {
                    if cereal {
                        assert!(part.fallback_read_ns > part.read_ns);
                    } else {
                        assert_eq!(part.fallback_read_ns, part.read_ns);
                    }
                }
            }
            JobShape::Shuffle { reduces, .. } => {
                for r in reduces {
                    if cereal {
                        assert_ne!(r.fallback_ns, r.service_ns);
                    } else {
                        assert_eq!(r.fallback_ns, r.service_ns);
                    }
                }
            }
        }
    }
}

#[test]
fn retry_exhaustion_fails_jobs_not_answers() {
    let mut cfg = ClusterConfig::smoke();
    cfg.fault.task_fail_rate = 0.5;
    cfg.fault.blacklist_threshold = 0;
    cfg.fault.job_retry_budget = 1;
    let out = run_cluster(&cfg).expect("exhaustion must abort, not corrupt");
    assert_terminal_accounting(&out);
    assert!(out.jobs_failed > 0, "a 1-retry budget at rate 0.5 must exhaust");
    assert!(out.jobs_completed < out.arrivals);
}

#[test]
fn admission_control_sheds_past_the_watermark() {
    let mut cfg = ClusterConfig::smoke();
    cfg.target_load = 4.0;
    cfg.fault.shed_queue_depth = 4;
    let out = run_cluster(&cfg).expect("shedding must not corrupt survivors");
    assert_terminal_accounting(&out);
    assert!(out.jobs_shed > 0, "4× overload past a depth-4 watermark must shed");
    assert!(out.jobs_completed > 0, "admitted jobs still complete");
    assert!(out.shed_rate() > 0.0 && out.shed_rate() < 1.0);
}

#[test]
fn combined_fault_storm_is_thread_count_invariant() {
    let mut cfg = faulted_smoke();
    cfg.fault.node_fail_rate = 0.01;
    cfg.fault.task_fail_rate = 0.1;
    cfg.fault.du_fail_rate = 0.1;
    cfg.fault.blacklist_threshold = 2;
    cfg.jobs = 1;
    let a = run_cluster(&cfg).expect("storm run, 1 thread");
    cfg.jobs = 4;
    let b = run_cluster(&cfg).expect("storm run, 4 threads");
    assert_eq!(a, b, "fault schedules must be independent of --jobs");
    assert_terminal_accounting(&a);
    assert!(a.exec_crashes > 0 && a.task_failures > 0 && a.du_device_failures > 0);
}

#[test]
fn traced_faulted_run_matches_untraced_and_books_fail_lanes() {
    let mut cfg = faulted_smoke();
    cfg.fault.task_fail_rate = 0.1;
    cfg.fault.blacklist_threshold = 2;
    let untraced = run_cluster(&cfg).expect("untraced faulted run");
    let mut rec = Recorder::new();
    let traced = run_cluster_sunk(&cfg, &mut rec).expect("traced faulted run");
    assert_eq!(untraced, traced, "tracing must never change an outcome");
    assert_eq!(rec.metrics.counter("cluster.exec_crashes"), traced.exec_crashes);
    assert_eq!(rec.metrics.counter("cluster.task_failures"), traced.task_failures);
    assert_eq!(
        rec.metrics.counter("cluster.heartbeat_deaths")
            + rec.metrics.counter("cluster.fetch_fail_deaths"),
        traced.exec_crashes
    );
    assert!(
        rec.instants.iter().any(|e| e.name == "exec.crash" && e.entity.tid == T_FAIL),
        "crashes must land on the T_FAIL lanes"
    );
    assert!(
        rec.spans.iter().any(|s| s.name == "fail.undetected" && s.entity.tid == T_FAIL),
        "the undetected window must be spanned on T_FAIL"
    );
}
