//! Scheduler behavior under contention: DU context sharing, tenant
//! skew, and queueing under overload.

use cluster::{run_cluster, ClusterConfig};

/// A configuration that keeps the cluster busy enough to contend for
/// everything: few executors per node, one DU context, high load.
fn contended_cfg() -> ClusterConfig {
    let mut cfg = ClusterConfig::smoke();
    cfg.executors = 16;
    cfg.executors_per_node = 8;
    cfg.du_contexts_per_node = 1;
    cfg.target_load = 1.5;
    cfg.job_arrivals = 32;
    cfg
}

#[test]
fn du_contexts_are_contended_and_more_of_them_helps() {
    let scarce = run_cluster(&contended_cfg()).expect("cluster runs");
    assert!(scarce.du_waits > 0, "one DU context per node must queue");
    assert!(scarce.du_wait_ns > 0.0);

    let mut plenty_cfg = contended_cfg();
    plenty_cfg.du_contexts_per_node = 8;
    let plenty = run_cluster(&plenty_cfg).expect("cluster runs");
    assert!(
        plenty.du_wait_ns < scarce.du_wait_ns,
        "8 DU contexts per node must wait less than 1: {} vs {}",
        plenty.du_wait_ns,
        scarce.du_wait_ns
    );
    // Contention moves time, never answers.
    assert_eq!(plenty.fold_checksum, scarce.fold_checksum);
    assert!(plenty.makespan_ns <= scarce.makespan_ns);
}

#[test]
fn tenant_skew_concentrates_completed_jobs() {
    let mut cfg = ClusterConfig::smoke();
    cfg.job_arrivals = 64;
    cfg.tenant_theta = 1.4;
    let out = run_cluster(&cfg).expect("cluster runs");
    let jobs: Vec<u64> = out.per_tenant.iter().map(|t| t.jobs).collect();
    assert_eq!(jobs.iter().sum::<u64>(), out.jobs_completed);
    let hottest = *jobs.iter().max().expect("tenants exist");
    let mean = out.jobs_completed as f64 / cfg.tenants as f64;
    assert!(
        hottest as f64 > 1.5 * mean,
        "theta 1.4 must concentrate jobs on a hot tenant: {jobs:?}"
    );
}

#[test]
fn overload_queues_attempts_and_never_oversubscribes_executors() {
    let mut cfg = ClusterConfig::smoke();
    cfg.executors = 8;
    cfg.executors_per_node = 8;
    cfg.target_load = 3.0;
    let out = run_cluster(&cfg).expect("cluster runs");
    assert!(out.max_queue_depth > 0, "overload must queue work");
    assert!(out.max_running <= cfg.executors as u64);
    assert!(out.executors_used <= cfg.executors as u64);
    assert_eq!(out.jobs_completed, out.arrivals, "the queue still drains");
}

#[test]
fn reduce_inputs_and_remote_scans_cross_the_fabric() {
    let out = run_cluster(&ClusterConfig::smoke()).expect("cluster runs");
    assert!(out.fabric_messages > 0, "shuffle fetches must use the fabric");
    assert!(out.fabric_bytes > 0);
    assert!(out.busy_ns > 0.0);
    let util = out.utilization(ClusterConfig::smoke().executors);
    assert!(util > 0.0 && util <= 1.0, "utilization {util} out of range");
}

#[test]
fn more_executors_do_not_hurt_the_makespan() {
    let mut cfg = ClusterConfig::smoke();
    cfg.executors = 16;
    let small = run_cluster(&cfg).expect("cluster runs");
    cfg.executors = 64;
    let big = run_cluster(&cfg).expect("cluster runs");
    // Arrival times differ (load calibration), so compare queueing
    // effects via mean sojourn instead of raw makespan.
    assert!(
        big.mean_latency_ns() <= small.mean_latency_ns(),
        "4x executors at equal load must not raise mean job latency: {} vs {}",
        big.mean_latency_ns(),
        small.mean_latency_ns()
    );
    assert_eq!(big.fold_checksum, small.fold_checksum);
}
