//! Speculative re-execution: it fires on straggling tasks, it helps,
//! and it never changes an answer.

use cluster::{run_cluster, ClusterConfig};

fn straggling_cfg() -> ClusterConfig {
    let mut cfg = ClusterConfig::smoke();
    cfg.straggler_rate = 0.15;
    cfg.straggler_factor = 8.0;
    cfg
}

#[test]
fn speculation_fires_and_wins_on_stragglers() {
    let mut cfg = straggling_cfg();
    cfg.speculation = true;
    let out = run_cluster(&cfg).expect("cluster runs");
    assert!(out.stragglers > 0, "the straggler model must fire at this rate");
    assert!(out.spec_launches > 0, "laggards must get speculative copies");
    assert!(out.spec_wins > 0, "8x stragglers must lose to nominal re-runs");
    assert!(out.spec_wins <= out.spec_launches);
    assert_eq!(out.jobs_completed, out.arrivals);
}

#[test]
fn speculative_winners_reproduce_the_fault_free_fold_exactly() {
    // The same arrivals with no stragglers and no speculation...
    let mut fault_free = ClusterConfig::smoke();
    fault_free.straggler_rate = 0.0;
    let clean = run_cluster(&fault_free).expect("cluster runs");
    // ...versus a straggler-riddled run rescued by speculation: time
    // moves, answers must not.
    let mut cfg = straggling_cfg();
    cfg.speculation = true;
    let spec = run_cluster(&cfg).expect("cluster runs");
    assert!(spec.spec_wins > 0, "some answers come from speculative attempts");
    assert_eq!(
        spec.fold_checksum, clean.fold_checksum,
        "first-completion-wins must preserve every job's fold bit for bit"
    );
}

#[test]
fn speculation_reduces_straggler_makespan_inflation() {
    let base = {
        let mut cfg = ClusterConfig::smoke();
        cfg.straggler_rate = 0.0;
        run_cluster(&cfg).expect("cluster runs")
    };
    let off = run_cluster(&straggling_cfg()).expect("cluster runs");
    let on = {
        let mut cfg = straggling_cfg();
        cfg.speculation = true;
        run_cluster(&cfg).expect("cluster runs")
    };
    assert!(
        off.makespan_ns > base.makespan_ns,
        "8x stragglers must inflate the makespan"
    );
    assert!(
        on.makespan_ns < off.makespan_ns,
        "speculation must claw back straggler inflation: on {} vs off {}",
        on.makespan_ns,
        off.makespan_ns
    );
}

#[test]
fn zero_rate_runs_never_speculate() {
    let mut cfg = ClusterConfig::smoke();
    cfg.straggler_rate = 0.0;
    cfg.speculation = true;
    let out = run_cluster(&cfg).expect("cluster runs");
    assert_eq!(out.stragglers, 0);
    assert_eq!(out.spec_launches, 0, "no laggards, no copies");
    assert_eq!(out.spec_wins, 0);
    // Speculation-on at rate 0 is byte-identical to speculation-off.
    cfg.speculation = false;
    assert_eq!(out, run_cluster(&cfg).expect("cluster runs"));
}
