//! Event-queue robustness properties, exercised with seeded random
//! interleavings: pops are globally time-ordered, equal f64 timestamps
//! preserve FIFO (insertion) order, lazily-cancelled entries never
//! break the ordering of the survivors, and follow-up chains (the
//! fault domain's detection → restart timers) always drain to an empty
//! queue.

use cluster::EventQueue;
use sdheap::rng::Rng;

/// Reference model: entries in push order, popped by `(t, push index)`.
struct Model {
    entries: Vec<(f64, bool)>, // (timestamp, still queued)
}

impl Model {
    fn expected_pop(&mut self) -> Option<(f64, usize)> {
        let mut best: Option<(f64, usize)> = None;
        for (i, &(t, live)) in self.entries.iter().enumerate() {
            if live && best.is_none_or(|(bt, _)| t < bt) {
                best = Some((t, i));
            }
        }
        if let Some((_, i)) = best {
            self.entries[i].1 = false;
        }
        best
    }
}

#[test]
fn seeded_interleavings_preserve_fifo_among_equal_timestamps() {
    for seed in 0..8u64 {
        let mut rng = Rng::new(0xE0E0_7E57 ^ seed);
        let mut q: EventQueue<usize> = EventQueue::new();
        let mut model = Model { entries: Vec::new() };
        // Timestamps drawn from a tiny palette, so ties are the common
        // case, interleaved with pops.
        let palette = [0.0, 1.0, 1.0, 2.5, 2.5, 2.5, 7.25];
        for _ in 0..400 {
            if rng.gen_bool(0.6) || q.is_empty() {
                let t = palette[rng.gen_range_usize(0, palette.len())];
                let id = model.entries.len();
                model.entries.push((t, true));
                q.push(t, id);
            } else {
                let (t, id) = q.pop().expect("non-empty");
                let (et, eid) = model.expected_pop().expect("model agrees non-empty");
                assert_eq!((t, id), (et, eid), "pop order must be (time, insertion)");
            }
        }
        while let Some((t, id)) = q.pop() {
            let (et, eid) = model.expected_pop().expect("model agrees non-empty");
            assert_eq!((t, id), (et, eid));
        }
        assert!(model.expected_pop().is_none(), "queue and model drain together");
        assert!(q.is_empty() && q.len() == 0);
    }
}

#[test]
fn lazy_cancellation_keeps_survivor_order_and_drains() {
    // The scheduler cancels queued attempts by flagging them and
    // skipping on pop; the queue itself must still hand everything
    // back, in order, until empty.
    for seed in 0..8u64 {
        let mut rng = Rng::new(0xCA9C_E11E ^ seed);
        let mut q: EventQueue<usize> = EventQueue::new();
        let mut cancelled: Vec<bool> = Vec::new();
        let mut times: Vec<f64> = Vec::new();
        for _ in 0..300 {
            let t = rng.gen_range_usize(0, 4) as f64;
            cancelled.push(false);
            times.push(t);
            q.push(t, cancelled.len() - 1);
        }
        // Cancel a random third after the fact.
        for _ in 0..100 {
            let id = rng.gen_range_usize(0, cancelled.len());
            cancelled[id] = true;
        }
        let mut seen: Vec<(f64, usize)> = Vec::new();
        while let Some((t, id)) = q.pop() {
            assert_eq!(t, times[id], "events come back with their timestamp");
            if !cancelled[id] {
                seen.push((t, id));
            }
        }
        assert!(q.is_empty(), "cancellation must not strand entries");
        assert_eq!(seen.len(), cancelled.iter().filter(|&&c| !c).count());
        // Survivors are non-decreasing in time, FIFO within a tie
        // (push order == id order here).
        for w in seen.windows(2) {
            assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1));
        }
    }
}

#[test]
fn follow_up_chains_always_drain() {
    // Detection → restart timer chains: popping an event may push a
    // bounded follow-up strictly later. The loop must terminate with an
    // empty queue — no leaked timers after the last event.
    for seed in 0..4u64 {
        let mut rng = Rng::new(0x7135_0FF ^ seed);
        let mut q: EventQueue<u32> = EventQueue::new();
        for i in 0..50 {
            q.push(rng.gen_f64() * 10.0, 3 + (i % 3));
        }
        let mut popped = 0u64;
        let mut last = f64::NEG_INFINITY;
        while let Some((t, hops_left)) = q.pop() {
            popped += 1;
            assert!(t >= last, "time must be monotone");
            last = t;
            if hops_left > 0 {
                q.push(t + 1.0 + rng.gen_f64(), hops_left - 1);
            }
        }
        assert!(q.is_empty());
        assert!(popped >= 50 * 4, "every chain ran to its end");
    }
}
