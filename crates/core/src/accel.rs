//! The accelerator top level: command queue, request scheduler, and the
//! SU/DU pools (paper Fig. 6).
//!
//! The host issues serialization/deserialization requests; the scheduler
//! hands each to the earliest-available unit of the right kind
//! (operation-level parallelism, §V-D). All units share the DRAM system,
//! so concurrent requests contend for channel bandwidth exactly as the
//! software baselines do.
//!
//! Every request is executed *functionally* (real bytes in, real bytes
//! out, verified by the round-trip tests) and *temporally* (the workload
//! descriptor is replayed through the unit timing models).

use sdheap::{Addr, Heap, KlassId, KlassRegistry};
use serializers::SerError;
use sim::Dram;
use telemetry::ids::DU_TID_BASE;
use telemetry::{EntityId, Sink, Span};

use crate::config::CerealConfig;
use crate::du::DeserializationUnit;
use crate::energy;
use crate::functional::{decode, encode};
use crate::su::{SerializationUnit, UnitRun};
use crate::tables::ClassTables;

/// Timed result of one serialization request.
#[derive(Clone, Debug)]
pub struct SerResult {
    /// The serialized stream bytes.
    pub bytes: Vec<u8>,
    /// Unit timing (or host-CPU timing when `fell_back`).
    pub run: UnitRun,
    /// Which SU executed the request (0 when `fell_back`).
    pub unit: usize,
    /// Whether the request fell back to software serialization because a
    /// shared object's header was reserved by another unit (§V-E).
    pub fell_back: bool,
}

/// Timing and placement of one serialization request, without the
/// stream bytes — what [`Accelerator::serialize_into`] returns after
/// writing the stream into the caller's arena.
#[derive(Clone, Copy, Debug)]
pub struct SerMeta {
    /// Encoded stream length in bytes.
    pub len: usize,
    /// Unit timing (or host-CPU timing when `fell_back`).
    pub run: UnitRun,
    /// Which SU executed the request (0 when `fell_back`).
    pub unit: usize,
    /// Whether the request fell back to software serialization.
    pub fell_back: bool,
}

/// Timed result of one deserialization request.
#[derive(Clone, Copy, Debug)]
pub struct DeResult {
    /// Root of the reconstructed graph.
    pub root: Addr,
    /// Unit timing.
    pub run: UnitRun,
    /// Which DU executed the request.
    pub unit: usize,
}

/// Aggregate report over everything the accelerator has executed since
/// construction (or the last [`Accelerator::reset_meters`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct AccelReport {
    /// Serialization requests completed.
    pub ser_requests: u64,
    /// Deserialization requests completed.
    pub de_requests: u64,
    /// Completion time of the last serialization request (ns).
    pub ser_makespan_ns: f64,
    /// Completion time of the last deserialization request (ns).
    pub de_makespan_ns: f64,
    /// Completion time over all requests (ns).
    pub makespan_ns: f64,
    /// Summed SU busy time (ns).
    pub su_busy_ns: f64,
    /// Summed DU busy time (ns).
    pub du_busy_ns: f64,
    /// Total DRAM bytes moved.
    pub dram_bytes: u64,
    /// Fraction of peak DRAM bandwidth used over the makespan.
    pub bandwidth_util: f64,
    /// Accelerator energy in microjoules (Table V model).
    pub energy_uj: f64,
}

/// The Cereal accelerator.
#[derive(Debug)]
pub struct Accelerator {
    cfg: CerealConfig,
    tables: ClassTables,
    dram: Dram,
    su: Vec<SerializationUnit>,
    du: Vec<DeserializationUnit>,
    su_free: Vec<f64>,
    du_free: Vec<f64>,
    serial_counter: u16,
    su_busy: f64,
    du_busy: f64,
    ser_requests: u64,
    de_requests: u64,
    ser_makespan: f64,
    de_makespan: f64,
}

impl Accelerator {
    /// An accelerator with the given configuration (`Initialize` in the
    /// paper's software interface).
    pub fn new(cfg: CerealConfig) -> Self {
        Accelerator {
            tables: ClassTables::new(cfg.max_classes),
            dram: Dram::new(cfg.dram),
            su: (0..cfg.num_su).map(|_| SerializationUnit::new(&cfg)).collect(),
            du: (0..cfg.num_du).map(|_| DeserializationUnit::new(&cfg)).collect(),
            su_free: vec![0.0; cfg.num_su],
            du_free: vec![0.0; cfg.num_du],
            serial_counter: 0,
            su_busy: 0.0,
            du_busy: 0.0,
            ser_requests: 0,
            de_requests: 0,
            ser_makespan: 0.0,
            de_makespan: 0.0,
            cfg,
        }
    }

    /// The Table I configuration.
    pub fn paper() -> Self {
        Accelerator::new(CerealConfig::paper())
    }

    /// The "Cereal Vanilla" ablation.
    pub fn vanilla() -> Self {
        Accelerator::new(CerealConfig::vanilla())
    }

    /// The active configuration.
    pub fn config(&self) -> &CerealConfig {
        &self.cfg
    }

    /// `RegisterClass(Class Type)`: makes one class serializable.
    ///
    /// # Errors
    /// [`SerError::Unsupported`] when the hardware table is full.
    pub fn register_class(&mut self, reg: &KlassRegistry, id: KlassId) -> Result<(), SerError> {
        self.tables.register(reg, id)
    }

    /// Registers every class of a registry.
    ///
    /// # Errors
    /// [`SerError::Unsupported`] when the hardware table is full.
    pub fn register_all(&mut self, reg: &KlassRegistry) -> Result<(), SerError> {
        self.tables.register_all(reg)
    }

    /// Number of classes registered with the hardware.
    pub fn registered_classes(&self) -> usize {
        self.tables.len()
    }

    fn next_counter(&mut self, heap: &mut Heap, reg: &KlassRegistry) -> u16 {
        if self.serial_counter == u16::MAX {
            // Counter about to overflow: the paper forces a GC, which
            // clears the per-object serialization metadata (§V-E).
            heap.gc_clear_serialization_metadata(reg);
            self.serial_counter = 0;
        }
        self.serial_counter += 1;
        self.serial_counter
    }

    /// Serializes the graph rooted at `root` (the `WriteObject` call):
    /// functional bytes plus unit timing.
    ///
    /// # Errors
    /// [`SerError`] for unregistered classes or the shared-object
    /// software-fallback case.
    pub fn serialize(
        &mut self,
        heap: &mut Heap,
        reg: &KlassRegistry,
        root: Addr,
    ) -> Result<SerResult, SerError> {
        let mut bytes = Vec::new();
        let meta = self.serialize_into(heap, reg, root, &mut bytes)?;
        Ok(SerResult {
            bytes,
            run: meta.run,
            unit: meta.unit,
            fell_back: meta.fell_back,
        })
    }

    /// Like [`Accelerator::serialize`], but encodes the stream into a
    /// caller-provided arena instead of allocating a fresh `Vec` per
    /// request. `out` is cleared first, so a reused arena amortizes its
    /// allocation across requests — the hot path for callers issuing
    /// many serializations in a loop (the shuffle and store services).
    /// Bytes and timing are identical to [`Accelerator::serialize`].
    ///
    /// # Errors
    /// [`SerError`] for unregistered classes or the shared-object
    /// software-fallback case.
    pub fn serialize_into(
        &mut self,
        heap: &mut Heap,
        reg: &KlassRegistry,
        root: Addr,
        out: &mut Vec<u8>,
    ) -> Result<SerMeta, SerError> {
        let counter = self.next_counter(heap, reg);
        // Pick the earliest-free SU.
        let unit = (0..self.cfg.num_su)
            .min_by(|&a, &b| self.su_free[a].partial_cmp(&self.su_free[b]).expect("no NaN"))
            .expect("num_su > 0");
        let outcome = encode(
            heap,
            reg,
            &self.tables,
            counter,
            unit as u8,
            self.cfg.strip_mark_words,
        )
        .run(root)?;
        let start = self.su_free[unit];
        let run = self.su[unit].run(&self.cfg, &outcome.workload, start, &mut self.dram);
        self.su_free[unit] = run.end_ns;
        self.su_busy += run.busy_ns();
        self.ser_requests += 1;
        self.ser_makespan = self.ser_makespan.max(run.end_ns);
        out.clear();
        outcome.stream.to_bytes_into(out);
        Ok(SerMeta {
            len: out.len(),
            run,
            unit,
            fell_back: false,
        })
    }

    /// [`Accelerator::serialize_into`] plus telemetry: emits one
    /// `su.serialize` span on `(pid, unit)` per request and the
    /// accelerator request/byte/busy metrics. With a no-op sink this is
    /// exactly `serialize_into`.
    ///
    /// # Errors
    /// [`SerError`] for unregistered classes or the shared-object
    /// software-fallback case.
    pub fn serialize_into_traced<S: Sink>(
        &mut self,
        heap: &mut Heap,
        reg: &KlassRegistry,
        root: Addr,
        out: &mut Vec<u8>,
        sink: &mut S,
        pid: u32,
    ) -> Result<SerMeta, SerError> {
        let meta = self.serialize_into(heap, reg, root, out)?;
        if S::ENABLED {
            let tid = meta.unit as u32;
            sink.name_process(pid, "cereal accelerator");
            sink.name_thread(pid, tid, &format!("SU {}", meta.unit));
            sink.span(Span {
                entity: EntityId { pid, tid },
                name: "su.serialize",
                t0_ns: meta.run.start_ns,
                t1_ns: meta.run.end_ns,
                attrs: vec![
                    ("stream_bytes", (meta.len as u64).into()),
                    ("read_bytes", meta.run.read_bytes.into()),
                    ("write_bytes", meta.run.write_bytes.into()),
                ],
            });
            sink.count("accel.ser_requests", 1);
            sink.count("accel.ser_bytes", meta.len as u64);
            sink.observe("accel.su_busy_ns", meta.run.busy_ns());
        }
        Ok(meta)
    }

    /// Like [`Accelerator::serialize`], but when the hardware path hits a
    /// shared object whose header another unit reserved, the request
    /// falls back to **software serialization** (§V-E): the same stream
    /// is produced with a thread-local visited table, timed on the host
    /// CPU model — "this can potentially reduce the performance benefits
    /// of the Cereal", exactly as the paper warns.
    ///
    /// # Errors
    /// [`SerError`] for errors other than the reservation conflict.
    pub fn serialize_with_fallback(
        &mut self,
        heap: &mut Heap,
        reg: &KlassRegistry,
        root: Addr,
    ) -> Result<SerResult, SerError> {
        match self.serialize(heap, reg, root) {
            Err(SerError::Unsupported(msg)) if msg.contains("reserved by another") => {
                let mut cpu = sim::Cpu::host();
                let stream = crate::functional::encode_software(
                    heap,
                    reg,
                    &self.tables,
                    self.cfg.strip_mark_words,
                    &mut cpu,
                )
                .run(root)?;
                let ns = cpu.report().ns;
                self.ser_requests += 1;
                Ok(SerResult {
                    bytes: stream.to_bytes(),
                    run: UnitRun {
                        start_ns: 0.0,
                        end_ns: ns,
                        read_bytes: cpu.report().dram_bytes,
                        write_bytes: 0,
                    },
                    unit: 0,
                    fell_back: true,
                })
            }
            other => other,
        }
    }

    /// Deserializes `bytes` into `dst` (the `ReadObject` call).
    ///
    /// # Errors
    /// [`SerError`] on malformed streams, unregistered class IDs, or heap
    /// exhaustion.
    pub fn deserialize(
        &mut self,
        bytes: &[u8],
        dst: &mut Heap,
    ) -> Result<DeResult, SerError> {
        let stream = sdformat::CerealStream::from_bytes(bytes)
            .map_err(|_| SerError::Malformed("undecodable Cereal stream"))?;
        let unit = (0..self.cfg.num_du)
            .min_by(|&a, &b| self.du_free[a].partial_cmp(&self.du_free[b]).expect("no NaN"))
            .expect("num_du > 0");
        let dst_base = dst.top_addr().get();
        let (root, workload) = decode(&stream, &self.tables, dst, self.cfg.strip_mark_words)?;
        let start = self.du_free[unit];
        let run = self.du[unit].run(&self.cfg, &workload, start, &mut self.dram, dst_base);
        self.du_free[unit] = run.end_ns;
        self.du_busy += run.busy_ns();
        self.de_requests += 1;
        self.de_makespan = self.de_makespan.max(run.end_ns);
        Ok(DeResult { root, run, unit })
    }

    /// [`Accelerator::deserialize`] plus telemetry: emits one
    /// `du.deserialize` span on `(pid, DU_TID_BASE + unit)` per request
    /// and the request/busy metrics. With a no-op sink this is exactly
    /// `deserialize`.
    ///
    /// # Errors
    /// [`SerError`] on malformed streams, unregistered class IDs, or heap
    /// exhaustion.
    pub fn deserialize_traced<S: Sink>(
        &mut self,
        bytes: &[u8],
        dst: &mut Heap,
        sink: &mut S,
        pid: u32,
    ) -> Result<DeResult, SerError> {
        let res = self.deserialize(bytes, dst)?;
        if S::ENABLED {
            let tid = DU_TID_BASE + res.unit as u32;
            sink.name_process(pid, "cereal accelerator");
            sink.name_thread(pid, tid, &format!("DU {}", res.unit));
            sink.span(Span {
                entity: EntityId { pid, tid },
                name: "du.deserialize",
                t0_ns: res.run.start_ns,
                t1_ns: res.run.end_ns,
                attrs: vec![
                    ("stream_bytes", (bytes.len() as u64).into()),
                    ("read_bytes", res.run.read_bytes.into()),
                    ("write_bytes", res.run.write_bytes.into()),
                ],
            });
            sink.count("accel.de_requests", 1);
            sink.count("accel.de_bytes", bytes.len() as u64);
            sink.observe("accel.du_busy_ns", res.run.busy_ns());
        }
        Ok(res)
    }

    /// Aggregate report since the last meter reset.
    pub fn report(&self) -> AccelReport {
        let makespan = self.ser_makespan.max(self.de_makespan);
        AccelReport {
            ser_requests: self.ser_requests,
            de_requests: self.de_requests,
            ser_makespan_ns: self.ser_makespan,
            de_makespan_ns: self.de_makespan,
            makespan_ns: makespan,
            su_busy_ns: self.su_busy,
            du_busy_ns: self.du_busy,
            dram_bytes: self.dram.total_bytes(),
            bandwidth_util: self.dram.utilization(makespan),
            energy_uj: energy::cereal_energy_uj(self.su_busy, self.du_busy, makespan),
        }
    }

    /// Resets all timing/traffic meters (unit availability, DRAM bytes,
    /// busy counters) while keeping registered classes.
    pub fn reset_meters(&mut self) {
        self.dram = Dram::new(self.cfg.dram);
        self.su = (0..self.cfg.num_su).map(|_| SerializationUnit::new(&self.cfg)).collect();
        self.du = (0..self.cfg.num_du).map(|_| DeserializationUnit::new(&self.cfg)).collect();
        self.su_free = vec![0.0; self.cfg.num_su];
        self.du_free = vec![0.0; self.cfg.num_du];
        self.su_busy = 0.0;
        self.du_busy = 0.0;
        self.ser_requests = 0;
        self.de_requests = 0;
        self.ser_makespan = 0.0;
        self.de_makespan = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdheap::builder::Init;
    use sdheap::{isomorphic, FieldKind, GraphBuilder, ValueType};

    fn list(n: usize) -> (Heap, KlassRegistry, Addr) {
        let mut b = GraphBuilder::new(1 << 22);
        let k = b.klass("L", vec![FieldKind::Value(ValueType::Long), FieldKind::Ref]);
        let mut head = b.object(k, &[Init::Val(0), Init::Null]).unwrap();
        for i in 1..n as u64 {
            head = b.object(k, &[Init::Val(i), Init::Ref(head)]).unwrap();
        }
        let (heap, reg) = b.finish();
        (heap, reg, head)
    }

    #[test]
    fn end_to_end_roundtrip_with_timing() {
        let (mut heap, reg, root) = list(500);
        let mut accel = Accelerator::paper();
        accel.register_all(&reg).unwrap();
        let ser = accel.serialize(&mut heap, &reg, root).unwrap();
        assert!(ser.run.busy_ns() > 0.0);
        let mut dst = Heap::with_base(Addr(0x2_0000_0000), 1 << 22);
        let de = accel.deserialize(&ser.bytes, &mut dst).unwrap();
        assert!(isomorphic(&heap, &reg, root, &dst, de.root));
        let r = accel.report();
        assert_eq!(r.ser_requests, 1);
        assert_eq!(r.de_requests, 1);
        assert!(r.energy_uj > 0.0);
        assert!(r.dram_bytes > 0);
    }

    #[test]
    fn requests_spread_across_units() {
        let (mut heap, reg, root) = list(100);
        let mut accel = Accelerator::paper();
        accel.register_all(&reg).unwrap();
        let mut units = std::collections::HashSet::new();
        for _ in 0..8 {
            let r = accel.serialize(&mut heap, &reg, root).unwrap();
            units.insert(r.unit);
        }
        assert_eq!(units.len(), 8, "8 requests occupy 8 distinct SUs");
    }

    #[test]
    fn eight_units_give_near_linear_throughput() {
        let (mut heap, reg, root) = list(2000);
        let mut accel = Accelerator::paper();
        accel.register_all(&reg).unwrap();
        // One request...
        accel.serialize(&mut heap, &reg, root).unwrap();
        let t1 = accel.report().ser_makespan_ns;
        accel.reset_meters();
        // ...vs eight concurrent ones.
        for _ in 0..8 {
            accel.serialize(&mut heap, &reg, root).unwrap();
        }
        let t8 = accel.report().ser_makespan_ns;
        let scaling = 8.0 * t1 / t8;
        assert!(
            scaling > 4.0,
            "8 units should give ≫1 throughput scaling, got {scaling}"
        );
    }

    #[test]
    fn unregistered_class_rejected() {
        let (mut heap, reg, root) = list(3);
        let mut accel = Accelerator::paper();
        // no register_all
        assert!(accel.serialize(&mut heap, &reg, root).is_err());
    }

    #[test]
    fn counter_wrap_forces_gc() {
        let (mut heap, reg, root) = list(2);
        let mut accel = Accelerator::paper();
        accel.register_all(&reg).unwrap();
        accel.serial_counter = u16::MAX;
        accel.serialize(&mut heap, &reg, root).unwrap();
        assert_eq!(accel.serial_counter, 1, "wrapped and restarted after GC");
    }

    #[test]
    fn software_fallback_produces_identical_stream() {
        let (mut heap, reg, root) = list(50);
        let mut accel = Accelerator::paper();
        accel.register_all(&reg).unwrap();
        // Hardware stream, for reference.
        let hw = accel.serialize(&mut heap, &reg, root).unwrap();
        assert!(!hw.fell_back);

        // Reserve a mid-list object for another unit at the *next*
        // counter value, forcing the fallback.
        let victim = heap.ref_field(root, 1).unwrap();
        heap.set_ext_word(
            victim,
            sdheap::ExtWord::new()
                .with_counter(accel.serial_counter + 1)
                .with_reserving_unit(5),
        );
        let err = accel.serialize(&mut heap, &reg, root).unwrap_err();
        assert!(matches!(err, SerError::Unsupported(_)));

        heap.set_ext_word(
            victim,
            sdheap::ExtWord::new()
                .with_counter(accel.serial_counter + 1)
                .with_reserving_unit(5),
        );
        let sw = accel.serialize_with_fallback(&mut heap, &reg, root).unwrap();
        assert!(sw.fell_back);
        assert_eq!(sw.bytes, hw.bytes, "fallback stream must be bit-identical");
        assert!(sw.run.busy_ns() > hw.run.busy_ns(), "software path is slower");

        // The fallback stream deserializes on the hardware as usual.
        let mut dst = Heap::with_base(Addr(0x2_0000_0000), 1 << 22);
        let de = accel.deserialize(&sw.bytes, &mut dst).unwrap();
        assert!(isomorphic(&heap, &reg, root, &dst, de.root));
    }

    #[test]
    fn fallback_not_taken_when_unreserved() {
        let (mut heap, reg, root) = list(10);
        let mut accel = Accelerator::paper();
        accel.register_all(&reg).unwrap();
        let r = accel.serialize_with_fallback(&mut heap, &reg, root).unwrap();
        assert!(!r.fell_back);
    }

    #[test]
    fn serialize_into_matches_serialize() {
        let (mut heap, reg, root) = list(100);
        let mut a = Accelerator::paper();
        let mut b = Accelerator::paper();
        a.register_all(&reg).unwrap();
        b.register_all(&reg).unwrap();
        // Two passes (not interleaved calls: both accelerators would use
        // the same counter values, and a's visit marks would read as b's
        // revisits). Counter mismatch across passes forces fresh visits.
        let owned: Vec<_> =
            (0..3).map(|_| a.serialize(&mut heap, &reg, root).unwrap()).collect();
        // Stale contents in the arena must not leak into the stream.
        let mut arena = vec![0xAAu8; 64];
        for owned in &owned {
            let meta = b.serialize_into(&mut heap, &reg, root, &mut arena).unwrap();
            assert_eq!(arena, owned.bytes);
            assert_eq!(meta.len, owned.bytes.len());
            assert_eq!(meta.unit, owned.unit);
            assert_eq!(meta.run.start_ns.to_bits(), owned.run.start_ns.to_bits());
            assert_eq!(meta.run.end_ns.to_bits(), owned.run.end_ns.to_bits());
            assert!(!meta.fell_back);
        }
        assert_eq!(a.report().ser_requests, b.report().ser_requests);
    }

    #[test]
    fn traced_paths_match_untraced_and_record_unit_spans() {
        use telemetry::{NoopSink, Recorder};
        // Two identical heaps: sharing one would make the first pass's
        // visit marks read as the second accelerator's revisits (the
        // counter-collision noted in serialize_into_matches_serialize).
        let (mut heap, reg, root) = list(100);
        let (mut heap_t, reg_t, root_t) = list(100);
        let mut plain = Accelerator::paper();
        let mut traced = Accelerator::paper();
        plain.register_all(&reg).unwrap();
        traced.register_all(&reg_t).unwrap();

        let mut rec = Recorder::new();
        let mut buf_a = Vec::new();
        let mut buf_b = Vec::new();
        let a = plain.serialize_into(&mut heap, &reg, root, &mut buf_a).unwrap();
        let b = traced
            .serialize_into_traced(&mut heap_t, &reg_t, root_t, &mut buf_b, &mut rec, 900)
            .unwrap();
        // Identical bytes and bit-identical timing: tracing observes, it
        // never perturbs.
        assert_eq!(buf_a, buf_b);
        assert_eq!(a.run.end_ns.to_bits(), b.run.end_ns.to_bits());
        assert_eq!(rec.spans.len(), 1);
        assert_eq!(rec.spans[0].name, "su.serialize");
        assert_eq!(rec.spans[0].entity.pid, 900);
        assert_eq!(rec.metrics.counter("accel.ser_bytes"), buf_b.len() as u64);

        let mut dst_a = Heap::with_base(Addr(0x2_0000_0000), 1 << 22);
        let mut dst_b = Heap::with_base(Addr(0x2_0000_0000), 1 << 22);
        let da = plain.deserialize(&buf_a, &mut dst_a).unwrap();
        let db = traced
            .deserialize_traced(&buf_b, &mut dst_b, &mut rec, 900)
            .unwrap();
        assert_eq!(da.run.end_ns.to_bits(), db.run.end_ns.to_bits());
        assert_eq!(rec.spans[1].name, "du.deserialize");
        assert_eq!(rec.spans[1].entity.tid, telemetry::ids::DU_TID_BASE);
        assert_eq!(rec.metrics.counter("accel.de_requests"), 1);

        // The no-op sink compiles through the same call.
        let mut noop = NoopSink;
        let mut buf_c = Vec::new();
        traced
            .serialize_into_traced(&mut heap_t, &reg_t, root_t, &mut buf_c, &mut noop, 900)
            .unwrap();
        assert_eq!(buf_c, buf_a);
    }

    #[test]
    fn report_meters_reset() {
        let (mut heap, reg, root) = list(10);
        let mut accel = Accelerator::paper();
        accel.register_all(&reg).unwrap();
        accel.serialize(&mut heap, &reg, root).unwrap();
        accel.reset_meters();
        let r = accel.report();
        assert_eq!(r.ser_requests, 0);
        assert_eq!(r.dram_bytes, 0);
        assert_eq!(accel.registered_classes(), 1, "classes survive reset");
    }
}
