//! Architectural parameters of the Cereal accelerator (paper Table I and
//! §V-E), plus the knobs for the paper's own ablation ("Cereal Vanilla").

use sim::{DramConfig, MaiConfig, TlbConfig};

/// Full accelerator configuration.
#[derive(Clone, Copy, Debug)]
pub struct CerealConfig {
    /// Number of serialization units.
    pub num_su: usize,
    /// Number of deserialization units.
    pub num_du: usize,
    /// Block reconstructors per DU (paper: four).
    pub reconstructors_per_du: usize,
    /// Accelerator clock in GHz. The paper synthesizes at 40 nm but does
    /// not state a clock; 1 GHz is assumed (documented in DESIGN.md) and
    /// only scales the non-memory latencies.
    pub clock_ghz: f64,
    /// Maximum registered classes (Klass Pointer Table / Class ID Table
    /// capacity, §V-E: 4 K entries).
    pub max_classes: usize,
    /// MAI geometry (Table I: 64 entries, 32 B blocks).
    pub mai: MaiConfig,
    /// TLB geometry (Table I: 128 entries, 1 GB pages).
    pub tlb: TlbConfig,
    /// DRAM system shared with the host (Table I).
    pub dram: DramConfig,
    /// Header-manager processing time per traversal step, in cycles.
    pub hm_step_cycles: u32,
    /// Block-reconstructor occupancy per 64 B block, in cycles.
    pub reconstruct_cycles: u32,
    /// Block-manager dispatch time per block, in cycles.
    pub dispatch_cycles: u32,
    /// Per-stream eager-prefetch buffer in the DU, in bytes.
    pub prefetch_buffer_bytes: u64,
    /// Header-prefetch lookahead of the SU's work queue, in objects.
    pub su_lookahead: usize,
    /// Extra latency per heap access for cache-coherence `get` messages
    /// (§V-E: Cereal participates in the on-chip coherence domain to
    /// fetch up-to-date copies; the pipeline tolerates the added
    /// latency). In nanoseconds.
    pub coherence_ns: f64,
    /// Strip mark words from the value array (Fig. 16's "Header Strip").
    pub strip_mark_words: bool,
    /// The paper's ablation: disable pipelining in the SU and use a single
    /// block reconstructor per DU ("Cereal Vanilla", Fig. 10). Operation-
    /// level parallelism across units remains.
    pub vanilla: bool,
}

impl Default for CerealConfig {
    fn default() -> Self {
        CerealConfig {
            num_su: 8,
            num_du: 8,
            reconstructors_per_du: 4,
            clock_ghz: 1.0,
            max_classes: 4096,
            mai: MaiConfig::default(),
            tlb: TlbConfig::default(),
            dram: DramConfig::default(),
            hm_step_cycles: 1,
            reconstruct_cycles: 8,
            dispatch_cycles: 1,
            prefetch_buffer_bytes: 4096,
            su_lookahead: 8,
            coherence_ns: 10.0,
            strip_mark_words: false,
            vanilla: false,
        }
    }
}

impl CerealConfig {
    /// The evaluation configuration (Table I).
    pub fn paper() -> Self {
        Self::default()
    }

    /// The "Cereal Vanilla" ablation: no fine-grained parallelism, only
    /// operation-level parallelism across units.
    pub fn vanilla() -> Self {
        CerealConfig {
            vanilla: true,
            reconstructors_per_du: 1,
            ..Self::default()
        }
    }

    /// Nanoseconds per accelerator cycle.
    pub fn cycle_ns(&self) -> f64 {
        1.0 / self.clock_ghz
    }

    /// Effective reconstructors per DU under the current ablation.
    pub fn effective_reconstructors(&self) -> usize {
        if self.vanilla {
            1
        } else {
            self.reconstructors_per_du
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table1() {
        let c = CerealConfig::paper();
        assert_eq!(c.num_su, 8);
        assert_eq!(c.num_du, 8);
        assert_eq!(c.reconstructors_per_du, 4);
        assert_eq!(c.mai.entries, 64);
        assert_eq!(c.mai.block_bytes, 32);
        assert_eq!(c.tlb.entries, 128);
        assert_eq!(c.max_classes, 4096);
        assert!((c.dram.peak_bytes_per_ns() - 76.8).abs() < 1e-9);
    }

    #[test]
    fn vanilla_disables_fine_grained_parallelism() {
        let v = CerealConfig::vanilla();
        assert!(v.vanilla);
        assert_eq!(v.effective_reconstructors(), 1);
        assert_eq!(CerealConfig::paper().effective_reconstructors(), 4);
    }

    #[test]
    fn cycle_time() {
        assert!((CerealConfig::paper().cycle_ns() - 1.0).abs() < 1e-12);
    }
}
