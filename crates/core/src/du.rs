//! Deserialization Unit timing model (paper §V-C, Fig. 8).
//!
//! Replays a [`DeWorkload`](crate::functional::DeWorkload):
//!
//! * the **layout manager**'s bitmap loader and the **block manager**'s
//!   value/reference loaders are *eager prefetchers*: each streams its
//!   section of the serialized input sequentially, as far ahead as its
//!   internal buffer allows ([`StreamPrefetcher`]);
//! * the block manager dispatches one 64 B block per `dispatch_cycles`
//!   once the block's bitmap chunk, values and references are all
//!   buffered — the per-block value/reference counts come straight from
//!   the unpacked bitmap, exactly as in the paper;
//! * each **block reconstructor** holds a block for `reconstruct_cycles`
//!   (scan the 8-bit bitmap, place values/references, translate a class
//!   ID through the Class ID Table) and then writes the 64 B result to
//!   its destination; with `vanilla = true` a single reconstructor
//!   serializes everything (Fig. 10's ablation).
//!
//! Because all three input streams and the output stream are sequential,
//! the DU's throughput is bandwidth- rather than latency-bound — the
//! design property behind Cereal's much larger deserialization speedups.

use crate::config::CerealConfig;
use crate::functional::DeWorkload;
use crate::su::UnitRun;
use serializers::IN_STREAM_BASE;
use sim::{Dram, Mai, Tlb};

/// An eager sequential prefetcher over one section of the input stream.
///
/// Issues 64 B fetches as far ahead as its internal buffer allows and
/// answers "when are the next `n` bytes available?" for its consumer.
#[derive(Clone, Debug, Default)]
pub struct StreamPrefetcher {
    base: u64,
    total: u64,
    fetched: u64,
    consumed: u64,
    buffer: u64,
    /// (end offset, completion time) of in-buffer chunks, fetch order.
    chunks: std::collections::VecDeque<(u64, f64)>,
    /// Completion of the latest chunk already consumed past.
    consumed_ready: f64,
}

impl StreamPrefetcher {
    /// A prefetcher over `[base, base+total)` with `buffer` bytes of
    /// run-ahead.
    pub fn new(base: u64, total: u64, buffer: u64) -> Self {
        let mut p = StreamPrefetcher::default();
        p.reset(base, total, buffer);
        p
    }

    /// Re-arms the prefetcher for a new stream section, keeping the
    /// chunk-queue allocation. Timing state is fully cleared; only the
    /// backing storage is reused across requests.
    pub fn reset(&mut self, base: u64, total: u64, buffer: u64) {
        self.base = base;
        self.total = total;
        self.fetched = 0;
        self.consumed = 0;
        self.buffer = buffer.max(64);
        self.chunks.clear();
        self.consumed_ready = 0.0;
    }

    /// Issues fetches allowed by the buffer at time `now`.
    fn pump(&mut self, mai: &mut Mai, dram: &mut Dram, now: f64) {
        let limit = (self.consumed + self.buffer).min(self.total);
        while self.fetched < limit {
            let chunk = (limit - self.fetched).min(64);
            let done = mai.read(dram, self.base + self.fetched, chunk, now);
            self.fetched += chunk;
            self.chunks.push_back((self.fetched, done));
        }
    }

    /// Bytes consumed so far.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Consumes `bytes`, returning when they are available at time `now`.
    pub fn consume(&mut self, mai: &mut Mai, dram: &mut Dram, bytes: u64, now: f64) -> f64 {
        debug_assert!(self.consumed + bytes <= self.total, "prefetcher overrun");
        self.pump(mai, dram, now);
        self.consumed += bytes;
        while let Some(&(end, done)) = self.chunks.front() {
            if end <= self.consumed {
                self.consumed_ready = self.consumed_ready.max(done);
                self.chunks.pop_front();
            } else {
                // The needed bytes end inside this chunk: wait for it too.
                if bytes > 0 {
                    self.consumed_ready = self.consumed_ready.max(done);
                }
                break;
            }
        }
        // Refill the freed buffer space eagerly.
        self.pump(mai, dram, now);
        self.consumed_ready.max(now)
    }
}

/// One deserialization unit.
#[derive(Debug, Default)]
pub struct DeserializationUnit {
    mai: Mai,
    tlb: Tlb,
    /// Per-request structures reused across requests (the SU's
    /// `scratch_commit`/`scratch_header_done` treatment): the
    /// reconstructor-pool free times and the three stream prefetchers
    /// with their chunk queues. Purely an allocation-churn optimization —
    /// timing is unaffected.
    scratch_recon_free: Vec<f64>,
    values: StreamPrefetcher,
    refs: StreamPrefetcher,
    bitmaps: StreamPrefetcher,
}

impl DeserializationUnit {
    /// A unit configured per `cfg`.
    pub fn new(cfg: &CerealConfig) -> Self {
        DeserializationUnit {
            mai: Mai::new(cfg.mai),
            tlb: Tlb::new(cfg.tlb),
            ..DeserializationUnit::default()
        }
    }

    /// Replays `workload` starting at `start_ns` against the shared DRAM.
    pub fn run(
        &mut self,
        cfg: &CerealConfig,
        workload: &DeWorkload,
        start_ns: f64,
        dram: &mut Dram,
        dst_base: u64,
    ) -> UnitRun {
        let cyc = cfg.cycle_ns();
        let dispatch_ns = f64::from(cfg.dispatch_cycles) * cyc;
        let recon_ns = f64::from(cfg.reconstruct_cycles) * cyc;
        let nrecon = cfg.effective_reconstructors();

        let bytes_before = dram.total_bytes();
        let mut reads = 0u64;
        let mut writes = 0u64;

        if workload.image_bytes == 0 {
            return UnitRun {
                start_ns,
                end_ns: start_ns,
                read_bytes: 0,
                write_bytes: 0,
            };
        }

        // Section layout within the input stream (header, then sections).
        // The prefetchers are re-armed in place, reusing their chunk
        // queues across requests.
        let v_base = IN_STREAM_BASE + 64;
        let r_base = v_base + workload.value_bytes;
        let b_base = r_base + workload.ref_bytes;
        self.values
            .reset(v_base, workload.value_bytes, cfg.prefetch_buffer_bytes);
        self.refs
            .reset(r_base, workload.ref_bytes, cfg.prefetch_buffer_bytes);
        self.bitmaps
            .reset(b_base, workload.bitmap_bytes, cfg.prefetch_buffer_bytes);

        // Average packed-reference item size (the loader consumes whole
        // items; we apportion bytes uniformly).
        let ref_bytes_per_item = if workload.ref_count == 0 {
            0.0
        } else {
            workload.ref_bytes as f64 / workload.ref_count as f64
        };

        // Reconstructor pool: next-free times, in a buffer reused across
        // requests.
        let mut recon_free = std::mem::take(&mut self.scratch_recon_free);
        recon_free.clear();
        recon_free.resize(nrecon, start_ns);
        let mut dispatch_tail = start_ns;
        let mut end = start_ns;
        let mut ref_bytes_consumed = 0.0f64;
        let mut ref_items_consumed = 0u64;

        for (bi, counts) in workload.per_block.iter().enumerate() {
            let now = dispatch_tail;
            // Layout manager: 1 bitmap byte covers one 64 B block.
            let bm_ready = self.bitmaps.consume(&mut self.mai, dram, 1, now);
            reads += 1;
            // Value loader: `values` words of 8 B. Under header stripping
            // mark words are regenerated in the reconstructor rather than
            // fetched, so consumption is clamped to the stream's content.
            let v_take = (u64::from(counts.values) * 8)
                .min(workload.value_bytes - self.values.consumed());
            let v_ready = self.values.consume(&mut self.mai, dram, v_take, now);
            // Reference loader: whole packed items.
            ref_items_consumed += u64::from(counts.refs);
            let target = ref_items_consumed as f64 * ref_bytes_per_item;
            let take = (target - ref_bytes_consumed).max(0.0).round() as u64;
            let take = take.min(workload.ref_bytes.saturating_sub(self.refs.consumed));
            ref_bytes_consumed += take as f64;
            let r_ready = self.refs.consume(&mut self.mai, dram, take, now);

            // Block manager dispatch: serial, one block per dispatch slot,
            // once all three inputs are buffered.
            let ready = bm_ready.max(v_ready).max(r_ready).max(dispatch_tail);
            dispatch_tail = ready + dispatch_ns;

            // Pick the earliest-free reconstructor.
            let (slot, _) = recon_free
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
                .expect("nrecon > 0");
            let begin = dispatch_tail.max(recon_free[slot]);
            let done = begin + recon_ns;
            // Output write of the reconstructed 64 B block.
            let dst = dst_base + bi as u64 * 64;
            let wdone = self
                .mai
                .write(dram, dst, 64, done + self.tlb.translate(dst));
            writes += 1;
            recon_free[slot] = done;
            end = end.max(wdone);
        }

        self.scratch_recon_free = recon_free;
        let moved = dram.total_bytes() - bytes_before;
        let txns = (reads + writes).max(1);
        UnitRun {
            start_ns,
            end_ns: end.max(dispatch_tail),
            read_bytes: moved * reads / txns,
            write_bytes: moved * writes / txns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdformat::layout::LayoutCounts;

    fn synthetic_workload(image_bytes: u64, ref_fraction: f64) -> DeWorkload {
        let words = image_bytes / 8;
        let blocks = image_bytes.div_ceil(64) as usize;
        let mut per_block = Vec::with_capacity(blocks);
        let mut refs_total = 0u64;
        let mut remaining = words;
        for _ in 0..blocks {
            let w = remaining.min(8) as u32;
            remaining -= u64::from(w);
            let r = (f64::from(w) * ref_fraction).round() as u32;
            refs_total += u64::from(r);
            per_block.push(LayoutCounts {
                values: w - r,
                refs: r,
            });
        }
        let value_bytes = (words - refs_total) * 8;
        DeWorkload {
            image_bytes,
            object_count: image_bytes / 48,
            value_bytes,
            ref_bytes: refs_total * 2, // ~2 packed bytes per reference
            ref_count: refs_total,
            bitmap_bytes: blocks as u64,
            per_block,
        }
    }

    #[test]
    fn streaming_deserialization_approaches_bandwidth() {
        let cfg = CerealConfig::paper();
        let mut dram = Dram::new(cfg.dram);
        let mut du = DeserializationUnit::new(&cfg);
        let w = synthetic_workload(4 << 20, 0.1); // 4 MB image
        let run = du.run(&cfg, &w, 0.0, &mut dram, 0x9_0000_0000);
        let gbps = dram.total_bytes() as f64 / run.busy_ns();
        // A single DU must reach multi-GB/s (sequential streams), but stay
        // under the 76.8 GB/s aggregate peak.
        assert!(gbps > 4.0, "single-DU bandwidth {gbps} GB/s too low");
        assert!(gbps < 76.8);
    }

    #[test]
    fn vanilla_single_reconstructor_is_slower() {
        let cfg = CerealConfig::paper();
        let vcfg = CerealConfig::vanilla();
        let w = synthetic_workload(1 << 20, 0.1);
        let mut d1 = Dram::new(cfg.dram);
        let mut d2 = Dram::new(vcfg.dram);
        let t = DeserializationUnit::new(&cfg)
            .run(&cfg, &w, 0.0, &mut d1, 0x9_0000_0000)
            .busy_ns();
        let tv = DeserializationUnit::new(&vcfg)
            .run(&vcfg, &w, 0.0, &mut d2, 0x9_0000_0000)
            .busy_ns();
        assert!(tv > t * 1.5, "vanilla {tv} ns vs pipelined {t} ns");
    }

    #[test]
    fn per_block_dispatch_is_serial() {
        // With enormous reconstruct time, total ≈ blocks × reconstruct /
        // nrecon: the pool parallelism shows through.
        let mut cfg = CerealConfig::paper();
        cfg.reconstruct_cycles = 400;
        let w = synthetic_workload(64 * 1000, 0.0); // 1000 blocks
        let mut dram = Dram::new(cfg.dram);
        let t = DeserializationUnit::new(&cfg)
            .run(&cfg, &w, 0.0, &mut dram, 0x9_0000_0000)
            .busy_ns();
        let serial_estimate = 1000.0 * 400.0;
        assert!(
            t < serial_estimate / 2.0,
            "4 reconstructors should cut the serial {serial_estimate} ns to ~1/4, got {t}"
        );
        assert!(t > serial_estimate / 8.0);
    }

    #[test]
    fn empty_image_is_instant() {
        let cfg = CerealConfig::paper();
        let mut dram = Dram::new(cfg.dram);
        let run = DeserializationUnit::new(&cfg).run(
            &cfg,
            &DeWorkload::default(),
            7.0,
            &mut dram,
            0x9_0000_0000,
        );
        assert_eq!(run.start_ns, 7.0);
        assert_eq!(run.end_ns, 7.0);
    }

    #[test]
    fn traffic_scales_with_image() {
        let cfg = CerealConfig::paper();
        let mut dram = Dram::new(cfg.dram);
        let w = synthetic_workload(1 << 20, 0.1);
        let run = DeserializationUnit::new(&cfg).run(&cfg, &w, 0.0, &mut dram, 0x9_0000_0000);
        let total = run.read_bytes + run.write_bytes;
        // Roughly: read the stream (~0.9 MB values + refs + bitmaps) and
        // write the 1 MB image.
        assert!(total as f64 > 1.5 * (1 << 20) as f64, "total {total}");
        assert!((run.write_bytes as f64) > 0.8 * (1 << 20) as f64);
    }
}
