//! Area, power and energy model (paper Table V, §VI-E).
//!
//! The paper synthesizes Cereal's Chisel RTL with a TSMC 40 nm library;
//! Table V's per-module area and power numbers are reproduced here as the
//! calibrated ground truth (re-synthesis is out of scope — see
//! DESIGN.md's substitution table). Energy is power × busy time for the
//! unit-level modules plus the system-wide components over the whole
//! interval, against a 140 W TDP host CPU for the comparisons of
//! Fig. 17.

/// One row of Table V.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModuleSpec {
    /// Module name as printed in the paper.
    pub name: &'static str,
    /// Area of one instance in mm² (40 nm).
    pub area_mm2: f64,
    /// Average power of one instance in mW.
    pub power_mw: f64,
    /// Instance count in the evaluated configuration.
    pub count: u32,
    /// Which group the module belongs to.
    pub group: ModuleGroup,
}

/// Module grouping for busy-time attribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModuleGroup {
    /// Part of a serialization unit: powered while SUs are busy.
    Serializer,
    /// Part of a deserialization unit: powered while DUs are busy.
    Deserializer,
    /// System-wide (TLB, MAI, tables): powered for the whole interval.
    System,
}

/// Host CPU thermal design power in watts (i7-7820X).
pub const HOST_TDP_W: f64 = 140.0;
/// Host CPU die area in mm² (14 nm; paper §VI-E).
pub const HOST_DIE_MM2: f64 = 2362.5;

/// The full Table V inventory.
pub fn table_v() -> Vec<ModuleSpec> {
    use ModuleGroup::*;
    vec![
        ModuleSpec { name: "Header manager", area_mm2: 0.003, power_mw: 1.3, count: 8, group: Serializer },
        ModuleSpec { name: "Reference array writer", area_mm2: 0.013, power_mw: 5.8, count: 8, group: Serializer },
        ModuleSpec { name: "Object metadata manager", area_mm2: 0.014, power_mw: 7.6, count: 8, group: Serializer },
        ModuleSpec { name: "Object handler", area_mm2: 0.028, power_mw: 18.4, count: 8, group: Serializer },
        ModuleSpec { name: "Layout manager", area_mm2: 0.020, power_mw: 10.9, count: 8, group: Deserializer },
        ModuleSpec { name: "Block manager", area_mm2: 0.217, power_mw: 81.1, count: 8, group: Deserializer },
        ModuleSpec { name: "Block reconstructor", area_mm2: 0.011, power_mw: 6.9, count: 32, group: Deserializer },
        ModuleSpec { name: "TLB", area_mm2: 0.282, power_mw: 2.7, count: 1, group: System },
        ModuleSpec { name: "MAI", area_mm2: 0.161, power_mw: 0.8, count: 1, group: System },
        ModuleSpec { name: "Class ID Table (2KB)", area_mm2: 0.230, power_mw: 1.2, count: 1, group: System },
        ModuleSpec { name: "Klass Pointer Table (4KB)", area_mm2: 0.472, power_mw: 5.3, count: 1, group: System },
    ]
}

/// Total area of a group in mm².
pub fn group_area_mm2(group: ModuleGroup) -> f64 {
    table_v()
        .iter()
        .filter(|m| m.group == group)
        .map(|m| m.area_mm2 * f64::from(m.count))
        .sum()
}

/// Total power of a group in mW.
pub fn group_power_mw(group: ModuleGroup) -> f64 {
    table_v()
        .iter()
        .filter(|m| m.group == group)
        .map(|m| m.power_mw * f64::from(m.count))
        .sum()
}

/// Total accelerator area in mm² (paper: 3.857 mm²).
pub fn total_area_mm2() -> f64 {
    group_area_mm2(ModuleGroup::Serializer)
        + group_area_mm2(ModuleGroup::Deserializer)
        + group_area_mm2(ModuleGroup::System)
}

/// Total average power in mW (paper: 1231.6 mW).
pub fn total_power_mw() -> f64 {
    group_power_mw(ModuleGroup::Serializer)
        + group_power_mw(ModuleGroup::Deserializer)
        + group_power_mw(ModuleGroup::System)
}

/// Energy in microjoules for an operation interval of `elapsed_ns`.
///
/// The whole accelerator is charged its Table V average power for the
/// full interval — the conservative accounting (no clock gating of idle
/// units), consistent with Table V reporting *average* per-module power.
/// `su_busy_ns`/`du_busy_ns` (summed per-unit busy times) are accepted
/// for finer-grained studies but the default model charges everything.
pub fn cereal_energy_uj(su_busy_ns: f64, du_busy_ns: f64, elapsed_ns: f64) -> f64 {
    let _ = (su_busy_ns, du_busy_ns);
    total_power_mw() * elapsed_ns * 1e-6 // mW·ns → µJ
}

/// Energy in microjoules for `elapsed_ns` of host-CPU execution at TDP —
/// the accounting the paper uses for the software serializers.
pub fn cpu_energy_uj(elapsed_ns: f64) -> f64 {
    HOST_TDP_W * 1e3 * elapsed_ns * 1e-6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_table_v() {
        assert!((total_area_mm2() - 3.857).abs() < 0.01, "{}", total_area_mm2());
        assert!((total_power_mw() - 1231.6).abs() < 0.5, "{}", total_power_mw());
        assert!((group_area_mm2(ModuleGroup::Serializer) - 0.464).abs() < 1e-9);
        assert!((group_power_mw(ModuleGroup::Serializer) - 264.8).abs() < 1e-9);
        assert!((group_area_mm2(ModuleGroup::Deserializer) - 2.248).abs() < 1e-9);
        assert!((group_power_mw(ModuleGroup::Deserializer) - 956.8).abs() < 1e-9);
    }

    #[test]
    fn accelerator_is_hundreds_of_times_smaller_than_host() {
        let ratio = HOST_DIE_MM2 / total_area_mm2();
        assert!(ratio > 600.0 && ratio < 625.0, "paper: 612.5×, got {ratio}");
    }

    #[test]
    fn energy_accounting() {
        // 1 ms of accelerator operation: 1231.6 mW × 1 ms = 1231.6 µJ.
        let e = cereal_energy_uj(8.0 * 1e6, 0.0, 1e6);
        assert!((e - 1231.6).abs() < 0.1, "{e}");
        // The host at TDP for the same millisecond: 140 mJ — 113.7× more.
        let host = cpu_energy_uj(1e6);
        assert!((host / e - 113.7).abs() < 0.5, "{}", host / e);
    }

    #[test]
    fn cpu_energy_is_tdp_times_time() {
        assert!((cpu_energy_uj(1e9) - 140.0e6).abs() < 1.0); // 1 s → 140 J = 140e6 µJ
    }
}
