//! Functional model of Cereal's serialization and deserialization
//! (paper §IV + §V-B/§V-C data paths, minus timing).
//!
//! [`encode`] performs exactly what the serialization unit does:
//!
//! 1. the header-manager traversal — breadth-first over the object graph,
//!    FIFO as references stream in from the object handler — assigning
//!    each first-visited object its **relative address** (the running sum
//!    of serialized object sizes) and recording visited-state in the
//!    object's header extension via the serialization counter (§V-E);
//! 2. the object handler's split of every object word into the **value
//!    array** (mark word, class ID from the Klass Pointer Table, zeroed
//!    extension slot, primitive fields) and the **reference array**
//!    (relative addresses, object-packed);
//! 3. the object metadata manager's **layout bitmaps**, object-packed.
//!
//! [`decode`] performs the deserialization unit's reconstruction: walk the
//! unpacked layout bitmaps block by block, pull values and references from
//! their decoupled streams, translate class IDs back through the Class ID
//! Table, and write the image contiguously at the destination base.
//!
//! Both directions also extract the *workload descriptors* the timing
//! models in [`crate::su`] and [`crate::du`] replay against the memory
//! system.

use sdformat::layout::LayoutCounts;
use sdformat::pack::Packer;
use sdformat::stream::{decode_ref, encode_ref, CerealStream};
use sdheap::{
    Addr, ExtWord, Heap, KlassRegistry, MarkWord, EXT_OFFSET, KLASS_OFFSET, MARK_OFFSET,
};
use serializers::SerError;
use std::collections::VecDeque;

use crate::tables::ClassTables;

/// One header-manager traversal step.
#[derive(Clone, Debug, PartialEq)]
pub enum SerEvent {
    /// First visit: the full SU pipeline runs for this object.
    New(ObjVisit),
    /// Re-visit of an already-serialized object: the header manager only
    /// reads the recorded relative address from the header.
    Revisit {
        /// Object address (for memory-traffic accounting).
        addr: u64,
    },
}

/// Per-object information the SU pipeline needs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObjVisit {
    /// Object base address.
    pub addr: u64,
    /// Type-descriptor address fetched by the object metadata manager.
    pub meta_addr: u64,
    /// Descriptor size in bytes.
    pub meta_bytes: u32,
    /// Object size in bytes (header included).
    pub size_bytes: u32,
    /// Bytes this object contributes to the value array.
    pub value_bytes: u32,
    /// Number of reference slots.
    pub refs: u32,
}

/// Everything the SU timing model replays.
#[derive(Clone, Debug, Default)]
pub struct SerWorkload {
    /// Traversal steps in header-manager order.
    pub events: Vec<SerEvent>,
    /// Total value-array bytes written.
    pub value_bytes: u64,
    /// Packed reference array bytes (payload + end map).
    pub ref_bytes: u64,
    /// Packed layout-bitmap bytes (payload + end map).
    pub bitmap_bytes: u64,
    /// Deserialized-image size in bytes.
    pub image_bytes: u64,
}

/// Everything the DU timing model replays.
#[derive(Clone, Debug, Default)]
pub struct DeWorkload {
    /// Deserialized-image size in bytes.
    pub image_bytes: u64,
    /// Objects reconstructed.
    pub object_count: u64,
    /// Value-array bytes consumed.
    pub value_bytes: u64,
    /// Packed reference bytes consumed (payload + end map).
    pub ref_bytes: u64,
    /// Reference items consumed.
    pub ref_count: u64,
    /// Packed bitmap bytes consumed (payload + end map).
    pub bitmap_bytes: u64,
    /// Per-64 B-block value/reference word counts, in image order — what
    /// the layout manager hands the block manager.
    pub per_block: Vec<LayoutCounts>,
}

/// Result of a functional serialization.
#[derive(Clone, Debug)]
pub struct SerOutcome {
    /// The serialized stream.
    pub stream: CerealStream,
    /// The workload descriptor for the SU timing model.
    pub workload: SerWorkload,
}

/// Serializes the graph rooted at `root`, updating header extensions with
/// the serialization counter `counter` on behalf of unit `unit`.
///
/// # Errors
/// * [`SerError::Unsupported`] when a shared object's header is reserved
///   by a different unit (the paper's software-fallback case) or a class
///   is not registered in the Klass Pointer Table.
pub fn encode<'a>(
    heap: &'a mut Heap,
    reg: &'a KlassRegistry,
    tables: &'a ClassTables,
    counter: u16,
    unit: u8,
    strip_mark_words: bool,
) -> EncodeCall<'a> {
    EncodeCall {
        heap,
        reg,
        tables,
        counter,
        unit,
        strip_mark_words,
    }
}

/// Builder-style carrier so `encode(...).run(root)` reads naturally while
/// keeping the argument list typed.
pub struct EncodeCall<'a> {
    heap: &'a mut Heap,
    reg: &'a KlassRegistry,
    tables: &'a ClassTables,
    counter: u16,
    unit: u8,
    strip_mark_words: bool,
}

impl EncodeCall<'_> {
    /// Runs the serialization from `root`.
    ///
    /// # Errors
    /// See [`encode`].
    pub fn run(self, root: Addr) -> Result<SerOutcome, SerError> {
        let EncodeCall {
            heap,
            reg,
            tables,
            counter,
            unit,
            strip_mark_words,
        } = self;

        let mut events = Vec::new();
        let mut order: Vec<Addr> = Vec::new();
        let mut ref_items: Vec<Option<u32>> = Vec::new();
        let mut next_rel: u64 = 0;

        // Header-manager visit: returns the relative address of `addr`,
        // assigning one on first visit.
        let visit = |heap: &mut Heap,
                         addr: Addr,
                         next_rel: &mut u64,
                         order: &mut Vec<Addr>,
                         events: &mut Vec<SerEvent>|
         -> Result<u32, SerError> {
            let ext = heap.ext_word(addr);
            if ext.visited_in(counter) {
                if ext.reserving_unit() != Some(unit) {
                    return Err(SerError::Unsupported(
                        "shared object reserved by another serialization unit",
                    ));
                }
                events.push(SerEvent::Revisit { addr: addr.get() });
                return Ok(ext.relative_addr());
            }
            let rel = u32::try_from(*next_rel)
                .map_err(|_| SerError::Unsupported("object graph exceeds 4 GB image"))?;
            let view = heap.object(reg, addr);
            let size = view.size_bytes();
            let refs = view.ref_offsets().len() as u32;
            let klass = view.klass_id();
            let meta_addr = reg.meta_addr(klass);
            let meta_bytes = reg.get(klass).descriptor_words() as u32 * 8;
            // Verify registration (the CAM lookup the object handler does).
            tables.id_of(meta_addr)?;
            // The extension word is runtime-private and never travels
            // (paper Fig. 4 serializes a 16 B header: mark word + class
            // ID); stripping additionally drops the mark word.
            let value_bytes = size as u32
                - refs * 8
                - 8
                - if strip_mark_words { 8 } else { 0 };
            heap.set_ext_word(
                addr,
                ExtWord::new()
                    .with_counter(counter)
                    .with_relative_addr(rel)
                    .with_reserving_unit(unit),
            );
            *next_rel += size;
            order.push(addr);
            events.push(SerEvent::New(ObjVisit {
                addr: addr.get(),
                meta_addr: meta_addr.get(),
                meta_bytes,
                size_bytes: size as u32,
                value_bytes,
                refs,
            }));
            Ok(rel)
        };

        if !root.is_null() {
            let mut queue: VecDeque<Addr> = VecDeque::new();
            visit(heap, root, &mut next_rel, &mut order, &mut events)?;
            queue.push_back(root);
            while let Some(obj) = queue.pop_front() {
                let targets: Vec<Addr> = heap.object(reg, obj).references();
                for t in targets {
                    if t.is_null() {
                        ref_items.push(None);
                        continue;
                    }
                    let before = order.len();
                    let rel = visit(heap, t, &mut next_rel, &mut order, &mut events)?;
                    ref_items.push(Some(rel));
                    if order.len() > before {
                        queue.push_back(t);
                    }
                }
            }
        }

        // Object handler + reference array writer + metadata manager
        // outputs.
        let mut value_array = Vec::new();
        let mut ref_packer = Packer::new();
        let mut bitmap_packer = Packer::new();
        for &addr in &order {
            let view = heap.object(reg, addr);
            let bits = view.layout_bits();
            for (w, &is_ref) in bits.iter().enumerate() {
                if is_ref {
                    continue;
                }
                let word = match w {
                    MARK_OFFSET => {
                        if strip_mark_words {
                            continue;
                        }
                        view.word(MARK_OFFSET)
                    }
                    KLASS_OFFSET => {
                        u64::from(tables.id_of(Addr(view.word(KLASS_OFFSET)))?)
                    }
                    EXT_OFFSET => continue, // runtime-private, regenerated
                    _ => view.word(w),
                };
                value_array.extend_from_slice(&word.to_le_bytes());
            }
            bitmap_packer.push_bits(&bits);
        }
        for &item in &ref_items {
            ref_packer.push_value(encode_ref(item));
        }

        let stream = CerealStream {
            total_object_bytes: next_rel as u32,
            object_count: order.len() as u32,
            value_array,
            refs: ref_packer.finish(),
            bitmaps: bitmap_packer.finish(),
        };
        let workload = SerWorkload {
            events,
            value_bytes: stream.value_array.len() as u64,
            ref_bytes: stream.refs.total_bytes() as u64,
            bitmap_bytes: stream.bitmaps.total_bytes() as u64,
            image_bytes: next_rel,
        };
        Ok(SerOutcome { stream, workload })
    }
}

/// Software-fallback serialization (paper §V-E): when a shared object's
/// header is reserved by another unit, the hardware cannot record
/// relative addresses in headers, so serialization falls back to
/// software using a **thread-local hash table** for visited tracking —
/// no header extensions are read or written.
///
/// Produces a bit-identical stream to the hardware path and narrates the
/// CPU work into `sink` so the caller can time it on the host model.
pub fn encode_software<'a>(
    heap: &'a Heap,
    reg: &'a KlassRegistry,
    tables: &'a ClassTables,
    strip_mark_words: bool,
    sink: &'a mut dyn serializers::TraceSink,
) -> SoftwareEncodeCall<'a> {
    SoftwareEncodeCall {
        heap,
        reg,
        tables,
        strip_mark_words,
        sink,
    }
}

/// Carrier for [`encode_software`].
pub struct SoftwareEncodeCall<'a> {
    heap: &'a Heap,
    reg: &'a KlassRegistry,
    tables: &'a ClassTables,
    strip_mark_words: bool,
    sink: &'a mut dyn serializers::TraceSink,
}

impl SoftwareEncodeCall<'_> {
    /// Runs the fallback serialization from `root`.
    ///
    /// # Errors
    /// [`SerError`] for unregistered classes or over-large graphs.
    pub fn run(self, root: Addr) -> Result<CerealStream, SerError> {
        let SoftwareEncodeCall {
            heap,
            reg,
            tables,
            strip_mark_words,
            sink,
        } = self;
        let mut tracer = serializers::Tracer::new(sink);
        let mut rel_of: std::collections::HashMap<Addr, u32> = std::collections::HashMap::new();
        let mut order: Vec<Addr> = Vec::new();
        let mut ref_items: Vec<Option<u32>> = Vec::new();
        let mut next_rel: u64 = 0;

        if !root.is_null() {
            let mut queue = VecDeque::new();
            let visit = |heap: &Heap,
                         addr: Addr,
                         next_rel: &mut u64,
                         order: &mut Vec<Addr>,
                         rel_of: &mut std::collections::HashMap<Addr, u32>,
                         tracer: &mut serializers::Tracer|
             -> Result<(u32, bool), SerError> {
                tracer.hash_lookup(); // thread-local visited table probe
                if let Some(&rel) = rel_of.get(&addr) {
                    return Ok((rel, false));
                }
                tracer.load_word_dep(addr.get());
                tracer.load_word_dep(addr.add_words(1).get());
                let rel = u32::try_from(*next_rel)
                    .map_err(|_| SerError::Unsupported("object graph exceeds 4 GB image"))?;
                let view = heap.object(reg, addr);
                tables.id_of(reg.meta_addr(view.klass_id()))?;
                *next_rel += view.size_bytes();
                rel_of.insert(addr, rel);
                order.push(addr);
                Ok((rel, true))
            };
            visit(heap, root, &mut next_rel, &mut order, &mut rel_of, &mut tracer)?;
            queue.push_back(root);
            while let Some(obj) = queue.pop_front() {
                for t in heap.object(reg, obj).references() {
                    if t.is_null() {
                        ref_items.push(None);
                        continue;
                    }
                    let (rel, fresh) =
                        visit(heap, t, &mut next_rel, &mut order, &mut rel_of, &mut tracer)?;
                    ref_items.push(Some(rel));
                    if fresh {
                        queue.push_back(t);
                    }
                }
            }
        }

        let mut value_array = Vec::new();
        let mut ref_packer = Packer::new();
        let mut bitmap_packer = Packer::new();
        for &addr in &order {
            let view = heap.object(reg, addr);
            let bits = view.layout_bits();
            for (w, &is_ref) in bits.iter().enumerate() {
                tracer.load_word(addr.add_words(w as u64).get());
                if is_ref {
                    continue;
                }
                let word = match w {
                    MARK_OFFSET => {
                        if strip_mark_words {
                            continue;
                        }
                        view.word(MARK_OFFSET)
                    }
                    KLASS_OFFSET => u64::from(tables.id_of(Addr(view.word(KLASS_OFFSET)))?),
                    EXT_OFFSET => continue,
                    _ => view.word(w),
                };
                tracer.store_bytes(
                    serializers::OUT_STREAM_BASE + value_array.len() as u64,
                    8,
                );
                value_array.extend_from_slice(&word.to_le_bytes());
            }
            tracer.alu(bits.len() as u32); // bitmap packing
            bitmap_packer.push_bits(&bits);
        }
        for &item in &ref_items {
            tracer.alu(4); // significant-bit extraction + end-bit insert
            ref_packer.push_value(encode_ref(item));
        }

        Ok(CerealStream {
            total_object_bytes: next_rel as u32,
            object_count: order.len() as u32,
            value_array,
            refs: ref_packer.finish(),
            bitmaps: bitmap_packer.finish(),
        })
    }
}

/// Reconstructs a stream into `dst`, returning the root address and the
/// DU workload descriptor.
///
/// # Errors
/// [`SerError::Malformed`] on inconsistent streams,
/// [`SerError::UnknownClassId`] for unregistered classes, heap errors on
/// exhaustion.
pub fn decode(
    stream: &CerealStream,
    tables: &ClassTables,
    dst: &mut Heap,
    strip_mark_words: bool,
) -> Result<(Addr, DeWorkload), SerError> {
    if stream.object_count == 0 {
        return Ok((Addr::NULL, DeWorkload::default()));
    }
    let image_bytes = u64::from(stream.total_object_bytes);
    if image_bytes % 8 != 0 {
        return Err(SerError::Malformed("image size not word aligned"));
    }
    let base = dst.alloc_raw((image_bytes / 8) as usize)?;

    let bitmaps = stream.bitmaps.to_items();
    if bitmaps.len() != stream.object_count as usize {
        return Err(SerError::Malformed("bitmap count mismatch"));
    }
    let values = stream.value_words();
    let mut value_iter = values.iter().copied();
    let mut ref_unpacker = sdformat::pack::Unpacker::new(&stream.refs);
    let mut ref_count = 0u64;

    let mut image_bits: Vec<bool> = Vec::with_capacity((image_bytes / 8) as usize);
    let mut offset_words: u64 = 0;
    for bits in &bitmaps {
        let words = bits.len() as u64;
        if (offset_words + words) * 8 > image_bytes {
            return Err(SerError::Malformed("bitmaps overflow declared image"));
        }
        for (w, &is_ref) in bits.iter().enumerate() {
            let addr = base.add_words(offset_words + w as u64);
            let word = if is_ref {
                let item = ref_unpacker
                    .next_value()
                    .ok_or(SerError::Malformed("reference array underrun"))?;
                ref_count += 1;
                if item > u64::from(u32::MAX) {
                    return Err(SerError::Malformed("reference item out of range"));
                }
                match decode_ref(item) {
                    None => 0,
                    Some(rel) => {
                        if u64::from(rel) >= image_bytes {
                            return Err(SerError::Malformed("relative address out of image"));
                        }
                        base.add_bytes(u64::from(rel)).get()
                    }
                }
            } else {
                match w {
                    EXT_OFFSET => 0, // cleared extension word, regenerated
                    MARK_OFFSET if strip_mark_words => {
                        // Header stripping: re-construct a fresh mark word;
                        // the identity hash is not preserved (the overhead
                        // the paper notes for hashcode-dependent code).
                        MarkWord::new()
                            .with_identity_hash((offset_words as u32).wrapping_mul(2654435761)
                                & 0x7fff_ffff)
                            .raw()
                    }
                    KLASS_OFFSET => {
                        let id = value_iter
                            .next()
                            .ok_or(SerError::Malformed("value array underrun"))?;
                        let id = u32::try_from(id)
                            .map_err(|_| SerError::Malformed("class id too large"))?;
                        tables.addr_of(id)?.get()
                    }
                    _ => value_iter
                        .next()
                        .ok_or(SerError::Malformed("value array underrun"))?,
                }
            };
            dst.store(addr, word);
        }
        image_bits.extend_from_slice(bits);
        offset_words += words;
    }
    if offset_words * 8 != image_bytes {
        return Err(SerError::Malformed("bitmaps do not cover declared image"));
    }
    if value_iter.next().is_some() {
        return Err(SerError::Malformed("value array overrun"));
    }
    dst.note_reconstructed_objects(u64::from(stream.object_count));

    let workload = DeWorkload {
        image_bytes,
        object_count: u64::from(stream.object_count),
        value_bytes: stream.value_array.len() as u64,
        ref_bytes: stream.refs.total_bytes() as u64,
        ref_count,
        bitmap_bytes: stream.bitmaps.total_bytes() as u64,
        per_block: LayoutCounts::per_block(&image_bits),
    };
    Ok((base, workload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdheap::builder::Init;
    use sdheap::{isomorphic, isomorphic_with, FieldKind, GraphBuilder, IsoOptions, ValueType};

    fn tables_for(reg: &KlassRegistry) -> ClassTables {
        let mut t = ClassTables::new(4096);
        t.register_all(reg).unwrap();
        t
    }

    fn diamond() -> (Heap, KlassRegistry, Addr) {
        let mut b = GraphBuilder::new(1 << 18);
        let k = b.klass(
            "N",
            vec![FieldKind::Value(ValueType::Long), FieldKind::Ref, FieldKind::Ref],
        );
        let c = b.object(k, &[Init::Val(3), Init::Null, Init::Null]).unwrap();
        let x = b.object(k, &[Init::Val(2), Init::Ref(c), Init::Null]).unwrap();
        let a = b.object(k, &[Init::Val(1), Init::Ref(x), Init::Ref(c)]).unwrap();
        let (heap, reg) = b.finish();
        (heap, reg, a)
    }

    #[test]
    fn roundtrips_with_identity_hashes() {
        let (mut heap, reg, root) = diamond();
        let tables = tables_for(&reg);
        let out = encode(&mut heap, &reg, &tables, 1, 0, false).run(root).unwrap();
        let mut dst = Heap::with_base(Addr(0x2_0000_0000), 1 << 18);
        let (new_root, _) = decode(&out.stream, &tables, &mut dst, false).unwrap();
        assert!(isomorphic(&heap, &reg, root, &dst, new_root));
        assert_eq!(new_root, dst.base(), "root reconstructs at the image base");
    }

    #[test]
    fn traversal_is_breadth_first() {
        let (mut heap, reg, root) = diamond();
        let tables = tables_for(&reg);
        let out = encode(&mut heap, &reg, &tables, 1, 0, false).run(root).unwrap();
        // BFS order: a, x, c → events New(a), New(x), New(c) with the
        // revisit of c (from x) after both.
        let kinds: Vec<bool> = out
            .workload
            .events
            .iter()
            .map(|e| matches!(e, SerEvent::New(_)))
            .collect();
        assert_eq!(kinds, vec![true, true, true, false]);
        assert_eq!(out.stream.object_count, 3);
    }

    #[test]
    fn relative_addresses_are_size_prefix_sums() {
        let (mut heap, reg, root) = diamond();
        let tables = tables_for(&reg);
        encode(&mut heap, &reg, &tables, 1, 0, false).run(root).unwrap();
        // Each object is 48 B; BFS order a, x, c.
        let x = heap.ref_field(root, 1).unwrap();
        let c = heap.ref_field(root, 2).unwrap();
        assert_eq!(heap.ext_word(root).relative_addr(), 0);
        assert_eq!(heap.ext_word(x).relative_addr(), 48);
        assert_eq!(heap.ext_word(c).relative_addr(), 96);
    }

    #[test]
    fn visited_counter_makes_second_pass_cheap_to_verify() {
        let (mut heap, reg, root) = diamond();
        let tables = tables_for(&reg);
        encode(&mut heap, &reg, &tables, 1, 0, false).run(root).unwrap();
        // A second serialization with a new counter re-traverses from
        // scratch (old marks are stale), producing an identical stream.
        let out2 = encode(&mut heap, &reg, &tables, 2, 0, false).run(root).unwrap();
        assert_eq!(out2.stream.object_count, 3);
    }

    #[test]
    fn shared_object_reserved_by_other_unit_falls_back() {
        let (mut heap, reg, root) = diamond();
        let tables = tables_for(&reg);
        let c = heap.ref_field(root, 2).unwrap();
        // Unit 3 currently holds c's header for counter 7.
        heap.set_ext_word(
            c,
            ExtWord::new().with_counter(7).with_relative_addr(0).with_reserving_unit(3),
        );
        let err = encode(&mut heap, &reg, &tables, 7, 0, false).run(root).unwrap_err();
        assert!(matches!(err, SerError::Unsupported(_)));
    }

    #[test]
    fn nulls_survive() {
        let (mut heap, reg, root) = diamond();
        let tables = tables_for(&reg);
        let out = encode(&mut heap, &reg, &tables, 1, 0, false).run(root).unwrap();
        let mut dst = Heap::with_base(Addr(0x2_0000_0000), 1 << 18);
        let (new_root, _) = decode(&out.stream, &tables, &mut dst, false).unwrap();
        let c = dst.ref_field(new_root, 2).unwrap();
        assert_eq!(dst.ref_field(c, 1), None);
        assert_eq!(dst.ref_field(c, 2), None);
    }

    #[test]
    fn arrays_and_cycles_roundtrip() {
        let mut b = GraphBuilder::new(1 << 18);
        let n = b.klass("Node", vec![FieldKind::Ref]);
        let oarr = b.array_klass("Object[]", FieldKind::Ref);
        let darr = b.array_klass("double[]", FieldKind::Value(ValueType::Double));
        let data = b.value_array(darr, &[1, 2, 3, 4, 5]).unwrap();
        let x = b.object(n, &[Init::Null]).unwrap();
        let arr = b.ref_array(oarr, &[x, data, Addr::NULL]).unwrap();
        b.link(x, 0, arr);
        let (mut heap, reg) = b.finish();
        let tables = tables_for(&reg);
        let out = encode(&mut heap, &reg, &tables, 1, 0, false).run(arr).unwrap();
        let mut dst = Heap::with_base(Addr(0x2_0000_0000), 1 << 18);
        let (new_root, wl) = decode(&out.stream, &tables, &mut dst, false).unwrap();
        assert!(isomorphic(&heap, &reg, arr, &dst, new_root));
        assert_eq!(wl.object_count, 3);
        assert_eq!(wl.ref_count, 4, "3 array slots + 1 field");
    }

    #[test]
    fn header_strip_saves_8b_per_object() {
        let (mut heap, reg, root) = diamond();
        let tables = tables_for(&reg);
        let full = encode(&mut heap, &reg, &tables, 1, 0, false).run(root).unwrap();
        let stripped = encode(&mut heap, &reg, &tables, 2, 0, true).run(root).unwrap();
        assert_eq!(
            full.stream.value_array.len() - stripped.stream.value_array.len(),
            3 * 8
        );
        // Stripped streams still reconstruct, modulo identity hashes.
        let mut dst = Heap::with_base(Addr(0x2_0000_0000), 1 << 18);
        let (new_root, _) = decode(&stripped.stream, &tables, &mut dst, true).unwrap();
        assert!(isomorphic_with(
            &heap,
            &reg,
            root,
            &dst,
            new_root,
            IsoOptions {
                check_identity_hash: false
            }
        ));
    }

    #[test]
    fn null_root_is_empty_stream() {
        let (mut heap, reg, _) = diamond();
        let tables = tables_for(&reg);
        let out = encode(&mut heap, &reg, &tables, 1, 0, false).run(Addr::NULL).unwrap();
        assert_eq!(out.stream.object_count, 0);
        let mut dst = Heap::with_base(Addr(0x2_0000_0000), 1 << 12);
        let (root, wl) = decode(&out.stream, &tables, &mut dst, false).unwrap();
        assert!(root.is_null());
        assert_eq!(wl.object_count, 0);
    }

    #[test]
    fn corrupt_streams_rejected() {
        let (mut heap, reg, root) = diamond();
        let tables = tables_for(&reg);
        let out = encode(&mut heap, &reg, &tables, 1, 0, false).run(root).unwrap();

        // Truncated value array.
        let mut s = out.stream.clone();
        s.value_array.truncate(s.value_array.len() - 8);
        let mut dst = Heap::with_base(Addr(0x2_0000_0000), 1 << 18);
        assert!(matches!(
            decode(&s, &tables, &mut dst, false),
            Err(SerError::Malformed(_))
        ));

        // Unregistered class id.
        let empty_tables = ClassTables::new(4);
        let mut dst2 = Heap::with_base(Addr(0x2_0000_0000), 1 << 18);
        assert!(decode(&out.stream, &empty_tables, &mut dst2, false).is_err());

        // Image size lies.
        let mut s3 = out.stream.clone();
        s3.total_object_bytes = 8;
        let mut dst3 = Heap::with_base(Addr(0x2_0000_0000), 1 << 18);
        assert!(matches!(
            decode(&s3, &tables, &mut dst3, false),
            Err(SerError::Malformed(_))
        ));
    }

    #[test]
    fn workload_descriptors_account_sizes() {
        let (mut heap, reg, root) = diamond();
        let tables = tables_for(&reg);
        let out = encode(&mut heap, &reg, &tables, 1, 0, false).run(root).unwrap();
        let w = &out.workload;
        assert_eq!(w.image_bytes, 3 * 48);
        assert_eq!(w.value_bytes, out.stream.value_array.len() as u64);
        // 3 objects × (mark + class ID + 1 long) = 9 value words; the
        // extension word never travels.
        assert_eq!(w.value_bytes, 9 * 8);
        let mut dst = Heap::with_base(Addr(0x2_0000_0000), 1 << 18);
        let (_, dw) = decode(&out.stream, &tables, &mut dst, false).unwrap();
        assert_eq!(dw.image_bytes, w.image_bytes);
        assert_eq!(dw.per_block.len(), (3 * 48usize).div_ceil(64));
        let total_words: u32 = dw.per_block.iter().map(|b| b.values + b.refs).sum();
        assert_eq!(total_words, 18);
    }
}
