//! Software interface (paper §V-A) and [`Serializer`]-trait adapter.
//!
//! The paper keeps Cereal's interface deliberately identical to Kryo's
//! and Skyway's so swapping serializers is trivial:
//!
//! * `Initialize` — [`Accelerator::new`] / [`initialize`];
//! * `RegisterClass(Class Type)` — [`Accelerator::register_class`];
//! * `WriteObject(ObjectOutputStream, Object)` — [`write_object`];
//! * `ReadObject(ObjectInputStream)` — [`read_object`].
//!
//! [`CerealSerializer`] additionally adapts the accelerator to the same
//! [`Serializer`] trait the software baselines implement, so the JSBS
//! harness and the round-trip property tests treat all four identically.

use std::cell::RefCell;

use sdheap::{Addr, Heap, KlassRegistry};
use serializers::{SerError, Serializer, TraceSink};

use crate::accel::Accelerator;
use crate::config::CerealConfig;

/// `Initialize`: secures the accelerator (and, in the paper, its memory
/// region) at application start.
pub fn initialize(cfg: CerealConfig) -> Accelerator {
    Accelerator::new(cfg)
}

/// An output stream that frames serialized objects back to back, each
/// length-prefixed — the `ObjectOutputStream oos` that is "often
/// connected to the FileStream for the output file".
#[derive(Clone, Debug, Default)]
pub struct ObjectOutputStream {
    buf: Vec<u8>,
}

impl ObjectOutputStream {
    /// An empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// All bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the stream.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    fn push_frame(&mut self, frame: &[u8]) {
        self.buf.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(frame);
    }
}

/// The reading side: yields length-prefixed frames in write order.
#[derive(Clone, Debug)]
pub struct ObjectInputStream<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ObjectInputStream<'a> {
    /// A stream over previously written bytes.
    pub fn new(bytes: &'a [u8]) -> Self {
        ObjectInputStream { bytes, pos: 0 }
    }

    fn next_frame(&mut self) -> Result<&'a [u8], SerError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(SerError::Malformed("no more frames"));
        }
        let len = u32::from_le_bytes(
            self.bytes[self.pos..self.pos + 4].try_into().expect("4"),
        ) as usize;
        self.pos += 4;
        if self.pos + len > self.bytes.len() {
            return Err(SerError::Malformed("truncated frame"));
        }
        let frame = &self.bytes[self.pos..self.pos + len];
        self.pos += len;
        Ok(frame)
    }

    /// `true` when all frames have been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos >= self.bytes.len()
    }
}

/// `WriteObject(oos, obj)`: serializes one object graph into the stream.
///
/// # Errors
/// Propagates [`SerError`] from the accelerator.
pub fn write_object(
    accel: &mut Accelerator,
    oos: &mut ObjectOutputStream,
    heap: &mut Heap,
    reg: &KlassRegistry,
    obj: Addr,
) -> Result<(), SerError> {
    let result = accel.serialize(heap, reg, obj)?;
    oos.push_frame(&result.bytes);
    Ok(())
}

/// `ReadObject(ois)`: reconstructs the next object graph from the stream.
///
/// # Errors
/// Propagates [`SerError`] from the accelerator or stream framing.
pub fn read_object(
    accel: &mut Accelerator,
    ois: &mut ObjectInputStream<'_>,
    dst: &mut Heap,
) -> Result<Addr, SerError> {
    let frame = ois.next_frame()?;
    Ok(accel.deserialize(frame, dst)?.root)
}

/// Adapter exposing the accelerator through the common [`Serializer`]
/// trait. Classes are registered automatically on first use (the
/// harness-side equivalent of calling `RegisterClass` for each type).
#[derive(Debug)]
pub struct CerealSerializer {
    accel: RefCell<Accelerator>,
}

impl CerealSerializer {
    /// With the paper's configuration.
    pub fn new() -> Self {
        CerealSerializer {
            accel: RefCell::new(Accelerator::paper()),
        }
    }

    /// With an explicit configuration (e.g. the Vanilla ablation).
    pub fn with_config(cfg: CerealConfig) -> Self {
        CerealSerializer {
            accel: RefCell::new(Accelerator::new(cfg)),
        }
    }

    /// Access to the wrapped accelerator (timing reports).
    pub fn accelerator(&self) -> std::cell::RefMut<'_, Accelerator> {
        self.accel.borrow_mut()
    }
}

impl Default for CerealSerializer {
    fn default() -> Self {
        Self::new()
    }
}

impl Serializer for CerealSerializer {
    fn name(&self) -> &str {
        "Cereal"
    }

    fn serialize(
        &self,
        heap: &mut Heap,
        reg: &KlassRegistry,
        root: Addr,
        _sink: &mut dyn TraceSink,
    ) -> Result<Vec<u8>, SerError> {
        // Hardware executes the op: no CPU trace is emitted.
        let mut accel = self.accel.borrow_mut();
        accel.register_all(reg)?;
        Ok(accel.serialize(heap, reg, root)?.bytes)
    }

    fn deserialize(
        &self,
        bytes: &[u8],
        reg: &KlassRegistry,
        dst: &mut Heap,
        _sink: &mut dyn TraceSink,
    ) -> Result<Addr, SerError> {
        let mut accel = self.accel.borrow_mut();
        accel.register_all(reg)?;
        Ok(accel.deserialize(bytes, dst)?.root)
    }

    fn preserves_identity_hash(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdheap::builder::Init;
    use sdheap::{isomorphic, FieldKind, GraphBuilder, ValueType};
    use serializers::NullSink;

    fn pair_graph() -> (Heap, KlassRegistry, Addr, Addr) {
        let mut b = GraphBuilder::new(1 << 18);
        let k = b.klass("P", vec![FieldKind::Value(ValueType::Long), FieldKind::Ref]);
        let x = b.object(k, &[Init::Val(10), Init::Null]).unwrap();
        let y = b.object(k, &[Init::Val(20), Init::Ref(x)]).unwrap();
        let (heap, reg) = b.finish();
        (heap, reg, x, y)
    }

    #[test]
    fn write_read_object_multiple_frames() {
        let (mut heap, reg, x, y) = pair_graph();
        let mut accel = initialize(CerealConfig::paper());
        accel.register_all(&reg).unwrap();
        let mut oos = ObjectOutputStream::new();
        write_object(&mut accel, &mut oos, &mut heap, &reg, y).unwrap();
        write_object(&mut accel, &mut oos, &mut heap, &reg, x).unwrap();

        let bytes = oos.into_bytes();
        let mut ois = ObjectInputStream::new(&bytes);
        let mut dst = Heap::with_base(Addr(0x2_0000_0000), 1 << 18);
        let y2 = read_object(&mut accel, &mut ois, &mut dst).unwrap();
        let x2 = read_object(&mut accel, &mut ois, &mut dst).unwrap();
        assert!(ois.is_exhausted());
        assert!(isomorphic(&heap, &reg, y, &dst, y2));
        assert!(isomorphic(&heap, &reg, x, &dst, x2));
    }

    #[test]
    fn reading_past_end_fails() {
        let bytes = Vec::new();
        let mut ois = ObjectInputStream::new(&bytes);
        let mut accel = Accelerator::paper();
        let mut dst = Heap::new(1 << 12);
        assert!(read_object(&mut accel, &mut ois, &mut dst).is_err());
    }

    #[test]
    fn serializer_trait_roundtrip() {
        let (mut heap, reg, _, y) = pair_graph();
        let ser = CerealSerializer::new();
        let bytes = ser.serialize(&mut heap, &reg, y, &mut NullSink).unwrap();
        let mut dst = Heap::with_base(Addr(0x2_0000_0000), 1 << 18);
        let root = ser.deserialize(&bytes, &reg, &mut dst, &mut NullSink).unwrap();
        assert!(isomorphic(&heap, &reg, y, &dst, root));
        assert!(ser.preserves_identity_hash());
        assert_eq!(ser.name(), "Cereal");
        // Timing is observable through the accelerator handle.
        assert!(ser.accelerator().report().ser_requests >= 1);
    }
}
