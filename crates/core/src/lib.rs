//! `cereal` — the paper's primary contribution: a specialized
//! architecture for object serialization (Jang et al., ISCA 2020),
//! reproduced as a functional + cycle-level-timing model.
//!
//! The crate provides:
//!
//! * [`functional`] — the format/hardware co-designed serialization and
//!   deserialization data paths (paper §IV, §V-B, §V-C), producing real
//!   bytes that round-trip through `sdheap` graphs;
//! * [`su`] / [`du`] — timing models of the Serialization Unit (header
//!   manager, object metadata manager, object handler, reference array
//!   writer; Fig. 7) and Deserialization Unit (layout manager, block
//!   manager, block reconstructors; Fig. 8) over the shared `sim`
//!   memory system;
//! * [`accel`] — the top level of Fig. 6: command queue, request
//!   scheduler, 8 SU + 8 DU with operation-level parallelism;
//! * [`iface`] — the paper's software interface (`Initialize`,
//!   `RegisterClass`, `WriteObject`, `ReadObject`) plus a
//!   [`serializers::Serializer`] adapter;
//! * [`tables`] — the Klass Pointer Table (CAM) and Class ID Table
//!   (SRAM) with their 4 K-class hardware limit (§V-E);
//! * [`energy`] — Table V's area/power inventory and the Fig. 17 energy
//!   accounting;
//! * [`config`] — Table I parameters and the "Cereal Vanilla" ablation.
//!
//! # Example
//!
//! ```
//! use sdheap::{GraphBuilder, FieldKind, ValueType, Heap, Addr};
//! use sdheap::builder::Init;
//! use cereal::Accelerator;
//!
//! let mut b = GraphBuilder::new(1 << 16);
//! let k = b.klass("Pair", vec![FieldKind::Value(ValueType::Long), FieldKind::Ref]);
//! let inner = b.object(k, &[Init::Val(2), Init::Null])?;
//! let outer = b.object(k, &[Init::Val(1), Init::Ref(inner)])?;
//! let (mut heap, reg) = b.finish();
//!
//! let mut accel = Accelerator::paper();
//! accel.register_all(&reg)?;
//! let ser = accel.serialize(&mut heap, &reg, outer)?;
//! let mut dst = Heap::with_base(Addr(0x2_0000_0000), 1 << 16);
//! let de = accel.deserialize(&ser.bytes, &mut dst)?;
//! assert_eq!(dst.field(de.root, 0), 1);
//! println!("serialized in {:.1} ns on SU{}", ser.run.busy_ns(), ser.unit);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod accel;
pub mod config;
pub mod du;
pub mod energy;
pub mod functional;
pub mod iface;
pub mod su;
pub mod tables;

pub use accel::{AccelReport, Accelerator, DeResult, SerMeta, SerResult};
pub use config::CerealConfig;
pub use du::DeserializationUnit;
pub use iface::{
    initialize, read_object, write_object, CerealSerializer, ObjectInputStream,
    ObjectOutputStream,
};
pub use su::{SerializationUnit, UnitRun};
pub use tables::ClassTables;
