//! Serialization Unit timing model (paper §V-B, Fig. 7).
//!
//! Replays a [`SerWorkload`](crate::functional::SerWorkload) against the
//! shared memory system, reproducing the pipeline structure of Fig. 7:
//!
//! * the **header manager** walks traversal steps in order. Object
//!   addresses come from its work queue, so header fetches for upcoming
//!   objects are issued ahead of time (lookahead = queue depth); but the
//!   manager *commits* objects serially — it "cannot process another
//!   object until it receives the object size from the object metadata
//!   manager and updates its counter", which makes the metadata-fetch
//!   round trip the per-object critical path;
//! * the **object metadata manager** fetches the type descriptor as soon
//!   as the header (klass pointer) is available;
//! * the **object handler** streams the object body through the MAI —
//!   responses are forced in order by a reorder buffer — and drains the
//!   value array to memory in 64 B bursts;
//! * the **reference array writer** and the bitmap output of the metadata
//!   manager drain their packed bytes as they are produced.
//!
//! With `vanilla = true` (the paper's ablation) the stages run strictly
//! serially per object: header fetch, then metadata fetch, then object
//! fetch, then writes, with no overlap between objects.

use crate::config::CerealConfig;
use crate::functional::{SerEvent, SerWorkload};
use serializers::OUT_STREAM_BASE;
use sim::{Dram, Mai, ReorderBuffer, Tlb};

/// Timing outcome of one serialization request on one SU.
#[derive(Clone, Copy, Debug, Default)]
pub struct UnitRun {
    /// Request start time (ns).
    pub start_ns: f64,
    /// Request completion time (ns).
    pub end_ns: f64,
    /// Bytes read from DRAM by this request.
    pub read_bytes: u64,
    /// Bytes written to DRAM by this request.
    pub write_bytes: u64,
}

impl UnitRun {
    /// Busy duration in nanoseconds.
    pub fn busy_ns(&self) -> f64 {
        self.end_ns - self.start_ns
    }
}

/// One serialization unit's private front-end state (its MAI bank, TLB
/// slice and reorder buffer). DRAM is shared across all units.
#[derive(Debug, Default)]
pub struct SerializationUnit {
    mai: Mai,
    tlb: Tlb,
    /// Scratch reused across requests (per-event commit times); purely an
    /// allocation-churn optimization, timing is unaffected.
    scratch_commit: Vec<f64>,
    /// Scratch reused across requests (per-event header-fetch times).
    scratch_header_done: Vec<f64>,
}

impl SerializationUnit {
    /// A unit configured per `cfg`.
    pub fn new(cfg: &CerealConfig) -> Self {
        SerializationUnit {
            mai: Mai::new(cfg.mai),
            tlb: Tlb::new(cfg.tlb),
            scratch_commit: Vec::new(),
            scratch_header_done: Vec::new(),
        }
    }

    /// Replays `workload` starting at `start_ns` against the shared DRAM,
    /// returning the request timing.
    pub fn run(
        &mut self,
        cfg: &CerealConfig,
        workload: &SerWorkload,
        start_ns: f64,
        dram: &mut Dram,
    ) -> UnitRun {
        let cyc = cfg.cycle_ns();
        let hm_step = f64::from(cfg.hm_step_cycles) * cyc;
        let lookahead = if cfg.vanilla { 0 } else { cfg.su_lookahead };

        let bytes_before = dram.total_bytes();
        let mut reads = 0u64;
        let mut writes = 0u64;

        // Per-event commit times (header-manager order), in buffers
        // reused across requests.
        let n = workload.events.len();
        let mut commit = std::mem::take(&mut self.scratch_commit);
        commit.clear();
        commit.resize(n.max(1), start_ns);
        // Header fetch completion per event, issued with lookahead.
        let mut header_done = std::mem::take(&mut self.scratch_header_done);
        header_done.clear();
        header_done.resize(n, start_ns);
        let mut rob = ReorderBuffer::new();

        // Output drains: value array, reference array, bitmaps. Each is a
        // sequential write stream; we batch at 64 B.
        let mut value_pending: u64 = 0;
        let mut value_written: u64 = 0;
        let mut out_tail = start_ns;

        let mut last_commit = start_ns;
        for i in 0..n {
            // Issue the header fetch for event i at the commit time of the
            // event `lookahead` back (the queue gives that much notice).
            let issue_at = if i <= lookahead {
                start_ns
            } else {
                commit[i - 1 - lookahead]
            };
            let (addr, _is_new) = match &workload.events[i] {
                SerEvent::New(v) => (v.addr, true),
                SerEvent::Revisit { addr } => (*addr, false),
            };
            // Heap reads carry a coherence round trip (§V-E).
            let t = issue_at + self.tlb.translate(addr) + cfg.coherence_ns;
            header_done[i] = self.mai.read(dram, addr, 8, t);
            reads += 1;

            let prev = if i == 0 { start_ns } else { commit[i - 1] };
            let committed = match &workload.events[i] {
                SerEvent::Revisit { .. } => {
                    // Relative address is already in the (fetched) header.
                    prev.max(header_done[i]) + hm_step
                }
                SerEvent::New(v) => {
                    // The header manager sends the klass address to the
                    // metadata manager when it processes this object — so
                    // the fetch needs both the (possibly prefetched)
                    // header and the previous object's commit. Its round
                    // trip is the per-object critical path in both modes;
                    // pipelining hides the header/body fetches and the
                    // output drains, not this.
                    let meta_issue = prev.max(header_done[i]);
                    let meta_done = self.mai.read(
                        dram,
                        v.meta_addr,
                        u64::from(v.meta_bytes),
                        meta_issue + self.tlb.translate(v.meta_addr) + cfg.coherence_ns,
                    );
                    reads += 1;
                    // Header update (visited mark + relative address):
                    // an atomic RMW that does not stall the pipeline.
                    writes += 1;
                    let _ = self.mai.write(dram, v.addr, 8, meta_done);

                    // The size returns to the header manager: serial
                    // commit point.
                    let committed = prev.max(meta_done) + hm_step;

                    // Object handler: fetch the body, in order.
                    let body_issue = if cfg.vanilla { committed } else { meta_done };
                    let body_done = rob.deliver(self.mai.read(
                        dram,
                        v.addr,
                        u64::from(v.size_bytes),
                        body_issue + cfg.coherence_ns,
                    ));
                    reads += 1;

                    // Value array drain at 64 B granularity.
                    value_pending += u64::from(v.value_bytes);
                    while value_pending >= 64 {
                        let at = if cfg.vanilla {
                            out_tail.max(body_done)
                        } else {
                            body_done
                        };
                        out_tail = self.mai.write(
                            dram,
                            OUT_STREAM_BASE + value_written,
                            64,
                            at,
                        );
                        writes += 1;
                        value_pending -= 64;
                        value_written += 64;
                    }
                    if cfg.vanilla {
                        out_tail.max(body_done).max(committed)
                    } else {
                        committed
                    }
                }
            };
            commit[i] = committed;
            last_commit = committed;
        }

        // Flush the remaining value bytes plus the packed reference array
        // and bitmaps (sequential writes at the stream tail).
        let mut tail = last_commit.max(out_tail);
        let remaining =
            value_pending + workload.ref_bytes + workload.bitmap_bytes + 64 /* header */;
        let mut off = value_written;
        let mut left = remaining;
        while left > 0 {
            let chunk = left.min(64);
            tail = self.mai.write(dram, OUT_STREAM_BASE + off, chunk, tail);
            writes += 1;
            off += chunk;
            left -= chunk;
        }

        let end = tail.max(last_commit);
        self.scratch_commit = commit;
        self.scratch_header_done = header_done;
        // The authoritative byte meter is the shared DRAM model; the
        // per-request split is apportioned by transaction counts.
        let moved = dram.total_bytes() - bytes_before;
        let txns = (reads + writes).max(1);
        UnitRun {
            start_ns,
            end_ns: end,
            read_bytes: moved * reads / txns,
            write_bytes: moved * writes / txns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functional::{ObjVisit, SerEvent};

    fn synthetic_workload(objects: usize, size_bytes: u32) -> SerWorkload {
        let events = (0..objects)
            .map(|i| {
                SerEvent::New(ObjVisit {
                    addr: 0x4000_0000 + (i as u64) * u64::from(size_bytes),
                    meta_addr: 0x1000_0000,
                    meta_bytes: 24,
                    size_bytes,
                    value_bytes: size_bytes - 16,
                    refs: 2,
                })
            })
            .collect();
        SerWorkload {
            events,
            value_bytes: objects as u64 * u64::from(size_bytes - 16),
            ref_bytes: objects as u64 * 2,
            bitmap_bytes: objects as u64,
            image_bytes: objects as u64 * u64::from(size_bytes),
        }
    }

    #[test]
    fn pipelined_throughput_is_metadata_latency_bound() {
        let cfg = CerealConfig::paper();
        let mut dram = Dram::new(cfg.dram);
        let mut su = SerializationUnit::new(&cfg);
        let w = synthetic_workload(1000, 48);
        let run = su.run(&cfg, &w, 0.0, &mut dram);
        let per_obj = run.busy_ns() / 1000.0;
        // One metadata round trip (~40 ns zero-load + queueing) per object.
        assert!(
            per_obj > 35.0 && per_obj < 120.0,
            "per-object {per_obj} ns should be about one DRAM round trip"
        );
    }

    #[test]
    fn vanilla_is_substantially_slower() {
        let cfg = CerealConfig::paper();
        let vcfg = CerealConfig::vanilla();
        let w = synthetic_workload(500, 48);
        let mut d1 = Dram::new(cfg.dram);
        let mut d2 = Dram::new(cfg.dram);
        let t_pipe = SerializationUnit::new(&cfg).run(&cfg, &w, 0.0, &mut d1).busy_ns();
        let t_van = SerializationUnit::new(&vcfg).run(&vcfg, &w, 0.0, &mut d2).busy_ns();
        assert!(
            t_van > t_pipe * 1.5,
            "vanilla {t_van} ns must be well above pipelined {t_pipe} ns"
        );
    }

    #[test]
    fn revisits_are_cheaper_than_new_objects() {
        let cfg = CerealConfig::paper();
        let mut w_new = synthetic_workload(200, 48);
        let mut w_rev = synthetic_workload(100, 48);
        for i in 0..100 {
            w_rev.events.push(SerEvent::Revisit {
                addr: 0x4000_0000 + i * 48,
            });
        }
        w_new.image_bytes = w_rev.image_bytes;
        let mut d1 = Dram::new(cfg.dram);
        let mut d2 = Dram::new(cfg.dram);
        let t_new = SerializationUnit::new(&cfg).run(&cfg, &w_new, 0.0, &mut d1).busy_ns();
        let t_rev = SerializationUnit::new(&cfg).run(&cfg, &w_rev, 0.0, &mut d2).busy_ns();
        assert!(t_rev < t_new, "revisit-heavy {t_rev} vs new-heavy {t_new}");
    }

    #[test]
    fn starts_after_start_time() {
        let cfg = CerealConfig::paper();
        let mut dram = Dram::new(cfg.dram);
        let w = synthetic_workload(10, 48);
        let run = SerializationUnit::new(&cfg).run(&cfg, &w, 500.0, &mut dram);
        assert_eq!(run.start_ns, 500.0);
        assert!(run.end_ns > 500.0);
    }

    #[test]
    fn empty_workload_costs_only_flush() {
        let cfg = CerealConfig::paper();
        let mut dram = Dram::new(cfg.dram);
        let w = SerWorkload::default();
        let run = SerializationUnit::new(&cfg).run(&cfg, &w, 0.0, &mut dram);
        assert!(run.busy_ns() < 200.0);
    }
}
