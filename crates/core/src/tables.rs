//! The accelerator's class-translation tables (paper §V-B, §V-C, §V-E).
//!
//! * **Klass Pointer Table** — a CAM (4 KB) used during serialization by
//!   the object handler to translate a klass *address* found in an object
//!   header into the compact class ID stored in the value array.
//! * **Class ID Table** — an SRAM (2 KB) used during deserialization by
//!   the block reconstructors to translate a class ID back into a klass
//!   address.
//!
//! Both are populated by the `RegisterClass` software call and are capped
//! at 4 K entries — "more than enough to run various real-world
//! applications" (§V-E) — and registration fails beyond that, which is
//! the hardware limitation the paper discusses.

use sdheap::{Addr, KlassId, KlassRegistry};
use serializers::SerError;
use std::collections::HashMap;

/// The paired translation tables.
#[derive(Clone, Debug)]
pub struct ClassTables {
    /// klass address → class ID (serialization direction, the CAM).
    by_addr: HashMap<u64, u32>,
    /// class ID → klass address (deserialization direction, the SRAM).
    by_id: HashMap<u32, u64>,
    capacity: usize,
}

impl ClassTables {
    /// Empty tables with the given entry capacity.
    pub fn new(capacity: usize) -> Self {
        ClassTables {
            by_addr: HashMap::new(),
            by_id: HashMap::new(),
            capacity,
        }
    }

    /// Registers a class (the `RegisterClass(Class Type)` call). Idempotent
    /// for already-registered classes.
    ///
    /// # Errors
    /// [`SerError::Unsupported`] once the hardware table is full.
    pub fn register(&mut self, reg: &KlassRegistry, id: KlassId) -> Result<(), SerError> {
        let addr = reg.meta_addr(id).get();
        if self.by_addr.contains_key(&addr) {
            return Ok(());
        }
        if self.by_addr.len() >= self.capacity {
            return Err(SerError::Unsupported(
                "Klass Pointer Table full: too many serializable class types",
            ));
        }
        self.by_addr.insert(addr, id.get());
        self.by_id.insert(id.get(), addr);
        Ok(())
    }

    /// Registers every class in the registry (the common setup path).
    ///
    /// # Errors
    /// [`SerError::Unsupported`] once the hardware table is full.
    pub fn register_all(&mut self, reg: &KlassRegistry) -> Result<(), SerError> {
        for (id, _) in reg.iter() {
            self.register(reg, id)?;
        }
        Ok(())
    }

    /// CAM lookup: klass address → class ID (serialization).
    ///
    /// # Errors
    /// [`SerError::UnknownClass`] if the class was never registered.
    pub fn id_of(&self, klass_addr: Addr) -> Result<u32, SerError> {
        self.by_addr
            .get(&klass_addr.get())
            .copied()
            .ok_or(SerError::Unsupported(
                "klass address not registered with the accelerator",
            ))
    }

    /// SRAM lookup: class ID → klass address (deserialization).
    ///
    /// # Errors
    /// [`SerError::UnknownClassId`] for unregistered IDs.
    pub fn addr_of(&self, class_id: u32) -> Result<Addr, SerError> {
        self.by_id
            .get(&class_id)
            .map(|&a| Addr(a))
            .ok_or(SerError::UnknownClassId(class_id))
    }

    /// Registered entry count.
    pub fn len(&self) -> usize {
        self.by_addr.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.by_addr.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdheap::Klass;

    fn registry(n: usize) -> KlassRegistry {
        let mut reg = KlassRegistry::new();
        for i in 0..n {
            reg.register(Klass::new(format!("K{i}"), vec![]));
        }
        reg
    }

    #[test]
    fn roundtrip_translation() {
        let reg = registry(3);
        let mut t = ClassTables::new(16);
        t.register_all(&reg).unwrap();
        for (id, _) in reg.iter() {
            let addr = reg.meta_addr(id);
            assert_eq!(t.id_of(addr).unwrap(), id.get());
            assert_eq!(t.addr_of(id.get()).unwrap(), addr);
        }
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn registration_is_idempotent() {
        let reg = registry(1);
        let mut t = ClassTables::new(16);
        t.register(&reg, KlassId(0)).unwrap();
        t.register(&reg, KlassId(0)).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn capacity_enforced() {
        let reg = registry(5);
        let mut t = ClassTables::new(4);
        let err = t.register_all(&reg).unwrap_err();
        assert!(matches!(err, SerError::Unsupported(_)));
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn unregistered_lookups_fail() {
        let t = ClassTables::new(4);
        assert!(t.id_of(Addr(0x1234)).is_err());
        assert!(matches!(t.addr_of(7), Err(SerError::UnknownClassId(7))));
        assert!(t.is_empty());
    }
}
