//! End-to-end shape validation of the paper's headline result (Fig. 10):
//! on microbenchmark-style graphs, Cereal beats Kryo which beats Java
//! S/D; deserialization speedups dwarf serialization speedups; and the
//! Vanilla ablation lands between Kryo and full Cereal.
//!
//! Eight concurrent requests keep all units busy (operation-level
//! parallelism), matching the paper's 8-SU/8-DU throughput accounting.

use cereal::Accelerator;
use sdheap::builder::Init;
use sdheap::{Addr, FieldKind, GraphBuilder, Heap, KlassRegistry, ValueType};
use serializers::{JavaSd, Kryo, Serializer};
use sim::Cpu;

const REQUESTS: usize = 8;

fn tree(depth: u32) -> (Heap, KlassRegistry, Addr) {
    let mut b = GraphBuilder::new(1 << 26);
    let node = b.klass(
        "TreeNode",
        vec![FieldKind::Value(ValueType::Long), FieldKind::Ref, FieldKind::Ref],
    );
    fn build(b: &mut GraphBuilder, node: sdheap::KlassId, depth: u32, seed: u64) -> Addr {
        if depth == 0 {
            return Addr::NULL;
        }
        let l = build(b, node, depth - 1, seed * 2);
        let r = build(b, node, depth - 1, seed * 2 + 1);
        b.object(
            node,
            &[
                Init::Val(seed),
                if l.is_null() { Init::Null } else { Init::Ref(l) },
                if r.is_null() { Init::Null } else { Init::Ref(r) },
            ],
        )
        .unwrap()
    }
    let root = build(&mut b, node, depth, 1);
    let (heap, reg) = b.finish();
    (heap, reg, root)
}

/// CPU baseline: time for `REQUESTS` sequential S/D ops (single core, as
/// in the paper's per-serializer comparison).
fn cpu_times(ser: &dyn Serializer, heap: &mut Heap, reg: &KlassRegistry, root: Addr) -> (f64, f64) {
    let mut ser_cpu = Cpu::host();
    let mut bytes = Vec::new();
    for _ in 0..REQUESTS {
        bytes = ser.serialize(heap, reg, root, &mut ser_cpu).unwrap();
    }
    let mut de_cpu = Cpu::host();
    for _ in 0..REQUESTS {
        let mut dst = Heap::with_base(Addr(0x2_0000_0000), heap.capacity_bytes());
        ser.deserialize(&bytes, reg, &mut dst, &mut de_cpu).unwrap();
    }
    (ser_cpu.report().ns, de_cpu.report().ns)
}

/// Accelerator: makespan for `REQUESTS` concurrent S/D ops.
fn accel_times(mut accel: Accelerator, heap: &mut Heap, reg: &KlassRegistry, root: Addr) -> (f64, f64) {
    accel.register_all(reg).unwrap();
    heap.gc_clear_serialization_metadata(reg); // reset stale visited marks
    let mut bytes = Vec::new();
    for _ in 0..REQUESTS {
        bytes = accel.serialize(heap, reg, root).unwrap().bytes;
    }
    let ser_ns = accel.report().ser_makespan_ns;
    accel.reset_meters();
    for _ in 0..REQUESTS {
        let mut dst = Heap::with_base(Addr(0x2_0000_0000), heap.capacity_bytes());
        accel.deserialize(&bytes, &mut dst).unwrap();
    }
    let de_ns = accel.report().de_makespan_ns;
    (ser_ns, de_ns)
}

#[test]
fn fig10_ordering_holds() {
    let (mut heap, reg, root) = tree(13); // 8191 nodes
    let (java_s, java_d) = cpu_times(&JavaSd::new(), &mut heap, &reg, root);
    let (kryo_s, kryo_d) = cpu_times(&Kryo::new(), &mut heap, &reg, root);
    let (cer_s, cer_d) = accel_times(Accelerator::paper(), &mut heap, &reg, root);
    let (van_s, van_d) = accel_times(Accelerator::vanilla(), &mut heap, &reg, root);

    let su = |x: f64| java_s / x;
    let du = |x: f64| java_d / x;
    println!(
        "ser speedups vs Java: kryo {:.2} vanilla {:.2} cereal {:.2}",
        su(kryo_s),
        su(van_s),
        su(cer_s)
    );
    println!(
        "de  speedups vs Java: kryo {:.2} vanilla {:.2} cereal {:.2}",
        du(kryo_d),
        du(van_d),
        du(cer_d)
    );

    // Ordering: Cereal > Vanilla ≥ Kryo on serialization; Cereal > Vanilla
    // and Cereal > Kryo on deserialization.
    assert!(cer_s < van_s, "pipelining must help serialization");
    assert!(cer_s < kryo_s, "Cereal must beat Kryo serialization");
    assert!(cer_d < van_d, "4 reconstructors must beat 1");
    assert!(cer_d < kryo_d, "Cereal must beat Kryo deserialization");
    assert!(kryo_s < java_s && kryo_d < java_d);

    // Magnitudes: paper reports 26.5× ser / 364× deser average speedups
    // over Java S/D; our substrate must land in the same decade.
    assert!(
        su(cer_s) > 8.0,
        "Cereal ser speedup too small: {}",
        su(cer_s)
    );
    assert!(
        du(cer_d) > 50.0,
        "Cereal deser speedup too small: {}",
        du(cer_d)
    );
    // Deserialization gains exceed serialization gains.
    assert!(du(cer_d) > su(cer_s));
}

#[test]
fn cereal_roundtrip_on_tree_is_exact() {
    let (mut heap, reg, root) = tree(10);
    let mut accel = Accelerator::paper();
    accel.register_all(&reg).unwrap();
    let bytes = accel.serialize(&mut heap, &reg, root).unwrap().bytes;
    let mut dst = Heap::with_base(Addr(0x2_0000_0000), heap.capacity_bytes());
    let de = accel.deserialize(&bytes, &mut dst).unwrap();
    assert!(sdheap::isomorphic(&heap, &reg, root, &dst, de.root));
}
