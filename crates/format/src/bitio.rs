//! Bit-granular readers and writers.
//!
//! Bits are appended in stream order; within each byte, the first bit
//! written occupies the most significant position (matching how the
//! paper's Fig. 5 draws packed bit strings left-to-right).
//!
//! The writer and reader operate word-at-a-time: bits accumulate in a
//! `u64` (left-aligned, stream order = descending significance) and
//! spill to the byte vector eight bytes at a time, so a `push_bits` of
//! any width costs a couple of shift/mask/OR operations instead of one
//! call per bit. The emitted byte stream is bit-identical to the
//! original bit-by-bit implementation, which is retained in [`naive`]
//! as the golden reference the equivalence tests and the `perf`
//! harness compare against.

/// Append-only bit stream writer.
#[derive(Clone, Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Pending bits, left-aligned: the first pending bit is bit 63.
    acc: u64,
    /// Number of pending bits in `acc` (0..=63 between calls).
    nbits: u32,
}

impl BitWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one bit.
    pub fn push(&mut self, bit: bool) {
        self.push_bits(u64::from(bit), 1);
    }

    /// Appends the `n` least-significant bits of `value`, most significant
    /// of those first.
    ///
    /// # Panics
    /// Panics if `n > 64`.
    pub fn push_bits(&mut self, value: u64, n: u32) {
        assert!(n <= 64, "cannot push {n} bits");
        if n == 0 {
            return;
        }
        // Left-align the n payload bits (also discards anything above).
        let vtop = value << (64 - n);
        if self.nbits + n < 64 {
            self.acc |= vtop >> self.nbits;
            self.nbits += n;
        } else {
            // Fill the accumulator to exactly 64 bits, spill it, and keep
            // the remainder.
            let take = 64 - self.nbits;
            self.acc |= vtop >> self.nbits;
            self.bytes.extend_from_slice(&self.acc.to_be_bytes());
            let rem = n - take;
            self.nbits = rem;
            self.acc = if rem == 0 { 0 } else { vtop << take };
        }
    }

    /// Appends a slice of bits, packing 64 at a time.
    pub fn push_slice(&mut self, bits: &[bool]) {
        for chunk in bits.chunks(64) {
            let mut v = 0u64;
            for &b in chunk {
                v = (v << 1) | u64::from(b);
            }
            self.push_bits(v, chunk.len() as u32);
        }
    }

    /// Zero-pads to the next byte boundary and reports how many padding
    /// bits were added (0–7). Pending complete bytes spill to the vector,
    /// so this never leaves more than zero pending bits.
    pub fn pad_to_byte(&mut self) -> u32 {
        let pad = (8 - self.nbits % 8) % 8;
        self.nbits += pad; // padding bits are already zero in `acc`
        let full = (self.nbits / 8) as usize;
        self.bytes.extend_from_slice(&self.acc.to_be_bytes()[..full]);
        self.acc = 0;
        self.nbits = 0;
        pad
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> usize {
        self.bytes.len() * 8 + self.nbits as usize
    }

    /// Bytes written so far (the last byte may be partially filled).
    pub fn byte_len(&self) -> usize {
        self.bytes.len() + (self.nbits as usize).div_ceil(8)
    }

    /// Finishes the stream (zero-padding the final byte) and returns the
    /// bytes.
    pub fn into_bytes(mut self) -> Vec<u8> {
        self.pad_to_byte();
        self.bytes
    }
}

/// Sequential bit stream reader.
#[derive(Clone, Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize, // bit position
}

impl<'a> BitReader<'a> {
    /// A reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Reads one bit; `None` at end of stream.
    pub fn next_bit(&mut self) -> Option<bool> {
        let byte = self.bytes.get(self.pos / 8)?;
        let bit = (byte >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }

    /// Reads `n` bits as an integer (first bit read is most significant).
    ///
    /// Returns `None` if fewer than `n` bits remain.
    ///
    /// # Panics
    /// Panics if `n > 64`.
    pub fn read_bits(&mut self, n: u32) -> Option<u64> {
        assert!(n <= 64, "cannot read {n} bits");
        if self.remaining() < n as usize {
            return None;
        }
        if n == 0 {
            return Some(0);
        }
        // A bit-offset read of ≤ 64 bits spans at most 9 bytes; fill a
        // 16-byte window (zero-padded at the tail) and extract with two
        // shifts.
        let start = self.pos / 8;
        let take = (self.bytes.len() - start).min(16);
        let mut buf = [0u8; 16];
        buf[..take].copy_from_slice(&self.bytes[start..start + take]);
        let window = u128::from_be_bytes(buf);
        let off = (self.pos % 8) as u32;
        self.pos += n as usize;
        Some(((window << off) >> (128 - n)) as u64)
    }

    /// Current bit position.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }

    /// Bits left in the stream.
    pub fn remaining(&self) -> usize {
        self.bytes.len() * 8 - self.pos
    }

    /// Skips forward to the next byte boundary.
    pub fn align_to_byte(&mut self) {
        self.pos = self.pos.div_ceil(8) * 8;
    }
}

/// The original bit-by-bit implementation, kept as the golden reference
/// for stream-equivalence tests and as the "before" side of the `perf`
/// harness's pack/unpack kernel comparison. Not used on any hot path.
pub mod naive {
    /// Bit-by-bit writer (reference implementation).
    #[derive(Clone, Debug, Default)]
    pub struct NaiveBitWriter {
        bytes: Vec<u8>,
        /// Bits already used in the last byte (0 = last byte is full/absent).
        partial: u8,
    }

    impl NaiveBitWriter {
        /// An empty writer.
        pub fn new() -> Self {
            Self::default()
        }

        /// Appends one bit.
        pub fn push(&mut self, bit: bool) {
            if self.partial == 0 {
                self.bytes.push(0);
            }
            if bit {
                let last = self.bytes.last_mut().expect("just pushed");
                *last |= 1 << (7 - self.partial);
            }
            self.partial = (self.partial + 1) % 8;
        }

        /// Appends the `n` least-significant bits of `value`, most
        /// significant of those first.
        ///
        /// # Panics
        /// Panics if `n > 64`.
        pub fn push_bits(&mut self, value: u64, n: u32) {
            assert!(n <= 64, "cannot push {n} bits");
            for i in (0..n).rev() {
                self.push((value >> i) & 1 == 1);
            }
        }

        /// Appends a slice of bits.
        pub fn push_slice(&mut self, bits: &[bool]) {
            for &b in bits {
                self.push(b);
            }
        }

        /// Zero-pads to the next byte boundary; returns the pad count.
        pub fn pad_to_byte(&mut self) -> u32 {
            let pad = (8 - u32::from(self.partial)) % 8;
            for _ in 0..pad {
                self.push(false);
            }
            pad
        }

        /// Total bits written so far.
        pub fn bit_len(&self) -> usize {
            if self.partial == 0 {
                self.bytes.len() * 8
            } else {
                (self.bytes.len() - 1) * 8 + self.partial as usize
            }
        }

        /// Finishes the stream (zero-padded) and returns the bytes.
        pub fn into_bytes(mut self) -> Vec<u8> {
            self.pad_to_byte();
            self.bytes
        }
    }

    /// Bit-by-bit reader (reference implementation).
    #[derive(Clone, Debug)]
    pub struct NaiveBitReader<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> NaiveBitReader<'a> {
        /// A reader over `bytes`.
        pub fn new(bytes: &'a [u8]) -> Self {
            NaiveBitReader { bytes, pos: 0 }
        }

        /// Reads one bit; `None` at end of stream.
        pub fn next_bit(&mut self) -> Option<bool> {
            let byte = self.bytes.get(self.pos / 8)?;
            let bit = (byte >> (7 - (self.pos % 8))) & 1 == 1;
            self.pos += 1;
            Some(bit)
        }

        /// Reads `n` bits (first read = most significant); `None` if fewer
        /// than `n` remain.
        pub fn read_bits(&mut self, n: u32) -> Option<u64> {
            assert!(n <= 64, "cannot read {n} bits");
            if self.bytes.len() * 8 - self.pos < n as usize {
                return None;
            }
            let mut v = 0u64;
            for _ in 0..n {
                v = (v << 1) | u64::from(self.next_bit().expect("checked remaining"));
            }
            Some(v)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_roundtrip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, false, true, true, false];
        w.push_slice(&pattern);
        assert_eq!(w.bit_len(), 10);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        for &expect in &pattern {
            assert_eq!(r.next_bit(), Some(expect));
        }
        // Padding bits are zero.
        assert_eq!(r.next_bit(), Some(false));
    }

    #[test]
    fn msb_first_within_byte() {
        let mut w = BitWriter::new();
        w.push(true); // should land in bit 7
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b1000_0000]);
    }

    #[test]
    fn push_bits_and_read_bits() {
        let mut w = BitWriter::new();
        w.push_bits(0b1011, 4);
        w.push_bits(0x3ff, 10);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(4), Some(0b1011));
        assert_eq!(r.read_bits(10), Some(0x3ff));
    }

    #[test]
    fn read_past_end_is_none() {
        let bytes = [0xffu8];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(8), Some(0xff));
        assert_eq!(r.read_bits(1), None);
        assert_eq!(r.next_bit(), None);
    }

    #[test]
    fn pad_to_byte_counts_padding() {
        let mut w = BitWriter::new();
        w.push_bits(0b101, 3);
        assert_eq!(w.pad_to_byte(), 5);
        assert_eq!(w.pad_to_byte(), 0);
        assert_eq!(w.bit_len(), 8);
    }

    #[test]
    fn align_to_byte_skips() {
        let bytes = [0b1010_0000u8, 0xab];
        let mut r = BitReader::new(&bytes);
        r.read_bits(3);
        r.align_to_byte();
        assert_eq!(r.bit_pos(), 8);
        assert_eq!(r.read_bits(8), Some(0xab));
    }

    #[test]
    fn sixty_four_bit_values() {
        let mut w = BitWriter::new();
        w.push_bits(u64::MAX, 64);
        w.push_bits(0, 64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(64), Some(u64::MAX));
        assert_eq!(r.read_bits(64), Some(0));
    }

    #[test]
    fn byte_len_counts_partial_bytes() {
        let mut w = BitWriter::new();
        assert_eq!(w.byte_len(), 0);
        w.push_bits(0b1, 1);
        assert_eq!(w.byte_len(), 1);
        w.push_bits(0, 7);
        assert_eq!(w.byte_len(), 1);
        w.push_bits(0, 1);
        assert_eq!(w.byte_len(), 2);
        w.push_bits(u64::MAX, 64);
        assert_eq!(w.byte_len(), 10);
        assert_eq!(w.bit_len(), 73);
    }

    #[test]
    fn interleaved_pads_and_pushes_match_naive() {
        let mut fast = BitWriter::new();
        let mut slow = naive::NaiveBitWriter::new();
        for i in 0..100u64 {
            let n = (i % 65) as u32;
            fast.push_bits(i.wrapping_mul(0x9E37_79B9_7F4A_7C15), n);
            slow.push_bits(i.wrapping_mul(0x9E37_79B9_7F4A_7C15), n);
            if i % 7 == 0 {
                assert_eq!(fast.pad_to_byte(), slow.pad_to_byte());
            }
            assert_eq!(fast.bit_len(), slow.bit_len());
        }
        assert_eq!(fast.into_bytes(), slow.into_bytes());
    }
}
