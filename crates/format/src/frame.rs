//! Checksummed stream frames: an optional CRC-32 footer over any
//! serialized payload.
//!
//! The distributed stack ships serialized streams across links and disks
//! that can corrupt them. Decoding a corrupted stream is undefined for
//! every backend — Java tags, Kryo varints, protobuf wire types and the
//! Cereal end maps all read garbage as structure — so integrity must be
//! established *before* decoding. The frame is deliberately
//! format-agnostic: `payload ‖ magic (4 B) ‖ crc32(payload) (4 B LE)`,
//! appended to whatever bytes a serializer produced, so every backend
//! (software baselines and the accelerator functional model) gets
//! detection without touching its wire format. A framed stream is
//! byte-identical to the plain stream except for the 8-byte footer —
//! test-enforced — which is what makes checksums zero-cost when
//! disabled.
//!
//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) detects every
//! single-bit and every sub-32-bit burst error, which covers the
//! injected single-byte wire corruptions exactly.

use std::fmt;

/// Frame footer magic (`"CRF1"`), little-endian on the wire.
pub const FRAME_MAGIC: [u8; 4] = *b"CRF1";

/// Footer size in bytes: magic + CRC-32.
pub const FOOTER_BYTES: usize = 8;

/// Errors from verifying a checksummed frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The stream is shorter than a footer or the magic is absent —
    /// either truncation or corruption of the footer itself.
    MissingFooter {
        /// Bytes present.
        have: usize,
    },
    /// The payload's CRC-32 did not match the footer.
    BadChecksum {
        /// CRC stored in the footer.
        stored: u32,
        /// CRC computed over the payload.
        computed: u32,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::MissingFooter { have } => {
                write!(f, "missing or damaged frame footer ({have} bytes)")
            }
            FrameError::BadChecksum { stored, computed } => write!(
                f,
                "frame checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

/// The CRC-32 lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Appends the checksum footer to `payload` in place. The result is the
/// original payload plus [`FOOTER_BYTES`] trailing bytes.
pub fn seal_into(payload: &mut Vec<u8>) {
    let crc = crc32(payload);
    payload.extend_from_slice(&FRAME_MAGIC);
    payload.extend_from_slice(&crc.to_le_bytes());
}

/// Returns `payload` with the checksum footer appended.
pub fn seal(mut payload: Vec<u8>) -> Vec<u8> {
    seal_into(&mut payload);
    payload
}

/// Verifies a framed stream and returns the payload slice (footer
/// stripped).
///
/// # Errors
/// [`FrameError::MissingFooter`] if the stream is too short or the
/// magic bytes are damaged; [`FrameError::BadChecksum`] if the payload
/// does not hash to the stored CRC.
pub fn verify(framed: &[u8]) -> Result<&[u8], FrameError> {
    if framed.len() < FOOTER_BYTES {
        return Err(FrameError::MissingFooter { have: framed.len() });
    }
    let (payload, footer) = framed.split_at(framed.len() - FOOTER_BYTES);
    if footer[..4] != FRAME_MAGIC {
        return Err(FrameError::MissingFooter { have: framed.len() });
    }
    let stored = u32::from_le_bytes(footer[4..8].try_into().expect("4 bytes"));
    let computed = crc32(payload);
    if stored != computed {
        return Err(FrameError::BadChecksum { stored, computed });
    }
    Ok(payload)
}

/// Simulated cost of hashing `len` bytes, in nanoseconds. Modern cores
/// run hardware-assisted CRC-32 at tens of bytes per cycle; 16 B/ns is
/// a conservative sustained figure, charged wherever a frame is sealed
/// or verified on a simulated timeline.
pub fn crc_ns(len: usize) -> f64 {
    len as f64 / 16.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn seal_then_verify_roundtrips() {
        let payload = b"the quick brown fox".to_vec();
        let framed = seal(payload.clone());
        assert_eq!(framed.len(), payload.len() + FOOTER_BYTES);
        assert_eq!(verify(&framed).unwrap(), &payload[..]);
    }

    #[test]
    fn framed_is_plain_plus_footer() {
        let payload: Vec<u8> = (0..200u8).collect();
        let framed = seal(payload.clone());
        assert_eq!(&framed[..payload.len()], &payload[..], "payload untouched");
        assert_eq!(&framed[payload.len()..payload.len() + 4], &FRAME_MAGIC);
    }

    #[test]
    fn any_single_byte_change_is_detected() {
        let framed = seal((0..64u8).collect());
        for pos in 0..framed.len() {
            for mask in [0x01u8, 0x80, 0xFF] {
                let mut bad = framed.clone();
                bad[pos] ^= mask;
                assert!(verify(&bad).is_err(), "flip at {pos} mask {mask:#x} undetected");
            }
        }
    }

    #[test]
    fn short_streams_report_missing_footer() {
        assert_eq!(verify(b"short"), Err(FrameError::MissingFooter { have: 5 }));
        let err = verify(&[]).unwrap_err();
        assert!(err.to_string().contains("footer"));
    }

    #[test]
    fn checksum_error_reports_both_values() {
        let mut framed = seal(vec![1, 2, 3, 4]);
        framed[0] ^= 0xFF;
        match verify(&framed) {
            Err(FrameError::BadChecksum { stored, computed }) => {
                assert_ne!(stored, computed);
            }
            other => panic!("expected BadChecksum, got {other:?}"),
        }
    }

    #[test]
    fn crc_cost_scales_with_length() {
        assert_eq!(crc_ns(0), 0.0);
        assert_eq!(crc_ns(1600), 100.0);
    }
}
