//! Layout bitmap construction and block-level counting.
//!
//! The layout bitmap marks the location of each reference field: one bit
//! per 8 B heap word, set when the word holds a reference (paper Fig. 4a).
//! Object size follows from the bitmap length (`bits × 8 B`), which is how
//! the deserialization unit sizes objects without any per-object length
//! field.
//!
//! [`LayoutCounts`] mirrors the layout manager's per-block popcount logic
//! (paper §V-C): for each 64 B block (8 bits of bitmap), how many words are
//! values/headers and how many are references — the numbers the block
//! manager uses to pull exactly the right amount from the value and
//! reference loaders.

use sdheap::{Heap, KlassRegistry, Addr};

/// The layout bitmap of the object at `addr` (one bool per word, `true` =
/// reference slot).
pub fn object_layout_bits(heap: &Heap, reg: &KlassRegistry, addr: Addr) -> Vec<bool> {
    heap.object(reg, addr).layout_bits()
}

/// Per-64 B-block value/reference counts over a concatenated layout
/// bitmap.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LayoutCounts {
    /// Words holding values or headers in this block (bitmap bit 0).
    pub values: u32,
    /// Words holding references in this block (bitmap bit 1).
    pub refs: u32,
}

impl LayoutCounts {
    /// Counts one 8-bit bitmap chunk (one 64 B block). Chunks shorter than
    /// 8 bits (the image tail) count only their live bits.
    pub fn of_chunk(chunk: &[bool]) -> LayoutCounts {
        debug_assert!(chunk.len() <= 8, "a block covers at most 8 words");
        let refs = chunk.iter().filter(|&&b| b).count() as u32;
        LayoutCounts {
            values: chunk.len() as u32 - refs,
            refs,
        }
    }

    /// Splits a concatenated image bitmap into per-block counts.
    pub fn per_block(image_bits: &[bool]) -> Vec<LayoutCounts> {
        image_bits.chunks(8).map(LayoutCounts::of_chunk).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdheap::{FieldKind, GraphBuilder, ValueType};
    use sdheap::builder::Init;

    #[test]
    fn bitmap_matches_object_view() {
        let mut b = GraphBuilder::new(1 << 16);
        let k = b.klass(
            "K",
            vec![FieldKind::Ref, FieldKind::Value(ValueType::Long), FieldKind::Ref],
        );
        let o = b.object(k, &[Init::Null, Init::Val(9), Init::Null]).unwrap();
        let (heap, reg) = b.finish();
        let bits = object_layout_bits(&heap, &reg, o);
        assert_eq!(bits, vec![false, false, false, true, false, true]);
        // Size recoverable from bitmap length.
        assert_eq!(bits.len() as u64 * 8, heap.object(&reg, o).size_bytes());
    }

    #[test]
    fn counts_per_chunk() {
        let c = LayoutCounts::of_chunk(&[true, false, true, true, false, false, false, false]);
        assert_eq!(c, LayoutCounts { values: 5, refs: 3 });
    }

    #[test]
    fn tail_chunk_counts_partial() {
        let c = LayoutCounts::of_chunk(&[true, false, true]);
        assert_eq!(c, LayoutCounts { values: 1, refs: 2 });
    }

    #[test]
    fn per_block_covers_whole_image() {
        let bits: Vec<bool> = (0..20).map(|i| i % 5 == 0).collect();
        let blocks = LayoutCounts::per_block(&bits);
        assert_eq!(blocks.len(), 3);
        let total_refs: u32 = blocks.iter().map(|b| b.refs).sum();
        let total_vals: u32 = blocks.iter().map(|b| b.values).sum();
        assert_eq!(total_refs, 4);
        assert_eq!(total_vals + total_refs, 20);
    }

    #[test]
    fn empty_image_has_no_blocks() {
        assert!(LayoutCounts::per_block(&[]).is_empty());
    }
}
