//! `sdformat` — the Cereal serialization format (paper §IV).
//!
//! Cereal co-designs the byte format with the accelerator so that values,
//! references and object layouts can be processed independently and in
//! parallel. A serialized stream consists of three decoupled structures
//! plus the total deserialized size:
//!
//! * a **value array** — every non-reference word of every object
//!   (headers included, klass pointers translated to class IDs), written
//!   in serialization order;
//! * a **packed reference array** — the relative address of every
//!   reference slot's target, compressed with the object packing scheme;
//! * **packed layout bitmaps** — per object, one bit per 8 B word
//!   (1 = reference slot), compressed with the same packing scheme;
//! * the **object graph size** — the byte size of the reconstructed image.
//!
//! The *object packing scheme* (§IV-B) drops leading zeros from each item,
//! appends an end bit, pads to 1 B buckets, and maintains an **end map**
//! (one bit per byte, set on each item's final byte) so the deserializer
//! can split items without per-item length fields.
//!
//! This crate owns the bit-exact encoding: [`bitio`] (bit streams),
//! [`pack`] (the packing scheme), [`layout`] (bitmap construction),
//! [`varint`] (LEB128, used by the Kryo baseline), [`stream`] (the
//! whole-stream container and its wire encoding) and [`frame`] (the
//! optional CRC-32 footer that gives every backend corruption detection
//! on hostile wires and disks). Turning an object graph into a stream
//! is the accelerator's job and lives in the `cereal` crate.

pub mod bitio;
pub mod frame;
pub mod layout;
pub mod pack;
pub mod stream;
pub mod varint;

pub use bitio::{BitReader, BitWriter};
pub use frame::{crc32, crc_ns, seal, seal_into, verify, FrameError, FOOTER_BYTES, FRAME_MAGIC};
pub use layout::{object_layout_bits, LayoutCounts};
pub use pack::{EndMap, Packed, Packer, Unpacker};
pub use stream::{CerealStream, FormatError, StreamHeader};
pub use varint::{read_varint, write_varint};
