//! The object packing scheme (paper §IV-B, Fig. 5).
//!
//! Each item (a reference's relative address, or an object's layout
//! bitmap) is packed in two steps:
//!
//! 1. take the item's significant bits — for an integer, its minimal
//!    binary representation with leading zeros dropped (value 0 is the
//!    single bit `0`); for a bit string (layout bitmap), the string as-is —
//!    and append a terminating **end bit** `1`;
//! 2. place the bit string into 1 B buckets, zero-padding the final byte.
//!
//! An **end map** carries one bit per payload byte, set on each item's
//! final byte, so the unpacker can split items without explicit lengths:
//! read bytes until the end-map bit is set, strip the trailing zero
//! padding, strip the end bit, and the remaining prefix is the item.
//!
//! This is exactly invertible and much denser than either an 8 B length
//! per object or fixed-size buckets, the two alternatives the paper
//! rejects in §IV-A.

use crate::bitio::BitWriter;
use std::fmt;

/// One bit per payload byte; set bits mark the last byte of each packed
/// item.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EndMap {
    bits: Vec<u8>,
    len: usize,
}

impl EndMap {
    /// An empty end map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one end-map bit.
    pub fn push(&mut self, is_end: bool) {
        if self.len.is_multiple_of(8) {
            self.bits.push(0);
        }
        if is_end {
            *self.bits.last_mut().expect("just pushed") |= 1 << (7 - self.len % 8);
        }
        self.len += 1;
    }

    /// The bit for payload byte `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "end map index {i} out of range {}", self.len);
        (self.bits[i / 8] >> (7 - i % 8)) & 1 == 1
    }

    /// Number of payload bytes covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the map covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends `n` bits ending an item: `n - 1` clear bits then one set
    /// bit, without per-bit calls.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn push_run(&mut self, n: usize) {
        assert!(n > 0, "an item covers at least one byte");
        let new_len = self.len + n;
        self.bits.resize(new_len.div_ceil(8), 0);
        let last = new_len - 1;
        self.bits[last / 8] |= 1 << (7 - last % 8);
        self.len = new_len;
    }

    /// Number of items (set bits) in the map, by byte popcount.
    pub fn item_count(&self) -> usize {
        let full = self.len / 8;
        let mut count: u32 = self.bits[..full].iter().map(|b| b.count_ones()).sum();
        let rem = self.len % 8;
        if rem > 0 {
            count += (self.bits[full] >> (8 - rem)).count_ones();
        }
        count as usize
    }

    /// Index of the first set bit in `[from, min(limit, len))`.
    ///
    /// Scans a u64 word (8 end-map bytes, i.e. 64 payload bytes) at a
    /// time with `leading_zeros`, so items spanning many bytes — the
    /// dense-graph regime, where one layout bitmap covers hundreds of
    /// payload bytes — cost one word op per 64 bytes instead of a
    /// byte-at-a-time loop (`--bin perf` records the before/after).
    pub fn next_set(&self, from: usize, limit: usize) -> Option<usize> {
        let limit = limit.min(self.len);
        if from >= limit {
            return None;
        }
        // Bits past `len` inside the last byte are zero by construction
        // (`push`/`push_run` only ever set bits below `len`), so any set
        // bit found below is a real end mark; only `limit` needs checking.
        let end_byte = limit.div_ceil(8);
        let mut byte = from / 8;
        let first = self.bits[byte] & (0xFF >> (from % 8));
        if first != 0 {
            let idx = byte * 8 + first.leading_zeros() as usize;
            return (idx < limit).then_some(idx);
        }
        byte += 1;
        while byte + 8 <= end_byte {
            let word = u64::from_be_bytes(
                self.bits[byte..byte + 8].try_into().expect("8-byte slice"),
            );
            if word != 0 {
                let idx = byte * 8 + word.leading_zeros() as usize;
                return (idx < limit).then_some(idx);
            }
            byte += 8;
        }
        while byte < end_byte {
            let cur = self.bits[byte];
            if cur != 0 {
                let idx = byte * 8 + cur.leading_zeros() as usize;
                return (idx < limit).then_some(idx);
            }
            byte += 1;
        }
        None
    }

    /// Backing bytes (for size accounting and wire encoding).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bits
    }

    /// Rebuilds from wire bytes plus the covered length.
    ///
    /// # Panics
    /// Panics if `bytes` is shorter than `len` requires.
    pub fn from_bytes(bytes: Vec<u8>, len: usize) -> Self {
        assert!(bytes.len() * 8 >= len, "end map bytes too short");
        EndMap { bits: bytes, len }
    }
}

/// A finished packed array: payload bytes plus the end map.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Packed {
    /// Packed payload bytes.
    pub bytes: Vec<u8>,
    /// End map over the payload.
    pub end_map: EndMap,
    /// Number of packed items.
    pub count: usize,
}

impl fmt::Debug for Packed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Packed")
            .field("items", &self.count)
            .field("payload_bytes", &self.bytes.len())
            .field("end_map_bytes", &self.end_map.as_bytes().len())
            .finish()
    }
}

impl Packed {
    /// Total wire size: payload plus end map.
    pub fn total_bytes(&self) -> usize {
        self.bytes.len() + self.end_map.as_bytes().len()
    }

    /// Packs a sequence of integer items (convenience over [`Packer`]).
    pub fn from_values(values: impl IntoIterator<Item = u64>) -> Packed {
        let mut p = Packer::new();
        for v in values {
            p.push_value(v);
        }
        p.finish()
    }

    /// Unpacks all items as integers (convenience over [`Unpacker`]).
    ///
    /// # Panics
    /// Panics if any item is longer than 64 bits — use [`Unpacker`] for
    /// bit-string items.
    pub fn to_values(&self) -> Vec<u64> {
        let mut u = Unpacker::new(self);
        // `count` may come from an untrusted wire header; every item
        // occupies at least one payload byte, so bound the reservation.
        let mut out = Vec::with_capacity(self.count.min(self.bytes.len()));
        while let Some(v) = u.next_value() {
            out.push(v);
        }
        out
    }
}

/// Incremental packer.
///
/// ```
/// use sdformat::pack::{Packer, Unpacker};
/// let mut p = Packer::new();
/// p.push_value(48);                       // a relative address
/// p.push_bits(&[false, false, true]);     // a layout bitmap
/// let packed = p.finish();
/// let mut u = Unpacker::new(&packed);
/// assert_eq!(u.next_value(), Some(48));
/// assert_eq!(u.next_item(), Some(vec![false, false, true]));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Packer {
    payload: BitWriter,
    end_map: EndMap,
    count: usize,
}

impl Packer {
    /// An empty packer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Packs an integer item: minimal binary representation (leading
    /// zeros dropped; 0 → single `0` bit), end bit, byte padding.
    pub fn push_value(&mut self, value: u64) {
        let sig = 64 - value.leading_zeros();
        let sig = sig.max(1); // value 0 still contributes one bit
        // Items always start byte-aligned (padding below), so byte_len()
        // is exact here.
        let start_byte = self.payload.byte_len();
        self.payload.push_bits(value, sig);
        self.payload.push(true); // end bit
        self.payload.pad_to_byte();
        let end_byte = self.payload.byte_len();
        self.end_map.push_run(end_byte - start_byte);
        self.count += 1;
    }

    /// Packs a raw bit-string item (used for layout bitmaps, whose leading
    /// zeros are significant and therefore kept).
    pub fn push_bits(&mut self, bits: &[bool]) {
        let start_byte = self.payload.byte_len();
        self.payload.push_slice(bits);
        self.payload.push(true); // end bit
        self.payload.pad_to_byte();
        let end_byte = self.payload.byte_len();
        self.end_map.push_run(end_byte - start_byte);
        self.count += 1;
    }

    /// Number of items packed so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Finishes packing.
    pub fn finish(self) -> Packed {
        Packed {
            bytes: self.payload.into_bytes(),
            end_map: self.end_map,
            count: self.count,
        }
    }
}

/// Sequential unpacker over a [`Packed`] array.
#[derive(Clone, Debug)]
pub struct Unpacker<'a> {
    packed: &'a Packed,
    byte_pos: usize,
}

impl<'a> Unpacker<'a> {
    /// An unpacker positioned at the first item.
    pub fn new(packed: &'a Packed) -> Self {
        Unpacker {
            packed,
            byte_pos: 0,
        }
    }

    /// Byte range `[start, end]` of the next item, found by scanning the
    /// end map byte-at-a-time; `None` at end of stream or when the end
    /// map never marks an end (corrupt — terminate the stream).
    fn next_span(&mut self) -> Option<(usize, usize)> {
        if self.byte_pos >= self.packed.bytes.len() {
            return None;
        }
        let start = self.byte_pos;
        let limit = self.packed.bytes.len().min(self.packed.end_map.len());
        match self.packed.end_map.next_set(start, limit) {
            Some(end) => {
                self.byte_pos = end + 1;
                Some((start, end))
            }
            None => {
                // Corrupt: ran off the payload without an end mark.
                self.byte_pos = self.packed.bytes.len();
                None
            }
        }
    }

    /// Unpacks the next item as a bit string (end bit and padding
    /// removed); `None` at end of stream **or on corrupt data** (an end
    /// map that never marks an end, or an item with no end bit) — corrupt
    /// input degrades to early stream termination, never a panic.
    pub fn next_item(&mut self) -> Option<Vec<bool>> {
        let (start, end) = self.next_span()?;
        let slice = &self.packed.bytes[start..=end];
        // Locate the end bit: the lowest set bit of the final non-zero
        // byte. Everything after it is zero padding.
        let Some(last) = slice.iter().rposition(|&b| b != 0) else {
            // Corrupt: an all-zero item has no end bit.
            self.byte_pos = self.packed.bytes.len();
            return None;
        };
        let nbits = (last + 1) * 8 - 1 - slice[last].trailing_zeros() as usize;
        let mut bits: Vec<bool> = Vec::with_capacity(nbits);
        for i in 0..nbits {
            bits.push(slice[i / 8] & (1 << (7 - i % 8)) != 0);
        }
        Some(bits)
    }

    /// Bit length of the next item (end bit and padding excluded) without
    /// materializing it; same corruption semantics as
    /// [`Self::next_item`].
    pub fn next_item_len(&mut self) -> Option<usize> {
        let (start, end) = self.next_span()?;
        let slice = &self.packed.bytes[start..=end];
        let Some(last) = slice.iter().rposition(|&b| b != 0) else {
            self.byte_pos = self.packed.bytes.len();
            return None;
        };
        Some((last + 1) * 8 - 1 - slice[last].trailing_zeros() as usize)
    }

    /// Unpacks the next item as an integer; `None` at end of stream or on
    /// corrupt data (including items longer than 64 bits, which no valid
    /// integer item can be). Decodes straight from the payload bytes —
    /// no intermediate bit vector.
    pub fn next_value(&mut self) -> Option<u64> {
        let (start, end) = self.next_span()?;
        let slice = &self.packed.bytes[start..=end];
        // A valid integer item is ≤ 64 payload bits + end bit → ≤ 9 bytes.
        if slice.len() > 9 {
            self.byte_pos = self.packed.bytes.len();
            return None;
        }
        let mut buf = [0u8; 16];
        buf[..slice.len()].copy_from_slice(slice);
        // Right-align the item's bits so the zero padding and end bit sit
        // at the low end.
        let word = u128::from_be_bytes(buf) >> (128 - slice.len() * 8);
        if word == 0 {
            // Corrupt: an all-zero item has no end bit.
            self.byte_pos = self.packed.bytes.len();
            return None;
        }
        let tz = word.trailing_zeros(); // zero padding below the end bit
        let nbits = slice.len() * 8 - 1 - tz as usize;
        if nbits > 64 {
            self.byte_pos = self.packed.bytes.len();
            return None;
        }
        Some((word >> (tz + 1)) as u64)
    }

    /// Bytes consumed so far.
    pub fn byte_pos(&self) -> usize {
        self.byte_pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packs_paper_style_values() {
        // Small relative addresses pack into one byte each.
        let p = Packed::from_values([0u64, 1, 8, 64, 127]);
        assert_eq!(p.count, 5);
        assert_eq!(p.to_values(), vec![0, 1, 8, 64, 127]);
        // 0→2 bits, 1→2, 8→5, 64→8, 127→8: all fit in 1 byte each.
        assert_eq!(p.bytes.len(), 5);
        assert_eq!(p.end_map.item_count(), 5);
    }

    #[test]
    fn zero_packs_to_one_byte() {
        let p = Packed::from_values([0u64]);
        assert_eq!(p.bytes.len(), 1);
        // bits: value "0", end bit "1", padding → 0b0100_0000
        assert_eq!(p.bytes[0], 0b0100_0000);
        assert_eq!(p.to_values(), vec![0]);
    }

    #[test]
    fn large_values_span_bytes() {
        let v = 0xdead_beef_u64;
        let p = Packed::from_values([v]);
        // 32 significant bits + end bit = 33 bits → 5 bytes.
        assert_eq!(p.bytes.len(), 5);
        assert_eq!(p.to_values(), vec![v]);
    }

    #[test]
    fn max_u64_roundtrips() {
        let p = Packed::from_values([u64::MAX, 0, u64::MAX]);
        assert_eq!(p.to_values(), vec![u64::MAX, 0, u64::MAX]);
        // 64 sig bits + end bit = 65 bits → 9 bytes per item.
        assert_eq!(p.bytes.len(), 9 * 2 + 1);
    }

    #[test]
    fn bit_string_items_keep_leading_zeros() {
        let bitmap = vec![false, false, false, true, false, true];
        let mut p = Packer::new();
        p.push_bits(&bitmap);
        let packed = p.finish();
        let mut u = Unpacker::new(&packed);
        assert_eq!(u.next_item(), Some(bitmap));
        assert_eq!(u.next_item(), None);
    }

    #[test]
    fn bit_string_all_zeros() {
        // A bitmap of all zeros (object with no references) must survive.
        let bitmap = vec![false; 13];
        let mut p = Packer::new();
        p.push_bits(&bitmap);
        let packed = p.finish();
        assert_eq!(Unpacker::new(&packed).next_item(), Some(bitmap));
    }

    #[test]
    fn bit_string_trailing_ones() {
        // Trailing 1s in the item must not be confused with the end bit.
        let bitmap = vec![true, true, true, true, true, true, true]; // 7 ones
        let mut p = Packer::new();
        p.push_bits(&bitmap);
        let packed = p.finish();
        assert_eq!(Unpacker::new(&packed).next_item(), Some(bitmap));
    }

    #[test]
    fn exact_byte_boundary_item() {
        // 7 bits + end bit = exactly 8: no padding, next item starts clean.
        let bits = vec![true, false, true, false, true, false, true];
        let mut p = Packer::new();
        p.push_bits(&bits);
        p.push_value(5);
        let packed = p.finish();
        let mut u = Unpacker::new(&packed);
        assert_eq!(u.next_item(), Some(bits));
        assert_eq!(u.next_value(), Some(5));
    }

    #[test]
    fn long_bitmap_spans_many_bytes() {
        let bitmap: Vec<bool> = (0..1000).map(|i| i % 7 == 0).collect();
        let mut p = Packer::new();
        p.push_bits(&bitmap);
        let packed = p.finish();
        assert_eq!(Unpacker::new(&packed).next_item(), Some(bitmap));
        assert_eq!(packed.bytes.len(), (1000usize + 1).div_ceil(8)); // 126 bytes
    }

    #[test]
    fn mixed_stream_in_order() {
        let mut p = Packer::new();
        p.push_value(300);
        p.push_bits(&[false, true, false]);
        p.push_value(0);
        assert_eq!(p.count(), 3);
        let packed = p.finish();
        let mut u = Unpacker::new(&packed);
        assert_eq!(u.next_value(), Some(300));
        assert_eq!(u.next_item(), Some(vec![false, true, false]));
        assert_eq!(u.next_value(), Some(0));
        assert_eq!(u.next_item(), None);
        assert_eq!(u.byte_pos(), packed.bytes.len());
    }

    #[test]
    fn end_map_wire_roundtrip() {
        let p = Packed::from_values([5u64, 1000, 3]);
        let rebuilt = EndMap::from_bytes(p.end_map.as_bytes().to_vec(), p.end_map.len());
        assert_eq!(rebuilt, p.end_map);
    }

    #[test]
    fn end_map_counts() {
        let mut m = EndMap::new();
        for i in 0..20 {
            m.push(i % 3 == 2);
        }
        assert_eq!(m.len(), 20);
        assert_eq!(m.item_count(), 6);
        assert!(m.get(2));
        assert!(!m.get(3));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn end_map_bounds() {
        let m = EndMap::new();
        let _ = m.get(0);
    }

    /// Reference next_set: the pre-word-scan byte-at-a-time loop.
    fn next_set_ref(m: &EndMap, from: usize, limit: usize) -> Option<usize> {
        let limit = limit.min(m.len());
        (from..limit).find(|&i| m.get(i))
    }

    #[test]
    fn next_set_matches_reference_on_long_runs() {
        // Dense-graph shape: items spanning many bytes, so the scan
        // crosses several u64 words between set bits.
        let mut m = EndMap::new();
        for run in [1usize, 7, 8, 9, 63, 64, 65, 200, 3, 1000, 1] {
            m.push_run(run);
        }
        for from in 0..m.len() {
            for limit in [from, from + 1, from + 9, from + 100, m.len(), usize::MAX] {
                assert_eq!(
                    m.next_set(from, limit),
                    next_set_ref(&m, from, limit),
                    "from {from}, limit {limit}"
                );
            }
        }
    }

    #[test]
    fn next_set_word_boundaries() {
        // A single end bit at every interesting position around the
        // 8-byte word boundary the fast path reads.
        for pos in [0usize, 7, 8, 15, 55, 56, 63, 64, 65, 127, 128] {
            let mut m = EndMap::new();
            m.push_run(pos + 1); // end bit lands exactly on `pos`
            assert_eq!(m.next_set(0, usize::MAX), Some(pos), "pos {pos}");
            assert_eq!(m.next_set(pos, usize::MAX), Some(pos));
            assert_eq!(m.next_set(pos + 1, usize::MAX), None);
            assert_eq!(m.next_set(0, pos), None, "limit excludes the bit");
            assert_eq!(m.next_set(0, pos + 1), Some(pos));
        }
    }

    #[test]
    fn packing_is_denser_than_fixed_8b() {
        // The motivating comparison from §IV-A: small relative addresses
        // take far fewer bytes than 8 B longs.
        let values: Vec<u64> = (0..1000u64).map(|i| i * 24).collect();
        let p = Packed::from_values(values.iter().copied());
        assert!(
            p.total_bytes() < 1000 * 8 / 2,
            "packed {} bytes, fixed would be 8000",
            p.total_bytes()
        );
    }
}
