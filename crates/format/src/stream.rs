//! The serialized stream container and its wire encoding.
//!
//! A [`CerealStream`] holds the three decoupled structures of the Cereal
//! format (paper Fig. 4b / Fig. 5b) plus the object-graph size:
//!
//! ```text
//! ┌────────────┬─────────────┬──────────────────────┬──────────────────────┐
//! │   header   │ value array │ packed reference     │ packed layout        │
//! │ (sizes)    │ (8 B words) │ array + end map      │ bitmaps + end map    │
//! └────────────┴─────────────┴──────────────────────┴──────────────────────┘
//! ```
//!
//! The header carries the section sizes so a deserializer (and the DU's
//! three eager prefetchers) can locate all sections up front; the paper
//! counts only the 4 B object-graph size as format overhead, the rest of
//! our header replaces its out-of-band framing.
//!
//! Reference encoding: each item of the reference array is
//! `relative_address + 1`, with `0` reserved for null — the layout bitmap
//! is produced from static type information and therefore marks null
//! slots as references too, so nulls must be representable in the
//! reference array.

use crate::pack::{EndMap, Packed};
use std::fmt;

/// Magic number identifying a Cereal stream (`"CRL1"`).
pub const MAGIC: u32 = 0x4352_4c31;

/// Errors from decoding a serialized stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FormatError {
    /// The stream is shorter than its header or declared sections.
    Truncated {
        /// Bytes needed.
        needed: usize,
        /// Bytes present.
        have: usize,
    },
    /// The magic number did not match.
    BadMagic(u32),
    /// Internal inconsistency (e.g. value array not word-aligned).
    Corrupt(&'static str),
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::Truncated { needed, have } => {
                write!(f, "truncated stream: need {needed} bytes, have {have}")
            }
            FormatError::BadMagic(m) => write!(f, "bad magic {m:#x}"),
            FormatError::Corrupt(what) => write!(f, "corrupt stream: {what}"),
        }
    }
}

impl std::error::Error for FormatError {}

/// Decoded fixed-size stream header.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamHeader {
    /// Size in bytes of the reconstructed object image (the paper's 4 B
    /// "sum of object sizes").
    pub total_object_bytes: u32,
    /// Number of serialized objects.
    pub object_count: u32,
    /// Length of the value array in bytes.
    pub value_bytes: u32,
    /// Packed reference array payload length in bytes.
    pub ref_payload_bytes: u32,
    /// Reference end-map length in bits (== payload bytes covered).
    pub ref_end_bits: u32,
    /// Number of reference items.
    pub ref_count: u32,
    /// Packed layout-bitmap payload length in bytes.
    pub bitmap_payload_bytes: u32,
    /// Bitmap end-map length in bits.
    pub bitmap_end_bits: u32,
    /// Number of bitmap items (== object count).
    pub bitmap_count: u32,
}

impl StreamHeader {
    /// Encoded header size in bytes (magic + 9 × u32).
    pub const BYTES: usize = 4 + 9 * 4;
}

/// An in-memory serialized stream.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CerealStream {
    /// Byte size of the reconstructed image.
    pub total_object_bytes: u32,
    /// Number of objects in the stream.
    pub object_count: u32,
    /// Value array: headers and primitive words in serialization order.
    pub value_array: Vec<u8>,
    /// Packed reference array (`rel + 1`, 0 = null).
    pub refs: Packed,
    /// Packed per-object layout bitmaps.
    pub bitmaps: Packed,
}

/// Encodes a reference-array item: `None` (null) → 0, `Some(rel)` →
/// `rel + 1`.
pub fn encode_ref(rel: Option<u32>) -> u64 {
    match rel {
        None => 0,
        Some(r) => u64::from(r) + 1,
    }
}

/// Decodes a reference-array item (inverse of [`encode_ref`]).
pub fn decode_ref(item: u64) -> Option<u32> {
    if item == 0 {
        None
    } else {
        Some(u32::try_from(item - 1).expect("relative address exceeds 32 bits"))
    }
}

impl CerealStream {
    /// Serialized wire size in bytes — what Table IV / Fig. 16 account.
    pub fn wire_bytes(&self) -> usize {
        StreamHeader::BYTES
            + self.value_array.len()
            + self.refs.total_bytes()
            + self.bitmaps.total_bytes()
    }

    /// Wire size of the *baseline* (unpacked) format of §IV-A: 8 B per
    /// reference and an 8 B bitmap-length prefix per object instead of the
    /// packed encodings. Used by the packing-ablation experiment.
    pub fn baseline_wire_bytes(&self) -> usize {
        let mut u = crate::pack::Unpacker::new(&self.bitmaps);
        let mut bitmap_payload = 0usize;
        while let Some(len) = u.next_item_len() {
            bitmap_payload += len.div_ceil(8);
        }
        StreamHeader::BYTES
            + self.value_array.len()
            + self.refs.count * 8
            + self.object_count as usize * 8
            + bitmap_payload
    }

    /// Encodes to wire bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_bytes());
        self.to_bytes_into(&mut out);
        out
    }

    /// Encodes to wire bytes into a caller-owned scratch buffer, clearing
    /// it first. Repeated encoders (e.g. the JSBS harness's 1000-rep
    /// loops) reuse one allocation across calls.
    pub fn to_bytes_into(&self, out: &mut Vec<u8>) {
        out.clear();
        out.reserve(self.wire_bytes());
        let h = [
            MAGIC,
            self.total_object_bytes,
            self.object_count,
            self.value_array.len() as u32,
            self.refs.bytes.len() as u32,
            self.refs.end_map.len() as u32,
            self.refs.count as u32,
            self.bitmaps.bytes.len() as u32,
            self.bitmaps.end_map.len() as u32,
            self.bitmaps.count as u32,
        ];
        for w in h {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.extend_from_slice(&self.value_array);
        out.extend_from_slice(&self.refs.bytes);
        out.extend_from_slice(self.refs.end_map.as_bytes());
        out.extend_from_slice(&self.bitmaps.bytes);
        out.extend_from_slice(self.bitmaps.end_map.as_bytes());
    }

    /// Decodes from wire bytes.
    ///
    /// # Errors
    /// [`FormatError`] on truncation, bad magic, or inconsistent sizes.
    pub fn from_bytes(bytes: &[u8]) -> Result<CerealStream, FormatError> {
        if bytes.len() < StreamHeader::BYTES {
            return Err(FormatError::Truncated {
                needed: StreamHeader::BYTES,
                have: bytes.len(),
            });
        }
        let word = |i: usize| {
            u32::from_le_bytes(bytes[4 * i..4 * i + 4].try_into().expect("4 bytes"))
        };
        if word(0) != MAGIC {
            return Err(FormatError::BadMagic(word(0)));
        }
        let header = StreamHeader {
            total_object_bytes: word(1),
            object_count: word(2),
            value_bytes: word(3),
            ref_payload_bytes: word(4),
            ref_end_bits: word(5),
            ref_count: word(6),
            bitmap_payload_bytes: word(7),
            bitmap_end_bits: word(8),
            bitmap_count: word(9),
        };
        if !header.value_bytes.is_multiple_of(8) {
            return Err(FormatError::Corrupt("value array not word aligned"));
        }
        let ref_end_bytes = (header.ref_end_bits as usize).div_ceil(8);
        let bm_end_bytes = (header.bitmap_end_bits as usize).div_ceil(8);
        let needed = StreamHeader::BYTES
            + header.value_bytes as usize
            + header.ref_payload_bytes as usize
            + ref_end_bytes
            + header.bitmap_payload_bytes as usize
            + bm_end_bytes;
        if bytes.len() < needed {
            return Err(FormatError::Truncated {
                needed,
                have: bytes.len(),
            });
        }
        let mut pos = StreamHeader::BYTES;
        let mut take = |n: usize| {
            let s = &bytes[pos..pos + n];
            pos += n;
            s.to_vec()
        };
        let value_array = take(header.value_bytes as usize);
        let ref_payload = take(header.ref_payload_bytes as usize);
        let ref_end = take(ref_end_bytes);
        let bm_payload = take(header.bitmap_payload_bytes as usize);
        let bm_end = take(bm_end_bytes);
        Ok(CerealStream {
            total_object_bytes: header.total_object_bytes,
            object_count: header.object_count,
            value_array,
            refs: Packed {
                bytes: ref_payload,
                end_map: EndMap::from_bytes(ref_end, header.ref_end_bits as usize),
                count: header.ref_count as usize,
            },
            bitmaps: Packed {
                bytes: bm_payload,
                end_map: EndMap::from_bytes(bm_end, header.bitmap_end_bits as usize),
                count: header.bitmap_count as usize,
            },
        })
    }

    /// Value array interpreted as 8 B little-endian words.
    pub fn value_words(&self) -> Vec<u64> {
        self.value_array
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect()
    }
}

impl Packed {
    /// All items as bit strings (helper for size accounting; streaming
    /// consumers should use [`crate::pack::Unpacker`]).
    pub fn to_items(&self) -> Vec<Vec<bool>> {
        let mut u = crate::pack::Unpacker::new(self);
        // `count` may come from an untrusted wire header; every item
        // occupies at least one payload byte, so bound the reservation.
        let mut out = Vec::with_capacity(self.count.min(self.bytes.len()));
        while let Some(item) = u.next_item() {
            out.push(item);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::Packer;

    fn sample_stream() -> CerealStream {
        let mut refs = Packer::new();
        refs.push_value(encode_ref(Some(0)));
        refs.push_value(encode_ref(None));
        refs.push_value(encode_ref(Some(48)));
        let mut bitmaps = Packer::new();
        bitmaps.push_bits(&[false, false, false, true, true]);
        bitmaps.push_bits(&[false, false, false, false]);
        let mut value_array = Vec::new();
        for w in [0xaau64, 0x1, 0x0, 0x2a, 0x7u64, 0x2, 0x0, 0x9] {
            value_array.extend_from_slice(&w.to_le_bytes());
        }
        CerealStream {
            total_object_bytes: 72,
            object_count: 2,
            value_array,
            refs: refs.finish(),
            bitmaps: bitmaps.finish(),
        }
    }

    #[test]
    fn wire_roundtrip() {
        let s = sample_stream();
        let bytes = s.to_bytes();
        assert_eq!(bytes.len(), s.wire_bytes());
        let decoded = CerealStream::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, s);
    }

    #[test]
    fn ref_encoding_distinguishes_null_from_zero() {
        assert_eq!(encode_ref(None), 0);
        assert_eq!(encode_ref(Some(0)), 1);
        assert_eq!(decode_ref(0), None);
        assert_eq!(decode_ref(1), Some(0));
        assert_eq!(decode_ref(encode_ref(Some(12345))), Some(12345));
    }

    #[test]
    fn bad_magic_rejected() {
        let s = sample_stream();
        let mut bytes = s.to_bytes();
        bytes[0] ^= 0xff;
        assert!(matches!(
            CerealStream::from_bytes(&bytes),
            Err(FormatError::BadMagic(_))
        ));
    }

    #[test]
    fn truncation_rejected_at_header_and_body() {
        let s = sample_stream();
        let bytes = s.to_bytes();
        let err = CerealStream::from_bytes(&bytes[..10]).unwrap_err();
        assert!(matches!(err, FormatError::Truncated { .. }));
        let err = CerealStream::from_bytes(&bytes[..bytes.len() - 1]).unwrap_err();
        assert!(matches!(err, FormatError::Truncated { .. }));
        assert!(err.to_string().contains("truncated"));
    }

    #[test]
    fn unaligned_value_array_rejected() {
        let s = sample_stream();
        let mut bytes = s.to_bytes();
        bytes[4 * 3] = 7; // value_bytes := 7
        assert!(matches!(
            CerealStream::from_bytes(&bytes),
            Err(FormatError::Corrupt(_))
        ));
    }

    #[test]
    fn value_words_decode() {
        let s = sample_stream();
        let words = s.value_words();
        assert_eq!(words.len(), 8);
        assert_eq!(words[0], 0xaa);
        assert_eq!(words[3], 0x2a);
    }

    #[test]
    fn baseline_format_is_larger_for_small_refs() {
        let s = sample_stream();
        assert!(
            s.baseline_wire_bytes() > s.wire_bytes(),
            "packing must beat 8 B refs + 8 B bitmap lengths: {} vs {}",
            s.baseline_wire_bytes(),
            s.wire_bytes()
        );
    }

    #[test]
    fn empty_stream_roundtrips() {
        let s = CerealStream::default();
        let decoded = CerealStream::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(decoded, s);
        assert_eq!(decoded.wire_bytes(), StreamHeader::BYTES);
    }
}
