//! LEB128-style variable-length integers.
//!
//! Kryo writes lengths and small integers as varints ("optimized positive
//! int" encoding); our Kryo baseline reproduces that, so its serialized
//! sizes land in the right regime relative to Java S/D and Cereal
//! (paper Table IV).

/// Appends `value` to `out` as a little-endian base-128 varint and returns
/// the number of bytes written (1–10).
pub fn write_varint(out: &mut Vec<u8>, mut value: u64) -> usize {
    let mut n = 0;
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        n += 1;
        if value == 0 {
            out.push(byte);
            return n;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a varint from `bytes` starting at `pos`, returning the value and
/// the new position.
///
/// Returns `None` on truncated input or a varint longer than 10 bytes.
pub fn read_varint(bytes: &[u8], mut pos: usize) -> Option<(u64, usize)> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = bytes.get(pos)?;
        pos += 1;
        if shift >= 64 {
            return None; // over-long encoding
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some((value, pos));
        }
        shift += 7;
    }
}

/// Number of bytes `value` occupies as a varint.
pub fn varint_len(value: u64) -> usize {
    let bits = 64 - value.leading_zeros();
    (bits.max(1) as usize).div_ceil(7)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            let n = write_varint(&mut buf, v);
            assert_eq!(n, buf.len());
            assert_eq!(n, varint_len(v));
            let (decoded, pos) = read_varint(&buf, 0).unwrap();
            assert_eq!(decoded, v);
            assert_eq!(pos, n);
        }
    }

    #[test]
    fn sizes_match_expectation() {
        assert_eq!(varint_len(0), 1);
        assert_eq!(varint_len(127), 1);
        assert_eq!(varint_len(128), 2);
        assert_eq!(varint_len(u64::MAX), 10);
    }

    #[test]
    fn sequential_reads() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 5);
        write_varint(&mut buf, 300);
        write_varint(&mut buf, 0);
        let (a, p) = read_varint(&buf, 0).unwrap();
        let (b, p) = read_varint(&buf, p).unwrap();
        let (c, p) = read_varint(&buf, p).unwrap();
        assert_eq!((a, b, c), (5, 300, 0));
        assert_eq!(p, buf.len());
    }

    #[test]
    fn truncated_input() {
        let buf = [0x80u8, 0x80]; // continuation bits with no terminator
        assert_eq!(read_varint(&buf, 0), None);
        assert_eq!(read_varint(&[], 0), None);
    }

    #[test]
    fn overlong_rejected() {
        let buf = [0xffu8; 11];
        assert_eq!(read_varint(&buf, 0), None);
    }
}
