//! Golden-stream equivalence: the word-at-a-time bit I/O must emit the
//! exact byte stream of the retained bit-by-bit reference implementation
//! for every width and any interleaving, and the readers must decode
//! identically.

use sdformat::bitio::naive::{NaiveBitReader, NaiveBitWriter};
use sdformat::{BitReader, BitWriter};
use sdheap::rng::Rng;

/// Every width n ∈ 0..=64, across every starting bit offset within a
/// byte, produces identical bytes.
#[test]
fn all_widths_at_all_offsets_match_naive() {
    for n in 0..=64u32 {
        for offset in 0..8u32 {
            let mut fast = BitWriter::new();
            let mut slow = NaiveBitWriter::new();
            fast.push_bits(u64::MAX, offset);
            slow.push_bits(u64::MAX, offset);
            fast.push_bits(0xA5A5_A5A5_A5A5_A5A5, n);
            slow.push_bits(0xA5A5_A5A5_A5A5_A5A5, n);
            assert_eq!(
                fast.into_bytes(),
                slow.into_bytes(),
                "width {n} at offset {offset}"
            );
        }
    }
}

/// Seeded random sequences of mixed-width pushes, single bits, slices
/// and pads produce identical streams.
#[test]
fn random_push_sequences_match_naive() {
    let mut rng = Rng::new(0xB17_601D);
    for round in 0..50 {
        let mut fast = BitWriter::new();
        let mut slow = NaiveBitWriter::new();
        for _ in 0..rng.gen_range_usize(1, 200) {
            match rng.gen_range_u64(0, 4) {
                0 => {
                    let n = rng.gen_range_u64(0, 65) as u32;
                    let v = rng.next_u64();
                    fast.push_bits(v, n);
                    slow.push_bits(v, n);
                }
                1 => {
                    let b = rng.gen_bool(0.5);
                    fast.push(b);
                    slow.push(b);
                }
                2 => {
                    let bits: Vec<bool> = (0..rng.gen_range_usize(0, 150))
                        .map(|_| rng.gen_bool(0.5))
                        .collect();
                    fast.push_slice(&bits);
                    slow.push_slice(&bits);
                }
                _ => {
                    assert_eq!(fast.pad_to_byte(), slow.pad_to_byte());
                }
            }
            assert_eq!(fast.bit_len(), slow.bit_len(), "round {round}");
        }
        assert_eq!(fast.into_bytes(), slow.into_bytes(), "round {round}");
    }
}

/// The word-window reader decodes identically to the bit-by-bit
/// reference for random streams and random read widths.
#[test]
fn readers_decode_identically() {
    let mut rng = Rng::new(0xB17_602D);
    for _ in 0..50 {
        let bytes: Vec<u8> = (0..rng.gen_range_usize(1, 128))
            .map(|_| rng.next_u64() as u8)
            .collect();
        let mut fast = BitReader::new(&bytes);
        let mut slow = NaiveBitReader::new(&bytes);
        loop {
            let n = rng.gen_range_u64(0, 65) as u32;
            let a = fast.read_bits(n);
            let b = slow.read_bits(n);
            assert_eq!(a, b);
            if a.is_none() {
                // Both exhausted: single-bit reads agree too.
                assert_eq!(fast.next_bit(), slow.next_bit());
                break;
            }
        }
    }
}

/// Reads that straddle the maximum 9-byte window (offset 7, width 64)
/// are exact.
#[test]
fn max_straddle_reads_are_exact() {
    let mut w = BitWriter::new();
    w.push_bits(0x7F, 7); // misalign by 7
    w.push_bits(0xDEAD_BEEF_CAFE_F00D, 64);
    let bytes = w.into_bytes();
    let mut r = BitReader::new(&bytes);
    assert_eq!(r.read_bits(7), Some(0x7F));
    assert_eq!(r.read_bits(64), Some(0xDEAD_BEEF_CAFE_F00D));
}
