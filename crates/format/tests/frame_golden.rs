//! Frame-layer golden and property tests: a checksummed stream is the
//! plain stream plus a footer, and corruption never slips through.

use sdformat::{frame, CerealStream, Packer};
use sdheap::rng::Rng;

fn sample_stream() -> CerealStream {
    let mut refs = Packer::new();
    for rel in [1u64, 0, 49, 7, 0, 1] {
        refs.push_value(rel);
    }
    let mut bitmaps = Packer::new();
    bitmaps.push_bits(&[false, true, true, false]);
    bitmaps.push_bits(&[false, false, true]);
    let mut value_array = Vec::new();
    for w in 0..12u64 {
        value_array.extend_from_slice(&(w.wrapping_mul(0x9E37_79B9)).to_le_bytes());
    }
    CerealStream {
        total_object_bytes: 96,
        object_count: 2,
        value_array,
        refs: refs.finish(),
        bitmaps: bitmaps.finish(),
    }
}

#[test]
fn golden_checksummed_stream_is_plain_plus_footer() {
    let stream = sample_stream();
    let plain = stream.to_bytes();
    let framed = frame::seal(plain.clone());
    // Byte-identical except the footer: same prefix, exactly
    // FOOTER_BYTES longer, magic + CRC at the end.
    assert_eq!(framed.len(), plain.len() + frame::FOOTER_BYTES);
    assert_eq!(&framed[..plain.len()], &plain[..]);
    assert_eq!(&framed[plain.len()..plain.len() + 4], &frame::FRAME_MAGIC);
    let stored = u32::from_le_bytes(framed[plain.len() + 4..].try_into().unwrap());
    assert_eq!(stored, frame::crc32(&plain));
    // Verification strips the footer and the stream decodes as before.
    let payload = frame::verify(&framed).expect("intact frame verifies");
    let decoded = CerealStream::from_bytes(payload).expect("payload decodes");
    assert_eq!(decoded, stream);
}

#[test]
fn seeded_bit_flips_are_always_detected() {
    let framed = frame::seal(sample_stream().to_bytes());
    let mut rng = Rng::new(0xC0FF_EE00_F417);
    for _ in 0..500 {
        let bit = rng.gen_range_usize(0, framed.len() * 8);
        let mut bad = framed.clone();
        bad[bit / 8] ^= 1 << (bit % 8);
        assert!(
            frame::verify(&bad).is_err(),
            "single-bit flip at bit {bit} went undetected"
        );
    }
}

#[test]
fn truncated_frames_are_detected() {
    let framed = frame::seal(sample_stream().to_bytes());
    let mut rng = Rng::new(0x7255_0000);
    for _ in 0..100 {
        let keep = rng.gen_range_usize(0, framed.len());
        assert!(
            frame::verify(&framed[..keep]).is_err(),
            "truncation to {keep} bytes went undetected"
        );
    }
}
