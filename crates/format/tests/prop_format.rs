//! Property-based tests for the Cereal format primitives.

use proptest::prelude::*;
use sdformat::pack::{Packed, Packer, Unpacker};
use sdformat::stream::{decode_ref, encode_ref, CerealStream};
use sdformat::varint::{read_varint, write_varint};
use sdformat::{BitReader, BitWriter};

proptest! {
    /// Any sequence of u64 values survives pack → unpack.
    #[test]
    fn pack_roundtrips_values(values in proptest::collection::vec(any::<u64>(), 0..200)) {
        let packed = Packed::from_values(values.iter().copied());
        prop_assert_eq!(packed.to_values(), values);
    }

    /// Any sequence of bit strings (layout bitmaps) survives pack → unpack,
    /// leading zeros included.
    #[test]
    fn pack_roundtrips_bitmaps(
        bitmaps in proptest::collection::vec(
            proptest::collection::vec(any::<bool>(), 0..100), 0..50)
    ) {
        let mut p = Packer::new();
        for bm in &bitmaps {
            p.push_bits(bm);
        }
        let packed = p.finish();
        let mut u = Unpacker::new(&packed);
        for bm in &bitmaps {
            let item = u.next_item();
            prop_assert_eq!(item.as_deref(), Some(bm.as_slice()));
        }
        prop_assert_eq!(u.next_item(), None);
    }

    /// Mixed values and bit strings unpack in order.
    #[test]
    fn pack_mixed_items(
        items in proptest::collection::vec(
            prop_oneof![
                any::<u64>().prop_map(Err),
                proptest::collection::vec(any::<bool>(), 0..40).prop_map(Ok),
            ],
            0..60)
    ) {
        let mut p = Packer::new();
        for item in &items {
            match item {
                Err(v) => p.push_value(*v),
                Ok(bits) => p.push_bits(bits),
            }
        }
        let packed = p.finish();
        let mut u = Unpacker::new(&packed);
        for item in &items {
            match item {
                Err(v) => prop_assert_eq!(u.next_value(), Some(*v)),
                Ok(bits) => {
                    let item = u.next_item();
                    prop_assert_eq!(item.as_deref(), Some(bits.as_slice()));
                }
            }
        }
    }

    /// Packed size never exceeds the naive 9-bytes-per-value bound and the
    /// end map covers exactly the payload.
    #[test]
    fn pack_size_bounds(values in proptest::collection::vec(any::<u64>(), 1..100)) {
        let packed = Packed::from_values(values.iter().copied());
        prop_assert!(packed.bytes.len() <= values.len() * 9);
        prop_assert!(packed.bytes.len() >= values.len()); // ≥ 1 byte per item
        prop_assert_eq!(packed.end_map.len(), packed.bytes.len());
        prop_assert_eq!(packed.end_map.item_count(), values.len());
    }

    /// Varints roundtrip.
    #[test]
    fn varint_roundtrip(values in proptest::collection::vec(any::<u64>(), 0..100)) {
        let mut buf = Vec::new();
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            let (decoded, next) = read_varint(&buf, pos).unwrap();
            prop_assert_eq!(decoded, v);
            pos = next;
        }
        prop_assert_eq!(pos, buf.len());
    }

    /// Bit streams roundtrip arbitrary bit patterns.
    #[test]
    fn bitio_roundtrip(bits in proptest::collection::vec(any::<bool>(), 0..500)) {
        let mut w = BitWriter::new();
        w.push_slice(&bits);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &b in &bits {
            prop_assert_eq!(r.next_bit(), Some(b));
        }
    }

    /// Reference encoding is a bijection between Option<u32> and its codes.
    #[test]
    fn ref_encoding_bijective(rel in proptest::option::of(any::<u32>())) {
        prop_assert_eq!(decode_ref(encode_ref(rel)), rel);
    }

    /// Stream wire encoding roundtrips for arbitrary section contents.
    #[test]
    fn stream_wire_roundtrip(
        words in proptest::collection::vec(any::<u64>(), 0..50),
        refs in proptest::collection::vec(proptest::option::of(any::<u32>()), 0..50),
        bitmaps in proptest::collection::vec(
            proptest::collection::vec(any::<bool>(), 1..30), 0..20),
    ) {
        let mut value_array = Vec::new();
        for w in &words {
            value_array.extend_from_slice(&w.to_le_bytes());
        }
        let mut rp = Packer::new();
        for &r in &refs {
            rp.push_value(encode_ref(r));
        }
        let mut bp = Packer::new();
        for bm in &bitmaps {
            bp.push_bits(bm);
        }
        let s = CerealStream {
            total_object_bytes: (words.len() * 8) as u32,
            object_count: bitmaps.len() as u32,
            value_array,
            refs: rp.finish(),
            bitmaps: bp.finish(),
        };
        let decoded = CerealStream::from_bytes(&s.to_bytes()).unwrap();
        prop_assert_eq!(&decoded, &s);
        // Unpacked refs survive the full wire trip.
        let decoded_refs: Vec<_> = decoded.refs.to_items().iter()
            .map(|bits| bits.iter().fold(0u64, |a, &b| (a << 1) | u64::from(b)))
            .map(decode_ref)
            .collect();
        prop_assert_eq!(decoded_refs, refs);
    }
}
