//! Seeded randomized tests for the Cereal format primitives.
//!
//! Formerly proptest properties; now deterministic loops over the
//! in-repo PRNG so the suite runs offline with no external crates. Each
//! test fixes its seed, so a failure reproduces exactly.

use sdformat::pack::{Packed, Packer, Unpacker};
use sdformat::stream::{decode_ref, encode_ref, CerealStream};
use sdformat::varint::{read_varint, write_varint};
use sdformat::{BitReader, BitWriter};
use sdheap::rng::Rng;

fn random_values(rng: &mut Rng, max_len: usize) -> Vec<u64> {
    let len = rng.gen_range_usize(0, max_len + 1);
    (0..len)
        .map(|_| {
            // Mix widths so small and full-width values both appear.
            let v = rng.next_u64();
            v >> rng.gen_range_u64(0, 64)
        })
        .collect()
}

fn random_bits(rng: &mut Rng, max_len: usize) -> Vec<bool> {
    let len = rng.gen_range_usize(0, max_len + 1);
    (0..len).map(|_| rng.gen_bool(0.5)).collect()
}

/// Any sequence of u64 values survives pack → unpack.
#[test]
fn pack_roundtrips_values() {
    let mut rng = Rng::new(0xF0_0001);
    for _ in 0..200 {
        let values = random_values(&mut rng, 200);
        let packed = Packed::from_values(values.iter().copied());
        assert_eq!(packed.to_values(), values);
    }
}

/// Any sequence of bit strings (layout bitmaps) survives pack → unpack,
/// leading zeros included.
#[test]
fn pack_roundtrips_bitmaps() {
    let mut rng = Rng::new(0xF0_0002);
    for _ in 0..100 {
        let bitmaps: Vec<Vec<bool>> = (0..rng.gen_range_usize(0, 50))
            .map(|_| random_bits(&mut rng, 100))
            .collect();
        let mut p = Packer::new();
        for bm in &bitmaps {
            p.push_bits(bm);
        }
        let packed = p.finish();
        let mut u = Unpacker::new(&packed);
        for bm in &bitmaps {
            assert_eq!(u.next_item().as_deref(), Some(bm.as_slice()));
        }
        assert_eq!(u.next_item(), None);
    }
}

/// Mixed values and bit strings unpack in order.
#[test]
fn pack_mixed_items() {
    let mut rng = Rng::new(0xF0_0003);
    for _ in 0..100 {
        let items: Vec<Result<Vec<bool>, u64>> = (0..rng.gen_range_usize(0, 60))
            .map(|_| {
                if rng.gen_bool(0.5) {
                    Err(rng.next_u64() >> rng.gen_range_u64(0, 64))
                } else {
                    Ok(random_bits(&mut rng, 40))
                }
            })
            .collect();
        let mut p = Packer::new();
        for item in &items {
            match item {
                Err(v) => p.push_value(*v),
                Ok(bits) => p.push_bits(bits),
            }
        }
        let packed = p.finish();
        let mut u = Unpacker::new(&packed);
        for item in &items {
            match item {
                Err(v) => assert_eq!(u.next_value(), Some(*v)),
                Ok(bits) => assert_eq!(u.next_item().as_deref(), Some(bits.as_slice())),
            }
        }
    }
}

/// Packed size never exceeds the naive 9-bytes-per-value bound and the
/// end map covers exactly the payload.
#[test]
fn pack_size_bounds() {
    let mut rng = Rng::new(0xF0_0004);
    for _ in 0..200 {
        let mut values = random_values(&mut rng, 99);
        values.push(rng.next_u64()); // at least one
        let packed = Packed::from_values(values.iter().copied());
        assert!(packed.bytes.len() <= values.len() * 9);
        assert!(packed.bytes.len() >= values.len()); // ≥ 1 byte per item
        assert_eq!(packed.end_map.len(), packed.bytes.len());
        assert_eq!(packed.end_map.item_count(), values.len());
    }
}

/// Varints roundtrip.
#[test]
fn varint_roundtrip() {
    let mut rng = Rng::new(0xF0_0005);
    for _ in 0..200 {
        let values = random_values(&mut rng, 100);
        let mut buf = Vec::new();
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            let (decoded, next) = read_varint(&buf, pos).unwrap();
            assert_eq!(decoded, v);
            pos = next;
        }
        assert_eq!(pos, buf.len());
    }
}

/// Bit streams roundtrip arbitrary bit patterns.
#[test]
fn bitio_roundtrip() {
    let mut rng = Rng::new(0xF0_0006);
    for _ in 0..200 {
        let bits = random_bits(&mut rng, 500);
        let mut w = BitWriter::new();
        w.push_slice(&bits);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &b in &bits {
            assert_eq!(r.next_bit(), Some(b));
        }
    }
}

/// Reference encoding is a bijection between Option<u32> and its codes.
#[test]
fn ref_encoding_bijective() {
    let mut rng = Rng::new(0xF0_0007);
    assert_eq!(decode_ref(encode_ref(None)), None);
    for _ in 0..1000 {
        let rel = Some(rng.next_u64() as u32);
        assert_eq!(decode_ref(encode_ref(rel)), rel);
    }
}

/// Stream wire encoding roundtrips for arbitrary section contents.
#[test]
fn stream_wire_roundtrip() {
    let mut rng = Rng::new(0xF0_0008);
    for _ in 0..100 {
        let words = random_values(&mut rng, 50);
        let refs: Vec<Option<u32>> = (0..rng.gen_range_usize(0, 50))
            .map(|_| {
                if rng.gen_bool(0.2) {
                    None
                } else {
                    Some(rng.next_u64() as u32)
                }
            })
            .collect();
        let bitmaps: Vec<Vec<bool>> = (0..rng.gen_range_usize(0, 20))
            .map(|_| {
                let len = rng.gen_range_usize(1, 30);
                (0..len).map(|_| rng.gen_bool(0.5)).collect()
            })
            .collect();
        let mut value_array = Vec::new();
        for w in &words {
            value_array.extend_from_slice(&w.to_le_bytes());
        }
        let mut rp = Packer::new();
        for &r in &refs {
            rp.push_value(encode_ref(r));
        }
        let mut bp = Packer::new();
        for bm in &bitmaps {
            bp.push_bits(bm);
        }
        let s = CerealStream {
            total_object_bytes: (words.len() * 8) as u32,
            object_count: bitmaps.len() as u32,
            value_array,
            refs: rp.finish(),
            bitmaps: bp.finish(),
        };
        let decoded = CerealStream::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(&decoded, &s);
        // Unpacked refs survive the full wire trip.
        let decoded_refs: Vec<_> = decoded
            .refs
            .to_items()
            .iter()
            .map(|bits| bits.iter().fold(0u64, |a, &b| (a << 1) | u64::from(b)))
            .map(decode_ref)
            .collect();
        assert_eq!(decoded_refs, refs);
    }
}
