//! Ergonomic object-graph construction.
//!
//! [`GraphBuilder`] owns a heap and a klass registry and offers one-call
//! object construction, so tests and workload generators can build graphs
//! without spelling out header bookkeeping.
//!
//! ```
//! use sdheap::{GraphBuilder, FieldKind, ValueType};
//! use sdheap::builder::Init;
//!
//! let mut b = GraphBuilder::new(1 << 16);
//! let node = b.klass("Node", vec![FieldKind::Value(ValueType::Long), FieldKind::Ref]);
//! let leaf = b.object(node, &[Init::Val(7), Init::Null]).unwrap();
//! let root = b.object(node, &[Init::Val(1), Init::Ref(leaf)]).unwrap();
//! let (heap, reg) = b.finish();
//! assert_eq!(heap.ref_field(root, 1), Some(leaf));
//! assert_eq!(reg.get(heap.klass_of(&reg, root)).name(), "Node");
//! ```

use crate::heap::{Heap, HeapError};
use crate::klass::{FieldKind, Klass, KlassId, KlassRegistry};
use crate::word::Addr;

/// Initial value for one field slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Init {
    /// Primitive value.
    Val(u64),
    /// Reference to an existing object.
    Ref(Addr),
    /// Null reference (or zero value).
    Null,
}

impl Init {
    fn word(self) -> u64 {
        match self {
            Init::Val(v) => v,
            Init::Ref(a) => a.get(),
            Init::Null => 0,
        }
    }
}

/// Builder owning a heap and registry.
#[derive(Debug)]
pub struct GraphBuilder {
    heap: Heap,
    reg: KlassRegistry,
}

impl GraphBuilder {
    /// A builder with a fresh heap of `capacity_bytes` and an empty
    /// registry.
    pub fn new(capacity_bytes: u64) -> Self {
        GraphBuilder {
            heap: Heap::new(capacity_bytes),
            reg: KlassRegistry::new(),
        }
    }

    /// A builder over an existing heap/registry pair.
    pub fn from_parts(heap: Heap, reg: KlassRegistry) -> Self {
        GraphBuilder { heap, reg }
    }

    /// Registers (or re-uses) an instance klass.
    pub fn klass(&mut self, name: impl Into<String>, kinds: Vec<FieldKind>) -> KlassId {
        self.reg.register(Klass::new(name, kinds))
    }

    /// Registers (or re-uses) an array klass.
    pub fn array_klass(&mut self, name: impl Into<String>, elem: FieldKind) -> KlassId {
        self.reg.register(Klass::array(name, elem))
    }

    /// Allocates an instance and initializes all fields.
    ///
    /// # Errors
    /// Propagates [`HeapError::OutOfMemory`].
    ///
    /// # Panics
    /// Panics if the number of initializers does not match the klass.
    pub fn object(&mut self, klass: KlassId, inits: &[Init]) -> Result<Addr, HeapError> {
        let nfields = self.reg.get(klass).num_fields();
        assert_eq!(
            inits.len(),
            nfields,
            "klass {} has {nfields} fields, got {} initializers",
            self.reg.get(klass).name(),
            inits.len()
        );
        let addr = self.heap.alloc(&self.reg, klass)?;
        for (i, init) in inits.iter().enumerate() {
            self.heap.set_field(addr, i, init.word());
        }
        Ok(addr)
    }

    /// Allocates a primitive array initialized from `values`.
    ///
    /// # Errors
    /// Propagates [`HeapError::OutOfMemory`].
    pub fn value_array(&mut self, klass: KlassId, values: &[u64]) -> Result<Addr, HeapError> {
        let addr = self.heap.alloc_array(&self.reg, klass, values.len())?;
        for (i, v) in values.iter().enumerate() {
            self.heap.set_array_elem(addr, i, *v);
        }
        Ok(addr)
    }

    /// Allocates a reference array initialized from `targets`.
    ///
    /// # Errors
    /// Propagates [`HeapError::OutOfMemory`].
    pub fn ref_array(&mut self, klass: KlassId, targets: &[Addr]) -> Result<Addr, HeapError> {
        let addr = self.heap.alloc_array(&self.reg, klass, targets.len())?;
        for (i, t) in targets.iter().enumerate() {
            self.heap.set_array_elem(addr, i, t.get());
        }
        Ok(addr)
    }

    /// Sets a reference field after construction (for cycles and
    /// back-edges).
    pub fn link(&mut self, from: Addr, field: usize, to: Addr) {
        self.heap.set_ref(from, field, to);
    }

    /// Sets a reference-array element after construction.
    pub fn set_array_ref(&mut self, arr: Addr, idx: usize, target: Addr) {
        self.heap.set_array_elem(arr, idx, target.get());
    }

    /// Read access to the heap under construction.
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Read access to the registry under construction.
    pub fn registry(&self) -> &KlassRegistry {
        &self.reg
    }

    /// Consumes the builder, returning the finished heap and registry.
    pub fn finish(self) -> (Heap, KlassRegistry) {
        (self.heap, self.reg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{reachable, Reachable};
    use crate::klass::ValueType;

    #[test]
    fn builds_linked_list() {
        let mut b = GraphBuilder::new(1 << 16);
        let node = b.klass(
            "ListNode",
            vec![FieldKind::Value(ValueType::Long), FieldKind::Ref],
        );
        let mut next = Init::Null;
        let mut head = Addr::NULL;
        for i in (0..10u64).rev() {
            head = b.object(node, &[Init::Val(i), next]).unwrap();
            next = Init::Ref(head);
        }
        let (heap, reg) = b.finish();
        let all = reachable(&heap, &reg, head, Reachable::DepthFirst);
        assert_eq!(all.len(), 10);
        assert_eq!(heap.field(head, 0), 0);
    }

    #[test]
    fn builds_arrays() {
        let mut b = GraphBuilder::new(1 << 16);
        let longs = b.array_klass("long[]", FieldKind::Value(ValueType::Long));
        let objs = b.array_klass("Object[]", FieldKind::Ref);
        let data = b.value_array(longs, &[1, 2, 3]).unwrap();
        let arr = b.ref_array(objs, &[data, Addr::NULL, data]).unwrap();
        let (heap, reg) = b.finish();
        assert_eq!(heap.array_len(arr), 3);
        assert_eq!(heap.array_elem(arr, 0), data.get());
        let all = reachable(&heap, &reg, arr, Reachable::BreadthFirst);
        assert_eq!(all.len(), 2, "data array shared, null skipped");
    }

    #[test]
    fn link_creates_cycles() {
        let mut b = GraphBuilder::new(1 << 16);
        let node = b.klass("N", vec![FieldKind::Ref]);
        let a = b.object(node, &[Init::Null]).unwrap();
        let c = b.object(node, &[Init::Ref(a)]).unwrap();
        b.link(a, 0, c);
        let (heap, reg) = b.finish();
        assert_eq!(reachable(&heap, &reg, a, Reachable::DepthFirst).len(), 2);
    }

    #[test]
    #[should_panic(expected = "initializers")]
    fn wrong_arity_panics() {
        let mut b = GraphBuilder::new(1 << 16);
        let node = b.klass("N", vec![FieldKind::Ref]);
        let _ = b.object(node, &[]);
    }
}
