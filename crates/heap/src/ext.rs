//! Cereal's 8 B object-header extension (paper §V-E, "Header Extension").
//!
//! Cereal extends the JVM so every potentially serializable object carries
//! one extra header word holding the metadata its serialization unit needs:
//!
//! * a 16-bit **serialization counter** used to track visited objects
//!   without a post-traversal clearing pass — an object is "visited" iff
//!   its stored counter equals the current per-unit serialization counter;
//! * an 8-bit **unit ID** with which the first serialization unit to touch
//!   a shared object reserves the header area (other units must fall back
//!   to software serialization);
//! * a 32-bit **relative address** recorded for already-serialized objects.
//!
//! ```text
//!  bits  0..32  relative address (4 B)
//!  bits 32..48  serialization counter (16 bits)
//!  bits 48..56  reserving unit ID (8 bits; 0 = unreserved, stored id+1)
//!  bits 56..64  unused
//! ```

/// Decoded extension word.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct ExtWord {
    raw: u64,
}

const REL_BITS: u64 = 0xffff_ffff;
const CTR_SHIFT: u32 = 32;
const CTR_BITS: u64 = 0xffff;
const UNIT_SHIFT: u32 = 48;
const UNIT_BITS: u64 = 0xff;

impl ExtWord {
    /// A cleared extension word (what GC resets it to).
    pub fn new() -> Self {
        ExtWord { raw: 0 }
    }

    /// Decode from the raw heap word.
    pub fn from_raw(raw: u64) -> Self {
        ExtWord { raw }
    }

    /// Raw encoding.
    pub fn raw(self) -> u64 {
        self.raw
    }

    /// Recorded relative address of the object in the serialized image.
    pub fn relative_addr(self) -> u32 {
        (self.raw & REL_BITS) as u32
    }

    /// Records a relative address.
    pub fn with_relative_addr(self, rel: u32) -> Self {
        ExtWord {
            raw: (self.raw & !REL_BITS) | u64::from(rel),
        }
    }

    /// Stored serialization counter.
    pub fn counter(self) -> u16 {
        ((self.raw >> CTR_SHIFT) & CTR_BITS) as u16
    }

    /// Stores the serialization counter.
    pub fn with_counter(self, c: u16) -> Self {
        ExtWord {
            raw: (self.raw & !(CTR_BITS << CTR_SHIFT)) | (u64::from(c) << CTR_SHIFT),
        }
    }

    /// The unit that reserved this header, if any.
    pub fn reserving_unit(self) -> Option<u8> {
        let v = ((self.raw >> UNIT_SHIFT) & UNIT_BITS) as u8;
        v.checked_sub(1)
    }

    /// Reserves the header for `unit` (stored as `unit + 1` so that zero
    /// means unreserved).
    ///
    /// # Panics
    /// Panics if `unit == u8::MAX` (unrepresentable).
    pub fn with_reserving_unit(self, unit: u8) -> Self {
        assert!(unit < u8::MAX, "unit id {unit} out of range");
        ExtWord {
            raw: (self.raw & !(UNIT_BITS << UNIT_SHIFT))
                | (u64::from(unit + 1) << UNIT_SHIFT),
        }
    }

    /// `true` when the object was visited during serialization pass
    /// `current` — the counter-compare scheme that removes the need to
    /// clear visited bits after every traversal.
    pub fn visited_in(self, current: u16) -> bool {
        self.counter() == current && current != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_pack_independently() {
        let e = ExtWord::new()
            .with_relative_addr(0xdead_beef)
            .with_counter(0x1234)
            .with_reserving_unit(5);
        assert_eq!(e.relative_addr(), 0xdead_beef);
        assert_eq!(e.counter(), 0x1234);
        assert_eq!(e.reserving_unit(), Some(5));
        let e2 = e.with_counter(1);
        assert_eq!(e2.relative_addr(), 0xdead_beef);
        assert_eq!(e2.reserving_unit(), Some(5));
    }

    #[test]
    fn unreserved_by_default() {
        assert_eq!(ExtWord::new().reserving_unit(), None);
        assert_eq!(ExtWord::new().with_reserving_unit(0).reserving_unit(), Some(0));
    }

    #[test]
    fn visited_semantics() {
        let e = ExtWord::new().with_counter(7);
        assert!(e.visited_in(7));
        assert!(!e.visited_in(8));
        // Counter 0 never counts as visited (it is the cleared state).
        assert!(!ExtWord::new().visited_in(0));
    }

    #[test]
    fn raw_roundtrip() {
        let e = ExtWord::new().with_counter(65535).with_relative_addr(u32::MAX);
        assert_eq!(ExtWord::from_raw(e.raw()), e);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unit_255_rejected() {
        let _ = ExtWord::new().with_reserving_unit(u8::MAX);
    }
}
