//! A semispace copying collector.
//!
//! Cereal's JVM extension leans on garbage collection twice (§V-E): the
//! per-object serialization metadata (counter, unit reservation) is
//! cleared "during the Java garbage collection", and a serialization
//! counter about to overflow can "force the garbage collection by
//! invoking System.gc()". This module provides that collector for the
//! `sdheap` substrate: a classic Cheney-style semispace copy that
//!
//! * evacuates every object reachable from the given roots into a fresh
//!   to-space (compacting the heap),
//! * rewrites all references (including root addresses),
//! * preserves mark words — identity hashes survive collection, exactly
//!   as HotSpot guarantees — and
//! * clears the Cereal extension word of every survivor, which is the
//!   §V-E metadata reset.

use crate::ext::ExtWord;
use crate::heap::{Heap, HeapError};
use crate::klass::KlassRegistry;
use crate::word::Addr;
use std::collections::HashMap;

/// Statistics of one collection.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Objects evacuated to to-space.
    pub live_objects: u64,
    /// Bytes evacuated.
    pub live_bytes: u64,
    /// Bytes reclaimed (from-space used minus live).
    pub reclaimed_bytes: u64,
}

impl GcStats {
    /// Simulated stop-the-world pause for this collection, in
    /// nanoseconds: a copying collector's cost is dominated by moving the
    /// survivors (~8 B/ns of copy bandwidth) plus a fixed per-object
    /// overhead for scanning and forwarding (~4 ns). A cost model, not a
    /// measurement — it lets timeline simulations (the shuffle service's
    /// GC-pressure mode) charge collections into simulated time on the
    /// same scale as the CPU and accelerator models.
    pub fn simulated_cost_ns(&self) -> f64 {
        self.live_bytes as f64 / 8.0 + self.live_objects as f64 * 4.0
    }
}

/// Collects `heap`, keeping everything reachable from `roots`. Returns
/// the new heap (same base and capacity), the relocated roots in input
/// order, and collection statistics.
///
/// # Errors
/// [`HeapError::OutOfMemory`] if the survivors do not fit the new space
/// (cannot happen when `roots` are drawn from `heap`, since live ≤ used).
///
/// # Panics
/// Panics if a root is not a valid object address.
pub fn collect(
    heap: &Heap,
    reg: &KlassRegistry,
    roots: &[Addr],
) -> Result<(Heap, Vec<Addr>, GcStats), HeapError> {
    let mut to_space = Heap::with_base(heap.base(), heap.capacity_bytes());
    // Forwarding table: from-space address → to-space address. (A real
    // collector stores forwarding pointers in headers; a side table keeps
    // from-space immutable so the caller's heap is untouched on error.)
    let mut forward: HashMap<Addr, Addr> = HashMap::new();
    let mut stats = GcStats::default();

    // Cheney queue: evacuate roots, then scan to-space linearly.
    let evacuate = |obj: Addr,
                        to_space: &mut Heap,
                        forward: &mut HashMap<Addr, Addr>,
                        stats: &mut GcStats|
     -> Result<Addr, HeapError> {
        if let Some(&new) = forward.get(&obj) {
            return Ok(new);
        }
        let words = heap.object_words(reg, obj);
        let new = to_space.alloc_raw(words)?;
        for w in 0..words {
            to_space.store(
                new.add_words(w as u64),
                heap.load(obj.add_words(w as u64)),
            );
        }
        // §V-E: serialization metadata does not survive collection.
        to_space.set_ext_word(new, ExtWord::new());
        forward.insert(obj, new);
        stats.live_objects += 1;
        stats.live_bytes += words as u64 * 8;
        Ok(new)
    };

    let mut new_roots = Vec::with_capacity(roots.len());
    for &root in roots {
        if root.is_null() {
            new_roots.push(Addr::NULL);
            continue;
        }
        new_roots.push(evacuate(root, &mut to_space, &mut forward, &mut stats)?);
    }

    // Scan pointer: fix references of evacuated objects, evacuating their
    // targets on first touch.
    let mut scan = to_space.base();
    while scan.get() < to_space.top_addr().get() {
        let words = {
            // The object is fully copied; its klass pointer is valid.
            to_space.object(reg, scan).size_words()
        };
        let ref_offsets: Vec<usize> = to_space.object(reg, scan).ref_offsets();
        for w in ref_offsets {
            let old = Addr(to_space.load(scan.add_words(w as u64)));
            if old.is_null() {
                continue;
            }
            let new = evacuate(old, &mut to_space, &mut forward, &mut stats)?;
            to_space.store(scan.add_words(w as u64), new.get());
        }
        scan = scan.add_words(words as u64);
    }

    to_space.note_reconstructed_objects(stats.live_objects);
    stats.reclaimed_bytes = heap.used_bytes().saturating_sub(stats.live_bytes);
    Ok((to_space, new_roots, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{GraphBuilder, Init};
    use crate::graph::{isomorphic, reachable, Reachable};
    use crate::klass::{FieldKind, ValueType};

    fn setup() -> (Heap, KlassRegistry, Addr, Addr) {
        let mut b = GraphBuilder::new(1 << 16);
        let k = b.klass(
            "N",
            vec![FieldKind::Value(ValueType::Long), FieldKind::Ref, FieldKind::Ref],
        );
        // Live graph: a -> (b, c), b -> (c, -) with a cycle c -> a.
        let c = b.object(k, &[Init::Val(3), Init::Null, Init::Null]).unwrap();
        let bb = b.object(k, &[Init::Val(2), Init::Ref(c), Init::Null]).unwrap();
        let a = b.object(k, &[Init::Val(1), Init::Ref(bb), Init::Ref(c)]).unwrap();
        b.link(c, 1, a);
        // Garbage: a detached chain.
        let g1 = b.object(k, &[Init::Val(100), Init::Null, Init::Null]).unwrap();
        let _g2 = b.object(k, &[Init::Val(101), Init::Ref(g1), Init::Null]).unwrap();
        let (heap, reg) = b.finish();
        (heap, reg, a, c)
    }

    #[test]
    fn collection_preserves_the_live_graph() {
        let (heap, reg, a, _) = setup();
        let (new_heap, roots, stats) = collect(&heap, &reg, &[a]).unwrap();
        assert_eq!(stats.live_objects, 3);
        assert!(isomorphic(&heap, &reg, a, &new_heap, roots[0]));
    }

    #[test]
    fn garbage_is_reclaimed() {
        let (heap, reg, a, _) = setup();
        let (new_heap, _, stats) = collect(&heap, &reg, &[a]).unwrap();
        assert_eq!(stats.reclaimed_bytes, 2 * 48, "two garbage objects");
        assert_eq!(new_heap.used_bytes(), 3 * 48);
        assert!(new_heap.used_bytes() < heap.used_bytes());
    }

    #[test]
    fn identity_hashes_survive_but_ext_words_do_not() {
        let (mut heap, reg, a, c) = setup();
        heap.set_ext_word(a, ExtWord::new().with_counter(9).with_reserving_unit(2));
        let hash = heap.mark_word(a).identity_hash();
        let (new_heap, roots, _) = collect(&heap, &reg, &[a, c]).unwrap();
        assert_eq!(new_heap.mark_word(roots[0]).identity_hash(), hash);
        assert_eq!(new_heap.ext_word(roots[0]), ExtWord::new());
    }

    #[test]
    fn multiple_roots_share_one_copy() {
        let (heap, reg, a, c) = setup();
        let (new_heap, roots, stats) = collect(&heap, &reg, &[a, c]).unwrap();
        assert_eq!(stats.live_objects, 3, "c reachable from a: no duplicate");
        // The c reachable through a must be the same object as root c.
        let c_via_a = new_heap.ref_field(roots[0], 2).unwrap();
        assert_eq!(c_via_a, roots[1]);
    }

    #[test]
    fn null_roots_pass_through() {
        let (heap, reg, a, _) = setup();
        let (_, roots, _) = collect(&heap, &reg, &[Addr::NULL, a]).unwrap();
        assert!(roots[0].is_null());
        assert!(!roots[1].is_null());
    }

    #[test]
    fn collection_compacts_allocation_order() {
        let (heap, reg, a, _) = setup();
        let (new_heap, roots, _) = collect(&heap, &reg, &[a]).unwrap();
        // Survivors sit contiguously from the base (Cheney order: BFS).
        let all = reachable(&new_heap, &reg, roots[0], Reachable::BreadthFirst);
        assert_eq!(all[0], new_heap.base());
        let total: usize = all
            .iter()
            .map(|&o| new_heap.object_words(&reg, o) * 8)
            .sum();
        assert_eq!(total as u64, new_heap.used_bytes());
    }

    #[test]
    fn arrays_survive_collection() {
        let mut b = GraphBuilder::new(1 << 16);
        let arr = b.array_klass("Object[]", FieldKind::Ref);
        let darr = b.array_klass("double[]", FieldKind::Value(ValueType::Double));
        let data = b.value_array(darr, &[7, 8, 9]).unwrap();
        let root = b.ref_array(arr, &[data, Addr::NULL, data]).unwrap();
        let (heap, reg) = b.finish();
        let (new_heap, roots, stats) = collect(&heap, &reg, &[root]).unwrap();
        assert_eq!(stats.live_objects, 2);
        assert!(isomorphic(&heap, &reg, root, &new_heap, roots[0]));
    }
}
