//! Object-graph traversal and structural comparison.
//!
//! Serialization is "a recursive traversal of object graph from the
//! top-level object" (paper §I); every serializer in this repository
//! traverses with one of the two orders provided here, and every round-trip
//! test checks reconstruction with [`isomorphic`].

use std::collections::{HashMap, HashSet, VecDeque};

use crate::heap::Heap;
use crate::klass::{FieldKind, KlassRegistry};
use crate::object::{EXT_OFFSET, HEADER_WORDS, KLASS_OFFSET, MARK_OFFSET};
use crate::word::Addr;

/// Traversal order over an object graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Reachable {
    /// Depth-first preorder, children in field order — the order of the
    /// recursive software serializers (Java S/D, Kryo).
    DepthFirst,
    /// Breadth-first — the order of Cereal's header-manager work queue,
    /// which processes objects FIFO as references stream in.
    BreadthFirst,
}

/// All objects reachable from `root`, deduplicated, in the given traversal
/// order. The null root yields an empty vector.
pub fn reachable(heap: &Heap, reg: &KlassRegistry, root: Addr, order: Reachable) -> Vec<Addr> {
    if root.is_null() {
        return Vec::new();
    }
    match order {
        Reachable::DepthFirst => {
            let mut seen = HashSet::new();
            let mut out = Vec::new();
            dfs(heap, reg, root, &mut seen, &mut out);
            out
        }
        Reachable::BreadthFirst => {
            let mut seen = HashSet::new();
            let mut out = Vec::new();
            let mut queue = VecDeque::new();
            seen.insert(root);
            queue.push_back(root);
            while let Some(addr) = queue.pop_front() {
                out.push(addr);
                for r in heap.object(reg, addr).references() {
                    if !r.is_null() && seen.insert(r) {
                        queue.push_back(r);
                    }
                }
            }
            out
        }
    }
}

// Explicit-stack preorder: children pushed in reverse field order and
// the visited check done at pop time reproduce the recursive preorder
// exactly (including on shared/cyclic structure), without call-stack
// depth proportional to the graph — a scaled linked list overflows a
// worker thread's 2 MiB stack otherwise.
fn dfs(
    heap: &Heap,
    reg: &KlassRegistry,
    root: Addr,
    seen: &mut HashSet<Addr>,
    out: &mut Vec<Addr>,
) {
    let mut stack = vec![root];
    while let Some(addr) = stack.pop() {
        if !seen.insert(addr) {
            continue;
        }
        out.push(addr);
        let refs = heap.object(reg, addr).references();
        stack.extend(refs.iter().rev().filter(|r| !r.is_null()));
    }
}

/// Aggregate statistics of an object graph, used by workload reports and
/// size-accounting tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GraphStats {
    /// Number of distinct reachable objects.
    pub objects: usize,
    /// Total size of all reachable objects in bytes (headers included).
    pub total_bytes: u64,
    /// Total reference slots (null or not).
    pub ref_slots: usize,
    /// Non-null reference slots.
    pub live_refs: usize,
    /// Total value words (headers and array-length words included).
    pub value_words: usize,
}

impl GraphStats {
    /// Computes statistics over everything reachable from `root`.
    pub fn measure(heap: &Heap, reg: &KlassRegistry, root: Addr) -> GraphStats {
        let mut s = GraphStats::default();
        for addr in reachable(heap, reg, root, Reachable::DepthFirst) {
            let v = heap.object(reg, addr);
            s.objects += 1;
            s.total_bytes += v.size_bytes();
            for w in 0..v.size_words() {
                if v.word_kind(w).is_ref() {
                    s.ref_slots += 1;
                    if v.word(w) != 0 {
                        s.live_refs += 1;
                    }
                } else {
                    s.value_words += 1;
                }
            }
        }
        s
    }
}

/// Options for [`isomorphic_with`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IsoOptions {
    /// Require identity hashes to match. Header-copying serializers
    /// (Skyway, Cereal) preserve the mark word's hash; re-allocating
    /// serializers (Java S/D, Kryo) give reconstructed objects fresh
    /// hashes, exactly as the real libraries do.
    pub check_identity_hash: bool,
}

impl Default for IsoOptions {
    fn default() -> Self {
        IsoOptions {
            check_identity_hash: true,
        }
    }
}

/// Structural equality of two object graphs, possibly in different heaps.
///
/// Two graphs are isomorphic when a bijection between their reachable
/// objects maps `root_a` to `root_b` and preserves klass, object size,
/// every primitive field/element word, the identity hash in the mark word,
/// and the reference structure (including null positions and sharing).
///
/// The synchronization/GC bits of the mark word and Cereal's extension word
/// are runtime-private and excluded — serialization is not required to
/// preserve them (the paper's header-stripping discussion makes exactly
/// this split).
pub fn isomorphic(
    heap_a: &Heap,
    reg: &KlassRegistry,
    root_a: Addr,
    heap_b: &Heap,
    root_b: Addr,
) -> bool {
    isomorphic_with(heap_a, reg, root_a, heap_b, root_b, IsoOptions::default())
}

/// [`isomorphic`] with explicit [`IsoOptions`].
pub fn isomorphic_with(
    heap_a: &Heap,
    reg: &KlassRegistry,
    root_a: Addr,
    heap_b: &Heap,
    root_b: Addr,
    opts: IsoOptions,
) -> bool {
    if root_a.is_null() || root_b.is_null() {
        return root_a.is_null() && root_b.is_null();
    }
    let mut map: HashMap<Addr, Addr> = HashMap::new();
    let mut stack = vec![(root_a, root_b)];
    while let Some((a, b)) = stack.pop() {
        match map.get(&a) {
            Some(&mapped) => {
                if mapped != b {
                    return false; // sharing structure differs
                }
                continue;
            }
            None => {
                map.insert(a, b);
            }
        }
        let va = heap_a.object(reg, a);
        let vb = heap_b.object(reg, b);
        if va.klass_id() != vb.klass_id() || va.size_words() != vb.size_words() {
            return false;
        }
        if opts.check_identity_hash
            && heap_a.mark_word(a).identity_hash() != heap_b.mark_word(b).identity_hash()
        {
            return false;
        }
        for w in 0..va.size_words() {
            match (w, va.word_kind(w)) {
                (MARK_OFFSET | KLASS_OFFSET | EXT_OFFSET, _) => {} // handled above / excluded
                (_, FieldKind::Ref) => {
                    let (ra, rb) = (Addr(va.word(w)), Addr(vb.word(w)));
                    match (ra.is_null(), rb.is_null()) {
                        (true, true) => {}
                        (false, false) => stack.push((ra, rb)),
                        _ => return false,
                    }
                }
                (_, FieldKind::Value(_)) => {
                    if va.word(w) != vb.word(w) {
                        return false;
                    }
                }
            }
        }
    }
    // The bijection must be injective on the B side too.
    let mut targets = HashSet::new();
    map.values().all(|t| targets.insert(*t)) && HEADER_WORDS == 3
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::klass::{Klass, ValueType};

    fn node_registry() -> (KlassRegistry, crate::klass::KlassId) {
        let mut reg = KlassRegistry::new();
        let node = reg.register(Klass::new(
            "Node",
            vec![
                FieldKind::Value(ValueType::Long),
                FieldKind::Ref,
                FieldKind::Ref,
            ],
        ));
        (reg, node)
    }

    /// Builds `a -> (b, c)`, `b -> (c, null)` with values 1,2,3.
    fn diamond(heap: &mut Heap, reg: &KlassRegistry, node: crate::klass::KlassId) -> Addr {
        let a = heap.alloc(reg, node).unwrap();
        let b = heap.alloc(reg, node).unwrap();
        let c = heap.alloc(reg, node).unwrap();
        heap.set_field(a, 0, 1);
        heap.set_field(b, 0, 2);
        heap.set_field(c, 0, 3);
        heap.set_ref(a, 1, b);
        heap.set_ref(a, 2, c);
        heap.set_ref(b, 1, c);
        a
    }

    #[test]
    fn reachable_dedups_shared_objects() {
        let (reg, node) = node_registry();
        let mut heap = Heap::new(4096);
        let a = diamond(&mut heap, &reg, node);
        let dfs = reachable(&heap, &reg, a, Reachable::DepthFirst);
        assert_eq!(dfs.len(), 3, "c is shared but visited once");
        let bfs = reachable(&heap, &reg, a, Reachable::BreadthFirst);
        assert_eq!(bfs.len(), 3);
        assert_eq!(dfs[0], a);
        assert_eq!(bfs[0], a);
    }

    #[test]
    fn dfs_and_bfs_orders_differ_when_expected() {
        let (reg, node) = node_registry();
        let mut heap = Heap::new(8192);
        // a -> (b, c); b -> (d, -): DFS = a b d c, BFS = a b c d.
        let a = heap.alloc(&reg, node).unwrap();
        let b = heap.alloc(&reg, node).unwrap();
        let c = heap.alloc(&reg, node).unwrap();
        let d = heap.alloc(&reg, node).unwrap();
        heap.set_ref(a, 1, b);
        heap.set_ref(a, 2, c);
        heap.set_ref(b, 1, d);
        assert_eq!(
            reachable(&heap, &reg, a, Reachable::DepthFirst),
            vec![a, b, d, c]
        );
        assert_eq!(
            reachable(&heap, &reg, a, Reachable::BreadthFirst),
            vec![a, b, c, d]
        );
    }

    #[test]
    fn reachable_handles_cycles() {
        let (reg, node) = node_registry();
        let mut heap = Heap::new(4096);
        let a = heap.alloc(&reg, node).unwrap();
        let b = heap.alloc(&reg, node).unwrap();
        heap.set_ref(a, 1, b);
        heap.set_ref(b, 1, a); // cycle
        assert_eq!(reachable(&heap, &reg, a, Reachable::DepthFirst).len(), 2);
    }

    #[test]
    fn null_root_is_empty() {
        let (reg, _) = node_registry();
        let heap = Heap::new(64);
        assert!(reachable(&heap, &reg, Addr::NULL, Reachable::DepthFirst).is_empty());
    }

    #[test]
    fn stats_count_refs_and_bytes() {
        let (reg, node) = node_registry();
        let mut heap = Heap::new(4096);
        let a = diamond(&mut heap, &reg, node);
        let s = GraphStats::measure(&heap, &reg, a);
        assert_eq!(s.objects, 3);
        assert_eq!(s.total_bytes, 3 * 48);
        assert_eq!(s.ref_slots, 6);
        assert_eq!(s.live_refs, 3);
        assert_eq!(s.value_words, 3 * 4); // header(3) + one long each
    }

    #[test]
    fn isomorphic_accepts_identical_copy() {
        let (reg, node) = node_registry();
        let mut h1 = Heap::new(4096);
        let a = diamond(&mut h1, &reg, node);
        let h2 = h1.clone();
        assert!(isomorphic(&h1, &reg, a, &h2, a));
    }

    #[test]
    fn isomorphic_detects_value_change() {
        let (reg, node) = node_registry();
        let mut h1 = Heap::new(4096);
        let a = diamond(&mut h1, &reg, node);
        let mut h2 = h1.clone();
        let b = h1.ref_field(a, 1).unwrap();
        h2.set_field(b, 0, 42);
        assert!(!isomorphic(&h1, &reg, a, &h2, a));
    }

    #[test]
    fn isomorphic_detects_broken_sharing() {
        let (reg, node) = node_registry();
        let mut h1 = Heap::new(4096);
        let a1 = diamond(&mut h1, &reg, node);

        // Same shape but c duplicated instead of shared.
        let mut h2 = Heap::new(4096);
        let a = h2.alloc(&reg, node).unwrap();
        let b = h2.alloc(&reg, node).unwrap();
        let c1 = h2.alloc(&reg, node).unwrap();
        let c2 = h2.alloc(&reg, node).unwrap();
        h2.set_field(a, 0, 1);
        h2.set_field(b, 0, 2);
        h2.set_field(c1, 0, 3);
        h2.set_field(c2, 0, 3);
        // Copy identity hashes so only sharing differs.
        let b1 = h1.ref_field(a1, 1).unwrap();
        let c_shared = h1.ref_field(a1, 2).unwrap();
        h2.set_mark_word(a, h1.mark_word(a1));
        h2.set_mark_word(b, h1.mark_word(b1));
        h2.set_mark_word(c1, h1.mark_word(c_shared));
        h2.set_mark_word(c2, h1.mark_word(c_shared));
        h2.set_ref(a, 1, b);
        h2.set_ref(a, 2, c1);
        h2.set_ref(b, 1, c2);
        assert!(!isomorphic(&h1, &reg, a1, &h2, a));
    }

    #[test]
    fn isomorphic_detects_null_mismatch() {
        let (reg, node) = node_registry();
        let mut h1 = Heap::new(4096);
        let a = diamond(&mut h1, &reg, node);
        let mut h2 = h1.clone();
        let b = h1.ref_field(a, 1).unwrap();
        h2.set_ref(b, 1, Addr::NULL);
        assert!(!isomorphic(&h1, &reg, a, &h2, a));
    }

    #[test]
    fn isomorphic_ignores_ext_and_sync_state() {
        let (reg, node) = node_registry();
        let mut h1 = Heap::new(4096);
        let a = diamond(&mut h1, &reg, node);
        let mut h2 = h1.clone();
        h2.set_ext_word(a, crate::ext::ExtWord::new().with_counter(9));
        h2.set_mark_word(a, h1.mark_word(a).with_sync_state(3));
        assert!(isomorphic(&h1, &reg, a, &h2, a));
    }

    #[test]
    fn isomorphic_modulo_hash() {
        let (reg, node) = node_registry();
        let mut h1 = Heap::new(4096);
        let a = diamond(&mut h1, &reg, node);
        let mut h2 = h1.clone();
        h2.set_mark_word(a, crate::mark::MarkWord::new().with_identity_hash(1));
        assert!(!isomorphic(&h1, &reg, a, &h2, a));
        assert!(isomorphic_with(
            &h1,
            &reg,
            a,
            &h2,
            a,
            IsoOptions {
                check_identity_hash: false
            }
        ));
    }

    #[test]
    fn isomorphic_null_roots() {
        let (reg, node) = node_registry();
        let mut h1 = Heap::new(4096);
        let a = diamond(&mut h1, &reg, node);
        assert!(isomorphic(&h1, &reg, Addr::NULL, &h1, Addr::NULL));
        assert!(!isomorphic(&h1, &reg, a, &h1, Addr::NULL));
    }
}
