//! The managed heap: a flat word array with a bump allocator.
//!
//! Addresses are absolute byte addresses starting at [`Heap::DEFAULT_BASE`]
//! (1 GB-aligned, matching the paper's 1 GB huge-page assumption for
//! Cereal's TLB, §V-E). Every object occupies `HEADER_WORDS` header words
//! (mark word, klass pointer, Cereal extension) followed by its field or
//! array words.

use crate::ext::ExtWord;
use crate::klass::{KlassId, KlassRegistry};
use crate::mark::MarkWord;
use crate::object::{ObjectView, EXT_OFFSET, HEADER_WORDS, KLASS_OFFSET, MARK_OFFSET};
use crate::word::{Addr, WORD_BYTES};
use std::fmt;

/// Errors returned by heap operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HeapError {
    /// The bump allocator ran out of capacity.
    OutOfMemory {
        /// Words requested by the failing allocation.
        requested_words: usize,
        /// Words still available.
        available_words: usize,
    },
}

impl fmt::Display for HeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapError::OutOfMemory {
                requested_words,
                available_words,
            } => write!(
                f,
                "heap out of memory: requested {requested_words} words, {available_words} available"
            ),
        }
    }
}

impl std::error::Error for HeapError {}

/// A word-addressed managed heap with HotSpot-style object layout.
#[derive(Clone)]
pub struct Heap {
    base: Addr,
    words: Vec<u64>,
    top: usize,
    allocated_objects: u64,
    hash_seed: u64,
}

impl fmt::Debug for Heap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Heap")
            .field("base", &self.base)
            .field("capacity_words", &self.words.len())
            .field("used_words", &self.top)
            .field("allocated_objects", &self.allocated_objects)
            .finish()
    }
}

impl Heap {
    /// Default heap base: 1 GB, so the whole heap sits in one huge page of
    /// the paper's TLB model.
    pub const DEFAULT_BASE: u64 = 0x4000_0000;

    /// A heap of `capacity_bytes` at the default base.
    ///
    /// # Panics
    /// Panics if `capacity_bytes` is not a multiple of 8.
    pub fn new(capacity_bytes: u64) -> Self {
        Self::with_base(Addr(Self::DEFAULT_BASE), capacity_bytes)
    }

    /// A heap at an explicit word-aligned base address. Deserializers use
    /// this to reconstruct at a chosen target region.
    ///
    /// # Panics
    /// Panics if the base is unaligned or the capacity is not a multiple
    /// of 8.
    pub fn with_base(base: Addr, capacity_bytes: u64) -> Self {
        assert!(base.is_word_aligned(), "heap base must be word aligned");
        assert_eq!(capacity_bytes % WORD_BYTES, 0, "capacity must be whole words");
        Heap {
            base,
            words: vec![0; (capacity_bytes / WORD_BYTES) as usize],
            top: 0,
            allocated_objects: 0,
            hash_seed: 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Heap base address.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Bytes currently allocated.
    pub fn used_bytes(&self) -> u64 {
        self.top as u64 * WORD_BYTES
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.words.len() as u64 * WORD_BYTES
    }

    /// Number of objects allocated so far.
    pub fn object_count(&self) -> u64 {
        self.allocated_objects
    }

    /// First free address (the bump pointer).
    pub fn top_addr(&self) -> Addr {
        self.base.add_words(self.top as u64)
    }

    #[inline]
    fn index_of(&self, addr: Addr) -> usize {
        debug_assert!(addr.is_word_aligned(), "unaligned access at {addr}");
        let idx = addr.words_since(self.base) as usize;
        debug_assert!(idx < self.top.max(self.words.len()), "access beyond heap at {addr}");
        idx
    }

    /// Reads the word at `addr`.
    ///
    /// # Panics
    /// Panics (debug) on unaligned or out-of-heap addresses.
    #[inline]
    pub fn load(&self, addr: Addr) -> u64 {
        self.words[self.index_of(addr)]
    }

    /// Writes the word at `addr`.
    #[inline]
    pub fn store(&mut self, addr: Addr, value: u64) {
        let i = self.index_of(addr);
        self.words[i] = value;
    }

    /// `true` if `addr` points into this heap's allocated region.
    pub fn contains(&self, addr: Addr) -> bool {
        addr.get() >= self.base.get() && addr.get() < self.top_addr().get()
    }

    fn alloc_words(&mut self, words: usize) -> Result<Addr, HeapError> {
        if self.top + words > self.words.len() {
            return Err(HeapError::OutOfMemory {
                requested_words: words,
                available_words: self.words.len() - self.top,
            });
        }
        let addr = self.base.add_words(self.top as u64);
        self.top += words;
        Ok(addr)
    }

    fn next_identity_hash(&mut self) -> u32 {
        // SplitMix64 step; identity hashes only need to be well distributed
        // and deterministic for reproducible runs.
        self.hash_seed = self.hash_seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.hash_seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        ((z ^ (z >> 31)) & 0x7fff_ffff) as u32
    }

    /// Allocates an instance of `klass`, zero-initialized, with a fresh
    /// identity hash in the mark word.
    ///
    /// # Errors
    /// [`HeapError::OutOfMemory`] when capacity is exhausted.
    ///
    /// # Panics
    /// Panics if `klass` is an array klass (use [`Heap::alloc_array`]).
    pub fn alloc(&mut self, reg: &KlassRegistry, klass: KlassId) -> Result<Addr, HeapError> {
        let k = reg.get(klass);
        let words = k.instance_words();
        let addr = self.alloc_words(words)?;
        self.init_header(reg, addr, klass);
        Ok(addr)
    }

    /// Allocates an array of `len` elements of array klass `klass`.
    ///
    /// # Errors
    /// [`HeapError::OutOfMemory`] when capacity is exhausted.
    ///
    /// # Panics
    /// Panics if `klass` is not an array klass.
    pub fn alloc_array(
        &mut self,
        reg: &KlassRegistry,
        klass: KlassId,
        len: usize,
    ) -> Result<Addr, HeapError> {
        let k = reg.get(klass);
        let words = k.array_words(len);
        let addr = self.alloc_words(words)?;
        self.init_header(reg, addr, klass);
        self.store(addr.add_words(HEADER_WORDS as u64), len as u64);
        Ok(addr)
    }

    /// Reserves raw words with an already-initialized header elsewhere —
    /// used by deserializers that reconstruct objects by block copy.
    ///
    /// # Errors
    /// [`HeapError::OutOfMemory`] when capacity is exhausted.
    pub fn alloc_raw(&mut self, words: usize) -> Result<Addr, HeapError> {
        self.alloc_words(words)
    }

    /// Notes that `n` reconstructed objects now live in raw-allocated
    /// space (keeps [`Heap::object_count`] meaningful after deserialization).
    pub fn note_reconstructed_objects(&mut self, n: u64) {
        self.allocated_objects += n;
    }

    fn init_header(&mut self, reg: &KlassRegistry, addr: Addr, klass: KlassId) {
        let hash = self.next_identity_hash();
        self.store(
            addr.add_words(MARK_OFFSET as u64),
            MarkWord::new().with_identity_hash(hash).raw(),
        );
        self.store(
            addr.add_words(KLASS_OFFSET as u64),
            reg.meta_addr(klass).get(),
        );
        self.store(addr.add_words(EXT_OFFSET as u64), ExtWord::new().raw());
        self.allocated_objects += 1;
    }

    /// A typed view of the object at `addr`.
    pub fn object<'h>(&'h self, reg: &'h KlassRegistry, addr: Addr) -> ObjectView<'h> {
        ObjectView::new(self, reg, addr)
    }

    /// Mark word of the object at `addr`.
    pub fn mark_word(&self, addr: Addr) -> MarkWord {
        MarkWord::from_raw(self.load(addr.add_words(MARK_OFFSET as u64)))
    }

    /// Overwrites the mark word.
    pub fn set_mark_word(&mut self, addr: Addr, m: MarkWord) {
        self.store(addr.add_words(MARK_OFFSET as u64), m.raw());
    }

    /// Klass id of the object at `addr` (decoded from its klass pointer).
    ///
    /// # Panics
    /// Panics if the klass pointer does not decode against `reg` — i.e. the
    /// address does not hold a live object.
    pub fn klass_of(&self, reg: &KlassRegistry, addr: Addr) -> KlassId {
        let ptr = Addr(self.load(addr.add_words(KLASS_OFFSET as u64)));
        reg.id_of_meta_addr(ptr)
            .unwrap_or_else(|| panic!("no object at {addr}: bad klass pointer {ptr}"))
    }

    /// Cereal extension word of the object at `addr`.
    pub fn ext_word(&self, addr: Addr) -> ExtWord {
        ExtWord::from_raw(self.load(addr.add_words(EXT_OFFSET as u64)))
    }

    /// Overwrites the Cereal extension word.
    pub fn set_ext_word(&mut self, addr: Addr, e: ExtWord) {
        self.store(addr.add_words(EXT_OFFSET as u64), e.raw());
    }

    /// Value of declared field `i` (not for arrays).
    #[inline]
    pub fn field(&self, addr: Addr, i: usize) -> u64 {
        self.load(addr.add_words((HEADER_WORDS + i) as u64))
    }

    /// Sets declared field `i` to a primitive value.
    #[inline]
    pub fn set_field(&mut self, addr: Addr, i: usize, value: u64) {
        self.store(addr.add_words((HEADER_WORDS + i) as u64), value);
    }

    /// Reads declared field `i` as a reference (`None` = null).
    #[inline]
    pub fn ref_field(&self, addr: Addr, i: usize) -> Option<Addr> {
        let v = self.field(addr, i);
        (v != 0).then_some(Addr(v))
    }

    /// Sets declared field `i` to a reference.
    #[inline]
    pub fn set_ref(&mut self, addr: Addr, i: usize, target: Addr) {
        self.set_field(addr, i, target.get());
    }

    /// Slice over declared fields `first..first + len` of the instance at
    /// `addr` — the batched read the compiled-plan run interpreters use,
    /// with one bounds check per run instead of one per field.
    #[inline]
    pub fn field_words(&self, addr: Addr, first: usize, len: usize) -> &[u64] {
        let i = self.index_of(addr.add_words((HEADER_WORDS + first) as u64));
        &self.words[i..i + len]
    }

    /// Mutable slice over declared fields `first..first + len` of the
    /// instance at `addr`.
    #[inline]
    pub fn field_words_mut(&mut self, addr: Addr, first: usize, len: usize) -> &mut [u64] {
        let i = self.index_of(addr.add_words((HEADER_WORDS + first) as u64));
        &mut self.words[i..i + len]
    }

    /// Slice over elements `first..first + len` of the array at `addr`.
    #[inline]
    pub fn array_words_slice(&self, addr: Addr, first: usize, len: usize) -> &[u64] {
        let i = self.index_of(addr.add_words((HEADER_WORDS + 1 + first) as u64));
        &self.words[i..i + len]
    }

    /// Mutable slice over elements `first..first + len` of the array at
    /// `addr`.
    #[inline]
    pub fn array_words_slice_mut(&mut self, addr: Addr, first: usize, len: usize) -> &mut [u64] {
        let i = self.index_of(addr.add_words((HEADER_WORDS + 1 + first) as u64));
        &mut self.words[i..i + len]
    }

    /// Length of the array object at `addr`.
    #[inline]
    pub fn array_len(&self, addr: Addr) -> usize {
        self.load(addr.add_words(HEADER_WORDS as u64)) as usize
    }

    /// Element `i` of the array object at `addr`.
    #[inline]
    pub fn array_elem(&self, addr: Addr, i: usize) -> u64 {
        self.load(addr.add_words((HEADER_WORDS + 1 + i) as u64))
    }

    /// Sets element `i` of the array object at `addr`.
    #[inline]
    pub fn set_array_elem(&mut self, addr: Addr, i: usize, value: u64) {
        self.store(addr.add_words((HEADER_WORDS + 1 + i) as u64), value);
    }

    /// Total size in words of the object at `addr` (header included).
    pub fn object_words(&self, reg: &KlassRegistry, addr: Addr) -> usize {
        let k = reg.get(self.klass_of(reg, addr));
        if k.is_array() {
            k.array_words(self.array_len(addr))
        } else {
            k.instance_words()
        }
    }

    /// Clears every allocated object's extension word — the metadata reset
    /// the paper piggybacks on garbage collection (§V-E) so serialization
    /// counters and unit reservations cannot go stale.
    pub fn gc_clear_serialization_metadata(&mut self, reg: &KlassRegistry) {
        let mut cursor = self.base;
        let end = self.top_addr();
        while cursor.get() < end.get() {
            let words = self.object_words(reg, cursor) as u64;
            self.set_ext_word(cursor, ExtWord::new());
            cursor = cursor.add_words(words);
        }
    }

    /// Iterates over the addresses of all allocated objects in allocation
    /// order. Only valid when every allocation went through
    /// [`Heap::alloc`]/[`Heap::alloc_array`] (not raw block copies).
    pub fn iter_objects<'h>(
        &'h self,
        reg: &'h KlassRegistry,
    ) -> impl Iterator<Item = Addr> + 'h {
        let mut cursor = self.base;
        let end = self.top_addr();
        std::iter::from_fn(move || {
            if cursor.get() >= end.get() {
                return None;
            }
            let addr = cursor;
            cursor = cursor.add_words(self.object_words(reg, addr) as u64);
            Some(addr)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::klass::{FieldKind, Klass, ValueType};

    fn registry() -> (KlassRegistry, KlassId, KlassId) {
        let mut reg = KlassRegistry::new();
        let node = reg.register(Klass::new(
            "Node",
            vec![FieldKind::Value(ValueType::Long), FieldKind::Ref],
        ));
        let arr = reg.register(Klass::array("long[]", FieldKind::Value(ValueType::Long)));
        (reg, node, arr)
    }

    #[test]
    fn alloc_initializes_header() {
        let (reg, node, _) = registry();
        let mut heap = Heap::new(4096);
        let a = heap.alloc(&reg, node).unwrap();
        assert_eq!(heap.klass_of(&reg, a), node);
        assert_ne!(heap.mark_word(a).identity_hash(), 0);
        assert_eq!(heap.ext_word(a), ExtWord::new());
        assert_eq!(heap.object_count(), 1);
        assert_eq!(heap.used_bytes(), 5 * WORD_BYTES);
    }

    #[test]
    fn identity_hashes_differ() {
        let (reg, node, _) = registry();
        let mut heap = Heap::new(4096);
        let a = heap.alloc(&reg, node).unwrap();
        let b = heap.alloc(&reg, node).unwrap();
        assert_ne!(
            heap.mark_word(a).identity_hash(),
            heap.mark_word(b).identity_hash()
        );
    }

    #[test]
    fn fields_and_refs() {
        let (reg, node, _) = registry();
        let mut heap = Heap::new(4096);
        let a = heap.alloc(&reg, node).unwrap();
        let b = heap.alloc(&reg, node).unwrap();
        heap.set_field(a, 0, 99);
        heap.set_ref(a, 1, b);
        assert_eq!(heap.field(a, 0), 99);
        assert_eq!(heap.ref_field(a, 1), Some(b));
        assert_eq!(heap.ref_field(b, 1), None);
    }

    #[test]
    fn field_and_array_slices_match_scalar_access() {
        let (reg, node, arr) = registry();
        let mut heap = Heap::new(4096);
        let a = heap.alloc(&reg, node).unwrap();
        heap.set_field(a, 0, 11);
        heap.set_field(a, 1, 22);
        assert_eq!(heap.field_words(a, 0, 2), &[11, 22]);
        heap.field_words_mut(a, 0, 2)[1] = 33;
        assert_eq!(heap.field(a, 1), 33);

        let v = heap.alloc_array(&reg, arr, 4).unwrap();
        for i in 0..4 {
            heap.set_array_elem(v, i, i as u64 + 1);
        }
        assert_eq!(heap.array_words_slice(v, 1, 2), &[2, 3]);
        heap.array_words_slice_mut(v, 0, 4)[3] = 9;
        assert_eq!(heap.array_elem(v, 3), 9);
    }

    #[test]
    fn arrays() {
        let (reg, _, arr) = registry();
        let mut heap = Heap::new(4096);
        let a = heap.alloc_array(&reg, arr, 5).unwrap();
        assert_eq!(heap.array_len(a), 5);
        for i in 0..5 {
            heap.set_array_elem(a, i, (i * i) as u64);
        }
        assert_eq!(heap.array_elem(a, 4), 16);
        assert_eq!(heap.object_words(&reg, a), HEADER_WORDS + 1 + 5);
    }

    #[test]
    fn out_of_memory() {
        let (reg, node, _) = registry();
        let mut heap = Heap::new(5 * WORD_BYTES); // exactly one Node
        heap.alloc(&reg, node).unwrap();
        let err = heap.alloc(&reg, node).unwrap_err();
        assert!(matches!(err, HeapError::OutOfMemory { .. }));
        assert!(err.to_string().contains("out of memory"));
    }

    #[test]
    fn iter_objects_walks_allocation_order() {
        let (reg, node, arr) = registry();
        let mut heap = Heap::new(4096);
        let a = heap.alloc(&reg, node).unwrap();
        let b = heap.alloc_array(&reg, arr, 3).unwrap();
        let c = heap.alloc(&reg, node).unwrap();
        let all: Vec<_> = heap.iter_objects(&reg).collect();
        assert_eq!(all, vec![a, b, c]);
    }

    #[test]
    fn gc_clears_extension_words() {
        let (reg, node, _) = registry();
        let mut heap = Heap::new(4096);
        let a = heap.alloc(&reg, node).unwrap();
        let b = heap.alloc(&reg, node).unwrap();
        heap.set_ext_word(a, ExtWord::new().with_counter(3).with_reserving_unit(1));
        heap.set_ext_word(b, ExtWord::new().with_relative_addr(64));
        heap.gc_clear_serialization_metadata(&reg);
        assert_eq!(heap.ext_word(a), ExtWord::new());
        assert_eq!(heap.ext_word(b), ExtWord::new());
    }

    #[test]
    fn custom_base() {
        let (reg, node, _) = registry();
        let base = Addr(0x8000_0000);
        let mut heap = Heap::with_base(base, 4096);
        let a = heap.alloc(&reg, node).unwrap();
        assert_eq!(a, base);
        assert!(heap.contains(a));
        assert!(!heap.contains(Addr(0x100)));
    }

    #[test]
    fn debug_is_informative() {
        let heap = Heap::new(1024);
        let s = format!("{heap:?}");
        assert!(s.contains("capacity_words"));
    }
}
