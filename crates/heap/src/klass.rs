//! Type descriptors ("klasses") and the klass registry.
//!
//! In HotSpot, the second header word of every object points to a type
//! descriptor holding the object layout — in particular the offsets of all
//! reference fields — and the total object size (paper §II, Fig. 1(a)).
//! Serializers consult it to locate references; Cereal's object metadata
//! manager fetches it from memory (§V-B).
//!
//! To make that fetch a *real* memory access in the simulation, every
//! registered klass is assigned a descriptor address in a reserved metadata
//! region of the address space ([`KlassRegistry::META_BASE`]); the heap
//! stores this address in each object's klass-pointer word.

use std::collections::HashMap;
use std::fmt;

use crate::word::Addr;

/// Index of a registered class. Also serves as the integer "class ID" used
/// by the Kryo/Skyway baselines and by Cereal's Klass Pointer / Class ID
/// tables.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct KlassId(pub u32);

impl KlassId {
    /// Raw integer id.
    pub fn get(self) -> u32 {
        self.0
    }
}

impl fmt::Display for KlassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "klass#{}", self.0)
    }
}

/// Primitive Java field types. All occupy one 8 B word in our layout (as in
/// HotSpot with 8 B field alignment); the distinction matters only for the
/// Java S/D baseline, which embeds field-type metadata in its stream.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ValueType {
    /// `long` / generic 64-bit payload.
    Long,
    /// `double` floating point.
    Double,
    /// `int` (stored widened to a word).
    Int,
    /// `boolean` (stored widened to a word).
    Boolean,
    /// `byte` (stored widened to a word).
    Byte,
    /// `char` (stored widened to a word).
    Char,
}

impl ValueType {
    /// JVM-style single-character type signature, embedded by the Java S/D
    /// baseline in its field metadata.
    pub fn signature(self) -> char {
        match self {
            ValueType::Long => 'J',
            ValueType::Double => 'D',
            ValueType::Int => 'I',
            ValueType::Boolean => 'Z',
            ValueType::Byte => 'B',
            ValueType::Char => 'C',
        }
    }
}

/// The kind of one field slot: a primitive value or a reference.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FieldKind {
    /// Primitive value of the given type.
    Value(ValueType),
    /// Reference to another object (absolute address; 0 = null).
    Ref,
}

impl FieldKind {
    /// `true` for reference slots.
    pub fn is_ref(self) -> bool {
        matches!(self, FieldKind::Ref)
    }
}

/// One named field of an instance klass.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Field {
    /// Field name (used by the Java S/D baseline's string metadata and its
    /// reflection model).
    pub name: String,
    /// Value or reference.
    pub kind: FieldKind,
}

/// A type descriptor: name, field layout, and (for arrays) element kind.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Klass {
    name: String,
    fields: Vec<Field>,
    array_elem: Option<FieldKind>,
}

impl Klass {
    /// An instance klass with auto-named fields (`f0`, `f1`, …).
    pub fn new(name: impl Into<String>, kinds: Vec<FieldKind>) -> Self {
        let fields = kinds
            .into_iter()
            .enumerate()
            .map(|(i, kind)| Field {
                name: format!("f{i}"),
                kind,
            })
            .collect();
        Klass {
            name: name.into(),
            fields,
            array_elem: None,
        }
    }

    /// An instance klass with explicit field names.
    pub fn with_named_fields(
        name: impl Into<String>,
        fields: Vec<(impl Into<String>, FieldKind)>,
    ) -> Self {
        Klass {
            name: name.into(),
            fields: fields
                .into_iter()
                .map(|(n, kind)| Field {
                    name: n.into(),
                    kind,
                })
                .collect(),
            array_elem: None,
        }
    }

    /// An array klass whose elements are all `elem` (e.g. `double[]`,
    /// `Object[]`). Array objects carry a length word after the header.
    pub fn array(name: impl Into<String>, elem: FieldKind) -> Self {
        Klass {
            name: name.into(),
            fields: Vec::new(),
            array_elem: Some(elem),
        }
    }

    /// Class name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared instance fields (empty for array klasses).
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// `Some(elem)` when this is an array klass.
    pub fn array_elem(&self) -> Option<FieldKind> {
        self.array_elem
    }

    /// `true` for array klasses.
    pub fn is_array(&self) -> bool {
        self.array_elem.is_some()
    }

    /// Number of declared fields (0 for arrays).
    pub fn num_fields(&self) -> usize {
        self.fields.len()
    }

    /// Word offsets (from object start, header included) of the reference
    /// slots of an *instance* of this klass. For arrays this depends on the
    /// per-object length, so use [`crate::ObjectView::layout_bits`] instead.
    pub fn ref_offsets(&self) -> Vec<usize> {
        self.fields
            .iter()
            .enumerate()
            .filter(|(_, f)| f.kind.is_ref())
            .map(|(i, _)| crate::object::HEADER_WORDS + i)
            .collect()
    }

    /// Maximal runs of adjacent primitive fields, as `(first_index, len)`
    /// pairs in declaration order — the layout query plan compilers use to
    /// turn contiguous non-reference fields into single copy runs.
    /// Reference slots break runs; a klass with no primitive fields yields
    /// no runs.
    pub fn prim_runs(&self) -> Vec<(usize, usize)> {
        let mut runs = Vec::new();
        let mut start = None;
        for (i, f) in self.fields.iter().enumerate() {
            match (f.kind.is_ref(), start) {
                (false, None) => start = Some(i),
                (false, Some(_)) => {}
                (true, Some(s)) => {
                    runs.push((s, i - s));
                    start = None;
                }
                (true, None) => {}
            }
        }
        if let Some(s) = start {
            runs.push((s, self.fields.len() - s));
        }
        runs
    }

    /// Total instance size in words (header + fields) for non-array
    /// klasses.
    ///
    /// # Panics
    /// Panics if called on an array klass (array size is per-object).
    pub fn instance_words(&self) -> usize {
        assert!(
            !self.is_array(),
            "instance_words is undefined for array klass {}",
            self.name
        );
        crate::object::HEADER_WORDS + self.fields.len()
    }

    /// Size in words of an array instance with `len` elements: header,
    /// length word, elements.
    pub fn array_words(&self, len: usize) -> usize {
        assert!(self.is_array(), "{} is not an array klass", self.name);
        crate::object::HEADER_WORDS + 1 + len
    }

    /// Approximate size of the in-memory type descriptor in words — what
    /// the object metadata manager must fetch. Two words of fixed metadata
    /// (size, flags) plus one layout word per 64 fields.
    pub fn descriptor_words(&self) -> usize {
        2 + self.fields.len().div_ceil(64).max(1)
    }
}

/// Registry of all klasses known to the runtime, with name lookup and
/// descriptor addresses.
///
/// Shared by the serializing and deserializing sides, mirroring the type
/// registries of Kryo ("the same type registry must be used for
/// deserialization") and Skyway's global registry.
#[derive(Clone, Debug, Default)]
pub struct KlassRegistry {
    klasses: Vec<Klass>,
    by_name: HashMap<String, KlassId>,
}

impl KlassRegistry {
    /// Start of the reserved metadata region holding type descriptors.
    pub const META_BASE: u64 = 0x1000_0000;
    /// Byte stride between descriptor slots (fixed-size slots keep the
    /// address ↔ id mapping arithmetic).
    pub const META_SLOT_BYTES: u64 = 256;

    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a klass, returning its id. Registering the same name twice
    /// returns the existing id (and debug-asserts the layouts agree).
    pub fn register(&mut self, klass: Klass) -> KlassId {
        if let Some(&id) = self.by_name.get(klass.name()) {
            debug_assert_eq!(
                &self.klasses[id.0 as usize], &klass,
                "re-registration of {} with a different layout",
                klass.name()
            );
            return id;
        }
        let id = KlassId(self.klasses.len() as u32);
        self.by_name.insert(klass.name().to_owned(), id);
        self.klasses.push(klass);
        id
    }

    /// Looks a klass up by id.
    ///
    /// # Panics
    /// Panics if the id was not issued by this registry.
    pub fn get(&self, id: KlassId) -> &Klass {
        &self.klasses[id.0 as usize]
    }

    /// Looks a klass id up by name — the string lookup the Java S/D
    /// baseline performs during type resolution.
    pub fn lookup(&self, name: &str) -> Option<KlassId> {
        self.by_name.get(name).copied()
    }

    /// Number of registered klasses.
    pub fn len(&self) -> usize {
        self.klasses.len()
    }

    /// `true` when no klass is registered.
    pub fn is_empty(&self) -> bool {
        self.klasses.is_empty()
    }

    /// Iterates over `(id, klass)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (KlassId, &Klass)> {
        self.klasses
            .iter()
            .enumerate()
            .map(|(i, k)| (KlassId(i as u32), k))
    }

    /// Descriptor address of a klass — the value stored in objects'
    /// klass-pointer words.
    pub fn meta_addr(&self, id: KlassId) -> Addr {
        Addr(Self::META_BASE + u64::from(id.0) * Self::META_SLOT_BYTES)
    }

    /// Inverse of [`Self::meta_addr`].
    ///
    /// Returns `None` for addresses outside the metadata region or not on a
    /// registered slot.
    pub fn id_of_meta_addr(&self, addr: Addr) -> Option<KlassId> {
        let off = addr.get().checked_sub(Self::META_BASE)?;
        if off % Self::META_SLOT_BYTES != 0 {
            return None;
        }
        let id = KlassId(u32::try_from(off / Self::META_SLOT_BYTES).ok()?);
        (usize::try_from(id.0).unwrap() < self.klasses.len()).then_some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut reg = KlassRegistry::new();
        let a = reg.register(Klass::new("A", vec![FieldKind::Ref]));
        let b = reg.register(Klass::new("B", vec![]));
        assert_ne!(a, b);
        assert_eq!(reg.lookup("A"), Some(a));
        assert_eq!(reg.lookup("B"), Some(b));
        assert_eq!(reg.lookup("C"), None);
        assert_eq!(reg.len(), 2);
        assert!(!reg.is_empty());
    }

    #[test]
    fn reregistration_is_idempotent() {
        let mut reg = KlassRegistry::new();
        let a1 = reg.register(Klass::new("A", vec![FieldKind::Ref]));
        let a2 = reg.register(Klass::new("A", vec![FieldKind::Ref]));
        assert_eq!(a1, a2);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn meta_addr_roundtrip() {
        let mut reg = KlassRegistry::new();
        let ids: Vec<_> = (0..5)
            .map(|i| reg.register(Klass::new(format!("K{i}"), vec![])))
            .collect();
        for id in ids {
            let addr = reg.meta_addr(id);
            assert_eq!(reg.id_of_meta_addr(addr), Some(id));
        }
        // Unknown or unaligned addresses decode to None.
        assert_eq!(reg.id_of_meta_addr(Addr(KlassRegistry::META_BASE + 7)), None);
        assert_eq!(
            reg.id_of_meta_addr(Addr(KlassRegistry::META_BASE + 100 * KlassRegistry::META_SLOT_BYTES)),
            None
        );
        assert_eq!(reg.id_of_meta_addr(Addr(0x10)), None);
    }

    #[test]
    fn ref_offsets_skip_header() {
        let k = Klass::new(
            "K",
            vec![
                FieldKind::Value(ValueType::Long),
                FieldKind::Ref,
                FieldKind::Value(ValueType::Int),
                FieldKind::Ref,
            ],
        );
        assert_eq!(k.ref_offsets(), vec![4, 6]); // header is 3 words
        assert_eq!(k.instance_words(), 7);
    }

    #[test]
    fn prim_runs_coalesce_and_split_on_refs() {
        let k = Klass::new(
            "K",
            vec![
                FieldKind::Value(ValueType::Long),
                FieldKind::Value(ValueType::Int),
                FieldKind::Ref,
                FieldKind::Value(ValueType::Double),
                FieldKind::Ref,
                FieldKind::Ref,
                FieldKind::Value(ValueType::Byte),
                FieldKind::Value(ValueType::Char),
            ],
        );
        assert_eq!(k.prim_runs(), vec![(0, 2), (3, 1), (6, 2)]);
        let all_refs = Klass::new("R", vec![FieldKind::Ref; 3]);
        assert_eq!(all_refs.prim_runs(), vec![]);
        let all_prims = Klass::new("P", vec![FieldKind::Value(ValueType::Long); 4]);
        assert_eq!(all_prims.prim_runs(), vec![(0, 4)]);
        let empty = Klass::new("E", vec![]);
        assert_eq!(empty.prim_runs(), vec![]);
    }

    #[test]
    fn array_sizes() {
        let k = Klass::array("long[]", FieldKind::Value(ValueType::Long));
        assert!(k.is_array());
        assert_eq!(k.array_words(0), 4); // header + length word
        assert_eq!(k.array_words(10), 14);
    }

    #[test]
    #[should_panic(expected = "undefined for array klass")]
    fn instance_words_panics_for_arrays() {
        let k = Klass::array("Object[]", FieldKind::Ref);
        let _ = k.instance_words();
    }

    #[test]
    fn named_fields_and_signatures() {
        let k = Klass::with_named_fields(
            "Point",
            vec![("x", FieldKind::Value(ValueType::Double)), ("y", FieldKind::Value(ValueType::Double))],
        );
        assert_eq!(k.fields()[0].name, "x");
        assert_eq!(ValueType::Double.signature(), 'D');
        assert_eq!(ValueType::Long.signature(), 'J');
        assert_eq!(ValueType::Boolean.signature(), 'Z');
    }

    #[test]
    fn descriptor_words_scale_with_fields() {
        let small = Klass::new("S", vec![FieldKind::Ref; 3]);
        let large = Klass::new("L", vec![FieldKind::Ref; 130]);
        assert_eq!(small.descriptor_words(), 3);
        assert_eq!(large.descriptor_words(), 5); // 2 + ceil(130/64)
    }
}
