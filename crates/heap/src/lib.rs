//! `sdheap` — a HotSpot-like managed heap substrate.
//!
//! The Cereal paper (ISCA 2020) accelerates serialization of *Java objects
//! as laid out by the HotSpot JVM*. This crate reproduces that memory layout
//! so the serializers and the accelerator model in the sibling crates
//! generate the same address streams the paper describes:
//!
//! * every object starts with a 16 B header — an 8 B **mark word**
//!   (31-bit identity hash, 3-bit synchronization state, 6-bit GC state)
//!   followed by an 8 B **klass pointer** to the type descriptor;
//! * Cereal's JVM extension (paper §V-E) adds one more 8 B **extension
//!   word** per serializable object holding the visited-tracking counter,
//!   the reserving unit ID, and the recorded relative address;
//! * all fields are 8 B aligned and 8 B wide (one *word* each), either a
//!   primitive value or a reference (absolute byte address; 0 is null);
//! * type descriptors (klasses) live in a dedicated metadata region of the
//!   same address space, so fetching an object's layout is a real memory
//!   access with a real address, exactly what the accelerator's object
//!   metadata manager must pay for.
//!
//! # Example
//!
//! ```
//! use sdheap::{Heap, KlassRegistry, Klass, FieldKind, ValueType};
//!
//! let mut reg = KlassRegistry::new();
//! let pair = reg.register(Klass::new("Pair", vec![
//!     FieldKind::Value(ValueType::Long),
//!     FieldKind::Ref,
//! ]));
//! let mut heap = Heap::new(1 << 20);
//! let inner = heap.alloc(&reg, pair).unwrap();
//! let outer = heap.alloc(&reg, pair).unwrap();
//! heap.set_field(outer, 0, 42);
//! heap.set_ref(outer, 1, inner);
//! assert_eq!(heap.field(outer, 0), 42);
//! assert_eq!(heap.ref_field(outer, 1), Some(inner));
//! ```

pub mod builder;
pub mod ext;
pub mod gc;
pub mod graph;
pub mod heap;
pub mod klass;
pub mod mark;
pub mod object;
pub mod rng;
pub mod word;

pub use builder::GraphBuilder;
pub use ext::ExtWord;
pub use gc::{collect, GcStats};
pub use graph::{isomorphic, isomorphic_with, reachable, GraphStats, IsoOptions, Reachable};
pub use heap::{Heap, HeapError};
pub use klass::{FieldKind, Klass, KlassId, KlassRegistry, ValueType};
pub use mark::MarkWord;
pub use object::{ObjectView, HEADER_WORDS, MARK_OFFSET, KLASS_OFFSET, EXT_OFFSET};
pub use word::{Addr, WORD_BYTES};
