//! Mark word bit fields.
//!
//! The paper (§II, "Java Object Layout") describes HotSpot's 8 B mark word
//! as: a 31-bit identity hash code, a 3-bit synchronization state, 6 bits of
//! GC state, and 25 unused bits. We pack them as:
//!
//! ```text
//!  bits  0..3   synchronization state (3 bits)
//!  bits  3..9   GC state              (6 bits)
//!  bits  9..40  identity hash code    (31 bits)
//!  bits 40..64  unused                (24 bits kept zero; the paper's count
//!                                      of 25 includes one reserved bit we
//!                                      fold into the sync field's padding)
//! ```

/// A decoded HotSpot-style mark word.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct MarkWord {
    raw: u64,
}

const SYNC_SHIFT: u32 = 0;
const SYNC_BITS: u64 = 0b111;
const GC_SHIFT: u32 = 3;
const GC_BITS: u64 = 0b11_1111;
const HASH_SHIFT: u32 = 9;
const HASH_BITS: u64 = 0x7fff_ffff;

impl MarkWord {
    /// A zeroed mark word (unlocked, no hash).
    pub fn new() -> Self {
        MarkWord { raw: 0 }
    }

    /// Decode from a raw heap word.
    pub fn from_raw(raw: u64) -> Self {
        MarkWord { raw }
    }

    /// The raw 8 B encoding stored in the heap.
    pub fn raw(self) -> u64 {
        self.raw
    }

    /// The 31-bit identity hash code.
    pub fn identity_hash(self) -> u32 {
        ((self.raw >> HASH_SHIFT) & HASH_BITS) as u32
    }

    /// Sets the identity hash (truncated to 31 bits), returning the updated
    /// word.
    pub fn with_identity_hash(self, hash: u32) -> Self {
        let raw = (self.raw & !(HASH_BITS << HASH_SHIFT))
            | ((u64::from(hash) & HASH_BITS) << HASH_SHIFT);
        MarkWord { raw }
    }

    /// The 3-bit synchronization state.
    pub fn sync_state(self) -> u8 {
        ((self.raw >> SYNC_SHIFT) & SYNC_BITS) as u8
    }

    /// Sets the 3-bit synchronization state.
    pub fn with_sync_state(self, s: u8) -> Self {
        let raw = (self.raw & !(SYNC_BITS << SYNC_SHIFT))
            | ((u64::from(s) & SYNC_BITS) << SYNC_SHIFT);
        MarkWord { raw }
    }

    /// The 6 GC state bits.
    pub fn gc_bits(self) -> u8 {
        ((self.raw >> GC_SHIFT) & GC_BITS) as u8
    }

    /// Sets the 6 GC state bits.
    pub fn with_gc_bits(self, g: u8) -> Self {
        let raw =
            (self.raw & !(GC_BITS << GC_SHIFT)) | ((u64::from(g) & GC_BITS) << GC_SHIFT);
        MarkWord { raw }
    }

    /// Mark word with all mutable runtime state cleared but the identity
    /// hash preserved — what "header stripping" (paper Fig. 16) must keep to
    /// re-construct `hashCode()`-dependent behaviour.
    pub fn stripped(self) -> Self {
        MarkWord::new().with_identity_hash(self.identity_hash())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_are_independent() {
        let m = MarkWord::new()
            .with_identity_hash(0x1234_5678)
            .with_sync_state(0b101)
            .with_gc_bits(0b10_1010);
        assert_eq!(m.identity_hash(), 0x1234_5678);
        assert_eq!(m.sync_state(), 0b101);
        assert_eq!(m.gc_bits(), 0b10_1010);
        // Updating one field leaves the others intact.
        let m2 = m.with_identity_hash(1);
        assert_eq!(m2.identity_hash(), 1);
        assert_eq!(m2.sync_state(), 0b101);
        assert_eq!(m2.gc_bits(), 0b10_1010);
    }

    #[test]
    fn hash_truncates_to_31_bits() {
        let m = MarkWord::new().with_identity_hash(u32::MAX);
        assert_eq!(m.identity_hash(), 0x7fff_ffff);
    }

    #[test]
    fn roundtrips_raw() {
        let m = MarkWord::new().with_identity_hash(77).with_gc_bits(3);
        assert_eq!(MarkWord::from_raw(m.raw()), m);
    }

    #[test]
    fn stripped_keeps_only_hash() {
        let m = MarkWord::new()
            .with_identity_hash(99)
            .with_sync_state(7)
            .with_gc_bits(63);
        let s = m.stripped();
        assert_eq!(s.identity_hash(), 99);
        assert_eq!(s.sync_state(), 0);
        assert_eq!(s.gc_bits(), 0);
    }

    #[test]
    fn unused_bits_stay_zero() {
        let m = MarkWord::new()
            .with_identity_hash(u32::MAX)
            .with_sync_state(u8::MAX)
            .with_gc_bits(u8::MAX);
        assert_eq!(m.raw() >> 40, 0, "upper 24 bits must remain unused");
    }
}
