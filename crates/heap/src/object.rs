//! Typed object views and per-object layout queries.
//!
//! [`ObjectView`] bundles a heap, a registry and an address and answers the
//! layout questions serializers ask: which words are references, how large
//! is the object, what is its layout bitmap (1 bit per 8 B word; 1 =
//! reference — paper §IV-A, Fig. 4).

use crate::heap::Heap;
use crate::klass::{FieldKind, Klass, KlassId, KlassRegistry};
use crate::word::Addr;

/// Word offset of the mark word within an object.
pub const MARK_OFFSET: usize = 0;
/// Word offset of the klass pointer within an object.
pub const KLASS_OFFSET: usize = 1;
/// Word offset of Cereal's extension word within an object.
pub const EXT_OFFSET: usize = 2;
/// Header size in words: mark word + klass pointer + Cereal extension.
pub const HEADER_WORDS: usize = 3;

/// A read-only typed view over one object.
#[derive(Clone, Copy)]
pub struct ObjectView<'h> {
    heap: &'h Heap,
    reg: &'h KlassRegistry,
    addr: Addr,
    klass: KlassId,
}

impl<'h> ObjectView<'h> {
    /// View of the object at `addr`.
    ///
    /// # Panics
    /// Panics if `addr` does not hold a live object.
    pub fn new(heap: &'h Heap, reg: &'h KlassRegistry, addr: Addr) -> Self {
        let klass = heap.klass_of(reg, addr);
        ObjectView {
            heap,
            reg,
            addr,
            klass,
        }
    }

    /// The object's address.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// The object's klass id.
    pub fn klass_id(&self) -> KlassId {
        self.klass
    }

    /// The object's type descriptor.
    pub fn klass(&self) -> &'h Klass {
        self.reg.get(self.klass)
    }

    /// Total object size in words, header included.
    pub fn size_words(&self) -> usize {
        self.heap.object_words(self.reg, self.addr)
    }

    /// Total object size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_words() as u64 * crate::word::WORD_BYTES
    }

    /// The kind of the word at offset `w` (0-based from the object start):
    /// header and length words are values; field/element words follow the
    /// klass layout.
    ///
    /// # Panics
    /// Panics if `w` is outside the object.
    pub fn word_kind(&self, w: usize) -> FieldKind {
        assert!(w < self.size_words(), "word {w} outside object");
        let k = self.klass();
        if w < HEADER_WORDS {
            return FieldKind::Value(crate::klass::ValueType::Long);
        }
        if let Some(elem) = k.array_elem() {
            if w == HEADER_WORDS {
                FieldKind::Value(crate::klass::ValueType::Long) // length word
            } else {
                elem
            }
        } else {
            k.fields()[w - HEADER_WORDS].kind
        }
    }

    /// The object's layout bitmap: one bit per word, set for reference
    /// slots. Its length in bits times 8 equals the object size in bytes,
    /// exactly as the paper derives object size from the bitmap.
    pub fn layout_bits(&self) -> Vec<bool> {
        (0..self.size_words())
            .map(|w| self.word_kind(w).is_ref())
            .collect()
    }

    /// Word offsets (from object start) of all reference slots, in order.
    pub fn ref_offsets(&self) -> Vec<usize> {
        self.layout_bits()
            .iter()
            .enumerate()
            .filter(|(_, is_ref)| **is_ref)
            .map(|(w, _)| w)
            .collect()
    }

    /// The references held by this object, in layout order (nulls
    /// included as `Addr::NULL`).
    pub fn references(&self) -> Vec<Addr> {
        self.ref_offsets()
            .into_iter()
            .map(|w| Addr(self.heap.load(self.addr.add_words(w as u64))))
            .collect()
    }

    /// Raw word at offset `w`.
    pub fn word(&self, w: usize) -> u64 {
        self.heap.load(self.addr.add_words(w as u64))
    }
}

impl std::fmt::Debug for ObjectView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObjectView")
            .field("addr", &self.addr)
            .field("klass", &self.klass().name())
            .field("size_words", &self.size_words())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::klass::ValueType;

    fn setup() -> (Heap, KlassRegistry, Addr, Addr) {
        let mut reg = KlassRegistry::new();
        let node = reg.register(Klass::new(
            "Node",
            vec![
                FieldKind::Value(ValueType::Long),
                FieldKind::Ref,
                FieldKind::Ref,
            ],
        ));
        let refarr = reg.register(Klass::array("Object[]", FieldKind::Ref));
        let mut heap = Heap::new(8192);
        let n = heap.alloc(&reg, node).unwrap();
        let a = heap.alloc_array(&reg, refarr, 4).unwrap();
        let mut h2 = heap.clone();
        h2.set_ref(n, 1, a);
        (h2, reg, n, a)
    }

    #[test]
    fn layout_bits_mark_references() {
        let (heap, reg, n, _) = setup();
        let v = heap.object(&reg, n);
        // header(3 values) + long + ref + ref
        assert_eq!(
            v.layout_bits(),
            vec![false, false, false, false, true, true]
        );
        assert_eq!(v.ref_offsets(), vec![4, 5]);
        assert_eq!(v.size_bytes(), 48);
    }

    #[test]
    fn array_layout_includes_length_word() {
        let (heap, reg, _, a) = setup();
        let v = heap.object(&reg, a);
        // header(3) + length + 4 ref elements
        assert_eq!(
            v.layout_bits(),
            vec![false, false, false, false, true, true, true, true]
        );
        assert_eq!(v.size_words(), 8);
    }

    #[test]
    fn references_in_layout_order() {
        let (heap, reg, n, a) = setup();
        let v = heap.object(&reg, n);
        assert_eq!(v.references(), vec![a, Addr::NULL]);
    }

    #[test]
    #[should_panic(expected = "outside object")]
    fn word_kind_bounds_checked() {
        let (heap, reg, n, _) = setup();
        let v = heap.object(&reg, n);
        let _ = v.word_kind(6);
    }

    #[test]
    fn debug_shows_klass() {
        let (heap, reg, n, _) = setup();
        let s = format!("{:?}", heap.object(&reg, n));
        assert!(s.contains("Node"));
    }
}
