//! A small deterministic PRNG for workload generation and tests.
//!
//! The sandbox builds offline, so the external `rand` crate is not
//! available; every generator in the repository runs on this
//! xoshiro256++ implementation instead. Determinism is the point:
//! workloads are seed-stable across runs and platforms, which is what
//! the figure-regeneration harness and the seeded property tests rely
//! on.
//!
//! ```
//! use sdheap::rng::Rng;
//! let mut a = Rng::new(7);
//! let mut b = Rng::new(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

/// xoshiro256++ generator, seeded via SplitMix64.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

/// One SplitMix64 step — used to expand the seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// A generator whose entire state derives from `seed`.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let out = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        out
    }

    /// Uniform `u64` in `[lo, hi)`. Panics if the range is empty.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        let span = hi - lo;
        // Multiply-shift reduction (Lemire): unbiased enough for workload
        // generation, and branch-free.
        let hi128 = ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64;
        lo + hi128
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.gen_range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.gen_f64()
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = (0..16).map({
            let mut r = Rng::new(42);
            move |_| r.next_u64()
        }).collect();
        let b: Vec<u64> = (0..16).map({
            let mut r = Rng::new(42);
            move |_| r.next_u64()
        }).collect();
        assert_eq!(a, b);
        let c: Vec<u64> = (0..16).map({
            let mut r = Rng::new(43);
            move |_| r.next_u64()
        }).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::new(1);
        for _ in 0..10_000 {
            let v = r.gen_range_u64(10, 20);
            assert!((10..20).contains(&v));
            let f = r.gen_range_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_reaches_both_halves() {
        let mut r = Rng::new(2);
        let mut lo = 0;
        let mut hi = 0;
        for _ in 0..1000 {
            if r.gen_range_u64(0, 100) < 50 {
                lo += 1;
            } else {
                hi += 1;
            }
        }
        assert!(lo > 300 && hi > 300, "lo {lo} hi {hi}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Rng::new(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }
}
