//! Word and address primitives.
//!
//! The heap is word-addressed internally: every field slot, header word and
//! metadata word is exactly 8 B, matching HotSpot's 8 B field alignment that
//! the Cereal layout bitmap relies on ("one bit of the layout bitmap
//! corresponds to an 8 B in the heap", paper §IV-A).

use std::fmt;

/// Size of one heap word in bytes. All object fields are word-sized.
pub const WORD_BYTES: u64 = 8;

/// An absolute byte address in the simulated address space.
///
/// `Addr(0)` is the null reference. Object addresses are always
/// word-aligned; the constructors of [`crate::Heap`] guarantee this.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The null reference.
    pub const NULL: Addr = Addr(0);

    /// Returns `true` for the null reference.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Byte address as a raw integer.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// The address `n` words past `self`.
    ///
    /// # Panics
    /// Panics on address-space overflow (debug builds).
    #[inline]
    pub fn add_words(self, n: u64) -> Addr {
        Addr(self.0 + n * WORD_BYTES)
    }

    /// The address `n` bytes past `self`.
    #[inline]
    pub fn add_bytes(self, n: u64) -> Addr {
        Addr(self.0 + n)
    }

    /// Whole words between `self` and an earlier address `base`.
    ///
    /// # Panics
    /// Panics if `base > self` or the distance is not word-aligned.
    #[inline]
    pub fn words_since(self, base: Addr) -> u64 {
        let delta = self
            .0
            .checked_sub(base.0)
            .expect("words_since: base is above self");
        debug_assert_eq!(delta % WORD_BYTES, 0, "unaligned word distance");
        delta / WORD_BYTES
    }

    /// `true` when the address is 8 B aligned.
    #[inline]
    pub fn is_word_aligned(self) -> bool {
        self.0.is_multiple_of(WORD_BYTES)
    }

    /// Round up to the next multiple of `align` bytes (`align` must be a
    /// power of two).
    #[inline]
    pub fn align_up(self, align: u64) -> Addr {
        debug_assert!(align.is_power_of_two());
        Addr((self.0 + align - 1) & !(align - 1))
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "Addr(null)")
        } else {
            write!(f, "Addr({:#x})", self.0)
        }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_null() {
        assert!(Addr::NULL.is_null());
        assert!(!Addr(8).is_null());
        assert_eq!(Addr::default(), Addr::NULL);
    }

    #[test]
    fn word_arithmetic() {
        let a = Addr(0x1000);
        assert_eq!(a.add_words(3), Addr(0x1018));
        assert_eq!(a.add_bytes(4), Addr(0x1004));
        assert_eq!(a.add_words(3).words_since(a), 3);
    }

    #[test]
    fn alignment() {
        assert!(Addr(16).is_word_aligned());
        assert!(!Addr(12).is_word_aligned());
        assert_eq!(Addr(13).align_up(8), Addr(16));
        assert_eq!(Addr(16).align_up(8), Addr(16));
        assert_eq!(Addr(1).align_up(64), Addr(64));
    }

    #[test]
    #[should_panic(expected = "base is above self")]
    fn words_since_underflow_panics() {
        let _ = Addr(0x10).words_since(Addr(0x20));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", Addr(0x20)), "0x20");
        assert_eq!(format!("{:?}", Addr::NULL), "Addr(null)");
        assert_eq!(format!("{:?}", Addr(0x40)), "Addr(0x40)");
    }
}
