//! The common serializer interface.
//!
//! All baselines (and the Cereal functional model in the `cereal` crate)
//! implement [`Serializer`]: serialize an object graph rooted at an
//! address into bytes, and reconstruct it into a destination heap. Both
//! directions narrate their work into a [`TraceSink`](crate::TraceSink)
//! for the timing models.

use crate::trace::TraceSink;
use sdheap::{Addr, Heap, HeapError, KlassRegistry};
use std::fmt;

/// Errors shared by all serializer implementations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SerError {
    /// The stream referenced a class not present in the registry.
    UnknownClass(String),
    /// The stream referenced a class id not present in the registry.
    UnknownClassId(u32),
    /// Malformed input stream.
    Malformed(&'static str),
    /// Destination heap exhausted during reconstruction.
    Heap(HeapError),
    /// The serializer cannot handle this graph (e.g. Cereal's shared-object
    /// fallback when another unit holds the header reservation).
    Unsupported(&'static str),
}

impl fmt::Display for SerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SerError::UnknownClass(name) => write!(f, "unknown class {name:?}"),
            SerError::UnknownClassId(id) => write!(f, "unknown class id {id}"),
            SerError::Malformed(what) => write!(f, "malformed stream: {what}"),
            SerError::Heap(e) => write!(f, "heap error: {e}"),
            SerError::Unsupported(what) => write!(f, "unsupported: {what}"),
        }
    }
}

impl std::error::Error for SerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SerError::Heap(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HeapError> for SerError {
    fn from(e: HeapError) -> Self {
        SerError::Heap(e)
    }
}

/// A functional serializer with trace instrumentation.
pub trait Serializer {
    /// Short display name (as in the paper's figures: "Java", "Kryo", …).
    fn name(&self) -> &str;

    /// Serializes the graph rooted at `root` into bytes.
    ///
    /// Takes `&mut Heap` because some implementations (Cereal) record
    /// visited-state in object headers; software baselines leave the heap
    /// untouched.
    ///
    /// # Errors
    /// Implementation-specific [`SerError`]s, e.g. unregistered classes.
    fn serialize(
        &self,
        heap: &mut Heap,
        reg: &KlassRegistry,
        root: Addr,
        sink: &mut dyn TraceSink,
    ) -> Result<Vec<u8>, SerError>;

    /// Serializes the graph rooted at `root` into a caller-owned scratch
    /// buffer, clearing it first, and returns the encoded length.
    ///
    /// Benchmark loops that serialize thousands of times reuse one
    /// allocation across calls. The default delegates to
    /// [`Serializer::serialize`]; implementations that build their output
    /// incrementally override this to write into `out` directly.
    ///
    /// # Errors
    /// Same as [`Serializer::serialize`].
    fn serialize_into(
        &self,
        heap: &mut Heap,
        reg: &KlassRegistry,
        root: Addr,
        sink: &mut dyn TraceSink,
        out: &mut Vec<u8>,
    ) -> Result<usize, SerError> {
        *out = self.serialize(heap, reg, root, sink)?;
        Ok(out.len())
    }

    /// Reconstructs a graph from `bytes` into `dst`, returning the root
    /// address.
    ///
    /// # Errors
    /// [`SerError`] on malformed streams, unknown classes, or heap
    /// exhaustion.
    fn deserialize(
        &self,
        bytes: &[u8],
        reg: &KlassRegistry,
        dst: &mut Heap,
        sink: &mut dyn TraceSink,
    ) -> Result<Addr, SerError>;

    /// Whether reconstructed objects keep their original identity hashes
    /// (header-copying serializers do; re-allocating ones don't). Tests use
    /// this to pick the right isomorphism mode.
    fn preserves_identity_hash(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        assert!(SerError::UnknownClass("Foo".into()).to_string().contains("Foo"));
        assert!(SerError::UnknownClassId(7).to_string().contains('7'));
        assert!(SerError::Malformed("bad tag").to_string().contains("bad tag"));
        assert!(SerError::Unsupported("x").to_string().contains("unsupported"));
        let heap_err: SerError = HeapError::OutOfMemory {
            requested_words: 1,
            available_words: 0,
        }
        .into();
        assert!(heap_err.to_string().contains("heap error"));
        use std::error::Error;
        assert!(heap_err.source().is_some());
    }
}
