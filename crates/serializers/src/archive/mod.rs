//! The zero-copy "Archive" backend (rkyv-style, ROADMAP item 1).
//!
//! Every other backend in this repository *reconstructs* objects on
//! deserialize: bytes in, a fresh heap out. The Cereal paper attacks the
//! cost of that reconstruction with a hardware DU; the rkyv line of work
//! attacks it from the format side instead — lay the serialized image
//! out so that deserialization is **pointer validation plus in-place
//! access**, with no heap rebuild at all. This module is that software
//! rival:
//!
//! * **Wire format** — one contiguous image of raw object records in
//!   depth-first reachability order. Each record is the object's words
//!   with three rewrites: the klass pointer becomes the integer klass
//!   id, the runtime-private extension word becomes zero, and every
//!   reference becomes a *relative byte offset* of its target within the
//!   image (`0` = null, else `offset + 1`). A 16-byte header carries a
//!   magic, a format version, the image size and the record count.
//! * **Serialize** — a single layout pass driven by the compiled
//!   [`crate::plan`] machinery: the reachability walk assigns offsets,
//!   then each record streams out through its klass's pre-compiled field
//!   program (no per-object `fields()` re-interpretation).
//! * **Deserialize** — [`ArchiveView::validate`] checks the buffer
//!   *once* (bounds, 8-byte alignment, strictly-advancing record walk,
//!   klass tags, array lengths, and that every encoded offset lands on a
//!   validated record start) and then serves field reads and graph
//!   traversal directly over the wire bytes. No copy, no allocation, no
//!   reference rebasing: the validation cost is proportional to the
//!   *structure* (records + references), not the payload, which is why
//!   the archive wins biggest on dense value data.
//!
//! [`Archive`] also implements the ordinary [`Serializer`] contract —
//! its `deserialize` validates and then materializes a heap, so it slots
//! into every reconstruction-shaped consumer (block-store reloads, the
//! cross-serializer isomorphism suites) — but the shuffle reducers and
//! the cached-RDD job fold straight off the validated view.
//!
//! Corruption never panics and never grants access: every mutation of a
//! valid archive surfaces as a typed [`ArchiveError`] (seeded
//! property-tested), which composes beneath the CRC frame the engines
//! add on the wire.

use crate::api::{SerError, Serializer};
use crate::plan::{plans_for, Step};
use crate::trace::{Op, OpBuf, TraceSink, IN_STREAM_BASE, OUT_STREAM_BASE};
use sdheap::{
    reachable, Addr, ExtWord, Heap, KlassId, KlassRegistry, Reachable, HEADER_WORDS, KLASS_OFFSET,
};
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// Archive image magic (first header bytes).
pub const MAGIC: [u8; 4] = *b"ARCV";
/// Wire-format version — golden tests pin the layout per version.
pub const VERSION: u32 = 1;
/// Header bytes ahead of the record image: magic, version, image bytes,
/// record count (all little-endian `u32`-sized fields).
pub const HEADER_BYTES: usize = 16;

/// Byte offset of one array-length word past the object header.
const LEN_WORD: usize = HEADER_WORDS;

/// Typed validation failures. Every way untrusted bytes can be wrong
/// maps to one variant; [`ArchiveView::validate`] never panics and never
/// returns a view over a buffer that failed any check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArchiveError {
    /// Fewer bytes than the fixed header.
    TruncatedHeader,
    /// The magic bytes are not [`MAGIC`].
    BadMagic,
    /// Unknown format version.
    BadVersion(u32),
    /// Header-declared image size disagrees with the buffer.
    ImageSizeMismatch {
        /// Bytes the header declared.
        declared: u64,
        /// Bytes actually present past the header.
        actual: u64,
    },
    /// The image size is not a multiple of the 8-byte word.
    Unaligned,
    /// A record's klass tag names no registered klass.
    UnknownClassId {
        /// Image offset of the record.
        offset: u32,
        /// The tag found on the wire.
        id: u64,
    },
    /// An array record's length word overruns the image.
    ArrayOverrun {
        /// Image offset of the record.
        offset: u32,
        /// The length found on the wire.
        len: u64,
    },
    /// A record (header, or sized body) overruns the image.
    RecordOverrun {
        /// Image offset of the record.
        offset: u32,
    },
    /// The record walk ended on a different count than the header.
    CountMismatch {
        /// Records the header declared.
        declared: u32,
        /// Records the walk found.
        walked: u32,
    },
    /// An encoded reference does not land on a validated record start.
    DanglingRef {
        /// Image offset of the record holding the reference.
        offset: u32,
        /// The (decoded) target offset found on the wire.
        target: u64,
    },
}

impl fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchiveError::TruncatedHeader => write!(f, "truncated archive header"),
            ArchiveError::BadMagic => write!(f, "bad archive magic"),
            ArchiveError::BadVersion(v) => write!(f, "unknown archive version {v}"),
            ArchiveError::ImageSizeMismatch { declared, actual } => {
                write!(f, "image size mismatch: declared {declared}, actual {actual}")
            }
            ArchiveError::Unaligned => write!(f, "image size not word-aligned"),
            ArchiveError::UnknownClassId { offset, id } => {
                write!(f, "unknown class id {id} at offset {offset}")
            }
            ArchiveError::ArrayOverrun { offset, len } => {
                write!(f, "array length {len} at offset {offset} overruns image")
            }
            ArchiveError::RecordOverrun { offset } => {
                write!(f, "record at offset {offset} overruns image")
            }
            ArchiveError::CountMismatch { declared, walked } => {
                write!(f, "record count mismatch: declared {declared}, walked {walked}")
            }
            ArchiveError::DanglingRef { offset, target } => {
                write!(f, "dangling reference at offset {offset} to {target}")
            }
        }
    }
}

impl std::error::Error for ArchiveError {}

impl From<ArchiveError> for SerError {
    fn from(e: ArchiveError) -> Self {
        match e {
            ArchiveError::UnknownClassId { id, .. } if u32::try_from(id).is_ok() => {
                SerError::UnknownClassId(id as u32)
            }
            ArchiveError::UnknownClassId { .. } => SerError::Malformed("class id exceeds u32"),
            ArchiveError::TruncatedHeader => SerError::Malformed("truncated archive header"),
            ArchiveError::BadMagic => SerError::Malformed("bad archive magic"),
            ArchiveError::BadVersion(_) => SerError::Malformed("unknown archive version"),
            ArchiveError::ImageSizeMismatch { .. } => SerError::Malformed("image size mismatch"),
            ArchiveError::Unaligned => SerError::Malformed("image size not word-aligned"),
            ArchiveError::ArrayOverrun { .. } => SerError::Malformed("array length exceeds image"),
            ArchiveError::RecordOverrun { .. } => SerError::Malformed("record overruns image"),
            ArchiveError::CountMismatch { .. } => SerError::Malformed("record count mismatch"),
            ArchiveError::DanglingRef { .. } => SerError::Malformed("dangling relative reference"),
        }
    }
}

/// Encodes a reference word: 0 = null, otherwise image byte offset + 1.
#[inline]
fn encode_rel(rel: Option<u64>) -> u64 {
    match rel {
        None => 0,
        Some(r) => r + 1,
    }
}

#[inline]
fn decode_rel(word: u64) -> Option<u64> {
    if word == 0 {
        None
    } else {
        Some(word - 1)
    }
}

/// A validated, directly addressable archive image.
///
/// Construction goes through [`ArchiveView::validate`] only; every
/// accessor afterwards is a plain slice read over the wire bytes — no
/// heap, no copies. Objects are named by their image byte offset (the
/// value [`ArchiveView::root`] and the `*_ref` accessors hand out);
/// passing an offset that validation did not produce is a programming
/// error (debug-asserted), not a reachable state for untrusted input.
pub struct ArchiveView<'a> {
    /// The record image (header stripped).
    image: &'a [u8],
    // (Debug is implemented by hand below: the image can be megabytes.)
    /// Validated record start offsets, ascending.
    starts: Vec<u32>,
    /// Klass of each record, aligned with `starts`.
    ids: Vec<KlassId>,
    /// Compiled plans of the registry the image was validated against.
    plans: Rc<crate::plan::PlanCache>,
}

impl fmt::Debug for ArchiveView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ArchiveView")
            .field("image_bytes", &self.image.len())
            .field("records", &self.starts.len())
            .finish()
    }
}

impl<'a> ArchiveView<'a> {
    /// Validates `bytes` as an archive over `reg` and returns the
    /// zero-copy view. One pass walks the records (bounds, alignment,
    /// klass tags, array lengths; the cursor strictly advances and must
    /// land exactly on the image end — the walk itself is the
    /// acyclicity proof for the record layout), then every reference
    /// slot is checked to encode null or a validated record start.
    ///
    /// The work is narrated into `sink` like any deserializer's: this
    /// *is* Archive's deserialization cost, and it scales with records
    /// and references, not payload bytes.
    ///
    /// # Errors
    /// A typed [`ArchiveError`] for every possible defect; never panics
    /// on arbitrary input.
    pub fn validate(
        bytes: &'a [u8],
        reg: &KlassRegistry,
        sink: &mut dyn TraceSink,
    ) -> Result<ArchiveView<'a>, ArchiveError> {
        let mut buf = OpBuf::for_sink(sink);
        buf.load(IN_STREAM_BASE, HEADER_BYTES as u32);
        buf.push(Op::Alu(2));
        let r = Self::validate_inner(bytes, reg, &mut buf);
        buf.flush(sink);
        r
    }

    fn validate_inner(
        bytes: &'a [u8],
        reg: &KlassRegistry,
        buf: &mut OpBuf,
    ) -> Result<ArchiveView<'a>, ArchiveError> {
        if bytes.len() < HEADER_BYTES {
            return Err(ArchiveError::TruncatedHeader);
        }
        if bytes[0..4] != MAGIC {
            return Err(ArchiveError::BadMagic);
        }
        let word32 = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4"));
        let version = word32(4);
        if version != VERSION {
            return Err(ArchiveError::BadVersion(version));
        }
        let total = u64::from(word32(8));
        let declared_count = word32(12);
        let image = &bytes[HEADER_BYTES..];
        if image.len() as u64 != total {
            return Err(ArchiveError::ImageSizeMismatch {
                declared: total,
                actual: image.len() as u64,
            });
        }
        if !total.is_multiple_of(8) {
            return Err(ArchiveError::Unaligned);
        }

        let word = |off: u64| {
            u64::from_le_bytes(image[off as usize..off as usize + 8].try_into().expect("8"))
        };
        let plans = plans_for(reg);

        // Pass 1 — the record walk. The cursor advances by each record's
        // self-declared size; every step is bounds-checked before any
        // size-dependent read, so the walk either lands exactly on the
        // image end or fails typed. Unlike Skyway's adjustment walk this
        // only touches the klass tag (and array length) of each record —
        // the payload words stay untouched.
        let mut starts: Vec<u32> = Vec::with_capacity(declared_count as usize);
        let mut ids: Vec<KlassId> = Vec::with_capacity(declared_count as usize);
        let mut cursor = 0u64;
        while cursor < total {
            let offset = cursor as u32;
            if total - cursor < (HEADER_WORDS as u64) * 8 {
                return Err(ArchiveError::RecordOverrun { offset });
            }
            // The next record's position depends on this record's size,
            // but the cursor only ever moves forward through one packed
            // buffer — a streaming scan, narrated like the byte-stream
            // parsers' sequential reads (plain loads), not like heap
            // pointer chasing: the paper's §III chain is per random
            // *address*; a monotone stride is prefetch-covered.
            buf.load(IN_STREAM_BASE + HEADER_BYTES as u64 + cursor + 8 * KLASS_OFFSET as u64, 8);
            buf.push(Op::Alu(2));
            let raw_id = word(cursor + 8 * KLASS_OFFSET as u64);
            if raw_id >= reg.len() as u64 {
                return Err(ArchiveError::UnknownClassId { offset, id: raw_id });
            }
            let id = KlassId(raw_id as u32);
            let plan = plans.plan(id);
            let size_words = if plan.is_array() {
                if total - cursor < (HEADER_WORDS as u64 + 1) * 8 {
                    return Err(ArchiveError::RecordOverrun { offset });
                }
                buf.load(IN_STREAM_BASE + HEADER_BYTES as u64 + cursor + 8 * LEN_WORD as u64, 8);
                buf.push(Op::Alu(1));
                let len = word(cursor + 8 * LEN_WORD as u64);
                let elem_words_left = (total - cursor) / 8 - (HEADER_WORDS as u64 + 1);
                if len > elem_words_left {
                    return Err(ArchiveError::ArrayOverrun { offset, len });
                }
                HEADER_WORDS as u64 + 1 + len
            } else {
                u64::from(plan.instance_bytes) / 8
            };
            if size_words * 8 > total - cursor {
                return Err(ArchiveError::RecordOverrun { offset });
            }
            starts.push(offset);
            ids.push(id);
            cursor += size_words * 8;
        }
        if starts.len() as u64 != u64::from(declared_count) {
            return Err(ArchiveError::CountMismatch {
                declared: declared_count,
                walked: starts.len() as u32,
            });
        }

        // Pass 2 — reference validation: every encoded offset must be
        // null or an exact member of the validated start set, so every
        // access the view will ever serve is in bounds and on a record
        // boundary before any access is granted.
        for (i, &off) in starts.iter().enumerate() {
            let plan = plans.plan(ids[i]);
            let mut check = |slot_word: u64| -> Result<(), ArchiveError> {
                buf.load(IN_STREAM_BASE + HEADER_BYTES as u64 + slot_word * 8, 8);
                buf.push(Op::Alu(2));
                buf.push(Op::Branch);
                let enc = word(slot_word * 8);
                if let Some(rel) = decode_rel(enc) {
                    let aligned = rel.is_multiple_of(8) && rel <= u64::from(u32::MAX);
                    if !aligned || starts.binary_search(&(rel as u32)).is_err() {
                        return Err(ArchiveError::DanglingRef { offset: off, target: rel });
                    }
                }
                Ok(())
            };
            let base_word = u64::from(off) / 8;
            match plan.array_elem {
                Some(elem) if elem.is_ref() => {
                    let len = word(u64::from(off) + 8 * LEN_WORD as u64);
                    for j in 0..len {
                        check(base_word + HEADER_WORDS as u64 + 1 + j)?;
                    }
                }
                Some(_) => {}
                None => {
                    for &slot in &plan.ref_slots {
                        check(base_word + HEADER_WORDS as u64 + u64::from(slot))?;
                    }
                }
            }
        }

        Ok(ArchiveView { image, starts, ids, plans })
    }

    /// Number of validated records.
    pub fn object_count(&self) -> u32 {
        self.starts.len() as u32
    }

    /// The root record's offset — the serialized graph's root is always
    /// the first record. `None` for the empty (null-root) archive.
    pub fn root(&self) -> Option<u32> {
        self.starts.first().copied()
    }

    /// Validated record start offsets, ascending.
    pub fn starts(&self) -> &[u32] {
        &self.starts
    }

    /// Raw image word at byte offset `off`.
    #[inline]
    fn word(&self, off: u64) -> u64 {
        u64::from_le_bytes(self.image[off as usize..off as usize + 8].try_into().expect("8"))
    }

    #[inline]
    fn debug_check_obj(&self, obj: u32) {
        debug_assert!(
            self.starts.binary_search(&obj).is_ok(),
            "offset {obj} is not a validated record start"
        );
    }

    /// The klass of the record at `obj`.
    pub fn klass_id(&self, obj: u32) -> KlassId {
        self.debug_check_obj(obj);
        KlassId(self.word(u64::from(obj) + 8 * KLASS_OFFSET as u64) as u32)
    }

    /// The record's mark word (identity hash travels with the archive).
    pub fn mark_word(&self, obj: u32) -> u64 {
        self.debug_check_obj(obj);
        self.word(u64::from(obj))
    }

    /// Length of the array record at `obj`.
    pub fn array_len(&self, obj: u32) -> usize {
        self.debug_check_obj(obj);
        self.word(u64::from(obj) + 8 * LEN_WORD as u64) as usize
    }

    /// Raw element word `j` of the array record at `obj`.
    pub fn array_word(&self, obj: u32, j: usize) -> u64 {
        debug_assert!(j < self.array_len(obj));
        self.word(u64::from(obj) + 8 * (HEADER_WORDS + 1 + j) as u64)
    }

    /// Element `j` of a reference array, decoded to the target record's
    /// offset (`None` = null).
    pub fn array_elem_ref(&self, obj: u32, j: usize) -> Option<u32> {
        decode_rel(self.array_word(obj, j)).map(|rel| rel as u32)
    }

    /// Raw field word `idx` (declaration order) of the instance record
    /// at `obj` — primitive bits exactly as the source heap held them.
    pub fn field(&self, obj: u32, idx: usize) -> u64 {
        self.debug_check_obj(obj);
        self.word(u64::from(obj) + 8 * (HEADER_WORDS + idx) as u64)
    }

    /// Reference field `idx`, decoded to the target record's offset
    /// (`None` = null).
    pub fn field_ref(&self, obj: u32, idx: usize) -> Option<u32> {
        decode_rel(self.field(obj, idx)).map(|rel| rel as u32)
    }

    /// A narrated full-image data fold: the wrapping sum of every data
    /// word (primitive fields, array lengths, value-array elements)
    /// across all records, reading straight off the wire. This is the
    /// "consume everything" stand-in the crossover study uses as
    /// Archive's post-validate access cost; the mirror walk over a
    /// reconstructed heap produces the bit-identical sum.
    pub fn fold_words(&self, sink: &mut dyn TraceSink) -> u64 {
        let mut buf = OpBuf::for_sink(sink);
        let mut sum = 0u64;
        let stream = |off: u64| IN_STREAM_BASE + HEADER_BYTES as u64 + off;
        for (i, &off) in self.starts.iter().enumerate() {
            let plan = self.plans.plan(self.ids[i]);
            let base = u64::from(off);
            match plan.array_elem {
                Some(elem) => {
                    buf.load(stream(base + 8 * LEN_WORD as u64), 8);
                    let len = self.word(base + 8 * LEN_WORD as u64);
                    sum = sum.wrapping_add(len);
                    if !elem.is_ref() {
                        for j in 0..len {
                            let at = base + 8 * (HEADER_WORDS as u64 + 1 + j);
                            buf.load(stream(at), 8);
                            buf.push(Op::Alu(1));
                            sum = sum.wrapping_add(self.word(at));
                        }
                    }
                }
                None => {
                    for p in &plan.prims {
                        let at = base + 8 * (HEADER_WORDS as u64 + u64::from(p.idx));
                        buf.load(stream(at), 8);
                        buf.push(Op::Alu(1));
                        sum = sum.wrapping_add(self.word(at));
                    }
                }
            }
            buf.maybe_flush(sink);
        }
        buf.flush(sink);
        sum
    }
}

/// The mirror of [`ArchiveView::fold_words`] over a live heap: the same
/// data words in the same (depth-first reachability) order, so the sums
/// are bit-identical — the crossover study's equivalence anchor.
pub fn fold_words_heap(heap: &Heap, reg: &KlassRegistry, root: Addr) -> u64 {
    let mut sum = 0u64;
    let plans = plans_for(reg);
    for addr in reachable(heap, reg, root, Reachable::DepthFirst) {
        let id = heap.object(reg, addr).klass_id();
        let plan = plans.plan(id);
        match plan.array_elem {
            Some(elem) => {
                let len = heap.array_len(addr);
                sum = sum.wrapping_add(len as u64);
                if !elem.is_ref() {
                    for j in 0..len {
                        sum = sum.wrapping_add(heap.array_elem(addr, j));
                    }
                }
            }
            None => {
                for p in &plan.prims {
                    sum = sum.wrapping_add(heap.field(addr, p.idx as usize));
                }
            }
        }
    }
    sum
}

/// The zero-copy archive serializer.
#[derive(Clone, Copy, Debug, Default)]
pub struct Archive;

impl Archive {
    /// A new instance.
    pub fn new() -> Self {
        Archive
    }
}

impl Serializer for Archive {
    fn name(&self) -> &str {
        "Archive"
    }

    fn serialize(
        &self,
        heap: &mut Heap,
        reg: &KlassRegistry,
        root: Addr,
        sink: &mut dyn TraceSink,
    ) -> Result<Vec<u8>, SerError> {
        let plans = plans_for(reg);
        let mut buf = OpBuf::for_sink(sink);

        // Layout pass: the reachability walk assigns each record its
        // image offset; the compiled plan supplies every size without
        // re-walking `fields()`.
        let order = reachable(heap, reg, root, Reachable::DepthFirst);
        let mut rel_of: HashMap<Addr, u64> = HashMap::with_capacity(order.len());
        let mut record: Vec<(KlassId, usize)> = Vec::with_capacity(order.len());
        let mut offset = 0u64;
        for &addr in &order {
            buf.push(Op::HashLookup);
            buf.load_word_dep(addr.get());
            buf.load_word_dep(addr.add_words(KLASS_OFFSET as u64).get());
            let id = heap.object(reg, addr).klass_id();
            let plan = plans.plan(id);
            let words = if plan.is_array() {
                HEADER_WORDS + 1 + heap.array_len(addr)
            } else {
                u64::from(plan.instance_bytes) as usize / 8
            };
            rel_of.insert(addr, offset);
            record.push((id, words));
            offset += (words * 8) as u64;
        }
        let total = u32::try_from(offset)
            .map_err(|_| SerError::Unsupported("archive image exceeds 4 GiB"))?;

        let mut out = Vec::with_capacity(HEADER_BYTES + total as usize);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&total.to_le_bytes());
        out.extend_from_slice(&(order.len() as u32).to_le_bytes());
        buf.store(OUT_STREAM_BASE, HEADER_BYTES as u32);

        // Emission pass: each record streams out through its compiled
        // field program. A closure writes one wire word and narrates it.
        let put = |out: &mut Vec<u8>, buf: &mut OpBuf, word: u64| {
            buf.store(OUT_STREAM_BASE + out.len() as u64, 8);
            out.extend_from_slice(&word.to_le_bytes());
        };
        let encode_ref = |buf: &mut OpBuf, word: u64| -> u64 {
            buf.push(Op::HashLookup);
            buf.push(Op::Alu(1));
            if word == 0 {
                encode_rel(None)
            } else {
                encode_rel(Some(*rel_of.get(&Addr(word)).expect("reachable target")))
            }
        };
        for (&addr, &(id, words)) in order.iter().zip(&record) {
            let plan = plans.plan(id);
            // Header: mark travels, klass pointer → id, ext stays home.
            buf.load(addr.get(), 8);
            put(&mut out, &mut buf, heap.load(addr));
            buf.push(Op::HashLookup);
            put(&mut out, &mut buf, u64::from(id.get()));
            put(&mut out, &mut buf, 0);
            match plan.array_elem {
                Some(elem) => {
                    let len_addr = addr.add_words(LEN_WORD as u64);
                    buf.load(len_addr.get(), 8);
                    put(&mut out, &mut buf, heap.load(len_addr));
                    let is_ref = elem.is_ref();
                    for w in HEADER_WORDS + 1..words {
                        let at = addr.add_words(w as u64);
                        buf.load(at.get(), 8);
                        let word = heap.load(at);
                        let wire = if is_ref { encode_ref(&mut buf, word) } else { word };
                        put(&mut out, &mut buf, wire);
                        buf.maybe_flush(sink);
                    }
                }
                None => {
                    for step in &plan.steps {
                        match *step {
                            Step::Run { prim_start, prim_len, .. } => {
                                for p in
                                    &plan.prims[prim_start as usize..(prim_start + prim_len) as usize]
                                {
                                    let at = addr.add_words((HEADER_WORDS as u32 + p.idx) as u64);
                                    buf.load(at.get(), 8);
                                    put(&mut out, &mut buf, heap.load(at));
                                }
                            }
                            Step::Ref { idx, .. } => {
                                let at = addr.add_words((HEADER_WORDS as u32 + idx) as u64);
                                buf.load(at.get(), 8);
                                let wire = encode_ref(&mut buf, heap.load(at));
                                put(&mut out, &mut buf, wire);
                            }
                        }
                    }
                }
            }
            buf.maybe_flush(sink);
        }
        buf.flush(sink);
        Ok(out)
    }

    /// Reconstructing deserialization for consumers that need a live
    /// heap (isomorphism suites, block-store reloads): validate, then
    /// materialize. The zero-copy consumers skip this entirely and read
    /// through [`ArchiveView`].
    fn deserialize(
        &self,
        bytes: &[u8],
        reg: &KlassRegistry,
        dst: &mut Heap,
        sink: &mut dyn TraceSink,
    ) -> Result<Addr, SerError> {
        let view = ArchiveView::validate(bytes, reg, sink)?;
        let mut buf = OpBuf::for_sink(sink);
        let total = view.image.len();
        if view.object_count() == 0 {
            return Ok(Addr::NULL);
        }
        let base = dst.alloc_raw(total / 8)?;

        // Bulk copy, then fix up headers and references record by
        // record — sizes and targets are already proven by validation,
        // so nothing here can fail.
        for (i, chunk) in view.image.chunks_exact(8).enumerate() {
            buf.load(IN_STREAM_BASE + HEADER_BYTES as u64 + i as u64 * 8, 8);
            buf.store(base.add_words(i as u64).get(), 8);
            dst.store(base.add_words(i as u64), u64::from_le_bytes(chunk.try_into().expect("8")));
        }
        let starts: Vec<u32> = view.starts.clone();
        let ids: Vec<KlassId> = view.ids.clone();
        for (i, &off) in starts.iter().enumerate() {
            let at = base.add_bytes(u64::from(off));
            buf.store(at.add_words(KLASS_OFFSET as u64).get(), 8);
            dst.store(at.add_words(KLASS_OFFSET as u64), reg.meta_addr(ids[i]).get());
            dst.set_ext_word(at, ExtWord::new());
            let plan = view.plans.plan(ids[i]);
            let ref_words: Vec<u64> = match plan.array_elem {
                Some(elem) if elem.is_ref() => (0..dst.array_len(at) as u64)
                    .map(|j| HEADER_WORDS as u64 + 1 + j)
                    .collect(),
                Some(_) => Vec::new(),
                None => plan
                    .ref_slots
                    .iter()
                    .map(|&slot| HEADER_WORDS as u64 + u64::from(slot))
                    .collect(),
            };
            for w in ref_words {
                let slot = at.add_words(w);
                buf.load(slot.get(), 8);
                let abs = match decode_rel(dst.load(slot)) {
                    None => 0,
                    Some(rel) => base.add_bytes(rel).get(),
                };
                buf.push(Op::Alu(1));
                buf.store(slot.get(), 8);
                dst.store(slot, abs);
            }
            buf.maybe_flush(sink);
        }
        buf.flush(sink);
        dst.note_reconstructed_objects(u64::from(view.object_count()));
        Ok(base)
    }

    fn preserves_identity_hash(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kryo::Kryo;
    use crate::trace::{CountingSink, NullSink};
    use sdheap::builder::Init;
    use sdheap::{isomorphic, FieldKind, GraphBuilder, ValueType};

    fn diamond() -> (Heap, KlassRegistry, Addr) {
        let mut b = GraphBuilder::new(1 << 16);
        let k = b.klass(
            "N",
            vec![FieldKind::Value(ValueType::Long), FieldKind::Ref, FieldKind::Ref],
        );
        let c = b.object(k, &[Init::Val(3), Init::Null, Init::Null]).unwrap();
        let x = b.object(k, &[Init::Val(2), Init::Ref(c), Init::Null]).unwrap();
        let a = b.object(k, &[Init::Val(1), Init::Ref(x), Init::Ref(c)]).unwrap();
        let (heap, reg) = b.finish();
        (heap, reg, a)
    }

    fn graph_with_arrays() -> (Heap, KlassRegistry, Addr) {
        let mut b = GraphBuilder::new(1 << 18);
        let n = b.klass("Node", vec![FieldKind::Ref]);
        let arr = b.array_klass("Object[]", FieldKind::Ref);
        let d = b.array_klass("double[]", FieldKind::Value(ValueType::Double));
        let data = b
            .value_array(d, &[f64::to_bits(0.5), f64::to_bits(2.5), f64::to_bits(-1.0)])
            .unwrap();
        let x = b.object(n, &[Init::Null]).unwrap();
        let container = b.ref_array(arr, &[x, data, Addr::NULL, x]).unwrap();
        b.link(x, 0, container); // cycle through the array
        let (heap, reg) = b.finish();
        (heap, reg, container)
    }

    fn roundtrip(heap: &mut Heap, reg: &KlassRegistry, root: Addr) -> (Heap, Addr) {
        let ser = Archive::new();
        let bytes = ser.serialize(heap, reg, root, &mut NullSink).unwrap();
        let mut dst = Heap::with_base(Addr(0x2_0000_0000), heap.capacity_bytes());
        let new_root = ser.deserialize(&bytes, reg, &mut dst, &mut NullSink).unwrap();
        (dst, new_root)
    }

    #[test]
    fn reconstructing_roundtrip_is_isomorphic_with_hashes() {
        let (mut heap, reg, a) = diamond();
        let (dst, root) = roundtrip(&mut heap, &reg, a);
        assert!(isomorphic(&heap, &reg, a, &dst, root));
    }

    #[test]
    fn roundtrips_arrays_and_cycles() {
        let (mut heap, reg, root) = graph_with_arrays();
        let (dst, new_root) = roundtrip(&mut heap, &reg, root);
        assert!(isomorphic(&heap, &reg, root, &dst, new_root));
    }

    #[test]
    fn null_root_archives_to_empty_image() {
        let mut b = GraphBuilder::new(1 << 12);
        b.klass("N", vec![FieldKind::Value(ValueType::Long)]);
        let (mut heap, reg) = b.finish();
        let bytes = Archive::new().serialize(&mut heap, &reg, Addr::NULL, &mut NullSink).unwrap();
        assert_eq!(bytes.len(), HEADER_BYTES);
        let view = ArchiveView::validate(&bytes, &reg, &mut NullSink).unwrap();
        assert_eq!(view.object_count(), 0);
        assert!(view.root().is_none());
        let mut dst = Heap::new(1 << 12);
        let root = Archive::new().deserialize(&bytes, &reg, &mut dst, &mut NullSink).unwrap();
        assert!(root.is_null());
    }

    #[test]
    fn view_reads_match_the_source_heap() {
        let (mut heap, reg, root) = graph_with_arrays();
        let bytes = Archive::new().serialize(&mut heap, &reg, root, &mut NullSink).unwrap();
        let view = ArchiveView::validate(&bytes, &reg, &mut NullSink).unwrap();
        let r = view.root().expect("non-empty");
        assert_eq!(view.array_len(r), 4);
        // Element 1 is the shared double[]; element 2 is null; 0 and 3
        // alias the same node.
        let data = view.array_elem_ref(r, 1).expect("non-null");
        assert_eq!(view.array_len(data), 3);
        assert_eq!(view.array_word(data, 0), f64::to_bits(0.5));
        assert_eq!(view.array_word(data, 2), f64::to_bits(-1.0));
        assert!(view.array_elem_ref(r, 2).is_none());
        assert_eq!(view.array_elem_ref(r, 0), view.array_elem_ref(r, 3));
        // The cycle: node's ref field points back at the root record.
        let node = view.array_elem_ref(r, 0).expect("non-null");
        assert_eq!(view.field_ref(node, 0), Some(r));
        // Identity hash travels on the wire.
        assert_eq!(view.mark_word(r), heap.load(root));
    }

    #[test]
    fn validation_grants_access_with_zero_stores_and_allocs() {
        let (mut heap, reg, root) = graph_with_arrays();
        let bytes = Archive::new().serialize(&mut heap, &reg, root, &mut NullSink).unwrap();
        let mut counts = CountingSink::new();
        let view = ArchiveView::validate(&bytes, &reg, &mut counts).unwrap();
        assert_eq!(counts.stores, 0, "validate must not write");
        assert_eq!(counts.allocs, 0, "validate must not allocate");
        // And it is structurally cheaper than reconstruction, which
        // copies every word of the image.
        let mut de_counts = CountingSink::new();
        let mut dst = Heap::with_base(Addr(0x2_0000_0000), 1 << 18);
        Archive::new().deserialize(&bytes, &reg, &mut dst, &mut de_counts).unwrap();
        assert!(
            counts.loads < de_counts.loads && counts.load_bytes < de_counts.load_bytes,
            "validate ({} loads) must touch less than reconstruct ({} loads)",
            counts.loads,
            de_counts.loads
        );
        drop(view);
    }

    #[test]
    fn fold_words_matches_the_heap_walk() {
        for (mut heap, reg, root) in [diamond(), graph_with_arrays()] {
            let bytes = Archive::new().serialize(&mut heap, &reg, root, &mut NullSink).unwrap();
            let view = ArchiveView::validate(&bytes, &reg, &mut NullSink).unwrap();
            assert_eq!(
                view.fold_words(&mut NullSink),
                fold_words_heap(&heap, &reg, root),
                "zero-copy fold must be bit-identical to the heap walk"
            );
        }
    }

    #[test]
    fn ext_word_does_not_travel() {
        let (mut heap, reg, a) = diamond();
        heap.set_ext_word(a, ExtWord::new().with_counter(99).with_relative_addr(7));
        let (dst, root) = roundtrip(&mut heap, &reg, a);
        assert_eq!(dst.ext_word(root), ExtWord::new());
    }

    #[test]
    fn stream_is_larger_than_kryo_but_header_fixed() {
        let (mut heap, reg, a) = diamond();
        let arc = Archive::new().serialize(&mut heap, &reg, a, &mut NullSink).unwrap();
        let kryo = Kryo::new().serialize(&mut heap, &reg, a, &mut NullSink).unwrap();
        assert!(arc.len() > kryo.len(), "headers travel: {} vs {}", arc.len(), kryo.len());
        assert_eq!(&arc[0..4], &MAGIC);
        assert_eq!(arc.len(), HEADER_BYTES + 3 * (3 + 3) * 8);
    }

    #[test]
    fn corrupt_archives_fail_typed() {
        let (mut heap, reg, a) = diamond();
        let bytes = Archive::new().serialize(&mut heap, &reg, a, &mut NullSink).unwrap();
        // Baseline sanity.
        assert!(ArchiveView::validate(&bytes, &reg, &mut NullSink).is_ok());
        // Truncated header.
        assert_eq!(
            ArchiveView::validate(&bytes[..7], &reg, &mut NullSink).unwrap_err(),
            ArchiveError::TruncatedHeader
        );
        // Bad magic.
        let mut evil = bytes.clone();
        evil[0] ^= 0xff;
        assert_eq!(
            ArchiveView::validate(&evil, &reg, &mut NullSink).unwrap_err(),
            ArchiveError::BadMagic
        );
        // Bad version.
        let mut evil = bytes.clone();
        evil[4] = 9;
        assert!(matches!(
            ArchiveView::validate(&evil, &reg, &mut NullSink).unwrap_err(),
            ArchiveError::BadVersion(9)
        ));
        // Truncated image.
        assert!(matches!(
            ArchiveView::validate(&bytes[..bytes.len() - 8], &reg, &mut NullSink).unwrap_err(),
            ArchiveError::ImageSizeMismatch { .. }
        ));
        // Unknown klass tag.
        let mut evil = bytes.clone();
        let klass_at = HEADER_BYTES + 8 * KLASS_OFFSET;
        evil[klass_at..klass_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            ArchiveView::validate(&evil, &reg, &mut NullSink).unwrap_err(),
            ArchiveError::UnknownClassId { offset: 0, .. }
        ));
        // Dangling reference (first ref field of the first record).
        let mut evil = bytes.clone();
        let ref_at = HEADER_BYTES + 8 * (HEADER_WORDS + 1);
        evil[ref_at..ref_at + 8].copy_from_slice(&(12345u64).to_le_bytes());
        assert!(matches!(
            ArchiveView::validate(&evil, &reg, &mut NullSink).unwrap_err(),
            ArchiveError::DanglingRef { .. }
        ));
        // Record count lies.
        let mut evil = bytes.clone();
        evil[12..16].copy_from_slice(&7u32.to_le_bytes());
        assert!(matches!(
            ArchiveView::validate(&evil, &reg, &mut NullSink).unwrap_err(),
            ArchiveError::CountMismatch { declared: 7, walked: 3 }
        ));
        // And the Serializer-facing path surfaces the same defects as
        // SerError (the engines' typed error channel).
        let mut dst = Heap::new(1 << 16);
        let err = Archive::new()
            .deserialize(&bytes[..bytes.len() - 8], &reg, &mut dst, &mut NullSink)
            .unwrap_err();
        assert!(matches!(err, SerError::Malformed(_)));
    }

    #[test]
    fn array_length_overrun_is_rejected() {
        let (mut heap, reg, root) = graph_with_arrays();
        let bytes = Archive::new().serialize(&mut heap, &reg, root, &mut NullSink).unwrap();
        // The root record is the Object[4]; inflate its length word.
        let len_at = HEADER_BYTES + 8 * LEN_WORD;
        let mut evil = bytes.clone();
        evil[len_at..len_at + 8].copy_from_slice(&(1u64 << 40).to_le_bytes());
        assert!(matches!(
            ArchiveView::validate(&evil, &reg, &mut NullSink).unwrap_err(),
            ArchiveError::ArrayOverrun { offset: 0, .. }
        ));
    }
}
