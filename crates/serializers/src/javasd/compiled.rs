//! Compiled-plan executor for [`JavaSd`](super::JavaSd).
//!
//! Executes the flat field programs from [`crate::plan`] instead of
//! re-walking `fields()` per object: a primitive run becomes one slice
//! read from the heap plus direct big-endian byte writes, the reflective
//! narration (`ReflectCall`/`StrCompare`/`Load`/`Store` per field) is
//! pushed into an [`OpBuf`] instead of costing four virtual sink calls,
//! and all name lengths/widths come pre-resolved from the plan. The byte
//! stream and the narrated op sequence are identical to the interpretive
//! path — golden-tested in `tests/golden_plans.rs`.

use super::{prim_width, STREAM_MAGIC, STREAM_VERSION};
use super::{TC_ARRAY, TC_CLASSDESC, TC_CLASSREF, TC_NULL, TC_OBJECT, TC_REFERENCE};
use crate::api::SerError;
use crate::plan::{plans_for, Plan, PlanCache, Step};
use crate::trace::{Op, OpBuf, TraceSink, IN_STREAM_BASE, OUT_STREAM_BASE};
use sdheap::{Addr, FieldKind, Heap, KlassId, KlassRegistry, HEADER_WORDS};
use std::collections::HashMap;
use std::rc::Rc;

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

struct CSer<'a> {
    heap: &'a Heap,
    reg: &'a KlassRegistry,
    plans: Rc<PlanCache>,
    out: Vec<u8>,
    handles: HashMap<Addr, u32>,
    /// Class handles, dense by klass id (the narrated `HashLookup` op is
    /// unchanged; only the host-side container is cheaper).
    class_handles: Vec<Option<u32>>,
    next_handle: u32,
    ops: OpBuf,
}

enum SerFrame {
    Write(Addr),
    /// Resume an instance's field *program* from step `step`.
    Fields { addr: Addr, step: usize, id: KlassId },
    Elems { addr: Addr, idx: usize },
}

impl<'a> CSer<'a> {
    #[inline]
    fn out_pos(&self) -> u64 {
        OUT_STREAM_BASE + self.out.len() as u64
    }

    #[inline]
    fn put(&mut self, bytes: &[u8]) {
        self.ops.store(self.out_pos(), bytes.len() as u32);
        self.out.extend_from_slice(bytes);
    }

    #[inline]
    fn put_u8(&mut self, v: u8) {
        self.put(&[v]);
    }

    #[inline]
    fn put_u16(&mut self, v: u16) {
        self.put(&v.to_be_bytes());
    }

    #[inline]
    fn put_u32(&mut self, v: u32) {
        self.put(&v.to_be_bytes());
    }

    #[inline]
    fn put_u64(&mut self, v: u64) {
        self.put(&v.to_be_bytes());
    }

    /// Class descriptor — cold path (once per klass per stream), so it
    /// mirrors the interpretive code with buffered narration.
    fn write_class_desc(&mut self, id: KlassId) {
        self.ops.push(Op::HashLookup);
        if let Some(h) = self.class_handles[id.get() as usize] {
            self.put_u8(TC_CLASSREF);
            self.put_u32(h);
            return;
        }
        let k = self.reg.get(id);
        self.put_u8(TC_CLASSDESC);
        let name = k.name().as_bytes();
        self.ops.push(Op::Alu(name.len() as u32));
        self.put_u16(name.len() as u16);
        self.put(name);
        let suid = name
            .iter()
            .fold(0u64, |a, &b| a.wrapping_mul(31).wrapping_add(b.into()));
        self.put_u64(suid);
        self.put_u8(0x02);
        if k.is_array() {
            self.put_u16(0);
        } else {
            self.put_u16(k.num_fields() as u16);
            for f in k.fields() {
                let sig = match f.kind {
                    FieldKind::Value(vt) => vt.signature(),
                    FieldKind::Ref => 'L',
                };
                self.put_u8(sig as u8);
                let fb = f.name.as_bytes();
                self.ops.push(Op::Alu(fb.len() as u32));
                self.put_u16(fb.len() as u16);
                self.put(fb);
            }
        }
        let h = self.next_handle;
        self.next_handle += 1;
        self.class_handles[id.get() as usize] = Some(h);
    }

    fn run(&mut self, root: Addr, sink: &mut dyn TraceSink) {
        let plans = Rc::clone(&self.plans);
        let mut stack = vec![SerFrame::Write(root)];
        while let Some(frame) = stack.pop() {
            self.ops.maybe_flush(sink);
            match frame {
                SerFrame::Write(addr) => {
                    self.ops.push(Op::Call);
                    self.ops.push(Op::Branch);
                    if addr.is_null() {
                        self.put_u8(TC_NULL);
                        continue;
                    }
                    self.ops.load_word_dep(addr.get());
                    self.ops.push(Op::HashLookup);
                    if let Some(&h) = self.handles.get(&addr) {
                        self.put_u8(TC_REFERENCE);
                        self.put_u32(h);
                        continue;
                    }
                    self.ops.load_word_dep(addr.add_words(1).get());
                    let id = self.heap.klass_of(self.reg, addr);
                    self.ops.load_word_dep(self.reg.meta_addr(id).get());
                    let plan = plans.plan(id);
                    match plan.array_elem {
                        Some(elem) => {
                            self.put_u8(TC_ARRAY);
                            self.write_class_desc(id);
                            self.ops
                                .load_word_dep(addr.add_words(HEADER_WORDS as u64).get());
                            let len = self.heap.array_len(addr);
                            self.put_u32(len as u32);
                            let h = self.next_handle;
                            self.next_handle += 1;
                            self.handles.insert(addr, h);
                            match elem {
                                FieldKind::Value(vt) => {
                                    let w = prim_width(vt) as usize;
                                    let base =
                                        addr.add_words((HEADER_WORDS + 1) as u64).get();
                                    for (i, &word) in self
                                        .heap
                                        .array_words_slice(addr, 0, len)
                                        .iter()
                                        .enumerate()
                                    {
                                        self.ops.load(base + 8 * i as u64, 8);
                                        let be = word.to_be_bytes();
                                        self.ops
                                            .store(self.out_pos(), w as u32);
                                        self.out.extend_from_slice(&be[8 - w..]);
                                        self.ops.maybe_flush(sink);
                                    }
                                }
                                FieldKind::Ref => {
                                    stack.push(SerFrame::Elems { addr, idx: 0 });
                                }
                            }
                        }
                        None => {
                            self.put_u8(TC_OBJECT);
                            self.write_class_desc(id);
                            let h = self.next_handle;
                            self.next_handle += 1;
                            self.handles.insert(addr, h);
                            stack.push(SerFrame::Fields { addr, step: 0, id });
                        }
                    }
                }
                SerFrame::Fields { addr, step, id } => {
                    let plan = plans.plan(id);
                    let mut s = step;
                    'steps: while s < plan.steps.len() {
                        match plan.steps[s] {
                            Step::Run {
                                prim_start,
                                prim_len,
                                ..
                            } => {
                                let prims = &plan.prims
                                    [prim_start as usize..(prim_start + prim_len) as usize];
                                let first = prims[0].idx as usize;
                                let base =
                                    addr.add_words((HEADER_WORDS + first) as u64).get();
                                let words =
                                    self.heap.field_words(addr, first, prim_len as usize);
                                for (j, f) in prims.iter().enumerate() {
                                    self.ops.push(Op::ReflectCall);
                                    self.ops.push(Op::StrCompare(f.name_len));
                                    self.ops.load_word_dep(base + 8 * j as u64);
                                    let w = f.java_width as usize;
                                    let be = words[j].to_be_bytes();
                                    self.ops.store(
                                        OUT_STREAM_BASE + self.out.len() as u64,
                                        w as u32,
                                    );
                                    self.out.extend_from_slice(&be[8 - w..]);
                                }
                                s += 1;
                            }
                            Step::Ref { idx, name_len } => {
                                self.ops.push(Op::ReflectCall);
                                self.ops.push(Op::StrCompare(name_len));
                                self.ops.load_word_dep(
                                    addr.add_words((HEADER_WORDS + idx as usize) as u64)
                                        .get(),
                                );
                                let word = self.heap.field(addr, idx as usize);
                                stack.push(SerFrame::Fields {
                                    addr,
                                    step: s + 1,
                                    id,
                                });
                                stack.push(SerFrame::Write(Addr(word)));
                                break 'steps;
                            }
                        }
                    }
                }
                SerFrame::Elems { addr, idx } => {
                    let len = self.heap.array_len(addr);
                    if idx < len {
                        self.ops
                            .load(addr.add_words((HEADER_WORDS + 1 + idx) as u64).get(), 8);
                        let word = self.heap.array_elem(addr, idx);
                        stack.push(SerFrame::Elems { addr, idx: idx + 1 });
                        stack.push(SerFrame::Write(Addr(word)));
                    }
                }
            }
        }
    }
}

pub(super) fn serialize_into(
    heap: &mut Heap,
    reg: &KlassRegistry,
    root: Addr,
    sink: &mut dyn TraceSink,
    out: &mut Vec<u8>,
) -> Result<usize, SerError> {
    out.clear();
    let mut ctx = CSer {
        heap,
        reg,
        plans: plans_for(reg),
        out: std::mem::take(out),
        handles: HashMap::new(),
        class_handles: vec![None; reg.len()],
        next_handle: 0,
        ops: OpBuf::for_sink(&*sink),
    };
    ctx.put_u16(STREAM_MAGIC);
    ctx.put_u16(STREAM_VERSION);
    ctx.run(root, sink);
    ctx.ops.flush(sink);
    *out = ctx.out;
    Ok(out.len())
}

// ---------------------------------------------------------------------------
// Deserialization
// ---------------------------------------------------------------------------

struct CDe<'a> {
    bytes: &'a [u8],
    pos: usize,
    reg: &'a KlassRegistry,
    plans: Rc<PlanCache>,
    heap: &'a mut Heap,
    handles: Vec<Addr>,
    class_handles: Vec<Option<KlassId>>,
    ops: OpBuf,
}

#[derive(Clone, Copy)]
enum Dest {
    Root,
    Field(Addr, usize),
    Elem(Addr, usize),
}

enum DeFrame {
    Read(Dest),
    Fields { addr: Addr, step: usize, id: KlassId },
    Elems { addr: Addr, idx: usize },
}

impl<'a> CDe<'a> {
    #[inline]
    fn in_pos(&self) -> u64 {
        IN_STREAM_BASE + self.pos as u64
    }

    #[inline]
    fn take(&mut self, n: usize) -> Result<&'a [u8], SerError> {
        if self.pos + n > self.bytes.len() {
            return Err(SerError::Malformed("truncated stream"));
        }
        self.ops.load(self.in_pos(), n as u32);
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn get_u8(&mut self) -> Result<u8, SerError> {
        Ok(self.take(1)?[0])
    }

    fn get_u16(&mut self) -> Result<u16, SerError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn get_u32(&mut self) -> Result<u32, SerError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn get_u64(&mut self) -> Result<u64, SerError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Cold path — mirrors the interpretive descriptor reader.
    fn read_class_desc(&mut self) -> Result<KlassId, SerError> {
        match self.get_u8()? {
            TC_CLASSREF => {
                let h = self.get_u32()? as usize;
                self.ops.push(Op::HashLookup);
                self.class_handles
                    .get(h)
                    .copied()
                    .flatten()
                    .ok_or(SerError::Malformed("bad class handle"))
            }
            TC_CLASSDESC => {
                let len = self.get_u16()? as usize;
                let name_bytes = self.take(len)?.to_vec();
                let name = String::from_utf8(name_bytes)
                    .map_err(|_| SerError::Malformed("class name not UTF-8"))?;
                let _suid = self.get_u64()?;
                let _flags = self.get_u8()?;
                self.ops.push(Op::HashLookup);
                self.ops.push(Op::StrCompare(len as u32));
                let id = self
                    .reg
                    .lookup(&name)
                    .ok_or_else(|| SerError::UnknownClass(name.clone()))?;
                let nfields = self.get_u16()? as usize;
                for _ in 0..nfields {
                    let _sig = self.get_u8()?;
                    let flen = self.get_u16()? as usize;
                    let _fname = self.take(flen)?;
                    self.ops.push(Op::StrCompare(flen as u32));
                }
                self.handles.push(Addr::NULL);
                self.class_handles.push(Some(id));
                Ok(id)
            }
            _ => Err(SerError::Malformed("expected class descriptor")),
        }
    }

    fn read_primitive_width(&mut self, w: usize) -> Result<u64, SerError> {
        let s = self.take(w)?;
        let mut be = [0u8; 8];
        be[8 - w..].copy_from_slice(s);
        Ok(u64::from_be_bytes(be))
    }

    fn store_dest(&mut self, dest: Dest, value: Addr) {
        match dest {
            Dest::Root => {}
            Dest::Field(addr, i) => {
                self.ops.push(Op::ReflectCall);
                self.ops
                    .store(addr.add_words((HEADER_WORDS + i) as u64).get(), 8);
                self.heap.set_ref(addr, i, value);
            }
            Dest::Elem(addr, i) => {
                self.ops
                    .store(addr.add_words((HEADER_WORDS + 1 + i) as u64).get(), 8);
                self.heap.set_array_elem(addr, i, value.get());
            }
        }
    }

    /// Executes one instance's field program from `step`, pushing resume
    /// frames for references. The primitive fast path decodes a whole run
    /// against a bounds check done once; when the stream is too short it
    /// falls back to per-field reads so the narrated ops (and the error)
    /// match the interpretive path exactly.
    fn run_fields(
        &mut self,
        plan: &Plan,
        addr: Addr,
        step: usize,
        id: KlassId,
        stack: &mut Vec<DeFrame>,
    ) -> Result<(), SerError> {
        let mut s = step;
        while s < plan.steps.len() {
            match plan.steps[s] {
                Step::Run {
                    prim_start,
                    prim_len,
                    java_bytes,
                    ..
                } => {
                    let prims =
                        &plan.prims[prim_start as usize..(prim_start + prim_len) as usize];
                    let first = prims[0].idx as usize;
                    if self.pos + java_bytes as usize <= self.bytes.len() {
                        let base = addr.add_words((HEADER_WORDS + first) as u64).get();
                        let mut pos = self.pos;
                        self.pos += java_bytes as usize;
                        let CDe {
                            ref mut ops,
                            ref mut heap,
                            bytes,
                            ..
                        } = *self;
                        let words = heap.field_words_mut(addr, first, prim_len as usize);
                        for (j, f) in prims.iter().enumerate() {
                            let w = f.java_width as usize;
                            ops.load(IN_STREAM_BASE + pos as u64, w as u32);
                            let mut be = [0u8; 8];
                            be[8 - w..].copy_from_slice(&bytes[pos..pos + w]);
                            pos += w;
                            ops.push(Op::ReflectCall);
                            ops.push(Op::StrCompare(f.name_len));
                            ops.store(base + 8 * j as u64, 8);
                            words[j] = u64::from_be_bytes(be);
                        }
                    } else {
                        // Slow path: per-field reads, erroring where the
                        // interpretive reader would.
                        for f in prims {
                            let w = self.read_primitive_width(f.java_width as usize)?;
                            self.ops.push(Op::ReflectCall);
                            self.ops.push(Op::StrCompare(f.name_len));
                            let i = f.idx as usize;
                            self.ops
                                .store(addr.add_words((HEADER_WORDS + i) as u64).get(), 8);
                            self.heap.set_field(addr, i, w);
                        }
                    }
                    s += 1;
                }
                Step::Ref { idx, .. } => {
                    stack.push(DeFrame::Fields {
                        addr,
                        step: s + 1,
                        id,
                    });
                    stack.push(DeFrame::Read(Dest::Field(addr, idx as usize)));
                    return Ok(());
                }
            }
        }
        Ok(())
    }

    fn run(&mut self, sink: &mut dyn TraceSink) -> Result<Addr, SerError> {
        let plans = Rc::clone(&self.plans);
        let mut root = Addr::NULL;
        let mut got_root = false;
        let mut stack = vec![DeFrame::Read(Dest::Root)];
        while let Some(frame) = stack.pop() {
            self.ops.maybe_flush(sink);
            match frame {
                DeFrame::Read(dest) => {
                    self.ops.push(Op::Call);
                    self.ops.push(Op::Branch);
                    let addr = match self.get_u8()? {
                        TC_NULL => Addr::NULL,
                        TC_REFERENCE => {
                            let h = self.get_u32()? as usize;
                            self.ops.push(Op::HashLookup);
                            *self
                                .handles
                                .get(h)
                                .ok_or(SerError::Malformed("bad object handle"))?
                        }
                        TC_OBJECT => {
                            let id = self.read_class_desc()?;
                            let plan = plans.plan(id);
                            self.ops.push(Op::Alloc(plan.instance_bytes));
                            let addr = self.heap.alloc(self.reg, id)?;
                            self.ops.store(addr.get(), 24);
                            self.handles.push(addr);
                            self.class_handles.push(None);
                            stack.push(DeFrame::Fields { addr, step: 0, id });
                            self.store_dest(dest, addr);
                            if !got_root {
                                root = addr;
                                got_root = true;
                            }
                            continue;
                        }
                        TC_ARRAY => {
                            let id = self.read_class_desc()?;
                            let len = self.get_u32()? as usize;
                            if (len as u64) >= self.heap.capacity_bytes() / 8 {
                                return Err(SerError::Malformed("array length exceeds heap"));
                            }
                            let k = self.reg.get(id);
                            self.ops.push(Op::Alloc(k.array_words(len) as u32 * 8));
                            let addr = self.heap.alloc_array(self.reg, id, len)?;
                            self.ops.store(addr.get(), 32);
                            self.handles.push(addr);
                            self.class_handles.push(None);
                            match plans.plan(id).array_elem.expect("array klass") {
                                FieldKind::Value(vt) => {
                                    let w = prim_width(vt) as usize;
                                    let need = len * w;
                                    let base =
                                        addr.add_words((HEADER_WORDS + 1) as u64).get();
                                    if self.pos + need <= self.bytes.len() {
                                        let mut pos = self.pos;
                                        self.pos += need;
                                        let CDe {
                                            ref mut ops,
                                            ref mut heap,
                                            bytes,
                                            ..
                                        } = *self;
                                        let words =
                                            heap.array_words_slice_mut(addr, 0, len);
                                        for (i, slot) in words.iter_mut().enumerate() {
                                            ops.load(IN_STREAM_BASE + pos as u64, w as u32);
                                            let mut be = [0u8; 8];
                                            be[8 - w..]
                                                .copy_from_slice(&bytes[pos..pos + w]);
                                            pos += w;
                                            ops.store(base + 8 * i as u64, 8);
                                            *slot = u64::from_be_bytes(be);
                                            ops.maybe_flush(sink);
                                        }
                                    } else {
                                        for i in 0..len {
                                            let v = self.read_primitive_width(w)?;
                                            self.ops.store(base + 8 * i as u64, 8);
                                            self.heap.set_array_elem(addr, i, v);
                                        }
                                    }
                                }
                                FieldKind::Ref => {
                                    stack.push(DeFrame::Elems { addr, idx: 0 });
                                }
                            }
                            self.store_dest(dest, addr);
                            if !got_root {
                                root = addr;
                                got_root = true;
                            }
                            continue;
                        }
                        _ => return Err(SerError::Malformed("unknown type tag")),
                    };
                    self.store_dest(dest, addr);
                    if !got_root {
                        root = addr;
                        got_root = true;
                    }
                }
                DeFrame::Fields { addr, step, id } => {
                    let plan = plans.plan(id);
                    self.run_fields(plan, addr, step, id, &mut stack)?;
                }
                DeFrame::Elems { addr, idx } => {
                    let len = self.heap.array_len(addr);
                    if idx < len {
                        stack.push(DeFrame::Elems { addr, idx: idx + 1 });
                        stack.push(DeFrame::Read(Dest::Elem(addr, idx)));
                    }
                }
            }
        }
        Ok(root)
    }
}

pub(super) fn deserialize(
    bytes: &[u8],
    reg: &KlassRegistry,
    dst: &mut Heap,
    sink: &mut dyn TraceSink,
) -> Result<Addr, SerError> {
    let mut ctx = CDe {
        bytes,
        pos: 0,
        reg,
        plans: plans_for(reg),
        heap: dst,
        handles: Vec::new(),
        class_handles: Vec::new(),
        ops: OpBuf::for_sink(&*sink),
    };
    let result = (|| {
        if ctx.get_u16()? != STREAM_MAGIC {
            return Err(SerError::Malformed("bad stream magic"));
        }
        if ctx.get_u16()? != STREAM_VERSION {
            return Err(SerError::Malformed("bad stream version"));
        }
        Ok(())
    })()
    .and_then(|()| ctx.run(sink));
    // Ops buffered past the last flush point must reach the sink on both
    // the Ok and the Err path, or error traces would diverge from the
    // interpretive ones.
    ctx.ops.flush(sink);
    result
}
