//! The Java built-in serializer baseline (paper §II, Fig. 1(b)).
//!
//! Faithful to the structure that makes Java S/D slow and its streams
//! large:
//!
//! * class and field **names are embedded as strings**, with name lengths,
//!   field counts and per-field type signatures;
//! * deserialization resolves types by **string lookup** and sets fields
//!   through the `java.lang.reflect` model (a reflective call plus a
//!   string-keyed field lookup per field — the "well-known source of
//!   computational overhead");
//! * nested objects are written **inline, depth-first**, with back
//!   references (`TC_REFERENCE` + handle) preserving sharing;
//! * primitives are written at their Java widths, big-endian.
//!
//! The implementation is iterative (explicit frame stack) so that
//! million-element linked lists serialize without blowing the Rust stack,
//! but the produced byte stream is exactly what the recursive algorithm
//! would emit.

use crate::api::{SerError, Serializer};
use crate::trace::{TraceSink, Tracer, IN_STREAM_BASE, OUT_STREAM_BASE};
use sdheap::{Addr, FieldKind, Heap, KlassId, KlassRegistry, ValueType, HEADER_WORDS};
use std::collections::HashMap;

mod compiled;

/// Stream magic, mirroring `java.io.ObjectStreamConstants.STREAM_MAGIC`.
const STREAM_MAGIC: u16 = 0xaced;
/// Stream version.
const STREAM_VERSION: u16 = 5;

const TC_NULL: u8 = 0x70;
const TC_REFERENCE: u8 = 0x71;
const TC_CLASSDESC: u8 = 0x72;
const TC_OBJECT: u8 = 0x73;
const TC_ARRAY: u8 = 0x75;
const TC_CLASSREF: u8 = 0x76;

/// Byte width of a primitive in the stream.
fn prim_width(vt: ValueType) -> u32 {
    match vt {
        ValueType::Long | ValueType::Double => 8,
        ValueType::Int => 4,
        ValueType::Char => 2,
        ValueType::Byte | ValueType::Boolean => 1,
    }
}

/// The Java built-in serializer.
#[derive(Clone, Copy, Debug)]
pub struct JavaSd {
    /// Execute per-klass compiled field programs (`crate::plan`) instead
    /// of walking `fields()` per object. Streams and traces are identical
    /// either way; only host wall-clock changes.
    compiled_plans: bool,
}

impl JavaSd {
    /// A new instance with the process-wide default plan mode
    /// (`CEREAL_COMPILED_PLANS`).
    pub fn new() -> Self {
        JavaSd {
            compiled_plans: crate::plan::compiled_plans_default(),
        }
    }

    /// An instance that always walks `fields()` interpretively.
    pub fn interpretive() -> Self {
        JavaSd {
            compiled_plans: false,
        }
    }

    /// An instance with an explicit plan mode.
    pub fn with_compiled_plans(compiled_plans: bool) -> Self {
        JavaSd { compiled_plans }
    }
}

impl Default for JavaSd {
    fn default() -> Self {
        JavaSd::new()
    }
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

struct SerCtx<'a> {
    heap: &'a Heap,
    reg: &'a KlassRegistry,
    out: Vec<u8>,
    /// Object address → stream handle.
    handles: HashMap<Addr, u32>,
    /// Class → stream handle (classes share the handle space, as in Java).
    class_handles: HashMap<KlassId, u32>,
    next_handle: u32,
    tracer: Tracer<'a>,
}

enum SerFrame {
    /// Serialize the object at this address (dispatch on null/back-ref/new).
    Write(Addr),
    /// Continue an instance's fields from `idx`; the klass id resolved at
    /// dispatch rides along so resumes skip the klass/registry lookups.
    Fields { addr: Addr, idx: usize, id: KlassId },
    /// Continue a reference array's elements from `idx`.
    Elems { addr: Addr, idx: usize },
}

impl<'a> SerCtx<'a> {
    fn out_pos(&self) -> u64 {
        OUT_STREAM_BASE + self.out.len() as u64
    }

    fn put(&mut self, bytes: &[u8]) {
        self.tracer.store_bytes(self.out_pos(), bytes.len() as u32);
        self.out.extend_from_slice(bytes);
    }

    fn put_u8(&mut self, v: u8) {
        self.put(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put(&v.to_be_bytes());
    }

    /// Writes a class descriptor (or a back reference to one already
    /// written), charging the string work it implies.
    fn write_class_desc(&mut self, id: KlassId) {
        self.tracer.hash_lookup();
        if let Some(&h) = self.class_handles.get(&id) {
            self.put_u8(TC_CLASSREF);
            self.put_u32(h);
            return;
        }
        // `reg` outlives `self`, so the descriptor borrow survives the
        // mutable `put` calls below — no field-name cloning needed.
        let reg: &'a KlassRegistry = self.reg;
        let k = reg.get(id);
        self.put_u8(TC_CLASSDESC);
        let name = k.name().as_bytes();
        self.tracer.alu(name.len() as u32); // string copy into the stream
        self.put_u16(name.len() as u16);
        self.put(name);
        // serialVersionUID: derived from the name; a stable hash stands in.
        let suid = name.iter().fold(0u64, |a, &b| a.wrapping_mul(31).wrapping_add(b.into()));
        self.put_u64(suid);
        self.put_u8(0x02); // SC_SERIALIZABLE flags
        if k.is_array() {
            self.put_u16(0);
        } else {
            self.put_u16(k.num_fields() as u16);
            for f in k.fields() {
                let sig = match f.kind {
                    FieldKind::Value(vt) => vt.signature(),
                    FieldKind::Ref => 'L',
                };
                self.put_u8(sig as u8);
                let fb = f.name.as_bytes();
                self.tracer.alu(fb.len() as u32);
                self.put_u16(fb.len() as u16);
                self.put(fb);
            }
        }
        let h = self.next_handle;
        self.next_handle += 1;
        self.class_handles.insert(id, h);
    }

    fn write_primitive(&mut self, vt: ValueType, word: u64) {
        let w = prim_width(vt);
        let be = word.to_be_bytes();
        self.put(&be[(8 - w as usize)..]);
    }

    fn run(&mut self, root: Addr) {
        let mut stack = vec![SerFrame::Write(root)];
        while let Some(frame) = stack.pop() {
            match frame {
                SerFrame::Write(addr) => {
                    self.tracer.call(); // writeObject invocation
                    self.tracer.branch();
                    if addr.is_null() {
                        self.put_u8(TC_NULL);
                        continue;
                    }
                    // Visited check against the identity hash map.
                    self.tracer
                        .load_word_dep(addr.get()); // mark word (identity hash)
                    self.tracer.hash_lookup();
                    if let Some(&h) = self.handles.get(&addr) {
                        self.put_u8(TC_REFERENCE);
                        self.put_u32(h);
                        continue;
                    }
                    // New object: fetch its klass pointer and descriptor.
                    self.tracer.load_word_dep(addr.add_words(1).get());
                    let id = self.heap.klass_of(self.reg, addr);
                    let meta = self.reg.meta_addr(id).get();
                    self.tracer.load_word_dep(meta);
                    let k = self.reg.get(id);
                    if k.is_array() {
                        self.put_u8(TC_ARRAY);
                        self.write_class_desc(id);
                        self.tracer
                            .load_word_dep(addr.add_words(HEADER_WORDS as u64).get());
                        let len = self.heap.array_len(addr);
                        self.put_u32(len as u32);
                        let h = self.next_handle;
                        self.next_handle += 1;
                        self.handles.insert(addr, h);
                        match k.array_elem().expect("array klass") {
                            FieldKind::Value(vt) => {
                                for i in 0..len {
                                    self.tracer.load_word(
                                        addr.add_words((HEADER_WORDS + 1 + i) as u64).get(),
                                    );
                                    let w = self.heap.array_elem(addr, i);
                                    self.write_primitive(vt, w);
                                }
                            }
                            FieldKind::Ref => {
                                stack.push(SerFrame::Elems { addr, idx: 0 });
                            }
                        }
                    } else {
                        self.put_u8(TC_OBJECT);
                        self.write_class_desc(id);
                        let h = self.next_handle;
                        self.next_handle += 1;
                        self.handles.insert(addr, h);
                        stack.push(SerFrame::Fields { addr, idx: 0, id });
                    }
                }
                SerFrame::Fields { addr, idx, id } => {
                    let reg: &'a KlassRegistry = self.reg;
                    let fields = reg.get(id).fields();
                    let mut i = idx;
                    while i < fields.len() {
                        // Reflective extraction of the field value.
                        self.tracer.reflect_call();
                        self.tracer
                            .str_compare(fields[i].name.len() as u32);
                        self.tracer
                            .load_word_dep(addr.add_words((HEADER_WORDS + i) as u64).get());
                        let word = self.heap.field(addr, i);
                        match fields[i].kind {
                            FieldKind::Value(vt) => {
                                self.write_primitive(vt, word);
                                i += 1;
                            }
                            FieldKind::Ref => {
                                stack.push(SerFrame::Fields { addr, idx: i + 1, id });
                                stack.push(SerFrame::Write(Addr(word)));
                                break;
                            }
                        }
                    }
                }
                SerFrame::Elems { addr, idx } => {
                    let len = self.heap.array_len(addr);
                    if idx < len {
                        self.tracer
                            .load_word(addr.add_words((HEADER_WORDS + 1 + idx) as u64).get());
                        let word = self.heap.array_elem(addr, idx);
                        stack.push(SerFrame::Elems { addr, idx: idx + 1 });
                        stack.push(SerFrame::Write(Addr(word)));
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Deserialization
// ---------------------------------------------------------------------------

struct DeCtx<'a> {
    bytes: &'a [u8],
    pos: usize,
    reg: &'a KlassRegistry,
    heap: &'a mut Heap,
    /// Stream handle → reconstructed object.
    handles: Vec<Addr>,
    /// Class-handle slots interleaved in the same handle space.
    class_handles: Vec<Option<KlassId>>,
    tracer: Tracer<'a>,
}

/// Where to store a just-read reference.
#[derive(Clone, Copy)]
enum Dest {
    Root,
    Field(Addr, usize),
    Elem(Addr, usize),
}

enum DeFrame {
    Read(Dest),
    /// The klass id resolved at allocation rides along so resumes skip
    /// the klass/registry lookups.
    Fields { addr: Addr, idx: usize, id: KlassId },
    Elems { addr: Addr, idx: usize },
}

impl<'a> DeCtx<'a> {
    fn in_pos(&self) -> u64 {
        IN_STREAM_BASE + self.pos as u64
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SerError> {
        if self.pos + n > self.bytes.len() {
            return Err(SerError::Malformed("truncated stream"));
        }
        self.tracer.load_bytes(self.in_pos(), n as u32);
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn get_u8(&mut self) -> Result<u8, SerError> {
        Ok(self.take(1)?[0])
    }

    fn get_u16(&mut self) -> Result<u16, SerError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn get_u32(&mut self) -> Result<u32, SerError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn get_u64(&mut self) -> Result<u64, SerError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn read_class_desc(&mut self) -> Result<KlassId, SerError> {
        match self.get_u8()? {
            TC_CLASSREF => {
                let h = self.get_u32()? as usize;
                self.tracer.hash_lookup();
                self.class_handles
                    .get(h)
                    .copied()
                    .flatten()
                    .ok_or(SerError::Malformed("bad class handle"))
            }
            TC_CLASSDESC => {
                let len = self.get_u16()? as usize;
                let name_bytes = self.take(len)?.to_vec();
                let name = String::from_utf8(name_bytes)
                    .map_err(|_| SerError::Malformed("class name not UTF-8"))?;
                let _suid = self.get_u64()?;
                let _flags = self.get_u8()?;
                // Type resolution by string: the expensive step.
                self.tracer.hash_lookup();
                self.tracer.str_compare(len as u32);
                let id = self
                    .reg
                    .lookup(&name)
                    .ok_or_else(|| SerError::UnknownClass(name.clone()))?;
                let nfields = self.get_u16()? as usize;
                for _ in 0..nfields {
                    let _sig = self.get_u8()?;
                    let flen = self.get_u16()? as usize;
                    let _fname = self.take(flen)?;
                    self.tracer.str_compare(flen as u32);
                }
                self.handles.push(Addr::NULL);
                self.class_handles.push(Some(id));
                Ok(id)
            }
            _ => Err(SerError::Malformed("expected class descriptor")),
        }
    }

    fn read_primitive(&mut self, vt: ValueType) -> Result<u64, SerError> {
        let w = prim_width(vt) as usize;
        let s = self.take(w)?;
        let mut be = [0u8; 8];
        be[8 - w..].copy_from_slice(s);
        Ok(u64::from_be_bytes(be))
    }

    fn store_dest(&mut self, dest: Dest, value: Addr) -> Result<(), SerError> {
        match dest {
            Dest::Root => {}
            Dest::Field(addr, i) => {
                // Reflective set (java.lang.reflect Field.set).
                self.tracer.reflect_call();
                self.tracer.store_word(addr.add_words((HEADER_WORDS + i) as u64).get());
                self.heap.set_ref(addr, i, value);
            }
            Dest::Elem(addr, i) => {
                self.tracer
                    .store_word(addr.add_words((HEADER_WORDS + 1 + i) as u64).get());
                self.heap.set_array_elem(addr, i, value.get());
            }
        }
        Ok(())
    }

    fn run(&mut self) -> Result<Addr, SerError> {
        let mut root = Addr::NULL;
        let mut got_root = false;
        let mut stack = vec![DeFrame::Read(Dest::Root)];
        while let Some(frame) = stack.pop() {
            match frame {
                DeFrame::Read(dest) => {
                    self.tracer.call();
                    self.tracer.branch();
                    let addr = match self.get_u8()? {
                        TC_NULL => Addr::NULL,
                        TC_REFERENCE => {
                            let h = self.get_u32()? as usize;
                            self.tracer.hash_lookup();
                            *self
                                .handles
                                .get(h)
                                .ok_or(SerError::Malformed("bad object handle"))?
                        }
                        TC_OBJECT => {
                            let id = self.read_class_desc()?;
                            let k = self.reg.get(id);
                            self.tracer.alloc(k.instance_words() as u32 * 8);
                            let addr = self.heap.alloc(self.reg, id)?;
                            self.tracer.store_bytes(addr.get(), 24); // header init
                            self.handles.push(addr);
                            self.class_handles.push(None);
                            stack.push(DeFrame::Fields { addr, idx: 0, id });
                            // Order matters: the fields frame must run before
                            // anything the parent still has pending, and the
                            // stack gives us exactly that.
                            self.store_dest(dest, addr)?;
                            if !got_root {
                                root = addr;
                                got_root = true;
                            }
                            continue;
                        }
                        TC_ARRAY => {
                            let id = self.read_class_desc()?;
                            let len = self.get_u32()? as usize;
                            if (len as u64) >= self.heap.capacity_bytes() / 8 {
                                return Err(SerError::Malformed("array length exceeds heap"));
                            }
                            let k = self.reg.get(id);
                            self.tracer.alloc(k.array_words(len) as u32 * 8);
                            let addr = self.heap.alloc_array(self.reg, id, len)?;
                            self.tracer.store_bytes(addr.get(), 32); // header + length init
                            self.handles.push(addr);
                            self.class_handles.push(None);
                            match k.array_elem().expect("array klass") {
                                FieldKind::Value(vt) => {
                                    for i in 0..len {
                                        let w = self.read_primitive(vt)?;
                                        self.tracer.store_word(
                                            addr.add_words((HEADER_WORDS + 1 + i) as u64).get(),
                                        );
                                        self.heap.set_array_elem(addr, i, w);
                                    }
                                }
                                FieldKind::Ref => {
                                    stack.push(DeFrame::Elems { addr, idx: 0 });
                                }
                            }
                            self.store_dest(dest, addr)?;
                            if !got_root {
                                root = addr;
                                got_root = true;
                            }
                            continue;
                        }
                        _ => return Err(SerError::Malformed("unknown type tag")),
                    };
                    self.store_dest(dest, addr)?;
                    if !got_root {
                        root = addr;
                        got_root = true;
                    }
                }
                DeFrame::Fields { addr, idx, id } => {
                    let reg: &'a KlassRegistry = self.reg;
                    let fields = reg.get(id).fields();
                    let mut i = idx;
                    while i < fields.len() {
                        match fields[i].kind {
                            FieldKind::Value(vt) => {
                                let fname_len = fields[i].name.len() as u32;
                                let w = self.read_primitive(vt)?;
                                // Reflective field set with string lookup.
                                self.tracer.reflect_call();
                                self.tracer.str_compare(fname_len);
                                self.tracer
                                    .store_word(addr.add_words((HEADER_WORDS + i) as u64).get());
                                self.heap.set_field(addr, i, w);
                                i += 1;
                            }
                            FieldKind::Ref => {
                                stack.push(DeFrame::Fields { addr, idx: i + 1, id });
                                stack.push(DeFrame::Read(Dest::Field(addr, i)));
                                break;
                            }
                        }
                    }
                }
                DeFrame::Elems { addr, idx } => {
                    let len = self.heap.array_len(addr);
                    if idx < len {
                        stack.push(DeFrame::Elems { addr, idx: idx + 1 });
                        stack.push(DeFrame::Read(Dest::Elem(addr, idx)));
                    }
                }
            }
        }
        Ok(root)
    }
}

impl Serializer for JavaSd {
    fn name(&self) -> &str {
        "Java"
    }

    fn serialize(
        &self,
        heap: &mut Heap,
        reg: &KlassRegistry,
        root: Addr,
        sink: &mut dyn TraceSink,
    ) -> Result<Vec<u8>, SerError> {
        let mut out = Vec::new();
        self.serialize_into(heap, reg, root, sink, &mut out)?;
        Ok(out)
    }

    fn serialize_into(
        &self,
        heap: &mut Heap,
        reg: &KlassRegistry,
        root: Addr,
        sink: &mut dyn TraceSink,
        out: &mut Vec<u8>,
    ) -> Result<usize, SerError> {
        if self.compiled_plans {
            return compiled::serialize_into(heap, reg, root, sink, out);
        }
        out.clear();
        let mut ctx = SerCtx {
            heap,
            reg,
            out: std::mem::take(out),
            handles: HashMap::new(),
            class_handles: HashMap::new(),
            next_handle: 0,
            tracer: Tracer::new(sink),
        };
        ctx.put_u16(STREAM_MAGIC);
        ctx.put_u16(STREAM_VERSION);
        ctx.run(root);
        *out = ctx.out;
        Ok(out.len())
    }

    fn deserialize(
        &self,
        bytes: &[u8],
        reg: &KlassRegistry,
        dst: &mut Heap,
        sink: &mut dyn TraceSink,
    ) -> Result<Addr, SerError> {
        if self.compiled_plans {
            return compiled::deserialize(bytes, reg, dst, sink);
        }
        let mut ctx = DeCtx {
            bytes,
            pos: 0,
            reg,
            heap: dst,
            handles: Vec::new(),
            class_handles: Vec::new(),
            tracer: Tracer::new(sink),
        };
        if ctx.get_u16()? != STREAM_MAGIC {
            return Err(SerError::Malformed("bad stream magic"));
        }
        if ctx.get_u16()? != STREAM_VERSION {
            return Err(SerError::Malformed("bad stream version"));
        }
        ctx.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{CountingSink, NullSink};
    use sdheap::builder::Init;
    use sdheap::{isomorphic_with, GraphBuilder, IsoOptions};

    fn roundtrip(heap: &mut Heap, reg: &KlassRegistry, root: Addr) -> (Heap, Addr) {
        let ser = JavaSd::new();
        let bytes = ser
            .serialize(heap, reg, root, &mut NullSink)
            .expect("serialize");
        let mut dst = Heap::with_base(Addr(0x2_0000_0000), heap.capacity_bytes());
        let new_root = ser
            .deserialize(&bytes, reg, &mut dst, &mut NullSink)
            .expect("deserialize");
        (dst, new_root)
    }

    fn assert_iso(heap: &Heap, reg: &KlassRegistry, a: Addr, dst: &Heap, b: Addr) {
        assert!(isomorphic_with(
            heap,
            reg,
            a,
            dst,
            b,
            IsoOptions {
                check_identity_hash: false
            }
        ));
    }

    #[test]
    fn roundtrips_simple_object() {
        let mut b = GraphBuilder::new(1 << 16);
        let k = b.klass(
            "Point",
            vec![
                FieldKind::Value(ValueType::Long),
                FieldKind::Value(ValueType::Int),
            ],
        );
        let o = b.object(k, &[Init::Val(123456789), Init::Val(42)]).unwrap();
        let (mut heap, reg) = b.finish();
        let (dst, root) = roundtrip(&mut heap, &reg, o);
        assert_iso(&heap, &reg, o, &dst, root);
    }

    #[test]
    fn roundtrips_shared_and_cyclic() {
        let mut b = GraphBuilder::new(1 << 16);
        let k = b.klass("N", vec![FieldKind::Ref, FieldKind::Ref]);
        let x = b.object(k, &[Init::Null, Init::Null]).unwrap();
        let y = b.object(k, &[Init::Ref(x), Init::Ref(x)]).unwrap();
        b.link(x, 0, y); // cycle
        let (mut heap, reg) = b.finish();
        let (dst, root) = roundtrip(&mut heap, &reg, y);
        assert_iso(&heap, &reg, y, &dst, root);
    }

    #[test]
    fn roundtrips_arrays() {
        let mut b = GraphBuilder::new(1 << 16);
        let d = b.array_klass("double[]", FieldKind::Value(ValueType::Double));
        let o = b.array_klass("Object[]", FieldKind::Ref);
        let data = b.value_array(d, &[f64::to_bits(1.5), f64::to_bits(-2.5)]).unwrap();
        let arr = b.ref_array(o, &[data, Addr::NULL, data]).unwrap();
        let (mut heap, reg) = b.finish();
        let (dst, root) = roundtrip(&mut heap, &reg, arr);
        assert_iso(&heap, &reg, arr, &dst, root);
    }

    #[test]
    fn deep_list_does_not_overflow() {
        let mut b = GraphBuilder::new(1 << 24);
        let k = b.klass("L", vec![FieldKind::Value(ValueType::Long), FieldKind::Ref]);
        let mut head = b.object(k, &[Init::Val(0), Init::Null]).unwrap();
        for i in 1..50_000u64 {
            head = b.object(k, &[Init::Val(i), Init::Ref(head)]).unwrap();
        }
        let (mut heap, reg) = b.finish();
        let (dst, root) = roundtrip(&mut heap, &reg, head);
        assert_iso(&heap, &reg, head, &dst, root);
    }

    #[test]
    fn stream_contains_class_and_field_names() {
        let mut b = GraphBuilder::new(1 << 16);
        let k = b.klass(
            "com.example.VeryDescriptiveClassName",
            vec![FieldKind::Value(ValueType::Long)],
        );
        let o = b.object(k, &[Init::Val(1)]).unwrap();
        let (mut heap, reg) = b.finish();
        let bytes = JavaSd::new()
            .serialize(&mut heap, &reg, o, &mut NullSink)
            .unwrap();
        let s = String::from_utf8_lossy(&bytes);
        assert!(s.contains("VeryDescriptiveClassName"));
        assert!(s.contains("f0"), "field names embedded");
    }

    #[test]
    fn class_descriptor_written_once() {
        let mut b = GraphBuilder::new(1 << 16);
        let k = b.klass("Node", vec![FieldKind::Ref]);
        let a = b.object(k, &[Init::Null]).unwrap();
        let c = b.object(k, &[Init::Ref(a)]).unwrap();
        let (mut heap, reg) = b.finish();
        let bytes = JavaSd::new()
            .serialize(&mut heap, &reg, c, &mut NullSink)
            .unwrap();
        let hay = String::from_utf8_lossy(&bytes);
        assert_eq!(hay.matches("Node").count(), 1, "second object uses TC_CLASSREF");
    }

    #[test]
    fn emits_reflection_heavy_trace() {
        let mut b = GraphBuilder::new(1 << 16);
        let k = b.klass(
            "K",
            vec![FieldKind::Value(ValueType::Long), FieldKind::Value(ValueType::Long)],
        );
        let o = b.object(k, &[Init::Val(1), Init::Val(2)]).unwrap();
        let (mut heap, reg) = b.finish();
        let mut counts = CountingSink::new();
        JavaSd::new().serialize(&mut heap, &reg, o, &mut counts).unwrap();
        assert_eq!(counts.reflect_calls, 2, "one reflective call per field");
        assert!(counts.str_compare_bytes > 0);
        assert!(counts.dependent_loads >= 3, "header + klass + field chase");
    }

    #[test]
    fn null_root_roundtrips() {
        let mut b = GraphBuilder::new(1 << 12);
        let _ = b.klass("K", vec![]);
        let (mut heap, reg) = b.finish();
        let (dst, root) = roundtrip(&mut heap, &reg, Addr::NULL);
        assert!(root.is_null());
        assert_eq!(dst.object_count(), 0);
    }

    #[test]
    fn rejects_garbage() {
        let reg = KlassRegistry::new();
        let mut dst = Heap::new(1 << 12);
        let err = JavaSd::new()
            .deserialize(&[1, 2, 3], &reg, &mut dst, &mut NullSink)
            .unwrap_err();
        assert!(matches!(err, SerError::Malformed(_)));
    }

    #[test]
    fn rejects_unknown_class() {
        let mut b = GraphBuilder::new(1 << 16);
        let k = b.klass("Known", vec![]);
        let o = b.object(k, &[]).unwrap();
        let (mut heap, reg) = b.finish();
        let bytes = JavaSd::new()
            .serialize(&mut heap, &reg, o, &mut NullSink)
            .unwrap();
        let other_reg = KlassRegistry::new(); // class not registered here
        let mut dst = Heap::new(1 << 12);
        let err = JavaSd::new()
            .deserialize(&bytes, &other_reg, &mut dst, &mut NullSink)
            .unwrap_err();
        assert!(matches!(err, SerError::UnknownClass(_)));
    }
}
