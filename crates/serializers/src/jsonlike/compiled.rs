//! Compiled-plan executor for [`JsonLike`](super::JsonLike).
//!
//! The text serializer's hot costs are formatting and narration: every
//! `emit` is a `format!` allocation plus two virtual sink calls, and the
//! parser narrates three ops per input byte through a virtual call each.
//! The compiled executor uses the plan's pre-rendered header and field
//! prefixes (`{"@c":"Name","@id":` / `,"fN":`), a reusable number-format
//! buffer instead of per-value `String`s, slice-based tokens instead of
//! `String` copies while parsing, and an [`OpBuf`] for all narration.
//! Emit granularity is preserved exactly — one `Store`+`Alu` pair per
//! interpretive `emit`, three ops per parsed byte — so streams and op
//! sequences are identical to the interpretive path (golden-tested).

use super::{parse_value, MAX_DEPTH};
use crate::api::SerError;
use crate::plan::{decimal, plans_for, PlanCache, Step};
use crate::trace::{Op, OpBuf, TraceSink, IN_STREAM_BASE, OUT_STREAM_BASE};
use sdheap::{Addr, FieldKind, Heap, KlassId, KlassRegistry, ValueType, HEADER_WORDS};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::rc::Rc;

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

struct CSer<'a> {
    heap: &'a Heap,
    reg: &'a KlassRegistry,
    plans: Rc<PlanCache>,
    out: Vec<u8>,
    ids: HashMap<Addr, usize>,
    /// Reusable `{:?}` format buffer for doubles.
    num: String,
    ops: OpBuf,
}

enum Frame {
    Open(Addr),
    Fields { addr: Addr, step: usize, id: KlassId },
    Elems { addr: Addr, idx: usize, elem: FieldKind },
    Text(&'static str),
}

impl<'a> CSer<'a> {
    /// One interpretive `emit`: a single `Store`+`Alu` pair of the full
    /// chunk length.
    #[inline]
    fn emit(&mut self, s: &[u8]) {
        self.ops
            .store(OUT_STREAM_BASE + self.out.len() as u64, s.len() as u32);
        self.ops.push(Op::Alu(s.len() as u32));
        self.out.extend_from_slice(s);
    }

    /// Emits a primitive exactly as `fmt_value` would print it.
    #[inline]
    fn emit_value(&mut self, vt: ValueType, word: u64) {
        match vt {
            ValueType::Double => {
                let mut num = std::mem::take(&mut self.num);
                num.clear();
                write!(num, "{:?}", f64::from_bits(word)).expect("fmt");
                self.emit(num.as_bytes());
                self.num = num;
            }
            ValueType::Boolean => {
                self.emit(if word != 0 { b"true" } else { b"false" });
            }
            _ => {
                let mut buf = [0u8; 20];
                let d = decimal(word, &mut buf);
                // Split borrow: `d` points into the local `buf`.
                self.ops
                    .store(OUT_STREAM_BASE + self.out.len() as u64, d.len() as u32);
                self.ops.push(Op::Alu(d.len() as u32));
                self.out.extend_from_slice(d);
            }
        }
    }

    fn write_obj(&mut self, root: Addr, sink: &mut dyn TraceSink) {
        let plans = Rc::clone(&self.plans);
        let mut stack = vec![Frame::Open(root)];
        while let Some(frame) = stack.pop() {
            self.ops.maybe_flush(sink);
            match frame {
                Frame::Text(s) => self.emit(s.as_bytes()),
                Frame::Open(addr) => {
                    self.ops.push(Op::Call);
                    self.ops.push(Op::Branch);
                    if addr.is_null() {
                        self.emit(b"null");
                        continue;
                    }
                    self.ops.push(Op::HashLookup);
                    if let Some(&id) = self.ids.get(&addr) {
                        // `{"@r":N}` is one interpretive emit.
                        let mut db = [0u8; 20];
                        let d = decimal(id as u64, &mut db);
                        let total = 6 + d.len() + 1;
                        self.ops
                            .store(OUT_STREAM_BASE + self.out.len() as u64, total as u32);
                        self.ops.push(Op::Alu(total as u32));
                        self.out.extend_from_slice(b"{\"@r\":");
                        self.out.extend_from_slice(d);
                        self.out.push(b'}');
                        continue;
                    }
                    let id = self.ids.len();
                    self.ids.insert(addr, id);
                    self.ops.load_word_dep(addr.add_words(1).get());
                    let kid = self.heap.klass_of(self.reg, addr);
                    let plan = plans.plan(kid);
                    // `{"@c":"Name","@id":N` is one interpretive emit.
                    let mut db = [0u8; 20];
                    let d = decimal(id as u64, &mut db);
                    let total = plan.json_header.len() + d.len();
                    self.ops
                        .store(OUT_STREAM_BASE + self.out.len() as u64, total as u32);
                    self.ops.push(Op::Alu(total as u32));
                    self.out.extend_from_slice(&plan.json_header);
                    self.out.extend_from_slice(d);
                    match plan.array_elem {
                        Some(elem) => {
                            self.emit(b",\"e\":[");
                            stack.push(Frame::Text("]}"));
                            stack.push(Frame::Elems { addr, idx: 0, elem });
                        }
                        None => {
                            stack.push(Frame::Text("}"));
                            stack.push(Frame::Fields { addr, step: 0, id: kid });
                        }
                    }
                }
                Frame::Fields { addr, step, id } => {
                    let plan = plans.plan(id);
                    let mut s = step;
                    'steps: while s < plan.steps.len() {
                        match plan.steps[s] {
                            Step::Run {
                                prim_start,
                                prim_len,
                                ..
                            } => {
                                let prims = &plan.prims
                                    [prim_start as usize..(prim_start + prim_len) as usize];
                                let first = prims[0].idx as usize;
                                let base =
                                    addr.add_words((HEADER_WORDS + first) as u64).get();
                                let h: &Heap = self.heap;
                                let words = h.field_words(addr, first, prims.len());
                                for (j, (f, &word)) in
                                    prims.iter().zip(words).enumerate()
                                {
                                    self.ops.push(Op::Call);
                                    self.ops.load_word_dep(base + 8 * j as u64);
                                    let prefix = &plan.json_prefixes[f.idx as usize];
                                    self.ops.store(
                                        OUT_STREAM_BASE + self.out.len() as u64,
                                        prefix.len() as u32,
                                    );
                                    self.ops.push(Op::Alu(prefix.len() as u32));
                                    self.out.extend_from_slice(prefix);
                                    self.emit_value(f.vt, word);
                                    self.ops.maybe_flush(sink);
                                }
                                s += 1;
                            }
                            Step::Ref { idx, .. } => {
                                self.ops.push(Op::Call);
                                self.ops.load_word_dep(
                                    addr.add_words((HEADER_WORDS + idx as usize) as u64)
                                        .get(),
                                );
                                let word = self.heap.field(addr, idx as usize);
                                let prefix = &plan.json_prefixes[idx as usize];
                                self.ops.store(
                                    OUT_STREAM_BASE + self.out.len() as u64,
                                    prefix.len() as u32,
                                );
                                self.ops.push(Op::Alu(prefix.len() as u32));
                                self.out.extend_from_slice(prefix);
                                stack.push(Frame::Fields {
                                    addr,
                                    step: s + 1,
                                    id,
                                });
                                stack.push(Frame::Open(Addr(word)));
                                break 'steps;
                            }
                        }
                    }
                }
                Frame::Elems { addr, idx, elem } => match elem {
                    FieldKind::Value(vt) => {
                        let len = self.heap.array_len(addr);
                        let base = addr.add_words((HEADER_WORDS + 1) as u64).get();
                        for i in idx..len {
                            if i > 0 {
                                self.emit(b",");
                            }
                            self.ops.load(base + 8 * i as u64, 8);
                            let word = self.heap.array_elem(addr, i);
                            self.emit_value(vt, word);
                            self.ops.maybe_flush(sink);
                        }
                    }
                    FieldKind::Ref => {
                        let len = self.heap.array_len(addr);
                        if idx < len {
                            if idx > 0 {
                                self.emit(b",");
                            }
                            self.ops.load(
                                addr.add_words((HEADER_WORDS + 1 + idx) as u64).get(),
                                8,
                            );
                            let word = self.heap.array_elem(addr, idx);
                            stack.push(Frame::Elems {
                                addr,
                                idx: idx + 1,
                                elem,
                            });
                            stack.push(Frame::Open(Addr(word)));
                        }
                    }
                },
            }
        }
    }
}

pub(super) fn serialize_into(
    heap: &mut Heap,
    reg: &KlassRegistry,
    root: Addr,
    sink: &mut dyn TraceSink,
    out: &mut Vec<u8>,
) -> Result<usize, SerError> {
    out.clear();
    let mut ctx = CSer {
        heap,
        reg,
        plans: plans_for(reg),
        out: std::mem::take(out),
        ids: HashMap::new(),
        num: String::new(),
        ops: OpBuf::for_sink(&*sink),
    };
    ctx.write_obj(root, sink);
    ctx.ops.flush(sink);
    *out = ctx.out;
    Ok(out.len())
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct CDe<'a> {
    text: &'a [u8],
    pos: usize,
    depth: usize,
    reg: &'a KlassRegistry,
    plans: Rc<PlanCache>,
    heap: &'a mut Heap,
    by_id: HashMap<usize, Addr>,
    ops: OpBuf,
    sink: &'a mut dyn TraceSink,
}

impl<'a> CDe<'a> {
    #[inline]
    fn peek(&self) -> Option<u8> {
        self.text.get(self.pos).copied()
    }

    /// One parsed byte: `Load(1)`, `Alu(1)`, `Branch` — as in the
    /// interpretive `bump`.
    #[inline]
    fn bump(&mut self) -> Result<u8, SerError> {
        let c = self
            .peek()
            .ok_or(SerError::Malformed("unexpected end of text"))?;
        self.ops.load(IN_STREAM_BASE + self.pos as u64, 1);
        self.ops.push(Op::Alu(1));
        self.ops.push(Op::Branch);
        self.pos += 1;
        Ok(c)
    }

    fn expect(&mut self, s: &str) -> Result<(), SerError> {
        for &b in s.as_bytes() {
            if self.bump()? != b {
                return Err(SerError::Malformed("unexpected token"));
            }
        }
        Ok(())
    }

    /// Token up to a stop byte, as a borrowed slice (the interpretive
    /// path copies into a `String`; the narration — `Alu(n)` after UTF-8
    /// validation — is the same).
    fn take_until(&mut self, stops: &[u8]) -> Result<&'a str, SerError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if stops.contains(&c) {
                let s = std::str::from_utf8(&self.text[start..self.pos])
                    .map_err(|_| SerError::Malformed("not UTF-8"))?;
                self.ops.push(Op::Alu((self.pos - start) as u32));
                return Ok(s);
            }
            self.pos += 1;
        }
        Err(SerError::Malformed("unterminated token"))
    }

    fn parse_string(&mut self) -> Result<&'a str, SerError> {
        self.expect("\"")?;
        let s = self.take_until(b"\"")?;
        self.expect("\"")?;
        self.ops.push(Op::StrCompare(s.len() as u32));
        Ok(s)
    }

    fn parse_ref(&mut self) -> Result<Addr, SerError> {
        self.ops.push(Op::Call);
        self.ops.maybe_flush(&mut *self.sink);
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(SerError::Malformed("nesting too deep"));
        }
        let out = match self.peek() {
            Some(b'n') => {
                self.expect("null")?;
                Ok(Addr::NULL)
            }
            Some(b'{') => self.parse_object(),
            _ => Err(SerError::Malformed("expected object or null")),
        };
        self.depth -= 1;
        out
    }

    fn parse_object(&mut self) -> Result<Addr, SerError> {
        let plans = Rc::clone(&self.plans);
        self.expect("{")?;
        let key = self.parse_string()?;
        if key == "@r" {
            self.expect(":")?;
            let id: usize = self
                .take_until(b"}")?
                .parse()
                .map_err(|_| SerError::Malformed("bad @r id"))?;
            self.expect("}")?;
            self.ops.push(Op::HashLookup);
            return self
                .by_id
                .get(&id)
                .copied()
                .ok_or(SerError::Malformed("dangling @r"));
        }
        if key != "@c" {
            return Err(SerError::Malformed("expected @c"));
        }
        self.expect(":")?;
        let name = self.parse_string()?;
        self.ops.push(Op::HashLookup);
        self.ops.push(Op::StrCompare(name.len() as u32));
        let kid = self
            .reg
            .lookup(name)
            .ok_or_else(|| SerError::UnknownClass(name.to_string()))?;
        self.expect(",\"@id\":")?;
        let id: usize = self
            .take_until(b",}")?
            .parse()
            .map_err(|_| SerError::Malformed("bad @id"))?;

        let plan = plans.plan(kid);
        match plan.array_elem {
            Some(elem) => {
                self.expect(",\"e\":[")?;
                let mut values: Vec<u64> = Vec::new();
                let mut first = true;
                loop {
                    if self.peek() == Some(b']') {
                        self.bump()?;
                        break;
                    }
                    if !first {
                        self.expect(",")?;
                    }
                    first = false;
                    match elem {
                        FieldKind::Value(vt) => {
                            let text = self.take_until(b",]")?;
                            values.push(parse_value(vt, text)?);
                        }
                        FieldKind::Ref => {
                            let a = self.parse_ref()?;
                            values.push(a.get());
                        }
                    }
                    self.ops.maybe_flush(&mut *self.sink);
                }
                self.expect("}")?;
                let k = self.reg.get(kid);
                self.ops
                    .push(Op::Alloc((k.array_words(values.len()) * 8) as u32));
                let addr = self.heap.alloc_array(self.reg, kid, values.len())?;
                let base = addr.add_words((HEADER_WORDS + 1) as u64).get();
                {
                    let CDe {
                        ref mut ops,
                        ref mut heap,
                        ..
                    } = *self;
                    let words = heap.array_words_slice_mut(addr, 0, values.len());
                    for (i, (slot, v)) in words.iter_mut().zip(&values).enumerate() {
                        ops.store(base + 8 * i as u64, 8);
                        *slot = *v;
                    }
                }
                self.by_id.insert(id, addr);
                Ok(addr)
            }
            None => {
                self.ops.push(Op::Alloc(plan.instance_bytes));
                let addr = self.heap.alloc(self.reg, kid)?;
                self.by_id.insert(id, addr);
                for expected in 0..plan.num_fields as usize {
                    self.expect(",")?;
                    let fname = self.parse_string()?;
                    self.ops.push(Op::StrCompare(fname.len() as u32));
                    // Streams we produced name fields in declaration
                    // order — check the expected slot first, fall back to
                    // a search (no narration either way, matching the
                    // interpretive `position` scan).
                    let plan = plans.plan(kid);
                    let f = if *plan.field_names[expected] == *fname.as_bytes() {
                        expected
                    } else {
                        plan.field_names
                            .iter()
                            .position(|n| **n == *fname.as_bytes())
                            .ok_or(SerError::Malformed("unknown field"))?
                    };
                    self.expect(":")?;
                    let word = match plan.kinds[f] {
                        FieldKind::Value(vt) => {
                            let text = self.take_until(b",}")?;
                            parse_value(vt, text)?
                        }
                        FieldKind::Ref => self.parse_ref()?.get(),
                    };
                    self.ops
                        .store(addr.add_words((HEADER_WORDS + f) as u64).get(), 8);
                    self.heap.set_field(addr, f, word);
                    self.ops.maybe_flush(&mut *self.sink);
                }
                self.expect("}")?;
                Ok(addr)
            }
        }
    }
}

pub(super) fn deserialize(
    bytes: &[u8],
    reg: &KlassRegistry,
    dst: &mut Heap,
    sink: &mut dyn TraceSink,
) -> Result<Addr, SerError> {
    let mut ctx = CDe {
        text: bytes,
        pos: 0,
        depth: 0,
        reg,
        plans: plans_for(reg),
        heap: dst,
        by_id: HashMap::new(),
        ops: OpBuf::for_sink(&*sink),
        sink,
    };
    let result = ctx.parse_ref();
    // Buffered ops reach the sink on both Ok and Err paths.
    let CDe {
        ref mut ops,
        ref mut sink,
        ..
    } = ctx;
    ops.flush(&mut **sink);
    result
}
