//! A JSON-style text serializer — the JSBS "text" class, mechanistically.
//!
//! Models the gson/jackson family: objects become `{...}` documents with
//! **field names spelled out as text**, numbers printed in decimal, and
//! object identity preserved through `@id`/`@r` keys (the `$id`/`$ref`
//! convention text serializers use when reference support is enabled).
//! Serialization is string formatting; deserialization is character-level
//! parsing — both heavy on per-byte ALU work and branches, which is
//! exactly why the text class sits at the slow end of Fig. 12.
//!
//! Wire shape (whitespace-free):
//!
//! ```text
//! {"@c":"Node","@id":0,"f0":123,"f1":{"@r":0},"f2":null}
//! {"@c":"double[]","@id":1,"e":[1.5,-2.0]}
//! ```

mod compiled;

use crate::api::{SerError, Serializer};
use crate::plan::compiled_plans_default;
use crate::trace::{TraceSink, Tracer, IN_STREAM_BASE, OUT_STREAM_BASE};
use sdheap::{Addr, FieldKind, Heap, KlassRegistry, ValueType, HEADER_WORDS};
use std::collections::HashMap;

/// The JSON-like text serializer.
#[derive(Clone, Copy, Debug)]
pub struct JsonLike {
    compiled_plans: bool,
}

impl JsonLike {
    /// A new instance with the process-default execution mode (see
    /// [`compiled_plans_default`]).
    pub fn new() -> Self {
        JsonLike {
            compiled_plans: compiled_plans_default(),
        }
    }

    /// Field-walking reference implementation.
    pub fn interpretive() -> Self {
        JsonLike {
            compiled_plans: false,
        }
    }

    /// Selects the execution mode explicitly.
    pub fn with_compiled_plans(compiled: bool) -> Self {
        JsonLike {
            compiled_plans: compiled,
        }
    }
}

impl Default for JsonLike {
    fn default() -> Self {
        JsonLike::new()
    }
}

/// Prints a primitive per its Java type.
fn fmt_value(vt: ValueType, word: u64) -> String {
    match vt {
        ValueType::Double => format!("{:?}", f64::from_bits(word)),
        ValueType::Boolean => (word != 0).to_string(),
        _ => word.to_string(),
    }
}

fn parse_value(vt: ValueType, text: &str) -> Result<u64, SerError> {
    match vt {
        ValueType::Double => text
            .parse::<f64>()
            .map(f64::to_bits)
            .map_err(|_| SerError::Malformed("bad double literal")),
        ValueType::Boolean => match text {
            "true" => Ok(1),
            "false" => Ok(0),
            _ => Err(SerError::Malformed("bad boolean literal")),
        },
        _ => text
            .parse::<u64>()
            .map_err(|_| SerError::Malformed("bad integer literal")),
    }
}

struct SerCtx<'a> {
    heap: &'a Heap,
    reg: &'a KlassRegistry,
    out: String,
    ids: HashMap<Addr, usize>,
    tracer: Tracer<'a>,
}

impl SerCtx<'_> {
    fn emit(&mut self, s: &str) {
        self.tracer
            .store_bytes(OUT_STREAM_BASE + self.out.len() as u64, s.len() as u32);
        self.tracer.alu(s.len() as u32); // text formatting, byte by byte
        self.out.push_str(s);
    }

    fn write_obj(&mut self, root: Addr) {
        // Iterative with an explicit frame stack (deep lists must work).
        // Like the javasd/kryo/protolike work lists, resumable frames
        // carry the type information resolved at dispatch — the klass id
        // for field frames, the element kind for array frames — so a
        // resume never repeats the `heap.klass_of` + registry lookups.
        enum Frame {
            Open(Addr),
            Fields { addr: Addr, idx: usize, id: sdheap::KlassId },
            Elems { addr: Addr, idx: usize, elem: FieldKind },
            Text(&'static str),
        }
        let mut stack = vec![Frame::Open(root)];
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::Text(s) => self.emit(s),
                Frame::Open(addr) => {
                    self.tracer.call();
                    self.tracer.branch();
                    if addr.is_null() {
                        self.emit("null");
                        continue;
                    }
                    self.tracer.hash_lookup();
                    if let Some(&id) = self.ids.get(&addr) {
                        self.emit(&format!("{{\"@r\":{id}}}"));
                        continue;
                    }
                    let id = self.ids.len();
                    self.ids.insert(addr, id);
                    self.tracer.load_word_dep(addr.add_words(1).get());
                    let kid = self.heap.klass_of(self.reg, addr);
                    let k = self.reg.get(kid);
                    self.emit(&format!("{{\"@c\":\"{}\",\"@id\":{id}", k.name()));
                    if k.is_array() {
                        let elem = self.reg.get(kid).array_elem().expect("array");
                        self.emit(",\"e\":[");
                        stack.push(Frame::Text("]}"));
                        stack.push(Frame::Elems { addr, idx: 0, elem });
                    } else {
                        stack.push(Frame::Text("}"));
                        stack.push(Frame::Fields { addr, idx: 0, id: kid });
                    }
                }
                Frame::Fields { addr, idx, id } => {
                    let fields = self.reg.get(id).fields();
                    if idx >= fields.len() {
                        continue;
                    }
                    let f = &fields[idx];
                    self.tracer.call(); // accessor
                    self.tracer
                        .load_word_dep(addr.add_words((HEADER_WORDS + idx) as u64).get());
                    let word = self.heap.field(addr, idx);
                    self.emit(&format!(",\"{}\":", f.name));
                    let kind = f.kind;
                    stack.push(Frame::Fields { addr, idx: idx + 1, id });
                    match kind {
                        FieldKind::Value(vt) => {
                            let text = fmt_value(vt, word);
                            self.emit(&text);
                        }
                        FieldKind::Ref => stack.push(Frame::Open(Addr(word))),
                    }
                }
                Frame::Elems { addr, idx, elem } => {
                    let len = self.heap.array_len(addr);
                    if idx >= len {
                        continue;
                    }
                    if idx > 0 {
                        self.emit(",");
                    }
                    self.tracer
                        .load_word(addr.add_words((HEADER_WORDS + 1 + idx) as u64).get());
                    let word = self.heap.array_elem(addr, idx);
                    stack.push(Frame::Elems { addr, idx: idx + 1, elem });
                    match elem {
                        FieldKind::Value(vt) => {
                            let text = fmt_value(vt, word);
                            self.emit(&text);
                        }
                        FieldKind::Ref => stack.push(Frame::Open(Addr(word))),
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Parser recursion limit — real text parsers overflow or cap nesting;
/// we cap and return an error (JSBS graphs are shallow).
const MAX_DEPTH: usize = 200;

struct DeCtx<'a> {
    text: &'a [u8],
    pos: usize,
    depth: usize,
    reg: &'a KlassRegistry,
    heap: &'a mut Heap,
    by_id: HashMap<usize, Addr>,
    tracer: Tracer<'a>,
}

impl<'a> DeCtx<'a> {
    fn peek(&self) -> Option<u8> {
        self.text.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, SerError> {
        let c = self.peek().ok_or(SerError::Malformed("unexpected end of text"))?;
        self.tracer.load_bytes(IN_STREAM_BASE + self.pos as u64, 1);
        self.tracer.alu(1);
        self.tracer.branch();
        self.pos += 1;
        Ok(c)
    }

    fn expect(&mut self, s: &str) -> Result<(), SerError> {
        for &b in s.as_bytes() {
            if self.bump()? != b {
                return Err(SerError::Malformed("unexpected token"));
            }
        }
        Ok(())
    }

    fn take_until(&mut self, stops: &[u8]) -> Result<String, SerError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if stops.contains(&c) {
                let s = std::str::from_utf8(&self.text[start..self.pos])
                    .map_err(|_| SerError::Malformed("not UTF-8"))?;
                self.tracer.alu((self.pos - start) as u32);
                return Ok(s.to_string());
            }
            self.pos += 1;
        }
        Err(SerError::Malformed("unterminated token"))
    }

    fn parse_string(&mut self) -> Result<String, SerError> {
        self.expect("\"")?;
        let s = self.take_until(b"\"")?;
        self.expect("\"")?;
        self.tracer.str_compare(s.len() as u32);
        Ok(s)
    }

    /// Parses one value: an object, a back reference, or `null`.
    fn parse_ref(&mut self) -> Result<Addr, SerError> {
        self.tracer.call();
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(SerError::Malformed("nesting too deep"));
        }
        let out = match self.peek() {
            Some(b'n') => {
                self.expect("null")?;
                Ok(Addr::NULL)
            }
            Some(b'{') => self.parse_object(),
            _ => Err(SerError::Malformed("expected object or null")),
        };
        self.depth -= 1;
        out
    }

    fn parse_object(&mut self) -> Result<Addr, SerError> {
        self.expect("{")?;
        let key = self.parse_string()?;
        if key == "@r" {
            self.expect(":")?;
            let id: usize = self
                .take_until(b"}")?
                .parse()
                .map_err(|_| SerError::Malformed("bad @r id"))?;
            self.expect("}")?;
            self.tracer.hash_lookup();
            return self.by_id.get(&id).copied().ok_or(SerError::Malformed("dangling @r"));
        }
        if key != "@c" {
            return Err(SerError::Malformed("expected @c"));
        }
        self.expect(":")?;
        let name = self.parse_string()?;
        // Type resolution by string — the expensive text-class step.
        self.tracer.hash_lookup();
        self.tracer.str_compare(name.len() as u32);
        let kid = self
            .reg
            .lookup(&name)
            .ok_or(SerError::UnknownClass(name.clone()))?;
        self.expect(",\"@id\":")?;
        let id: usize = self
            .take_until(b",}")?
            .parse()
            .map_err(|_| SerError::Malformed("bad @id"))?;

        let k = self.reg.get(kid);
        if k.is_array() {
            self.expect(",\"e\":[")?;
            // Two-phase: collect element texts / sub-objects.
            let elem = k.array_elem().expect("array");
            let mut values: Vec<u64> = Vec::new();
            // Reserve the object AFTER parsing the element list head: we
            // need the length first for allocation, so buffer elements.
            // (References may recurse and allocate first — that is fine.)
            let mut first = true;
            loop {
                if self.peek() == Some(b']') {
                    self.bump()?;
                    break;
                }
                if !first {
                    self.expect(",")?;
                }
                first = false;
                match elem {
                    FieldKind::Value(vt) => {
                        let text = self.take_until(b",]")?;
                        values.push(parse_value(vt, &text)?);
                    }
                    FieldKind::Ref => {
                        let a = self.parse_ref()?;
                        values.push(a.get());
                    }
                }
            }
            self.expect("}")?;
            self.tracer.alloc((k.array_words(values.len()) * 8) as u32);
            let addr = self.heap.alloc_array(self.reg, kid, values.len())?;
            for (i, v) in values.iter().enumerate() {
                self.tracer
                    .store_word(addr.add_words((HEADER_WORDS + 1 + i) as u64).get());
                self.heap.set_array_elem(addr, i, *v);
            }
            self.by_id.insert(id, addr);
            // NOTE: cyclic references *through arrays back to this array*
            // cannot resolve in this text format (as in real JSON libs,
            // which reject such cycles); graphs in JSBS are trees + DAGs.
            Ok(addr)
        } else {
            self.tracer.alloc((k.instance_words() * 8) as u32);
            let addr = self.heap.alloc(self.reg, kid)?;
            self.by_id.insert(id, addr);
            let nfields = k.num_fields();
            for _ in 0..nfields {
                self.expect(",")?;
                let fname = self.parse_string()?;
                // Field resolution by name.
                self.tracer.str_compare(fname.len() as u32);
                let f = self
                    .reg
                    .get(kid)
                    .fields()
                    .iter()
                    .position(|f| f.name == fname)
                    .ok_or(SerError::Malformed("unknown field"))?;
                self.expect(":")?;
                let kind = self.reg.get(kid).fields()[f].kind;
                let word = match kind {
                    FieldKind::Value(vt) => {
                        let text = self.take_until(b",}")?;
                        parse_value(vt, &text)?
                    }
                    FieldKind::Ref => self.parse_ref()?.get(),
                };
                self.tracer
                    .store_word(addr.add_words((HEADER_WORDS + f) as u64).get());
                self.heap.set_field(addr, f, word);
            }
            self.expect("}")?;
            Ok(addr)
        }
    }
}

impl Serializer for JsonLike {
    fn name(&self) -> &str {
        "JsonLike"
    }

    fn serialize(
        &self,
        heap: &mut Heap,
        reg: &KlassRegistry,
        root: Addr,
        sink: &mut dyn TraceSink,
    ) -> Result<Vec<u8>, SerError> {
        let mut out = Vec::new();
        self.serialize_into(heap, reg, root, sink, &mut out)?;
        Ok(out)
    }

    fn serialize_into(
        &self,
        heap: &mut Heap,
        reg: &KlassRegistry,
        root: Addr,
        sink: &mut dyn TraceSink,
        out: &mut Vec<u8>,
    ) -> Result<usize, SerError> {
        if self.compiled_plans {
            return compiled::serialize_into(heap, reg, root, sink, out);
        }
        let mut ctx = SerCtx {
            heap,
            reg,
            out: String::new(),
            ids: HashMap::new(),
            tracer: Tracer::new(sink),
        };
        ctx.write_obj(root);
        *out = ctx.out.into_bytes();
        Ok(out.len())
    }

    fn deserialize(
        &self,
        bytes: &[u8],
        reg: &KlassRegistry,
        dst: &mut Heap,
        sink: &mut dyn TraceSink,
    ) -> Result<Addr, SerError> {
        if self.compiled_plans {
            return compiled::deserialize(bytes, reg, dst, sink);
        }
        let mut ctx = DeCtx {
            text: bytes,
            pos: 0,
            depth: 0,
            reg,
            heap: dst,
            by_id: HashMap::new(),
            tracer: Tracer::new(sink),
        };
        let root = ctx.parse_ref()?;
        Ok(root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{CountingSink, NullSink};
    use sdheap::builder::Init;
    use sdheap::{isomorphic_with, GraphBuilder, IsoOptions};

    fn dag() -> (Heap, KlassRegistry, Addr) {
        let mut b = GraphBuilder::new(1 << 18);
        let k = b.klass(
            "N",
            vec![
                FieldKind::Value(ValueType::Long),
                FieldKind::Value(ValueType::Double),
                FieldKind::Ref,
                FieldKind::Ref,
            ],
        );
        let d = b.array_klass("double[]", FieldKind::Value(ValueType::Double));
        let shared = b
            .value_array(d, &[f64::to_bits(1.5), f64::to_bits(-2.25)])
            .unwrap();
        let x = b
            .object(k, &[Init::Val(7), Init::Val(f64::to_bits(0.5)), Init::Ref(shared), Init::Null])
            .unwrap();
        let root = b
            .object(k, &[Init::Val(1), Init::Val(f64::to_bits(3.0)), Init::Ref(x), Init::Ref(shared)])
            .unwrap();
        let (heap, reg) = b.finish();
        (heap, reg, root)
    }

    #[test]
    fn roundtrips_dags_with_sharing() {
        let (mut heap, reg, root) = dag();
        let ser = JsonLike::new();
        let bytes = ser.serialize(&mut heap, &reg, root, &mut NullSink).unwrap();
        let mut dst = Heap::with_base(Addr(0x2_0000_0000), 1 << 18);
        let new_root = ser.deserialize(&bytes, &reg, &mut dst, &mut NullSink).unwrap();
        assert!(isomorphic_with(
            &heap,
            &reg,
            root,
            &dst,
            new_root,
            IsoOptions {
                check_identity_hash: false
            }
        ));
    }

    #[test]
    fn output_is_readable_text() {
        let (mut heap, reg, root) = dag();
        let bytes = JsonLike::new().serialize(&mut heap, &reg, root, &mut NullSink).unwrap();
        let text = String::from_utf8(bytes).expect("valid UTF-8");
        assert!(text.starts_with("{\"@c\":\"N\""));
        assert!(text.contains("\"f1\":3.0") || text.contains("\"f1\":3"));
        assert!(text.contains("\"@r\":"), "shared array uses a back reference");
        assert!(text.contains("1.5"));
    }

    #[test]
    fn text_is_larger_than_java_sd() {
        let (mut heap, reg, root) = dag();
        let json = JsonLike::new().serialize(&mut heap, &reg, root, &mut NullSink).unwrap();
        let kryo = crate::Kryo::new().serialize(&mut heap, &reg, root, &mut NullSink).unwrap();
        assert!(json.len() > kryo.len() * 2, "json {} vs kryo {}", json.len(), kryo.len());
    }

    #[test]
    fn parsing_is_alu_heavy() {
        let (mut heap, reg, root) = dag();
        let bytes = JsonLike::new().serialize(&mut heap, &reg, root, &mut NullSink).unwrap();
        let mut counts = CountingSink::new();
        let mut dst = Heap::with_base(Addr(0x2_0000_0000), 1 << 18);
        JsonLike::new().deserialize(&bytes, &reg, &mut dst, &mut counts).unwrap();
        assert!(
            counts.alu > bytes.len() as u64 / 2,
            "char-level parsing: {} alu for {} bytes",
            counts.alu,
            bytes.len()
        );
    }

    #[test]
    fn rejects_garbage_and_unknown_classes() {
        let reg = KlassRegistry::new();
        let mut dst = Heap::new(1 << 12);
        assert!(JsonLike::new()
            .deserialize(b"[1,2,3]", &reg, &mut dst, &mut NullSink)
            .is_err());
        assert!(matches!(
            JsonLike::new().deserialize(
                b"{\"@c\":\"Ghost\",\"@id\":0}",
                &reg,
                &mut dst,
                &mut NullSink
            ),
            Err(SerError::UnknownClass(_))
        ));
    }

    #[test]
    fn overly_deep_text_is_rejected_not_crashed() {
        let mut b = GraphBuilder::new(1 << 24);
        let k = b.klass("L", vec![FieldKind::Value(ValueType::Long), FieldKind::Ref]);
        let mut head = b.object(k, &[Init::Val(0), Init::Null]).unwrap();
        for i in 1..5_000u64 {
            head = b.object(k, &[Init::Val(i), Init::Ref(head)]).unwrap();
        }
        let (mut heap, reg) = b.finish();
        let bytes = JsonLike::new().serialize(&mut heap, &reg, head, &mut NullSink).unwrap();
        let mut dst = Heap::with_base(Addr(0x2_0000_0000), 1 << 24);
        let err = JsonLike::new()
            .deserialize(&bytes, &reg, &mut dst, &mut NullSink)
            .unwrap_err();
        assert!(matches!(err, SerError::Malformed("nesting too deep")));
    }

    #[test]
    fn deep_lists_do_not_overflow_serialization() {
        let mut b = GraphBuilder::new(1 << 22);
        let k = b.klass("L", vec![FieldKind::Value(ValueType::Long), FieldKind::Ref]);
        let mut head = b.object(k, &[Init::Val(0), Init::Null]).unwrap();
        for i in 1..20_000u64 {
            head = b.object(k, &[Init::Val(i), Init::Ref(head)]).unwrap();
        }
        let (mut heap, reg) = b.finish();
        // Serialization must not recurse (explicit stack).
        let bytes = JsonLike::new().serialize(&mut heap, &reg, head, &mut NullSink).unwrap();
        assert!(bytes.len() > 20_000 * 10);
    }
}
