//! Compiled-plan executor for [`Kryo`](super::Kryo).
//!
//! Field programs from [`crate::plan`] replace the per-object `fields()`
//! walk: primitive runs decode/encode against heap word slices, the class
//! id goes out as pre-encoded varint bytes ([`Plan::id_varint`]), and all
//! narration is batched through an [`OpBuf`]. Streams and op sequences
//! are identical to the interpretive path (golden-tested).

use super::{TAG_NEW, TAG_NULL, TAG_REF};
use crate::api::SerError;
use crate::plan::{plans_for, PlanCache, Step};
use crate::trace::{Op, OpBuf, TraceSink, IN_STREAM_BASE, OUT_STREAM_BASE};
use sdformat::varint::{read_varint, write_varint};
use sdheap::{Addr, FieldKind, Heap, KlassId, KlassRegistry, ValueType, HEADER_WORDS};
use std::collections::HashMap;
use std::rc::Rc;

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

struct CSer<'a> {
    heap: &'a Heap,
    reg: &'a KlassRegistry,
    plans: Rc<PlanCache>,
    out: Vec<u8>,
    handles: HashMap<Addr, u64>,
    next_handle: u64,
    ops: OpBuf,
}

enum SerFrame {
    Write(Addr),
    Fields { addr: Addr, step: usize, id: KlassId },
    Elems { addr: Addr, idx: usize },
}

impl<'a> CSer<'a> {
    #[inline]
    fn out_pos(&self) -> u64 {
        OUT_STREAM_BASE + self.out.len() as u64
    }

    #[inline]
    fn put(&mut self, bytes: &[u8]) {
        self.ops.store(self.out_pos(), bytes.len() as u32);
        self.out.extend_from_slice(bytes);
    }

    #[inline]
    fn put_varint(&mut self, v: u64) {
        let pos = self.out_pos();
        let n = write_varint(&mut self.out, v);
        self.ops.store(pos, n as u32);
        self.ops.push(Op::Alu(n as u32));
    }

    #[inline]
    fn put_primitive(&mut self, vt: ValueType, word: u64) {
        match vt {
            ValueType::Long | ValueType::Double => self.put(&word.to_le_bytes()),
            ValueType::Int => self.put_varint(word & 0xffff_ffff),
            ValueType::Char => self.put(&(word as u16).to_le_bytes()),
            ValueType::Byte | ValueType::Boolean => self.put(&[word as u8]),
        }
    }

    fn run(&mut self, root: Addr, sink: &mut dyn TraceSink) {
        let plans = Rc::clone(&self.plans);
        let mut stack = vec![SerFrame::Write(root)];
        while let Some(frame) = stack.pop() {
            self.ops.maybe_flush(sink);
            match frame {
                SerFrame::Write(addr) => {
                    self.ops.push(Op::Call);
                    self.ops.push(Op::Branch);
                    if addr.is_null() {
                        self.put(&[TAG_NULL]);
                        continue;
                    }
                    self.ops.push(Op::HashLookup);
                    if let Some(&h) = self.handles.get(&addr) {
                        self.put(&[TAG_REF]);
                        self.put_varint(h);
                        continue;
                    }
                    self.put(&[TAG_NEW]);
                    self.handles.insert(addr, self.next_handle);
                    self.next_handle += 1;
                    self.ops.load_word_dep(addr.add_words(1).get());
                    self.ops.push(Op::HashLookup);
                    let id = self.heap.klass_of(self.reg, addr);
                    let plan = plans.plan(id);
                    // Pre-encoded class-id varint: same Store+Alu narration.
                    self.ops.store(self.out_pos(), plan.id_varint.len() as u32);
                    self.ops.push(Op::Alu(plan.id_varint.len() as u32));
                    self.out.extend_from_slice(&plan.id_varint);
                    match plan.array_elem {
                        Some(elem) => {
                            self.ops
                                .load_word_dep(addr.add_words(HEADER_WORDS as u64).get());
                            let len = self.heap.array_len(addr);
                            self.put_varint(len as u64);
                            match elem {
                                FieldKind::Value(vt) => {
                                    let base =
                                        addr.add_words((HEADER_WORDS + 1) as u64).get();
                                    for (i, &word) in self
                                        .heap
                                        .array_words_slice(addr, 0, len)
                                        .iter()
                                        .enumerate()
                                    {
                                        self.ops.load(base + 8 * i as u64, 8);
                                        self.put_primitive(vt, word);
                                        self.ops.maybe_flush(sink);
                                    }
                                }
                                FieldKind::Ref => {
                                    stack.push(SerFrame::Elems { addr, idx: 0 })
                                }
                            }
                        }
                        None => stack.push(SerFrame::Fields { addr, step: 0, id }),
                    }
                }
                SerFrame::Fields { addr, step, id } => {
                    let plan = plans.plan(id);
                    let mut s = step;
                    'steps: while s < plan.steps.len() {
                        match plan.steps[s] {
                            Step::Run {
                                prim_start,
                                prim_len,
                                ..
                            } => {
                                let prims = &plan.prims
                                    [prim_start as usize..(prim_start + prim_len) as usize];
                                let first = prims[0].idx as usize;
                                let base =
                                    addr.add_words((HEADER_WORDS + first) as u64).get();
                                let words =
                                    self.heap.field_words(addr, first, prim_len as usize);
                                for (j, f) in prims.iter().enumerate() {
                                    self.ops.push(Op::Call);
                                    self.ops.load_word_dep(base + 8 * j as u64);
                                    let word = words[j];
                                    match f.vt {
                                        ValueType::Long | ValueType::Double => {
                                            self.ops.store(
                                                OUT_STREAM_BASE + self.out.len() as u64,
                                                8,
                                            );
                                            self.out
                                                .extend_from_slice(&word.to_le_bytes());
                                        }
                                        ValueType::Int => {
                                            let pos =
                                                OUT_STREAM_BASE + self.out.len() as u64;
                                            let n = write_varint(
                                                &mut self.out,
                                                word & 0xffff_ffff,
                                            );
                                            self.ops.store(pos, n as u32);
                                            self.ops.push(Op::Alu(n as u32));
                                        }
                                        ValueType::Char => {
                                            self.ops.store(
                                                OUT_STREAM_BASE + self.out.len() as u64,
                                                2,
                                            );
                                            self.out.extend_from_slice(
                                                &(word as u16).to_le_bytes(),
                                            );
                                        }
                                        ValueType::Byte | ValueType::Boolean => {
                                            self.ops.store(
                                                OUT_STREAM_BASE + self.out.len() as u64,
                                                1,
                                            );
                                            self.out.push(word as u8);
                                        }
                                    }
                                }
                                s += 1;
                            }
                            Step::Ref { idx, .. } => {
                                self.ops.push(Op::Call);
                                self.ops.load_word_dep(
                                    addr.add_words((HEADER_WORDS + idx as usize) as u64)
                                        .get(),
                                );
                                let word = self.heap.field(addr, idx as usize);
                                stack.push(SerFrame::Fields {
                                    addr,
                                    step: s + 1,
                                    id,
                                });
                                stack.push(SerFrame::Write(Addr(word)));
                                break 'steps;
                            }
                        }
                    }
                }
                SerFrame::Elems { addr, idx } => {
                    let len = self.heap.array_len(addr);
                    if idx < len {
                        self.ops
                            .load(addr.add_words((HEADER_WORDS + 1 + idx) as u64).get(), 8);
                        let word = self.heap.array_elem(addr, idx);
                        stack.push(SerFrame::Elems { addr, idx: idx + 1 });
                        stack.push(SerFrame::Write(Addr(word)));
                    }
                }
            }
        }
    }
}

pub(super) fn serialize_into(
    heap: &mut Heap,
    reg: &KlassRegistry,
    root: Addr,
    sink: &mut dyn TraceSink,
    out: &mut Vec<u8>,
) -> Result<usize, SerError> {
    out.clear();
    let mut ctx = CSer {
        heap,
        reg,
        plans: plans_for(reg),
        out: std::mem::take(out),
        handles: HashMap::new(),
        next_handle: 0,
        ops: OpBuf::for_sink(&*sink),
    };
    ctx.run(root, sink);
    ctx.ops.flush(sink);
    *out = ctx.out;
    Ok(out.len())
}

// ---------------------------------------------------------------------------
// Deserialization
// ---------------------------------------------------------------------------

/// Decodes one primitive, narrating exactly like the interpretive
/// `get_primitive` (bounds check before the `Load`, varint `Load`+`Alu`).
#[inline]
fn de_prim(
    bytes: &[u8],
    pos: &mut usize,
    ops: &mut OpBuf,
    vt: ValueType,
) -> Result<u64, SerError> {
    #[inline]
    fn fixed<const N: usize>(
        bytes: &[u8],
        pos: &mut usize,
        ops: &mut OpBuf,
    ) -> Result<[u8; N], SerError> {
        if *pos + N > bytes.len() {
            return Err(SerError::Malformed("truncated stream"));
        }
        ops.load(IN_STREAM_BASE + *pos as u64, N as u32);
        let s: [u8; N] = bytes[*pos..*pos + N].try_into().expect("N");
        *pos += N;
        Ok(s)
    }
    Ok(match vt {
        ValueType::Long | ValueType::Double => {
            u64::from_le_bytes(fixed::<8>(bytes, pos, ops)?)
        }
        ValueType::Int => {
            let (v, next) =
                read_varint(bytes, *pos).ok_or(SerError::Malformed("bad varint"))?;
            let n = (next - *pos) as u32;
            ops.load(IN_STREAM_BASE + *pos as u64, n);
            ops.push(Op::Alu(n));
            *pos = next;
            v
        }
        ValueType::Char => u64::from(u16::from_le_bytes(fixed::<2>(bytes, pos, ops)?)),
        ValueType::Byte | ValueType::Boolean => u64::from(fixed::<1>(bytes, pos, ops)?[0]),
    })
}

struct CDe<'a> {
    bytes: &'a [u8],
    pos: usize,
    reg: &'a KlassRegistry,
    plans: Rc<PlanCache>,
    heap: &'a mut Heap,
    handles: Vec<Addr>,
    ops: OpBuf,
}

#[derive(Clone, Copy)]
enum Dest {
    Root,
    Field(Addr, usize),
    Elem(Addr, usize),
}

enum DeFrame {
    Read(Dest),
    Fields { addr: Addr, step: usize, id: KlassId },
    Elems { addr: Addr, idx: usize },
}

impl<'a> CDe<'a> {
    #[inline]
    fn in_pos(&self) -> u64 {
        IN_STREAM_BASE + self.pos as u64
    }

    #[inline]
    fn take(&mut self, n: usize) -> Result<&'a [u8], SerError> {
        if self.pos + n > self.bytes.len() {
            return Err(SerError::Malformed("truncated stream"));
        }
        self.ops.load(self.in_pos(), n as u32);
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn get_varint(&mut self) -> Result<u64, SerError> {
        let (v, next) =
            read_varint(self.bytes, self.pos).ok_or(SerError::Malformed("bad varint"))?;
        let n = (next - self.pos) as u32;
        self.ops.load(self.in_pos(), n);
        self.ops.push(Op::Alu(n));
        self.pos = next;
        Ok(v)
    }

    fn store_dest(&mut self, dest: Dest, value: Addr) {
        match dest {
            Dest::Root => {}
            Dest::Field(addr, i) => {
                self.ops.push(Op::Call);
                self.ops
                    .store(addr.add_words((HEADER_WORDS + i) as u64).get(), 8);
                self.heap.set_ref(addr, i, value);
            }
            Dest::Elem(addr, i) => {
                self.ops
                    .store(addr.add_words((HEADER_WORDS + 1 + i) as u64).get(), 8);
                self.heap.set_array_elem(addr, i, value.get());
            }
        }
    }

    fn run(&mut self, sink: &mut dyn TraceSink) -> Result<Addr, SerError> {
        let plans = Rc::clone(&self.plans);
        let mut root = Addr::NULL;
        let mut got_root = false;
        let mut stack = vec![DeFrame::Read(Dest::Root)];
        while let Some(frame) = stack.pop() {
            self.ops.maybe_flush(sink);
            match frame {
                DeFrame::Read(dest) => {
                    self.ops.push(Op::Call);
                    self.ops.push(Op::Branch);
                    let addr = match self.take(1)?[0] {
                        TAG_NULL => Addr::NULL,
                        TAG_REF => {
                            let h = self.get_varint()? as usize;
                            self.ops.push(Op::HashLookup);
                            *self
                                .handles
                                .get(h)
                                .ok_or(SerError::Malformed("bad handle"))?
                        }
                        TAG_NEW => {
                            let raw_id = self.get_varint()? as u32;
                            self.ops.push(Op::Alu(1));
                            if raw_id as usize >= self.reg.len() {
                                return Err(SerError::UnknownClassId(raw_id));
                            }
                            let id = sdheap::KlassId(raw_id);
                            let plan = plans.plan(id);
                            let addr = match plan.array_elem {
                                Some(elem) => {
                                    let len = self.get_varint()?;
                                    if len >= self.heap.capacity_bytes() / 8 {
                                        return Err(SerError::Malformed(
                                            "array length exceeds heap",
                                        ));
                                    }
                                    let len = len as usize;
                                    let k = self.reg.get(id);
                                    self.ops
                                        .push(Op::Alloc(k.array_words(len) as u32 * 8));
                                    let addr = self.heap.alloc_array(self.reg, id, len)?;
                                    self.ops.store(addr.get(), 32);
                                    match elem {
                                        FieldKind::Value(vt) => {
                                            let base = addr
                                                .add_words((HEADER_WORDS + 1) as u64)
                                                .get();
                                            let mut pos = self.pos;
                                            let CDe {
                                                ref mut ops,
                                                ref mut heap,
                                                bytes,
                                                ..
                                            } = *self;
                                            let words =
                                                heap.array_words_slice_mut(addr, 0, len);
                                            for (i, slot) in words.iter_mut().enumerate() {
                                                let v = de_prim(bytes, &mut pos, ops, vt)?;
                                                ops.store(base + 8 * i as u64, 8);
                                                *slot = v;
                                                ops.maybe_flush(sink);
                                            }
                                            self.pos = pos;
                                        }
                                        FieldKind::Ref => {
                                            stack.push(DeFrame::Elems { addr, idx: 0 })
                                        }
                                    }
                                    addr
                                }
                                None => {
                                    self.ops.push(Op::Alloc(plan.instance_bytes));
                                    let addr = self.heap.alloc(self.reg, id)?;
                                    self.ops.store(addr.get(), 24);
                                    stack.push(DeFrame::Fields { addr, step: 0, id });
                                    addr
                                }
                            };
                            self.handles.push(addr);
                            addr
                        }
                        _ => return Err(SerError::Malformed("unknown tag")),
                    };
                    self.store_dest(dest, addr);
                    if !got_root {
                        root = addr;
                        got_root = true;
                    }
                }
                DeFrame::Fields { addr, step, id } => {
                    let plan = plans.plan(id);
                    let mut s = step;
                    'steps: while s < plan.steps.len() {
                        match plan.steps[s] {
                            Step::Run {
                                prim_start,
                                prim_len,
                                ..
                            } => {
                                let prims = &plan.prims
                                    [prim_start as usize..(prim_start + prim_len) as usize];
                                let first = prims[0].idx as usize;
                                let base =
                                    addr.add_words((HEADER_WORDS + first) as u64).get();
                                let mut pos = self.pos;
                                let CDe {
                                    ref mut ops,
                                    ref mut heap,
                                    bytes,
                                    ..
                                } = *self;
                                let words =
                                    heap.field_words_mut(addr, first, prim_len as usize);
                                for (j, f) in prims.iter().enumerate() {
                                    let v = match de_prim(bytes, &mut pos, ops, f.vt) {
                                        Ok(v) => v,
                                        Err(e) => {
                                            self.pos = pos;
                                            return Err(e);
                                        }
                                    };
                                    ops.push(Op::Call);
                                    ops.store(base + 8 * j as u64, 8);
                                    words[j] = v;
                                }
                                self.pos = pos;
                                s += 1;
                            }
                            Step::Ref { idx, .. } => {
                                stack.push(DeFrame::Fields {
                                    addr,
                                    step: s + 1,
                                    id,
                                });
                                stack
                                    .push(DeFrame::Read(Dest::Field(addr, idx as usize)));
                                break 'steps;
                            }
                        }
                    }
                }
                DeFrame::Elems { addr, idx } => {
                    let len = self.heap.array_len(addr);
                    if idx < len {
                        stack.push(DeFrame::Elems { addr, idx: idx + 1 });
                        stack.push(DeFrame::Read(Dest::Elem(addr, idx)));
                    }
                }
            }
        }
        Ok(root)
    }
}

pub(super) fn deserialize(
    bytes: &[u8],
    reg: &KlassRegistry,
    dst: &mut Heap,
    sink: &mut dyn TraceSink,
) -> Result<Addr, SerError> {
    let mut ctx = CDe {
        bytes,
        pos: 0,
        reg,
        plans: plans_for(reg),
        heap: dst,
        handles: Vec::new(),
        ops: OpBuf::for_sink(&*sink),
    };
    let result = ctx.run(sink);
    // Buffered ops reach the sink on both Ok and Err paths.
    ctx.ops.flush(sink);
    result
}
