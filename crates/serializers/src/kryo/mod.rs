//! The Kryo baseline (paper §II, Fig. 1(c)).
//!
//! Kryo's optimizations over Java S/D, all reproduced here:
//!
//! * **integer class numbering** — every manually registered class is
//!   identified by a compact varint class ID; no strings in the stream;
//! * varint encoding for lengths, handles and `int` fields; a 1 B
//!   null-check/tag byte per reference;
//! * **optimized reflection** (the ReflectAsm model): field access is a
//!   generated accessor — a plain call — rather than a string-keyed
//!   reflective lookup;
//! * reference tracking via an identity map so shared objects and cycles
//!   serialize once.
//!
//! Deserialization resolves class IDs by direct table index — no string
//! matching — which is where Kryo's large deserialization speedup over
//! Java S/D comes from (paper Fig. 10).

use crate::api::{SerError, Serializer};
use crate::trace::{TraceSink, Tracer, IN_STREAM_BASE, OUT_STREAM_BASE};
use sdformat::varint::{read_varint, write_varint};
use sdheap::{Addr, FieldKind, Heap, KlassId, KlassRegistry, ValueType, HEADER_WORDS};
use std::collections::HashMap;

mod compiled;

const TAG_NULL: u8 = 0;
const TAG_NEW: u8 = 1;
const TAG_REF: u8 = 2;

/// The Kryo serializer baseline.
///
/// Requires all serialized classes to be present in the shared
/// [`KlassRegistry`] — the registry *is* the manual type registration the
/// real Kryo demands ("the same type registry must be used for
/// deserialization").
#[derive(Clone, Copy, Debug)]
pub struct Kryo {
    /// Execute per-klass compiled field programs (`crate::plan`) instead
    /// of walking `fields()` per object. Streams and traces are identical
    /// either way; only host wall-clock changes.
    compiled_plans: bool,
}

impl Kryo {
    /// A new instance with the process-wide default plan mode
    /// (`CEREAL_COMPILED_PLANS`).
    pub fn new() -> Self {
        Kryo {
            compiled_plans: crate::plan::compiled_plans_default(),
        }
    }

    /// An instance that always walks `fields()` interpretively.
    pub fn interpretive() -> Self {
        Kryo {
            compiled_plans: false,
        }
    }

    /// An instance with an explicit plan mode.
    pub fn with_compiled_plans(compiled_plans: bool) -> Self {
        Kryo { compiled_plans }
    }
}

impl Default for Kryo {
    fn default() -> Self {
        Kryo::new()
    }
}

struct SerCtx<'a> {
    heap: &'a Heap,
    reg: &'a KlassRegistry,
    out: Vec<u8>,
    handles: HashMap<Addr, u64>,
    next_handle: u64,
    tracer: Tracer<'a>,
}

enum SerFrame {
    Write(Addr),
    /// The klass id resolved at dispatch rides along so resumes skip the
    /// klass/registry lookups.
    Fields { addr: Addr, idx: usize, id: KlassId },
    Elems { addr: Addr, idx: usize },
}

impl<'a> SerCtx<'a> {
    fn out_pos(&self) -> u64 {
        OUT_STREAM_BASE + self.out.len() as u64
    }

    fn put(&mut self, bytes: &[u8]) {
        self.tracer.store_bytes(self.out_pos(), bytes.len() as u32);
        self.out.extend_from_slice(bytes);
    }

    fn put_varint(&mut self, v: u64) {
        let pos = self.out_pos();
        let n = write_varint(&mut self.out, v);
        self.tracer.store_bytes(pos, n as u32);
        self.tracer.alu(n as u32); // shift/mask loop
    }

    fn put_primitive(&mut self, vt: ValueType, word: u64) {
        match vt {
            ValueType::Long | ValueType::Double => self.put(&word.to_le_bytes()),
            ValueType::Int => self.put_varint(word & 0xffff_ffff),
            ValueType::Char => self.put(&(word as u16).to_le_bytes()),
            ValueType::Byte | ValueType::Boolean => self.put(&[word as u8]),
        }
    }

    fn run(&mut self, root: Addr) {
        let mut stack = vec![SerFrame::Write(root)];
        while let Some(frame) = stack.pop() {
            match frame {
                SerFrame::Write(addr) => {
                    self.tracer.call();
                    self.tracer.branch();
                    if addr.is_null() {
                        self.put(&[TAG_NULL]);
                        continue;
                    }
                    self.tracer.hash_lookup(); // reference resolver
                    if let Some(&h) = self.handles.get(&addr) {
                        self.put(&[TAG_REF]);
                        self.put_varint(h);
                        continue;
                    }
                    self.put(&[TAG_NEW]);
                    self.handles.insert(addr, self.next_handle);
                    self.next_handle += 1;
                    // Class ID: one map probe on the serializer side.
                    self.tracer.load_word_dep(addr.add_words(1).get());
                    self.tracer.hash_lookup();
                    let id = self.heap.klass_of(self.reg, addr);
                    self.put_varint(u64::from(id.get()));
                    let k = self.reg.get(id);
                    if k.is_array() {
                        self.tracer
                            .load_word_dep(addr.add_words(HEADER_WORDS as u64).get());
                        let len = self.heap.array_len(addr);
                        self.put_varint(len as u64);
                        match k.array_elem().expect("array klass") {
                            FieldKind::Value(vt) => {
                                for i in 0..len {
                                    self.tracer.load_word(
                                        addr.add_words((HEADER_WORDS + 1 + i) as u64).get(),
                                    );
                                    let w = self.heap.array_elem(addr, i);
                                    self.put_primitive(vt, w);
                                }
                            }
                            FieldKind::Ref => stack.push(SerFrame::Elems { addr, idx: 0 }),
                        }
                    } else {
                        stack.push(SerFrame::Fields { addr, idx: 0, id });
                    }
                }
                SerFrame::Fields { addr, idx, id } => {
                    let reg: &'a KlassRegistry = self.reg;
                    let fields = reg.get(id).fields();
                    let mut i = idx;
                    while i < fields.len() {
                        // Generated accessor: a plain call, not reflection.
                        self.tracer.call();
                        self.tracer
                            .load_word_dep(addr.add_words((HEADER_WORDS + i) as u64).get());
                        let word = self.heap.field(addr, i);
                        match fields[i].kind {
                            FieldKind::Value(vt) => {
                                self.put_primitive(vt, word);
                                i += 1;
                            }
                            FieldKind::Ref => {
                                stack.push(SerFrame::Fields { addr, idx: i + 1, id });
                                stack.push(SerFrame::Write(Addr(word)));
                                break;
                            }
                        }
                    }
                }
                SerFrame::Elems { addr, idx } => {
                    let len = self.heap.array_len(addr);
                    if idx < len {
                        self.tracer
                            .load_word(addr.add_words((HEADER_WORDS + 1 + idx) as u64).get());
                        let word = self.heap.array_elem(addr, idx);
                        stack.push(SerFrame::Elems { addr, idx: idx + 1 });
                        stack.push(SerFrame::Write(Addr(word)));
                    }
                }
            }
        }
    }
}

struct DeCtx<'a> {
    bytes: &'a [u8],
    pos: usize,
    reg: &'a KlassRegistry,
    heap: &'a mut Heap,
    handles: Vec<Addr>,
    tracer: Tracer<'a>,
}

#[derive(Clone, Copy)]
enum Dest {
    Root,
    Field(Addr, usize),
    Elem(Addr, usize),
}

enum DeFrame {
    Read(Dest),
    /// The klass id resolved at allocation rides along so resumes skip
    /// the klass/registry lookups.
    Fields { addr: Addr, idx: usize, id: KlassId },
    Elems { addr: Addr, idx: usize },
}

impl<'a> DeCtx<'a> {
    fn in_pos(&self) -> u64 {
        IN_STREAM_BASE + self.pos as u64
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SerError> {
        if self.pos + n > self.bytes.len() {
            return Err(SerError::Malformed("truncated stream"));
        }
        self.tracer.load_bytes(self.in_pos(), n as u32);
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn get_varint(&mut self) -> Result<u64, SerError> {
        let (v, next) =
            read_varint(self.bytes, self.pos).ok_or(SerError::Malformed("bad varint"))?;
        self.tracer
            .load_bytes(self.in_pos(), (next - self.pos) as u32);
        self.tracer.alu((next - self.pos) as u32);
        self.pos = next;
        Ok(v)
    }

    fn get_primitive(&mut self, vt: ValueType) -> Result<u64, SerError> {
        Ok(match vt {
            ValueType::Long | ValueType::Double => {
                u64::from_le_bytes(self.take(8)?.try_into().expect("8"))
            }
            ValueType::Int => self.get_varint()?,
            ValueType::Char => u64::from(u16::from_le_bytes(
                self.take(2)?.try_into().expect("2"),
            )),
            ValueType::Byte | ValueType::Boolean => u64::from(self.take(1)?[0]),
        })
    }

    fn store_dest(&mut self, dest: Dest, value: Addr) {
        match dest {
            Dest::Root => {}
            Dest::Field(addr, i) => {
                self.tracer.call(); // generated setter
                self.tracer
                    .store_word(addr.add_words((HEADER_WORDS + i) as u64).get());
                self.heap.set_ref(addr, i, value);
            }
            Dest::Elem(addr, i) => {
                self.tracer
                    .store_word(addr.add_words((HEADER_WORDS + 1 + i) as u64).get());
                self.heap.set_array_elem(addr, i, value.get());
            }
        }
    }

    fn run(&mut self) -> Result<Addr, SerError> {
        let mut root = Addr::NULL;
        let mut got_root = false;
        let mut stack = vec![DeFrame::Read(Dest::Root)];
        while let Some(frame) = stack.pop() {
            match frame {
                DeFrame::Read(dest) => {
                    self.tracer.call();
                    self.tracer.branch();
                    let addr = match self.take(1)?[0] {
                        TAG_NULL => Addr::NULL,
                        TAG_REF => {
                            let h = self.get_varint()? as usize;
                            self.tracer.hash_lookup();
                            *self
                                .handles
                                .get(h)
                                .ok_or(SerError::Malformed("bad handle"))?
                        }
                        TAG_NEW => {
                            let raw_id = self.get_varint()? as u32;
                            // Class resolution: direct table index.
                            self.tracer.alu(1);
                            if raw_id as usize >= self.reg.len() {
                                return Err(SerError::UnknownClassId(raw_id));
                            }
                            let id = sdheap::KlassId(raw_id);
                            let k = self.reg.get(id);
                            let addr = if k.is_array() {
                                let len = self.get_varint()?;
                                if len >= self.heap.capacity_bytes() / 8 {
                                    return Err(SerError::Malformed("array length exceeds heap"));
                                }
                                let len = len as usize;
                                self.tracer.alloc(k.array_words(len) as u32 * 8);
                                let addr = self.heap.alloc_array(self.reg, id, len)?;
                                self.tracer.store_bytes(addr.get(), 32); // header + length init
                                match k.array_elem().expect("array klass") {
                                    FieldKind::Value(vt) => {
                                        for i in 0..len {
                                            let w = self.get_primitive(vt)?;
                                            self.tracer.store_word(
                                                addr.add_words((HEADER_WORDS + 1 + i) as u64)
                                                    .get(),
                                            );
                                            self.heap.set_array_elem(addr, i, w);
                                        }
                                    }
                                    FieldKind::Ref => {
                                        stack.push(DeFrame::Elems { addr, idx: 0 })
                                    }
                                }
                                addr
                            } else {
                                self.tracer.alloc(k.instance_words() as u32 * 8);
                                let addr = self.heap.alloc(self.reg, id)?;
                                self.tracer.store_bytes(addr.get(), 24); // header init
                                stack.push(DeFrame::Fields { addr, idx: 0, id });
                                addr
                            };
                            self.handles.push(addr);
                            addr
                        }
                        _ => return Err(SerError::Malformed("unknown tag")),
                    };
                    self.store_dest(dest, addr);
                    if !got_root {
                        root = addr;
                        got_root = true;
                    }
                }
                DeFrame::Fields { addr, idx, id } => {
                    let reg: &'a KlassRegistry = self.reg;
                    let fields = reg.get(id).fields();
                    let mut i = idx;
                    while i < fields.len() {
                        match fields[i].kind {
                            FieldKind::Value(vt) => {
                                let w = self.get_primitive(vt)?;
                                self.tracer.call(); // generated setter
                                self.tracer
                                    .store_word(addr.add_words((HEADER_WORDS + i) as u64).get());
                                self.heap.set_field(addr, i, w);
                                i += 1;
                            }
                            FieldKind::Ref => {
                                stack.push(DeFrame::Fields { addr, idx: i + 1, id });
                                stack.push(DeFrame::Read(Dest::Field(addr, i)));
                                break;
                            }
                        }
                    }
                }
                DeFrame::Elems { addr, idx } => {
                    let len = self.heap.array_len(addr);
                    if idx < len {
                        stack.push(DeFrame::Elems { addr, idx: idx + 1 });
                        stack.push(DeFrame::Read(Dest::Elem(addr, idx)));
                    }
                }
            }
        }
        Ok(root)
    }
}

impl Serializer for Kryo {
    fn name(&self) -> &str {
        "Kryo"
    }

    fn serialize(
        &self,
        heap: &mut Heap,
        reg: &KlassRegistry,
        root: Addr,
        sink: &mut dyn TraceSink,
    ) -> Result<Vec<u8>, SerError> {
        let mut out = Vec::new();
        self.serialize_into(heap, reg, root, sink, &mut out)?;
        Ok(out)
    }

    fn serialize_into(
        &self,
        heap: &mut Heap,
        reg: &KlassRegistry,
        root: Addr,
        sink: &mut dyn TraceSink,
        out: &mut Vec<u8>,
    ) -> Result<usize, SerError> {
        if self.compiled_plans {
            return compiled::serialize_into(heap, reg, root, sink, out);
        }
        out.clear();
        let mut ctx = SerCtx {
            heap,
            reg,
            out: std::mem::take(out),
            handles: HashMap::new(),
            next_handle: 0,
            tracer: Tracer::new(sink),
        };
        ctx.run(root);
        *out = ctx.out;
        Ok(out.len())
    }

    fn deserialize(
        &self,
        bytes: &[u8],
        reg: &KlassRegistry,
        dst: &mut Heap,
        sink: &mut dyn TraceSink,
    ) -> Result<Addr, SerError> {
        if self.compiled_plans {
            return compiled::deserialize(bytes, reg, dst, sink);
        }
        let mut ctx = DeCtx {
            bytes,
            pos: 0,
            reg,
            heap: dst,
            handles: Vec::new(),
            tracer: Tracer::new(sink),
        };
        ctx.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::javasd::JavaSd;
    use crate::trace::{CountingSink, NullSink};
    use sdheap::builder::Init;
    use sdheap::{isomorphic_with, GraphBuilder, IsoOptions};

    fn roundtrip(heap: &mut Heap, reg: &KlassRegistry, root: Addr) -> (Heap, Addr) {
        let ser = Kryo::new();
        let bytes = ser.serialize(heap, reg, root, &mut NullSink).unwrap();
        let mut dst = Heap::with_base(Addr(0x2_0000_0000), heap.capacity_bytes());
        let new_root = ser.deserialize(&bytes, reg, &mut dst, &mut NullSink).unwrap();
        (dst, new_root)
    }

    fn assert_iso(heap: &Heap, reg: &KlassRegistry, a: Addr, dst: &Heap, b: Addr) {
        assert!(isomorphic_with(
            heap,
            reg,
            a,
            dst,
            b,
            IsoOptions {
                check_identity_hash: false
            }
        ));
    }

    fn diamond() -> (Heap, KlassRegistry, Addr) {
        let mut b = GraphBuilder::new(1 << 16);
        let k = b.klass(
            "N",
            vec![FieldKind::Value(ValueType::Long), FieldKind::Ref, FieldKind::Ref],
        );
        let c = b.object(k, &[Init::Val(3), Init::Null, Init::Null]).unwrap();
        let x = b.object(k, &[Init::Val(2), Init::Ref(c), Init::Null]).unwrap();
        let a = b.object(k, &[Init::Val(1), Init::Ref(x), Init::Ref(c)]).unwrap();
        let (heap, reg) = b.finish();
        (heap, reg, a)
    }

    #[test]
    fn roundtrips_shared_graph() {
        let (mut heap, reg, a) = diamond();
        let (dst, root) = roundtrip(&mut heap, &reg, a);
        assert_iso(&heap, &reg, a, &dst, root);
    }

    #[test]
    fn roundtrips_cycle() {
        let mut b = GraphBuilder::new(1 << 16);
        let k = b.klass("C", vec![FieldKind::Ref]);
        let x = b.object(k, &[Init::Null]).unwrap();
        let y = b.object(k, &[Init::Ref(x)]).unwrap();
        b.link(x, 0, y);
        let (mut heap, reg) = b.finish();
        let (dst, root) = roundtrip(&mut heap, &reg, x);
        assert_iso(&heap, &reg, x, &dst, root);
    }

    #[test]
    fn roundtrips_primitive_widths() {
        let mut b = GraphBuilder::new(1 << 16);
        let k = b.klass(
            "W",
            vec![
                FieldKind::Value(ValueType::Long),
                FieldKind::Value(ValueType::Double),
                FieldKind::Value(ValueType::Int),
                FieldKind::Value(ValueType::Char),
                FieldKind::Value(ValueType::Byte),
                FieldKind::Value(ValueType::Boolean),
            ],
        );
        let o = b
            .object(
                k,
                &[
                    Init::Val(u64::MAX),
                    Init::Val(f64::to_bits(3.125)),
                    Init::Val(0xffff_ffff),
                    Init::Val(0xbeef),
                    Init::Val(0x7f),
                    Init::Val(1),
                ],
            )
            .unwrap();
        let (mut heap, reg) = b.finish();
        let (dst, root) = roundtrip(&mut heap, &reg, o);
        assert_iso(&heap, &reg, o, &dst, root);
    }

    #[test]
    fn roundtrips_deep_list() {
        let mut b = GraphBuilder::new(1 << 24);
        let k = b.klass("L", vec![FieldKind::Value(ValueType::Int), FieldKind::Ref]);
        let mut head = b.object(k, &[Init::Val(0), Init::Null]).unwrap();
        for i in 1..50_000u64 {
            head = b.object(k, &[Init::Val(i & 0xffff_ffff), Init::Ref(head)]).unwrap();
        }
        let (mut heap, reg) = b.finish();
        let (dst, root) = roundtrip(&mut heap, &reg, head);
        assert_iso(&heap, &reg, head, &dst, root);
    }

    #[test]
    fn stream_is_much_smaller_than_javasd() {
        let (mut heap, reg, a) = diamond();
        let kryo_bytes = Kryo::new().serialize(&mut heap, &reg, a, &mut NullSink).unwrap();
        let java_bytes = JavaSd::new().serialize(&mut heap, &reg, a, &mut NullSink).unwrap();
        assert!(
            kryo_bytes.len() * 2 < java_bytes.len(),
            "kryo {} vs java {}",
            kryo_bytes.len(),
            java_bytes.len()
        );
        // And no class-name strings anywhere.
        assert!(!String::from_utf8_lossy(&kryo_bytes).contains('N'));
    }

    #[test]
    fn no_reflection_in_trace() {
        let (mut heap, reg, a) = diamond();
        let mut ser_counts = CountingSink::new();
        let bytes = Kryo::new().serialize(&mut heap, &reg, a, &mut ser_counts).unwrap();
        assert_eq!(ser_counts.reflect_calls, 0);
        assert_eq!(ser_counts.str_compare_bytes, 0);
        let mut de_counts = CountingSink::new();
        let mut dst = Heap::with_base(Addr(0x2_0000_0000), 1 << 16);
        Kryo::new().deserialize(&bytes, &reg, &mut dst, &mut de_counts).unwrap();
        assert_eq!(de_counts.reflect_calls, 0);
        assert_eq!(de_counts.str_compare_bytes, 0);
    }

    #[test]
    fn unknown_class_id_rejected() {
        let (mut heap, reg, a) = diamond();
        let bytes = Kryo::new().serialize(&mut heap, &reg, a, &mut NullSink).unwrap();
        let empty = KlassRegistry::new();
        let mut dst = Heap::new(1 << 12);
        let err = Kryo::new().deserialize(&bytes, &empty, &mut dst, &mut NullSink).unwrap_err();
        assert!(matches!(err, SerError::UnknownClassId(_)));
    }

    #[test]
    fn truncated_stream_rejected() {
        let (mut heap, reg, a) = diamond();
        let bytes = Kryo::new().serialize(&mut heap, &reg, a, &mut NullSink).unwrap();
        let mut dst = Heap::new(1 << 16);
        let err = Kryo::new()
            .deserialize(&bytes[..bytes.len() - 3], &reg, &mut dst, &mut NullSink)
            .unwrap_err();
        assert!(matches!(err, SerError::Malformed(_)));
    }
}
