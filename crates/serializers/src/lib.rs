//! `serializers` — functional, trace-instrumented software serializer
//! baselines over the `sdheap` object model.
//!
//! The Cereal paper compares against three software serializers, all
//! re-implemented here from their descriptions in §II:
//!
//! | Baseline | Type metadata | Field access | Stream body |
//! |---|---|---|---|
//! | [`JavaSd`] | class/field **name strings** | `java.lang.reflect` model | per-field, big-endian |
//! | [`Kryo`] | registered integer **class IDs** | generated accessors | varints + fixed widths |
//! | [`Skyway`] | automatic integer type IDs | none — raw copy | whole objects, relative refs |
//! | [`JsonLike`] | class/field names **as text** | text formatting/parsing | human-readable JSON |
//! | [`ProtoLike`] | schema tags (codegen) | inlined generated code | zigzag varints |
//! | [`Archive`] | integer klass tags | none — validate in place | relative-offset records, zero-copy reads |
//!
//! All three implement the common [`Serializer`] trait, really produce and
//! parse bytes (every graph round-trips through
//! [`sdheap::isomorphic_with`]), and narrate the work a CPU would perform
//! into a [`TraceSink`] that the `sim` crate turns into cycles, cache
//! misses and DRAM bandwidth.
//!
//! # Example
//!
//! ```
//! use sdheap::{GraphBuilder, FieldKind, ValueType, Heap, Addr};
//! use sdheap::builder::Init;
//! use serializers::{Kryo, Serializer, NullSink};
//!
//! let mut b = GraphBuilder::new(1 << 16);
//! let k = b.klass("Pair", vec![FieldKind::Value(ValueType::Long), FieldKind::Ref]);
//! let inner = b.object(k, &[Init::Val(2), Init::Null])?;
//! let outer = b.object(k, &[Init::Val(1), Init::Ref(inner)])?;
//! let (mut heap, reg) = b.finish();
//!
//! let kryo = Kryo::new();
//! let mut sink = NullSink;
//! let bytes = kryo.serialize(&mut heap, &reg, outer, &mut sink)?;
//! let mut dst = Heap::with_base(Addr(0x2_0000_0000), 1 << 16);
//! let root = kryo.deserialize(&bytes, &reg, &mut dst, &mut sink)?;
//! assert_eq!(dst.field(root, 0), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod api;
pub mod archive;
pub mod javasd;
pub mod jsonlike;
pub mod kryo;
pub mod plan;
pub mod protolike;
pub mod skyway;
pub mod trace;

pub use api::{SerError, Serializer};
pub use archive::{fold_words_heap, Archive, ArchiveError, ArchiveView};
pub use plan::{Plan, PlanCache};
pub use javasd::JavaSd;
pub use jsonlike::JsonLike;
pub use kryo::Kryo;
pub use protolike::ProtoLike;
pub use skyway::Skyway;
pub use trace::{
    BufferedSink, CountingSink, NullSink, Op, OpBuf, TraceSink, Tracer, IN_STREAM_BASE,
    OUT_STREAM_BASE,
};
