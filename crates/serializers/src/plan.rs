//! Per-klass compiled serialization plans.
//!
//! The paper's core observation is that software serializers spend most of
//! their time *re-interpreting* type metadata: every object walk re-fetches
//! `fields()`, re-matches each field's kind, and re-derives widths, names
//! and wire tags that never change for a given klass. Cereal's SU/DU
//! pipelines resolve a layout once and then stream flat copy work; this
//! module gives the software backends the same shape in software.
//!
//! [`PlanCache::compile`] lowers every klass in a registry into a flat
//! field *program* ([`Plan`]): maximal primitive copy runs ([`Step::Run`],
//! built on [`sdheap::Klass::prim_runs`]), an ordered reference-slot list
//! ([`Step::Ref`]), and pre-resolved metadata — instance size, wire-id
//! varint bytes, JSON header/field-prefix strings, per-field stream widths.
//! The javasd/kryo/protolike/jsonlike backends execute these programs with
//! tight run interpreters (their `compiled` submodules) instead of walking
//! `fields()` per object.
//!
//! Compiled execution is a host-side optimization only: the byte streams
//! and the narrated [`crate::Op`] sequences are identical to the
//! interpretive paths (golden-tested per backend), so every simulated
//! metric — and therefore every downstream report — is unchanged.

use crate::trace::Op;
use sdheap::{FieldKind, KlassId, KlassRegistry, ValueType};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::OnceLock;

/// One primitive field inside a copy run, with everything the executors
/// need pre-resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrimField {
    /// Declared field index.
    pub idx: u32,
    /// Primitive type.
    pub vt: ValueType,
    /// Field-name length in bytes (reflection/string narration).
    pub name_len: u32,
    /// Big-endian byte width in the Java S/D stream.
    pub java_width: u32,
}

/// One step of a klass's field program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// A maximal run of adjacent primitive fields:
    /// `prims[prim_start..prim_start + prim_len]`.
    Run {
        /// First entry in [`Plan::prims`].
        prim_start: u32,
        /// Number of fields in the run.
        prim_len: u32,
        /// Total Java S/D stream bytes of the run (widths are static).
        java_bytes: u32,
        /// Total Kryo stream bytes if every field in the run is
        /// fixed-width under Kryo (no `Int` varints); 0 otherwise.
        kryo_fixed_bytes: u32,
        /// Total ProtoLike stream bytes if every field is fixed-width
        /// under ProtoLike (no `Long`/`Int` varints); 0 otherwise.
        proto_fixed_bytes: u32,
    },
    /// A reference slot at declared field `idx`.
    Ref {
        /// Declared field index.
        idx: u32,
        /// Field-name length in bytes.
        name_len: u32,
    },
}

/// The compiled program for one klass.
#[derive(Clone, Debug)]
pub struct Plan {
    /// The klass this plan was compiled from.
    pub id: KlassId,
    /// Class-name length in bytes.
    pub name_len: u32,
    /// `Some(elem)` for array klasses.
    pub array_elem: Option<FieldKind>,
    /// Declared field count (0 for arrays).
    pub num_fields: u32,
    /// Instance size in bytes, header included (0 for arrays).
    pub instance_bytes: u32,
    /// The field program, in declaration order.
    pub steps: Vec<Step>,
    /// Primitive fields referenced by [`Step::Run`], in declaration order.
    pub prims: Vec<PrimField>,
    /// Declared indices of reference slots, in declaration order.
    pub ref_slots: Vec<u32>,
    /// Per-field kinds in declaration order (fallback paths).
    pub kinds: Vec<FieldKind>,
    /// The klass id as wire varint bytes (Kryo/ProtoLike class tag).
    pub id_varint: Vec<u8>,
    /// Field names as bytes, in declaration order (JSON field matching).
    pub field_names: Vec<Box<[u8]>>,
    /// JSON object header up to the id digits: `{"@c":"Name","@id":`.
    pub json_header: Box<[u8]>,
    /// JSON per-field prefixes: `,"name":`, in declaration order.
    pub json_prefixes: Vec<Box<[u8]>>,
}

/// Byte width of a primitive in the Java S/D stream (mirrors
/// `javasd::prim_width`).
fn java_width(vt: ValueType) -> u32 {
    match vt {
        ValueType::Long | ValueType::Double => 8,
        ValueType::Int => 4,
        ValueType::Char => 2,
        ValueType::Byte | ValueType::Boolean => 1,
    }
}

/// Fixed Kryo stream width, or `None` for varint-encoded fields.
fn kryo_fixed_width(vt: ValueType) -> Option<u32> {
    match vt {
        ValueType::Long | ValueType::Double => Some(8),
        ValueType::Int => None,
        ValueType::Char => Some(2),
        ValueType::Byte | ValueType::Boolean => Some(1),
    }
}

/// Fixed ProtoLike stream width, or `None` for varint-encoded fields.
fn proto_fixed_width(vt: ValueType) -> Option<u32> {
    match vt {
        ValueType::Double => Some(8),
        ValueType::Long | ValueType::Int => None,
        ValueType::Char => Some(2),
        ValueType::Byte | ValueType::Boolean => Some(1),
    }
}

impl Plan {
    fn compile(id: KlassId, k: &sdheap::Klass) -> Plan {
        let fields = k.fields();
        let kinds: Vec<FieldKind> = fields.iter().map(|f| f.kind).collect();
        let mut prims = Vec::new();
        let mut steps = Vec::new();
        let runs = k.prim_runs();
        let mut next_run = runs.iter().copied().peekable();
        let mut i = 0usize;
        while i < fields.len() {
            if let Some(&(start, len)) = next_run.peek() {
                if start == i {
                    next_run.next();
                    let prim_start = prims.len() as u32;
                    let mut java_bytes = 0u32;
                    let mut kryo_fixed = Some(0u32);
                    let mut proto_fixed = Some(0u32);
                    for (j, f) in fields[start..start + len].iter().enumerate() {
                        let FieldKind::Value(vt) = f.kind else {
                            unreachable!("prim_runs returned a ref slot");
                        };
                        let w = java_width(vt);
                        java_bytes += w;
                        kryo_fixed = match (kryo_fixed, kryo_fixed_width(vt)) {
                            (Some(a), Some(b)) => Some(a + b),
                            _ => None,
                        };
                        proto_fixed = match (proto_fixed, proto_fixed_width(vt)) {
                            (Some(a), Some(b)) => Some(a + b),
                            _ => None,
                        };
                        prims.push(PrimField {
                            idx: (start + j) as u32,
                            vt,
                            name_len: f.name.len() as u32,
                            java_width: w,
                        });
                    }
                    steps.push(Step::Run {
                        prim_start,
                        prim_len: len as u32,
                        java_bytes,
                        kryo_fixed_bytes: kryo_fixed.unwrap_or(0),
                        proto_fixed_bytes: proto_fixed.unwrap_or(0),
                    });
                    i = start + len;
                    continue;
                }
            }
            debug_assert!(fields[i].kind.is_ref());
            steps.push(Step::Ref {
                idx: i as u32,
                name_len: fields[i].name.len() as u32,
            });
            i += 1;
        }

        let ref_slots: Vec<u32> = kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| k.is_ref())
            .map(|(i, _)| i as u32)
            .collect();

        let mut id_varint = Vec::new();
        sdformat::varint::write_varint(&mut id_varint, u64::from(id.get()));

        let field_names: Vec<Box<[u8]>> = fields
            .iter()
            .map(|f| f.name.as_bytes().to_vec().into_boxed_slice())
            .collect();
        let json_prefixes: Vec<Box<[u8]>> = fields
            .iter()
            .map(|f| format!(",\"{}\":", f.name).into_bytes().into_boxed_slice())
            .collect();
        let json_header = format!("{{\"@c\":\"{}\",\"@id\":", k.name())
            .into_bytes()
            .into_boxed_slice();

        Plan {
            id,
            name_len: k.name().len() as u32,
            array_elem: k.array_elem(),
            num_fields: fields.len() as u32,
            instance_bytes: if k.is_array() {
                0
            } else {
                (k.instance_words() * 8) as u32
            },
            steps,
            prims,
            ref_slots,
            kinds,
            id_varint,
            field_names,
            json_header,
            json_prefixes,
        }
    }

    /// `true` for array klasses.
    pub fn is_array(&self) -> bool {
        self.array_elem.is_some()
    }
}

/// All plans of one registry, indexed by klass id.
#[derive(Clone, Debug, Default)]
pub struct PlanCache {
    plans: Vec<Plan>,
}

impl PlanCache {
    /// Compiles every klass of `reg` into its field program.
    pub fn compile(reg: &KlassRegistry) -> PlanCache {
        PlanCache {
            plans: reg.iter().map(|(id, k)| Plan::compile(id, k)).collect(),
        }
    }

    /// The plan for `id`.
    ///
    /// # Panics
    /// Panics if `id` was not part of the compiled registry.
    #[inline]
    pub fn plan(&self, id: KlassId) -> &Plan {
        &self.plans[id.get() as usize]
    }

    /// Number of compiled plans.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// `true` when no plan is compiled.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }
}

/// FNV-1a fingerprint of a registry's layout-relevant content. Two
/// registries with the same fingerprint compile to the same plans.
fn registry_fingerprint(reg: &KlassRegistry) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x1000_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    };
    let kind_byte = |k: FieldKind| match k {
        FieldKind::Ref => 0u8,
        FieldKind::Value(vt) => vt.signature() as u8,
    };
    for b in (reg.len() as u64).to_le_bytes() {
        eat(b);
    }
    for (_, k) in reg.iter() {
        for &b in k.name().as_bytes() {
            eat(b);
        }
        eat(0xff);
        match k.array_elem() {
            Some(elem) => {
                eat(b'[');
                eat(kind_byte(elem));
            }
            None => {
                for f in k.fields() {
                    for &b in f.name.as_bytes() {
                        eat(b);
                    }
                    eat(0xfe);
                    eat(kind_byte(f.kind));
                }
            }
        }
        eat(0xfd);
    }
    h
}

thread_local! {
    /// Registry fingerprint → compiled plans. Registries per process are
    /// few, so a small linear-probed vec beats a hash map here.
    static PLAN_MEMO: RefCell<Vec<(u64, Rc<PlanCache>)>> = const { RefCell::new(Vec::new()) };
}

/// The compiled plans for `reg`, memoized per thread by registry
/// fingerprint: repeated serializer calls over the same registry reuse one
/// compilation, mirroring the paper's "resolve the layout once" step.
pub fn plans_for(reg: &KlassRegistry) -> Rc<PlanCache> {
    let fp = registry_fingerprint(reg);
    PLAN_MEMO.with(|memo| {
        let mut memo = memo.borrow_mut();
        if let Some((_, cache)) = memo.iter().find(|(f, _)| *f == fp) {
            return Rc::clone(cache);
        }
        let cache = Rc::new(PlanCache::compile(reg));
        // Bound the memo: registries churn in tests; keep the newest few.
        if memo.len() >= 32 {
            memo.remove(0);
        }
        memo.push((fp, Rc::clone(&cache)));
        cache
    })
}

/// Whether compiled plans are on by default, from `CEREAL_COMPILED_PLANS`
/// (unset / anything but `0`, `off`, `false` → on). Read once per process.
pub fn compiled_plans_default() -> bool {
    static DEFAULT: OnceLock<bool> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        !matches!(
            std::env::var("CEREAL_COMPILED_PLANS").as_deref(),
            Ok("0") | Ok("off") | Ok("false")
        )
    })
}

/// Writes the decimal digits of `v` into `buf` and returns the slice —
/// the allocation-free integer formatting the JSON executor uses.
#[inline]
pub fn decimal(v: u64, buf: &mut [u8; 20]) -> &[u8] {
    let mut i = buf.len();
    let mut v = v;
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    &buf[i..]
}

/// The op an interpretive `put`/`take` would narrate for a stream access —
/// kept here so executors share one spelling.
#[inline]
pub fn stream_store(pos: u64, bytes: u32) -> Op {
    Op::Store { addr: pos, bytes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdheap::Klass;

    fn plan_of(kinds: Vec<FieldKind>) -> Plan {
        let mut reg = KlassRegistry::new();
        let id = reg.register(Klass::new("K", kinds));
        PlanCache::compile(&reg).plan(id).clone()
    }

    #[test]
    fn compiler_coalesces_adjacent_prims_into_single_runs() {
        let p = plan_of(vec![
            FieldKind::Value(ValueType::Long),
            FieldKind::Value(ValueType::Int),
            FieldKind::Value(ValueType::Byte),
            FieldKind::Ref,
            FieldKind::Value(ValueType::Double),
        ]);
        assert_eq!(p.steps.len(), 3, "run, ref, run: {:?}", p.steps);
        let Step::Run {
            prim_start,
            prim_len,
            java_bytes,
            kryo_fixed_bytes,
            proto_fixed_bytes,
        } = p.steps[0]
        else {
            panic!("first step must be a run");
        };
        assert_eq!((prim_start, prim_len), (0, 3));
        assert_eq!(java_bytes, 8 + 4 + 1);
        assert_eq!(kryo_fixed_bytes, 0, "Int is a Kryo varint");
        assert_eq!(proto_fixed_bytes, 0, "Long/Int are ProtoLike varints");
        assert_eq!(p.steps[1], Step::Ref { idx: 3, name_len: 2 });
        let Step::Run {
            prim_start,
            prim_len,
            java_bytes,
            kryo_fixed_bytes,
            proto_fixed_bytes,
        } = p.steps[2]
        else {
            panic!("third step must be a run");
        };
        assert_eq!((prim_start, prim_len), (3, 1));
        assert_eq!(java_bytes, 8);
        assert_eq!(kryo_fixed_bytes, 8, "Double is fixed under Kryo");
        assert_eq!(proto_fixed_bytes, 8, "Double is fixed under ProtoLike");
        // Prim metadata rides along in declaration order.
        assert_eq!(
            p.prims.iter().map(|f| f.idx).collect::<Vec<_>>(),
            vec![0, 1, 2, 4]
        );
        assert_eq!(p.prims[3].vt, ValueType::Double);
    }

    #[test]
    fn compiler_orders_ref_slots_correctly() {
        let p = plan_of(vec![
            FieldKind::Ref,
            FieldKind::Value(ValueType::Long),
            FieldKind::Ref,
            FieldKind::Ref,
            FieldKind::Value(ValueType::Int),
        ]);
        assert_eq!(p.ref_slots, vec![0, 2, 3]);
        let step_refs: Vec<u32> = p
            .steps
            .iter()
            .filter_map(|s| match s {
                Step::Ref { idx, .. } => Some(*idx),
                Step::Run { .. } => None,
            })
            .collect();
        assert_eq!(step_refs, vec![0, 2, 3], "program order = declaration order");
    }

    #[test]
    fn metadata_is_preresolved() {
        let mut reg = KlassRegistry::new();
        let id = reg.register(Klass::new(
            "Node",
            vec![FieldKind::Value(ValueType::Long), FieldKind::Ref],
        ));
        let arr = reg.register(Klass::array("double[]", FieldKind::Value(ValueType::Double)));
        let cache = PlanCache::compile(&reg);
        let p = cache.plan(id);
        assert_eq!(p.name_len, 4);
        assert_eq!(p.num_fields, 2);
        assert_eq!(p.instance_bytes, (3 + 2) * 8);
        assert_eq!(p.id_varint, vec![id.get() as u8]);
        assert_eq!(&*p.json_header, b"{\"@c\":\"Node\",\"@id\":" as &[u8]);
        assert_eq!(&*p.json_prefixes[0], b",\"f0\":" as &[u8]);
        assert_eq!(&*p.field_names[1], b"f1" as &[u8]);
        let a = cache.plan(arr);
        assert!(a.is_array());
        assert_eq!(a.array_elem, Some(FieldKind::Value(ValueType::Double)));
        assert!(a.steps.is_empty());
    }

    #[test]
    fn plans_are_memoized_by_registry_fingerprint() {
        let mut reg = KlassRegistry::new();
        reg.register(Klass::new("A", vec![FieldKind::Value(ValueType::Long)]));
        let first = plans_for(&reg);
        let again = plans_for(&reg.clone());
        assert!(Rc::ptr_eq(&first, &again), "same layout → same compilation");
        let mut other = reg.clone();
        other.register(Klass::new("B", vec![FieldKind::Ref]));
        let different = plans_for(&other);
        assert!(!Rc::ptr_eq(&first, &different));
        assert_eq!(different.len(), 2);
    }

    #[test]
    fn decimal_formats_like_display() {
        let mut buf = [0u8; 20];
        for v in [0u64, 1, 9, 10, 42, 12345, u64::MAX] {
            assert_eq!(decimal(v, &mut buf), v.to_string().as_bytes());
        }
    }
}
