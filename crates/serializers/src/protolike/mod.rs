//! A codegen-style binary serializer — the JSBS "generated code" class
//! (protobuf/thrift/avro-specific), mechanistically.
//!
//! Models what compile-time generation buys over Kryo's runtime
//! registration (paper §I: a "compilation-based approach to obviate the
//! need for extracting field information at runtime"):
//!
//! * field access is **inlined generated code** — straight-line ALU, no
//!   accessor call, no dispatch;
//! * integers are **zigzag varints**, doubles fixed 8 B, exactly the
//!   protobuf wire types;
//! * class identity is a compact schema tag (polymorphism via `oneof`);
//! * reference sharing still needs an identity map (message formats are
//!   trees; graph support bolts on the same `@id` trick Kryo uses).
//!
//! It lands between Kryo and the hand-optimized manual class in Fig. 12,
//! which is where JSBS puts protostuff/thrift.

use crate::api::{SerError, Serializer};
use crate::trace::{TraceSink, Tracer, IN_STREAM_BASE, OUT_STREAM_BASE};
use sdformat::varint::{read_varint, write_varint};
use sdheap::{Addr, FieldKind, Heap, KlassId, KlassRegistry, ValueType, HEADER_WORDS};
use std::collections::HashMap;

mod compiled;

const TAG_NULL: u8 = 0;
const TAG_NEW: u8 = 1;
const TAG_REF: u8 = 2;

/// Zigzag encoding: small magnitudes (of either sign) become small
/// varints.
fn zigzag(v: u64) -> u64 {
    let s = v as i64;
    ((s << 1) ^ (s >> 63)) as u64
}

fn unzigzag(v: u64) -> u64 {
    ((v >> 1) as i64 ^ -((v & 1) as i64)) as u64
}

/// The codegen serializer.
#[derive(Clone, Copy, Debug)]
pub struct ProtoLike {
    /// Execute per-klass compiled field programs (`crate::plan`) instead
    /// of walking `fields()` per object. Streams and traces are identical
    /// either way; only host wall-clock changes.
    compiled_plans: bool,
}

impl ProtoLike {
    /// A new instance with the process-wide default plan mode
    /// (`CEREAL_COMPILED_PLANS`).
    pub fn new() -> Self {
        ProtoLike {
            compiled_plans: crate::plan::compiled_plans_default(),
        }
    }

    /// An instance that always walks `fields()` interpretively.
    pub fn interpretive() -> Self {
        ProtoLike {
            compiled_plans: false,
        }
    }

    /// An instance with an explicit plan mode.
    pub fn with_compiled_plans(compiled_plans: bool) -> Self {
        ProtoLike { compiled_plans }
    }
}

impl Default for ProtoLike {
    fn default() -> Self {
        ProtoLike::new()
    }
}

struct SerCtx<'a> {
    heap: &'a Heap,
    reg: &'a KlassRegistry,
    out: Vec<u8>,
    handles: HashMap<Addr, u64>,
    tracer: Tracer<'a>,
}

enum Frame {
    Write(Addr),
    /// The klass id resolved at dispatch rides along so resumes skip the
    /// klass/registry lookups.
    Fields { addr: Addr, idx: usize, id: KlassId },
    Elems { addr: Addr, idx: usize },
}

impl<'a> SerCtx<'a> {
    fn put(&mut self, bytes: &[u8]) {
        self.tracer
            .store_bytes(OUT_STREAM_BASE + self.out.len() as u64, bytes.len() as u32);
        self.out.extend_from_slice(bytes);
    }

    fn put_varint(&mut self, v: u64) {
        let pos = OUT_STREAM_BASE + self.out.len() as u64;
        let n = write_varint(&mut self.out, v);
        self.tracer.store_bytes(pos, n as u32);
        self.tracer.alu(n as u32);
    }

    fn put_primitive(&mut self, vt: ValueType, word: u64) {
        // Generated code: the encode is inlined, ~2 ALU ops of shifting.
        self.tracer.alu(2);
        match vt {
            ValueType::Double => self.put(&word.to_le_bytes()),
            ValueType::Long | ValueType::Int => self.put_varint(zigzag(word)),
            ValueType::Char => self.put(&(word as u16).to_le_bytes()),
            ValueType::Byte | ValueType::Boolean => self.put(&[word as u8]),
        }
    }

    fn run(&mut self, root: Addr) {
        let mut stack = vec![Frame::Write(root)];
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::Write(addr) => {
                    self.tracer.branch();
                    if addr.is_null() {
                        self.put(&[TAG_NULL]);
                        continue;
                    }
                    self.tracer.hash_lookup();
                    if let Some(&h) = self.handles.get(&addr) {
                        self.put(&[TAG_REF]);
                        self.put_varint(h);
                        continue;
                    }
                    self.put(&[TAG_NEW]);
                    self.handles.insert(addr, self.handles.len() as u64);
                    self.tracer.load_word_dep(addr.add_words(1).get());
                    let id = self.heap.klass_of(self.reg, addr);
                    self.put_varint(u64::from(id.get()));
                    let k = self.reg.get(id);
                    if k.is_array() {
                        let len = self.heap.array_len(addr);
                        self.put_varint(len as u64);
                        match k.array_elem().expect("array") {
                            FieldKind::Value(vt) => {
                                for i in 0..len {
                                    self.tracer.load_word(
                                        addr.add_words((HEADER_WORDS + 1 + i) as u64).get(),
                                    );
                                    let w = self.heap.array_elem(addr, i);
                                    self.put_primitive(vt, w);
                                }
                            }
                            FieldKind::Ref => stack.push(Frame::Elems { addr, idx: 0 }),
                        }
                    } else {
                        stack.push(Frame::Fields { addr, idx: 0, id });
                    }
                }
                Frame::Fields { addr, idx, id } => {
                    let reg: &'a KlassRegistry = self.reg;
                    let fields = reg.get(id).fields();
                    let mut i = idx;
                    while i < fields.len() {
                        // Generated code: no accessor call, just the load.
                        self.tracer
                            .load_word_dep(addr.add_words((HEADER_WORDS + i) as u64).get());
                        let word = self.heap.field(addr, i);
                        match fields[i].kind {
                            FieldKind::Value(vt) => {
                                self.put_primitive(vt, word);
                                i += 1;
                            }
                            FieldKind::Ref => {
                                stack.push(Frame::Fields { addr, idx: i + 1, id });
                                stack.push(Frame::Write(Addr(word)));
                                break;
                            }
                        }
                    }
                }
                Frame::Elems { addr, idx } => {
                    let len = self.heap.array_len(addr);
                    if idx < len {
                        self.tracer
                            .load_word(addr.add_words((HEADER_WORDS + 1 + idx) as u64).get());
                        let word = self.heap.array_elem(addr, idx);
                        stack.push(Frame::Elems { addr, idx: idx + 1 });
                        stack.push(Frame::Write(Addr(word)));
                    }
                }
            }
        }
    }
}

struct DeCtx<'a> {
    bytes: &'a [u8],
    pos: usize,
    reg: &'a KlassRegistry,
    heap: &'a mut Heap,
    handles: Vec<Addr>,
    tracer: Tracer<'a>,
}

#[derive(Clone, Copy)]
enum Dest {
    Root,
    Field(Addr, usize),
    Elem(Addr, usize),
}

enum DeFrame {
    Read(Dest),
    /// The klass id resolved at allocation rides along so resumes skip
    /// the klass/registry lookups.
    Fields { addr: Addr, idx: usize, id: KlassId },
    Elems { addr: Addr, idx: usize },
}

impl<'a> DeCtx<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SerError> {
        if self.pos + n > self.bytes.len() {
            return Err(SerError::Malformed("truncated stream"));
        }
        self.tracer
            .load_bytes(IN_STREAM_BASE + self.pos as u64, n as u32);
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn get_varint(&mut self) -> Result<u64, SerError> {
        let (v, next) =
            read_varint(self.bytes, self.pos).ok_or(SerError::Malformed("bad varint"))?;
        self.tracer
            .load_bytes(IN_STREAM_BASE + self.pos as u64, (next - self.pos) as u32);
        self.tracer.alu((next - self.pos) as u32);
        self.pos = next;
        Ok(v)
    }

    fn get_primitive(&mut self, vt: ValueType) -> Result<u64, SerError> {
        self.tracer.alu(2); // inlined decode
        Ok(match vt {
            ValueType::Double => u64::from_le_bytes(self.take(8)?.try_into().expect("8")),
            ValueType::Long | ValueType::Int => unzigzag(self.get_varint()?),
            ValueType::Char => u64::from(u16::from_le_bytes(
                self.take(2)?.try_into().expect("2"),
            )),
            ValueType::Byte | ValueType::Boolean => u64::from(self.take(1)?[0]),
        })
    }

    fn store_dest(&mut self, dest: Dest, value: Addr) {
        match dest {
            Dest::Root => {}
            Dest::Field(addr, i) => {
                self.tracer
                    .store_word(addr.add_words((HEADER_WORDS + i) as u64).get());
                self.heap.set_ref(addr, i, value);
            }
            Dest::Elem(addr, i) => {
                self.tracer
                    .store_word(addr.add_words((HEADER_WORDS + 1 + i) as u64).get());
                self.heap.set_array_elem(addr, i, value.get());
            }
        }
    }

    fn run(&mut self) -> Result<Addr, SerError> {
        let mut root = Addr::NULL;
        let mut got_root = false;
        let mut stack = vec![DeFrame::Read(Dest::Root)];
        while let Some(frame) = stack.pop() {
            match frame {
                DeFrame::Read(dest) => {
                    self.tracer.branch();
                    let addr = match self.take(1)?[0] {
                        TAG_NULL => Addr::NULL,
                        TAG_REF => {
                            let h = self.get_varint()? as usize;
                            *self
                                .handles
                                .get(h)
                                .ok_or(SerError::Malformed("bad handle"))?
                        }
                        TAG_NEW => {
                            let raw_id = self.get_varint()? as u32;
                            if raw_id as usize >= self.reg.len() {
                                return Err(SerError::UnknownClassId(raw_id));
                            }
                            let id = sdheap::KlassId(raw_id);
                            let k = self.reg.get(id);
                            let addr = if k.is_array() {
                                let len = self.get_varint()?;
                                if len >= self.heap.capacity_bytes() / 8 {
                                    return Err(SerError::Malformed("array length exceeds heap"));
                                }
                                let len = len as usize;
                                self.tracer.alloc(k.array_words(len) as u32 * 8);
                                let addr = self.heap.alloc_array(self.reg, id, len)?;
                                self.tracer.store_bytes(addr.get(), 32);
                                match k.array_elem().expect("array") {
                                    FieldKind::Value(vt) => {
                                        for i in 0..len {
                                            let w = self.get_primitive(vt)?;
                                            self.tracer.store_word(
                                                addr.add_words((HEADER_WORDS + 1 + i) as u64)
                                                    .get(),
                                            );
                                            self.heap.set_array_elem(addr, i, w);
                                        }
                                    }
                                    FieldKind::Ref => {
                                        stack.push(DeFrame::Elems { addr, idx: 0 })
                                    }
                                }
                                addr
                            } else {
                                self.tracer.alloc(k.instance_words() as u32 * 8);
                                let addr = self.heap.alloc(self.reg, id)?;
                                self.tracer.store_bytes(addr.get(), 24);
                                stack.push(DeFrame::Fields { addr, idx: 0, id });
                                addr
                            };
                            self.handles.push(addr);
                            addr
                        }
                        _ => return Err(SerError::Malformed("unknown tag")),
                    };
                    self.store_dest(dest, addr);
                    if !got_root {
                        root = addr;
                        got_root = true;
                    }
                }
                DeFrame::Fields { addr, idx, id } => {
                    let reg: &'a KlassRegistry = self.reg;
                    let fields = reg.get(id).fields();
                    let mut i = idx;
                    while i < fields.len() {
                        match fields[i].kind {
                            FieldKind::Value(vt) => {
                                let w = self.get_primitive(vt)?;
                                // Generated setter: inlined store.
                                self.tracer
                                    .store_word(addr.add_words((HEADER_WORDS + i) as u64).get());
                                self.heap.set_field(addr, i, w);
                                i += 1;
                            }
                            FieldKind::Ref => {
                                stack.push(DeFrame::Fields { addr, idx: i + 1, id });
                                stack.push(DeFrame::Read(Dest::Field(addr, i)));
                                break;
                            }
                        }
                    }
                }
                DeFrame::Elems { addr, idx } => {
                    let len = self.heap.array_len(addr);
                    if idx < len {
                        stack.push(DeFrame::Elems { addr, idx: idx + 1 });
                        stack.push(DeFrame::Read(Dest::Elem(addr, idx)));
                    }
                }
            }
        }
        Ok(root)
    }
}

impl Serializer for ProtoLike {
    fn name(&self) -> &str {
        "ProtoLike"
    }

    fn serialize(
        &self,
        heap: &mut Heap,
        reg: &KlassRegistry,
        root: Addr,
        sink: &mut dyn TraceSink,
    ) -> Result<Vec<u8>, SerError> {
        let mut out = Vec::new();
        self.serialize_into(heap, reg, root, sink, &mut out)?;
        Ok(out)
    }

    fn serialize_into(
        &self,
        heap: &mut Heap,
        reg: &KlassRegistry,
        root: Addr,
        sink: &mut dyn TraceSink,
        out: &mut Vec<u8>,
    ) -> Result<usize, SerError> {
        if self.compiled_plans {
            return compiled::serialize_into(heap, reg, root, sink, out);
        }
        out.clear();
        let mut ctx = SerCtx {
            heap,
            reg,
            out: std::mem::take(out),
            handles: HashMap::new(),
            tracer: Tracer::new(sink),
        };
        ctx.run(root);
        *out = ctx.out;
        Ok(out.len())
    }

    fn deserialize(
        &self,
        bytes: &[u8],
        reg: &KlassRegistry,
        dst: &mut Heap,
        sink: &mut dyn TraceSink,
    ) -> Result<Addr, SerError> {
        if self.compiled_plans {
            return compiled::deserialize(bytes, reg, dst, sink);
        }
        let mut ctx = DeCtx {
            bytes,
            pos: 0,
            reg,
            heap: dst,
            handles: Vec::new(),
            tracer: Tracer::new(sink),
        };
        ctx.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{CountingSink, NullSink};
    use sdheap::builder::Init;
    use sdheap::{isomorphic_with, GraphBuilder, IsoOptions};

    #[test]
    fn zigzag_roundtrips() {
        for v in [0u64, 1, u64::MAX, 0x7fff_ffff_ffff_ffff, 42, !42 + 1] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small negative (two's-complement) values stay small.
        let minus_one = u64::MAX;
        assert!(zigzag(minus_one) < 4);
    }

    fn graph() -> (Heap, KlassRegistry, Addr) {
        let mut b = GraphBuilder::new(1 << 18);
        let k = b.klass(
            "N",
            vec![FieldKind::Value(ValueType::Long), FieldKind::Ref, FieldKind::Ref],
        );
        let c = b.object(k, &[Init::Val(3), Init::Null, Init::Null]).unwrap();
        let x = b.object(k, &[Init::Val(2), Init::Ref(c), Init::Null]).unwrap();
        let a = b.object(k, &[Init::Val(1), Init::Ref(x), Init::Ref(c)]).unwrap();
        b.link(c, 1, a); // cycle
        let (heap, reg) = b.finish();
        (heap, reg, a)
    }

    #[test]
    fn roundtrips_cyclic_graphs() {
        let (mut heap, reg, root) = graph();
        let ser = ProtoLike::new();
        let bytes = ser.serialize(&mut heap, &reg, root, &mut NullSink).unwrap();
        let mut dst = Heap::with_base(Addr(0x2_0000_0000), 1 << 18);
        let new_root = ser.deserialize(&bytes, &reg, &mut dst, &mut NullSink).unwrap();
        assert!(isomorphic_with(
            &heap,
            &reg,
            root,
            &dst,
            new_root,
            IsoOptions {
                check_identity_hash: false
            }
        ));
    }

    #[test]
    fn smaller_than_kryo_for_small_magnitudes() {
        // Zigzag varints shrink small longs that Kryo stores as 8 B.
        let (mut heap, reg, root) = graph();
        let proto = ProtoLike::new().serialize(&mut heap, &reg, root, &mut NullSink).unwrap();
        let kryo = crate::Kryo::new().serialize(&mut heap, &reg, root, &mut NullSink).unwrap();
        assert!(proto.len() < kryo.len(), "proto {} vs kryo {}", proto.len(), kryo.len());
    }

    #[test]
    fn cheaper_trace_than_kryo() {
        let (mut heap, reg, root) = graph();
        let mut proto_c = CountingSink::new();
        ProtoLike::new().serialize(&mut heap, &reg, root, &mut proto_c).unwrap();
        let mut kryo_c = CountingSink::new();
        crate::Kryo::new().serialize(&mut heap, &reg, root, &mut kryo_c).unwrap();
        assert!(
            proto_c.calls < kryo_c.calls,
            "generated code makes fewer calls: {} vs {}",
            proto_c.calls,
            kryo_c.calls
        );
    }

    #[test]
    fn rejects_corrupt_input() {
        let reg = KlassRegistry::new();
        let mut dst = Heap::new(1 << 12);
        assert!(ProtoLike::new()
            .deserialize(&[9, 9, 9], &reg, &mut dst, &mut NullSink)
            .is_err());
        assert!(ProtoLike::new()
            .deserialize(&[], &reg, &mut dst, &mut NullSink)
            .is_err());
    }
}
