//! The Skyway baseline (paper §II).
//!
//! Skyway "transfers an object by a simple memory copy": the serialized
//! body is the raw words of every reachable object — headers included —
//! with two rewrites applied on the way out:
//!
//! * the klass pointer is replaced by a global integer **type ID**
//!   (automatic type registration; no per-class user effort);
//! * every reference is converted from an absolute address to a
//!   **relative address** (byte offset of the target within the
//!   serialized image).
//!
//! Deserialization is one bulk copy followed by a **sequential reference
//! adjustment** walk — the step the paper singles out as Skyway's residual
//! inefficiency and the one Cereal parallelizes away: each object's klass
//! word must be re-resolved and each reference rebased, in stream order,
//! before the next object's layout is even known.
//!
//! Because headers travel with the data, reconstructed objects keep their
//! identity hashes, and the stream is larger than Kryo's ("the object is
//! serialized as is including reference fields and headers").

use crate::api::{SerError, Serializer};
use crate::trace::{TraceSink, Tracer, IN_STREAM_BASE, OUT_STREAM_BASE};
use sdheap::{
    reachable, Addr, ExtWord, Heap, KlassId, KlassRegistry, Reachable, HEADER_WORDS, KLASS_OFFSET,
};
use std::collections::HashMap;

/// Encodes a reference word: 0 = null, otherwise relative byte offset + 1.
fn encode_rel(rel: Option<u64>) -> u64 {
    match rel {
        None => 0,
        Some(r) => r + 1,
    }
}

fn decode_rel(word: u64) -> Option<u64> {
    if word == 0 {
        None
    } else {
        Some(word - 1)
    }
}

/// The Skyway serializer baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct Skyway;

impl Skyway {
    /// A new instance.
    pub fn new() -> Self {
        Skyway
    }
}

impl Serializer for Skyway {
    fn name(&self) -> &str {
        "Skyway"
    }

    fn serialize(
        &self,
        heap: &mut Heap,
        reg: &KlassRegistry,
        root: Addr,
        sink: &mut dyn TraceSink,
    ) -> Result<Vec<u8>, SerError> {
        let mut tracer = Tracer::new(sink);
        let mut out = Vec::new();

        // Phase 1: traversal. Assign each object its relative (byte)
        // address in visit order, recorded in a thread-local hash table.
        let order = reachable(heap, reg, root, Reachable::DepthFirst);
        let mut rel_of: HashMap<Addr, u64> = HashMap::with_capacity(order.len());
        let mut offset = 0u64;
        for &addr in &order {
            // Visited check + header fetch to size the object.
            tracer.hash_lookup();
            tracer.load_word_dep(addr.get());
            tracer.load_word_dep(addr.add_words(KLASS_OFFSET as u64).get());
            rel_of.insert(addr, offset);
            offset += heap.object(reg, addr).size_bytes();
        }
        let total_bytes = offset;

        // Stream header: image size + object count.
        let put = |out: &mut Vec<u8>, tracer: &mut Tracer, bytes: &[u8]| {
            tracer.store_bytes(OUT_STREAM_BASE + out.len() as u64, bytes.len() as u32);
            out.extend_from_slice(bytes);
        };
        put(&mut out, &mut tracer, &(total_bytes as u32).to_le_bytes());
        put(&mut out, &mut tracer, &(order.len() as u32).to_le_bytes());

        // Phase 2: bulk copy with klass-word and reference rewrites.
        for &addr in &order {
            let view = heap.object(reg, addr);
            let id = view.klass_id();
            let layout = view.layout_bits();
            for (w, &is_ref) in layout.iter().enumerate() {
                tracer.load_word(addr.add_words(w as u64).get());
                let word = view.word(w);
                let encoded = if w == KLASS_OFFSET {
                    // Automatic type registration: klass pointer → type ID.
                    tracer.hash_lookup();
                    u64::from(id.get())
                } else if w == sdheap::EXT_OFFSET {
                    // Runtime-private metadata does not travel.
                    0
                } else if is_ref {
                    tracer.hash_lookup();
                    tracer.alu(1);
                    let target = Addr(word);
                    if target.is_null() {
                        encode_rel(None)
                    } else {
                        encode_rel(Some(*rel_of.get(&target).expect("reachable target")))
                    }
                } else {
                    word
                };
                put(&mut out, &mut tracer, &encoded.to_le_bytes());
            }
        }
        Ok(out)
    }

    fn deserialize(
        &self,
        bytes: &[u8],
        reg: &KlassRegistry,
        dst: &mut Heap,
        sink: &mut dyn TraceSink,
    ) -> Result<Addr, SerError> {
        let mut tracer = Tracer::new(sink);
        if bytes.len() < 8 {
            return Err(SerError::Malformed("truncated header"));
        }
        tracer.load_bytes(IN_STREAM_BASE, 8);
        let total_bytes =
            u32::from_le_bytes(bytes[0..4].try_into().expect("4")) as u64;
        let object_count = u32::from_le_bytes(bytes[4..8].try_into().expect("4"));
        let body = &bytes[8..];
        if body.len() as u64 != total_bytes {
            return Err(SerError::Malformed("body size mismatch"));
        }
        if !total_bytes.is_multiple_of(8) {
            return Err(SerError::Malformed("unaligned body"));
        }

        // Bulk copy: one big sequential read + write.
        let base = dst.alloc_raw((total_bytes / 8) as usize)?;
        for (i, chunk) in body.chunks_exact(8).enumerate() {
            tracer.load_bytes(IN_STREAM_BASE + 8 + i as u64 * 8, 8);
            tracer.store_word(base.add_words(i as u64).get());
            dst.store(
                base.add_words(i as u64),
                u64::from_le_bytes(chunk.try_into().expect("8")),
            );
        }

        // Sequential reference adjustment: object by object, in stream
        // order. Each step depends on the previous object's size, which is
        // only known after its klass word is resolved — the serial chain
        // the paper criticizes.
        let mut cursor = base;
        let end = base.add_bytes(total_bytes);
        let mut seen = 0u32;
        while cursor.get() < end.get() {
            tracer.load_word_dep(cursor.add_words(KLASS_OFFSET as u64).get());
            let raw_id = dst.load(cursor.add_words(KLASS_OFFSET as u64));
            let raw_id = u32::try_from(raw_id)
                .map_err(|_| SerError::Malformed("bad type id"))?;
            if raw_id as usize >= reg.len() {
                return Err(SerError::UnknownClassId(raw_id));
            }
            let id = KlassId(raw_id);
            // Restore the real klass pointer.
            tracer.store_word(cursor.add_words(KLASS_OFFSET as u64).get());
            dst.store(
                cursor.add_words(KLASS_OFFSET as u64),
                reg.meta_addr(id).get(),
            );
            dst.set_ext_word(cursor, ExtWord::new());
            // Validate the (possibly corrupt) object size — in particular
            // an array-length word — before any size-dependent work.
            let remaining_words = (end.get() - cursor.get()) / 8;
            let k = reg.get(id);
            let words_checked = if k.is_array() {
                let len = dst.array_len(cursor) as u64;
                if len >= remaining_words {
                    return Err(SerError::Malformed("array length exceeds image"));
                }
                k.array_words(len as usize) as u64
            } else {
                k.instance_words() as u64
            };
            if words_checked > remaining_words {
                return Err(SerError::Malformed("object overruns image"));
            }
            let view = dst.object(reg, cursor);
            let words = view.size_words();
            let layout = view.layout_bits();
            for (w, &is_ref) in layout.iter().enumerate() {
                if !is_ref || w < HEADER_WORDS {
                    continue;
                }
                tracer.load_word(cursor.add_words(w as u64).get());
                let word = dst.load(cursor.add_words(w as u64));
                let abs = match decode_rel(word) {
                    None => 0,
                    Some(rel) => {
                        if rel >= total_bytes {
                            return Err(SerError::Malformed("relative address out of image"));
                        }
                        tracer.alu(1);
                        base.add_bytes(rel).get()
                    }
                };
                tracer.store_word(cursor.add_words(w as u64).get());
                dst.store(cursor.add_words(w as u64), abs);
            }
            cursor = cursor.add_words(words as u64);
            seen += 1;
        }
        if seen != object_count {
            return Err(SerError::Malformed("object count mismatch"));
        }
        dst.note_reconstructed_objects(u64::from(object_count));
        Ok(base)
    }

    fn preserves_identity_hash(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kryo::Kryo;
    use crate::trace::{CountingSink, NullSink};
    use sdheap::builder::Init;
    use sdheap::{isomorphic, FieldKind, GraphBuilder, ValueType};

    fn roundtrip(heap: &mut Heap, reg: &KlassRegistry, root: Addr) -> (Heap, Addr) {
        let ser = Skyway::new();
        let bytes = ser.serialize(heap, reg, root, &mut NullSink).unwrap();
        let mut dst = Heap::with_base(Addr(0x2_0000_0000), heap.capacity_bytes());
        let new_root = ser.deserialize(&bytes, reg, &mut dst, &mut NullSink).unwrap();
        (dst, new_root)
    }

    fn diamond() -> (Heap, KlassRegistry, Addr) {
        let mut b = GraphBuilder::new(1 << 16);
        let k = b.klass(
            "N",
            vec![FieldKind::Value(ValueType::Long), FieldKind::Ref, FieldKind::Ref],
        );
        let c = b.object(k, &[Init::Val(3), Init::Null, Init::Null]).unwrap();
        let x = b.object(k, &[Init::Val(2), Init::Ref(c), Init::Null]).unwrap();
        let a = b.object(k, &[Init::Val(1), Init::Ref(x), Init::Ref(c)]).unwrap();
        let (heap, reg) = b.finish();
        (heap, reg, a)
    }

    #[test]
    fn roundtrips_with_identity_hashes() {
        let (mut heap, reg, a) = diamond();
        let (dst, root) = roundtrip(&mut heap, &reg, a);
        // Strict isomorphism: Skyway copies headers, hashes survive.
        assert!(isomorphic(&heap, &reg, a, &dst, root));
    }

    #[test]
    fn root_lands_at_image_base() {
        let (mut heap, reg, a) = diamond();
        let (dst, root) = roundtrip(&mut heap, &reg, a);
        assert_eq!(root, dst.base());
    }

    #[test]
    fn roundtrips_arrays_and_cycles() {
        let mut b = GraphBuilder::new(1 << 18);
        let n = b.klass("Node", vec![FieldKind::Ref]);
        let arr = b.array_klass("Object[]", FieldKind::Ref);
        let d = b.array_klass("double[]", FieldKind::Value(ValueType::Double));
        let data = b
            .value_array(d, &[f64::to_bits(0.5), f64::to_bits(2.5), f64::to_bits(-1.0)])
            .unwrap();
        let x = b.object(n, &[Init::Null]).unwrap();
        let container = b.ref_array(arr, &[x, data, Addr::NULL, x]).unwrap();
        b.link(x, 0, container); // cycle through the array
        let (mut heap, reg) = b.finish();
        let (dst, root) = roundtrip(&mut heap, &reg, container);
        assert!(isomorphic(&heap, &reg, container, &dst, root));
    }

    #[test]
    fn stream_is_larger_than_kryo() {
        let (mut heap, reg, a) = diamond();
        let sky = Skyway::new().serialize(&mut heap, &reg, a, &mut NullSink).unwrap();
        let kryo = Kryo::new().serialize(&mut heap, &reg, a, &mut NullSink).unwrap();
        assert!(
            sky.len() > kryo.len(),
            "skyway {} must exceed kryo {} (headers travel)",
            sky.len(),
            kryo.len()
        );
    }

    #[test]
    fn ext_word_does_not_travel() {
        let (mut heap, reg, a) = diamond();
        heap.set_ext_word(a, ExtWord::new().with_counter(99).with_relative_addr(7));
        let (dst, root) = roundtrip(&mut heap, &reg, a);
        assert_eq!(dst.ext_word(root), ExtWord::new());
    }

    #[test]
    fn no_reflection_and_bulk_copy_shape() {
        let (mut heap, reg, a) = diamond();
        let mut ser_counts = CountingSink::new();
        let bytes = Skyway::new().serialize(&mut heap, &reg, a, &mut ser_counts).unwrap();
        assert_eq!(ser_counts.reflect_calls, 0);
        let mut de_counts = CountingSink::new();
        let mut dst = Heap::with_base(Addr(0x2_0000_0000), 1 << 16);
        Skyway::new().deserialize(&bytes, &reg, &mut dst, &mut de_counts).unwrap();
        // Deserialization re-touches every ref word: copy + adjustment.
        assert!(de_counts.stores >= de_counts.loads / 2);
        assert_eq!(de_counts.allocs, 0, "no per-object allocation: bulk copy");
    }

    #[test]
    fn rejects_corrupt_streams() {
        let (mut heap, reg, a) = diamond();
        let bytes = Skyway::new().serialize(&mut heap, &reg, a, &mut NullSink).unwrap();
        let mut dst = Heap::new(1 << 16);
        // Truncated body.
        let err = Skyway::new()
            .deserialize(&bytes[..bytes.len() - 8], &reg, &mut dst, &mut NullSink)
            .unwrap_err();
        assert!(matches!(err, SerError::Malformed(_)));
        // Unknown type id.
        let empty = KlassRegistry::new();
        let mut dst2 = Heap::new(1 << 16);
        let err = Skyway::new()
            .deserialize(&bytes, &empty, &mut dst2, &mut NullSink)
            .unwrap_err();
        assert!(matches!(err, SerError::UnknownClassId(_)));
        // Out-of-image relative address.
        let mut evil = bytes.clone();
        let ref_word_off = 8 + (HEADER_WORDS + 1) * 8; // first object's first ref
        evil[ref_word_off..ref_word_off + 8]
            .copy_from_slice(&(u32::MAX as u64).to_le_bytes());
        let mut dst3 = Heap::new(1 << 16);
        let err = Skyway::new()
            .deserialize(&evil, &reg, &mut dst3, &mut NullSink)
            .unwrap_err();
        assert!(matches!(err, SerError::Malformed(_)));
    }
}
