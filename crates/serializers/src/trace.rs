//! Operation traces: the contract between functional serializers and the
//! timing models.
//!
//! Every serializer in this repository is *functional* — it really
//! produces and consumes bytes — and additionally narrates what a CPU
//! would have to execute by emitting [`Op`]s into a [`TraceSink`]. The
//! `sim` crate's CPU model consumes the stream to produce cycles, cache
//! behaviour, and DRAM bandwidth (paper Fig. 3), with zero per-op storage:
//! sinks are streaming, so multi-hundred-MB workloads trace in O(1)
//! memory.
//!
//! Address-space conventions (shared with `sim::dram`):
//! * heap objects live wherever the `sdheap::Heap` put them;
//! * serialized output streams are written at [`OUT_STREAM_BASE`];
//! * input streams being deserialized are read at [`IN_STREAM_BASE`].

/// Base address where serializers model their output stream.
pub const OUT_STREAM_BASE: u64 = 0x20_0000_0000;
/// Base address where deserializers model their input stream.
pub const IN_STREAM_BASE: u64 = 0x30_0000_0000;

/// One architectural operation executed by a software serializer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// A memory load. `dependent` marks loads whose address was produced
    /// by an immediately preceding load (pointer chasing) — the CPU model
    /// cannot overlap these, which is the core of the paper's §III
    /// analysis.
    Load {
        /// Byte address.
        addr: u64,
        /// Access size in bytes.
        bytes: u32,
        /// Part of a dependent (pointer-chasing) chain.
        dependent: bool,
    },
    /// A memory store.
    Store {
        /// Byte address.
        addr: u64,
        /// Access size in bytes.
        bytes: u32,
    },
    /// `count` simple ALU operations (add, shift, compare, mask).
    Alu(u32),
    /// A conditional branch.
    Branch,
    /// A plain (devirtualized) function call + return.
    Call,
    /// A reflective access (`java.lang.reflect`): the expensive
    /// dictionary-backed call Java S/D performs per field.
    ReflectCall,
    /// A string comparison over `bytes` bytes (type-name resolution).
    StrCompare(u32),
    /// One hash-table probe (identity map, type registry).
    HashLookup,
    /// An object allocation of `bytes` bytes (TLAB-style bump + init).
    Alloc(u32),
}

/// Streaming consumer of operation traces.
pub trait TraceSink {
    /// Consumes one operation.
    fn op(&mut self, op: Op);

    /// Consumes a batch of operations. Semantically identical to calling
    /// [`TraceSink::op`] once per element — the default does exactly
    /// that — but lets timing models amortize the virtual dispatch: the
    /// CPU model replays hundreds of millions of ops on the Scaled/Paper
    /// workload sizes, and one dyn call per *slice* instead of per *op*
    /// is measurably cheaper. Implementations overriding this must keep
    /// the timing bit-identical to the per-op path (test-enforced for
    /// `sim::Cpu`).
    fn ops(&mut self, ops: &[Op]) {
        for &op in ops {
            self.op(op);
        }
    }

    /// `true` if this sink provably ignores every operation
    /// ([`NullSink`]). Batched narrators ([`OpBuf`]) consult this once
    /// and skip op construction and delivery entirely — the observable
    /// outcome (nothing) is identical, but the buffering work is saved.
    /// Per-op narrators ([`Tracer`]) do not consult it: their call sites
    /// are scattered, so a per-op branch would cost what it saves.
    /// Default `false`.
    fn discards_ops(&self) -> bool {
        false
    }
}

/// Discards every operation (functional-only runs).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn op(&mut self, _op: Op) {}

    fn ops(&mut self, _ops: &[Op]) {}

    fn discards_ops(&self) -> bool {
        true
    }
}

/// Counts operations by class — useful for tests and op-mix reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CountingSink {
    /// Number of loads.
    pub loads: u64,
    /// Loads flagged dependent.
    pub dependent_loads: u64,
    /// Bytes loaded.
    pub load_bytes: u64,
    /// Number of stores.
    pub stores: u64,
    /// Bytes stored.
    pub store_bytes: u64,
    /// ALU operations.
    pub alu: u64,
    /// Branches.
    pub branches: u64,
    /// Calls.
    pub calls: u64,
    /// Reflective calls.
    pub reflect_calls: u64,
    /// String-compare bytes.
    pub str_compare_bytes: u64,
    /// Hash probes.
    pub hash_lookups: u64,
    /// Allocations.
    pub allocs: u64,
    /// Bytes allocated.
    pub alloc_bytes: u64,
}

impl CountingSink {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total operations of any class.
    pub fn total_ops(&self) -> u64 {
        self.loads
            + self.stores
            + self.alu
            + self.branches
            + self.calls
            + self.reflect_calls
            + self.hash_lookups
            + self.allocs
    }
}

impl TraceSink for CountingSink {
    fn op(&mut self, op: Op) {
        match op {
            Op::Load {
                bytes, dependent, ..
            } => {
                self.loads += 1;
                self.load_bytes += u64::from(bytes);
                if dependent {
                    self.dependent_loads += 1;
                }
            }
            Op::Store { bytes, .. } => {
                self.stores += 1;
                self.store_bytes += u64::from(bytes);
            }
            Op::Alu(n) => self.alu += u64::from(n),
            Op::Branch => self.branches += 1,
            Op::Call => self.calls += 1,
            Op::ReflectCall => self.reflect_calls += 1,
            Op::StrCompare(n) => {
                self.str_compare_bytes += u64::from(n);
                self.hash_lookups += 0;
            }
            Op::HashLookup => self.hash_lookups += 1,
            Op::Alloc(n) => {
                self.allocs += 1;
                self.alloc_bytes += u64::from(n);
            }
        }
        if matches!(op, Op::StrCompare(_)) {
            // String compares also count as ALU-class work for totals.
            self.alu += 1;
        }
    }
}

/// Batches ops into fixed-size slices before forwarding to an inner
/// sink via [`TraceSink::ops`].
///
/// Serializers narrate one op at a time; wrapping their sink in a
/// `BufferedSink` turns that into slice-granular delivery, which is the
/// cheap path for `sim::Cpu`. The op *sequence* the inner sink observes
/// is unchanged, so timing is bit-identical to the unbuffered path.
/// Call [`BufferedSink::flush`] (or drop the wrapper) before reading
/// results out of the inner sink.
pub struct BufferedSink<'a> {
    inner: &'a mut dyn TraceSink,
    buf: Vec<Op>,
}

/// Buffered ops per flush: large enough to amortize dispatch, small
/// enough to stay cache-resident (16 B/op × 4096 = 64 KB).
const BUFFER_OPS: usize = 4096;

impl<'a> BufferedSink<'a> {
    /// Wraps `inner` with the default buffer capacity.
    pub fn new(inner: &'a mut dyn TraceSink) -> Self {
        BufferedSink {
            inner,
            buf: Vec::with_capacity(BUFFER_OPS),
        }
    }

    /// Forwards every buffered op to the inner sink.
    pub fn flush(&mut self) {
        if !self.buf.is_empty() {
            self.inner.ops(&self.buf);
            self.buf.clear();
        }
    }
}

impl TraceSink for BufferedSink<'_> {
    fn op(&mut self, op: Op) {
        self.buf.push(op);
        if self.buf.len() == self.buf.capacity() {
            self.flush();
        }
    }

    fn ops(&mut self, ops: &[Op]) {
        self.flush();
        self.inner.ops(ops);
    }
}

impl Drop for BufferedSink<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

/// An op accumulator for the compiled-plan executors.
///
/// Unlike [`BufferedSink`] — which still costs one virtual `op` call per
/// operation at the emission site — an `OpBuf` is a plain struct the
/// executor owns, so every `push` is a statically dispatched `Vec` append
/// the compiler can inline. The buffered sequence is handed to the sink in
/// slices via [`TraceSink::ops`], which the contract guarantees is
/// timing-identical to per-op delivery. Executors flush at dispatch
/// boundaries (and always before returning an error) so the sink observes
/// exactly the interpretive op sequence.
///
/// Because narration is centralized here, an executor built with
/// [`OpBuf::for_sink`] against a sink whose
/// [`TraceSink::discards_ops`] is `true` skips buffering entirely —
/// one predictable branch per op instead of a `Vec` append — which the
/// interpretive serializers, with narration scattered across dozens of
/// call sites, cannot do.
pub struct OpBuf {
    buf: Vec<Op>,
    enabled: bool,
}

impl Default for OpBuf {
    fn default() -> Self {
        Self::new()
    }
}

impl OpBuf {
    /// Flush threshold checked at object/element boundaries. 1024 ops is
    /// 16 KiB — large enough to amortize the virtual `ops` call, small
    /// enough that the buffer stays cache-resident beside the heap and
    /// stream data the executor is actively touching.
    pub const FLUSH_AT: usize = 1024;

    /// An empty buffer with the standard capacity, always recording.
    pub fn new() -> Self {
        OpBuf {
            buf: Vec::with_capacity(Self::FLUSH_AT + 64),
            enabled: true,
        }
    }

    /// A buffer tuned for `sink`: records unless the sink declares (via
    /// [`TraceSink::discards_ops`]) that it drops every op anyway.
    pub fn for_sink(sink: &dyn TraceSink) -> Self {
        if sink.discards_ops() {
            OpBuf {
                buf: Vec::new(),
                enabled: false,
            }
        } else {
            Self::new()
        }
    }

    /// Appends one op.
    #[inline]
    pub fn push(&mut self, op: Op) {
        if self.enabled {
            self.buf.push(op);
        }
    }

    /// Independent load of `bytes` at `addr`.
    #[inline]
    pub fn load(&mut self, addr: u64, bytes: u32) {
        if self.enabled {
            self.buf.push(Op::Load {
                addr,
                bytes,
                dependent: false,
            });
        }
    }

    /// Dependent (pointer-chased) word load.
    #[inline]
    pub fn load_word_dep(&mut self, addr: u64) {
        if self.enabled {
            self.buf.push(Op::Load {
                addr,
                bytes: 8,
                dependent: true,
            });
        }
    }

    /// Store of `bytes` at `addr`.
    #[inline]
    pub fn store(&mut self, addr: u64, bytes: u32) {
        if self.enabled {
            self.buf.push(Op::Store { addr, bytes });
        }
    }

    /// Delivers the buffered sequence to `sink` and clears the buffer.
    pub fn flush(&mut self, sink: &mut dyn TraceSink) {
        if !self.buf.is_empty() {
            sink.ops(&self.buf);
            self.buf.clear();
        }
    }

    /// Flushes only when the buffer has reached [`OpBuf::FLUSH_AT`] —
    /// cheap enough to call once per object or array element.
    #[inline]
    pub fn maybe_flush(&mut self, sink: &mut dyn TraceSink) {
        if self.buf.len() >= Self::FLUSH_AT {
            self.flush(sink);
        }
    }
}

/// Convenience wrapper giving serializers terse emission methods.
pub struct Tracer<'a> {
    sink: &'a mut dyn TraceSink,
}

impl<'a> Tracer<'a> {
    /// Wraps a sink.
    pub fn new(sink: &'a mut dyn TraceSink) -> Self {
        Tracer { sink }
    }

    /// Emits a raw op.
    pub fn op(&mut self, op: Op) {
        self.sink.op(op);
    }

    /// Independent word load.
    pub fn load_word(&mut self, addr: u64) {
        self.sink.op(Op::Load {
            addr,
            bytes: 8,
            dependent: false,
        });
    }

    /// Dependent (pointer-chased) word load.
    pub fn load_word_dep(&mut self, addr: u64) {
        self.sink.op(Op::Load {
            addr,
            bytes: 8,
            dependent: true,
        });
    }

    /// Word store.
    pub fn store_word(&mut self, addr: u64) {
        self.sink.op(Op::Store { addr, bytes: 8 });
    }

    /// Byte-granular load.
    pub fn load_bytes(&mut self, addr: u64, bytes: u32) {
        self.sink.op(Op::Load {
            addr,
            bytes,
            dependent: false,
        });
    }

    /// Byte-granular store.
    pub fn store_bytes(&mut self, addr: u64, bytes: u32) {
        self.sink.op(Op::Store { addr, bytes });
    }

    /// `n` ALU ops.
    pub fn alu(&mut self, n: u32) {
        self.sink.op(Op::Alu(n));
    }

    /// One branch.
    pub fn branch(&mut self) {
        self.sink.op(Op::Branch);
    }

    /// One call.
    pub fn call(&mut self) {
        self.sink.op(Op::Call);
    }

    /// One reflective call.
    pub fn reflect_call(&mut self) {
        self.sink.op(Op::ReflectCall);
    }

    /// String compare of `n` bytes.
    pub fn str_compare(&mut self, n: u32) {
        self.sink.op(Op::StrCompare(n));
    }

    /// One hash probe.
    pub fn hash_lookup(&mut self) {
        self.sink.op(Op::HashLookup);
    }

    /// Allocation of `n` bytes.
    pub fn alloc(&mut self, n: u32) {
        self.sink.op(Op::Alloc(n));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_sink_tallies() {
        let mut c = CountingSink::new();
        {
            let mut t = Tracer::new(&mut c);
            t.load_word(0x100);
            t.load_word_dep(0x200);
            t.store_bytes(0x300, 16);
            t.alu(3);
            t.branch();
            t.call();
            t.reflect_call();
            t.str_compare(12);
            t.hash_lookup();
            t.alloc(48);
        }
        assert_eq!(c.loads, 2);
        assert_eq!(c.dependent_loads, 1);
        assert_eq!(c.load_bytes, 16);
        assert_eq!(c.stores, 1);
        assert_eq!(c.store_bytes, 16);
        assert_eq!(c.alu, 4); // 3 explicit + 1 for the StrCompare
        assert_eq!(c.branches, 1);
        assert_eq!(c.calls, 1);
        assert_eq!(c.reflect_calls, 1);
        assert_eq!(c.str_compare_bytes, 12);
        assert_eq!(c.hash_lookups, 1);
        assert_eq!(c.allocs, 1);
        assert_eq!(c.alloc_bytes, 48);
        assert!(c.total_ops() > 0);
    }

    #[test]
    fn buffered_sink_preserves_the_op_sequence() {
        let mut direct = CountingSink::new();
        let mut buffered = CountingSink::new();
        let emit = |sink: &mut dyn TraceSink| {
            for i in 0..10_000u64 {
                sink.op(Op::Load {
                    addr: i * 8,
                    bytes: 8,
                    dependent: i % 3 == 0,
                });
                sink.op(Op::Alu((i % 7) as u32));
                if i % 11 == 0 {
                    // Mixed granularity: slice delivery into a buffer.
                    sink.ops(&[Op::Branch, Op::HashLookup]);
                }
            }
        };
        emit(&mut direct);
        {
            let mut b = BufferedSink::new(&mut buffered);
            emit(&mut b);
        } // drop flushes
        assert_eq!(direct, buffered);
    }

    #[test]
    fn opbuf_preserves_the_op_sequence() {
        let mut direct = CountingSink::new();
        let mut via_buf = CountingSink::new();
        let ops = [
            Op::Load {
                addr: 0x100,
                bytes: 8,
                dependent: true,
            },
            Op::Store {
                addr: 0x200,
                bytes: 4,
            },
            Op::Alu(3),
            Op::ReflectCall,
            Op::StrCompare(7),
        ];
        for &op in &ops {
            direct.op(op);
        }
        let mut buf = OpBuf::new();
        buf.load_word_dep(0x100);
        buf.store(0x200, 4);
        buf.push(Op::Alu(3));
        buf.push(Op::ReflectCall);
        buf.push(Op::StrCompare(7));
        buf.flush(&mut via_buf);
        assert_eq!(direct, via_buf);
        // A flushed buffer is empty; flushing again delivers nothing.
        buf.flush(&mut via_buf);
        assert_eq!(direct, via_buf);
    }

    #[test]
    fn null_sink_accepts_everything() {
        let mut s = NullSink;
        for _ in 0..1000 {
            s.op(Op::Branch);
        }
    }

    #[test]
    fn stream_regions_are_disjoint() {
        const _: () = assert!(OUT_STREAM_BASE > sdheap::Heap::DEFAULT_BASE);
        const _: () = assert!(IN_STREAM_BASE > OUT_STREAM_BASE);
    }
}
