//! Golden tests pinning the archive wire format for the canonical
//! graphs (mirroring `golden_plans.rs`), so the format cannot drift
//! silently: any layout, header, encoding or ordering change must show
//! up here as an explicit diff against pinned words.
//!
//! Wire format v1 (all little-endian):
//! - 16-byte header: magic `"ARCV"`, version u32 = 1, image bytes u32,
//!   record count u32;
//! - image: records in depth-first reachability order from the root,
//!   root first; each record is the object's words with the klass
//!   pointer replaced by the integer klass id, the ext word zeroed,
//!   and every reference slot holding `target_image_offset + 1`
//!   (0 = null). The mark word (identity hash) travels verbatim.

use sdheap::builder::Init;
use sdheap::{Addr, FieldKind, GraphBuilder, Heap, KlassRegistry, ValueType};
use serializers::{Archive, ArchiveView, NullSink, Serializer};

type Graph = (Heap, KlassRegistry, Addr);

/// Mixed-width fields with interleaved refs, diamond sharing of a value
/// array (same graph as `golden_plans::diamond`).
fn diamond() -> Graph {
    let mut b = GraphBuilder::new(1 << 18);
    let m = b.klass(
        "Mixed",
        vec![
            FieldKind::Value(ValueType::Long),
            FieldKind::Value(ValueType::Int),
            FieldKind::Value(ValueType::Char),
            FieldKind::Value(ValueType::Byte),
            FieldKind::Ref,
            FieldKind::Value(ValueType::Boolean),
            FieldKind::Value(ValueType::Double),
            FieldKind::Ref,
            FieldKind::Value(ValueType::Int),
        ],
    );
    let d = b.array_klass("double[]", FieldKind::Value(ValueType::Double));
    let shared = b
        .value_array(d, &[f64::to_bits(1.5), f64::to_bits(-2.25), 0])
        .unwrap();
    let left = b
        .object(
            m,
            &[
                Init::Val(0x0123_4567_89ab_cdef),
                Init::Val(0xffff_fffe),
                Init::Val(0x41),
                Init::Val(0x7f),
                Init::Ref(shared),
                Init::Val(1),
                Init::Val(f64::to_bits(0.5)),
                Init::Null,
                Init::Val(42),
            ],
        )
        .unwrap();
    let root = b
        .object(
            m,
            &[
                Init::Val(1),
                Init::Val(2),
                Init::Val(3),
                Init::Val(4),
                Init::Ref(left),
                Init::Val(0),
                Init::Val(f64::to_bits(-3.75)),
                Init::Ref(shared),
                Init::Val(5),
            ],
        )
        .unwrap();
    let (heap, reg) = b.finish();
    (heap, reg, root)
}

/// A two-node cycle (back references must encode like any other).
fn cycle() -> Graph {
    let mut b = GraphBuilder::new(1 << 16);
    let k = b.klass("C", vec![FieldKind::Value(ValueType::Long), FieldKind::Ref]);
    let a = b.object(k, &[Init::Val(1), Init::Null]).unwrap();
    let c = b.object(k, &[Init::Val(2), Init::Ref(a)]).unwrap();
    let (mut heap, reg) = b.finish();
    heap.set_ref(a, 1, c);
    (heap, reg, c)
}

/// Value arrays of every width class plus a ref array with nulls and
/// sharing.
fn arrays() -> Graph {
    let mut b = GraphBuilder::new(1 << 18);
    let l = b.array_klass("long[]", FieldKind::Value(ValueType::Long));
    let d = b.array_klass("double[]", FieldKind::Value(ValueType::Double));
    let o = b.array_klass("Object[]", FieldKind::Ref);
    let longs = b.value_array(l, &[0, 1, u64::MAX, 300, 1 << 40]).unwrap();
    let doubles = b
        .value_array(d, &[f64::to_bits(0.0), f64::to_bits(6.25e3)])
        .unwrap();
    let empty = b.value_array(l, &[]).unwrap();
    let root = b
        .ref_array(o, &[longs, Addr::NULL, doubles, longs, empty])
        .unwrap();
    let (heap, reg) = b.finish();
    (heap, reg, root)
}

/// A linked list deep enough that the record walk covers many records.
fn deep_list() -> Graph {
    let mut b = GraphBuilder::new(1 << 20);
    let k = b.klass("L", vec![FieldKind::Value(ValueType::Long), FieldKind::Ref]);
    let mut head = b.object(k, &[Init::Val(0), Init::Null]).unwrap();
    for i in 1..150u64 {
        head = b.object(k, &[Init::Val(i), Init::Ref(head)]).unwrap();
    }
    let (heap, reg) = b.finish();
    (heap, reg, head)
}

/// A registry with klasses but a null root.
fn null_root() -> Graph {
    let mut b = GraphBuilder::new(1 << 12);
    b.klass("N", vec![FieldKind::Value(ValueType::Long)]);
    let (heap, reg) = b.finish();
    (heap, reg, Addr::NULL)
}

fn archive(g: &mut Graph) -> Vec<u8> {
    let (heap, reg, root) = g;
    heap.gc_clear_serialization_metadata(reg);
    Archive::new()
        .serialize(heap, reg, *root, &mut NullSink)
        .expect("archive")
}

/// Splits a stream into its header and its image as u64 words.
fn parts(bytes: &[u8]) -> ([u8; 16], Vec<u64>) {
    let header: [u8; 16] = bytes[..16].try_into().unwrap();
    let words = bytes[16..]
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    (header, words)
}

fn header_of(image_bytes: u32, records: u32) -> [u8; 16] {
    let mut h = [0u8; 16];
    h[..4].copy_from_slice(b"ARCV");
    h[4..8].copy_from_slice(&1u32.to_le_bytes());
    h[8..12].copy_from_slice(&image_bytes.to_le_bytes());
    h[12..16].copy_from_slice(&records.to_le_bytes());
    h
}

/// FNV-1a over the whole stream — the drift tripwire for graphs too
/// large to pin word by word.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// The null-root archive is exactly one empty header.
#[test]
fn golden_null_root() {
    let bytes = archive(&mut null_root());
    assert_eq!(bytes, header_of(0, 0));
}

/// Two 5-word records; the back edge encodes as `offset(root) + 1 = 1`
/// and the forward edge as `offset(a) + 1 = 41`.
#[test]
fn golden_cycle() {
    let bytes = archive(&mut cycle());
    let (header, words) = parts(&bytes);
    assert_eq!(header, header_of(80, 2));
    assert_eq!(
        words,
        vec![
            // root record `c` at offset 0: {long = 2, ref -> a @ 40}
            0x0000_0000_128a_9e00, // mark word (identity hash, verbatim)
            0,                     // klass id "C"
            0,                     // ext word zeroed
            2,
            41,
            // record `a` at offset 40: {long = 1, ref -> c @ 0}
            0x0000_0043_72cb_e800,
            0,
            0,
            1,
            1,
        ]
    );
}

/// Depth-first order: root Object[5] first, then its targets in element
/// order (shared `longs` emits once, at first visit).
#[test]
fn golden_arrays() {
    let bytes = archive(&mut arrays());
    let (header, words) = parts(&bytes);
    assert_eq!(header, header_of(224, 4));
    assert_eq!(
        words,
        vec![
            // Object[5] at 0: refs encode as target offset + 1.
            0x0000_00a3_50e9_3600, // mark word (identity hash)
            2,                     // klass id "Object[]"
            0,                     // ext word zeroed
            5,
            73,  // -> longs @ 72
            0,   // null
            145, // -> doubles @ 144
            73,  // -> longs again (sharing, same target)
            193, // -> empty @ 192
            // long[5] at 72.
            0x0000_0043_72cb_e800,
            0, // klass id "long[]"
            0,
            5,
            0,
            1,
            u64::MAX,
            300,
            1 << 40,
            // double[2] at 144.
            0x0000_0000_128a_9e00,
            1, // klass id "double[]"
            0,
            2,
            f64::to_bits(0.0),
            f64::to_bits(6.25e3),
            // long[0] at 192.
            0x0000_00e4_9903_d800,
            0,
            0,
            0,
        ]
    );
}

/// Instance records: nine declared fields in declaration order, refs
/// inline among the primitives exactly where the class declares them.
#[test]
fn golden_diamond() {
    let bytes = archive(&mut diamond());
    let (header, words) = parts(&bytes);
    assert_eq!(header, header_of(248, 3));
    assert_eq!(
        words,
        vec![
            // root Mixed at 0; ref fields 4 -> left @ 96, 7 -> shared @ 192.
            0x0000_00e4_9903_d800, // mark word (identity hash)
            0,                     // klass id "Mixed"
            0,                     // ext word zeroed
            1,
            2,
            3,
            4,
            97,
            0,
            f64::to_bits(-3.75),
            193,
            5,
            // left Mixed at 96; ref field 4 -> shared @ 192, field 7 null.
            0x0000_0000_128a_9e00,
            0,
            0,
            0x0123_4567_89ab_cdef,
            0xffff_fffe,
            0x41,
            0x7f,
            193,
            1,
            f64::to_bits(0.5),
            0,
            42,
            // shared double[3] at 192.
            0x0000_0043_72cb_e800,
            1, // klass id "double[]"
            0,
            3,
            f64::to_bits(1.5),
            f64::to_bits(-2.25),
            0,
        ]
    );
}

/// 150 list nodes: pinned by total shape, first/last record, and a
/// whole-stream fingerprint.
#[test]
fn golden_deep_list() {
    let bytes = archive(&mut deep_list());
    let (header, words) = parts(&bytes);
    assert_eq!(header, header_of(6000, 150));
    assert_eq!(words.len(), 750);
    // Root is the list head (value 149), pointing at the next node,
    // which the depth-first order places immediately after it.
    assert_eq!(words[3], 149);
    assert_eq!(words[4], 41);
    // The tail (value 0) is the last record; its next is null.
    assert_eq!(words[748], 0);
    assert_eq!(words[749], 0);
    assert_eq!(fnv1a(&bytes), 0x6d97_bfeb_2834_2771, "whole-stream fingerprint");
}

/// The pinned streams really are valid, fresh-looking archives: they
/// validate and reconstruct (sanity for the goldens themselves).
#[test]
fn goldens_validate() {
    for mut g in [diamond(), cycle(), arrays(), deep_list()] {
        let bytes = archive(&mut g);
        let view = ArchiveView::validate(&bytes, &g.1, &mut NullSink).expect("golden validates");
        assert!(view.object_count() > 0);
    }
}
