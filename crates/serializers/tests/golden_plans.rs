//! Golden cross-mode tests for the compiled-plan executors.
//!
//! The compiled path is a pure host-side optimization: for every backend
//! and every graph it must produce **byte-identical streams** and an
//! **op-for-op identical narration** to the interpretive field-walking
//! path — including on malformed input, where both modes must fail with
//! the same error after narrating the same op prefix. These tests pin
//! that contract.

use sdheap::builder::Init;
use sdheap::{
    isomorphic_with, Addr, FieldKind, GraphBuilder, Heap, IsoOptions, KlassRegistry, ValueType,
};
use serializers::{JavaSd, JsonLike, Kryo, Op, ProtoLike, Serializer, TraceSink};

/// Records the exact op sequence (batched deliveries flatten through the
/// default `ops` impl, so interpretive and compiled recordings compare
/// directly).
#[derive(Default)]
struct RecordingSink(Vec<Op>);

impl TraceSink for RecordingSink {
    fn op(&mut self, op: Op) {
        self.0.push(op);
    }
}

/// Backend under test in both modes.
fn backends() -> Vec<(&'static str, Box<dyn Serializer>, Box<dyn Serializer>)> {
    vec![
        (
            "JavaSd",
            Box::new(JavaSd::interpretive()) as Box<dyn Serializer>,
            Box::new(JavaSd::with_compiled_plans(true)) as Box<dyn Serializer>,
        ),
        (
            "Kryo",
            Box::new(Kryo::interpretive()),
            Box::new(Kryo::with_compiled_plans(true)),
        ),
        (
            "ProtoLike",
            Box::new(ProtoLike::interpretive()),
            Box::new(ProtoLike::with_compiled_plans(true)),
        ),
        (
            "JsonLike",
            Box::new(JsonLike::interpretive()),
            Box::new(JsonLike::with_compiled_plans(true)),
        ),
    ]
}

type Graph = (Heap, KlassRegistry, Addr);

/// Mixed-width fields with interleaved refs (runs split at every ref),
/// diamond sharing of a value array.
fn diamond() -> Graph {
    let mut b = GraphBuilder::new(1 << 18);
    let m = b.klass(
        "Mixed",
        vec![
            FieldKind::Value(ValueType::Long),
            FieldKind::Value(ValueType::Int),
            FieldKind::Value(ValueType::Char),
            FieldKind::Value(ValueType::Byte),
            FieldKind::Ref,
            FieldKind::Value(ValueType::Boolean),
            FieldKind::Value(ValueType::Double),
            FieldKind::Ref,
            FieldKind::Value(ValueType::Int),
        ],
    );
    let d = b.array_klass("double[]", FieldKind::Value(ValueType::Double));
    let shared = b
        .value_array(d, &[f64::to_bits(1.5), f64::to_bits(-2.25), 0])
        .unwrap();
    let left = b
        .object(
            m,
            &[
                Init::Val(0x0123_4567_89ab_cdef),
                Init::Val(0xffff_fffe),
                Init::Val(0x41),
                Init::Val(0x7f),
                Init::Ref(shared),
                Init::Val(1),
                Init::Val(f64::to_bits(0.5)),
                Init::Null,
                Init::Val(42),
            ],
        )
        .unwrap();
    let root = b
        .object(
            m,
            &[
                Init::Val(1),
                Init::Val(2),
                Init::Val(3),
                Init::Val(4),
                Init::Ref(left),
                Init::Val(0),
                Init::Val(f64::to_bits(-3.75)),
                Init::Ref(shared),
                Init::Val(5),
            ],
        )
        .unwrap();
    let (heap, reg) = b.finish();
    (heap, reg, root)
}

/// A two-node cycle (exercises the back-reference paths).
fn cycle() -> Graph {
    let mut b = GraphBuilder::new(1 << 16);
    let k = b.klass(
        "C",
        vec![FieldKind::Value(ValueType::Long), FieldKind::Ref],
    );
    let a = b.object(k, &[Init::Val(1), Init::Null]).unwrap();
    let c = b.object(k, &[Init::Val(2), Init::Ref(a)]).unwrap();
    let (mut heap, reg) = b.finish();
    heap.set_ref(a, 1, c);
    (heap, reg, c)
}

/// Value arrays of every formatting class plus a ref array with nulls
/// and sharing.
fn arrays() -> Graph {
    let mut b = GraphBuilder::new(1 << 18);
    let l = b.array_klass("long[]", FieldKind::Value(ValueType::Long));
    let d = b.array_klass("double[]", FieldKind::Value(ValueType::Double));
    let o = b.array_klass("Object[]", FieldKind::Ref);
    let longs = b.value_array(l, &[0, 1, u64::MAX, 300, 1 << 40]).unwrap();
    let doubles = b
        .value_array(d, &[f64::to_bits(0.0), f64::to_bits(6.25e3)])
        .unwrap();
    let empty = b.value_array(l, &[]).unwrap();
    let root = b
        .ref_array(o, &[longs, Addr::NULL, doubles, longs, empty])
        .unwrap();
    let (heap, reg) = b.finish();
    (heap, reg, root)
}

/// A linked list deep enough to stress resumable frames but within the
/// text parser's recursion cap.
fn deep_list() -> Graph {
    let mut b = GraphBuilder::new(1 << 20);
    let k = b.klass(
        "L",
        vec![FieldKind::Value(ValueType::Long), FieldKind::Ref],
    );
    let mut head = b.object(k, &[Init::Val(0), Init::Null]).unwrap();
    for i in 1..150u64 {
        head = b.object(k, &[Init::Val(i), Init::Ref(head)]).unwrap();
    }
    let (heap, reg) = b.finish();
    (heap, reg, head)
}

/// A registry with klasses but a null root.
fn null_root() -> Graph {
    let mut b = GraphBuilder::new(1 << 12);
    b.klass("N", vec![FieldKind::Value(ValueType::Long)]);
    let (heap, reg) = b.finish();
    (heap, reg, Addr::NULL)
}

fn graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("diamond", diamond()),
        ("cycle", cycle()),
        ("arrays", arrays()),
        ("deep_list", deep_list()),
        ("null_root", null_root()),
    ]
}

#[test]
fn compiled_streams_and_ops_match_interpretive() {
    for (gname, (mut heap, reg, root)) in graphs() {
        for (bname, interp, comp) in backends() {
            let mut isink = RecordingSink::default();
            let mut csink = RecordingSink::default();
            let ibytes = interp.serialize(&mut heap, &reg, root, &mut isink).unwrap();
            let cbytes = comp.serialize(&mut heap, &reg, root, &mut csink).unwrap();
            assert_eq!(ibytes, cbytes, "{bname}/{gname}: serialized stream differs");
            assert_eq!(
                isink.0, csink.0,
                "{bname}/{gname}: serialize op sequence differs"
            );

            let mut isink = RecordingSink::default();
            let mut csink = RecordingSink::default();
            let mut idst = Heap::with_base(Addr(0x2_0000_0000), 1 << 20);
            let mut cdst = Heap::with_base(Addr(0x2_0000_0000), 1 << 20);
            let iroot = interp.deserialize(&ibytes, &reg, &mut idst, &mut isink).unwrap();
            let croot = comp.deserialize(&cbytes, &reg, &mut cdst, &mut csink).unwrap();
            assert_eq!(
                isink.0, csink.0,
                "{bname}/{gname}: deserialize op sequence differs"
            );
            let opts = IsoOptions {
                check_identity_hash: false,
            };
            if !root.is_null() {
                assert!(
                    isomorphic_with(&heap, &reg, root, &cdst, croot, opts),
                    "{bname}/{gname}: compiled round trip not isomorphic"
                );
                assert!(
                    isomorphic_with(&idst, &reg, iroot, &cdst, croot, opts),
                    "{bname}/{gname}: modes deserialized different graphs"
                );
            } else {
                assert!(iroot.is_null() && croot.is_null(), "{bname}/{gname}");
            }
        }
    }
}

#[test]
fn compiled_serialize_into_reuses_buffer() {
    let (mut heap, reg, root) = diamond();
    for (bname, _, comp) in backends() {
        let expect = comp
            .serialize(&mut heap, &reg, root, &mut serializers::NullSink)
            .unwrap();
        let mut out = Vec::new();
        for _ in 0..3 {
            let n = comp
                .serialize_into(&mut heap, &reg, root, &mut serializers::NullSink, &mut out)
                .unwrap();
            assert_eq!(n, expect.len(), "{bname}: serialize_into length");
            assert_eq!(out, expect, "{bname}: serialize_into bytes");
        }
    }
}

/// Truncated input must fail identically in both modes: same error, same
/// narrated op prefix. This pins the compiled fast paths' fallback when a
/// whole-run bounds check fails.
#[test]
fn truncated_streams_error_identically() {
    let (mut heap, reg, root) = diamond();
    for (bname, interp, comp) in backends() {
        let bytes = interp
            .serialize(&mut heap, &reg, root, &mut serializers::NullSink)
            .unwrap();
        // Cut inside the header, inside field data, and one byte short.
        for cut in [1usize, bytes.len() / 4, bytes.len() / 2, bytes.len() - 1] {
            let cut_bytes = &bytes[..cut];
            let mut isink = RecordingSink::default();
            let mut csink = RecordingSink::default();
            let mut idst = Heap::with_base(Addr(0x2_0000_0000), 1 << 20);
            let mut cdst = Heap::with_base(Addr(0x2_0000_0000), 1 << 20);
            let ierr = interp
                .deserialize(cut_bytes, &reg, &mut idst, &mut isink)
                .unwrap_err();
            let cerr = comp
                .deserialize(cut_bytes, &reg, &mut cdst, &mut csink)
                .unwrap_err();
            assert_eq!(
                format!("{ierr:?}"),
                format!("{cerr:?}"),
                "{bname} cut={cut}: errors differ"
            );
            assert_eq!(
                isink.0, csink.0,
                "{bname} cut={cut}: error-path op sequences differ"
            );
        }
    }
}
