//! Seeded adversarial-input properties for the zero-copy archive:
//! [`ArchiveView::validate`] must never panic and never grant
//! out-of-bounds access, no matter how a valid archive is mutated.
//!
//! Validation proves *structure* (bounds, alignment, record acyclicity,
//! klass tags, reference targets); it deliberately does not checksum
//! payload words — that is the CRC frame's job one layer up. So the
//! properties split by mutation family:
//!
//! - **truncate / extend / header flips** break the structure the
//!   format self-describes → a typed [`ArchiveError`] every time;
//! - **arbitrary byte flips** either yield a typed error or leave a
//!   structurally valid archive (a payload flip), in which case every
//!   access the view serves — a full-image fold and a complete
//!   reconstruction — must stay in bounds and panic-free;
//! - **random garbage** never validates and never panics.

use sdheap::builder::Init;
use sdheap::rng::Rng;
use sdheap::{Addr, FieldKind, GraphBuilder, Heap, KlassRegistry, ValueType};
use serializers::{Archive, ArchiveView, NullSink, Serializer};

/// A compact recipe for a random object graph (same shape as
/// `prop_roundtrip`): per node a class pick, a value, and up to three
/// edges into the node list, allowing sharing and cycles.
struct GraphRecipe {
    nodes: Vec<(u8, u64, [u8; 3])>,
}

fn random_recipe(rng: &mut Rng) -> GraphRecipe {
    let n = rng.gen_range_usize(1, 40);
    GraphRecipe {
        nodes: (0..n)
            .map(|_| {
                let pick = rng.next_u64() as u8;
                let value = rng.next_u64();
                let edges = [
                    rng.next_u64() as u8,
                    rng.next_u64() as u8,
                    rng.next_u64() as u8,
                ];
                (pick, value, edges)
            })
            .collect(),
    }
}

/// Builds a heap from a recipe. Classes:
/// 0: {long, ref}  1: {ref, ref, int}  2: {long}  3: ref-array of up to 3
fn build(recipe: &GraphRecipe) -> (Heap, KlassRegistry, Addr) {
    let mut b = GraphBuilder::new(1 << 22);
    let k0 = b.klass("A", vec![FieldKind::Value(ValueType::Long), FieldKind::Ref]);
    let k1 = b.klass(
        "B",
        vec![FieldKind::Ref, FieldKind::Ref, FieldKind::Value(ValueType::Int)],
    );
    let k2 = b.klass("C", vec![FieldKind::Value(ValueType::Long)]);
    let k3 = b.array_klass("Object[]", FieldKind::Ref);

    let mut addrs = Vec::with_capacity(recipe.nodes.len());
    for &(pick, value, edges) in &recipe.nodes {
        let addr = match pick % 4 {
            0 => b.object(k0, &[Init::Val(value), Init::Null]).unwrap(),
            1 => b
                .object(k1, &[Init::Null, Init::Null, Init::Val(value & 0xffff_ffff)])
                .unwrap(),
            2 => b.object(k2, &[Init::Val(value)]).unwrap(),
            _ => {
                let len = (edges[0] % 4) as usize;
                b.ref_array(k3, &vec![Addr::NULL; len]).unwrap()
            }
        };
        addrs.push(addr);
    }
    let n = addrs.len();
    for (i, &(pick, _, edges)) in recipe.nodes.iter().enumerate() {
        let target = |e: u8| -> Addr {
            if e == 0 {
                Addr::NULL
            } else {
                addrs[(e as usize) % n]
            }
        };
        match pick % 4 {
            0 => b.link(addrs[i], 1, target(edges[0])),
            1 => {
                b.link(addrs[i], 0, target(edges[0]));
                b.link(addrs[i], 1, target(edges[1]));
            }
            2 => {}
            _ => {
                let len = (edges[0] % 4) as usize;
                for (slot, &e) in edges.iter().take(len).enumerate() {
                    b.set_array_ref(addrs[i], slot, target(e));
                }
            }
        }
    }
    let root = addrs[0];
    let (heap, reg) = b.finish();
    (heap, reg, root)
}

fn archive_of(heap: &mut Heap, reg: &KlassRegistry, root: Addr) -> Vec<u8> {
    heap.gc_clear_serialization_metadata(reg);
    Archive::new()
        .serialize(heap, reg, root, &mut NullSink)
        .expect("valid graphs always archive")
}

/// Exhaustively exercises every access path a validated view offers —
/// the full-image fold and a complete reconstruction — and must return
/// without panicking for any structurally valid archive.
fn walk_everything(bytes: &[u8], reg: &KlassRegistry) {
    let view = ArchiveView::validate(bytes, reg, &mut NullSink).expect("caller checked Ok");
    let _ = view.fold_words(&mut NullSink);
    for i in 0..view.object_count() {
        let obj = view.starts()[i as usize];
        let _ = view.klass_id(obj);
        let _ = view.mark_word(obj);
    }
    drop(view);
    // Reconstruction touches every word and rebases every reference.
    let mut dst = Heap::with_base(Addr(0x2_0000_0000), 1 << 22);
    let _ = Archive::new().deserialize(bytes, reg, &mut dst, &mut NullSink);
}

const CASES: usize = 24;

/// Arbitrary single-byte flips: a typed error, or a payload-only change
/// that every access path survives. Never a panic.
#[test]
fn flipped_archives_error_or_stay_bounded() {
    let mut rng = Rng::new(0xA7C4_0001);
    for case in 0..CASES {
        let (mut heap, reg, root) = build(&random_recipe(&mut rng));
        let bytes = archive_of(&mut heap, &reg, root);
        for _ in 0..16 {
            let mut bad = bytes.clone();
            let pos = rng.gen_range_usize(0, bad.len());
            let mask = (rng.next_u64() as u8) | 1;
            bad[pos] ^= mask;
            match ArchiveView::validate(&bad, &reg, &mut NullSink) {
                // Typed rejection: rendering it exercises Display.
                Err(e) => assert!(!e.to_string().is_empty(), "case {case}"),
                // A payload flip: structure intact, access must stay
                // in bounds through a full fold and reconstruction.
                Ok(view) => {
                    drop(view);
                    walk_everything(&bad, &reg);
                }
            }
        }
    }
}

/// Truncation at any point is always a typed error: below the header it
/// cannot parse, inside the image the self-described sizes no longer
/// land on the declared end.
#[test]
fn truncated_archives_always_error() {
    let mut rng = Rng::new(0xA7C4_0002);
    for case in 0..CASES {
        let (mut heap, reg, root) = build(&random_recipe(&mut rng));
        let bytes = archive_of(&mut heap, &reg, root);
        for _ in 0..8 {
            let cut = rng.gen_range_usize(0, bytes.len());
            let err = ArchiveView::validate(&bytes[..cut], &reg, &mut NullSink)
                .map(|v| v.object_count())
                .expect_err("truncated archive must not validate");
            assert!(!err.to_string().is_empty(), "case {case} cut {cut}");
        }
    }
}

/// Trailing garbage is always a typed error: the declared image size
/// must match the buffer exactly, so no access past the image can ever
/// be justified by padding.
#[test]
fn extended_archives_always_error() {
    let mut rng = Rng::new(0xA7C4_0003);
    for case in 0..CASES {
        let (mut heap, reg, root) = build(&random_recipe(&mut rng));
        let bytes = archive_of(&mut heap, &reg, root);
        for _ in 0..8 {
            let mut bad = bytes.clone();
            let extra = rng.gen_range_usize(1, 64);
            for _ in 0..extra {
                bad.push(rng.next_u64() as u8);
            }
            let err = ArchiveView::validate(&bad, &reg, &mut NullSink)
                .map(|v| v.object_count())
                .expect_err("extended archive must not validate");
            assert!(!err.to_string().is_empty(), "case {case} extra {extra}");
        }
    }
}

/// Every flip inside the 16-byte header is a typed error: magic,
/// version, image size and record count are all load-bearing.
#[test]
fn header_flips_always_error() {
    let mut rng = Rng::new(0xA7C4_0004);
    for case in 0..CASES {
        let (mut heap, reg, root) = build(&random_recipe(&mut rng));
        let bytes = archive_of(&mut heap, &reg, root);
        for pos in 0..16 {
            let mut bad = bytes.clone();
            bad[pos] ^= (rng.next_u64() as u8) | 1;
            let err = ArchiveView::validate(&bad, &reg, &mut NullSink)
                .map(|v| v.object_count())
                .expect_err("header-corrupt archive must not validate");
            assert!(!err.to_string().is_empty(), "case {case} pos {pos}");
        }
    }
}

/// Random byte soups never validate and never panic — the magic alone
/// rejects them, and shorter-than-header inputs are typed truncations.
#[test]
fn garbage_never_validates() {
    let mut rng = Rng::new(0xA7C4_0005);
    let (_heap, reg, _root) = build(&random_recipe(&mut Rng::new(1)));
    for case in 0..256 {
        let len = rng.gen_range_usize(0, 512);
        let soup: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let err = ArchiveView::validate(&soup, &reg, &mut NullSink)
            .map(|v| v.object_count())
            .expect_err("garbage must not validate");
        assert!(!err.to_string().is_empty(), "case {case}");
    }
}
