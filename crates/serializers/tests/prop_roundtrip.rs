//! Seeded randomized round-trip tests: every serializer must reconstruct
//! an isomorphic copy of arbitrary random object graphs.
//!
//! Formerly proptest properties; now deterministic loops over the
//! in-repo PRNG so the suite runs offline.

use sdheap::builder::Init;
use sdheap::rng::Rng;
use sdheap::{
    isomorphic_with, Addr, FieldKind, GraphBuilder, Heap, IsoOptions, KlassRegistry, ValueType,
};
use serializers::{JavaSd, Kryo, NullSink, Serializer, Skyway};

/// A compact recipe for a random object graph.
///
/// Per object: (class pick 0..3, long value, up to 3 edges as indices
/// into the object list *modulo* position, allowing forward/cyclic
/// edges).
struct GraphRecipe {
    nodes: Vec<(u8, u64, [u8; 3])>,
}

fn random_recipe(rng: &mut Rng) -> GraphRecipe {
    let n = rng.gen_range_usize(1, 40);
    GraphRecipe {
        nodes: (0..n)
            .map(|_| {
                let pick = rng.next_u64() as u8;
                let value = rng.next_u64();
                let edges = [
                    rng.next_u64() as u8,
                    rng.next_u64() as u8,
                    rng.next_u64() as u8,
                ];
                (pick, value, edges)
            })
            .collect(),
    }
}

/// Builds a heap from a recipe. Classes:
/// 0: {long, ref}  1: {ref, ref, int}  2: {long}  3: ref-array of up to 3
fn build(recipe: &GraphRecipe) -> (Heap, KlassRegistry, Addr) {
    let mut b = GraphBuilder::new(1 << 22);
    let k0 = b.klass("A", vec![FieldKind::Value(ValueType::Long), FieldKind::Ref]);
    let k1 = b.klass(
        "B",
        vec![FieldKind::Ref, FieldKind::Ref, FieldKind::Value(ValueType::Int)],
    );
    let k2 = b.klass("C", vec![FieldKind::Value(ValueType::Long)]);
    let k3 = b.array_klass("Object[]", FieldKind::Ref);

    // First pass: allocate all objects with null refs.
    let mut addrs = Vec::with_capacity(recipe.nodes.len());
    for &(pick, value, edges) in &recipe.nodes {
        let addr = match pick % 4 {
            0 => b.object(k0, &[Init::Val(value), Init::Null]).unwrap(),
            1 => b
                .object(k1, &[Init::Null, Init::Null, Init::Val(value & 0xffff_ffff)])
                .unwrap(),
            2 => b.object(k2, &[Init::Val(value)]).unwrap(),
            _ => {
                let len = (edges[0] % 4) as usize;
                b.ref_array(k3, &vec![Addr::NULL; len]).unwrap()
            }
        };
        addrs.push(addr);
    }
    // Second pass: wire edges (may create sharing and cycles).
    let n = addrs.len();
    for (i, &(pick, _, edges)) in recipe.nodes.iter().enumerate() {
        let target = |e: u8| -> Addr {
            if e == 0 {
                Addr::NULL
            } else {
                addrs[(e as usize) % n]
            }
        };
        match pick % 4 {
            0 => b.link(addrs[i], 1, target(edges[0])),
            1 => {
                b.link(addrs[i], 0, target(edges[0]));
                b.link(addrs[i], 1, target(edges[1]));
            }
            2 => {}
            _ => {
                let len = (edges[0] % 4) as usize;
                for (slot, &e) in edges.iter().take(len).enumerate() {
                    b.set_array_ref(addrs[i], slot, target(e));
                }
            }
        }
    }
    let root = addrs[0];
    let (heap, reg) = b.finish();
    (heap, reg, root)
}

fn roundtrip_ok(ser: &dyn Serializer, heap: &mut Heap, reg: &KlassRegistry, root: Addr) -> bool {
    let bytes = match ser.serialize(heap, reg, root, &mut NullSink) {
        Ok(b) => b,
        Err(_) => return false,
    };
    let mut dst = Heap::with_base(Addr(0x2_0000_0000), heap.capacity_bytes());
    let new_root = match ser.deserialize(&bytes, reg, &mut dst, &mut NullSink) {
        Ok(r) => r,
        Err(_) => return false,
    };
    isomorphic_with(
        heap,
        reg,
        root,
        &dst,
        new_root,
        IsoOptions {
            check_identity_hash: ser.preserves_identity_hash(),
        },
    )
}

const CASES: usize = 64;

#[test]
fn javasd_roundtrips_random_graphs() {
    let mut rng = Rng::new(0x5E_0001);
    for i in 0..CASES {
        let (mut heap, reg, root) = build(&random_recipe(&mut rng));
        assert!(roundtrip_ok(&JavaSd::new(), &mut heap, &reg, root), "case {i}");
    }
}

#[test]
fn kryo_roundtrips_random_graphs() {
    let mut rng = Rng::new(0x5E_0002);
    for i in 0..CASES {
        let (mut heap, reg, root) = build(&random_recipe(&mut rng));
        assert!(roundtrip_ok(&Kryo::new(), &mut heap, &reg, root), "case {i}");
    }
}

#[test]
fn skyway_roundtrips_random_graphs() {
    let mut rng = Rng::new(0x5E_0003);
    for i in 0..CASES {
        let (mut heap, reg, root) = build(&random_recipe(&mut rng));
        assert!(roundtrip_ok(&Skyway::new(), &mut heap, &reg, root), "case {i}");
    }
}

/// Serialized sizes always order Kryo ≤ Java S/D (integer IDs beat
/// embedded strings).
#[test]
fn kryo_never_larger_than_javasd() {
    let mut rng = Rng::new(0x5E_0004);
    for _ in 0..CASES {
        let (mut heap, reg, root) = build(&random_recipe(&mut rng));
        let kryo = Kryo::new().serialize(&mut heap, &reg, root, &mut NullSink).unwrap();
        let java = JavaSd::new().serialize(&mut heap, &reg, root, &mut NullSink).unwrap();
        assert!(kryo.len() <= java.len(), "kryo {} > java {}", kryo.len(), java.len());
    }
}
