//! The map-side executor: partition, coalesce, serialize, (optionally)
//! collect garbage between waves.

use crate::faults::{accel_scope, FaultTotals, ShuffleError};
use crate::ShuffleConfig;
use sdheap::{Addr, GcStats};
use sim::FaultConfig;
use store::{Backend, BlockStore, Engine, MissPolicy, NoLineage, StoreConfig};
use telemetry::ids::{MAPPER_PID_BASE, T_DISK, T_MAIN, T_NIC, T_SEND};
use telemetry::{EntityId, Instant, NoopSink, Sink, Span};
use workloads::spark::agg::RECORD_HEAP_BYTES;

/// One serialized batch on its way from a mapper to a reducer.
#[derive(Clone, Debug)]
pub struct Message {
    /// Source mapper.
    pub src: usize,
    /// Destination reducer.
    pub dst: usize,
    /// Per-`(src, dst)` flush sequence number.
    pub seq: u64,
    /// The serialized stream.
    pub bytes: Vec<u8>,
    /// Records coalesced into this batch.
    pub records: u64,
    /// The backend that produced `bytes` — normally the run's backend,
    /// but an accelerator-faulted flush degrades to the configured
    /// software fallback, and the reducer must decode with the match.
    pub backend: Backend,
    /// Engine busy time serializing the batch.
    pub ser_ns: f64,
    /// Completion time on the mapper's simulated clock (includes any GC
    /// pauses charged before this flush).
    pub ser_done_ns: f64,
}

/// Accumulated GC activity of one executor (or a whole stage).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct GcTotals {
    /// Collections run.
    pub collections: u64,
    /// Total simulated stop-the-world pause.
    pub pause_ns: f64,
    /// Bytes reclaimed across collections (shipped batches and already
    /// serialized records become garbage).
    pub reclaimed_bytes: u64,
    /// Live bytes evacuated across collections.
    pub live_bytes: u64,
}

impl GcTotals {
    fn absorb(&mut self, s: &GcStats) {
        self.collections += 1;
        self.pause_ns += s.simulated_cost_ns();
        self.reclaimed_bytes += s.reclaimed_bytes;
        self.live_bytes += s.live_bytes;
    }

    /// Merges another executor's totals into this one.
    pub fn merge(&mut self, other: &GcTotals) {
        self.collections += other.collections;
        self.pause_ns += other.pause_ns;
        self.reclaimed_bytes += other.reclaimed_bytes;
        self.live_bytes += other.live_bytes;
    }
}

/// Accumulated spill activity of one mapper's block store (or a whole
/// stage).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SpillTotals {
    /// Batches evicted to the simulated disk.
    pub spills: u64,
    /// Bytes written to spill files.
    pub spilled_bytes: u64,
    /// Simulated time spent writing spill files.
    pub spill_ns: f64,
    /// Batches read back from spill files at serve time.
    pub fetches: u64,
    /// Simulated time spent reading spill files.
    pub fetch_ns: f64,
}

impl SpillTotals {
    /// Merges another executor's totals into this one.
    pub fn merge(&mut self, other: &SpillTotals) {
        self.spills += other.spills;
        self.spilled_bytes += other.spilled_bytes;
        self.spill_ns += other.spill_ns;
        self.fetches += other.fetches;
        self.fetch_ns += other.fetch_ns;
    }
}

/// Everything one map executor produced.
#[derive(Debug)]
pub struct MapOutcome {
    /// Serialized batches in flush order.
    pub messages: Vec<Message>,
    /// The mapper's clock when its last batch finished (includes GC
    /// pauses and any spill/serve disk time).
    pub clock_ns: f64,
    /// Summed engine busy time.
    pub ser_busy_ns: f64,
    /// GC activity (zero when GC pressure is off).
    pub gc: GcTotals,
    /// Block-store spill activity (`None` when spilling is disabled).
    pub spill: Option<SpillTotals>,
    /// Fault activity on this executor (accelerator faults, spill read
    /// retries; the service adds deaths and wire faults).
    pub faults: FaultTotals,
}

/// Runs map executor `m` to completion: builds its partition, shuffles
/// every record into a per-reducer pending queue, flushes each queue as
/// a coalesced `Object[]` batch whenever the estimated heap bytes reach
/// `cfg.flush_bytes`, and serializes each flush with the backend's
/// engine. With `cfg.gc_pressure`, a semispace collection runs between
/// record waves; unprocessed records and pending queues are the roots
/// (and get relocated), everything already serialized is reclaimed, and
/// the simulated pause is charged to the mapper's clock.
///
/// With `cfg.spill_bytes` set, serialized batches go into a per-mapper
/// [`BlockStore`] as they are produced — batches past the budget spill
/// to a simulated SSD — and are read back in flush order once the input
/// is exhausted (the shuffle-file serve), so each message's
/// `ser_done_ns` becomes its retrieval completion and all disk time
/// lands on the mapper's clock.
///
/// Under fault injection, each Cereal flush can draw an **accelerator
/// fault**: the partition degrades to the configured software fallback
/// serializer (its slower busy time charged to the mapper's clock, the
/// message tagged with the fallback backend so the reducer decodes with
/// the match), and spill reads can draw transient errors recovered by
/// the store's retry loop.
///
/// # Errors
/// Propagates [`ShuffleError::Store`] from unrecoverable spill faults.
pub fn run_mapper(
    cfg: &ShuffleConfig,
    backend: Backend,
    m: usize,
) -> Result<MapOutcome, ShuffleError> {
    run_mapper_sunk(cfg, backend, m, &mut NoopSink)
}

/// [`run_mapper`] with a telemetry sink: the mapper's simulated
/// timeline is emitted as spans on its own process — `serialize` spans
/// (and `accel.fault` instants) on the main lane, `gc.pause` spans
/// between waves, `serve.fetch` spans for the shuffle-file serve, and
/// the spill store's device busy windows as `disk.read`/`disk.write`
/// spans on the disk lane. Counters (`shuffle.*`) are booked at the
/// event sites so they reconcile with the composed [`MapOutcome`] by
/// construction. The returned outcome is identical to the untraced
/// path for any sink.
///
/// # Errors
/// Same as [`run_mapper`].
pub fn run_mapper_sunk<S: Sink>(
    cfg: &ShuffleConfig,
    backend: Backend,
    m: usize,
    sink: &mut S,
) -> Result<MapOutcome, ShuffleError> {
    let pid = MAPPER_PID_BASE + m as u32;
    let main = EntityId { pid, tid: T_MAIN };
    if S::ENABLED {
        sink.name_process(pid, &format!("mapper {m}"));
        sink.name_thread(pid, T_MAIN, "map");
        sink.name_thread(pid, T_DISK, "spill disk");
        sink.name_thread(pid, T_SEND, "send");
        sink.name_thread(pid, T_NIC, "nic");
    }
    let part = cfg.agg().build_partition(m);
    let mut heap = part.heap;
    let reg = part.reg;
    let batch_klass = part.batch_klass;
    let mut records = part.records;
    let mut engine = Engine::new(backend, &reg);
    if backend == Backend::Cereal {
        // Play the GC's role once up front, as the harness does: clear
        // any stale serialization metadata before hardware serialization.
        heap.gc_clear_serialization_metadata(&reg);
    }

    let reducers = cfg.reducers;
    let mut pending: Vec<Vec<Addr>> = vec![Vec::new(); reducers];
    let mut seq = vec![0u64; reducers];
    let mut messages = Vec::new();
    let mut clock = 0.0f64;
    let mut pause_total = 0.0f64;
    let mut ser_busy = 0.0f64;
    let mut gc = GcTotals::default();
    let mut faults = FaultTotals::default();
    // Accelerator faults are drawn per flush from this mapper's private
    // stream (only the Cereal engine can fault in hardware).
    let mut accel_inj = if backend == Backend::Cereal {
        cfg.faults.map(|s| s.cfg.scoped(accel_scope(m)))
    } else {
        None
    };
    let fallback_backend = cfg.faults.map_or(Backend::Kryo, |s| s.fallback);
    let mut fallback: Option<Engine> = None;
    // Shuffle batches have no cheap lineage: evictions always spill, and
    // injected spill *corruption* is zeroed here (a corrupt shuffle file
    // would be unrecoverable without re-running the mapper); the
    // transient read-error class still applies, recovered by the
    // store's device-level retry loop.
    let mut blocks = (cfg.spill_bytes > 0).then(|| {
        let fault = cfg.faults.map(|s| FaultConfig {
            seed: s.cfg.seed ^ (0x5B11_0000_0000 | m as u64),
            spill_corruption: 0.0,
            ..s.cfg
        });
        BlockStore::new(StoreConfig {
            memory_budget: cfg.spill_bytes,
            disk: sim::DiskConfig::ssd(),
            policy: MissPolicy::Fetch,
            fault,
            checksum: cfg.checksum,
        })
    });
    if S::ENABLED {
        if let Some(store) = &mut blocks {
            store.record_disk_tape();
        }
    }

    let mut flush = |dst: usize,
                     pending: &mut Vec<Addr>,
                     heap: &mut sdheap::Heap,
                     engine: &mut Engine,
                     blocks: &mut Option<BlockStore>,
                     clock: &mut f64,
                     pause_total: f64,
                     sink: &mut S| {
        if pending.is_empty() {
            return;
        }
        let batch = heap
            .alloc_array(&reg, batch_klass, pending.len())
            .expect("heap capacity covers coalesced batches");
        for (j, &r) in pending.iter().enumerate() {
            heap.set_array_elem(batch, j, r.get());
        }
        let accel_faulted = accel_inj.as_mut().is_some_and(|inj| inj.accel_faults());
        let (bytes, t, used_backend) = if accel_faulted {
            // Hardware request faulted: this partition degrades to the
            // software fallback, paying its busy time on the host core.
            let fb = fallback.get_or_insert_with(|| Engine::new(fallback_backend, &reg));
            let (bytes, t) = fb.serialize_framed_sunk(heap, &reg, batch, cfg.checksum, sink);
            faults.accel_faults += 1;
            faults.fallback_ns += t.busy_ns;
            (bytes, t, fallback_backend)
        } else {
            let (bytes, t) = engine.serialize_framed_sunk(heap, &reg, batch, cfg.checksum, sink);
            (bytes, t, backend)
        };
        let ser_done = match t.done_ns {
            // The accelerator schedules across its units on its own
            // timeline; GC pauses shift that timeline wholesale.
            Some(end_ns) => end_ns + pause_total,
            // Software serializes on the mapper's single host core.
            None => *clock + t.busy_ns,
        };
        *clock = clock.max(ser_done);
        ser_busy += t.busy_ns;
        if S::ENABLED {
            sink.count("shuffle.messages", 1);
            sink.count("shuffle.wire_bytes", bytes.len() as u64);
            sink.observe("shuffle.ser_busy_ns", t.busy_ns);
            sink.span(Span {
                entity: main,
                name: "serialize",
                t0_ns: ser_done - t.busy_ns,
                t1_ns: ser_done,
                attrs: vec![
                    ("dst", (dst as u64).into()),
                    ("bytes", (bytes.len() as u64).into()),
                    ("records", (pending.len() as u64).into()),
                    ("backend", used_backend.name().into()),
                ],
            });
            if accel_faulted {
                sink.count("shuffle.accel_faults", 1);
                sink.instant(Instant {
                    entity: main,
                    name: "accel.fault",
                    t_ns: ser_done - t.busy_ns,
                    attrs: Vec::new(),
                });
            }
        }
        let bytes = match blocks {
            // Batches park in the block store until serve time; eviction
            // spill writes are charged to the mapper's clock here.
            Some(store) => {
                let (_, done) = store.put(bytes, f64::INFINITY, *clock);
                *clock = done;
                Vec::new()
            }
            None => bytes,
        };
        messages.push(Message {
            src: m,
            dst,
            seq: seq[dst],
            bytes,
            records: pending.len() as u64,
            backend: used_backend,
            ser_ns: t.busy_ns,
            ser_done_ns: ser_done,
        });
        seq[dst] += 1;
        pending.clear();
    };

    let waves = if cfg.gc_pressure { cfg.gc_waves.max(1) } else { 1 };
    let wave_len = records.len().div_ceil(waves).max(1);
    let mut i = 0usize;
    for wave in 0..waves {
        let end = ((wave + 1) * wave_len).min(records.len());
        while i < end {
            let r = records[i];
            let key = heap.field(r, 0);
            let dst = (key % reducers as u64) as usize;
            pending[dst].push(r);
            if pending[dst].len() as u64 * RECORD_HEAP_BYTES >= cfg.flush_bytes {
                let mut q = std::mem::take(&mut pending[dst]);
                flush(dst, &mut q, &mut heap, &mut engine, &mut blocks, &mut clock, pause_total, &mut *sink);
                pending[dst] = q;
            }
            i += 1;
        }
        if cfg.gc_pressure && wave + 1 < waves {
            // Roots: records not yet shuffled, then the pending queues in
            // reducer order. Shipped batches (and the records inside
            // them that are no longer rooted) are garbage.
            let mut roots: Vec<Addr> = records[i..].to_vec();
            for q in &pending {
                roots.extend_from_slice(q);
            }
            let (new_heap, new_roots, stats) =
                sdheap::gc::collect(&heap, &reg, &roots).expect("live set fits the semispace");
            heap = new_heap;
            let mut relocated = new_roots.into_iter();
            for slot in records[i..].iter_mut() {
                *slot = relocated.next().expect("one relocation per root");
            }
            for q in pending.iter_mut() {
                for slot in q.iter_mut() {
                    *slot = relocated.next().expect("one relocation per root");
                }
            }
            let pause = stats.simulated_cost_ns();
            if S::ENABLED {
                sink.count("shuffle.gc_collections", 1);
                sink.observe("shuffle.gc_pause_ns", pause);
                sink.span(Span {
                    entity: main,
                    name: "gc.pause",
                    t0_ns: clock,
                    t1_ns: clock + pause,
                    attrs: vec![
                        ("reclaimed_bytes", stats.reclaimed_bytes.into()),
                        ("live_bytes", stats.live_bytes.into()),
                    ],
                });
            }
            clock += pause;
            pause_total += pause;
            gc.absorb(&stats);
        }
    }
    for dst in 0..reducers {
        let mut q = std::mem::take(&mut pending[dst]);
        flush(dst, &mut q, &mut heap, &mut engine, &mut blocks, &mut clock, pause_total, &mut *sink);
        pending[dst] = q;
    }
    drop(flush);

    // Serve the shuffle files: read every batch back out of the store in
    // flush order. Resident batches are free; spilled ones pay the disk
    // (and any injected transient read errors pay the retry loop), on
    // the mapper's clock. Each message completes — and so becomes
    // sendable — when its batch is back in memory.
    let spill = match blocks {
        Some(mut store) => {
            let mut none = NoLineage;
            for (i, msg) in messages.iter_mut().enumerate() {
                let before = clock;
                let access = store.get(i, clock, &mut none)?;
                clock = access.done_ns;
                if S::ENABLED && clock > before {
                    sink.span(Span {
                        entity: main,
                        name: "serve.fetch",
                        t0_ns: before,
                        t1_ns: clock,
                        attrs: vec![("batch", (i as u64).into())],
                    });
                }
                msg.bytes = store.bytes(i).expect("fetch policy retains every block").to_vec();
                msg.ser_done_ns = clock;
            }
            let s = store.stats();
            faults.spill_retries += s.read_retries;
            faults.recovery_ns += s.retry_ns;
            if S::ENABLED {
                let lane = EntityId { pid, tid: T_DISK };
                for w in store.take_disk_tape() {
                    sink.span(Span {
                        entity: lane,
                        name: if w.write { "disk.write" } else { "disk.read" },
                        t0_ns: w.start_ns,
                        t1_ns: w.end_ns,
                        attrs: vec![("bytes", w.bytes.into())],
                    });
                }
                sink.count("shuffle.spills", s.spills);
                sink.count("shuffle.spilled_bytes", s.spilled_bytes);
                sink.count("shuffle.spill_fetches", s.disk_fetches);
                sink.count("shuffle.spill_retries", s.read_retries);
            }
            Some(SpillTotals {
                spills: s.spills,
                spilled_bytes: s.spilled_bytes,
                spill_ns: s.spill_ns,
                fetches: s.disk_fetches,
                fetch_ns: s.fetch_ns,
            })
        }
        None => None,
    };

    Ok(MapOutcome {
        messages,
        clock_ns: clock,
        ser_busy_ns: ser_busy,
        gc,
        spill,
        faults,
    })
}
