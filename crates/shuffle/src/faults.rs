//! Shuffle fault model: typed errors, the injection spec, per-message
//! wire-fault plans, and the recovery counters.
//!
//! Fault *decisions* are made here, ahead of the stages that act on
//! them: every message's retry plan is drawn from a PRNG stream scoped
//! by its **global message index** (the message list order is
//! deterministic), so the reduce stage (which demonstrates detection by
//! really flipping the planned byte) and the timeline composition
//! (which charges the retries, timeouts and backoff) see the same
//! schedule regardless of worker-thread count.

use sim::{FaultConfig, FaultInjector};
use std::fmt;
use store::{Backend, EngineError, StoreError};

/// Errors a shuffle run can surface. Anomalies are values, not panics:
/// binaries render them, tests assert the variant.
#[derive(Clone, Debug, PartialEq)]
pub enum ShuffleError {
    /// Wire-corruption injection is configured but streams carry no
    /// checksum frame, so corruption would be undetectable.
    ChecksumRequired,
    /// A planned corruption was *not* detected: the corrupted stream
    /// decoded without a checksum error.
    UndetectedCorruption {
        /// Source mapper of the corrupted batch.
        src: usize,
        /// Destination reducer.
        dst: usize,
        /// Flush sequence number.
        seq: u64,
    },
    /// A decoded batch did not hold the record count it was sent with.
    BadBatch {
        /// Source mapper.
        src: usize,
        /// Destination reducer.
        dst: usize,
        /// Flush sequence number.
        seq: u64,
    },
    /// Two reducers folded the same key — the partitioning broke.
    DuplicateKey(u64),
    /// Two backends disagree on the merged aggregate.
    FoldMismatch {
        /// First backend's display name.
        a: &'static str,
        /// Disagreeing backend's display name.
        b: &'static str,
    },
    /// A mapper's spill store failed.
    Store(StoreError),
    /// An engine rejected a stream (checksum or decode failure outside
    /// any planned fault).
    Engine(EngineError),
}

impl fmt::Display for ShuffleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShuffleError::ChecksumRequired => {
                write!(f, "wire-corruption injection requires checksummed frames")
            }
            ShuffleError::UndetectedCorruption { src, dst, seq } => write!(
                f,
                "corrupted batch {src}->{dst}#{seq} decoded without a checksum error"
            ),
            ShuffleError::BadBatch { src, dst, seq } => {
                write!(f, "batch {src}->{dst}#{seq} decoded to the wrong record count")
            }
            ShuffleError::DuplicateKey(k) => write!(f, "key {k} folded by two reducers"),
            ShuffleError::FoldMismatch { a, b } => {
                write!(f, "{a} and {b} disagree on the aggregate")
            }
            ShuffleError::Store(e) => write!(f, "spill store: {e}"),
            ShuffleError::Engine(e) => write!(f, "engine: {e}"),
        }
    }
}

impl std::error::Error for ShuffleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShuffleError::Store(e) => Some(e),
            ShuffleError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for ShuffleError {
    fn from(e: StoreError) -> Self {
        ShuffleError::Store(e)
    }
}

impl From<EngineError> for ShuffleError {
    fn from(e: EngineError) -> Self {
        ShuffleError::Engine(e)
    }
}

/// Fault injection for a shuffle run: the rates plus the software
/// serializer a faulted accelerator partition degrades to.
#[derive(Clone, Copy, Debug)]
pub struct FaultSpec {
    /// Rates, seed and recovery knobs.
    pub cfg: FaultConfig,
    /// Fallback backend for partitions whose accelerator request
    /// faulted (must be a software serializer).
    pub fallback: Backend,
}

impl FaultSpec {
    /// Every fault class at `rate`, degrading to Kryo.
    pub fn uniform(rate: f64, seed: u64) -> Self {
        FaultSpec {
            cfg: FaultConfig::uniform(rate, seed),
            fallback: Backend::Kryo,
        }
    }
}

/// Injector scope for message `i` of the global list (wire faults).
pub(crate) fn wire_scope(i: usize) -> u64 {
    0x77AE_0000_0000 | i as u64
}

/// Injector scope for mapper `m`'s death draw.
pub(crate) fn death_scope(m: usize) -> u64 {
    0xDEAD_0000_0000 | m as u64
}

/// Injector scope for mapper `m`'s accelerator-fault draws.
pub(crate) fn accel_scope(m: usize) -> u64 {
    0xACCE_0000_0000 | m as u64
}

/// One transmission attempt of a message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Attempt {
    /// The transfer vanishes; the sender times out and retries.
    Lost,
    /// One wire byte is flipped in flight; the receiver's CRC check
    /// detects it, NACKs, and the sender retries.
    Corrupt {
        /// Byte position flipped.
        pos: usize,
        /// Non-zero xor mask applied to it.
        mask: u8,
    },
    /// The transfer arrives intact.
    Clean,
}

/// A message's full transmission plan: zero or more failed attempts,
/// then exactly one final [`Attempt::Clean`] (the retry budget forces
/// eventual success, so folds stay exact).
#[derive(Clone, Debug, Default)]
pub struct MsgPlan {
    /// Attempts in order; empty means "no plan" (fault-free path).
    pub attempts: Vec<Attempt>,
}

impl MsgPlan {
    /// Failed attempts (retries the plan forces).
    pub fn retries(&self) -> usize {
        self.attempts.len().saturating_sub(1)
    }
}

/// Draws message `i`'s transmission plan. `wire_len` is the framed
/// stream length (corruption positions index into it). Both draws
/// happen on every attempt, in a fixed order, so the stream layout is
/// independent of which faults actually fire.
pub(crate) fn plan_message(cfg: &FaultConfig, i: usize, wire_len: usize) -> MsgPlan {
    let mut inj = FaultInjector::scoped(*cfg, wire_scope(i));
    let mut attempts = Vec::new();
    for k in 0..=cfg.max_retries {
        let lost = inj.lose_message();
        let corrupt = inj.corrupt_wire();
        if k == cfg.max_retries {
            break;
        }
        if lost {
            attempts.push(Attempt::Lost);
        } else if corrupt {
            let (pos, mask) = inj.corrupt_byte(wire_len);
            attempts.push(Attempt::Corrupt { pos, mask });
        } else {
            break;
        }
    }
    attempts.push(Attempt::Clean);
    MsgPlan { attempts }
}

/// Recovery counters of one shuffle run, summed across stages.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultTotals {
    /// Wire transfers whose CRC check failed at the receiver.
    pub wire_corruptions: u64,
    /// Wire transfers lost outright (sender timed out).
    pub lost_messages: u64,
    /// Retransmissions (lost + corrupt attempts).
    pub retries: u64,
    /// Map executors that died mid-stage and were re-executed.
    pub mapper_deaths: u64,
    /// Simulated time lost to death detection and re-execution.
    pub reexec_ns: f64,
    /// Accelerator requests that faulted and degraded to software.
    pub accel_faults: u64,
    /// Engine busy time spent in the software fallback serializer.
    pub fallback_ns: f64,
    /// Corrupted streams detected by the CRC check (wire + spill).
    pub checksum_errors: u64,
    /// Spill-reload read errors retried on mapper disks.
    pub spill_retries: u64,
    /// Simulated time lost to failed transfers, timeouts and backoff.
    pub recovery_ns: f64,
    /// Total bytes the fabric carried, retransmissions included.
    pub fabric_bytes: u64,
}

impl FaultTotals {
    /// Merges another stage's counters into this one.
    pub fn merge(&mut self, other: &FaultTotals) {
        self.wire_corruptions += other.wire_corruptions;
        self.lost_messages += other.lost_messages;
        self.retries += other.retries;
        self.mapper_deaths += other.mapper_deaths;
        self.reexec_ns += other.reexec_ns;
        self.accel_faults += other.accel_faults;
        self.fallback_ns += other.fallback_ns;
        self.checksum_errors += other.checksum_errors;
        self.spill_retries += other.spill_retries;
        self.recovery_ns += other.recovery_ns;
        self.fabric_bytes += other.fabric_bytes;
    }

    /// Useful wire bytes over total fabric bytes (1.0 when nothing was
    /// retransmitted; 0 when nothing was carried).
    pub fn goodput(&self, wire_bytes: u64) -> f64 {
        telemetry::ratio(wire_bytes as f64, self.fabric_bytes as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_end_clean_within_budget() {
        let cfg = FaultConfig::uniform(0.9, 77);
        for i in 0..200 {
            let plan = plan_message(&cfg, i, 1024);
            assert_eq!(*plan.attempts.last().unwrap(), Attempt::Clean);
            assert!(plan.attempts.len() as u32 <= cfg.max_retries + 1);
            for a in &plan.attempts[..plan.attempts.len() - 1] {
                assert_ne!(*a, Attempt::Clean, "only the final attempt is clean");
            }
        }
    }

    #[test]
    fn zero_rate_plans_are_single_clean() {
        let cfg = FaultConfig::none();
        for i in 0..50 {
            assert_eq!(plan_message(&cfg, i, 64).attempts, vec![Attempt::Clean]);
        }
    }

    #[test]
    fn plans_replay_identically() {
        let cfg = FaultConfig::uniform(0.5, 123);
        for i in 0..100 {
            let a = plan_message(&cfg, i, 512);
            let b = plan_message(&cfg, i, 512);
            assert_eq!(a.attempts, b.attempts, "message {i} plan must be stable");
        }
    }
}
