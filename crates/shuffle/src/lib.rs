//! `shuffle` — a simulated multi-executor shuffle service.
//!
//! The Cereal paper motivates serialization hardware with the data
//! movement inside analytics frameworks: a Spark shuffle is *serialize →
//! wire → deserialize*, repeated across every mapper/reducer pair. This
//! crate closes that loop end to end over the sibling crates' models:
//!
//! * **map executors** — `N` executors, each owning a private [`sdheap`]
//!   heap and PRNG-seeded partition of a Spark-like aggregation dataset
//!   ([`workloads::AggConfig`]). Each partitions its records by
//!   `key % reducers`, coalesces them into batches, and serializes every
//!   batch with any software [`serializers::Serializer`] (timed on the
//!   [`sim::Cpu`] host model) or the Cereal accelerator (timed by its
//!   unit models);
//! * **the fabric** — batches ship over a [`sim::net::Fabric`] full mesh
//!   of time-bucket-ledger links, so fan-out contends at each sender's
//!   egress NIC and incast at each receiver's ingress NIC;
//! * **reduce executors** — one per partition; each deserializes its
//!   incoming batches in deterministic `(mapper, sequence)` order and
//!   folds `(count, sum)` per key. The fold is checked against the
//!   dataset's independently computed expected aggregate;
//! * **flow control** — a bounded per-reducer in-flight window: a sender
//!   blocks while a reducer's undeserialized bytes would exceed the
//!   configured watermark (classic shuffle backpressure), and the report
//!   counts the blocks and the waiting time;
//! * **GC pressure mode** — optionally each mapper runs
//!   [`sdheap::gc::collect`] between record waves; live roots are
//!   relocated, shipped batches become reclaimable garbage, and the
//!   collector's simulated pause
//!   ([`sdheap::GcStats::simulated_cost_ns`]) is charged into the
//!   mapper's timeline;
//! * **map-side spill** — with [`ShuffleConfig::spill_bytes`] set, each
//!   mapper's serialized batches live in a [`store::BlockStore`]:
//!   batches past the budget spill to a simulated SSD and are read back
//!   when the shuffle files are served, with the disk time charged on
//!   the mapper's clock;
//! * **fault injection & recovery** — with [`ShuffleConfig::faults`]
//!   set, a seeded [`sim::FaultInjector`] loses and corrupts wire
//!   transfers (reducers detect corruption through the CRC frame;
//!   retransmissions pay timeout and exponential backoff on the
//!   simulated clock), kills mappers mid-stage (Spark-style
//!   re-execution), fails spill reads (device-level retries), and
//!   faults accelerator requests (the partition degrades to the
//!   configured software serializer). Every class is recovered, so the
//!   fold exactly matches the fault-free aggregate; anomalies surface
//!   as typed [`ShuffleError`]s, never panics.
//!
//! Executors really run on threads ([`ShuffleConfig::jobs`]), but every
//! number in the report is composed from per-executor simulated clocks
//! in a fixed order, so the report is byte-identical for any job count —
//! enforced by test.

pub mod exec;
pub mod faults;
pub mod reduce;
pub mod report;
pub mod service;
pub mod timeline;

pub use exec::{run_mapper, run_mapper_sunk, GcTotals, MapOutcome, Message, SpillTotals};
pub use faults::{Attempt, FaultSpec, FaultTotals, MsgPlan, ShuffleError};
pub use reduce::{run_reducer, run_reducer_sunk, ReduceOutcome};
pub use report::{fold_checksum, BackendReport, ShuffleReport};
pub use service::{run_backend, run_backend_sunk, run_suite, BackendRun};
pub use store::Backend;
pub use timeline::{compose, compose_sunk, NetStats};

use sim::LinkConfig;
use workloads::{AggConfig, KeySkew};

/// Shuffle service configuration.
#[derive(Clone, Copy, Debug)]
pub struct ShuffleConfig {
    /// Map-side executors.
    pub mappers: usize,
    /// Reduce-side executors (= shuffle partitions).
    pub reducers: usize,
    /// Records per map executor.
    pub records_per_mapper: usize,
    /// Distinct aggregation keys.
    pub distinct_keys: u64,
    /// Dataset seed.
    pub seed: u64,
    /// Key popularity distribution — [`KeySkew::Zipf`] concentrates
    /// records on the hot reducers.
    pub skew: KeySkew,
    /// Coalescing threshold: a partition's pending records are flushed
    /// into one serialized batch once their estimated heap bytes reach
    /// this size (the remainder flushes at end of input).
    pub flush_bytes: u64,
    /// Backpressure watermark: a sender blocks while the destination
    /// reducer's in-flight (sent but not yet deserialized) bytes would
    /// exceed this.
    pub watermark_bytes: u64,
    /// Map-side spill threshold: each mapper keeps its serialized
    /// batches in a [`store::BlockStore`] with this memory budget, so
    /// batches past the budget spill to a simulated SSD and are read
    /// back (both charged on the mapper's clock) when the shuffle files
    /// are served. `0` disables the store (batches stay in memory).
    pub spill_bytes: u64,
    /// Pair-link model for the fabric.
    pub link: LinkConfig,
    /// Display name for the link preset.
    pub link_name: &'static str,
    /// Run a garbage collection on each mapper between record waves.
    pub gc_pressure: bool,
    /// Number of record waves per mapper when `gc_pressure` is on.
    pub gc_waves: usize,
    /// Worker threads for executor fan-out (does not affect results).
    pub jobs: usize,
    /// Seal every serialized stream with the [`sdformat::frame`] CRC
    /// footer; reducers verify before decoding. Required for
    /// wire-corruption injection to be detectable.
    pub checksum: bool,
    /// Fault injection (`None` = the fault-free happy path, bit-for-bit
    /// identical to the pre-fault service).
    pub faults: Option<FaultSpec>,
}

impl ShuffleConfig {
    /// Small configuration for tests and `--smoke` runs.
    pub fn smoke() -> Self {
        ShuffleConfig {
            mappers: 4,
            reducers: 4,
            records_per_mapper: 256,
            distinct_keys: 32,
            seed: 0x5EED_0BEE,
            skew: KeySkew::Uniform,
            flush_bytes: 4 << 10,
            watermark_bytes: 16 << 10,
            spill_bytes: 0,
            link: LinkConfig::ten_gbe(),
            link_name: "10GbE",
            gc_pressure: false,
            gc_waves: 4,
            jobs: 1,
            checksum: false,
            faults: None,
        }
    }

    /// Full experiment configuration.
    pub fn full() -> Self {
        ShuffleConfig {
            mappers: 8,
            reducers: 8,
            records_per_mapper: 2048,
            distinct_keys: 256,
            seed: 0x5EED_0BEE,
            skew: KeySkew::Uniform,
            flush_bytes: 16 << 10,
            watermark_bytes: 64 << 10,
            spill_bytes: 0,
            link: LinkConfig::ten_gbe(),
            link_name: "10GbE",
            gc_pressure: false,
            gc_waves: 4,
            jobs: 1,
            checksum: false,
            faults: None,
        }
    }

    /// The dataset this configuration shuffles.
    pub fn agg(&self) -> AggConfig {
        AggConfig {
            mappers: self.mappers,
            records_per_mapper: self.records_per_mapper,
            distinct_keys: self.distinct_keys,
            seed: self.seed,
            skew: self.skew,
        }
    }
}
