//! The reduce-side executor: deserialize incoming batches, fold by key.

use crate::exec::Message;
use store::{Backend, Engine};
use sdheap::{Addr, KlassRegistry};
use std::collections::BTreeMap;

/// Everything one reduce executor produced.
#[derive(Debug)]
pub struct ReduceOutcome {
    /// Deserialization busy time per incoming message, in the order the
    /// messages were given (sorted by `(src, seq)`).
    pub de_ns: Vec<f64>,
    /// The reducer's aggregate: key → `(count, sum)`.
    pub fold: BTreeMap<u64, (u64, f64)>,
    /// Summed engine busy time.
    pub de_busy_ns: f64,
    /// Records decoded.
    pub records: u64,
}

/// Runs one reduce executor over its incoming messages, which must be
/// sorted by `(src, seq)` — the service's deterministic delivery order.
/// Each message is reconstructed into a fresh destination heap and its
/// records folded in array order, so for any one key the values
/// accumulate in `(mapper, generation)` order: exactly the order
/// [`workloads::AggConfig::expected_fold`] uses, making the sums
/// bit-identical.
pub fn run_reducer(
    backend: Backend,
    reg: &KlassRegistry,
    capacity: u64,
    msgs: &[&Message],
) -> ReduceOutcome {
    let mut engine = Engine::new(backend, reg);
    let mut out = ReduceOutcome {
        de_ns: Vec::with_capacity(msgs.len()),
        fold: BTreeMap::new(),
        de_busy_ns: 0.0,
        records: 0,
    };
    for msg in msgs {
        let (heap, root, ns) = engine.deserialize(&msg.bytes, reg, capacity);
        let n = heap.array_len(root);
        assert_eq!(n as u64, msg.records, "decoded batch size matches");
        for j in 0..n {
            let rec = Addr(heap.array_elem(root, j));
            let key = heap.field(rec, 0);
            let value = f64::from_bits(heap.field(rec, 1));
            let e = out.fold.entry(key).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += value;
        }
        out.records += n as u64;
        out.de_busy_ns += ns;
        out.de_ns.push(ns);
    }
    out
}
