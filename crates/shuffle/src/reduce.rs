//! The reduce-side executor: deserialize incoming batches, fold by key.

use crate::exec::Message;
use crate::faults::{Attempt, MsgPlan, ShuffleError};
use sdheap::{Addr, KlassRegistry};
use std::collections::BTreeMap;
use store::{validate_archive_sunk, Backend, Engine, EngineError};
use telemetry::ids::{REDUCER_PID_BASE, T_MAIN, T_NIC};
use telemetry::{NoopSink, Sink};

/// Everything one reduce executor produced.
#[derive(Debug)]
pub struct ReduceOutcome {
    /// Deserialization busy time per incoming message, in the order the
    /// messages were given (sorted by `(src, seq)`).
    pub de_ns: Vec<f64>,
    /// The reducer's aggregate: key → `(count, sum)`.
    pub fold: BTreeMap<u64, (u64, f64)>,
    /// Summed engine busy time.
    pub de_busy_ns: f64,
    /// Records decoded.
    pub records: u64,
    /// Corrupted arrivals the CRC frame check caught (each re-fetched;
    /// the timing lands in the timeline composition).
    pub checksum_errors: u64,
}

/// Runs one reduce executor over its incoming messages, which must be
/// sorted by `(src, seq)` — the service's deterministic delivery order.
/// Each message is reconstructed into a fresh destination heap
/// ([`Backend::Archive`] batches skip reconstruction: the image is
/// validated once and folded in place) and its records folded in array
/// order, so for any one key the values
/// accumulate in `(mapper, generation)` order: exactly the order
/// [`workloads::AggConfig::expected_fold`] uses, making the sums
/// bit-identical.
///
/// `plans` aligns with `msgs` (empty = fault-free): for every planned
/// [`Attempt::Corrupt`], the reducer really applies the byte flip to a
/// copy of the stream and demonstrates the checksum rejects it — an
/// undetected corruption is a [`ShuffleError::UndetectedCorruption`],
/// never a silent wrong fold. Messages are decoded with the engine
/// matching their [`Message::backend`] (accelerator-faulted batches
/// arrive in the fallback software format).
///
/// # Errors
/// [`ShuffleError::Engine`] when an intact stream fails to decode;
/// [`ShuffleError::BadBatch`] on a record-count mismatch;
/// [`ShuffleError::UndetectedCorruption`] if a planned flip decodes.
pub fn run_reducer(
    backend: Backend,
    reg: &KlassRegistry,
    capacity: u64,
    msgs: &[&Message],
    plans: &[&MsgPlan],
    checksum: bool,
) -> Result<ReduceOutcome, ShuffleError> {
    run_reducer_sunk(backend, reg, capacity, msgs, plans, checksum, 0, &mut NoopSink)
}

/// [`run_reducer`] with a telemetry sink. `r` is the reducer index (for
/// the process id). The reducer books decode-site counters
/// (`shuffle.records`, `shuffle.checksum_errors`) and the
/// `shuffle.de_busy_ns` histogram; its timeline *spans* are emitted by
/// the composition stage, which is where arrival and completion times
/// exist. The returned outcome is identical to the untraced path for
/// any sink.
///
/// # Errors
/// Same as [`run_reducer`].
#[allow(clippy::too_many_arguments)]
pub fn run_reducer_sunk<S: Sink>(
    backend: Backend,
    reg: &KlassRegistry,
    capacity: u64,
    msgs: &[&Message],
    plans: &[&MsgPlan],
    checksum: bool,
    r: usize,
    sink: &mut S,
) -> Result<ReduceOutcome, ShuffleError> {
    if S::ENABLED {
        let pid = REDUCER_PID_BASE + r as u32;
        sink.name_process(pid, &format!("reducer {r}"));
        sink.name_thread(pid, T_MAIN, "reduce");
        sink.name_thread(pid, T_NIC, "nic");
    }
    // One engine per wire format seen; the run's backend first.
    let mut engines: Vec<(Backend, Engine)> = vec![(backend, Engine::new(backend, reg))];
    let mut out = ReduceOutcome {
        de_ns: Vec::with_capacity(msgs.len()),
        fold: BTreeMap::new(),
        de_busy_ns: 0.0,
        records: 0,
        checksum_errors: 0,
    };
    for (i, msg) in msgs.iter().enumerate() {
        let idx = match engines.iter().position(|(b, _)| *b == msg.backend) {
            Some(i) => i,
            None => {
                engines.push((msg.backend, Engine::new(msg.backend, reg)));
                engines.len() - 1
            }
        };
        let engine = &mut engines[idx].1;
        // Corrupt arrivals first: the CRC check must reject every
        // planned flip before the clean retransmission decodes.
        if let Some(plan) = plans.get(i) {
            for a in &plan.attempts {
                if let Attempt::Corrupt { pos, mask } = a {
                    let mut bad = msg.bytes.clone();
                    bad[*pos] ^= *mask;
                    match engine.try_deserialize(&bad, reg, capacity, true) {
                        Err(EngineError::Checksum(_)) => {
                            out.checksum_errors += 1;
                            if S::ENABLED {
                                sink.count("shuffle.checksum_errors", 1);
                            }
                        }
                        _ => {
                            return Err(ShuffleError::UndetectedCorruption {
                                src: msg.src,
                                dst: msg.dst,
                                seq: msg.seq,
                            })
                        }
                    }
                }
            }
        }
        let bad_batch = || ShuffleError::BadBatch { src: msg.src, dst: msg.dst, seq: msg.seq };
        let (n, ns) = if msg.backend == Backend::Archive {
            // Zero-copy path: validate the image once and fold straight
            // off the wire bytes — no destination heap is ever built.
            // The fold visits the same records in the same array order
            // as the reconstructing path below, so the sums are
            // bit-identical (the suite cross-checks every backend).
            let (view, ns) = validate_archive_sunk(&msg.bytes, reg, checksum, sink)?;
            let root = view.root().ok_or_else(bad_batch)?;
            let n = view.array_len(root);
            if n as u64 != msg.records {
                return Err(bad_batch());
            }
            for j in 0..n {
                let rec = view.array_elem_ref(root, j).ok_or_else(bad_batch)?;
                let key = view.field(rec, 0);
                let value = f64::from_bits(view.field(rec, 1));
                let e = out.fold.entry(key).or_insert((0, 0.0));
                e.0 += 1;
                e.1 += value;
            }
            (n, ns)
        } else {
            let (heap, root, ns) =
                engine.try_deserialize_sunk(&msg.bytes, reg, capacity, checksum, sink)?;
            let n = heap.array_len(root);
            if n as u64 != msg.records {
                return Err(bad_batch());
            }
            for j in 0..n {
                let rec = Addr(heap.array_elem(root, j));
                let key = heap.field(rec, 0);
                let value = f64::from_bits(heap.field(rec, 1));
                let e = out.fold.entry(key).or_insert((0, 0.0));
                e.0 += 1;
                e.1 += value;
            }
            (n, ns)
        };
        if S::ENABLED {
            sink.count("shuffle.records", n as u64);
            sink.observe("shuffle.de_busy_ns", ns);
        }
        out.records += n as u64;
        out.de_busy_ns += ns;
        out.de_ns.push(ns);
    }
    Ok(out)
}
