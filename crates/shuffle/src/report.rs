//! Shuffle reports and their JSON rendering.
//!
//! Every field is derived from simulated clocks and deterministic
//! counters — nothing wall-clock, nothing machine-dependent — so the
//! rendered JSON is byte-identical across runs and job counts.

use crate::exec::{GcTotals, SpillTotals};
use crate::faults::FaultTotals;
use crate::timeline::NetStats;
use crate::ShuffleConfig;

/// One backend's end-to-end shuffle measurements.
#[derive(Clone, Debug)]
pub struct BackendReport {
    /// Backend display name.
    pub name: &'static str,
    /// Serialized batches shipped.
    pub messages: u64,
    /// Total wire bytes.
    pub wire_bytes: u64,
    /// Records shuffled.
    pub records: u64,
    /// Summed serialization busy time across mappers.
    pub ser_busy_ns: f64,
    /// Slowest mapper's completion (serialization + GC pauses).
    pub map_makespan_ns: f64,
    /// Summed deserialization busy time across reducers.
    pub de_busy_ns: f64,
    /// Fabric and flow-control statistics.
    pub net: NetStats,
    /// GC activity summed over mappers (`None` when GC pressure is off).
    pub gc: Option<GcTotals>,
    /// Spill activity summed over mappers (`None` when spilling is off).
    pub spill: Option<SpillTotals>,
    /// Fault and recovery counters (`None` when injection is off; the
    /// field renders only when set, so fault-free reports stay
    /// byte-identical to the pre-fault service).
    pub faults: Option<FaultTotals>,
    /// FNV-1a digest of the merged `(key, count, sum)` aggregate —
    /// identical across backends, coalescing settings and job counts.
    pub fold_checksum: u64,
}

impl BackendReport {
    /// Records per second of end-to-end simulated time.
    pub fn records_per_sec(&self) -> f64 {
        if self.net.makespan_ns <= 0.0 {
            return 0.0;
        }
        self.records as f64 / (self.net.makespan_ns * 1e-9)
    }

    fn to_json(&self) -> String {
        let gc = match &self.gc {
            None => "null".to_string(),
            Some(g) => format!(
                "{{\"collections\": {}, \"pause_ns\": {:.3}, \"reclaimed_bytes\": {}, \"live_bytes\": {}}}",
                g.collections, g.pause_ns, g.reclaimed_bytes, g.live_bytes
            ),
        };
        let spill = match &self.spill {
            None => "null".to_string(),
            Some(s) => format!(
                "{{\"spills\": {}, \"spilled_bytes\": {}, \"spill_ns\": {:.3}, \"fetches\": {}, \"fetch_ns\": {:.3}}}",
                s.spills, s.spilled_bytes, s.spill_ns, s.fetches, s.fetch_ns
            ),
        };
        // Rendered only for fault-injected runs: fault-free JSON is
        // byte-identical to the pre-fault service.
        let faults = match &self.faults {
            None => String::new(),
            Some(f) => format!(
                ",\n\x20     \"faults\": {{\"retries\": {}, \"lost_messages\": {}, \"wire_corruptions\": {},\n\
                 \x20       \"checksum_errors\": {}, \"mapper_deaths\": {}, \"reexec_ns\": {:.3},\n\
                 \x20       \"accel_faults\": {}, \"fallback_ns\": {:.3}, \"spill_retries\": {},\n\
                 \x20       \"recovery_ns\": {:.3}, \"fabric_bytes\": {}, \"goodput\": {:.6}}}",
                f.retries,
                f.lost_messages,
                f.wire_corruptions,
                f.checksum_errors,
                f.mapper_deaths,
                f.reexec_ns,
                f.accel_faults,
                f.fallback_ns,
                f.spill_retries,
                f.recovery_ns,
                f.fabric_bytes,
                f.goodput(self.wire_bytes),
            ),
        };
        format!(
            "    {{\"name\": \"{}\", \"messages\": {}, \"wire_bytes\": {}, \"records\": {},\n\
             \x20     \"ser_busy_ns\": {:.3}, \"map_makespan_ns\": {:.3}, \"de_busy_ns\": {:.3},\n\
             \x20     \"net_ns\": {:.3}, \"makespan_ns\": {:.3}, \"records_per_sec\": {:.1},\n\
             \x20     \"backpressure_blocks\": {}, \"backpressure_wait_ns\": {:.3},\n\
             \x20     \"ingress_utilization\": {:.4}, \"gc\": {}, \"spill\": {}{},\n\
             \x20     \"fold_checksum\": \"{:016x}\"}}",
            self.name,
            self.messages,
            self.wire_bytes,
            self.records,
            self.ser_busy_ns,
            self.map_makespan_ns,
            self.de_busy_ns,
            self.net.net_ns,
            self.net.makespan_ns,
            self.records_per_sec(),
            self.net.backpressure_blocks,
            self.net.backpressure_wait_ns,
            self.net.ingress_utilization,
            gc,
            spill,
            faults,
            self.fold_checksum,
        )
    }
}

/// A full suite run: configuration plus one report per backend.
#[derive(Clone, Debug)]
pub struct ShuffleReport {
    /// The configuration that produced these numbers.
    pub config: ShuffleConfig,
    /// Per-backend results in run order.
    pub backends: Vec<BackendReport>,
}

impl ShuffleReport {
    /// Renders the report as deterministic JSON (job count and wall
    /// clock deliberately excluded).
    pub fn to_json(&self) -> String {
        let c = &self.config;
        let rows: Vec<String> = self.backends.iter().map(BackendReport::to_json).collect();
        // Appended only when checksums or fault injection are on, so the
        // fault-free config block is byte-identical to the old harness.
        let fault_cfg = if !c.checksum && c.faults.is_none() {
            String::new()
        } else {
            let mut s = format!(",\n\x20   \"checksum\": {}", c.checksum);
            if let Some(spec) = &c.faults {
                let f = &spec.cfg;
                s.push_str(&format!(
                    ", \"fault_seed\": {}, \"fallback\": \"{}\",\n\
                     \x20   \"rates\": {{\"wire_corruption\": {}, \"link_loss\": {}, \"disk_read_error\": {},\n\
                     \x20     \"mapper_death\": {}, \"accel_fault\": {}, \"spill_corruption\": {}}}",
                    f.seed,
                    spec.fallback.name(),
                    f.wire_corruption,
                    f.link_loss,
                    f.disk_read_error,
                    f.mapper_death,
                    f.accel_fault,
                    f.spill_corruption,
                ));
            }
            s
        };
        format!(
            "{{\n\
             \x20 \"generated_by\": \"shuffle service\",\n\
             \x20 \"config\": {{\n\
             \x20   \"mappers\": {}, \"reducers\": {}, \"records_per_mapper\": {},\n\
             \x20   \"distinct_keys\": {}, \"seed\": {}, \"skew\": \"{}\", \"flush_bytes\": {},\n\
             \x20   \"watermark_bytes\": {}, \"spill_bytes\": {}, \"link\": \"{}\",\n\
             \x20   \"gc_pressure\": {}, \"gc_waves\": {}{}\n\
             \x20 }},\n\
             \x20 \"backends\": [\n{}\n\x20 ]\n\
             }}\n",
            c.mappers,
            c.reducers,
            c.records_per_mapper,
            c.distinct_keys,
            c.seed,
            c.skew.label(),
            c.flush_bytes,
            c.watermark_bytes,
            c.spill_bytes,
            c.link_name,
            c.gc_pressure,
            c.gc_waves,
            fault_cfg,
            rows.join(",\n")
        )
    }
}

/// FNV-1a over the merged aggregate, for cross-backend/cross-run
/// equality checks that survive JSON round trips.
pub(crate) fn fold_checksum(fold: &std::collections::BTreeMap<u64, (u64, f64)>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        for b in v.to_be_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for (&k, &(count, sum)) in fold {
        mix(k);
        mix(count);
        mix(sum.to_bits());
    }
    h
}
