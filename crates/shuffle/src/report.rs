//! Shuffle reports and their JSON rendering.
//!
//! Every field is derived from simulated clocks and deterministic
//! counters — nothing wall-clock, nothing machine-dependent — so the
//! rendered JSON is byte-identical across runs and job counts. All
//! rendering goes through the workspace's one [`JsonWriter`].

use crate::exec::{GcTotals, SpillTotals};
use crate::faults::FaultTotals;
use crate::timeline::NetStats;
use crate::ShuffleConfig;
use telemetry::{per_sec, JsonWriter};

/// One backend's end-to-end shuffle measurements.
#[derive(Clone, Debug)]
pub struct BackendReport {
    /// Backend display name.
    pub name: &'static str,
    /// Serialized batches shipped.
    pub messages: u64,
    /// Total wire bytes.
    pub wire_bytes: u64,
    /// Records shuffled.
    pub records: u64,
    /// Summed serialization busy time across mappers.
    pub ser_busy_ns: f64,
    /// Slowest mapper's completion (serialization + GC pauses).
    pub map_makespan_ns: f64,
    /// Summed deserialization busy time across reducers.
    pub de_busy_ns: f64,
    /// Fabric and flow-control statistics.
    pub net: NetStats,
    /// GC activity summed over mappers (`None` when GC pressure is off).
    pub gc: Option<GcTotals>,
    /// Spill activity summed over mappers (`None` when spilling is off).
    pub spill: Option<SpillTotals>,
    /// Fault and recovery counters (`None` when injection is off; the
    /// field renders only when set, so fault-free reports stay
    /// byte-identical to the pre-fault service).
    pub faults: Option<FaultTotals>,
    /// FNV-1a digest of the merged `(key, count, sum)` aggregate —
    /// identical across backends, coalescing settings and job counts.
    pub fold_checksum: u64,
}

impl BackendReport {
    /// Records per second of end-to-end simulated time.
    pub fn records_per_sec(&self) -> f64 {
        per_sec(self.records, self.net.makespan_ns)
    }

    fn render(&self, w: &mut JsonWriter) {
        w.begin_obj();
        w.field_str("name", self.name);
        w.field_u64("messages", self.messages);
        w.field_u64("wire_bytes", self.wire_bytes);
        w.field_u64("records", self.records);
        w.field_f64("ser_busy_ns", self.ser_busy_ns, 3);
        w.field_f64("map_makespan_ns", self.map_makespan_ns, 3);
        w.field_f64("de_busy_ns", self.de_busy_ns, 3);
        w.field_f64("net_ns", self.net.net_ns, 3);
        w.field_f64("makespan_ns", self.net.makespan_ns, 3);
        w.field_f64("records_per_sec", self.records_per_sec(), 1);
        w.field_u64("backpressure_blocks", self.net.backpressure_blocks);
        w.field_f64("backpressure_wait_ns", self.net.backpressure_wait_ns, 3);
        w.field_f64("ingress_utilization", self.net.ingress_utilization, 4);
        w.key("gc");
        match &self.gc {
            None => w.null_val(),
            Some(g) => {
                w.begin_obj();
                w.field_u64("collections", g.collections);
                w.field_f64("pause_ns", g.pause_ns, 3);
                w.field_u64("reclaimed_bytes", g.reclaimed_bytes);
                w.field_u64("live_bytes", g.live_bytes);
                w.end_obj();
            }
        }
        w.key("spill");
        match &self.spill {
            None => w.null_val(),
            Some(s) => {
                w.begin_obj();
                w.field_u64("spills", s.spills);
                w.field_u64("spilled_bytes", s.spilled_bytes);
                w.field_f64("spill_ns", s.spill_ns, 3);
                w.field_u64("fetches", s.fetches);
                w.field_f64("fetch_ns", s.fetch_ns, 3);
                w.end_obj();
            }
        }
        // Rendered only for fault-injected runs: fault-free JSON stays
        // free of the fault block.
        if let Some(f) = &self.faults {
            w.key("faults");
            w.begin_obj();
            w.field_u64("retries", f.retries);
            w.field_u64("lost_messages", f.lost_messages);
            w.field_u64("wire_corruptions", f.wire_corruptions);
            w.field_u64("checksum_errors", f.checksum_errors);
            w.field_u64("mapper_deaths", f.mapper_deaths);
            w.field_f64("reexec_ns", f.reexec_ns, 3);
            w.field_u64("accel_faults", f.accel_faults);
            w.field_f64("fallback_ns", f.fallback_ns, 3);
            w.field_u64("spill_retries", f.spill_retries);
            w.field_f64("recovery_ns", f.recovery_ns, 3);
            w.field_u64("fabric_bytes", f.fabric_bytes);
            w.field_f64("goodput", f.goodput(self.wire_bytes), 6);
            w.end_obj();
        }
        w.field_str("fold_checksum", &format!("{:016x}", self.fold_checksum));
        w.end_obj();
    }
}

/// A full suite run: configuration plus one report per backend.
#[derive(Clone, Debug)]
pub struct ShuffleReport {
    /// The configuration that produced these numbers.
    pub config: ShuffleConfig,
    /// Per-backend results in run order.
    pub backends: Vec<BackendReport>,
}

impl ShuffleReport {
    /// Renders the report as deterministic JSON (job count and wall
    /// clock deliberately excluded).
    pub fn to_json(&self) -> String {
        let c = &self.config;
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.field_str("generated_by", "shuffle service");
        w.key("config");
        w.begin_obj();
        w.field_u64("mappers", c.mappers as u64);
        w.field_u64("reducers", c.reducers as u64);
        w.field_u64("records_per_mapper", c.records_per_mapper as u64);
        w.field_u64("distinct_keys", c.distinct_keys);
        w.field_u64("seed", c.seed);
        w.field_str("skew", &c.skew.label());
        w.field_u64("flush_bytes", c.flush_bytes);
        w.field_u64("watermark_bytes", c.watermark_bytes);
        w.field_u64("spill_bytes", c.spill_bytes);
        w.field_str("link", c.link_name);
        w.field_bool("gc_pressure", c.gc_pressure);
        w.field_u64("gc_waves", c.gc_waves as u64);
        // Appended only when checksums or fault injection are on, so the
        // fault-free config block stays free of the fault fields.
        if c.checksum || c.faults.is_some() {
            w.field_bool("checksum", c.checksum);
            if let Some(spec) = &c.faults {
                let f = &spec.cfg;
                w.field_u64("fault_seed", f.seed);
                w.field_str("fallback", spec.fallback.name());
                w.key("rates");
                w.begin_obj();
                for (name, rate) in [
                    ("wire_corruption", f.wire_corruption),
                    ("link_loss", f.link_loss),
                    ("disk_read_error", f.disk_read_error),
                    ("mapper_death", f.mapper_death),
                    ("accel_fault", f.accel_fault),
                    ("spill_corruption", f.spill_corruption),
                ] {
                    w.key(name);
                    // `Display` keeps the configured probability exact
                    // (0.02, not 0.020000).
                    w.raw_val(&format!("{rate}"));
                }
                w.end_obj();
            }
        }
        w.end_obj();
        w.key("backends");
        w.begin_arr();
        for b in &self.backends {
            b.render(&mut w);
        }
        w.end_arr();
        w.end_obj();
        let mut out = w.finish();
        out.push('\n');
        out
    }
}

/// FNV-1a over the merged aggregate, for cross-backend/cross-run
/// equality checks that survive JSON round trips. Public because the
/// cluster scheduler digests job folds with the same function, so its
/// checksums are comparable to shuffle-report checksums.
pub fn fold_checksum(fold: &std::collections::BTreeMap<u64, (u64, f64)>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        for b in v.to_be_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for (&k, &(count, sum)) in fold {
        mix(k);
        mix(count);
        mix(sum.to_bits());
    }
    h
}
