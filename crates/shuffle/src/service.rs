//! The shuffle service top level: fan the executors out over threads,
//! stitch their simulated clocks into one deterministic report.

use crate::exec::{run_mapper_sunk, GcTotals, MapOutcome, Message, SpillTotals};
use crate::faults::{death_scope, plan_message, FaultTotals, MsgPlan, ShuffleError};
use crate::reduce::{run_reducer_sunk, ReduceOutcome};
use crate::report::{fold_checksum, BackendReport, ShuffleReport};
use crate::timeline::compose_sunk;
use crate::ShuffleConfig;
use std::collections::BTreeMap;
use store::{par_map, Backend};
use telemetry::ids::{MAPPER_PID_BASE, T_MAIN};
use telemetry::{EntityId, Instant, NoopSink, Sink};

/// One backend's full run: the report plus the merged aggregate (kept
/// out of the report; tests check it against the dataset's expected
/// fold).
#[derive(Debug)]
pub struct BackendRun {
    /// The measurements.
    pub report: BackendReport,
    /// The merged key → `(count, sum)` aggregate over all reducers.
    pub fold: BTreeMap<u64, (u64, f64)>,
}

/// Runs one backend through the whole shuffle: map fan-out (with
/// Spark-style re-execution of mappers whose executor dies mid-stage),
/// reduce fan-out, timeline composition.
///
/// # Errors
/// [`ShuffleError::ChecksumRequired`] when wire corruption is injected
/// without checksum frames; otherwise whatever a stage surfaced
/// (undetected corruption, decode failures, spill-store faults,
/// duplicate keys).
pub fn run_backend(cfg: &ShuffleConfig, backend: Backend) -> Result<BackendRun, ShuffleError> {
    run_backend_sunk(cfg, backend, &mut NoopSink)
}

/// [`run_backend`] with a telemetry sink. Each executor traces into its
/// own `S::default()` child sink on its worker thread; the children are
/// absorbed into `sink` in executor order, so the merged telemetry is
/// byte-identical for any `jobs` count — exactly the report's
/// determinism argument, applied to the trace. A mapper death shifts
/// its child's whole timeline by the lost work plus the detection
/// timeout (the rerun's timeline) and leaves a `mapper.death` instant
/// at the moment the first execution died. The returned run is
/// identical to the untraced path for any sink.
///
/// # Errors
/// Same as [`run_backend`].
pub fn run_backend_sunk<S: Sink>(
    cfg: &ShuffleConfig,
    backend: Backend,
    sink: &mut S,
) -> Result<BackendRun, ShuffleError> {
    if !cfg.checksum && cfg.faults.is_some_and(|s| s.cfg.wire_corruption > 0.0) {
        return Err(ShuffleError::ChecksumRequired);
    }

    // Map stage: one self-contained executor per mapper, on real
    // threads. Results land in mapper order regardless of scheduling.
    // A mapper whose death draw fires is re-executed from scratch: the
    // rerun reproduces the identical messages (the executor is
    // deterministic), shifted by the work lost at death plus the
    // scheduler's detection timeout.
    let maps: Vec<Result<(MapOutcome, S), ShuffleError>> =
        par_map(cfg.jobs, cfg.mappers, |m| {
            let mut child = S::default();
            let mut outcome = run_mapper_sunk(cfg, backend, m, &mut child)?;
            if let Some(spec) = cfg.faults {
                let mut inj = spec.cfg.scoped(death_scope(m));
                if let Some(frac) = inj.mapper_dies() {
                    let died_at = frac * outcome.clock_ns;
                    let death_ns = died_at + spec.cfg.timeout_ns;
                    for msg in &mut outcome.messages {
                        msg.ser_done_ns += death_ns;
                    }
                    outcome.clock_ns += death_ns;
                    outcome.faults.mapper_deaths += 1;
                    outcome.faults.reexec_ns += death_ns;
                    outcome.faults.recovery_ns += death_ns;
                    if S::ENABLED {
                        // The child's events now describe the rerun;
                        // mark when the first execution was lost.
                        child.shift(death_ns);
                        child.count("shuffle.mapper_deaths", 1);
                        child.instant(Instant {
                            entity: EntityId { pid: MAPPER_PID_BASE + m as u32, tid: T_MAIN },
                            name: "mapper.death",
                            t_ns: died_at,
                            attrs: vec![("timeout_ns", spec.cfg.timeout_ns.into())],
                        });
                    }
                }
            }
            Ok((outcome, child))
        });
    let mut absorbed = Vec::with_capacity(cfg.mappers);
    for r in maps {
        let (outcome, child) = r?;
        sink.absorb(child);
        absorbed.push(outcome);
    }
    let maps: Vec<MapOutcome> = absorbed;

    // Global message list in (mapper, flush) order; per reducer this is
    // ascending (src, seq) — the deterministic delivery order.
    let all: Vec<&Message> = maps.iter().flat_map(|o| o.messages.iter()).collect();
    let mut per_reducer: Vec<Vec<usize>> = vec![Vec::new(); cfg.reducers];
    for (i, msg) in all.iter().enumerate() {
        per_reducer[msg.dst].push(i);
    }

    // Wire-fault plans, one per message, drawn from streams scoped by
    // the global message index — the reduce stage (detection) and the
    // timeline (recovery timing) replay the same schedule.
    let plans: Vec<MsgPlan> = match &cfg.faults {
        Some(spec) if spec.cfg.enabled() => all
            .iter()
            .enumerate()
            .map(|(i, m)| plan_message(&spec.cfg, i, m.bytes.len()))
            .collect(),
        _ => Vec::new(),
    };

    // Reduce stage: one executor per reducer, on real threads.
    let agg = cfg.agg();
    let reg = agg.registry();
    let capacity = agg.heap_capacity();
    let reduces: Vec<Result<(ReduceOutcome, S), ShuffleError>> =
        par_map(cfg.jobs, cfg.reducers, |r| {
            let msgs: Vec<&Message> = per_reducer[r].iter().map(|&i| all[i]).collect();
            let rplans: Vec<&MsgPlan> = if plans.is_empty() {
                Vec::new()
            } else {
                per_reducer[r].iter().map(|&i| &plans[i]).collect()
            };
            let mut child = S::default();
            let outcome =
                run_reducer_sunk(backend, &reg, capacity, &msgs, &rplans, cfg.checksum, r, &mut child)?;
            Ok((outcome, child))
        });
    let mut absorbed = Vec::with_capacity(cfg.reducers);
    for r in reduces {
        let (outcome, child) = r?;
        sink.absorb(child);
        absorbed.push(outcome);
    }
    let reduces: Vec<ReduceOutcome> = absorbed;

    // Stitch per-message deserialization times back to the global list.
    let mut de_ns = vec![0.0f64; all.len()];
    for (r, outcome) in reduces.iter().enumerate() {
        for (k, &i) in per_reducer[r].iter().enumerate() {
            de_ns[i] = outcome.de_ns[k];
        }
    }

    // Timeline composition: sequential and order-deterministic.
    let mut fault_totals = FaultTotals::default();
    let net = compose_sunk(cfg, &all, &de_ns, &plans, &mut fault_totals, sink);

    // Merge the folds; key spaces are disjoint (key % reducers routing).
    let mut fold: BTreeMap<u64, (u64, f64)> = BTreeMap::new();
    for outcome in &reduces {
        for (&k, &v) in &outcome.fold {
            if fold.insert(k, v).is_some() {
                return Err(ShuffleError::DuplicateKey(k));
            }
        }
    }

    let mut gc_totals = GcTotals::default();
    let mut spill_totals = SpillTotals::default();
    for o in &maps {
        gc_totals.merge(&o.gc);
        fault_totals.merge(&o.faults);
        if let Some(s) = &o.spill {
            spill_totals.merge(s);
        }
    }
    fault_totals.checksum_errors += reduces.iter().map(|o| o.checksum_errors).sum::<u64>();
    let report = BackendReport {
        name: backend.name(),
        messages: all.len() as u64,
        wire_bytes: all.iter().map(|m| m.bytes.len() as u64).sum(),
        records: reduces.iter().map(|o| o.records).sum(),
        ser_busy_ns: maps.iter().map(|o| o.ser_busy_ns).sum(),
        map_makespan_ns: maps.iter().map(|o| o.clock_ns).fold(0.0, f64::max),
        de_busy_ns: reduces.iter().map(|o| o.de_busy_ns).sum(),
        net,
        gc: cfg.gc_pressure.then_some(gc_totals),
        spill: (cfg.spill_bytes > 0).then_some(spill_totals),
        faults: cfg.faults.map(|_| fault_totals),
        fold_checksum: fold_checksum(&fold),
    };
    Ok(BackendRun { report, fold })
}

/// Runs a list of backends and checks they all computed the same
/// aggregate.
///
/// # Errors
/// [`ShuffleError::FoldMismatch`] when two backends disagree on the
/// aggregate — a round-trip correctness failure — plus anything
/// [`run_backend`] surfaces.
pub fn run_suite(cfg: &ShuffleConfig, backends: &[Backend]) -> Result<ShuffleReport, ShuffleError> {
    let mut reports = Vec::with_capacity(backends.len());
    let mut first_fold: Option<(&'static str, BTreeMap<u64, (u64, f64)>)> = None;
    for &b in backends {
        let run = run_backend(cfg, b)?;
        match &first_fold {
            None => first_fold = Some((b.name(), run.fold)),
            Some((name, fold)) => {
                if *fold != run.fold {
                    return Err(ShuffleError::FoldMismatch { a: name, b: b.name() });
                }
            }
        }
        reports.push(run.report);
    }
    Ok(ShuffleReport {
        config: *cfg,
        backends: reports,
    })
}
